// Benchmarks regenerating every table and figure of the paper's evaluation
// at paper scale (1000 requests per point, 1 ms budget sweeps, 2000
// profiling samples per cell). One benchmark per table/figure; run with
//
//	go test -bench=. -benchmem
//
// The shared suite caches profiles, deployments, and serving runs, so the
// first iteration of each benchmark pays the real cost and the reported
// per-op numbers stabilize quickly. cmd/janusbench prints the same rows.
//
// BenchmarkEvaluationGrid{Sequential,Parallel} are the exception: they
// build a fresh reduced-scale suite per iteration to time the concurrent
// experiment engine end to end. Compare the pair with
//
//	go test -bench='BenchmarkEvaluationGrid' -benchtime=1x
//
// on a multi-core machine to see the worker pool's near-linear speedup.
package janus_test

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"janus"
	"janus/internal/experiment"
	"janus/internal/obs"
)

var (
	benchOnce  sync.Once
	benchSuite *janus.ExperimentSuite
)

func suite() *janus.ExperimentSuite {
	benchOnce.Do(func() { benchSuite = janus.NewExperimentSuite() })
	return benchSuite
}

func BenchmarkFig1aSlackCDF(b *testing.B) {
	s := suite()
	var share float64
	for i := 0; i < b.N; i++ {
		f, err := s.Fig1a()
		if err != nil {
			b.Fatal(err)
		}
		share = f.PopularShare
	}
	b.ReportMetric(share*100, "popular_share_%")
}

func BenchmarkFig1bWorkingSetVariance(b *testing.B) {
	s := suite()
	var maxRatio float64
	for i := 0; i < b.N; i++ {
		rows, err := s.Fig1b()
		if err != nil {
			b.Fatal(err)
		}
		maxRatio = 0
		for _, r := range rows {
			if r.Ratio > maxRatio {
				maxRatio = r.Ratio
			}
		}
	}
	b.ReportMetric(maxRatio, "max_p99_over_p1")
}

func BenchmarkFig1cInterference(b *testing.B) {
	s := suite()
	var worst float64
	for i := 0; i < b.N; i++ {
		rows, err := s.Fig1c()
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, r := range rows {
			if v := r.Normalized[len(r.Normalized)-1]; v > worst {
				worst = v
			}
		}
	}
	b.ReportMetric(worst, "worst_slowdown_x")
}

func BenchmarkFig2EarlyVsLate(b *testing.B) {
	s := suite()
	var mean, max float64
	for i := 0; i < b.N; i++ {
		f, err := s.Fig2(50)
		if err != nil {
			b.Fatal(err)
		}
		mean, max = f.MeanSavings(), f.MaxSavings()
	}
	b.ReportMetric(mean*100, "mean_savings_%")
	b.ReportMetric(max*100, "max_savings_%")
}

func BenchmarkFig4LatencyDistribution(b *testing.B) {
	s := suite()
	var worstViolation float64
	for i := 0; i < b.N; i++ {
		panels, err := s.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		worstViolation = 0
		for _, p := range panels {
			for _, d := range p.Systems {
				if d.ViolationRate > worstViolation {
					worstViolation = d.ViolationRate
				}
			}
		}
	}
	b.ReportMetric(worstViolation*100, "worst_violation_%")
}

func BenchmarkFig5aResourceConsumption(b *testing.B) {
	s := suite()
	var janusNorm float64
	for i := 0; i < b.N; i++ {
		panels, err := s.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range panels[0].Systems {
			if r.System == experiment.SysJanus {
				janusNorm = r.Normalized
			}
		}
	}
	b.ReportMetric(janusNorm, "ia_janus_vs_optimal")
}

func BenchmarkFig5bHigherConcurrency(b *testing.B) {
	s := suite()
	var worstEarly float64
	for i := 0; i < b.N; i++ {
		panels, err := s.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		worstEarly = 0
		for _, p := range panels[2:] { // the concurrency 2 and 3 panels
			for _, r := range p.Systems {
				if (r.System == experiment.SysGrandSLAM || r.System == experiment.SysGrandSLAMP) && r.Normalized > worstEarly {
					worstEarly = r.Normalized
				}
			}
		}
	}
	b.ReportMetric(worstEarly, "early_binding_overalloc_x")
}

func BenchmarkFig6aModerateExploration(b *testing.B) {
	s := suite()
	var meanDelta float64
	for i := 0; i < b.N; i++ {
		rows, err := s.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		meanDelta = 0
		for _, r := range rows {
			meanDelta += (r.JanusPlusMillicores/r.JanusMillicores - 1) / float64(len(rows))
		}
	}
	b.ReportMetric(meanDelta*100, "janus+_consumption_delta_%")
}

func BenchmarkFig6bSynthesisCost(b *testing.B) {
	s := suite()
	var worstRatio float64
	for i := 0; i < b.N; i++ {
		rows, err := s.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		worstRatio = 0
		for _, r := range rows {
			if ratio := float64(r.JanusPlusSynth) / float64(r.JanusSynth); ratio > worstRatio {
				worstRatio = ratio
			}
		}
	}
	b.ReportMetric(worstRatio, "janus+_synth_cost_x")
}

func BenchmarkFig7aTimeout(b *testing.B) {
	s := suite()
	var atMin int
	for i := 0; i < b.N; i++ {
		f, err := s.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		atMin = f.TimeoutMs[25][0]
	}
	b.ReportMetric(float64(atMin), "ts_timeout_p25_kmin_ms")
}

func BenchmarkFig7bResilience(b *testing.B) {
	s := suite()
	var atMin int
	for i := 0; i < b.N; i++ {
		f, err := s.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		atMin = f.ResilienceMs[3][0]
	}
	b.ReportMetric(float64(atMin), "ts_resilience_conc3_kmin_ms")
}

func BenchmarkFig8HintsCondensing(b *testing.B) {
	s := suite()
	var worstCondensed int
	var worstCompression = 1.0
	for i := 0; i < b.N; i++ {
		rows, err := s.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		worstCondensed = 0
		worstCompression = 1
		for _, r := range rows {
			if r.Condensed > worstCondensed {
				worstCondensed = r.Condensed
			}
			if r.Compression < worstCompression {
				worstCompression = r.Compression
			}
		}
	}
	b.ReportMetric(float64(worstCondensed), "max_condensed_hints")
	b.ReportMetric(worstCompression*100, "min_compression_%")
}

func BenchmarkFig9SLOSweep(b *testing.B) {
	s := suite()
	var janusMean float64
	for i := 0; i < b.N; i++ {
		rows, err := s.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		janusMean = 0
		for _, r := range rows {
			janusMean += r.Janus / float64(len(rows))
		}
	}
	b.ReportMetric(janusMean, "mean_janus_vs_optimal")
}

func BenchmarkTable1OverallReduction(b *testing.B) {
	s := suite()
	var iaVsOrion, vaVsOrion float64
	for i := 0; i < b.N; i++ {
		t, err := s.Table1()
		if err != nil {
			b.Fatal(err)
		}
		iaVsOrion = t.Reduction["ia"][experiment.SysORION]
		vaVsOrion = t.Reduction["va"][experiment.SysORION]
	}
	b.ReportMetric(iaVsOrion, "ia_vs_orion_%")
	b.ReportMetric(vaVsOrion, "va_vs_orion_%")
}

func BenchmarkTable2WeightImpact(b *testing.B) {
	s := suite()
	var mc1, mc3 float64
	for i := 0; i < b.N; i++ {
		t, err := s.Table2()
		if err != nil {
			b.Fatal(err)
		}
		mc1, mc3 = t.MeanMillicores[1], t.MeanMillicores[3]
	}
	b.ReportMetric(mc1, "head_mc_weight1")
	b.ReportMetric(mc3, "head_mc_weight3")
}

// benchmarkEvaluationGrid serves the paper's full §V grid (4 panels × 7
// systems) from a cold cache: profiling, synthesis, and 28 discrete-event
// serving runs. The sequential and parallel variants do identical work —
// the runner guarantees identical results — so their ratio is the
// concurrent engine's wall-clock speedup.
func benchmarkEvaluationGrid(b *testing.B, parallelism int) {
	points, err := janus.EvaluationPoints()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := janus.NewQuickExperimentSuite()
		r := &janus.ExperimentRunner{Suite: s, Parallelism: parallelism}
		if _, err := r.Run(context.Background(), points); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluationGridSequential(b *testing.B) { benchmarkEvaluationGrid(b, 1) }

func BenchmarkEvaluationGridParallel(b *testing.B) {
	benchmarkEvaluationGrid(b, runtime.GOMAXPROCS(0))
}

// BenchmarkMixedServing times the multi-tenant serving path in isolation:
// three tenants' pre-generated workloads (IA chain, VA chain, both under
// fixed allocators, plus a second VA stream) merged into one discrete-event
// run on a shared two-node cluster. Workload generation is outside the
// loop — the benchmark measures RunMixed itself: the merged event stream,
// shared warm pools, capacity parking, and per-tenant trace splitting.
func BenchmarkMixedServing(b *testing.B) { benchmarkMixedServing(b, nil) }

// BenchmarkMixedServingTraced is BenchmarkMixedServing with a flight
// recorder attached: the delta against the nil-tracer run is the whole
// cost of tracer-on observability on the serving hot path.
func BenchmarkMixedServingTraced(b *testing.B) {
	benchmarkMixedServing(b, obs.NewFlightRecorder(4096))
}

func benchmarkMixedServing(b *testing.B, tracer obs.Tracer) {
	coloc, err := janus.NewColocationSampler([]float64{0.5, 0.35, 0.15})
	if err != nil {
		b.Fatal(err)
	}
	workload := func(w *janus.Workflow, seed uint64) []*janus.Request {
		reqs, err := janus.GenerateWorkload(janus.WorkloadConfig{
			Workflow: w, Functions: janus.Catalog(), N: 500, Batch: 1,
			ArrivalRatePerSec: 2, Colocation: coloc,
			Interference: janus.DefaultInterference(), StageCorrelation: 0.5, Seed: seed,
		})
		if err != nil {
			b.Fatal(err)
		}
		return reqs
	}
	cfg := janus.DefaultExecutorConfig()
	cfg.Cluster = janus.ClusterConfig{Nodes: 2, NodeMillicores: 26000, PoolSize: 6, IdleMillicores: 100}
	cfg.Tracer = tracer
	ex, err := janus.NewExecutor(cfg, janus.Catalog())
	if err != nil {
		b.Fatal(err)
	}
	tenants := []janus.TenantWorkload{
		{Tenant: "ia", Requests: workload(janus.IntelligentAssistant(), 1),
			Allocator: &janus.FixedAllocator{System: "f", Sizes: []int{2000, 2000, 2000}}},
		{Tenant: "va", Requests: workload(janus.VideoAnalyze(), 2),
			Allocator: &janus.FixedAllocator{System: "f", Sizes: []int{1500, 1500, 1500}}},
		{Tenant: "va2", Requests: workload(janus.VideoAnalyze(), 3),
			Allocator: &janus.FixedAllocator{System: "f", Sizes: []int{2500, 2500, 2500}}},
	}
	b.ResetTimer()
	var served int
	for i := 0; i < b.N; i++ {
		out, err := ex.RunMixed(tenants)
		if err != nil {
			b.Fatal(err)
		}
		served = 0
		for _, traces := range out {
			served += len(traces)
		}
	}
	b.ReportMetric(float64(served), "requests_per_run")
}

// BenchmarkMixTenantScenario times the full multi-tenant experiment at
// paper scale through the shared suite: ia + va + va-sp under every mix
// system on the shared two-node cluster (first iteration pays profiling
// and synthesis; see the package comment).
func BenchmarkMixTenantScenario(b *testing.B) {
	s := suite()
	var worstViolation float64
	for i := 0; i < b.N; i++ {
		runs, err := s.MixScenario()
		if err != nil {
			b.Fatal(err)
		}
		worstViolation = 0
		for _, run := range runs {
			if run.Aggregate.ViolationRate > worstViolation {
				worstViolation = run.Aggregate.ViolationRate
			}
		}
	}
	b.ReportMetric(worstViolation*100, "worst_aggregate_violation_%")
}

// BenchmarkDAGScenario times the node-granular engine on the six-node
// ML-inference DAG: per-node readiness scheduling, a shared fork
// decision, the ocr cross path, and the in-degree-3 join, under every
// applicable system.
func BenchmarkDAGScenario(b *testing.B) {
	s := suite()
	var janusMC float64
	for i := 0; i < b.N; i++ {
		rows, err := s.DAGScenario()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.System == "janus" {
				janusMC = r.MeanMillicores
			}
		}
	}
	b.ReportMetric(janusMC, "janus_mean_millicores")
}

func BenchmarkOverheadOnlineAdaptation(b *testing.B) {
	s := suite()
	// Build the deployment once; the benchmark then times raw decisions,
	// the §V-H "< 3 ms" metric.
	o, err := s.Overhead()
	if err != nil {
		b.Fatal(err)
	}
	d, err := s.Deployment(janus.IntelligentAssistant(), 1, janus.ModeJanus, 1)
	if err != nil {
		b.Fatal(err)
	}
	stages := d.Bundle().Stages()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		budget := time.Duration(2000+i%3000) * time.Millisecond
		if _, err := d.Adapter.Decide(i%stages, budget); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(o.BundleBytes), "bundle_bytes")
}

// BenchmarkReplayScenario times the non-stationary replay grid: the
// burst+diurnal schedule over ia/va/dag under static pools, the elastic
// autoscaler, and the closed bilateral loop (online hint regeneration
// hot-swapping bundles mid-run).
func BenchmarkReplayScenario(b *testing.B) {
	s := suite()
	var closedAttainment float64
	for i := 0; i < b.N; i++ {
		runs, err := s.ReplayScenario()
		if err != nil {
			b.Fatal(err)
		}
		for _, run := range runs {
			if run.Config == "autoscaler+regen" {
				closedAttainment = run.Aggregate.SLOAttainment
			}
		}
	}
	b.ReportMetric(closedAttainment*100, "closed_loop_slo_attainment_%")
}

// BenchmarkFleetScenario times the fleet-scale replay grid: the same
// non-stationary schedule at ~230k requests on a 200-node cluster, under
// every provider configuration. This is the workload the indexed cluster
// state is sized against; the BENCH_*.json files record its trajectory.
func BenchmarkFleetScenario(b *testing.B) {
	s := suite()
	var closedAttainment float64
	for i := 0; i < b.N; i++ {
		runs, err := s.FleetScenario()
		if err != nil {
			b.Fatal(err)
		}
		for _, run := range runs {
			if run.Config == "autoscaler+regen" {
				closedAttainment = run.Aggregate.SLOAttainment
			}
		}
	}
	b.ReportMetric(closedAttainment*100, "closed_loop_slo_attainment_%")
}
