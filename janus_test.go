package janus_test

import (
	"strings"
	"testing"
	"time"

	"janus"
)

// TestFacadeEndToEnd exercises the public API surface the way README's
// quickstart does: define, deploy, serve, compare.
func TestFacadeEndToEnd(t *testing.T) {
	w, err := janus.NewChain("demo", 3*time.Second, "od", "qa", "ts")
	if err != nil {
		t.Fatal(err)
	}
	coloc, err := janus.NewColocationSampler([]float64{0.6, 0.3, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := janus.Deploy(w, janus.DeployOptions{
		Functions:        janus.Catalog(),
		Colocation:       coloc,
		Interference:     janus.DefaultInterference(),
		Seed:             3,
		SamplesPerConfig: 400,
		BudgetStepMs:     25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dep.Bundle().Stages() != 3 {
		t.Fatalf("bundle stages = %d", dep.Bundle().Stages())
	}
	reqs, err := janus.GenerateWorkload(janus.WorkloadConfig{
		Workflow:          w,
		Functions:         janus.Catalog(),
		N:                 50,
		ArrivalRatePerSec: 2,
		Colocation:        coloc,
		Interference:      janus.DefaultInterference(),
		StageCorrelation:  0.5,
		Seed:              3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := janus.NewExecutor(janus.DefaultExecutorConfig(), janus.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	janusTraces, err := ex.Run(reqs, dep.Allocator("janus"))
	if err != nil {
		t.Fatal(err)
	}
	early, err := janus.GrandSLAMPlus(dep.Profiles, w.SLO())
	if err != nil {
		t.Fatal(err)
	}
	earlyTraces, err := ex.Run(reqs, early)
	if err != nil {
		t.Fatal(err)
	}
	if jm, em := janus.MeanMillicores(janusTraces), janus.MeanMillicores(earlyTraces); jm >= em {
		t.Fatalf("janus (%.0f) not below early binding (%.0f)", jm, em)
	}
	if v := janus.SLOViolationRate(janusTraces); v > 0.05 {
		t.Fatalf("janus violation rate %.3f", v)
	}
}

// TestFacadeBundleRoundTrip checks the serialization surface.
func TestFacadeBundleRoundTrip(t *testing.T) {
	coloc, err := janus.NewColocationSampler([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := janus.Deploy(janus.VideoAnalyze(), janus.DeployOptions{
		Functions:        janus.Catalog(),
		Colocation:       coloc,
		Interference:     janus.DefaultInterference(),
		Seed:             4,
		SamplesPerConfig: 400,
		BudgetStepMs:     25,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := dep.Bundle().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := janus.ParseBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	a, err := janus.NewAdapter(back)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Decide(0, 1500*time.Millisecond); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeFleetSurface pins the fleet-scale exports: the grid
// enumerates the replay configurations at fleet dimensions.
func TestFacadeFleetSurface(t *testing.T) {
	if janus.FleetNodes < 100 {
		t.Fatalf("FleetNodes = %d; the fleet scenario promises hundreds of nodes", janus.FleetNodes)
	}
	if janus.FleetNodeMillicores <= 0 {
		t.Fatalf("FleetNodeMillicores = %d", janus.FleetNodeMillicores)
	}
	pts := janus.FleetExperimentPoints()
	if len(pts) != len(janus.ReplayExperimentPoints()) {
		t.Fatalf("fleet grid has %d points, replay grid %d — they serve the same configurations",
			len(pts), len(janus.ReplayExperimentPoints()))
	}
	for _, p := range pts {
		if !strings.Contains(p.Description, "fleet scale") {
			t.Fatalf("point %q does not describe fleet scale: %q", p.Config, p.Description)
		}
	}
}
