// Command janusd runs the provider-side adapter service: the online half
// of Janus's bilateral engagement. Developers submit condensed hints
// bundles over HTTP; the serving platform reports remaining time budgets
// as functions finish and receives resize decisions for the next function.
//
// Usage:
//
//	janusd -addr :8080 [-miss-threshold 0.01]
//
// API:
//
//	POST /v1/bundles          submit a hints bundle (JSON)
//	POST /v1/decide           {"workflow","suffix","remaining_ms"} -> decision
//	GET  /v1/stats?workflow=  supervisor hit/miss counters
//	GET  /v1/healthz          liveness
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"janus/internal/adapter"
	"janus/internal/httpapi"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	missThreshold := flag.Float64("miss-threshold", adapter.DefaultMissThreshold,
		"miss rate above which the supervisor flags hint regeneration")
	flag.Parse()

	srv := httpapi.NewServer(
		adapter.WithMissThreshold(*missThreshold),
		adapter.WithRegenerateCallback(func(rate float64) {
			log.Printf("supervisor: miss rate %.3f exceeded threshold; notify the developer to regenerate hints", rate)
		}),
	)
	server := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("janusd: adapter service listening on %s", *addr)
	if err := server.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}
