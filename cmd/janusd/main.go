// Command janusd runs the provider-side adapter service: the online half
// of Janus's bilateral engagement. Developers submit condensed hints
// bundles over HTTP; the serving platform reports remaining time budgets
// as functions finish and receives resize decisions for the next function.
//
// Usage:
//
//	janusd -addr :8080 [-miss-threshold 0.01] [-drain-timeout 10s]
//
// API:
//
//	POST /v1/bundles          submit a hints bundle (JSON)
//	POST /v1/decide           {"workflow","suffix","remaining_ms"} -> decision
//	GET  /v1/stats?workflow=  supervisor hit/miss counters
//	GET  /v1/healthz          liveness
//
// On SIGINT/SIGTERM the server stops accepting connections and drains
// in-flight requests for up to -drain-timeout before exiting, so a
// platform rollout never kills a decision mid-request.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"janus/internal/adapter"
	"janus/internal/httpapi"
)

// serve runs the HTTP server on the listener until ctx is cancelled, then
// drains in-flight requests via http.Server.Shutdown bounded by drain.
// It returns nil on a clean drain, the Shutdown error when the timeout
// expires first, and the Serve error if the server fails outright.
func serve(ctx context.Context, server *http.Server, ln net.Listener, drain time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- server.Serve(ln) }()
	select {
	case err := <-errc:
		// Serve never returns nil; ErrServerClosed here would mean an
		// external Shutdown raced ours, which is still a clean exit.
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil {
		return err
	}
	// Shutdown unblocked Serve; collect its ErrServerClosed so the
	// goroutine never leaks.
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	missThreshold := flag.Float64("miss-threshold", adapter.DefaultMissThreshold,
		"miss rate above which the supervisor flags hint regeneration")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second,
		"how long to drain in-flight requests after SIGINT/SIGTERM")
	flag.Parse()

	srv := httpapi.NewServer(
		adapter.WithMissThreshold(*missThreshold),
		adapter.WithRegenerateCallback(func(rate float64) {
			log.Printf("supervisor: miss rate %.3f exceeded threshold; notify the developer to regenerate hints", rate)
		}),
	)
	server := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("janusd: adapter service listening on %s", ln.Addr())
	if err := serve(ctx, server, ln, *drainTimeout); err != nil {
		log.Fatal(err)
	}
	log.Printf("janusd: drained and stopped")
}
