// Command janusd runs the provider-side control plane: the online half
// of Janus's bilateral engagement. The operator declares tenants,
// workflows, hint bundles, API keys, and quotas in a catalog file that
// loads at boot and hot-reloads — atomically, without dropping in-flight
// decide traffic — on SIGHUP or PUT /v1/catalog. Developers may still
// submit individual bundles over HTTP (the open-tenant path); the
// serving platform reports remaining time budgets as functions finish
// and receives resize decisions for the next function.
//
// Usage:
//
//	janusd -addr :8080 [-catalog catalog.json] [-miss-threshold 0.01] [-drain-timeout 10s]
//
// API:
//
//	POST /v1/bundles          submit a hints bundle (open tenant)
//	POST /v1/decide           {"workflow","suffix","remaining_ms"} -> decision (auth, quota)
//	GET  /v1/stats?workflow=  supervisor hit/miss counters for the calling tenant
//	GET  /v1/catalog          the running catalog
//	PUT  /v1/catalog          validate + atomically swap in a new catalog
//	GET  /v1/metrics          NDJSON stream of per-tenant supervisor snapshots + registry points
//	GET  /v1/prometheus       metrics registry in Prometheus text exposition format
//	GET  /v1/healthz          liveness + catalog generation + build version
//
// The binary's version string is stamped at build time with
//
//	go build -ldflags "-X main.version=v1.2.3" ./cmd/janusd
//
// and surfaces in /v1/healthz and the janusd_build_info metric.
// -log-requests enables one structured access-log line per request
// (timestamp, method, path, tenant, status, latency, bytes) on stderr.
//
// On SIGHUP the catalog file is re-read, validated, and swapped in
// all-or-nothing; a bad file leaves the running catalog serving. On
// SIGINT/SIGTERM the server stops accepting connections and drains
// in-flight requests for up to -drain-timeout before exiting, so a
// platform rollout never kills a decision mid-request.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"janus/internal/adapter"
	"janus/internal/catalog"
	"janus/internal/httpapi"
)

// version is the build stamp: overridden by the release pipeline via
// -ldflags "-X main.version=...", "dev" on plain go-build binaries.
var version = "dev"

// serve runs the HTTP server on the listener until ctx is cancelled, then
// drains in-flight requests via http.Server.Shutdown bounded by drain.
// It returns nil on a clean drain, the Shutdown error when the timeout
// expires first, and the Serve error if the server fails outright.
func serve(ctx context.Context, server *http.Server, ln net.Listener, drain time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- server.Serve(ln) }()
	select {
	case err := <-errc:
		// Serve never returns nil; ErrServerClosed here would mean an
		// external Shutdown raced ours, which is still a clean exit.
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil {
		return err
	}
	// Shutdown unblocked Serve; collect its ErrServerClosed so the
	// goroutine never leaks.
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// loadCatalogFile reads, parses, validates, and atomically installs the
// catalog at path. The registry is untouched on any error — the reload
// contract SIGHUP relies on.
func loadCatalogFile(reg *catalog.Registry, path string) (int64, []catalog.Change, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, fmt.Errorf("catalog %s: %w", path, err)
	}
	f, err := catalog.Parse(data)
	if err != nil {
		return 0, nil, fmt.Errorf("catalog %s: %w", path, err)
	}
	return reg.Load(f)
}

// reloadOnSIGHUP re-reads the catalog file on every SIGHUP until ctx
// ends, logging the swap (or the rejection, with the running catalog
// left serving).
func reloadOnSIGHUP(ctx context.Context, reg *catalog.Registry, path string, logf func(string, ...any)) {
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	for {
		select {
		case <-ctx.Done():
			return
		case <-hup:
			gen, changes, err := loadCatalogFile(reg, path)
			if err != nil {
				logf("janusd: SIGHUP reload rejected, catalog unchanged: %v", err)
				continue
			}
			logf("janusd: SIGHUP reload swapped in generation %d (%d changes)", gen, len(changes))
			for _, c := range changes {
				logf("janusd:   %s", c)
			}
		}
	}
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	catalogPath := flag.String("catalog", "",
		"declarative tenant catalog (JSON); loaded at boot and re-loaded on SIGHUP")
	missThreshold := flag.Float64("miss-threshold", adapter.DefaultMissThreshold,
		"miss rate above which the supervisor flags hint regeneration")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second,
		"how long to drain in-flight requests after SIGINT/SIGTERM")
	logRequests := flag.Bool("log-requests", false,
		"write one structured access-log line per request to stderr")
	flag.Parse()

	srv := httpapi.NewServer(
		adapter.WithMissThreshold(*missThreshold),
		adapter.WithRegenerateCallback(func(rate float64) {
			log.Printf("supervisor: miss rate %.3f exceeded threshold; notify the developer to regenerate hints", rate)
		}),
	)
	srv.SetVersion(version)
	if *logRequests {
		srv.SetAccessLog(os.Stderr)
	}
	if *catalogPath != "" {
		gen, _, err := loadCatalogFile(srv.Registry(), *catalogPath)
		if err != nil {
			log.Fatal(err)
		}
		snap := srv.Registry().Snapshot()
		log.Printf("janusd: catalog generation %d loaded from %s (%d tenants)", gen, *catalogPath, len(snap.Tenants))
	}
	server := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *catalogPath != "" {
		go reloadOnSIGHUP(ctx, srv.Registry(), *catalogPath, log.Printf)
	}
	log.Printf("janusd %s: control plane listening on %s", version, ln.Addr())
	if err := serve(ctx, server, ln, *drainTimeout); err != nil {
		log.Fatal(err)
	}
	log.Printf("janusd: drained and stopped")
}
