package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"janus/internal/catalog"
	"janus/internal/hints"
)

// writeCatalog writes a one-tenant catalog answering mc millicores and
// returns the path.
func writeCatalog(t *testing.T, path string, mc int) {
	t.Helper()
	tab, err := hints.Condense(&hints.RawTable{Suffix: 0, Weight: 1, Hints: []hints.Hint{
		{BudgetMs: 2000, HeadMillicores: mc, HeadPercentile: 99},
	}})
	if err != nil {
		t.Fatal(err)
	}
	f := &catalog.File{
		Version: 1,
		Tenants: map[string]*catalog.Tenant{
			"acme": {
				APIKey: "key-acme",
				Workflows: map[string]*catalog.Entry{
					"ia": {Bundle: &hints.Bundle{
						Workflow: "ia", Batch: 1, Weight: 1, SLOMs: 3000, MaxMillicores: 3000,
						Tables: []*hints.Table{tab},
					}},
				},
			},
		},
	}
	data, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLoadCatalogFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "catalog.json")
	writeCatalog(t, path, 1100)
	reg := catalog.NewRegistry()
	gen, changes, err := loadCatalogFile(reg, path)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 || len(changes) != 1 {
		t.Fatalf("boot load: gen=%d changes=%v", gen, changes)
	}
	ten, ok := reg.Authenticate("key-acme")
	if !ok {
		t.Fatal("loaded tenant missing")
	}
	a, _ := ten.Adapter("ia")
	if d, _ := a.Decide(0, 2500*time.Millisecond); d.Millicores != 1100 {
		t.Fatalf("decision = %+v", d)
	}

	// A missing file names the path and leaves the registry untouched.
	if _, _, err := loadCatalogFile(reg, filepath.Join(dir, "missing.json")); err == nil ||
		!strings.Contains(err.Error(), "missing.json") {
		t.Fatalf("missing file error = %v", err)
	}
	// So does a corrupt file.
	corrupt := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corrupt, []byte("{oops"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadCatalogFile(reg, corrupt); err == nil || !strings.Contains(err.Error(), "corrupt.json") {
		t.Fatalf("corrupt file error = %v", err)
	}
	// And a structurally-valid but invalid catalog.
	if err := os.WriteFile(corrupt, []byte(`{"version":1,"tenants":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadCatalogFile(reg, corrupt); err == nil {
		t.Fatal("invalid catalog loaded")
	}
	if reg.Generation() != 1 {
		t.Fatalf("failed loads moved the generation to %d", reg.Generation())
	}
}

// TestReloadOnSIGHUP drives the reload goroutine with a real SIGHUP: the
// rewritten file swaps in, a broken file is rejected with the running
// catalog left serving, and the goroutine exits on context cancel.
func TestReloadOnSIGHUP(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "catalog.json")
	writeCatalog(t, path, 1100)
	reg := catalog.NewRegistry()
	if _, _, err := loadCatalogFile(reg, path); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var logs []string
	logf := func(format string, args ...any) {
		mu.Lock()
		logs = append(logs, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		reloadOnSIGHUP(ctx, reg, path, logf)
	}()
	// Give signal.Notify a beat to register before raising.
	time.Sleep(20 * time.Millisecond)

	raise := func() {
		t.Helper()
		if err := syscall.Kill(syscall.Getpid(), syscall.SIGHUP); err != nil {
			t.Fatal(err)
		}
	}
	waitGen := func(want int64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for reg.Generation() != want {
			if time.Now().After(deadline) {
				t.Fatalf("generation stuck at %d, want %d", reg.Generation(), want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	writeCatalog(t, path, 1101)
	raise()
	waitGen(2)
	ten, _ := reg.Authenticate("key-acme")
	a, _ := ten.Adapter("ia")
	if d, _ := a.Decide(0, 2500*time.Millisecond); d.Millicores != 1101 {
		t.Fatalf("post-SIGHUP decision = %+v", d)
	}

	// Break the file: the reload is rejected, generation and serving
	// unchanged, and the rejection is logged.
	if err := os.WriteFile(path, []byte("{oops"), 0o644); err != nil {
		t.Fatal(err)
	}
	raise()
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		rejected := false
		for _, l := range logs {
			if strings.Contains(l, "rejected") {
				rejected = true
			}
		}
		mu.Unlock()
		if rejected {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("rejected reload never logged")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if reg.Generation() != 2 {
		t.Fatalf("broken reload moved the generation to %d", reg.Generation())
	}
	if d, _ := a.Decide(0, 2500*time.Millisecond); d.Millicores != 1101 {
		t.Fatalf("broken reload disturbed serving: %+v", d)
	}

	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("reload goroutine did not exit on cancel")
	}
}
