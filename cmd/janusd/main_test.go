package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"janus/internal/httpapi"
)

// startServe runs serve() on an ephemeral port and returns the base URL,
// the cancel that simulates SIGINT/SIGTERM, and the serve result channel.
func startServe(t *testing.T, handler http.Handler, drain time.Duration) (string, context.CancelFunc, chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	server := &http.Server{Handler: handler}
	done := make(chan error, 1)
	go func() { done <- serve(ctx, server, ln, drain) }()
	return "http://" + ln.Addr().String(), cancel, done
}

func TestServeServesUntilSignal(t *testing.T) {
	url, cancel, done := startServe(t, httpapi.NewServer().Handler(), 5*time.Second)
	defer cancel()
	resp, err := http.Get(url + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v after a clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return after the signal")
	}
	// The listener is closed: new connections are refused.
	if _, err := http.Get(url + "/v1/healthz"); err == nil {
		t.Fatal("server still accepting connections after drain")
	}
}

// TestServeDrainsInFlightRequest pins the drain path: a request in flight
// when the signal arrives completes with a 200 instead of dying with the
// process.
func TestServeDrainsInFlightRequest(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		fmt.Fprint(w, "drained")
	})
	url, cancel, done := startServe(t, mux, 5*time.Second)
	defer cancel()

	type result struct {
		body string
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get(url + "/slow")
		if err != nil {
			got <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		got <- result{body: string(body), err: err}
	}()

	<-entered // the request is in the handler
	cancel()  // SIGINT/SIGTERM arrives mid-request

	// Shutdown must wait for the handler, not kill it.
	select {
	case err := <-done:
		t.Fatalf("serve returned (%v) before the in-flight request finished", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	select {
	case r := <-got:
		if r.err != nil || r.body != "drained" {
			t.Fatalf("in-flight request got %q, %v", r.body, r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v after draining", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return after the drain")
	}
}

// TestServeDrainTimeoutGivesUp pins the bounded drain: a handler that
// never finishes cannot wedge shutdown past the timeout.
func TestServeDrainTimeoutGivesUp(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	mux := http.NewServeMux()
	mux.HandleFunc("/wedge", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
	})
	url, cancel, done := startServe(t, mux, 50*time.Millisecond)
	defer cancel()
	go func() {
		resp, err := http.Get(url + "/wedge")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("serve reported a clean drain despite the wedged handler")
		}
		if !strings.Contains(err.Error(), "deadline") {
			t.Fatalf("drain-timeout error = %v, want a deadline error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not give up at the drain timeout")
	}
}
