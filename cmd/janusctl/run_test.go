package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"janus/internal/catalog"
	"janus/internal/hints"
	"janus/internal/httpapi"
)

// writeCatalogFile marshals a two-tenant catalog to dir/name and
// returns the path. mc differentiates versions for diff/push tests.
func writeCatalogFile(t *testing.T, dir, name string, mc int) string {
	t.Helper()
	tab, err := hints.Condense(&hints.RawTable{Suffix: 0, Weight: 1, Hints: []hints.Hint{
		{BudgetMs: 2000, HeadMillicores: mc, HeadPercentile: 99},
	}})
	if err != nil {
		t.Fatal(err)
	}
	f := &catalog.File{
		Version: 1,
		Tenants: map[string]*catalog.Tenant{
			"acme": {
				APIKey: "key-acme",
				Quota:  &catalog.Quota{RatePerSec: 100, Burst: 10},
				Workflows: map[string]*catalog.Entry{
					"ia": {Bundle: &hints.Bundle{
						Workflow: "ia", Batch: 1, Weight: 1, SLOMs: 3000, MaxMillicores: 3000,
						Tables: []*hints.Table{tab},
					}},
				},
			},
		},
	}
	data, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// runCtl invokes run() capturing both streams.
func runCtl(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunUsageErrors(t *testing.T) {
	code, _, stderr := runCtl()
	if code != 2 || !strings.Contains(stderr, "usage:") {
		t.Fatalf("no args: code=%d stderr=%q", code, stderr)
	}
	code, _, stderr = runCtl("frobnicate")
	if code != 2 || !strings.Contains(stderr, "usage:") {
		t.Fatalf("unknown command: code=%d stderr=%q", code, stderr)
	}
	code, _, _ = runCtl("catalog")
	if code != 1 {
		t.Fatalf("bare catalog: code=%d", code)
	}
	code, _, stderr = runCtl("catalog", "frobnicate")
	if code != 1 || !strings.Contains(stderr, "unknown catalog subcommand") {
		t.Fatalf("unknown catalog subcommand: code=%d stderr=%q", code, stderr)
	}
}

// TestRunFileDiagnostics pins the failure contract for every file-taking
// command: a missing or corrupt input exits 1 with exactly one stderr
// line, prefixed "janusctl:", naming the offending file — never a stack
// dump, never silence.
func TestRunFileDiagnostics(t *testing.T) {
	dir := t.TempDir()
	corrupt := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corrupt, []byte("{definitely not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	missing := filepath.Join(dir, "missing.json")
	cases := []struct {
		name string
		args []string
		path string
	}{
		{"inspect missing bundle", []string{"inspect", "-bundle", missing}, missing},
		{"inspect corrupt bundle", []string{"inspect", "-bundle", corrupt}, corrupt},
		{"decide missing bundle", []string{"decide", "-bundle", missing}, missing},
		{"submit corrupt bundle", []string{"submit", "-bundle", corrupt}, corrupt},
		{"profile missing workflow file", []string{"profile", "-workflow-file", missing}, missing},
		{"profile corrupt workflow file", []string{"profile", "-workflow-file", corrupt}, corrupt},
		{"synthesize missing profiles", []string{"synthesize", "-profiles", missing}, missing},
		{"synthesize corrupt profiles", []string{"synthesize", "-profiles", corrupt}, corrupt},
		{"catalog validate missing", []string{"catalog", "validate", "-f", missing}, missing},
		{"catalog validate corrupt", []string{"catalog", "validate", "-f", corrupt}, corrupt},
		{"catalog push corrupt", []string{"catalog", "push", "-f", corrupt}, corrupt},
		{"catalog diff missing side", []string{"catalog", "diff", "-a", missing, "-b", missing}, missing},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCtl(tc.args...)
			if code != 1 {
				t.Fatalf("code = %d, want 1 (stderr %q)", code, stderr)
			}
			lines := strings.Split(strings.TrimRight(stderr, "\n"), "\n")
			if len(lines) != 1 {
				t.Fatalf("diagnostic is %d lines, want 1: %q", len(lines), stderr)
			}
			if !strings.HasPrefix(lines[0], "janusctl: ") {
				t.Fatalf("diagnostic %q lacks the janusctl: prefix", lines[0])
			}
			if !strings.Contains(lines[0], tc.path) {
				t.Fatalf("diagnostic %q does not name %s", lines[0], tc.path)
			}
		})
	}
}

func TestCatalogValidateCommand(t *testing.T) {
	dir := t.TempDir()
	path := writeCatalogFile(t, dir, "catalog.json", 1100)
	code, stdout, _ := runCtl("catalog", "validate", "-f", path)
	if code != 0 || !strings.Contains(stdout, "valid: 1 tenants, 1 workflows") {
		t.Fatalf("validate: code=%d stdout=%q", code, stdout)
	}
	// A structurally-valid but semantically-broken catalog is refused.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version":1,"tenants":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runCtl("catalog", "validate", "-f", bad)
	if code != 1 || !strings.Contains(stderr, "no tenants") {
		t.Fatalf("invalid catalog: code=%d stderr=%q", code, stderr)
	}
}

func TestCatalogDiffCommand(t *testing.T) {
	dir := t.TempDir()
	a := writeCatalogFile(t, dir, "a.json", 1100)
	b := writeCatalogFile(t, dir, "b.json", 1101)
	code, stdout, _ := runCtl("catalog", "diff", "-a", a, "-b", b)
	if code != 0 || !strings.Contains(stdout, "acme/ia: bundle changed") {
		t.Fatalf("diff: code=%d stdout=%q", code, stdout)
	}
	code, stdout, _ = runCtl("catalog", "diff", "-a", a, "-b", a)
	if code != 0 || !strings.Contains(stdout, "catalogs are equivalent") {
		t.Fatalf("self diff: code=%d stdout=%q", code, stdout)
	}
	code, _, stderr := runCtl("catalog", "diff", "-a", a)
	if code != 1 || !strings.Contains(stderr, "-b NEW") {
		t.Fatalf("half diff: code=%d stderr=%q", code, stderr)
	}
}

func TestMetricsCommand(t *testing.T) {
	dir := t.TempDir()
	path := writeCatalogFile(t, dir, "catalog.json", 1100)
	srv := httpapi.NewServer()
	srv.SetVersion("test-build")
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if code, _, stderr := runCtl("catalog", "push", "-f", path, "-server", ts.URL); code != 0 {
		t.Fatalf("push failed: %s", stderr)
	}
	// Move the supervisor and registry counters with one decide.
	if _, err := httpapi.NewClient(ts.URL).WithAPIKey("key-acme").Decide("ia", 0, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runCtl("metrics", "-server", ts.URL)
	if code != 0 {
		t.Fatalf("metrics: code=%d stderr=%q", code, stderr)
	}
	for _, want := range []string{
		"catalog generation 1",
		"tenant acme",
		"workflow ia",
		"janusd_decisions_total",
		`janusd_build_info{version="test-build"} 1`,
	} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, stdout)
		}
	}
	code, stdout, _ = runCtl("metrics", "-server", ts.URL, "-prom")
	if code != 0 || !strings.Contains(stdout, "# TYPE janusd_decisions_total counter") {
		t.Fatalf("metrics -prom: code=%d stdout=%q", code, stdout)
	}
	// A dead server is one diagnostic line, not a hang or a panic.
	code, _, stderr = runCtl("metrics", "-server", "http://127.0.0.1:1")
	if code != 1 || !strings.HasPrefix(stderr, "janusctl: ") {
		t.Fatalf("dead server metrics: code=%d stderr=%q", code, stderr)
	}
}

func TestCatalogPushCommand(t *testing.T) {
	dir := t.TempDir()
	path := writeCatalogFile(t, dir, "catalog.json", 1100)
	srv := httpapi.NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	code, stdout, _ := runCtl("catalog", "push", "-f", path, "-server", ts.URL)
	if code != 0 || !strings.Contains(stdout, "generation 1, 1 tenants, 1 workflows") {
		t.Fatalf("push: code=%d stdout=%q", code, stdout)
	}
	if srv.Registry().Generation() != 1 {
		t.Fatal("push did not reach the registry")
	}
	// Pushing an update reports the diff lines.
	next := writeCatalogFile(t, dir, "next.json", 1101)
	code, stdout, _ = runCtl("catalog", "push", "-f", next, "-server", ts.URL)
	if code != 0 || !strings.Contains(stdout, "acme/ia: bundle changed") {
		t.Fatalf("push update: code=%d stdout=%q", code, stdout)
	}
	// A dead server is one diagnostic line, not a hang or a panic.
	code, _, stderr := runCtl("catalog", "push", "-f", path, "-server", "http://127.0.0.1:1")
	if code != 1 || !strings.HasPrefix(stderr, "janusctl: ") {
		t.Fatalf("dead server push: code=%d stderr=%q", code, stderr)
	}
}
