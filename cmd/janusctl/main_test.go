package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"janus/internal/hints"
	"janus/internal/httpapi"
	"janus/internal/profile"
)

// TestPipelineEndToEnd drives the developer-side offline pipeline exactly
// as the command line does — profile -> synthesize -> inspect -> decide ->
// submit — against a temp dir and an in-process janusd, checking each
// stage's artifact instead of its stdout.
func TestPipelineEndToEnd(t *testing.T) {
	dir := t.TempDir()
	profiles := filepath.Join(dir, "profiles.json")
	bundle := filepath.Join(dir, "bundle.json")

	// profile: a reduced sample count keeps the test fast; the artifact
	// must parse back as a profile set for the ia chain.
	if err := cmdProfile([]string{"-workflow", "ia", "-samples", "200", "-seed", "7", "-o", profiles}); err != nil {
		t.Fatalf("profile: %v", err)
	}
	data, err := os.ReadFile(profiles)
	if err != nil {
		t.Fatal(err)
	}
	set, err := profile.ParseSet(data)
	if err != nil {
		t.Fatalf("profile artifact does not parse: %v", err)
	}
	if set.Workflow.Name() != "ia" || set.Len() != 3 {
		t.Fatalf("profiled %s with %d groups", set.Workflow.Name(), set.Len())
	}

	// synthesize: the bundle must validate, carry one table per chain
	// suffix, and be condensed (every table non-empty).
	if err := cmdSynthesize([]string{"-profiles", profiles, "-mode", "janus", "-step-ms", "25", "-o", bundle}); err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	b, err := loadBundle(bundle)
	if err != nil {
		t.Fatalf("bundle artifact does not parse: %v", err)
	}
	if b.Workflow != "ia" || b.Stages() != 3 {
		t.Fatalf("bundle covers %s with %d tables", b.Workflow, b.Stages())
	}
	for _, tab := range b.Tables {
		if tab.Size() == 0 {
			t.Fatalf("suffix %d table is empty", tab.Suffix)
		}
	}

	// inspect and decide run off the same artifact: a budget at the SLO
	// must hit, a hopeless budget must miss (escalation).
	if err := cmdInspect([]string{"-bundle", bundle}); err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if err := cmdDecide([]string{"-bundle", bundle, "-suffix", "0", "-remaining", "3000ms"}); err != nil {
		t.Fatalf("decide: %v", err)
	}
	if err := cmdDecide([]string{"-bundle", bundle, "-suffix", "2", "-remaining", "1ms"}); err != nil {
		t.Fatalf("decide on a miss budget: %v", err)
	}
	if r, ok := b.Tables[0].Lookup(3 * time.Second); !ok || r.Millicores <= 0 {
		t.Fatalf("SLO budget does not hit the synthesized table: %+v, %t", r, ok)
	}

	// submit: the bundle lands on a live adapter service and is queryable.
	srv := httpapi.NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if err := cmdSubmit([]string{"-bundle", bundle, "-server", ts.URL}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, ok := srv.Adapter("ia"); !ok {
		t.Fatal("submitted bundle not deployed on the service")
	}
}

// TestPipelineWorkflowFile covers the custom-workflow path: profile a
// JSON spec instead of a built-in chain.
func TestPipelineWorkflowFile(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "wf.json")
	out := filepath.Join(dir, "profiles.json")
	specJSON := `{"name":"custom","slo_ms":2000,"functions":[{"name":"a","function":"od"},{"name":"b","function":"qa"}],"edges":[["a","b"]]}`
	if err := os.WriteFile(spec, []byte(specJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdProfile([]string{"-workflow-file", spec, "-samples", "150", "-o", out}); err != nil {
		t.Fatalf("profile custom workflow: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	set, err := profile.ParseSet(data)
	if err != nil {
		t.Fatal(err)
	}
	if set.Workflow.Name() != "custom" || set.Len() != 2 {
		t.Fatalf("profiled %s with %d groups", set.Workflow.Name(), set.Len())
	}
}

func TestPipelineErrors(t *testing.T) {
	dir := t.TempDir()
	if err := cmdProfile([]string{"-workflow", "nope", "-o", filepath.Join(dir, "p.json")}); err == nil ||
		!strings.Contains(err.Error(), "nope") {
		t.Fatalf("unknown workflow error = %v", err)
	}
	if _, err := parseMode("janus++"); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if err := cmdSynthesize([]string{"-profiles", filepath.Join(dir, "missing.json")}); err == nil {
		t.Fatal("missing profiles accepted")
	}
	if err := cmdInspect([]string{"-bundle", filepath.Join(dir, "missing.json")}); err == nil {
		t.Fatal("missing bundle accepted")
	}
	// decide validates the suffix against the bundle.
	tab, err := hints.Condense(&hints.RawTable{Suffix: 0, Weight: 1, Hints: []hints.Hint{
		{BudgetMs: 1000, HeadMillicores: 1000, HeadPercentile: 99},
	}})
	if err != nil {
		t.Fatal(err)
	}
	b := &hints.Bundle{Workflow: "w", Batch: 1, Weight: 1, SLOMs: 1000, MaxMillicores: 3000, Tables: []*hints.Table{tab}}
	data, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "bundle.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdDecide([]string{"-bundle", path, "-suffix", "5", "-remaining", "1s"}); err == nil {
		t.Fatal("out-of-range suffix accepted")
	}
}
