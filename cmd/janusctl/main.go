// Command janusctl drives Janus's developer- and operator-side pipeline
// from the command line: profile a workflow's functions, synthesize and
// condense hints tables, inspect bundles, query decisions, submit
// bundles to a running janusd, and manage the declarative tenant catalog
// the control plane serves.
//
// Usage:
//
//	janusctl profile   -workflow ia|va -batch 1 -samples 2000 -seed 1 -o profiles.json
//	janusctl synthesize -profiles profiles.json -mode janus -weight 1 -step-ms 1 -o bundle.json
//	janusctl inspect   -bundle bundle.json
//	janusctl decide    -bundle bundle.json -suffix 0 -remaining 2500ms
//	janusctl submit    -bundle bundle.json -server http://127.0.0.1:8080
//	janusctl catalog validate -f catalog.json
//	janusctl catalog diff     -a running.json -b next.json
//	janusctl catalog push     -f catalog.json -server http://127.0.0.1:8080 [-key ADMINKEY]
//	janusctl metrics   -server http://127.0.0.1:8080 [-key ADMINKEY] [-prom]
//
// Every failure exits non-zero with a one-line "janusctl: ..." diagnostic
// naming the offending file or flag — never a raw stack dump.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"janus/internal/catalog"
	"janus/internal/hints"
	"janus/internal/httpapi"
	"janus/internal/interfere"
	"janus/internal/perfmodel"
	"janus/internal/profile"
	"janus/internal/synth"
	"janus/internal/workflow"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches one invocation and returns the process exit code: 0 on
// success, 1 on a command error (one-line diagnostic on stderr), 2 on a
// usage error. Split from main so tests can pin exit codes and
// diagnostics without spawning a process.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	var err error
	switch args[0] {
	case "profile":
		err = cmdProfile(args[1:])
	case "synthesize":
		err = cmdSynthesize(args[1:])
	case "inspect":
		err = cmdInspect(args[1:])
	case "decide":
		err = cmdDecide(args[1:])
	case "submit":
		err = cmdSubmit(args[1:])
	case "catalog":
		err = cmdCatalog(args[1:], stdout, stderr)
	case "metrics":
		err = cmdMetrics(args[1:], stdout)
	default:
		usage(stderr)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "janusctl:", err)
		return 1
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: janusctl <profile|synthesize|inspect|decide|submit|catalog|metrics> [flags]`)
}

func builtinWorkflow(name string) (*workflow.Workflow, error) {
	switch name {
	case "ia":
		return workflow.IntelligentAssistant(), nil
	case "va":
		return workflow.VideoAnalyze(), nil
	default:
		return nil, fmt.Errorf("unknown workflow %q (have: ia, va)", name)
	}
}

// loadWorkflowFile reads and validates a JSON workflow spec, naming the
// file in every diagnostic so a missing or corrupt spec reads as one
// actionable line.
func loadWorkflowFile(path string) (*workflow.Workflow, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workflow file: %w", err)
	}
	w, err := workflow.ParseSpec(data)
	if err != nil {
		return nil, fmt.Errorf("workflow file %s: %w", path, err)
	}
	return w, nil
}

func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	wfName := fs.String("workflow", "ia", "built-in workflow (ia or va)")
	wfFile := fs.String("workflow-file", "", "JSON workflow spec (overrides -workflow)")
	batch := fs.Int("batch", 1, "concurrency (batch size) to profile")
	samples := fs.Int("samples", 2000, "profiling samples per (allocation, batch) cell")
	seed := fs.Uint64("seed", 1, "random seed")
	out := fs.String("o", "profiles.json", "output file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var w *workflow.Workflow
	var err error
	if *wfFile != "" {
		w, err = loadWorkflowFile(*wfFile)
	} else {
		w, err = builtinWorkflow(*wfName)
	}
	if err != nil {
		return err
	}
	coloc, err := interfere.NewCountSampler([]float64{0.5, 0.35, 0.15})
	if err != nil {
		return err
	}
	prof, err := profile.NewProfiler(perfmodel.Catalog(), coloc, interfere.Default(), *seed)
	if err != nil {
		return err
	}
	prof.SamplesPerConfig = *samples
	set, err := prof.ProfileWorkflow(w, *batch)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(set, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("profiled %s (batch %d, %d samples/cell) -> %s\n", w.Name(), *batch, *samples, *out)
	return nil
}

func parseMode(s string) (synth.Mode, error) {
	switch s {
	case "janus":
		return synth.ModeJanus, nil
	case "janus-":
		return synth.ModeJanusMinus, nil
	case "janus+":
		return synth.ModeJanusPlus, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (have: janus, janus-, janus+)", s)
	}
}

func cmdSynthesize(args []string) error {
	fs := flag.NewFlagSet("synthesize", flag.ExitOnError)
	profiles := fs.String("profiles", "profiles.json", "profile set produced by janusctl profile")
	modeStr := fs.String("mode", "janus", "exploration mode: janus, janus-, janus+")
	weight := fs.Float64("weight", 1, "head-function weight W")
	stepMs := fs.Int("step-ms", 1, "budget sweep granularity (ms)")
	out := fs.String("o", "bundle.json", "output file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	data, err := os.ReadFile(*profiles)
	if err != nil {
		return fmt.Errorf("profiles file: %w", err)
	}
	set, err := profile.ParseSet(data)
	if err != nil {
		return fmt.Errorf("profiles file %s: %w", *profiles, err)
	}
	mode, err := parseMode(*modeStr)
	if err != nil {
		return err
	}
	sy, err := synth.New(synth.Config{
		Profiles:     set,
		Weight:       *weight,
		Mode:         mode,
		BudgetStepMs: *stepMs,
	})
	if err != nil {
		return err
	}
	res, err := sy.GenerateBundle()
	if err != nil {
		return err
	}
	outData, err := res.Bundle.Marshal()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, outData, 0o644); err != nil {
		return err
	}
	raw, condensed := 0, 0
	for i := range res.RawCounts {
		raw += res.RawCounts[i]
		condensed += res.CondensedCounts[i]
	}
	fmt.Printf("synthesized %s (%v, weight %.1f) in %v: %d raw hints -> %d condensed (%.1f%% compression) -> %s\n",
		set.Workflow.Name(), mode, *weight, res.Elapsed.Round(time.Millisecond),
		raw, condensed, hints.CompressionRatio(raw, condensed)*100, *out)
	return nil
}

// loadBundle reads and validates a hints bundle, naming the file in
// every diagnostic.
func loadBundle(path string) (*hints.Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bundle file: %w", err)
	}
	b, err := hints.ParseBundle(data)
	if err != nil {
		return nil, fmt.Errorf("bundle file %s: %w", path, err)
	}
	return b, nil
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	path := fs.String("bundle", "bundle.json", "bundle file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	b, err := loadBundle(*path)
	if err != nil {
		return err
	}
	fmt.Printf("workflow %s, batch %d, weight %.1f, SLO %v, escalation ceiling %d millicores\n",
		b.Workflow, b.Batch, b.Weight, b.SLO(), b.MaxMillicores)
	for _, tab := range b.Tables {
		min, _ := tab.MinBudgetMs()
		max, _ := tab.MaxBudgetMs()
		fmt.Printf("  suffix %d: %d ranges, budgets %d..%d ms\n", tab.Suffix, tab.Size(), min, max)
		for _, r := range tab.Ranges {
			fmt.Printf("    [%6d, %6d] ms -> %4d millicores (p%d)\n", r.StartMs, r.EndMs, r.Millicores, r.Percentile)
		}
	}
	return nil
}

func cmdDecide(args []string) error {
	fs := flag.NewFlagSet("decide", flag.ExitOnError)
	path := fs.String("bundle", "bundle.json", "bundle file")
	suffix := fs.Int("suffix", 0, "sub-workflow head stage")
	remaining := fs.Duration("remaining", time.Second, "remaining time budget")
	if err := fs.Parse(args); err != nil {
		return err
	}
	b, err := loadBundle(*path)
	if err != nil {
		return err
	}
	if *suffix < 0 || *suffix >= b.Stages() {
		return fmt.Errorf("suffix %d out of range [0, %d)", *suffix, b.Stages())
	}
	r, ok := b.Tables[*suffix].Lookup(*remaining)
	if !ok {
		fmt.Printf("MISS: scale to the ceiling (%d millicores)\n", b.MaxMillicores)
		return nil
	}
	fmt.Printf("HIT: %d millicores (head percentile p%d, range [%d, %d] ms)\n",
		r.Millicores, r.Percentile, r.StartMs, r.EndMs)
	return nil
}

func cmdSubmit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	path := fs.String("bundle", "bundle.json", "bundle file")
	server := fs.String("server", "http://127.0.0.1:8080", "janusd address")
	key := fs.String("key", "", "API key (admin key when the catalog sets one)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	b, err := loadBundle(*path)
	if err != nil {
		return err
	}
	client := httpapi.NewClient(*server).WithAPIKey(*key)
	if err := client.SubmitBundle(b); err != nil {
		return err
	}
	fmt.Printf("submitted %s (%d tables, %d ranges) to %s\n", b.Workflow, b.Stages(), b.TotalRanges(), *server)
	return nil
}

// loadCatalog reads and fully validates a catalog file, naming the file
// in every diagnostic.
func loadCatalog(path string) (*catalog.File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("catalog file: %w", err)
	}
	f, err := catalog.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("catalog file %s: %w", path, err)
	}
	return f, nil
}

// cmdCatalog dispatches the catalog subcommands: validate a file
// locally, diff two files, or push one to a running janusd (validated
// locally first, then server-side, swapped in atomically).
func cmdCatalog(args []string, stdout, stderr io.Writer) error {
	if len(args) < 1 {
		fmt.Fprintln(stderr, `usage: janusctl catalog <validate|diff|push> [flags]`)
		return fmt.Errorf("catalog needs a subcommand")
	}
	switch args[0] {
	case "validate":
		return cmdCatalogValidate(args[1:], stdout)
	case "diff":
		return cmdCatalogDiff(args[1:], stdout)
	case "push":
		return cmdCatalogPush(args[1:], stdout)
	default:
		return fmt.Errorf("unknown catalog subcommand %q (have: validate, diff, push)", args[0])
	}
}

func cmdCatalogValidate(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("catalog validate", flag.ExitOnError)
	path := fs.String("f", "catalog.json", "catalog file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := loadCatalog(*path)
	if err != nil {
		return err
	}
	workflows := 0
	for _, t := range f.Tenants {
		workflows += len(t.Workflows)
	}
	fmt.Fprintf(stdout, "catalog %s valid: %d tenants, %d workflows\n", *path, len(f.Tenants), workflows)
	return nil
}

func cmdCatalogDiff(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("catalog diff", flag.ExitOnError)
	a := fs.String("a", "", "old catalog file")
	b := fs.String("b", "", "new catalog file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *a == "" || *b == "" {
		return fmt.Errorf("catalog diff needs -a OLD and -b NEW")
	}
	fa, err := loadCatalog(*a)
	if err != nil {
		return err
	}
	fb, err := loadCatalog(*b)
	if err != nil {
		return err
	}
	changes := catalog.Diff(fa, fb)
	if len(changes) == 0 {
		fmt.Fprintln(stdout, "catalogs are equivalent")
		return nil
	}
	for _, c := range changes {
		fmt.Fprintln(stdout, c.String())
	}
	return nil
}

// cmdMetrics fetches one telemetry snapshot from a running janusd: the
// per-tenant supervisor counters plus the registry points, or (with
// -prom) the raw Prometheus text exposition.
func cmdMetrics(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	server := fs.String("server", "http://127.0.0.1:8080", "janusd address")
	key := fs.String("key", "", "admin API key (when the running catalog sets one)")
	prom := fs.Bool("prom", false, "print the raw Prometheus text exposition instead")
	if err := fs.Parse(args); err != nil {
		return err
	}
	client := httpapi.NewClient(*server).WithAPIKey(*key)
	if *prom {
		text, err := client.Prometheus()
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, text)
		return nil
	}
	snap, err := client.MetricsOnce()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "catalog generation %d\n", snap.Generation)
	for _, t := range snap.Tenants {
		for _, w := range t.Workflows {
			fmt.Fprintf(stdout, "tenant %-12s workflow %-12s hits %8d misses %6d missrate %.4f epoch %.4f\n",
				t.Tenant, w.Workflow, w.Hits, w.Misses, w.MissRate, w.EpochMissRate)
		}
	}
	for _, p := range snap.Points {
		switch p.Kind {
		case "histogram":
			fmt.Fprintf(stdout, "%s%s count %d sum %d\n", p.Name, formatLabels(p.Labels), p.Count, p.Sum)
		default:
			fmt.Fprintf(stdout, "%s%s %d\n", p.Name, formatLabels(p.Labels), p.Value)
		}
	}
	return nil
}

// formatLabels renders a point's labels in the familiar {k="v"} form,
// keys sorted.
func formatLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%q", k, labels[k])
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func cmdCatalogPush(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("catalog push", flag.ExitOnError)
	path := fs.String("f", "catalog.json", "catalog file")
	server := fs.String("server", "http://127.0.0.1:8080", "janusd address")
	key := fs.String("key", "", "admin API key (when the running catalog sets one)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := loadCatalog(*path)
	if err != nil {
		return err
	}
	client := httpapi.NewClient(*server).WithAPIKey(*key)
	resp, err := client.PushCatalog(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "catalog %s pushed to %s: generation %d, %d tenants, %d workflows, %d changes\n",
		*path, *server, resp.Generation, resp.Tenants, resp.Workflows, len(resp.Changes))
	for _, c := range resp.Changes {
		fmt.Fprintf(stdout, "  %s\n", c)
	}
	return nil
}
