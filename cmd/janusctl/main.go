// Command janusctl drives Janus's developer-side offline pipeline from the
// command line: profile a workflow's functions, synthesize and condense
// hints tables, inspect bundles, and query decisions — the workflow a
// developer follows before submitting hints to the provider's janusd.
//
// Usage:
//
//	janusctl profile   -workflow ia|va -batch 1 -samples 2000 -seed 1 -o profiles.json
//	janusctl synthesize -profiles profiles.json -mode janus -weight 1 -step-ms 1 -o bundle.json
//	janusctl inspect   -bundle bundle.json
//	janusctl decide    -bundle bundle.json -suffix 0 -remaining 2500ms
//	janusctl submit    -bundle bundle.json -server http://127.0.0.1:8080
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"janus/internal/hints"
	"janus/internal/httpapi"
	"janus/internal/interfere"
	"janus/internal/perfmodel"
	"janus/internal/profile"
	"janus/internal/synth"
	"janus/internal/workflow"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "profile":
		err = cmdProfile(os.Args[2:])
	case "synthesize":
		err = cmdSynthesize(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "decide":
		err = cmdDecide(os.Args[2:])
	case "submit":
		err = cmdSubmit(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "janusctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: janusctl <profile|synthesize|inspect|decide|submit> [flags]`)
}

func builtinWorkflow(name string) (*workflow.Workflow, error) {
	switch name {
	case "ia":
		return workflow.IntelligentAssistant(), nil
	case "va":
		return workflow.VideoAnalyze(), nil
	default:
		return nil, fmt.Errorf("unknown workflow %q (have: ia, va)", name)
	}
}

func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	wfName := fs.String("workflow", "ia", "built-in workflow (ia or va)")
	wfFile := fs.String("workflow-file", "", "JSON workflow spec (overrides -workflow)")
	batch := fs.Int("batch", 1, "concurrency (batch size) to profile")
	samples := fs.Int("samples", 2000, "profiling samples per (allocation, batch) cell")
	seed := fs.Uint64("seed", 1, "random seed")
	out := fs.String("o", "profiles.json", "output file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var w *workflow.Workflow
	var err error
	if *wfFile != "" {
		data, rerr := os.ReadFile(*wfFile)
		if rerr != nil {
			return rerr
		}
		w, err = workflow.ParseSpec(data)
	} else {
		w, err = builtinWorkflow(*wfName)
	}
	if err != nil {
		return err
	}
	coloc, err := interfere.NewCountSampler([]float64{0.5, 0.35, 0.15})
	if err != nil {
		return err
	}
	prof, err := profile.NewProfiler(perfmodel.Catalog(), coloc, interfere.Default(), *seed)
	if err != nil {
		return err
	}
	prof.SamplesPerConfig = *samples
	set, err := prof.ProfileWorkflow(w, *batch)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(set, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("profiled %s (batch %d, %d samples/cell) -> %s\n", w.Name(), *batch, *samples, *out)
	return nil
}

func parseMode(s string) (synth.Mode, error) {
	switch s {
	case "janus":
		return synth.ModeJanus, nil
	case "janus-":
		return synth.ModeJanusMinus, nil
	case "janus+":
		return synth.ModeJanusPlus, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (have: janus, janus-, janus+)", s)
	}
}

func cmdSynthesize(args []string) error {
	fs := flag.NewFlagSet("synthesize", flag.ExitOnError)
	profiles := fs.String("profiles", "profiles.json", "profile set produced by janusctl profile")
	modeStr := fs.String("mode", "janus", "exploration mode: janus, janus-, janus+")
	weight := fs.Float64("weight", 1, "head-function weight W")
	stepMs := fs.Int("step-ms", 1, "budget sweep granularity (ms)")
	out := fs.String("o", "bundle.json", "output file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	data, err := os.ReadFile(*profiles)
	if err != nil {
		return err
	}
	set, err := profile.ParseSet(data)
	if err != nil {
		return err
	}
	mode, err := parseMode(*modeStr)
	if err != nil {
		return err
	}
	sy, err := synth.New(synth.Config{
		Profiles:     set,
		Weight:       *weight,
		Mode:         mode,
		BudgetStepMs: *stepMs,
	})
	if err != nil {
		return err
	}
	res, err := sy.GenerateBundle()
	if err != nil {
		return err
	}
	outData, err := res.Bundle.Marshal()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, outData, 0o644); err != nil {
		return err
	}
	raw, condensed := 0, 0
	for i := range res.RawCounts {
		raw += res.RawCounts[i]
		condensed += res.CondensedCounts[i]
	}
	fmt.Printf("synthesized %s (%v, weight %.1f) in %v: %d raw hints -> %d condensed (%.1f%% compression) -> %s\n",
		set.Workflow.Name(), mode, *weight, res.Elapsed.Round(time.Millisecond),
		raw, condensed, hints.CompressionRatio(raw, condensed)*100, *out)
	return nil
}

func loadBundle(path string) (*hints.Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return hints.ParseBundle(data)
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	path := fs.String("bundle", "bundle.json", "bundle file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	b, err := loadBundle(*path)
	if err != nil {
		return err
	}
	fmt.Printf("workflow %s, batch %d, weight %.1f, SLO %v, escalation ceiling %d millicores\n",
		b.Workflow, b.Batch, b.Weight, b.SLO(), b.MaxMillicores)
	for _, tab := range b.Tables {
		min, _ := tab.MinBudgetMs()
		max, _ := tab.MaxBudgetMs()
		fmt.Printf("  suffix %d: %d ranges, budgets %d..%d ms\n", tab.Suffix, tab.Size(), min, max)
		for _, r := range tab.Ranges {
			fmt.Printf("    [%6d, %6d] ms -> %4d millicores (p%d)\n", r.StartMs, r.EndMs, r.Millicores, r.Percentile)
		}
	}
	return nil
}

func cmdDecide(args []string) error {
	fs := flag.NewFlagSet("decide", flag.ExitOnError)
	path := fs.String("bundle", "bundle.json", "bundle file")
	suffix := fs.Int("suffix", 0, "sub-workflow head stage")
	remaining := fs.Duration("remaining", time.Second, "remaining time budget")
	if err := fs.Parse(args); err != nil {
		return err
	}
	b, err := loadBundle(*path)
	if err != nil {
		return err
	}
	if *suffix < 0 || *suffix >= b.Stages() {
		return fmt.Errorf("suffix %d out of range [0, %d)", *suffix, b.Stages())
	}
	r, ok := b.Tables[*suffix].Lookup(*remaining)
	if !ok {
		fmt.Printf("MISS: scale to the ceiling (%d millicores)\n", b.MaxMillicores)
		return nil
	}
	fmt.Printf("HIT: %d millicores (head percentile p%d, range [%d, %d] ms)\n",
		r.Millicores, r.Percentile, r.StartMs, r.EndMs)
	return nil
}

func cmdSubmit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	path := fs.String("bundle", "bundle.json", "bundle file")
	server := fs.String("server", "http://127.0.0.1:8080", "janusd address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	b, err := loadBundle(*path)
	if err != nil {
		return err
	}
	client := httpapi.NewClient(*server)
	if err := client.SubmitBundle(b); err != nil {
		return err
	}
	fmt.Printf("submitted %s (%d tables, %d ranges) to %s\n", b.Workflow, b.Stages(), b.TotalRanges(), *server)
	return nil
}
