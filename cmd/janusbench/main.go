// Command janusbench regenerates the paper's tables and figures. Each
// experiment prints the same rows/series the paper reports; EXPERIMENTS.md
// records the paper-vs-measured comparison.
//
// Usage:
//
//	janusbench -experiment all                 # everything (paper scale)
//	janusbench -experiment fig4 -quick         # one figure, reduced scale
//	janusbench -experiment fig9 -parallelism 4 # bound the worker pool
//	janusbench -experiment dag                 # arbitrary-DAG scenario
//	janusbench -experiment fleet -cpuprofile fleet.pprof  # profile a grid
//	janusbench -experiment replay -quick -trace out.ndjson -parallelism 1  # event trace
//	janusbench -experiment replay -quick -timeline -prom metrics.prom      # telemetry
//	janusbench -list                           # names + descriptions
//
// Run -list for the experiment catalog. The sp experiment serves the
// series-parallel Video Analyze scenario (fork-join on the cluster
// substrate) and its arrival-rate sweep; dag serves the six-node
// ML-inference DAG whose cross edge no stage decomposition can express;
// mix serves the multi-tenant scenario — the IA chain, VA chain, and
// series-parallel Video Analyze merged into one arrival stream on a
// shared multi-node cluster — with per-tenant and aggregate tables, a
// placement-policy comparison, and a node-count scale-out sweep; replay
// serves a non-stationary burst+diurnal schedule over the ia/va/dag
// catalog under static pools, the elastic warm-pool autoscaler, and the
// autoscaler with online hint regeneration (the bilateral loop closed
// mid-run); fleet scales the same non-stationary grid to a 200-node
// cluster and O(100k+) requests; trigger serves the dynamic
// trigger-based workflow — conditional branch, data-dependent map
// width, bounded retries, and an externally timed gate — comparing
// static worst-case planning against online shape-aware planning on
// the identical request stream and trigger queue.
//
// Serving points fan out over a worker pool (-parallelism, default
// GOMAXPROCS); results are identical at every setting because requests
// carry pre-sampled runtime conditions.
//
// -json switches stdout to a machine-readable result array (one element
// per experiment, with typed per-row results where the experiment
// defines them), so benchmark trajectories can be recorded as
// BENCH_*.json files.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"janus/internal/experiment"
	"janus/internal/obs"
)

type runner func(*experiment.Suite) (fmt.Stringer, error)

type stringerFunc func() string

func (f stringerFunc) String() string { return f() }

func wrap(s string) fmt.Stringer { return stringerFunc(func() string { return s }) }

// exp pairs an experiment's driver with the one-line description -list
// prints. rows, when set, extracts the experiment's typed per-row results
// for -json; experiments without an extractor emit text only.
type exp struct {
	run  runner
	desc string
	rows func(*experiment.Suite) (any, error)
}

var experiments = map[string]exp{
	"fig1a": {run: func(s *experiment.Suite) (fmt.Stringer, error) { return s.Fig1a() },
		desc: "function latency vs CPU allocation (motivation)"},
	"fig1b": {run: func(s *experiment.Suite) (fmt.Stringer, error) {
		rows, err := s.Fig1b()
		if err != nil {
			return nil, err
		}
		return wrap(experiment.FormatFig1b(rows)), nil
	}, desc: "latency variance across working sets (motivation)"},
	"fig1c": {run: func(s *experiment.Suite) (fmt.Stringer, error) {
		rows, err := s.Fig1c()
		if err != nil {
			return nil, err
		}
		return wrap(experiment.FormatFig1c(rows)), nil
	}, desc: "co-location interference slowdowns (motivation)"},
	"fig2": {run: func(s *experiment.Suite) (fmt.Stringer, error) { return s.Fig2(50) },
		desc: "per-request remaining-budget dispersion (motivation)"},
	"fig4": {run: func(s *experiment.Suite) (fmt.Stringer, error) {
		panels, err := s.Fig4()
		if err != nil {
			return nil, err
		}
		return wrap(experiment.FormatFig4(panels)), nil
	}, desc: "end-to-end latency distributions per system"},
	"fig5": {run: func(s *experiment.Suite) (fmt.Stringer, error) {
		panels, err := s.Fig5()
		if err != nil {
			return nil, err
		}
		return wrap(experiment.FormatFig5(panels)), nil
	}, desc: "resource consumption and SLO compliance per system"},
	"fig6": {run: func(s *experiment.Suite) (fmt.Stringer, error) {
		rows, err := s.Fig6()
		if err != nil {
			return nil, err
		}
		return wrap(experiment.FormatFig6(rows)), nil
	}, desc: "SLO sweep: consumption and violations vs objective"},
	"fig7": {run: func(s *experiment.Suite) (fmt.Stringer, error) { return s.Fig7() },
		desc: "head-weight sensitivity of the synthesizer"},
	"fig8": {run: func(s *experiment.Suite) (fmt.Stringer, error) {
		rows, err := s.Fig8()
		if err != nil {
			return nil, err
		}
		return wrap(experiment.FormatFig8(rows)), nil
	}, desc: "hints-table condensing: raw vs condensed sizes"},
	"fig9": {run: func(s *experiment.Suite) (fmt.Stringer, error) {
		rows, err := s.Fig9()
		if err != nil {
			return nil, err
		}
		return wrap(experiment.FormatFig9(rows)), nil
	}, desc: "concurrency (batch) sweep per system"},
	"sp": {run: func(s *experiment.Suite) (fmt.Stringer, error) {
		rows, err := s.SPScenario()
		if err != nil {
			return nil, err
		}
		sweep, err := s.SPArrivalSweep()
		if err != nil {
			return nil, err
		}
		return wrap(experiment.FormatSPScenario(rows) + "\n" + experiment.FormatSPArrivalSweep(sweep)), nil
	}, desc: "series-parallel Video Analyze scenario + arrival sweep"},
	"dag": {run: func(s *experiment.Suite) (fmt.Stringer, error) {
		rows, err := s.DAGScenario()
		if err != nil {
			return nil, err
		}
		return wrap(experiment.FormatDAGScenario(rows)), nil
	}, desc: "six-node ML-inference DAG with a cross edge (node-granular engine)",
		rows: func(s *experiment.Suite) (any, error) { return s.DAGScenario() }},
	"replay": {run: func(s *experiment.Suite) (fmt.Stringer, error) {
		runs, err := s.ReplayScenario()
		if err != nil {
			return nil, err
		}
		return wrap(experiment.FormatReplay(runs)), nil
	}, desc: "non-stationary replay: static pools vs autoscaler vs autoscaler+online-regen",
		rows: func(s *experiment.Suite) (any, error) {
			runs, err := s.ReplayScenario()
			if err != nil {
				return nil, err
			}
			var rows []experiment.ReplayRow
			for _, run := range runs {
				rows = append(rows, run.Rows...)
				rows = append(rows, run.Aggregate)
			}
			return rows, nil
		}},
	"fleet": {run: func(s *experiment.Suite) (fmt.Stringer, error) {
		runs, err := s.FleetScenario()
		if err != nil {
			return nil, err
		}
		return wrap(experiment.FormatReplay(runs)), nil
	}, desc: "fleet-scale replay: the non-stationary grid on 200 nodes, O(100k+) requests",
		rows: func(s *experiment.Suite) (any, error) {
			runs, err := s.FleetScenario()
			if err != nil {
				return nil, err
			}
			var rows []experiment.ReplayRow
			for _, run := range runs {
				rows = append(rows, run.Rows...)
				rows = append(rows, run.Aggregate)
			}
			return rows, nil
		}},
	"fleetshard": {run: func(s *experiment.Suite) (fmt.Stringer, error) {
		runs, err := s.FleetShardScenario()
		if err != nil {
			return nil, err
		}
		return wrap(experiment.FormatFleetShard(runs)), nil
	}, desc: "sharded fleet sweep: the fleet stream split over independent cells, deterministically merged",
		rows: func(s *experiment.Suite) (any, error) {
			runs, err := s.FleetShardScenario()
			if err != nil {
				return nil, err
			}
			var rows []experiment.ReplayRow
			for _, run := range runs {
				rows = append(rows, run.Rows...)
				rows = append(rows, run.Aggregate)
			}
			return rows, nil
		}},
	"trigger": {run: func(s *experiment.Suite) (fmt.Stringer, error) {
		runs, err := s.TriggerScenario()
		if err != nil {
			return nil, err
		}
		return wrap(experiment.FormatTrigger(runs)), nil
	}, desc: "dynamic trigger orchestration: static worst-case vs online shape-aware planning",
		rows: func(s *experiment.Suite) (any, error) {
			runs, err := s.TriggerScenario()
			if err != nil {
				return nil, err
			}
			var rows []experiment.ReplayRow
			for _, run := range runs {
				rows = append(rows, run.Rows...)
				rows = append(rows, run.Aggregate)
			}
			return rows, nil
		}},
	"mix": {run: func(s *experiment.Suite) (fmt.Stringer, error) {
		scenario, err := s.MixScenario()
		if err != nil {
			return nil, err
		}
		placement, err := s.MixPlacement()
		if err != nil {
			return nil, err
		}
		sweep, err := s.MixScaleOut()
		if err != nil {
			return nil, err
		}
		return wrap(experiment.FormatMixScenario(scenario) + "\n" +
			experiment.FormatMixPlacement(placement) + "\n" +
			experiment.FormatMixScaleOut(sweep)), nil
	}, desc: "multi-tenant mixed workloads on a shared cluster"},
	"table1": {run: func(s *experiment.Suite) (fmt.Stringer, error) { return s.Table1() },
		desc: "headline consumption/latency comparison (Table I)"},
	"table2": {run: func(s *experiment.Suite) (fmt.Stringer, error) { return s.Table2() },
		desc: "per-percentile hint usage (Table II)"},
	"overhead": {run: func(s *experiment.Suite) (fmt.Stringer, error) { return s.Overhead() },
		desc: "synthesis and adaptation overhead measurements"},
}

// order fixes the -experiment all sequence.
var order = []string{
	"fig1a", "fig1b", "fig1c", "fig2", "fig4", "fig5",
	"fig6", "fig7", "fig8", "fig9", "sp", "dag", "mix", "replay", "fleet", "fleetshard", "trigger", "table1", "table2", "overhead",
}

// listString renders the -list output: one "name  description" line per
// experiment, in the -experiment all order.
func listString() string {
	var b strings.Builder
	for _, n := range order {
		fmt.Fprintf(&b, "%-9s %s\n", n, experiments[n].desc)
	}
	return b.String()
}

// resolveTargets maps the -experiment flag to the ordered list of
// experiments to run: the full sequence for "all", the single named
// experiment otherwise.
func resolveTargets(name string) ([]string, error) {
	if name == "all" {
		return order, nil
	}
	if _, ok := experiments[name]; !ok {
		return nil, fmt.Errorf("unknown experiment %q (use -list)", name)
	}
	return []string{name}, nil
}

// resolveParallelism validates the -parallelism flag: 0 means GOMAXPROCS,
// negative values are rejected (a silent fallback would hide typos like
// -parallelism -8).
func resolveParallelism(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("parallelism must be >= 0, got %d", n)
	}
	if n == 0 {
		return runtime.GOMAXPROCS(0), nil
	}
	return n, nil
}

// benchRow is one machine-readable result row: the experiment's typed row
// struct flattened through its JSON field names.
type benchRow map[string]any

// benchResult is the -json schema for one experiment run. Text always
// carries the human rendering; Rows is present when the experiment
// defines a typed row extractor.
type benchResult struct {
	Experiment string     `json:"experiment"`
	ElapsedMs  int64      `json:"elapsed_ms"`
	Rows       []benchRow `json:"rows,omitempty"`
	Text       string     `json:"text"`
}

// toBenchRows flattens a typed row slice into generic rows by a JSON
// round-trip, so every experiment's row struct shares one -json schema
// without hand-written converters.
func toBenchRows(rows any) ([]benchRow, error) {
	data, err := json.Marshal(rows)
	if err != nil {
		return nil, err
	}
	var out []benchRow
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// runOne executes one experiment and assembles its result record.
func runOne(n string, suite *experiment.Suite) (benchResult, error) {
	start := time.Now()
	out, err := experiments[n].run(suite)
	if err != nil {
		return benchResult{}, err
	}
	res := benchResult{
		Experiment: n,
		ElapsedMs:  time.Since(start).Milliseconds(),
		Text:       out.String(),
	}
	if rowsFn := experiments[n].rows; rowsFn != nil {
		// Row extraction reuses the suite's run caches, so this costs no
		// second serving run.
		typed, err := rowsFn(suite)
		if err != nil {
			return benchResult{}, err
		}
		res.Rows, err = toBenchRows(typed)
		if err != nil {
			return benchResult{}, err
		}
	}
	return res, nil
}

func main() {
	name := flag.String("experiment", "all", "experiment to run (or 'all')")
	quick := flag.Bool("quick", false, "reduced scale (fast sanity runs)")
	parallelism := flag.Int("parallelism", 0,
		"concurrent suite points (0 means GOMAXPROCS); any value yields identical results")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonOut := flag.Bool("json", false, "emit machine-readable per-row results as a JSON array")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
	memProfile := flag.String("memprofile", "", "write an allocation (heap) profile taken after the run to this file")
	tracePath := flag.String("trace", "",
		"stream the replay scenarios' event trace to this NDJSON file (use -parallelism 1 for a reproducible file)")
	timeline := flag.Bool("timeline", false, "print a per-second event timeline of the replay scenarios after the run")
	promPath := flag.String("prom", "", "write a Prometheus text snapshot of the serving metrics to this file after the run")
	flag.Parse()

	if *list {
		fmt.Print(listString())
		return
	}
	par, err := resolveParallelism(*parallelism)
	if err != nil {
		fmt.Fprintf(os.Stderr, "janusbench: %v\n", err)
		os.Exit(2)
	}
	targets, err := resolveTargets(*name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "janusbench: %v\n", err)
		os.Exit(2)
	}
	suite := experiment.NewSuite()
	if *quick {
		suite = experiment.QuickSuite()
	}
	suite.SetParallelism(par)
	// Observability attachments: the NDJSON trace, the printed timeline,
	// and the Prometheus snapshot all ride the replay serving runs. With
	// none requested the suite keeps a nil tracer and the engine's
	// zero-cost-off path.
	var sinks []obs.Tracer
	var ndjson *obs.NDJSONWriter
	var traceBuf *bufio.Writer
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "janusbench: -trace: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		traceBuf = bufio.NewWriterSize(f, 1<<20)
		ndjson = obs.NewNDJSONWriter(traceBuf)
		sinks = append(sinks, ndjson)
	}
	var tl *obs.Timeline
	if *timeline {
		tl = obs.NewTimeline(time.Second)
		sinks = append(sinks, tl)
	}
	suite.SetTracer(obs.Multi(sinks...))
	var reg *obs.Registry
	if *promPath != "" {
		reg = obs.NewRegistry()
		suite.SetMetrics(reg)
	}
	// Profiling covers the experiment runs only (setup excluded), so a
	// perf PR can profile the exact grid it optimizes:
	//
	//	janusbench -experiment fleet -cpuprofile fleet.pprof
	//	go tool pprof -top fleet.pprof
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "janusbench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "janusbench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "janusbench: -memprofile: %v\n", err)
				os.Exit(2)
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "janusbench: -memprofile: %v\n", err)
				os.Exit(2)
			}
		}()
	}
	var results []benchResult
	for _, n := range targets {
		res, err := runOne(n, suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "janusbench: %s: %v\n", n, err)
			os.Exit(1)
		}
		if *jsonOut {
			results = append(results, res)
			continue
		}
		fmt.Printf("==== %s (%v) ====\n%s\n", n, time.Duration(res.ElapsedMs)*time.Millisecond, res.Text)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(os.Stderr, "janusbench: %v\n", err)
			os.Exit(1)
		}
	}
	if ndjson != nil {
		err := ndjson.Err()
		if err == nil {
			err = traceBuf.Flush()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "janusbench: -trace: %v\n", err)
			os.Exit(1)
		}
	}
	if reg != nil {
		f, err := os.Create(*promPath)
		if err == nil {
			err = obs.WritePrometheus(f, reg)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "janusbench: -prom: %v\n", err)
			os.Exit(1)
		}
	}
	if tl != nil {
		fmt.Printf("==== timeline ====\n%s", tl.Summary())
	}
}
