// Command janusbench regenerates the paper's tables and figures. Each
// experiment prints the same rows/series the paper reports; EXPERIMENTS.md
// records the paper-vs-measured comparison.
//
// Usage:
//
//	janusbench -experiment all                 # everything (paper scale)
//	janusbench -experiment fig4 -quick         # one figure, reduced scale
//	janusbench -experiment fig9 -parallelism 4 # bound the worker pool
//	janusbench -experiment dag                 # arbitrary-DAG scenario
//	janusbench -list                           # names + descriptions
//
// Run -list for the experiment catalog. The sp experiment serves the
// series-parallel Video Analyze scenario (fork-join on the cluster
// substrate) and its arrival-rate sweep; dag serves the six-node
// ML-inference DAG whose cross edge no stage decomposition can express;
// mix serves the multi-tenant scenario — the IA chain, VA chain, and
// series-parallel Video Analyze merged into one arrival stream on a
// shared multi-node cluster — with per-tenant and aggregate tables, a
// placement-policy comparison, and a node-count scale-out sweep.
//
// Serving points fan out over a worker pool (-parallelism, default
// GOMAXPROCS); results are identical at every setting because requests
// carry pre-sampled runtime conditions.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"janus/internal/experiment"
)

type runner func(*experiment.Suite) (fmt.Stringer, error)

type stringerFunc func() string

func (f stringerFunc) String() string { return f() }

func wrap(s string) fmt.Stringer { return stringerFunc(func() string { return s }) }

// exp pairs an experiment's driver with the one-line description -list
// prints.
type exp struct {
	run  runner
	desc string
}

var experiments = map[string]exp{
	"fig1a": {func(s *experiment.Suite) (fmt.Stringer, error) { return s.Fig1a() },
		"function latency vs CPU allocation (motivation)"},
	"fig1b": {func(s *experiment.Suite) (fmt.Stringer, error) {
		rows, err := s.Fig1b()
		if err != nil {
			return nil, err
		}
		return wrap(experiment.FormatFig1b(rows)), nil
	}, "latency variance across working sets (motivation)"},
	"fig1c": {func(s *experiment.Suite) (fmt.Stringer, error) {
		rows, err := s.Fig1c()
		if err != nil {
			return nil, err
		}
		return wrap(experiment.FormatFig1c(rows)), nil
	}, "co-location interference slowdowns (motivation)"},
	"fig2": {func(s *experiment.Suite) (fmt.Stringer, error) { return s.Fig2(50) },
		"per-request remaining-budget dispersion (motivation)"},
	"fig4": {func(s *experiment.Suite) (fmt.Stringer, error) {
		panels, err := s.Fig4()
		if err != nil {
			return nil, err
		}
		return wrap(experiment.FormatFig4(panels)), nil
	}, "end-to-end latency distributions per system"},
	"fig5": {func(s *experiment.Suite) (fmt.Stringer, error) {
		panels, err := s.Fig5()
		if err != nil {
			return nil, err
		}
		return wrap(experiment.FormatFig5(panels)), nil
	}, "resource consumption and SLO compliance per system"},
	"fig6": {func(s *experiment.Suite) (fmt.Stringer, error) {
		rows, err := s.Fig6()
		if err != nil {
			return nil, err
		}
		return wrap(experiment.FormatFig6(rows)), nil
	}, "SLO sweep: consumption and violations vs objective"},
	"fig7": {func(s *experiment.Suite) (fmt.Stringer, error) { return s.Fig7() },
		"head-weight sensitivity of the synthesizer"},
	"fig8": {func(s *experiment.Suite) (fmt.Stringer, error) {
		rows, err := s.Fig8()
		if err != nil {
			return nil, err
		}
		return wrap(experiment.FormatFig8(rows)), nil
	}, "hints-table condensing: raw vs condensed sizes"},
	"fig9": {func(s *experiment.Suite) (fmt.Stringer, error) {
		rows, err := s.Fig9()
		if err != nil {
			return nil, err
		}
		return wrap(experiment.FormatFig9(rows)), nil
	}, "concurrency (batch) sweep per system"},
	"sp": {func(s *experiment.Suite) (fmt.Stringer, error) {
		rows, err := s.SPScenario()
		if err != nil {
			return nil, err
		}
		sweep, err := s.SPArrivalSweep()
		if err != nil {
			return nil, err
		}
		return wrap(experiment.FormatSPScenario(rows) + "\n" + experiment.FormatSPArrivalSweep(sweep)), nil
	}, "series-parallel Video Analyze scenario + arrival sweep"},
	"dag": {func(s *experiment.Suite) (fmt.Stringer, error) {
		rows, err := s.DAGScenario()
		if err != nil {
			return nil, err
		}
		return wrap(experiment.FormatDAGScenario(rows)), nil
	}, "six-node ML-inference DAG with a cross edge (node-granular engine)"},
	"mix": {func(s *experiment.Suite) (fmt.Stringer, error) {
		scenario, err := s.MixScenario()
		if err != nil {
			return nil, err
		}
		placement, err := s.MixPlacement()
		if err != nil {
			return nil, err
		}
		sweep, err := s.MixScaleOut()
		if err != nil {
			return nil, err
		}
		return wrap(experiment.FormatMixScenario(scenario) + "\n" +
			experiment.FormatMixPlacement(placement) + "\n" +
			experiment.FormatMixScaleOut(sweep)), nil
	}, "multi-tenant mixed workloads on a shared cluster"},
	"table1": {func(s *experiment.Suite) (fmt.Stringer, error) { return s.Table1() },
		"headline consumption/latency comparison (Table I)"},
	"table2": {func(s *experiment.Suite) (fmt.Stringer, error) { return s.Table2() },
		"per-percentile hint usage (Table II)"},
	"overhead": {func(s *experiment.Suite) (fmt.Stringer, error) { return s.Overhead() },
		"synthesis and adaptation overhead measurements"},
}

// order fixes the -experiment all sequence.
var order = []string{
	"fig1a", "fig1b", "fig1c", "fig2", "fig4", "fig5",
	"fig6", "fig7", "fig8", "fig9", "sp", "dag", "mix", "table1", "table2", "overhead",
}

// listString renders the -list output: one "name  description" line per
// experiment, in the -experiment all order.
func listString() string {
	var b strings.Builder
	for _, n := range order {
		fmt.Fprintf(&b, "%-9s %s\n", n, experiments[n].desc)
	}
	return b.String()
}

// resolveTargets maps the -experiment flag to the ordered list of
// experiments to run: the full sequence for "all", the single named
// experiment otherwise.
func resolveTargets(name string) ([]string, error) {
	if name == "all" {
		return order, nil
	}
	if _, ok := experiments[name]; !ok {
		return nil, fmt.Errorf("unknown experiment %q (use -list)", name)
	}
	return []string{name}, nil
}

// resolveParallelism validates the -parallelism flag: 0 means GOMAXPROCS,
// negative values are rejected (a silent fallback would hide typos like
// -parallelism -8).
func resolveParallelism(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("parallelism must be >= 0, got %d", n)
	}
	if n == 0 {
		return runtime.GOMAXPROCS(0), nil
	}
	return n, nil
}

func main() {
	name := flag.String("experiment", "all", "experiment to run (or 'all')")
	quick := flag.Bool("quick", false, "reduced scale (fast sanity runs)")
	parallelism := flag.Int("parallelism", 0,
		"concurrent suite points (0 means GOMAXPROCS); any value yields identical results")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		fmt.Print(listString())
		return
	}
	par, err := resolveParallelism(*parallelism)
	if err != nil {
		fmt.Fprintf(os.Stderr, "janusbench: %v\n", err)
		os.Exit(2)
	}
	targets, err := resolveTargets(*name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "janusbench: %v\n", err)
		os.Exit(2)
	}
	suite := experiment.NewSuite()
	if *quick {
		suite = experiment.QuickSuite()
	}
	suite.SetParallelism(par)
	for _, n := range targets {
		start := time.Now()
		out, err := experiments[n].run(suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "janusbench: %s: %v\n", n, err)
			os.Exit(1)
		}
		fmt.Printf("==== %s (%v) ====\n%s\n", n, time.Since(start).Round(time.Millisecond), out)
	}
}
