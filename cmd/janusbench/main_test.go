package main

import (
	"runtime"
	"strings"
	"testing"
)

func TestResolveTargetsAll(t *testing.T) {
	targets, err := resolveTargets("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != len(order) {
		t.Fatalf("all resolves to %d targets, want %d", len(targets), len(order))
	}
	found := false
	for _, n := range targets {
		if n == "mix" {
			found = true
		}
	}
	if !found {
		t.Fatal("the all sequence does not include the mix experiment")
	}
}

func TestResolveTargetsSingle(t *testing.T) {
	for _, name := range []string{"mix", "sp", "dag", "fig4", "overhead"} {
		targets, err := resolveTargets(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(targets) != 1 || targets[0] != name {
			t.Fatalf("resolveTargets(%s) = %v", name, targets)
		}
	}
}

func TestResolveTargetsUnknown(t *testing.T) {
	_, err := resolveTargets("fig99")
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if !strings.Contains(err.Error(), "fig99") || !strings.Contains(err.Error(), "-list") {
		t.Fatalf("error %q should name the experiment and point at -list", err)
	}
}

func TestResolveParallelism(t *testing.T) {
	if _, err := resolveParallelism(-1); err == nil {
		t.Fatal("negative parallelism accepted")
	}
	n, err := resolveParallelism(0)
	if err != nil || n != runtime.GOMAXPROCS(0) {
		t.Fatalf("resolveParallelism(0) = %d, %v; want GOMAXPROCS", n, err)
	}
	n, err = resolveParallelism(4)
	if err != nil || n != 4 {
		t.Fatalf("resolveParallelism(4) = %d, %v", n, err)
	}
}

// TestListOutput pins the -list surface: every registered experiment
// appears exactly once with a non-empty one-line description.
func TestListOutput(t *testing.T) {
	out := listString()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != len(experiments) {
		t.Fatalf("-list prints %d lines for %d experiments:\n%s", len(lines), len(experiments), out)
	}
	for i, line := range lines {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			t.Fatalf("line %d lacks a description: %q", i, line)
		}
		name := fields[0]
		e, ok := experiments[name]
		if !ok {
			t.Fatalf("line %d names unknown experiment %q", i, name)
		}
		if e.desc == "" || !strings.Contains(line, e.desc) {
			t.Fatalf("line %d does not carry %s's description: %q", i, name, line)
		}
	}
	if !strings.Contains(out, "dag") {
		t.Fatal("-list omits the dag experiment")
	}
}

// TestOrderMatchesExperiments keeps the -experiment all sequence and the
// experiment registry in lockstep: every registered experiment runs under
// "all", and the sequence names only registered experiments.
func TestOrderMatchesExperiments(t *testing.T) {
	inOrder := map[string]bool{}
	for _, n := range order {
		if inOrder[n] {
			t.Errorf("experiment %s appears twice in the all sequence", n)
		}
		inOrder[n] = true
		if _, ok := experiments[n]; !ok {
			t.Errorf("ordered experiment %s is not registered", n)
		}
	}
	for n := range experiments {
		if !inOrder[n] {
			t.Errorf("registered experiment %s missing from the all sequence", n)
		}
	}
}
