package main

import (
	"encoding/json"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"janus/internal/experiment"
)

func TestResolveTargetsAll(t *testing.T) {
	targets, err := resolveTargets("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != len(order) {
		t.Fatalf("all resolves to %d targets, want %d", len(targets), len(order))
	}
	found := false
	for _, n := range targets {
		if n == "mix" {
			found = true
		}
	}
	if !found {
		t.Fatal("the all sequence does not include the mix experiment")
	}
}

func TestResolveTargetsSingle(t *testing.T) {
	for _, name := range []string{"mix", "sp", "dag", "fig4", "overhead"} {
		targets, err := resolveTargets(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(targets) != 1 || targets[0] != name {
			t.Fatalf("resolveTargets(%s) = %v", name, targets)
		}
	}
}

func TestResolveTargetsUnknown(t *testing.T) {
	_, err := resolveTargets("fig99")
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if !strings.Contains(err.Error(), "fig99") || !strings.Contains(err.Error(), "-list") {
		t.Fatalf("error %q should name the experiment and point at -list", err)
	}
}

func TestResolveParallelism(t *testing.T) {
	if _, err := resolveParallelism(-1); err == nil {
		t.Fatal("negative parallelism accepted")
	}
	n, err := resolveParallelism(0)
	if err != nil || n != runtime.GOMAXPROCS(0) {
		t.Fatalf("resolveParallelism(0) = %d, %v; want GOMAXPROCS", n, err)
	}
	n, err = resolveParallelism(4)
	if err != nil || n != 4 {
		t.Fatalf("resolveParallelism(4) = %d, %v", n, err)
	}
}

// TestListOutput pins the -list surface: every registered experiment
// appears exactly once with a non-empty one-line description.
func TestListOutput(t *testing.T) {
	out := listString()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != len(experiments) {
		t.Fatalf("-list prints %d lines for %d experiments:\n%s", len(lines), len(experiments), out)
	}
	for i, line := range lines {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			t.Fatalf("line %d lacks a description: %q", i, line)
		}
		name := fields[0]
		e, ok := experiments[name]
		if !ok {
			t.Fatalf("line %d names unknown experiment %q", i, name)
		}
		if e.desc == "" || !strings.Contains(line, e.desc) {
			t.Fatalf("line %d does not carry %s's description: %q", i, name, line)
		}
	}
	if !strings.Contains(out, "dag") {
		t.Fatal("-list omits the dag experiment")
	}
	// The catalog surfaces added after the figure set must be listed too:
	// the -list output is the discovery surface the doc comment points at.
	for _, name := range []string{"replay", "fleet", "trigger"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list omits the %s experiment", name)
		}
	}
}

// TestOrderMatchesExperiments keeps the -experiment all sequence and the
// experiment registry in lockstep: every registered experiment runs under
// "all", and the sequence names only registered experiments.
func TestOrderMatchesExperiments(t *testing.T) {
	inOrder := map[string]bool{}
	for _, n := range order {
		if inOrder[n] {
			t.Errorf("experiment %s appears twice in the all sequence", n)
		}
		inOrder[n] = true
		if _, ok := experiments[n]; !ok {
			t.Errorf("ordered experiment %s is not registered", n)
		}
	}
	for n := range experiments {
		if !inOrder[n] {
			t.Errorf("registered experiment %s missing from the all sequence", n)
		}
	}
}

// TestJSONSchemaRoundTrips pins the -json output schema: a populated
// result survives a marshal/unmarshal cycle with every field intact, so
// recorded BENCH_*.json trajectories stay parseable.
func TestJSONSchemaRoundTrips(t *testing.T) {
	rows, err := toBenchRows([]experiment.ReplayRow{{
		Config:         experiment.ReplayAutoscaleRegen,
		Tenant:         "ia",
		SLO:            3 * time.Second,
		Requests:       110,
		P50:            1910 * time.Millisecond,
		P99:            2695 * time.Millisecond,
		SLOAttainment:  0.9909,
		MeanMillicores: 5461.8,
		MissRate:       0.0576,
		ColdStarts:     13,
		Parked:         1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	in := benchResult{Experiment: "replay", ElapsedMs: 1234, Rows: rows, Text: "rendered table"}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out benchResult
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("schema does not round-trip:\n in: %+v\nout: %+v", in, out)
	}
	// The row keys are the documented schema, not Go field names.
	for _, key := range []string{"config", "tenant", "slo_ns", "requests", "p50_ns", "p99_ns",
		"slo_attainment", "mean_millicores", "miss_rate", "cold_starts", "parked"} {
		if _, ok := out.Rows[0][key]; !ok {
			t.Errorf("row lacks schema key %q (have %v)", key, out.Rows[0])
		}
	}
}

// TestJSONRowsOmittedWithoutExtractor keeps text-only experiments honest
// in the schema: no rows field, text still present.
func TestJSONRowsOmittedWithoutExtractor(t *testing.T) {
	data, err := json.Marshal(benchResult{Experiment: "fig4", ElapsedMs: 1, Text: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "rows") {
		t.Fatalf("empty rows serialized: %s", data)
	}
}

// TestReplayRegistered keeps the new replay experiment wired through the
// run-selection surfaces: registry, all-sequence, and row extractor.
func TestReplayRegistered(t *testing.T) {
	targets, err := resolveTargets("replay")
	if err != nil || len(targets) != 1 || targets[0] != "replay" {
		t.Fatalf("resolveTargets(replay) = %v, %v", targets, err)
	}
	e, ok := experiments["replay"]
	if !ok {
		t.Fatal("replay not registered")
	}
	if e.rows == nil {
		t.Fatal("replay has no -json row extractor")
	}
	inOrder := false
	for _, n := range order {
		if n == "replay" {
			inOrder = true
		}
	}
	if !inOrder {
		t.Fatal("replay missing from the all sequence")
	}
}

// TestTriggerRegistered keeps the dynamic-orchestration scenario wired
// through the run-selection surfaces: registry, all-sequence, -json row
// extractor, and a description that names both comparison arms.
func TestTriggerRegistered(t *testing.T) {
	targets, err := resolveTargets("trigger")
	if err != nil || len(targets) != 1 || targets[0] != "trigger" {
		t.Fatalf("resolveTargets(trigger) = %v, %v", targets, err)
	}
	e, ok := experiments["trigger"]
	if !ok {
		t.Fatal("trigger not registered")
	}
	if e.rows == nil {
		t.Fatal("trigger has no -json row extractor")
	}
	if !strings.Contains(e.desc, "worst-case") || !strings.Contains(e.desc, "shape-aware") {
		t.Fatalf("trigger description does not name the comparison arms: %q", e.desc)
	}
	inOrder := false
	for _, n := range order {
		if n == "trigger" {
			inOrder = true
		}
	}
	if !inOrder {
		t.Fatal("trigger missing from the all sequence")
	}
}
