module janus

go 1.24
