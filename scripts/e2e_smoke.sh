#!/usr/bin/env bash
# janusd end-to-end smoke: boot the daemon with a real two-tenant
# catalog, decide as both tenants, exhaust a quota into 429s, hot-reload
# over PUT /v1/catalog (janusctl) and over SIGHUP, then drain-shutdown
# cleanly. Run from the repository root:
#
#   ./scripts/e2e_smoke.sh
set -euo pipefail

workdir=$(mktemp -d)
bin="$workdir/bin"
mkdir -p "$bin"
janusd_pid=""
cleanup() {
  if [[ -n "$janusd_pid" ]] && kill -0 "$janusd_pid" 2>/dev/null; then
    kill -9 "$janusd_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

echo "== build janusd + janusctl (version-stamped)"
go build -ldflags "-X main.version=e2e-smoke" -o "$bin/janusd" ./cmd/janusd
go build -o "$bin/janusctl" ./cmd/janusctl

echo "== synthesize bundles for both tenants (reduced sample counts)"
"$bin/janusctl" profile -workflow ia -samples 300 -seed 7 -o "$workdir/ia-prof.json"
"$bin/janusctl" synthesize -profiles "$workdir/ia-prof.json" -step-ms 10 -o "$workdir/ia-bundle.json"
"$bin/janusctl" profile -workflow va -samples 300 -seed 8 -o "$workdir/va-prof.json"
"$bin/janusctl" synthesize -profiles "$workdir/va-prof.json" -step-ms 10 -o "$workdir/va-bundle.json"

echo "== assemble + validate the catalog (acme quota: burst 3, ~no refill)"
go run ./scripts/mkcatalog -ia "$workdir/ia-bundle.json" -va "$workdir/va-bundle.json" \
  -rate 0.001 -burst 3 -admin-key admin-secret -o "$workdir/catalog.json"
"$bin/janusctl" catalog validate -f "$workdir/catalog.json"

echo "== boot janusd with the catalog"
"$bin/janusd" -addr 127.0.0.1:0 -catalog "$workdir/catalog.json" -log-requests >"$workdir/janusd.log" 2>&1 &
janusd_pid=$!
base=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/.*control plane listening on \(.*\)/\1/p' "$workdir/janusd.log" | head -1)
  if [[ -n "$addr" ]]; then base="http://$addr"; break; fi
  kill -0 "$janusd_pid" 2>/dev/null || { cat "$workdir/janusd.log" >&2; fail "janusd died at boot"; }
  sleep 0.1
done
[[ -n "$base" ]] || fail "janusd never reported its listen address"
echo "   janusd at $base (pid $janusd_pid)"

curl -fsS "$base/v1/healthz" | grep -q '"generation":1' || fail "healthz generation != 1"
curl -fsS "$base/v1/healthz" | grep -q '"version":"e2e-smoke"' || fail "healthz lacks the ldflags build stamp"

decide() { # decide KEY WORKFLOW -> http status on stdout, body in $workdir/resp
  curl -s -o "$workdir/resp" -w '%{http_code}' -X POST "$base/v1/decide" \
    -H 'Content-Type: application/json' -H "X-API-Key: $1" \
    -d "{\"workflow\":\"$2\",\"suffix\":0,\"remaining_ms\":2900}"
}

echo "== decide as both tenants"
[[ $(decide acme-key ia) == 200 ]] || { cat "$workdir/resp" >&2; fail "acme decide"; }
grep -q '"millicores"' "$workdir/resp" || fail "acme decide body lacks millicores"
[[ $(decide globex-key va) == 200 ]] || { cat "$workdir/resp" >&2; fail "globex decide"; }
grep -q '"millicores"' "$workdir/resp" || fail "globex decide body lacks millicores"

echo "== tenant isolation and auth"
[[ $(decide acme-key va) == 404 ]] || fail "acme reached globex's workflow"
[[ $(decide wrong-key ia) == 401 ]] || fail "unknown key admitted"
grep -q '"code":"unauthorized"' "$workdir/resp" || fail "401 lacks the error envelope"

echo "== exhaust acme's quota into 429s"
saw429=0
for _ in $(seq 1 5); do
  status=$(decide acme-key ia)
  if [[ $status == 429 ]]; then
    saw429=1
    grep -q '"code":"quota_exceeded"' "$workdir/resp" || fail "429 lacks the envelope code"
  fi
done
[[ $saw429 == 1 ]] || fail "quota never produced a 429"
retry=$(curl -s -D - -o /dev/null -X POST "$base/v1/decide" \
  -H 'Content-Type: application/json' -H 'X-API-Key: acme-key' \
  -d '{"workflow":"ia","suffix":0,"remaining_ms":2900}' | tr -d '\r' | sed -n 's/^Retry-After: //p')
[[ -n "$retry" && "$retry" -ge 1 ]] || fail "429 without a Retry-After header"
echo "   429 with Retry-After: ${retry}s"

echo "== operator surface is admin-gated"
"$bin/janusctl" catalog push -f "$workdir/catalog.json" -server "$base" -key acme-key \
  && fail "tenant key pushed a catalog" || true

echo "== hot-reload over PUT /v1/catalog (quota raised)"
go run ./scripts/mkcatalog -ia "$workdir/ia-bundle.json" -va "$workdir/va-bundle.json" \
  -rate 100 -burst 100 -admin-key admin-secret -o "$workdir/catalog2.json"
"$bin/janusctl" catalog push -f "$workdir/catalog2.json" -server "$base" -key admin-secret \
  | tee "$workdir/push.out"
grep -q 'generation 2' "$workdir/push.out" || fail "push did not report generation 2"
grep -q 'acme: quota changed' "$workdir/push.out" || fail "push did not report the quota diff"
[[ $(decide acme-key ia) == 200 ]] || fail "raised quota still throttles"

echo "== hot-reload over SIGHUP"
cp "$workdir/catalog2.json" "$workdir/catalog.json"
kill -HUP "$janusd_pid"
for _ in $(seq 1 100); do
  if curl -fsS "$base/v1/healthz" | grep -q '"generation":3'; then break; fi
  sleep 0.1
done
curl -fsS "$base/v1/healthz" | grep -q '"generation":3' || fail "SIGHUP reload never landed"

echo "== metrics stream"
curl -fsS -H 'X-API-Key: admin-secret' "$base/v1/metrics?n=2&interval_ms=50" >"$workdir/metrics.ndjson"
[[ $(wc -l <"$workdir/metrics.ndjson") == 2 ]] || fail "metrics stream frame count"
grep -q '"tenant":"acme"' "$workdir/metrics.ndjson" || fail "metrics stream lacks tenant counters"

echo "== prometheus exposition"
curl -fsS -H 'X-API-Key: admin-secret' "$base/v1/prometheus" >"$workdir/prom.txt"
grep -q '# TYPE janusd_decisions_total counter' "$workdir/prom.txt" || fail "prometheus lacks the decisions counter"
grep -Eq 'janusd_decisions_total\{outcome="(hit|miss)",tenant="acme",workflow="ia"\}' "$workdir/prom.txt" || fail "prometheus lacks acme's decide counter"
grep -q 'janusd_build_info{version="e2e-smoke"} 1' "$workdir/prom.txt" || fail "prometheus lacks the build-info gauge"
"$bin/janusctl" metrics -server "$base" -key admin-secret -prom | grep -q 'janusd_http_requests_total' \
  || fail "janusctl metrics -prom lacks the http counter"
[[ $(curl -s -o /dev/null -w '%{http_code}' -H 'X-API-Key: acme-key' "$base/v1/prometheus") == 401 ]] \
  || fail "tenant key reached /v1/prometheus"

echo "== access log"
grep -q 'method=POST path=/v1/decide tenant=acme status=200' "$workdir/janusd.log" \
  || fail "-log-requests produced no access-log line for acme's decide"

echo "== drain shutdown"
kill -TERM "$janusd_pid"
wait "$janusd_pid" || fail "janusd exited non-zero on SIGTERM"
janusd_pid=""
grep -q 'drained and stopped' "$workdir/janusd.log" || { cat "$workdir/janusd.log" >&2; fail "no clean-drain log line"; }

echo "PASS: janusd e2e smoke"
