// Command mkcatalog assembles a two-tenant catalog file from synthesized
// bundle artifacts — the glue between `janusctl synthesize` output and
// `janusd -catalog` input in the e2e smoke test (scripts/e2e_smoke.sh).
//
//	go run ./scripts/mkcatalog -ia ia-bundle.json -va va-bundle.json \
//	    -rate 0.001 -burst 3 -admin-key admin-secret -o catalog.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"janus"
)

func loadBundle(path string) *janus.Bundle {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	b, err := janus.ParseBundle(data)
	if err != nil {
		log.Fatalf("bundle %s: %v", path, err)
	}
	return b
}

func main() {
	iaPath := flag.String("ia", "ia-bundle.json", "acme's IA bundle artifact")
	vaPath := flag.String("va", "va-bundle.json", "globex's VA bundle artifact")
	rate := flag.Float64("rate", 0.001, "acme's quota refill rate (tokens/sec)")
	burst := flag.Int("burst", 3, "acme's quota burst")
	adminKey := flag.String("admin-key", "admin-secret", "admin key gating the operator surface")
	out := flag.String("o", "catalog.json", "output catalog file")
	flag.Parse()

	cat := &janus.TenantCatalog{
		Version:  1,
		AdminKey: *adminKey,
		Tenants: map[string]*janus.CatalogTenant{
			"acme": {
				APIKey: "acme-key",
				Quota:  &janus.CatalogQuota{RatePerSec: *rate, Burst: *burst},
				Workflows: map[string]*janus.CatalogEntry{
					"ia": {Bundle: loadBundle(*iaPath)},
				},
			},
			"globex": {
				APIKey: "globex-key",
				Workflows: map[string]*janus.CatalogEntry{
					"va": {Bundle: loadBundle(*vaPath)},
				},
			},
		},
	}
	data, err := cat.Marshal()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: 2 tenants, quota acme rate=%g burst=%d\n", *out, *rate, *burst)
}
