// Package janus is a from-scratch Go reproduction of "It Takes Two to
// Tango: Serverless Workflow Serving via Bilaterally Engaged Resource
// Adaptation" (IPDPS 2025): the Janus late-binding resource adaptation
// framework together with the entire serverless substrate it runs on.
//
// The package is a facade over the internal packages; everything a
// downstream user needs is exported here:
//
//   - define chain workflows with end-to-end latency SLOs (Workflow),
//   - profile their functions across CPU allocations and concurrency
//     levels (Deploy runs the offline Profiler),
//   - synthesize and condense hints tables (the Synthesizer, Algorithm 1
//     and 2 of the paper), optionally with head weights and the Janus- /
//     Janus+ exploration ablations,
//   - serve requests on the simulated serverless platform under Janus's
//     online Adapter or any of the paper's baselines (GrandSLAM,
//     GrandSLAM+, ORION, the clairvoyant Optimal),
//   - and regenerate every table and figure of the paper's evaluation
//     (ExperimentSuite, cmd/janusbench).
//
// Quickstart:
//
//	w := janus.IntelligentAssistant()                // OD -> QA -> TS, 3s SLO
//	coloc, _ := janus.NewColocationSampler([]float64{0.5, 0.35, 0.15})
//	dep, _ := janus.Deploy(w, janus.DeployOptions{
//		Functions:    janus.Catalog(),
//		Colocation:   coloc,
//		Interference: janus.DefaultInterference(),
//	})
//	reqs, _ := janus.GenerateWorkload(janus.WorkloadConfig{ ... })
//	ex, _ := janus.NewExecutor(janus.DefaultExecutorConfig(), janus.Catalog())
//	traces, _ := ex.Run(reqs, dep.Allocator("janus"))
package janus

import (
	"time"

	"janus/internal/adapter"
	"janus/internal/autoscale"
	"janus/internal/baseline"
	"janus/internal/catalog"
	"janus/internal/cluster"
	"janus/internal/core"
	"janus/internal/experiment"
	"janus/internal/hints"
	"janus/internal/httpapi"
	"janus/internal/interfere"
	"janus/internal/parallel"
	"janus/internal/perfmodel"
	"janus/internal/platform"
	"janus/internal/profile"
	"janus/internal/replay"
	"janus/internal/synth"
	"janus/internal/workflow"
)

// Workflows.

// Workflow is a DAG of functions with an end-to-end latency SLO.
type Workflow = workflow.Workflow

// WorkflowNode is one step of a workflow.
type WorkflowNode = workflow.Node

// NewWorkflow builds and validates a workflow DAG.
func NewWorkflow(name string, slo time.Duration, nodes []WorkflowNode, edges [][2]string) (*Workflow, error) {
	return workflow.New(name, slo, nodes, edges)
}

// NewChain builds a linear workflow through the named catalog functions.
func NewChain(name string, slo time.Duration, functions ...string) (*Workflow, error) {
	return workflow.NewChain(name, slo, functions...)
}

// NewSeriesParallelWorkflow builds a fork-join workflow DAG: stages execute
// in order, the functions inside a stage run as concurrent branches, and
// every stage joins before the next starts. The serving plane executes
// such DAGs directly (per-branch pods, slowest-branch joins).
func NewSeriesParallelWorkflow(name string, slo time.Duration, stages [][]string) (*Workflow, error) {
	return workflow.NewSeriesParallel(name, slo, stages)
}

// ParseWorkflow decodes a JSON workflow spec (see workflow.Spec).
func ParseWorkflow(data []byte) (*Workflow, error) { return workflow.ParseSpec(data) }

// IntelligentAssistant returns the paper's IA evaluation chain
// (object detection -> question answering -> text-to-speech, 3 s SLO).
func IntelligentAssistant() *Workflow { return workflow.IntelligentAssistant() }

// VideoAnalyze returns the paper's VA evaluation chain
// (frame extraction -> image classification -> image compression, 1.5 s SLO).
func VideoAnalyze() *Workflow { return workflow.VideoAnalyze() }

// Functions and runtime dynamics.

// Function is a calibrated serverless function latency model.
type Function = perfmodel.Function

// FunctionParams configures a custom Function.
type FunctionParams = perfmodel.Params

// NewFunction validates params and builds a Function.
func NewFunction(p FunctionParams) (*Function, error) { return perfmodel.New(p) }

// Catalog returns the standard function models (the six workflow functions
// plus the four dominant-dimension micro functions), keyed by name.
func Catalog() map[string]*Function { return perfmodel.Catalog() }

// InterferenceModel maps co-location counts to latency slowdowns.
type InterferenceModel = interfere.Model

// DefaultInterference returns the Fig 1c calibration (up to 8.1x at six
// co-located network-bound instances).
func DefaultInterference() *InterferenceModel { return interfere.Default() }

// ColocationSampler draws per-invocation co-location counts.
type ColocationSampler = interfere.CountSampler

// NewColocationSampler builds a sampler; weights[i] is the probability
// weight of i+1 co-located instances.
func NewColocationSampler(weights []float64) (*ColocationSampler, error) {
	return interfere.NewCountSampler(weights)
}

// Profiles.

// Grid is the millicore allocation grid (paper: 1000-3000, step 100).
type Grid = profile.Grid

// DefaultGrid returns the paper's allocation grid.
func DefaultGrid() Grid { return profile.DefaultGrid() }

// FunctionProfile is the percentile latency table L(p, k) of one function
// at one concurrency level.
type FunctionProfile = profile.FunctionProfile

// ProfileSet bundles a chain workflow's per-stage profiles.
type ProfileSet = profile.Set

// Profiler collects execution-time distributions offline.
type Profiler = profile.Profiler

// NewProfiler builds a profiler over the given functions and contention
// mix.
func NewProfiler(fns map[string]*Function, coloc *ColocationSampler, im *InterferenceModel, seed uint64) (*Profiler, error) {
	return profile.NewProfiler(fns, coloc, im, seed)
}

// Hints and synthesis.

// Hint is one raw synthesizer output (budget -> allocation plan).
type Hint = hints.Hint

// HintsTable is a condensed <start, end, size> table for one sub-workflow.
type HintsTable = hints.Table

// Bundle is the developer-to-provider deployment artifact: one condensed
// table per sub-workflow suffix.
type Bundle = hints.Bundle

// ParseBundle decodes and validates a serialized bundle.
func ParseBundle(data []byte) (*Bundle, error) { return hints.ParseBundle(data) }

// Mode selects the synthesizer's percentile exploration strategy.
type Mode = synth.Mode

// Exploration modes: Janus explores head percentiles, JanusMinus fixes
// P99 everywhere, JanusPlus extends exploration to the next-to-head
// function.
const (
	ModeJanus      = synth.ModeJanus
	ModeJanusMinus = synth.ModeJanusMinus
	ModeJanusPlus  = synth.ModeJanusPlus
)

// Synthesizer generates and condenses hints tables (Algorithms 1 and 2).
type Synthesizer = synth.Synthesizer

// SynthesizerConfig parameterizes a Synthesizer.
type SynthesizerConfig = synth.Config

// NewSynthesizer validates the configuration and precomputes the
// downstream dynamic program.
func NewSynthesizer(cfg SynthesizerConfig) (*Synthesizer, error) { return synth.New(cfg) }

// Deployment pipeline.

// DeployOptions configures the offline pipeline.
type DeployOptions = core.Options

// Deployment is a workflow deployed under Janus: profiles, synthesized
// hints, and the live adapter.
type Deployment = core.Deployment

// Deploy profiles the workflow, synthesizes hints, and starts the adapter.
func Deploy(w *Workflow, opts DeployOptions) (*Deployment, error) { return core.Deploy(w, opts) }

// DeployProfiled runs synthesis over existing profiles.
func DeployProfiled(set *ProfileSet, opts DeployOptions) (*Deployment, error) {
	return core.DeployProfiled(set, opts)
}

// Adapter is the provider-side online component.
type Adapter = adapter.Adapter

// Decision is one adaptation outcome.
type Decision = adapter.Decision

// NewAdapter builds an adapter over a validated bundle.
func NewAdapter(b *Bundle, opts ...AdapterOption) (*Adapter, error) { return adapter.New(b, opts...) }

// AdapterOption customizes an Adapter.
type AdapterOption = adapter.Option

// WithMissThreshold overrides the regeneration miss-rate threshold.
func WithMissThreshold(th float64) AdapterOption { return adapter.WithMissThreshold(th) }

// WithRegenerateCallback installs the developer-notification hook.
func WithRegenerateCallback(fn func(missRate float64)) AdapterOption {
	return adapter.WithRegenerateCallback(fn)
}

// Serving plane.

// Request is one workflow execution with pre-sampled runtime conditions.
type Request = platform.Request

// Trace records one served request.
type Trace = platform.Trace

// Allocator decides per-stage millicore allocations; serving systems are
// Allocator implementations.
type Allocator = platform.Allocator

// MemoizableAllocator marks an Allocator whose Allocate result is a pure
// function of (decision group, millisecond-floored remaining budget)
// within one epoch. The Executor memoizes such allocators across
// identical decision instants — repeated lookups skip Allocate and replay
// the allocator's bookkeeping through RecordCached with the true
// remaining budget, so every observable (stats, epoch windows, traces)
// stays byte-identical to unmemoized serving. The built-in Adapter
// allocators satisfy it; custom allocators opt in by implementing the two
// extra methods.
type MemoizableAllocator = platform.MemoizableAllocator

// FixedAllocator serves immutable per-stage sizes (early binding).
type FixedAllocator = platform.Fixed

// WorkloadConfig drives request generation.
type WorkloadConfig = platform.WorkloadConfig

// GenerateWorkload materializes a request sequence with pre-sampled draws.
func GenerateWorkload(cfg WorkloadConfig) ([]*Request, error) {
	return platform.GenerateWorkload(cfg)
}

// Executor serves workloads on a simulated cluster in virtual time. Run
// serves one workload; RunMixed merges several tenants' workloads — each
// paired with its own Allocator — into one discrete-event run on one
// shared cluster, so tenants contend for warm pods, node millicores, and
// co-location-driven interference.
type Executor = platform.Executor

// ExecutorConfig sizes the serving plane.
type ExecutorConfig = platform.ExecutorConfig

// DefaultExecutorConfig mirrors the paper's testbed (52-core node, warm
// pools, millisecond-scale decision overhead).
func DefaultExecutorConfig() ExecutorConfig { return platform.DefaultExecutorConfig() }

// NewExecutor validates the configuration and builds an executor.
func NewExecutor(cfg ExecutorConfig, fns map[string]*Function) (*Executor, error) {
	return platform.NewExecutor(cfg, fns)
}

// TenantWorkload is one tenant's contribution to a mixed run: a request
// stream paired with the serving system that sizes it (Executor.RunMixed).
type TenantWorkload = platform.TenantWorkload

// ClusterConfig sizes the simulated cluster substrate (node count,
// per-node millicores, warm-pool depth, placement policy); it is the
// Cluster field of ExecutorConfig.
type ClusterConfig = cluster.Config

// DefaultClusterConfig mirrors the paper's single 52-core platform server
// with a per-function warm pool of three pods.
func DefaultClusterConfig() ClusterConfig { return cluster.DefaultConfig() }

// PlacementPolicy selects the node a new pod lands on; placement is
// deterministic so discrete-event runs replay byte for byte.
type PlacementPolicy = cluster.Placement

// Placement policies: spread puts each pod on the node with the most free
// millicores (minimal same-function co-location); first-fit packs the
// lowest-ID node that fits (consolidation, more interference, less
// fragmentation).
const (
	PlacementSpread   = cluster.PlacementSpread
	PlacementFirstFit = cluster.PlacementFirstFit
)

// Trace metrics.

// MeanMillicores reports the paper's resource-consumption metric.
func MeanMillicores(traces []Trace) float64 { return platform.MeanMillicores(traces) }

// SLOViolationRate reports the fraction of requests exceeding their SLO.
func SLOViolationRate(traces []Trace) float64 { return platform.SLOViolationRate(traces) }

// MissRate reports the fraction of hints-table misses across decisions.
func MissRate(traces []Trace) float64 { return platform.MissRate(traces) }

// Baselines.

// GrandSLAM sizes a chain with one identical allocation at P99.
func GrandSLAM(set *ProfileSet, slo time.Duration) (*FixedAllocator, error) {
	return baseline.GrandSLAM(set, slo)
}

// GrandSLAMPlus sizes each function independently at P99.
func GrandSLAMPlus(set *ProfileSet, slo time.Duration) (*FixedAllocator, error) {
	return baseline.GrandSLAMPlus(set, slo)
}

// ORIONConfig tunes the distribution-aware baseline.
type ORIONConfig = baseline.ORIONConfig

// ORION sizes a chain against the P99 of the convolved end-to-end latency
// distribution.
func ORION(set *ProfileSet, slo time.Duration, cfg ORIONConfig) (*FixedAllocator, error) {
	return baseline.ORION(set, slo, cfg)
}

// Optimal is the clairvoyant late-binding lower bound.
type Optimal = baseline.Optimal

// NewOptimal builds the oracle for a chain workflow.
func NewOptimal(w *Workflow, fns map[string]*Function, grid Grid, headroom time.Duration) (*Optimal, error) {
	return baseline.NewOptimal(w, fns, grid, headroom)
}

// Adapter service (the remote provider-side deployment).

// AdapterServer hosts adapters behind a JSON HTTP API.
type AdapterServer = httpapi.Server

// NewAdapterServer builds a server; opts apply to every adapter it hosts.
func NewAdapterServer(opts ...AdapterOption) *AdapterServer { return httpapi.NewServer(opts...) }

// AdapterClient talks to a remote adapter service.
type AdapterClient = httpapi.Client

// NewAdapterClient builds a client for the service at baseURL.
func NewAdapterClient(baseURL string) *AdapterClient { return httpapi.NewClient(baseURL) }

// RemoteAllocator serves platform allocations through a remote adapter.
type RemoteAllocator = httpapi.Allocator

// AdapterAPIError is a non-2xx control-plane response: the HTTP status,
// the stable machine code from the error envelope, and — on quota
// rejections — the server's Retry-After.
type AdapterAPIError = httpapi.APIError

// Control plane (janusd's declarative multi-tenant catalog).

// TenantCatalog is the declarative registry janusd serves: tenants,
// their workflows and hint bundles, API keys, and admission quotas, all
// validated as a whole and hot-swapped atomically.
type TenantCatalog = catalog.File

// CatalogTenant declares one tenant of a TenantCatalog.
type CatalogTenant = catalog.Tenant

// CatalogEntry is one deployable workflow under a tenant.
type CatalogEntry = catalog.Entry

// CatalogQuota is a tenant's token-bucket admission limit.
type CatalogQuota = catalog.Quota

// CatalogChange is one difference between two catalogs.
type CatalogChange = catalog.Change

// ParseCatalog decodes and fully validates a catalog file.
func ParseCatalog(data []byte) (*TenantCatalog, error) { return catalog.Parse(data) }

// DiffCatalogs reports the changes turning old into new would apply.
func DiffCatalogs(old, new *TenantCatalog) []CatalogChange { return catalog.Diff(old, new) }

// CatalogRegistry is the runtime registry serving a catalog: lock-free
// tenant authentication, adapter lookup, and quota admission off one
// atomic pointer, with all-or-nothing reloads.
type CatalogRegistry = catalog.Registry

// NewCatalogRegistry builds an empty registry; opts apply to every
// adapter it creates.
func NewCatalogRegistry(opts ...AdapterOption) *CatalogRegistry { return catalog.NewRegistry(opts...) }

// Series-parallel workflows (the paper's future-work extension): hints
// come from reducing the fan-out/join application to an effective chain
// the unmodified synthesizer consumes; serving runs the fork-join DAG on
// the same discrete-event cluster substrate as the chain experiments, so
// every branch pays warm-pool specialization or cold starts and queues on
// exhausted capacity, and joins wait for the slowest branch.

// SPWorkflow is a series-parallel application: stages in sequence, with
// the functions inside a stage running concurrently until a join.
type SPWorkflow = parallel.Workflow

// SPStage is one stage of an SPWorkflow.
type SPStage = parallel.Stage

// SPProfilerConfig parameterizes composite-stage profiling.
type SPProfilerConfig = parallel.ProfilerConfig

// SPInvocation is one served series-parallel request.
type SPInvocation = parallel.Invocation

// SPServeConfig parameterizes SP serving beyond the profile-time inputs
// (request count, seed, arrival rate, custom executor).
type SPServeConfig = parallel.ServeConfig

// VideoAnalyzeSP returns the series-parallel form of the Video Analyze
// application: frame extraction fanning out to concurrent classification
// and compression.
func VideoAnalyzeSP() *SPWorkflow { return parallel.VideoAnalyze() }

// ReduceSP profiles every stage (parallel stages by max-of-branches
// Monte-Carlo) and returns the effective-chain profile set for
// DeployProfiled.
func ReduceSP(w *SPWorkflow, cfg SPProfilerConfig) (*ProfileSet, error) {
	return parallel.Reduce(w, cfg)
}

// ServeSP executes n requests of the series-parallel workflow under the
// adapter's runtime adaptation, on the default serving plane.
func ServeSP(w *SPWorkflow, a *Adapter, cfg SPProfilerConfig, n int, seed uint64) ([]SPInvocation, error) {
	return parallel.Serve(w, a, cfg, n, seed)
}

// ServeSPTraces executes the series-parallel workflow on the serving plane
// under any allocator and returns full per-branch traces; pass a custom
// Executor via the config to shrink the cluster, disable warm pools, or
// enable live interference.
func ServeSPTraces(w *SPWorkflow, alloc Allocator, cfg SPProfilerConfig, sc SPServeConfig) ([]Trace, error) {
	return parallel.ServeTraces(w, alloc, cfg, sc)
}

// SPInvocations summarizes serving-plane traces as SP invocations.
func SPInvocations(traces []Trace) []SPInvocation { return parallel.Invocations(traces) }

// Arbitrary-DAG workflows (the node-granular engine): serving, profiling,
// and hints synthesis all operate on decision groups — nodes sharing an
// identical predecessor set, which become ready together and share one
// allocation decision — so chains and series-parallel workflows are mere
// special cases. A node starts the moment its predecessors complete;
// joins happen implicitly at nodes with in-degree > 1; each decision is
// made against the critical-path remaining budget and resolved by the
// hints table synthesized for the group's descendant cone.

// WorkflowGroup is one decision group of a workflow DAG (see
// Workflow.DecisionGroups).
type WorkflowGroup = workflow.Group

// NewDAGWorkflow builds and validates an arbitrary-DAG workflow: nodes
// are function invocations, edges are data dependencies, and any acyclic
// shape — partial joins, cross edges, multiple sinks — serves on the
// node-granular engine. It is NewWorkflow under the name the DAG serving
// surface documents.
func NewDAGWorkflow(name string, slo time.Duration, nodes []WorkflowNode, edges [][2]string) (*Workflow, error) {
	return workflow.New(name, slo, nodes, edges)
}

// MLInferenceDAG returns the arbitrary-DAG evaluation scenario: a
// six-node ML-inference pipeline (preprocess fanning out to detect and
// classify, detect additionally feeding ocr, an in-degree-3 join at fuse,
// then publish) whose cross edge admits no stage decomposition. SLO
// 1.3 s.
func MLInferenceDAG() *Workflow {
	w, err := experiment.DAGWorkflow()
	if err != nil {
		panic(err) // static construction; cannot fail
	}
	return w
}

// DAGRow summarizes one system of the DAG scenario
// (ExperimentSuite.DAGScenario; janusbench -experiment dag).
type DAGRow = experiment.DAGRow

// DAGExperimentPoints enumerates the arbitrary-DAG scenario grid — the
// six-node ML-inference DAG under every applicable system — as runner
// points.
func DAGExperimentPoints() ([]ExperimentPoint, error) { return experiment.DAGPoints() }

// Experiments.

// ExperimentSuite reproduces the paper's tables and figures. Suite points
// — (system, workflow, batch) serving runs — fan out over a bounded worker
// pool (see ExperimentRunner); results are identical at every parallelism
// because requests carry pre-sampled runtime conditions.
type ExperimentSuite = experiment.Suite

// ExperimentConfig scales an ExperimentSuite.
type ExperimentConfig = experiment.Config

// NewExperimentSuite returns a paper-scale suite (1000 requests per point,
// 1 ms budget sweeps).
func NewExperimentSuite() *ExperimentSuite { return experiment.NewSuite() }

// NewQuickExperimentSuite returns a reduced-scale suite for fast runs.
func NewQuickExperimentSuite() *ExperimentSuite { return experiment.QuickSuite() }

// ExperimentPoint identifies one suite point: one serving system executing
// one workload (workflow at an SLO, batch size).
type ExperimentPoint = experiment.Point

// ExperimentProgress reports one completed suite point.
type ExperimentProgress = experiment.Progress

// ExperimentRunner fans suite points out over a bounded worker pool with
// per-worker cloned executors, deterministic input-order results, progress
// reporting, and context cancellation.
type ExperimentRunner = experiment.Runner

// EvaluationPoints enumerates the paper's full §V serving grid (every
// evaluation panel crossed with every system) as runner points.
func EvaluationPoints() ([]ExperimentPoint, error) { return experiment.EvaluationPoints() }

// SPExperimentPoints enumerates the series-parallel scenario grid — the
// fork-join Video Analyze workload under every scenario system plus the
// arrival-rate sweep — as runner points.
func SPExperimentPoints() ([]ExperimentPoint, error) { return experiment.SPPoints() }

// Multi-tenant experiments: the IA chain, VA chain, and series-parallel
// Video Analyze served as one merged arrival stream on a shared
// multi-node cluster (ExperimentSuite.MixScenario, MixScaleOut,
// MixPlacement; janusbench -experiment mix).

// MixTenant pairs a tenant name with the workflow it serves in the
// tenant-mix scenario.
type MixTenant = experiment.MixTenant

// MixExperimentTenants returns the scenario's tenants: ia (3 s SLO), va
// (1.5 s), and va-sp (1.1 s). VA and VA-SP share functions, so their pods
// draw from the same warm pools and inflate each other's co-location
// census.
func MixExperimentTenants() ([]MixTenant, error) { return experiment.MixTenants() }

// MixRun is one mixed serving run: every tenant under one system on one
// shared cluster, with per-tenant and aggregate summaries split out of
// the mixed trace set.
type MixRun = experiment.MixRun

// MixTenantRow summarizes one tenant's share of a mixed trace set.
type MixTenantRow = experiment.MixTenantRow

// Non-stationary replay and the online bilateral loop: a phase-based load
// generator (ReplaySchedule) materializes a deterministic bursty/diurnal
// arrival stream that Executor.RunReplay serves with a control loop
// interleaved on the same virtual clock — the elastic warm-pool
// Autoscaler retargets per-function pools each interval (scale-up pods
// pay the full cold start before serving anyone), and OnlineRegen
// hot-swaps a tenant's hint bundle mid-run when drifted budgets push the
// adapter's epoch miss rate over the threshold.

// ReplaySchedule composes phases (ramp, plateau, burst, diurnal sine),
// each with its own arrival rate and tenant mix, into one deterministic
// seeded arrival stream (Arrivals).
type ReplaySchedule = replay.Schedule

// ReplayPhase is one segment of a replay schedule.
type ReplayPhase = replay.Phase

// ReplayTenantShare weights one tenant in a phase's traffic mix.
type ReplayTenantShare = replay.TenantShare

// ReplayArrival is one admitted request of a materialized stream.
type ReplayArrival = replay.Arrival

// NewReplaySchedule validates the phases and default tenant mix and
// builds a schedule.
func NewReplaySchedule(seed uint64, mix []ReplayTenantShare, phases ...ReplayPhase) (*ReplaySchedule, error) {
	return replay.NewSchedule(seed, mix, phases...)
}

// Replay phase constructors.

// ReplayPlateau returns a constant-rate phase.
func ReplayPlateau(d time.Duration, rate float64) ReplayPhase { return replay.Plateau(d, rate) }

// ReplayRamp returns a linear-rate phase from `from` to `to`.
func ReplayRamp(d time.Duration, from, to float64) ReplayPhase { return replay.Ramp(d, from, to) }

// ReplayBurst returns a baseline-rate phase whose middle third spikes to
// peak.
func ReplayBurst(d time.Duration, base, peak float64) ReplayPhase { return replay.Burst(d, base, peak) }

// ReplayDiurnal returns a sinusoidal phase oscillating between trough and
// peak with the given period.
func ReplayDiurnal(d time.Duration, trough, peak float64, period time.Duration) ReplayPhase {
	return replay.Diurnal(d, trough, peak, period)
}

// ReplayZipfMix spreads tenant weights by the Zipf popularity law the
// azure trace generator is calibrated to (the first tenant dominates).
func ReplayZipfMix(tenants ...string) []ReplayTenantShare { return replay.ZipfMix(tenants...) }

// ReplayTenantArrivalTimes splits a stream into per-tenant admission
// instants — the WorkloadConfig.Arrivals input for each tenant's
// GenerateWorkload call.
func ReplayTenantArrivalTimes(arrivals []ReplayArrival) map[string][]time.Duration {
	return replay.TenantArrivalTimes(arrivals)
}

// ReplayConfig drives Executor.RunReplay's control loop (interval,
// horizon, pool controller, OnTick hook).
type ReplayConfig = platform.ReplayConfig

// ReplayMetrics summarizes a replay run's provisioning cost: pod-seconds,
// peak pods, pool churn.
type ReplayMetrics = platform.ReplayMetrics

// ReplayFunctionStats is one function's demand snapshot at a control
// instant (busy/warm pods, queued acquisitions, cold starts).
type ReplayFunctionStats = platform.ReplayFunctionStats

// ReplayAction is a deferred effect an OnTick hook schedules on the run's
// virtual clock.
type ReplayAction = platform.ReplayAction

// PoolController recomputes per-function warm-pool targets each control
// interval; Autoscaler is the standard implementation.
type PoolController = platform.PoolController

// Autoscaler is the elastic warm-pool controller: it grows a pool by its
// cold-start deficit when it ran dry, sheds idle pods when acquisitions
// park on exhausted node capacity (the queue warm pods cannot fix), and
// otherwise drains low-occupancy pools after a cooldown — clamped to
// [MinPool, MaxPool].
type Autoscaler = autoscale.Autoscaler

// AutoscalerConfig parameterizes an Autoscaler.
type AutoscalerConfig = autoscale.Config

// NewAutoscaler validates the configuration and builds a controller
// (one per replay run — it carries per-run cooldown state).
func NewAutoscaler(cfg AutoscalerConfig) (*Autoscaler, error) { return autoscale.New(cfg) }

// DefaultAutoscalerConfig returns a general-purpose controller setting
// (pools breathing 1..12 with a 10 s cooldown); the suite's replay
// experiment tunes its own AutoscalerConfig to its schedule.
func DefaultAutoscalerConfig() AutoscalerConfig { return autoscale.DefaultConfig() }

// OnlineRegen closes the bilateral loop during a replay: it watches an
// adapter's epoch miss rate, re-synthesizes the hint bundle against the
// observed (drifted) budget distribution, and hot-swaps it via the
// adapter's atomic Replace after a virtual regeneration latency. Plug
// its Tick into ReplayConfig.OnTick.
type OnlineRegen = autoscale.Regen

// OnlineRegenConfig parameterizes an OnlineRegen hook.
type OnlineRegenConfig = autoscale.RegenConfig

// BundleSwap records one hint-bundle hot-swap of a replay run: the swap
// instant, the triggering miss rate, and the observed budget floor.
type BundleSwap = autoscale.Swap

// NewOnlineRegen validates the configuration and builds the hook.
func NewOnlineRegen(cfg OnlineRegenConfig) (*OnlineRegen, error) { return autoscale.NewRegen(cfg) }

// Replay experiment surface (ExperimentSuite.ReplayScenario; janusbench
// -experiment replay).

// ReplayRow summarizes one tenant's share of a replay run (or the
// aggregate across tenants).
type ReplayRow = experiment.ReplayRow

// ReplayRun is one replay serving run: the full tenant stream under one
// provider configuration, with per-tenant rows, provisioning metrics,
// and the hint-bundle hot-swap record.
type ReplayRun = experiment.ReplayRun

// ReplayExperimentPoint describes one replay scenario configuration.
type ReplayExperimentPoint = experiment.ReplayPoint

// ReplayExperimentPoints enumerates the replay scenario grid: static
// pools, the elastic autoscaler, and autoscaler + online regeneration.
func ReplayExperimentPoints() []ReplayExperimentPoint { return experiment.ReplayPoints() }

// Fleet-scale replay (ExperimentSuite.FleetScenario; janusbench
// -experiment fleet): the replay scenario's non-stationary shape at
// hundreds of nodes and hundreds of thousands of requests in one
// discrete-event run — the workload the indexed cluster state is sized
// against, and the one the BENCH_*.json trajectory files track.

// Fleet cluster dimensions: two hundred nodes of the replay scenario's
// size, so the fleet is exactly a 100x wider replay substrate.
const (
	FleetNodes          = experiment.FleetNodes
	FleetNodeMillicores = experiment.FleetNodeMillicores
)

// FleetExperimentPoints enumerates the fleet scenario grid — the replay
// provider configurations at fleet scale.
func FleetExperimentPoints() []ReplayExperimentPoint { return experiment.FleetPoints() }

// Dynamic trigger-based orchestration: workflows whose shape resolves at
// run time. The static DAG stays the skeleton; dynamic annotations mark
// a node as a conditional fork (exactly one successor branch survives),
// a bounded data-dependent map (replica width drawn at the fork's
// readiness instant), a bounded retry, or an awaited join resumed by an
// external trigger on the replay engine's virtual clock. Profiling
// measures every resolvable shape, synthesis emits per-(group, shape)
// hint-table variants alongside the conservative base, and the serving
// plane passes each decision group's already-resolved shape key to
// shape-aware allocators. Static workflows are the special case with no
// annotations: their groups, profiles, hints, and traces are unchanged
// byte for byte.

// DynamicNode annotates one workflow step with dynamic behavior.
type DynamicNode = workflow.DynamicNode

// ChoiceSpec marks a node as a conditional fork: exactly one successor
// branch survives, drawn from the weights at workload generation.
type ChoiceSpec = workflow.ChoiceSpec

// MapSpec marks a node as a bounded data-dependent map: the replica
// width is drawn in [1, MaxWidth] per request.
type MapSpec = workflow.MapSpec

// RetrySpec marks a node as retried: each replica re-executes (with a
// fresh allocation decision) up to MaxRetries times.
type RetrySpec = workflow.RetrySpec

// Dynamic-annotation bounds (see workflow.NewDynamic validation).
const (
	MaxMapWidth   = workflow.MaxMapWidth
	MaxRetryBound = workflow.MaxRetryBound
)

// NewDynamicWorkflow builds and validates a dynamic workflow: the static
// DAG skeleton plus dynamic annotations. With no annotations it is
// exactly NewDAGWorkflow.
func NewDynamicWorkflow(name string, slo time.Duration, nodes []WorkflowNode, edges [][2]string, dynamic []DynamicNode) (*Workflow, error) {
	return workflow.NewDynamic(name, slo, nodes, edges, dynamic)
}

// ExternalTrigger is one external event on a replay run's virtual clock —
// a timer or stream event that starts a request (admission at the fire
// instant) or resumes it at an await step. Arm them through
// ReplayRunConfig.Triggers.
type ExternalTrigger = platform.Trigger

// ShapeAwareAllocator is an Allocator that exploits the parts of a
// dynamic workflow's shape already resolved at a decision instant;
// adapter.Allocator implements it over shape-variant hint tables.
type ShapeAwareAllocator = platform.ShapeAwareAllocator

// Trigger experiment surface (ExperimentSuite.TriggerScenario;
// janusbench -experiment trigger): the dynamic ML-inference DAG —
// conditional fork, data-dependent OCR map with retries, timer-resumed
// gate — served under static worst-case vs online shape-aware planning
// with the identical shape-variant bundle, request stream, and trigger
// queue.

// TriggerExperimentWorkflow returns the trigger scenario's dynamic
// workflow.
func TriggerExperimentWorkflow() *Workflow {
	w, err := experiment.TriggerWorkflow()
	if err != nil {
		panic(err) // static construction; cannot fail
	}
	return w
}

// TriggerRun is one trigger serving run: the dynamic stream under one
// provider configuration, with per-shape-segment rows.
type TriggerRun = experiment.TriggerRun

// TriggerExperimentPoint describes one trigger scenario configuration.
type TriggerExperimentPoint = experiment.TriggerPoint

// TriggerExperimentPoints enumerates the trigger scenario grid: static
// worst-case planning and online shape-aware planning.
func TriggerExperimentPoints() []TriggerExperimentPoint { return experiment.TriggerPoints() }

// FormatTriggerRuns renders the trigger scenario's comparison table.
func FormatTriggerRuns(runs []*TriggerRun) string { return experiment.FormatTrigger(runs) }
