// Intelligent Assistant: the paper's primary evaluation workload, served
// under all seven systems (§V-B): the clairvoyant Optimal bound, the
// early-binding baselines (ORION, GrandSLAM+, GrandSLAM), and the
// late-binding Janus family (Janus, Janus+, Janus-).
//
//	go run ./examples/intelligent-assistant
package main

import (
	"fmt"
	"log"
	"time"

	"janus"
	"janus/internal/experiment"
)

func main() {
	suite := janus.NewQuickExperimentSuite()
	w := janus.IntelligentAssistant()
	fmt.Printf("serving %s (SLO %v) under all systems; identical per-request runtime conditions\n\n",
		w.Name(), w.SLO())
	runs, err := suite.RunPoint(w, 1, experiment.AllSystems())
	if err != nil {
		log.Fatal(err)
	}
	opt := runs[experiment.SysOptimal].MeanMillicores
	fmt.Printf("%-11s %12s %12s %10s %10s %10s\n",
		"system", "millicores", "vs optimal", "P50 e2e", "P99 e2e", "violations")
	for _, sys := range experiment.AllSystems() {
		r := runs[sys]
		fmt.Printf("%-11s %12.0f %11.2fx %10v %10v %9.2f%%\n",
			sys, r.MeanMillicores, r.MeanMillicores/opt,
			r.P50E2E.Round(time.Millisecond), r.P99E2E.Round(time.Millisecond),
			r.ViolationRate*100)
	}
	j := runs[experiment.SysJanus]
	o := runs[experiment.SysORION]
	fmt.Printf("\nJanus reduces resource consumption vs ORION by %.1f%% of Optimal (paper: 22.6%%), with SLO compliance on both sides.\n",
		(o.MeanMillicores-j.MeanMillicores)/opt*100)
}
