// Control plane: the declarative multi-tenant catalog end to end. The
// operator declares {tenant -> workflows, API keys, quotas} in one JSON
// file; janusd validates the whole file and swaps it in atomically —
// at boot, on SIGHUP, or over PUT /v1/catalog — while decide traffic is
// in flight. This example is also the catalog-file reference: it
// prints the exact JSON janusd -catalog accepts.
//
//  1. Profile + synthesize hints for two workflows (the developer side).
//  2. Declare a two-tenant catalog: acme serves IA under a token-bucket
//     quota, globex serves VA unmetered; an admin key gates the
//     operator surface.
//  3. Boot the control plane in-process, load the catalog, and decide
//     as each tenant with its own API key.
//  4. Exhaust acme's quota and observe the 429 + Retry-After.
//  5. Hot-swap a new catalog generation over PUT /v1/catalog and show
//     the diff the reload reports.
//
//	go run ./examples/control-plane
package main

import (
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"janus"
)

func deploy(name string, w *janus.Workflow, seed uint64) *janus.Deployment {
	coloc, err := janus.NewColocationSampler([]float64{0.4, 0.4, 0.2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("developer: profiling %s and synthesizing hints...\n", name)
	dep, err := janus.Deploy(w, janus.DeployOptions{
		Functions:        janus.Catalog(),
		Colocation:       coloc,
		Interference:     janus.DefaultInterference(),
		Seed:             seed,
		SamplesPerConfig: 400,
		BudgetStepMs:     10,
	})
	if err != nil {
		log.Fatal(err)
	}
	return dep
}

func main() {
	ia := deploy("ia", janus.IntelligentAssistant(), 11)
	va := deploy("va", janus.VideoAnalyze(), 12)

	// --- The declarative catalog: what janusd -catalog loads. ---
	cat := &janus.TenantCatalog{
		Version:  1,
		AdminKey: "admin-secret",
		Tenants: map[string]*janus.CatalogTenant{
			"acme": {
				APIKey: "acme-key",
				Quota:  &janus.CatalogQuota{RatePerSec: 50, Burst: 3},
				Workflows: map[string]*janus.CatalogEntry{
					"ia": {Bundle: ia.Bundle()},
				},
			},
			"globex": {
				APIKey: "globex-key",
				Workflows: map[string]*janus.CatalogEntry{
					"va": {Bundle: va.Bundle()},
				},
			},
		},
	}
	data, err := cat.Marshal()
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(os.TempDir(), "janus-catalog.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	defer os.Remove(path)
	fmt.Printf("\noperator: catalog written to %s (boot janusd with -catalog %s)\n", path, path)
	// The reference shape, bundles elided for brevity.
	excerpt := string(data)
	if i := strings.Index(excerpt, `"tables"`); i > 0 {
		excerpt = excerpt[:i] + `"tables": [ ... condensed hint tables ... ] } } } ... }`
	}
	fmt.Println(excerpt)

	// --- Boot the control plane and load the catalog. ---
	srv := janus.NewAdapterServer()
	if _, _, err := srv.Registry().Load(cat); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := httpSrv.Serve(ln); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("\nprovider: control plane at %s, catalog generation %d\n", base, srv.Registry().Generation())

	// --- Each tenant decides with its own key. ---
	acme := janus.NewAdapterClient(base).WithAPIKey("acme-key")
	globex := janus.NewAdapterClient(base).WithAPIKey("globex-key")
	d, err := acme.Decide("ia", 0, 2900*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("acme:   ia suffix 0 @ 2900ms -> %d millicores (hit=%v)\n", d.Millicores, d.Hit)
	d, err = globex.Decide("va", 0, 9*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("globex: va suffix 0 @ 9s -> %d millicores (hit=%v)\n", d.Millicores, d.Hit)
	// Tenant isolation: acme cannot reach globex's workflow.
	if _, err := acme.Decide("va", 0, time.Second); err != nil {
		fmt.Printf("acme asking for va: %v\n", err)
	}

	// --- Admission control: burst 3, then 429 + Retry-After. ---
	fmt.Println("\nhammering acme past its burst of 3:")
	for i := 0; i < 5; i++ {
		_, err := acme.Decide("ia", 0, 2500*time.Millisecond)
		var apiErr *janus.AdapterAPIError
		switch {
		case err == nil:
			fmt.Printf("  decide %d: admitted\n", i+1)
		case errors.As(err, &apiErr) && apiErr.Status == http.StatusTooManyRequests:
			fmt.Printf("  decide %d: 429 %s (Retry-After %v)\n", i+1, apiErr.Code, apiErr.RetryAfter)
		default:
			log.Fatal(err)
		}
	}

	// --- Hot reload: swap the whole catalog atomically over HTTP. ---
	// A fresh acme declaration (don't mutate the running catalog's
	// tenants in place — the diff would see two identical files).
	next := &janus.TenantCatalog{
		Version:  2,
		AdminKey: "admin-secret",
		Tenants: map[string]*janus.CatalogTenant{
			"acme": {
				APIKey: "acme-key",
				Quota:  &janus.CatalogQuota{RatePerSec: 200, Burst: 50},
				Workflows: map[string]*janus.CatalogEntry{
					"ia": {Bundle: ia.Bundle()},
				},
			},
			"globex": cat.Tenants["globex"],
		},
	}
	fmt.Println("\noperator: pushing generation 2 (acme's quota raised):")
	for _, c := range janus.DiffCatalogs(cat, next) {
		fmt.Printf("  local diff: %s\n", c)
	}
	admin := janus.NewAdapterClient(base).WithAPIKey("admin-secret")
	rr, err := admin.PushCatalog(next)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  swapped in generation %d (%d tenants, %d workflows)\n", rr.Generation, rr.Tenants, rr.Workflows)
	for _, c := range rr.Changes {
		fmt.Printf("  server diff: %s\n", c)
	}
	// The raised quota admits immediately; supervisor stats survived the
	// swap (the adapter carried over — cumulative counters intact).
	if _, err := acme.Decide("ia", 0, 2500*time.Millisecond); err != nil {
		log.Fatal(err)
	}
	st, err := acme.Stats("ia")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nacme/ia after the swap: %d hits, %d misses (counters carried across the reload)\n", st.Hits, st.Misses)
}
