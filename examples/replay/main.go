// Non-stationary replay: serve a bursty, diurnal arrival stream while the
// provider adapts in flight. Two demonstrations:
//
//  1. Raw RunReplay: a hand-built burst schedule over two tenants served
//     on a small cluster, once with static pools and once under the
//     elastic warm-pool autoscaler — same arrival stream, pod-seconds
//     and SLO attainment compared side by side.
//
//  2. The experiment suite's replay scenario: the ia + va + dag catalog
//     under static pools, the autoscaler, and the autoscaler with online
//     hint regeneration (the closed bilateral loop), including the
//     mid-run hot-swap instants (janusbench -experiment replay prints
//     the same tables at paper scale).
//
//     go run ./examples/replay
package main

import (
	"fmt"
	"log"
	"time"

	"janus"
	"janus/internal/experiment"
)

func main() {
	// --- 1. Raw replay serving on a hand-built cluster. ---
	coloc, err := janus.NewColocationSampler([]float64{0.5, 0.35, 0.15})
	if err != nil {
		log.Fatal(err)
	}
	// A compressed day: quiet plateau, a hard burst, a diurnal cycle.
	sched, err := janus.NewReplaySchedule(7,
		janus.ReplayZipfMix("assistant", "video"),
		janus.ReplayPlateau(15*time.Second, 2),
		janus.ReplayBurst(15*time.Second, 2, 10),
		janus.ReplayDiurnal(40*time.Second, 1, 5, 20*time.Second),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Schedule: %s\n", sched)
	byTenant := janus.ReplayTenantArrivalTimes(sched.Arrivals())

	workloadFor := func(w *janus.Workflow, arrivals []time.Duration) []*janus.Request {
		reqs, err := janus.GenerateWorkload(janus.WorkloadConfig{
			Workflow:     w,
			Functions:    janus.Catalog(),
			Batch:        1,
			Arrivals:     arrivals,
			Colocation:   coloc,
			Interference: janus.DefaultInterference(),
			Seed:         7,
		})
		if err != nil {
			log.Fatal(err)
		}
		return reqs
	}
	tenants := func() []janus.TenantWorkload {
		return []janus.TenantWorkload{
			{Tenant: "assistant", Requests: workloadFor(janus.IntelligentAssistant(), byTenant["assistant"]),
				Allocator: &janus.FixedAllocator{System: "fixed-2000", Sizes: []int{2000, 2000, 2000}}},
			{Tenant: "video", Requests: workloadFor(janus.VideoAnalyze(), byTenant["video"]),
				Allocator: &janus.FixedAllocator{System: "fixed-1500", Sizes: []int{1500, 1500, 1500}}},
		}
	}
	serve := func(label string, ctrl janus.PoolController) {
		cfg := janus.DefaultExecutorConfig()
		cfg.Cluster = janus.ClusterConfig{
			Nodes: 2, NodeMillicores: 26000, PoolSize: 6, IdleMillicores: 100,
			Placement: janus.PlacementSpread,
		}
		ex, err := janus.NewExecutor(cfg, janus.Catalog())
		if err != nil {
			log.Fatal(err)
		}
		traces, metrics, err := ex.RunReplay(tenants(), janus.ReplayConfig{
			Interval:   500 * time.Millisecond,
			Horizon:    sched.Duration(),
			Controller: ctrl,
		})
		if err != nil {
			log.Fatal(err)
		}
		var all []janus.Trace
		for _, t := range traces {
			all = append(all, t...)
		}
		fmt.Printf("%-11s %8d requests  slo.att %.4f  pod-seconds %8.1f  peak pods %3d  churn +%d/-%d\n",
			label, len(all), 1-janus.SLOViolationRate(all), metrics.PodSeconds,
			metrics.PeakPods, metrics.PoolGrown, metrics.PoolShrunk)
	}
	serve("static", nil)
	scaler, err := janus.NewAutoscaler(janus.AutoscalerConfig{
		MinPool: 2, MaxPool: 12, LowUtilization: 0.4, Cooldown: 8 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	serve("autoscaler", scaler)

	// --- 2. The suite's replay scenario at reduced scale: static vs
	// autoscaler vs the closed bilateral loop (online hint regeneration
	// hot-swapping bundles mid-run). ---
	suite := janus.NewQuickExperimentSuite()
	runs, err := suite.ReplayScenario()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(experiment.FormatReplay(runs))
	fmt.Println("\nStatic pools pay for the troughs and thrash in the burst; the closed")
	fmt.Println("loop beats them on SLO attainment at lower pod-seconds, and the")
	fmt.Println("hot-swap lines above are the bilateral engagement happening mid-run.")
}
