// Adapter service: the full bilateral deployment with the provider-side
// adapter out of process. The developer profiles and synthesizes hints
// locally, submits the condensed bundle to a janusd-style HTTP service,
// and the platform fetches resize decisions over the network as functions
// finish — the architecture of §V-A (frontend functions + backend adapter
// service).
//
//	go run ./examples/adapter-service
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"janus"
)

func main() {
	// Developer side (offline): profile + synthesize.
	w := janus.VideoAnalyze()
	coloc, err := janus.NewColocationSampler([]float64{0.4, 0.4, 0.2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("developer: profiling VA and synthesizing hints...")
	dep, err := janus.Deploy(w, janus.DeployOptions{
		Functions:        janus.Catalog(),
		Colocation:       coloc,
		Interference:     janus.DefaultInterference(),
		Seed:             11,
		SamplesPerConfig: 800,
		BudgetStepMs:     5,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Provider side: the adapter service (janusd embedded in-process).
	srv := janus.NewAdapterServer()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := httpSrv.Serve(ln); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("provider: adapter service at %s\n", base)

	// The developer submits the condensed bundle over HTTP.
	client := janus.NewAdapterClient(base)
	if err := client.SubmitBundle(dep.Bundle()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("developer: submitted %d tables (%d condensed ranges)\n",
		dep.Bundle().Stages(), dep.Bundle().TotalRanges())

	// The platform serves requests, fetching every per-stage decision from
	// the remote adapter.
	reqs, err := janus.GenerateWorkload(janus.WorkloadConfig{
		Workflow:          w,
		Functions:         janus.Catalog(),
		N:                 150,
		ArrivalRatePerSec: 2,
		Colocation:        coloc,
		Interference:      janus.DefaultInterference(),
		StageCorrelation:  0.5,
		Seed:              11,
	})
	if err != nil {
		log.Fatal(err)
	}
	ex, err := janus.NewExecutor(janus.DefaultExecutorConfig(), janus.Catalog())
	if err != nil {
		log.Fatal(err)
	}
	remote := &janus.RemoteAllocator{
		Client:        client,
		Workflow:      w.Name(),
		System:        "janus-remote",
		MaxMillicores: dep.Bundle().MaxMillicores,
	}
	traces, err := ex.Run(reqs, remote)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("platform: served %d requests, mean %.0f millicores, %.1f%% SLO violations\n",
		len(traces), janus.MeanMillicores(traces), janus.SLOViolationRate(traces)*100)

	// The supervisor's counters live on the service.
	stats, err := client.Stats(w.Name())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("supervisor: %d hits / %d misses (miss rate %.2f%%)\n",
		stats.Hits, stats.Misses, stats.MissRate*100)
}
