// Dynamic trigger-based orchestration: workflows whose shape resolves at
// run time — conditional branches, data-dependent map widths, bounded
// retries, and steps gated on external triggers. Two demonstrations:
//
//  1. Raw serving: a three-step pipeline whose middle step fans out to a
//     data-dependent width and whose final step waits for an external
//     timer, deployed once (the bundle carries one variant hints table
//     per resolved width next to the conservative worst-case base) and
//     served twice on the identical request stream and trigger queue —
//     once shape-blind (static worst-case planning) and once shape-aware.
//
//  2. The experiment suite's trigger scenario: the seven-node dynamic ML
//     pipeline under both arms, with per-shape segment tables
//     (janusbench -experiment trigger prints the same tables).
//
//     go run ./examples/trigger-workflow
package main

import (
	"fmt"
	"log"
	"time"

	"janus"
)

func main() {
	// --- 1. Raw serving of a dynamic workflow. ---
	//
	// fetch -> analyze -> publish, where analyze fans out to 1..4
	// concurrent replicas (drawn per request) and publish waits for an
	// external timer even after analyze completes.
	const slo = 2500 * time.Millisecond
	w, err := janus.NewDynamicWorkflow("triggered-pipeline", slo,
		[]janus.WorkflowNode{
			{Name: "fetch", Function: "fe"},
			{Name: "analyze", Function: "ts"},
			{Name: "publish", Function: "socket-comm"},
		},
		[][2]string{{"fetch", "analyze"}, {"analyze", "publish"}},
		[]janus.DynamicNode{
			{Step: "analyze", Map: &janus.MapSpec{MaxWidth: 4}},
			{Step: "publish", Await: true},
		},
	)
	if err != nil {
		log.Fatal(err)
	}

	coloc, err := janus.NewColocationSampler([]float64{0.5, 0.35, 0.15})
	if err != nil {
		log.Fatal(err)
	}
	interference := janus.DefaultInterference()

	// Deploying a dynamic workflow automatically synthesizes the shape
	// variants: the base table per decision group plans for the skeleton
	// (the declared MaxWidth — the sound answer while the width is still
	// a future), and each "w=k" variant plans for the resolved width.
	fmt.Println("profiling and synthesizing shape-variant hints (offline)...")
	dep, err := janus.Deploy(w, janus.DeployOptions{
		Functions:        janus.Catalog(),
		Colocation:       coloc,
		Interference:     interference,
		Seed:             7,
		SamplesPerConfig: 600,
		BudgetStepMs:     20,
	})
	if err != nil {
		log.Fatal(err)
	}
	bundle := dep.Bundle()
	variants := 0
	for _, vs := range bundle.Shaped {
		variants += len(vs)
	}
	fmt.Printf("hints bundle: %d group tables + %d shape-variant tables\n",
		bundle.Stages(), variants)

	// One pre-sampled request stream: branch choices, map widths, and
	// retry outcomes are drawn onto the requests from the seed, so both
	// serving arms below face the identical resolved shapes.
	reqs, err := janus.GenerateWorkload(janus.WorkloadConfig{
		Workflow:          w,
		Functions:         janus.Catalog(),
		N:                 120,
		ArrivalRatePerSec: 6,
		Colocation:        coloc,
		Interference:      interference,
		StageCorrelation:  0.5,
		Seed:              7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// One trigger queue on the virtual clock: every request's publish
	// step resumes 400 ms after its arrival (a timer; the resume latches
	// if it beats readiness). Awaits resume only through this queue —
	// a missing trigger fails the run up front instead of deadlocking.
	var triggers []janus.ExternalTrigger
	horizon := time.Duration(0)
	for _, r := range reqs {
		at := r.Arrival + 400*time.Millisecond
		triggers = append(triggers, janus.ExternalTrigger{At: at, Request: r.ID, Step: "publish"})
		if at+slo > horizon {
			horizon = at + slo
		}
	}

	serve := func(alloc janus.Allocator) {
		cfg := janus.DefaultExecutorConfig()
		cfg.Cluster = janus.ClusterConfig{
			Nodes: 1, NodeMillicores: 26000, PoolSize: 6, IdleMillicores: 100,
			Placement: janus.PlacementSpread,
		}
		ex, err := janus.NewExecutor(cfg, janus.Catalog())
		if err != nil {
			log.Fatal(err)
		}
		traces, metrics, err := ex.RunReplay(
			[]janus.TenantWorkload{{Requests: reqs, Allocator: alloc}},
			janus.ReplayConfig{
				Interval: 500 * time.Millisecond,
				Horizon:  horizon,
				Triggers: triggers,
			})
		if err != nil {
			log.Fatal(err)
		}
		var all []janus.Trace
		for _, t := range traces {
			all = append(all, t...)
		}
		fmt.Printf("%-12s %4d requests  slo.att %.4f  mean mc %7.1f  pod-seconds %7.1f\n",
			alloc.Name(), len(all), 1-janus.SLOViolationRate(all),
			janus.MeanMillicores(all), metrics.PodSeconds)
	}

	// The two arms differ in exactly one bit: ShapeBlind discards the
	// resolved-shape key, forcing every decision onto the worst-case
	// base table. Same bundle, same requests, same triggers.
	blind := dep.Allocator("worst-case")
	blind.ShapeBlind = true
	serve(blind)
	serve(dep.Allocator("shape-aware"))

	// --- 2. The suite's trigger scenario at reduced scale: the seven-node
	// dynamic ML pipeline (conditional triage, width-<=6 OCR map with
	// retries, externally timed gate, timer-started requests) with
	// per-shape segment tables. ---
	suite := janus.NewQuickExperimentSuite()
	runs, err := suite.TriggerScenario()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(janus.FormatTriggerRuns(runs))
	fmt.Println("\nOnce a map's width has resolved, the worst-case table can only")
	fmt.Println("overspend; under contention that overspend parks other requests,")
	fmt.Println("so shape-aware planning wins attainment and pod-seconds at once.")
}
