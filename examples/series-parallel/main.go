// Series-parallel: the paper's future-work extension in action. A diamond
// workflow — object detection fanning out to concurrent question answering
// and text-to-speech, joining into compression — gets its hints through the
// effective-chain reduction, then serves on the real cluster substrate:
// every branch holds its own pod, pays warm-pool specialization or a cold
// start, queues when the node is out of capacity, and the join waits for
// the slowest branch.
//
//	go run ./examples/series-parallel
package main

import (
	"fmt"
	"log"
	"time"

	"janus"
)

func main() {
	w := &janus.SPWorkflow{
		Name: "diamond",
		SLO:  3500 * time.Millisecond,
		Stages: []janus.SPStage{
			{Functions: []string{"od"}},
			{Functions: []string{"qa", "ts"}}, // concurrent branches, join
			{Functions: []string{"ico"}},
		},
	}
	coloc, err := janus.NewColocationSampler([]float64{0.6, 0.3, 0.1})
	if err != nil {
		log.Fatal(err)
	}
	cfg := janus.SPProfilerConfig{
		Functions:        janus.Catalog(),
		Colocation:       coloc,
		Interference:     janus.DefaultInterference(),
		SamplesPerConfig: 1500,
		Seed:             3,
	}

	fmt.Println("reducing the diamond to an effective chain (parallel stage -> max-of-branches profile)...")
	set, err := janus.ReduceSP(w, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < set.Len(); i++ {
		fmt.Printf("  stage %d: %-22s L(99, Kmin)=%v\n", i, set.At(i).Function, set.At(i).L(99, 1000))
	}

	dep, err := janus.DeployProfiled(set, janus.DeployOptions{
		Functions:           janus.Catalog(),
		Colocation:          coloc,
		Interference:        janus.DefaultInterference(),
		Seed:                5,
		BudgetStepMs:        5,
		DisableRegeneration: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hints: %d tables, %d condensed ranges\n", dep.Bundle().Stages(), dep.Bundle().TotalRanges())

	// Serving runs the fork-join DAG on the discrete-event cluster — not a
	// sequential replay loop — so the numbers below include cold starts,
	// capacity queueing, and per-stage decision overhead.
	ivs, err := janus.ServeSP(w, dep.Adapter, cfg, 500, 9)
	if err != nil {
		log.Fatal(err)
	}
	var worst time.Duration
	misses, cold, parked := 0, 0, 0
	for _, iv := range ivs {
		if iv.E2E > worst {
			worst = iv.E2E
		}
		misses += iv.Misses
		cold += iv.ColdStarts
		parked += iv.Parked
	}
	fmt.Printf("\nserved %d requests on the cluster substrate: mean %.0f millicores (branches included)\n",
		len(ivs), meanMC(ivs))
	fmt.Printf("worst e2e %v (SLO %v), SLO violations %.2f%%, hints misses %.2f%%\n",
		worst.Round(time.Millisecond), w.SLO,
		violationPct(ivs, w.SLO), float64(misses)/float64(3*len(ivs))*100)
	fmt.Printf("substrate events: %d cold starts, %d capacity parkings\n", cold, parked)
}

func meanMC(ivs []janus.SPInvocation) float64 {
	total := 0.0
	for _, iv := range ivs {
		total += float64(iv.Millicores)
	}
	return total / float64(len(ivs))
}

func violationPct(ivs []janus.SPInvocation, slo time.Duration) float64 {
	v := 0
	for _, iv := range ivs {
		if iv.E2E > slo {
			v++
		}
	}
	return float64(v) / float64(len(ivs)) * 100
}
