// Video Analyze: the paper's second workload in both of its forms. First
// the chain — frame extraction -> classification -> compression under a
// tight 1.5 s SLO — swept across SLOs as in Fig 9; then the series-parallel
// form, where classification and compression process the extracted frames
// concurrently and the join waits for the slower branch, served on the same
// cluster substrate under every scenario system.
//
//	go run ./examples/video-analyze
package main

import (
	"fmt"
	"log"
	"time"

	"janus"
	"janus/internal/experiment"
)

func main() {
	suite := janus.NewQuickExperimentSuite()
	base := janus.VideoAnalyze()
	systems := []string{
		experiment.SysOptimal, experiment.SysORION,
		experiment.SysGrandSLAM, experiment.SysJanus,
	}
	fmt.Println("VA chain: CPU consumption normalized by Optimal across SLOs (Fig 9, right)")
	fmt.Printf("%8s %8s %10s %8s\n", "SLO", "orion", "grandslam", "janus")
	for slo := 1500 * time.Millisecond; slo <= 2000*time.Millisecond; slo += 100 * time.Millisecond {
		w, err := base.WithSLO(slo)
		if err != nil {
			log.Fatal(err)
		}
		runs, err := suite.RunPoint(w, 1, systems)
		if err != nil {
			log.Fatal(err)
		}
		opt := runs[experiment.SysOptimal].MeanMillicores
		fmt.Printf("%8v %8.3f %10.3f %8.3f\n", slo,
			runs[experiment.SysORION].MeanMillicores/opt,
			runs[experiment.SysGrandSLAM].MeanMillicores/opt,
			runs[experiment.SysJanus].MeanMillicores/opt)
	}
	fmt.Println("\nGains shrink as the SLO relaxes: every system approaches the")
	fmt.Println("1000-millicore-per-function floor, exactly as the paper reports.")

	// The series-parallel form, on the same serving plane: one pod per
	// branch, warm pools and cold starts per branch, joins at the slowest
	// branch. One decision sizes both branches of the fan-out stage.
	fmt.Println()
	rows, err := suite.SPScenario()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiment.FormatSPScenario(rows))
	sweep, err := suite.SPArrivalSweep()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(experiment.FormatSPArrivalSweep(sweep))
	fmt.Println("\nLate binding keeps its lead on the fork-join form, and rising")
	fmt.Println("admission pressure shows up as queueing-inflated tails for every")
	fmt.Println("system — the substrate costs a sequential replay loop never charges.")
}
