// Quickstart: deploy a serverless workflow under Janus and compare its
// resource consumption against worst-case (early-binding) sizing.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"janus"
)

func main() {
	// 1. The application: the paper's Intelligent Assistant chain —
	//    object detection -> question answering -> text-to-speech — with a
	//    3 s end-to-end P99 latency SLO.
	w := janus.IntelligentAssistant()

	// 2. Runtime dynamics: working sets vary per request and co-located
	//    instances contend; the profiler reproduces the serving mix.
	coloc, err := janus.NewColocationSampler([]float64{0.5, 0.35, 0.15})
	if err != nil {
		log.Fatal(err)
	}
	interference := janus.DefaultInterference()

	// 3. Offline, developer side: profile every function across 1000-3000
	//    millicores, synthesize hints (Algorithm 1), condense them
	//    (Algorithm 2), and start the provider-side adapter.
	fmt.Println("profiling and synthesizing hints (offline)...")
	dep, err := janus.Deploy(w, janus.DeployOptions{
		Functions:        janus.Catalog(),
		Colocation:       coloc,
		Interference:     interference,
		Seed:             7,
		SamplesPerConfig: 1000,
		BudgetStepMs:     5,
	})
	if err != nil {
		log.Fatal(err)
	}
	bundle := dep.Bundle()
	fmt.Printf("hints bundle: %d sub-workflow tables, %d condensed ranges\n",
		bundle.Stages(), bundle.TotalRanges())

	// 4. A workload of 200 requests with realistic variability.
	reqs, err := janus.GenerateWorkload(janus.WorkloadConfig{
		Workflow:          w,
		Functions:         janus.Catalog(),
		N:                 200,
		ArrivalRatePerSec: 2,
		Colocation:        coloc,
		Interference:      interference,
		StageCorrelation:  0.5,
		Seed:              7,
	})
	if err != nil {
		log.Fatal(err)
	}
	ex, err := janus.NewExecutor(janus.DefaultExecutorConfig(), janus.Catalog())
	if err != nil {
		log.Fatal(err)
	}

	// 5. Serve under Janus (late binding) ...
	janusTraces, err := ex.Run(reqs, dep.Allocator("janus"))
	if err != nil {
		log.Fatal(err)
	}

	// ... and under per-function worst-case sizing (early binding).
	early, err := janus.GrandSLAMPlus(dep.Profiles, w.SLO())
	if err != nil {
		log.Fatal(err)
	}
	earlyTraces, err := ex.Run(reqs, early)
	if err != nil {
		log.Fatal(err)
	}

	// 6. Compare.
	jm, em := janus.MeanMillicores(janusTraces), janus.MeanMillicores(earlyTraces)
	fmt.Printf("\n%-22s %14s %16s\n", "system", "mean millicores", "SLO violations")
	fmt.Printf("%-22s %14.0f %15.1f%%\n", "early binding (P99)", em, janus.SLOViolationRate(earlyTraces)*100)
	fmt.Printf("%-22s %14.0f %15.1f%%\n", "janus (late binding)", jm, janus.SLOViolationRate(janusTraces)*100)
	fmt.Printf("\nJanus saves %.1f%% CPU while meeting the same SLO (hints-table miss rate %.2f%%)\n",
		(1-jm/em)*100, janus.MissRate(janusTraces)*100)
}
