// Multi-tenant serving: several tenants' workflows merged into one arrival
// stream on one shared cluster — the contention condition that motivates
// bilateral adaptation. Two demonstrations:
//
//  1. Raw RunMixed: two hand-built tenants (an IA chain under a fixed
//     early-binding allocator, a VA chain under another) contending for a
//     small two-node cluster, with per-tenant metrics split out of the
//     mixed trace set.
//
//  2. The experiment suite's tenant-mix scenario: ia + va + va-sp under
//     each serving system, plus the placement comparison and the
//     node-count scale-out sweep (janusbench -experiment mix prints the
//     same tables at paper scale).
//
//     go run ./examples/multi-tenant
package main

import (
	"fmt"
	"log"

	"janus"
	"janus/internal/experiment"
)

func main() {
	// --- 1. Raw mixed serving on a hand-built cluster. ---
	coloc, err := janus.NewColocationSampler([]float64{0.5, 0.35, 0.15})
	if err != nil {
		log.Fatal(err)
	}
	workloadFor := func(w *janus.Workflow, seed uint64) []*janus.Request {
		reqs, err := janus.GenerateWorkload(janus.WorkloadConfig{
			Workflow:          w,
			Functions:         janus.Catalog(),
			N:                 200,
			Batch:             1,
			ArrivalRatePerSec: 2,
			Colocation:        coloc,
			Interference:      janus.DefaultInterference(),
			Seed:              seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		return reqs
	}

	cfg := janus.DefaultExecutorConfig()
	cfg.Cluster = janus.ClusterConfig{
		Nodes:          2,
		NodeMillicores: 16000,
		PoolSize:       3,
		IdleMillicores: 100,
		Placement:      janus.PlacementSpread,
	}
	ex, err := janus.NewExecutor(cfg, janus.Catalog())
	if err != nil {
		log.Fatal(err)
	}
	byTenant, err := ex.RunMixed([]janus.TenantWorkload{
		{Tenant: "assistant", Requests: workloadFor(janus.IntelligentAssistant(), 7),
			Allocator: &janus.FixedAllocator{System: "fixed-2000", Sizes: []int{2000, 2000, 2000}}},
		{Tenant: "video", Requests: workloadFor(janus.VideoAnalyze(), 11),
			Allocator: &janus.FixedAllocator{System: "fixed-1500", Sizes: []int{1500, 1500, 1500}}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Two tenants sharing 2 x 16-core nodes (per-tenant split of one mixed run):")
	fmt.Printf("%-10s %8s %10s %12s %7s\n", "tenant", "traces", "viol.rate", "millicores", "parked")
	for _, tenant := range []string{"assistant", "video"} {
		traces := byTenant[tenant]
		parked := 0
		for _, tr := range traces {
			parked += tr.Parked
		}
		fmt.Printf("%-10s %8d %10.4f %12.1f %7d\n", tenant, len(traces),
			janus.SLOViolationRate(traces), janus.MeanMillicores(traces), parked)
	}

	// --- 2. The suite's tenant-mix scenario at reduced scale. ---
	suite := janus.NewQuickExperimentSuite()
	scenario, err := suite.MixScenario()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(experiment.FormatMixScenario(scenario))
	placement, err := suite.MixPlacement()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(experiment.FormatMixPlacement(placement))
	sweep, err := suite.MixScaleOut()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(experiment.FormatMixScaleOut(sweep))
	fmt.Println("\nOne node concentrates cross-tenant queueing (parked); scaling out")
	fmt.Println("relieves it without touching any tenant's allocation decisions.")
}
