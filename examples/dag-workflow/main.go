// DAG workflow: the node-granular engine serving a shape no stage
// decomposition can express. The six-node ML-inference pipeline fans
// preprocessing out to a detector and a classifier, routes the detector's
// regions through an extra OCR pass (the cross edge), joins all three at a
// fusion node, and publishes the result:
//
//	preprocess ─┬─> detect ──┬─────────> fuse ──> publish
//	            │            ├─> ocr ─────^
//	            └─> classify ┴────────────^
//
// Each node starts the instant its predecessors finish; detect and
// classify share one allocation decision (they form a decision group —
// identical predecessor sets, ready at the same moment), while ocr and
// fuse decide at their own readiness instants against the remaining SLO
// budget, looked up in the hints table synthesized for each group's
// descendant cone.
//
//	go run ./examples/dag-workflow
package main

import (
	"fmt"
	"log"
	"time"

	"janus"
)

func main() {
	w := janus.MLInferenceDAG()
	fmt.Printf("workflow %s: %d nodes, SLO %v, series-parallel: %v\n",
		w.Name(), w.Len(), w.SLO(), w.IsSeriesParallel())
	for i, g := range w.DecisionGroups() {
		names := ""
		for j, n := range g.Nodes {
			if j > 0 {
				names += " + "
			}
			names += n.Name
		}
		fmt.Printf("  decision group %d: %-20s (gated by %d predecessors)\n", i, names, len(g.Preds))
	}

	coloc, err := janus.NewColocationSampler([]float64{0.4, 0.4, 0.2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nprofiling each decision group and synthesizing per-cone hints tables...")
	dep, err := janus.Deploy(w, janus.DeployOptions{
		Functions:           janus.Catalog(),
		Colocation:          coloc,
		Interference:        janus.DefaultInterference(),
		Seed:                3,
		SamplesPerConfig:    1500,
		BudgetStepMs:        5,
		DisableRegeneration: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hints: %d tables (one per group's descendant cone), %d condensed ranges\n",
		dep.Bundle().Stages(), dep.Bundle().TotalRanges())

	reqs, err := janus.GenerateWorkload(janus.WorkloadConfig{
		Workflow: w, Functions: janus.Catalog(), N: 500,
		ArrivalRatePerSec: 2, Colocation: coloc,
		Interference: janus.DefaultInterference(), StageCorrelation: 0.5, Seed: 9,
	})
	if err != nil {
		log.Fatal(err)
	}
	ex, err := janus.NewExecutor(janus.DefaultExecutorConfig(), janus.Catalog())
	if err != nil {
		log.Fatal(err)
	}
	traces, err := ex.Run(reqs, dep.Allocator("janus"))
	if err != nil {
		log.Fatal(err)
	}

	var worst time.Duration
	violations, misses, decisions, totalMC := 0, 0, 0, 0
	for _, tr := range traces {
		if tr.E2E > worst {
			worst = tr.E2E
		}
		if !tr.SLOMet() {
			violations++
		}
		misses += tr.Misses
		decisions += tr.Decisions
		totalMC += tr.TotalMillicores
	}
	fmt.Printf("\nserved %d requests: mean %.0f millicores over 6 pods, %d decisions per request\n",
		len(traces), float64(totalMC)/float64(len(traces)), decisions/len(traces))
	fmt.Printf("worst e2e %v (SLO %v), violations %.2f%%, hints misses %.2f%%\n",
		worst.Round(time.Millisecond), w.SLO(),
		float64(violations)/float64(len(traces))*100,
		float64(misses)/float64(decisions)*100)

	// The fusion join in action: fuse starts only after detect, classify,
	// AND ocr have all released their pods — readiness, not stages.
	tr := traces[0]
	fmt.Println("\nrequest 0 node schedule (start -> end):")
	for _, st := range tr.Stages {
		fmt.Printf("  %-10s group %d  %6v -> %6v\n", st.Step, st.Stage,
			st.Start.Round(time.Millisecond), st.End.Round(time.Millisecond))
	}
}
