// TestBenchGuard is the benchmark-regression harness: it replays the
// alloc-critical benchmarks with -benchtime=1x and diffs allocs/op
// against the thresholds committed in BENCH_PR10.json (the `guard`
// section). The indexed cluster's contract is that pickNode and the
// Colocated census never allocate on the hot path, and the serving
// plane's contract is that a park/wake cycle at fleet depth
// (BenchmarkParkWake) is allocation-free steady-state; an accidental
// closure capture or slice growth there would be invisible to the
// functional tests and only show up as a fleet-grid slowdown months
// later, so CI fails the moment allocs/op crosses a threshold.
//
// Knobs:
//
//	JANUS_BENCHGUARD=off   skip the guard (triaging an intentional
//	                       allocation change; update BENCH_PR10.json's
//	                       thresholds in the same commit instead of
//	                       leaving the knob set)
//
// The guard shells out to `go test -bench` per package so each
// benchmark runs exactly as CI's bench-smoke job runs it, rather than
// through testing.Benchmark (which cannot reach other packages'
// benchmarks and skips their TestMain setup).
package janus_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// benchTrajectory mirrors the slice of BENCH_PR10.json the guard consumes;
// the measurement sections are documented in docs/BENCHMARKS.md.
type benchTrajectory struct {
	Guard struct {
		// AllocsPerOp maps package path -> benchmark name -> maximum
		// allowed allocs/op.
		AllocsPerOp map[string]map[string]int64 `json:"allocs_per_op"`
	} `json:"guard"`
}

func TestBenchGuard(t *testing.T) {
	if os.Getenv("JANUS_BENCHGUARD") == "off" {
		t.Skip("JANUS_BENCHGUARD=off")
	}
	if testing.Short() {
		t.Skip("bench guard runs real benchmarks; skipped in -short mode")
	}
	raw, err := os.ReadFile("BENCH_PR10.json")
	if err != nil {
		t.Fatalf("reading committed trajectory: %v", err)
	}
	var traj benchTrajectory
	if err := json.Unmarshal(raw, &traj); err != nil {
		t.Fatalf("parsing BENCH_PR10.json: %v", err)
	}
	if len(traj.Guard.AllocsPerOp) == 0 {
		t.Fatal("BENCH_PR10.json has no guard.allocs_per_op thresholds; the guard is guarding nothing")
	}
	pkgs := make([]string, 0, len(traj.Guard.AllocsPerOp))
	for pkg := range traj.Guard.AllocsPerOp {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)
	for _, pkg := range pkgs {
		thresholds := traj.Guard.AllocsPerOp[pkg]
		got, err := runBenchmarks(pkg, thresholds)
		if err != nil {
			t.Fatalf("package %s: %v", pkg, err)
		}
		names := make([]string, 0, len(thresholds))
		for name := range thresholds {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			allocs, ok := got[name]
			if !ok {
				t.Errorf("%s: benchmark %s did not run — renamed or deleted? update BENCH_PR10.json's guard section", pkg, name)
				continue
			}
			if max := thresholds[name]; allocs > max {
				t.Errorf("%s: %s allocates %d/op, threshold %d/op — the hot path regressed to per-call allocation (set JANUS_BENCHGUARD=off only while triaging; fix or re-baseline BENCH_PR10.json)",
					pkg, name, allocs, max)
			}
		}
	}
}

// runBenchmarks executes the named benchmarks once each and returns their
// measured allocs/op.
func runBenchmarks(pkg string, thresholds map[string]int64) (map[string]int64, error) {
	names := make([]string, 0, len(thresholds))
	for name := range thresholds {
		names = append(names, name)
	}
	sort.Strings(names)
	pattern := "^(" + strings.Join(names, "|") + ")$"
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", pattern,
		"-benchtime", "1x", "-benchmem", "-timeout", "15m", pkg)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go test -bench failed: %v\n%s", err, out.String())
	}
	got := make(map[string]int64)
	for _, line := range strings.Split(out.String(), "\n") {
		fields := strings.Fields(line)
		// A result line reads: BenchmarkName-8  1  123 ns/op  0 B/op  0 allocs/op
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") || fields[len(fields)-1] != "allocs/op" {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
		allocs, err := strconv.ParseInt(fields[len(fields)-2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("unparseable allocs/op in %q: %v", line, err)
		}
		got[name] = allocs
	}
	return got, nil
}
