package replay

import (
	"math"
	"reflect"
	"testing"
	"time"
)

func testMix() []TenantShare {
	return []TenantShare{{Tenant: "ia", Weight: 2}, {Tenant: "va", Weight: 1}}
}

func TestScheduleValidation(t *testing.T) {
	cases := []struct {
		name   string
		mix    []TenantShare
		phases []Phase
	}{
		{"no phases", testMix(), nil},
		{"empty mix", nil, []Phase{Plateau(time.Second, 1)}},
		{"zero-weight mix", []TenantShare{{Tenant: "ia"}}, []Phase{Plateau(time.Second, 1)}},
		{"duplicate tenant", []TenantShare{{Tenant: "ia", Weight: 1}, {Tenant: "ia", Weight: 1}},
			[]Phase{Plateau(time.Second, 1)}},
		{"unnamed tenant", []TenantShare{{Weight: 1}}, []Phase{Plateau(time.Second, 1)}},
		{"zero duration", testMix(), []Phase{Plateau(0, 1)}},
		{"negative rate", testMix(), []Phase{Ramp(time.Second, -1, 2)}},
		{"silent phase", testMix(), []Phase{Plateau(time.Second, 0)}},
		{"bad phase mix", testMix(), []Phase{{Kind: KindPlateau, Duration: time.Second, RatePerSec: 1,
			Mix: []TenantShare{{Tenant: "x", Weight: -1}}}}},
		{"unknown kind", testMix(), []Phase{{Kind: PhaseKind(42), Duration: time.Second, RatePerSec: 1}}},
	}
	for _, tc := range cases {
		if _, err := NewSchedule(1, tc.mix, tc.phases...); err == nil {
			t.Errorf("%s: invalid schedule accepted", tc.name)
		}
	}
}

func TestPhaseRateShapes(t *testing.T) {
	d := 90 * time.Second
	ramp := Ramp(d, 2, 8)
	if got := ramp.rateAt(0); got != 2 {
		t.Errorf("ramp start rate %v", got)
	}
	if got := ramp.rateAt(d / 2); math.Abs(got-5) > 1e-9 {
		t.Errorf("ramp midpoint rate %v, want 5", got)
	}
	burst := Burst(d, 2, 12)
	if got := burst.rateAt(d / 6); got != 2 {
		t.Errorf("burst baseline rate %v", got)
	}
	if got := burst.rateAt(d / 2); got != 12 {
		t.Errorf("burst spike rate %v", got)
	}
	if got := burst.rateAt(5 * d / 6); got != 2 {
		t.Errorf("burst tail rate %v", got)
	}
	diurnal := Diurnal(d, 1, 7, 60*time.Second)
	if got := diurnal.rateAt(0); math.Abs(got-1) > 1e-9 {
		t.Errorf("diurnal trough rate %v", got)
	}
	if got := diurnal.rateAt(30 * time.Second); math.Abs(got-7) > 1e-9 {
		t.Errorf("diurnal peak rate %v", got)
	}
	if got := diurnal.rateAt(60 * time.Second); math.Abs(got-1) > 1e-9 {
		t.Errorf("diurnal full-period rate %v", got)
	}
	// Zero period defaults to the phase duration: exactly one cycle.
	def := Diurnal(d, 1, 7, 0)
	if got := def.rateAt(d / 2); math.Abs(got-7) > 1e-9 {
		t.Errorf("defaulted-period diurnal peak %v", got)
	}
}

func TestScheduleRateAndMix(t *testing.T) {
	phaseMix := []TenantShare{{Tenant: "va", Weight: 1}}
	s, err := NewSchedule(1, testMix(),
		Plateau(10*time.Second, 2),
		Phase{Kind: KindBurst, Duration: 30 * time.Second, RatePerSec: 2, PeakRatePerSec: 9, Mix: phaseMix},
	)
	if err != nil {
		t.Fatal(err)
	}
	if s.Duration() != 40*time.Second {
		t.Fatalf("duration %v", s.Duration())
	}
	if s.PeakRatePerSec() != 9 {
		t.Fatalf("peak %v", s.PeakRatePerSec())
	}
	if got := s.RateAt(5 * time.Second); got != 2 {
		t.Errorf("plateau rate %v", got)
	}
	if got := s.RateAt(25 * time.Second); got != 9 {
		t.Errorf("burst spike rate %v", got)
	}
	if got := s.RateAt(-time.Second); got != 0 {
		t.Errorf("rate before schedule %v", got)
	}
	if got := s.RateAt(40 * time.Second); got != 0 {
		t.Errorf("rate after schedule %v", got)
	}
	if got := s.MixAt(5 * time.Second); !reflect.DeepEqual(got, testMix()) {
		t.Errorf("default mix %v", got)
	}
	if got := s.MixAt(15 * time.Second); !reflect.DeepEqual(got, phaseMix) {
		t.Errorf("phase mix override %v", got)
	}
	if s.String() == "" {
		t.Error("empty schedule rendering")
	}
}

func TestArrivalsDeterministicAndOrdered(t *testing.T) {
	mk := func() *Schedule {
		s, err := NewSchedule(7, testMix(),
			Plateau(20*time.Second, 3),
			Burst(30*time.Second, 2, 10),
			Diurnal(60*time.Second, 1, 6, 30*time.Second),
		)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk().Arrivals(), mk().Arrivals()
	if len(a) == 0 {
		t.Fatal("no arrivals")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same schedule and seed produced different streams")
	}
	for i, ar := range a {
		if ar.At < 0 || ar.At >= mk().Duration() {
			t.Fatalf("arrival %d at %v outside schedule", i, ar.At)
		}
		if i > 0 && ar.At < a[i-1].At {
			t.Fatalf("arrival %d at %v before predecessor %v", i, ar.At, a[i-1].At)
		}
		if ar.Tenant != "ia" && ar.Tenant != "va" {
			t.Fatalf("arrival %d has unknown tenant %q", i, ar.Tenant)
		}
	}
	// A different seed reshuffles the stream.
	other, err := NewSchedule(8, testMix(),
		Plateau(20*time.Second, 3),
		Burst(30*time.Second, 2, 10),
		Diurnal(60*time.Second, 1, 6, 30*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, other.Arrivals()) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestArrivalsTrackRate(t *testing.T) {
	// Expected counts follow the integrated rate: a burst phase's middle
	// third must carry visibly more arrivals per second than its baseline.
	s, err := NewSchedule(3, testMix(), Burst(300*time.Second, 2, 12))
	if err != nil {
		t.Fatal(err)
	}
	var base, spike int
	for _, a := range s.Arrivals() {
		if a.At >= 100*time.Second && a.At < 200*time.Second {
			spike++
		} else {
			base++
		}
	}
	// 100 s at 12/s vs 200 s at 2/s: the spike expects 1200 vs 400.
	if spike <= base {
		t.Fatalf("burst middle third has %d arrivals vs %d outside", spike, base)
	}
	baseRate := float64(base) / 200
	spikeRate := float64(spike) / 100
	if spikeRate < 4*baseRate {
		t.Fatalf("spike rate %.2f/s not clearly above baseline %.2f/s", spikeRate, baseRate)
	}
}

func TestZipfMixAndTenantSplit(t *testing.T) {
	mix := ZipfMix("a", "b", "c")
	if len(mix) != 3 {
		t.Fatalf("mix size %d", len(mix))
	}
	if !(mix[0].Weight > mix[1].Weight && mix[1].Weight > mix[2].Weight) {
		t.Fatalf("zipf weights not decreasing: %+v", mix)
	}
	s, err := NewSchedule(5, mix, Plateau(200*time.Second, 5))
	if err != nil {
		t.Fatal(err)
	}
	arr := s.Arrivals()
	byTenant := TenantArrivalTimes(arr)
	total := 0
	for _, times := range byTenant {
		total += len(times)
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				t.Fatal("per-tenant arrival times out of order")
			}
		}
	}
	if total != len(arr) {
		t.Fatalf("tenant split loses arrivals: %d vs %d", total, len(arr))
	}
	if len(byTenant["a"]) <= len(byTenant["c"]) {
		t.Fatalf("zipf head tenant %d arrivals vs tail %d", len(byTenant["a"]), len(byTenant["c"]))
	}
}
