// Package replay generates non-stationary workload traffic for the
// serving plane: a virtual-clock, phase-based load generator in place of
// the stationary fixed-batch / constant-rate-Poisson workloads the rest of
// the experiment suite runs.
//
// A Schedule composes phases — ramp, plateau, burst, diurnal sine — each
// with its own arrival rate and its own tenant/workflow mix, and
// materializes them into one deterministic seeded arrival stream via
// thinning of the non-homogeneous Poisson process (Lewis-Shedler): draw
// candidates at the schedule's peak rate, accept each with probability
// rate(t)/peak. Tenant attribution follows the mix in force at the
// arrival instant; ZipfMix derives a heavy-tailed mix from the same
// popularity calibration the azure trace generator uses (§II-A, Fig 1a),
// so "a few tenants dominate" carries over from functions to workflows.
//
// The stream is a pure function of (schedule, seed): platform.RunReplay
// serves it identically at any worker-pool parallelism, which is what
// lets the replay experiments compare provisioning policies request for
// request.
package replay

import (
	"fmt"
	"math"
	"time"

	"janus/internal/azure"
	"janus/internal/rng"
)

// PhaseKind names a phase's rate shape.
type PhaseKind int

const (
	// KindPlateau holds a constant arrival rate.
	KindPlateau PhaseKind = iota
	// KindRamp moves linearly from RatePerSec to PeakRatePerSec.
	KindRamp
	// KindBurst holds RatePerSec except for the middle third of the
	// phase, which spikes to PeakRatePerSec — the burst-parallel square
	// wave that breaks statically sized warm pools.
	KindBurst
	// KindDiurnal oscillates sinusoidally between RatePerSec (trough) and
	// PeakRatePerSec (peak) with period Period, starting at the trough.
	KindDiurnal
)

// String names the kind for schedule rendering.
func (k PhaseKind) String() string {
	switch k {
	case KindPlateau:
		return "plateau"
	case KindRamp:
		return "ramp"
	case KindBurst:
		return "burst"
	case KindDiurnal:
		return "diurnal"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// TenantShare weights one tenant in a phase's traffic mix.
type TenantShare struct {
	// Tenant names the workload stream the arrival belongs to.
	Tenant string
	// Weight is the tenant's share of arrivals, relative to the mix total.
	Weight float64
}

// Phase is one segment of a schedule.
type Phase struct {
	// Kind selects the rate shape.
	Kind PhaseKind
	// Duration is the phase length in virtual time.
	Duration time.Duration
	// RatePerSec is the phase's base arrival rate: the plateau's constant
	// rate, the ramp's start, the burst's baseline, the diurnal trough.
	RatePerSec float64
	// PeakRatePerSec is the ramp's end rate, the burst's spike, and the
	// diurnal peak; unused by plateaus.
	PeakRatePerSec float64
	// Period is the diurnal oscillation period; zero defaults to the
	// phase duration (one full cycle).
	Period time.Duration
	// Mix optionally overrides the schedule's default tenant mix for this
	// phase (a drifting mix is itself a workload shift the provider must
	// absorb).
	Mix []TenantShare
}

// Plateau returns a constant-rate phase.
func Plateau(d time.Duration, rate float64) Phase {
	return Phase{Kind: KindPlateau, Duration: d, RatePerSec: rate}
}

// Ramp returns a linear-rate phase from `from` to `to`.
func Ramp(d time.Duration, from, to float64) Phase {
	return Phase{Kind: KindRamp, Duration: d, RatePerSec: from, PeakRatePerSec: to}
}

// Burst returns a baseline-rate phase whose middle third spikes to peak.
func Burst(d time.Duration, base, peak float64) Phase {
	return Phase{Kind: KindBurst, Duration: d, RatePerSec: base, PeakRatePerSec: peak}
}

// Diurnal returns a sinusoidal phase oscillating between trough and peak
// with the given period, starting at the trough.
func Diurnal(d time.Duration, trough, peak float64, period time.Duration) Phase {
	return Phase{Kind: KindDiurnal, Duration: d, RatePerSec: trough, PeakRatePerSec: peak, Period: period}
}

// rateAt evaluates the phase's instantaneous rate at offset t into it.
func (p Phase) rateAt(t time.Duration) float64 {
	switch p.Kind {
	case KindRamp:
		u := float64(t) / float64(p.Duration)
		return p.RatePerSec + (p.PeakRatePerSec-p.RatePerSec)*u
	case KindBurst:
		if t >= p.Duration/3 && t < 2*p.Duration/3 {
			return p.PeakRatePerSec
		}
		return p.RatePerSec
	case KindDiurnal:
		period := p.Period
		if period <= 0 {
			period = p.Duration
		}
		u := float64(t) / float64(period)
		return p.RatePerSec + (p.PeakRatePerSec-p.RatePerSec)*(1-math.Cos(2*math.Pi*u))/2
	default: // KindPlateau
		return p.RatePerSec
	}
}

// peak is the phase's maximum instantaneous rate (the thinning envelope).
func (p Phase) peak() float64 {
	switch p.Kind {
	case KindPlateau:
		return p.RatePerSec
	default:
		return math.Max(p.RatePerSec, p.PeakRatePerSec)
	}
}

func (p Phase) validate(i int) error {
	if p.Duration <= 0 {
		return fmt.Errorf("replay: phase %d has non-positive duration %v", i, p.Duration)
	}
	if p.RatePerSec < 0 || p.PeakRatePerSec < 0 {
		return fmt.Errorf("replay: phase %d has a negative rate", i)
	}
	if p.peak() <= 0 {
		return fmt.Errorf("replay: phase %d never admits traffic (peak rate 0)", i)
	}
	switch p.Kind {
	case KindPlateau, KindRamp, KindBurst, KindDiurnal:
	default:
		return fmt.Errorf("replay: phase %d has unknown kind %d", i, int(p.Kind))
	}
	if p.Kind == KindDiurnal && p.Period < 0 {
		return fmt.Errorf("replay: phase %d has negative period %v", i, p.Period)
	}
	return nil
}

func validateMix(mix []TenantShare, what string) error {
	if len(mix) == 0 {
		return fmt.Errorf("replay: %s mix is empty", what)
	}
	total := 0.0
	seen := make(map[string]bool, len(mix))
	for _, ts := range mix {
		if ts.Tenant == "" {
			return fmt.Errorf("replay: %s mix has an unnamed tenant", what)
		}
		if seen[ts.Tenant] {
			return fmt.Errorf("replay: %s mix repeats tenant %q", what, ts.Tenant)
		}
		seen[ts.Tenant] = true
		if ts.Weight < 0 {
			return fmt.Errorf("replay: %s mix weights tenant %q negatively", what, ts.Tenant)
		}
		total += ts.Weight
	}
	if total <= 0 {
		return fmt.Errorf("replay: %s mix has no positive weight", what)
	}
	return nil
}

// ZipfMix spreads tenant weights by the Zipf popularity law the azure
// trace generator is calibrated to (exponent 1.15, the value at which the
// top-100 of 500 functions carry Fig 1a's 81.6% invocation share): the
// first tenant dominates, the tail thins as 1/rank^s.
func ZipfMix(tenants ...string) []TenantShare {
	s := azure.DefaultTraceConfig().ZipfS
	out := make([]TenantShare, len(tenants))
	for i, t := range tenants {
		out[i] = TenantShare{Tenant: t, Weight: 1 / math.Pow(float64(i+1), s)}
	}
	return out
}

// Schedule is a validated, immutable phase sequence with a default tenant
// mix and a seed: the complete description of one non-stationary workload.
type Schedule struct {
	phases []Phase
	mix    []TenantShare
	seed   uint64
	total  time.Duration
	peak   float64
}

// NewSchedule validates the phases and the default tenant mix (used by
// every phase without its own Mix) and builds a schedule.
func NewSchedule(seed uint64, mix []TenantShare, phases ...Phase) (*Schedule, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("replay: schedule needs at least one phase")
	}
	if err := validateMix(mix, "default"); err != nil {
		return nil, err
	}
	s := &Schedule{mix: append([]TenantShare(nil), mix...), seed: seed}
	for i, p := range phases {
		if err := p.validate(i); err != nil {
			return nil, err
		}
		if p.Mix != nil {
			if err := validateMix(p.Mix, fmt.Sprintf("phase %d", i)); err != nil {
				return nil, err
			}
		}
		s.phases = append(s.phases, p)
		s.total += p.Duration
		if pk := p.peak(); pk > s.peak {
			s.peak = pk
		}
	}
	return s, nil
}

// Phases returns a copy of the schedule's phase sequence.
func (s *Schedule) Phases() []Phase { return append([]Phase(nil), s.phases...) }

// Duration reports the schedule's total length.
func (s *Schedule) Duration() time.Duration { return s.total }

// PeakRatePerSec reports the schedule's maximum instantaneous rate.
func (s *Schedule) PeakRatePerSec() float64 { return s.peak }

// Seed reports the seed the arrival stream is derived from.
func (s *Schedule) Seed() uint64 { return s.seed }

// phaseAt locates the phase covering schedule instant t and the offset
// into it. t must be in [0, Duration).
func (s *Schedule) phaseAt(t time.Duration) (Phase, time.Duration) {
	for _, p := range s.phases {
		if t < p.Duration {
			return p, t
		}
		t -= p.Duration
	}
	last := s.phases[len(s.phases)-1]
	return last, last.Duration
}

// RateAt evaluates the schedule's instantaneous arrival rate at t
// (requests per second across all tenants); zero outside [0, Duration).
func (s *Schedule) RateAt(t time.Duration) float64 {
	if t < 0 || t >= s.total {
		return 0
	}
	p, off := s.phaseAt(t)
	return p.rateAt(off)
}

// ExpectedArrivals integrates the schedule's rate over its duration — the
// mean of the materialized arrival count's distribution (midpoint rule at
// fine resolution; callers use it for scaling checks, not accounting).
func (s *Schedule) ExpectedArrivals() float64 {
	const steps = 4096
	total := 0.0
	for _, p := range s.phases {
		dt := p.Duration / steps
		if dt <= 0 {
			dt = 1
		}
		sec := float64(dt) / float64(time.Second)
		for t := dt / 2; t < p.Duration; t += dt {
			total += p.rateAt(t) * sec
		}
	}
	return total
}

// MixAt reports the tenant mix in force at schedule instant t.
func (s *Schedule) MixAt(t time.Duration) []TenantShare {
	if t < 0 || t >= s.total {
		return s.mix
	}
	p, _ := s.phaseAt(t)
	if p.Mix != nil {
		return p.Mix
	}
	return s.mix
}

// Arrival is one admitted request of the materialized stream.
type Arrival struct {
	// At is the admission instant on the virtual clock.
	At time.Duration
	// Tenant names the workload stream the request belongs to.
	Tenant string
}

// Arrivals materializes the schedule's deterministic arrival stream:
// candidate instants drawn as a homogeneous Poisson process at the
// schedule's peak rate, thinned by the instantaneous rate, each accepted
// arrival attributed to a tenant by the mix in force at its instant. The
// same schedule and seed always produce the same stream.
func (s *Schedule) Arrivals() []Arrival {
	root := rng.New(s.seed).Split("replay/arrivals")
	thin := root.Split("thin")
	pick := root.Split("tenant")
	var out []Arrival
	t := time.Duration(0)
	for {
		gap := thin.Exp(s.peak)
		t += time.Duration(gap * float64(time.Second))
		if t >= s.total {
			return out
		}
		if thin.Float64()*s.peak > s.RateAt(t) {
			continue
		}
		mix := s.MixAt(t)
		weights := make([]float64, len(mix))
		for i, ts := range mix {
			weights[i] = ts.Weight
		}
		out = append(out, Arrival{At: t, Tenant: mix[pick.Choice(weights)].Tenant})
	}
}

// TenantArrivalTimes splits the stream into per-tenant admission instants,
// keyed by tenant name — the shape platform workload generation consumes.
func TenantArrivalTimes(arrivals []Arrival) map[string][]time.Duration {
	out := make(map[string][]time.Duration)
	for _, a := range arrivals {
		out[a.Tenant] = append(out[a.Tenant], a.At)
	}
	return out
}

// String renders the schedule for experiment headers: one line per phase.
func (s *Schedule) String() string {
	out := ""
	for i, p := range s.phases {
		if i > 0 {
			out += " | "
		}
		switch p.Kind {
		case KindPlateau:
			out += fmt.Sprintf("plateau %v @%.3g/s", p.Duration, p.RatePerSec)
		case KindRamp:
			out += fmt.Sprintf("ramp %v %.3g->%.3g/s", p.Duration, p.RatePerSec, p.PeakRatePerSec)
		case KindBurst:
			out += fmt.Sprintf("burst %v %.3g/s peak %.3g/s", p.Duration, p.RatePerSec, p.PeakRatePerSec)
		case KindDiurnal:
			period := p.Period
			if period <= 0 {
				period = p.Duration
			}
			out += fmt.Sprintf("diurnal %v %.3g..%.3g/s period %v", p.Duration, p.RatePerSec, p.PeakRatePerSec, period)
		}
	}
	return out
}
