// Package obs is the unified observability layer: a typed event stream
// on the simulator's virtual clock and a zero-cost-when-off metrics
// registry, shared by the serving engine, the replay control loop, the
// experiment suite, and janusd's operator surface.
//
// Two design rules govern everything here:
//
//  1. Observation must never perturb the observed run. Tracers and
//     registry handles only read engine state; they schedule nothing on
//     the virtual clock and mutate nothing the engine reads. Attaching a
//     tracer therefore leaves every run byte-identical (pinned by test).
//
//  2. Off must cost nothing. Every emit site in the engine is guarded by
//     a nil check on the tracer (mirroring the replay window's
//     `st.window != nil` idiom), so with no sink attached the entire
//     event path compiles down to one predictable branch per site: no
//     Event is constructed, nothing allocates, and the 0 allocs/op
//     park/wake guarantee holds under the bench guard.
package obs

import (
	"strconv"
	"time"
)

// Kind identifies what happened. The taxonomy covers the full serving
// lifecycle plus the control-plane actions that shape it.
type Kind uint8

const (
	// KindAdmit: a request entered the system. Value = SLO in ns.
	KindAdmit Kind = iota
	// KindDecision: the allocator sized a decision group. Value =
	// millicores chosen, Aux = remaining budget in ns, Flag = hint hit,
	// Reason = resolved shape key on the dynamic path ("" when static).
	KindDecision
	// KindPark: an acquisition did not fit and the node parked. Value =
	// millicores demanded.
	KindPark
	// KindWake: a parked acquisition was taken off the park index for
	// retry (the threshold predicate is exact, so the retry succeeds).
	// Value = millicores.
	KindWake
	// KindAcquire: a pod was acquired. Value = millicores, Aux = node id,
	// Flag = cold start.
	KindAcquire
	// KindColdStart: cold-start begin, emitted with its Acquire when
	// Flag was cold. Value = the startup duration in ns, so the cold
	// start ends at At+Value (the pod's Release marks the node's end).
	KindColdStart
	// KindRelease: a pod was released at node completion. Value =
	// millicores, Aux = node id.
	KindRelease
	// KindComplete: the request finished. Value = end-to-end latency ns,
	// Aux = SLO ns, Flag = SLO met.
	KindComplete
	// KindSLOMiss: emitted immediately after a KindComplete whose E2E
	// exceeded the SLO. Value = overshoot in ns. Flight recorders dump
	// their ring on this kind.
	KindSLOMiss
	// KindPoolScale: the replay control loop applied a warm-pool target.
	// Function names the pool, Value = new target, Aux = previous target.
	KindPoolScale
	// KindScaleAudit: a control-plane hook explains a decision it is
	// about to make — the autoscaler's observed deficit, queue pressure,
	// or cooldown state (Value = proposed target, Aux = current target),
	// or the regen hook's detection (Value = budget floor ms, Aux = miss
	// rate in ppm). Reason = why, in words.
	KindScaleAudit
	// KindSwap: a regenerated hint bundle was hot-swapped in. Value =
	// the synthesis floor in ms, Aux = observed miss rate in ppm,
	// Reason = audit detail.
	KindSwap
	// KindTrigger: an external trigger fired. Reason = "start" for
	// request-start triggers, otherwise the awaited step name.
	KindTrigger

	kindCount // sentinel; keep last
)

var kindNames = [kindCount]string{
	"admit", "decision", "park", "wake", "acquire", "cold_start",
	"release", "complete", "slo_miss", "pool_scale", "scale_audit",
	"swap", "trigger",
}

// String returns the NDJSON wire name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind(" + strconv.Itoa(int(k)) + ")"
}

// Event is one observation on the virtual clock. It is a flat value —
// no pointers beyond the strings, which are either interned engine
// state (tenant, function names) or compile-time constants — so storing
// one into a pre-allocated ring allocates nothing.
//
// Request is the per-request causal ID: every event on a request's
// lifecycle (admit → decisions → parks/wakes → acquires/releases →
// complete) carries the same Tenant+Request pair, so a trace
// reconstructs the full causal chain of any SLO miss. Events without a
// request (pool scaling, audits, swaps) carry Request = -1.
type Event struct {
	At       time.Duration // virtual time
	Kind     Kind
	Scope    string // run identity, e.g. "replay/autoscaler+regen" (set by WithScope)
	Tenant   string
	Request  int // causal ID; -1 when the event has no request
	Group    int
	Member   int
	Replica  int
	Function string
	Value    int64 // kind-specific, see the Kind docs
	Aux      int64 // kind-specific, see the Kind docs
	Flag     bool  // kind-specific, see the Kind docs
	Reason   string
}

// Tracer receives events. Implementations decide retention and cost;
// the engine guarantees only that Emit is called in virtual-time order
// within one run. Concurrent runs sharing a sink (the experiment
// suite's fan-out) interleave scopes, so shared sinks must be
// goroutine-safe — NDJSONWriter, Timeline, and Collector are; a
// FlightRecorder is single-run by design.
type Tracer interface {
	Emit(Event)
}

// appendJSON appends the event as one JSON object (no trailing newline).
// Hand-rolled: stable field order, omitted empties, no reflection.
func appendJSON(dst []byte, ev Event) []byte {
	dst = append(dst, `{"at_ns":`...)
	dst = strconv.AppendInt(dst, int64(ev.At), 10)
	dst = append(dst, `,"kind":"`...)
	dst = append(dst, ev.Kind.String()...)
	dst = append(dst, '"')
	if ev.Scope != "" {
		dst = appendStrField(dst, "scope", ev.Scope)
	}
	if ev.Tenant != "" {
		dst = appendStrField(dst, "tenant", ev.Tenant)
	}
	if ev.Request >= 0 {
		dst = append(dst, `,"request":`...)
		dst = strconv.AppendInt(dst, int64(ev.Request), 10)
		dst = append(dst, `,"group":`...)
		dst = strconv.AppendInt(dst, int64(ev.Group), 10)
		dst = append(dst, `,"member":`...)
		dst = strconv.AppendInt(dst, int64(ev.Member), 10)
		if ev.Replica > 0 {
			dst = append(dst, `,"replica":`...)
			dst = strconv.AppendInt(dst, int64(ev.Replica), 10)
		}
	}
	if ev.Function != "" {
		dst = appendStrField(dst, "function", ev.Function)
	}
	dst = append(dst, `,"value":`...)
	dst = strconv.AppendInt(dst, ev.Value, 10)
	if ev.Aux != 0 {
		dst = append(dst, `,"aux":`...)
		dst = strconv.AppendInt(dst, ev.Aux, 10)
	}
	if ev.Flag {
		dst = append(dst, `,"flag":true`...)
	}
	if ev.Reason != "" {
		dst = appendStrField(dst, "reason", ev.Reason)
	}
	return append(dst, '}')
}

func appendStrField(dst []byte, key, val string) []byte {
	dst = append(dst, ',', '"')
	dst = append(dst, key...)
	dst = append(dst, `":`...)
	return appendQuoted(dst, val)
}

// appendQuoted JSON-quotes s. Engine strings are plain identifiers, but
// escape control characters, quotes, and backslashes for safety.
func appendQuoted(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			dst = append(dst, '\\', c)
		case c < 0x20:
			dst = append(dst, '\\', 'u', '0', '0',
				"0123456789abcdef"[c>>4], "0123456789abcdef"[c&0xf])
		default:
			dst = append(dst, c)
		}
	}
	return append(dst, '"')
}
