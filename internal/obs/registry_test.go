package obs

import (
	"strings"
	"testing"
)

func TestRegistryHandlesAndSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("janus_decisions_total", "tenant", "ia")
	c.Inc()
	c.Add(2)
	// Same name+labels (any order) resolves to the same handle.
	if r.Counter("janus_decisions_total", "tenant", "ia") != c {
		t.Fatal("re-registration returned a different handle")
	}
	g := r.Gauge("janus_park_depth")
	g.Set(7)
	h := r.Histogram("janus_node_latency_ms", []int64{10, 100}, "tenant", "ia", "function", "f1")
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)

	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d points, want 3", len(snap))
	}
	// Sorted by (name, labels).
	if snap[0].Name != "janus_decisions_total" || snap[0].Value != 3 {
		t.Fatalf("point 0 = %+v", snap[0])
	}
	if snap[1].Name != "janus_node_latency_ms" {
		t.Fatalf("point 1 = %+v", snap[1])
	}
	if snap[1].Count != 3 || snap[1].Sum != 5055 {
		t.Fatalf("histogram count/sum = %d/%d, want 3/5055", snap[1].Count, snap[1].Sum)
	}
	// Buckets are cumulative: le=10 has 1, le=100 has 2, +Inf has 3.
	want := []Bucket{{LE: "10", Count: 1}, {LE: "100", Count: 2}, {LE: "+Inf", Count: 3}}
	for i, b := range snap[1].Buckets {
		if b != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, b, want[i])
		}
	}
	if snap[2].Name != "janus_park_depth" || snap[2].Value != 7 {
		t.Fatalf("point 2 = %+v", snap[2])
	}
}

func TestRegistrySnapshotDeterministic(t *testing.T) {
	build := func(order []string) []Point {
		r := NewRegistry()
		for _, tn := range order {
			r.Counter("c", "tenant", tn).Inc()
		}
		return r.Snapshot()
	}
	a := build([]string{"x", "y", "z"})
	b := build([]string{"z", "x", "y"})
	for i := range a {
		if a[i].Labels["tenant"] != b[i].Labels["tenant"] || a[i].Value != b[i].Value {
			t.Fatalf("snapshot order depends on registration order: %v vs %v", a, b)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("janusd_decisions_total", "tenant", "ia", "outcome", "hit").Add(4)
	r.Counter("janusd_decisions_total", "tenant", "ia", "outcome", "miss").Add(1)
	r.Gauge("janusd_build_info", "version", `v1.0"x`).Set(1)
	h := r.Histogram("janusd_decide_latency_us", []int64{100, 1000}, "tenant", "ia")
	h.Observe(50)
	h.Observe(5000)

	var sb strings.Builder
	if err := WritePrometheus(&sb, r); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE janusd_decisions_total counter\n",
		`janusd_decisions_total{outcome="hit",tenant="ia"} 4` + "\n",
		`janusd_decisions_total{outcome="miss",tenant="ia"} 1` + "\n",
		"# TYPE janusd_build_info gauge\n",
		`janusd_build_info{version="v1.0\"x"} 1` + "\n",
		"# TYPE janusd_decide_latency_us histogram\n",
		`janusd_decide_latency_us_bucket{tenant="ia",le="100"} 1` + "\n",
		`janusd_decide_latency_us_bucket{tenant="ia",le="1000"} 1` + "\n",
		`janusd_decide_latency_us_bucket{tenant="ia",le="+Inf"} 2` + "\n",
		`janusd_decide_latency_us_sum{tenant="ia"} 5050` + "\n",
		`janusd_decide_latency_us_count{tenant="ia"} 2` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus text missing %q:\n%s", want, out)
		}
	}
	// Each # TYPE line appears exactly once per family.
	if strings.Count(out, "# TYPE janusd_decisions_total ") != 1 {
		t.Fatalf("duplicate TYPE lines:\n%s", out)
	}
}

func TestHistogramObserveBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []int64{10, 20}, "k", "v")
	h.Observe(10) // on the bound: lands in le=10
	h.Observe(11)
	h.Observe(21)
	snap := r.Snapshot()
	got := snap[0].Buckets
	if got[0].Count != 1 || got[1].Count != 2 || got[2].Count != 3 {
		t.Fatalf("cumulative buckets = %v", got)
	}
}
