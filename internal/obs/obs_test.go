package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func ev(at time.Duration, kind Kind, req int) Event {
	return Event{At: at, Kind: kind, Tenant: "ia", Request: req}
}

func TestNDJSONWriterEncodesEvents(t *testing.T) {
	var sb strings.Builder
	w := NewNDJSONWriter(&sb)
	w.Emit(Event{At: 5 * time.Millisecond, Kind: KindDecision, Scope: "replay/static",
		Tenant: "ia", Request: 7, Group: 2, Member: 1, Function: "f1",
		Value: 1200, Aux: 42, Flag: true, Reason: "w=3"})
	w.Emit(Event{At: time.Second, Kind: KindPoolScale, Request: -1, Function: "f2", Value: 4, Aux: 3})
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), sb.String())
	}
	// Every line must be valid JSON with the documented fields.
	var m map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &m); err != nil {
		t.Fatalf("line 0 not JSON: %v\n%s", err, lines[0])
	}
	if m["kind"] != "decision" || m["tenant"] != "ia" || m["request"] != float64(7) ||
		m["flag"] != true || m["reason"] != "w=3" || m["scope"] != "replay/static" {
		t.Fatalf("decision line fields wrong: %v", m)
	}
	m = nil // Unmarshal merges into a non-nil map; start fresh
	if err := json.Unmarshal([]byte(lines[1]), &m); err != nil {
		t.Fatalf("line 1 not JSON: %v\n%s", err, lines[1])
	}
	// Request -1 means "no request": the causal fields are omitted.
	if _, ok := m["request"]; ok {
		t.Fatalf("pool_scale line should omit request: %v", m)
	}
	if m["kind"] != "pool_scale" || m["value"] != float64(4) || m["aux"] != float64(3) {
		t.Fatalf("pool_scale line fields wrong: %v", m)
	}
}

func TestNDJSONQuoting(t *testing.T) {
	var sb strings.Builder
	w := NewNDJSONWriter(&sb)
	w.Emit(Event{Kind: KindSwap, Request: -1, Reason: `quote " back \ newline` + "\n"})
	var m map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(sb.String())), &m); err != nil {
		t.Fatalf("escaped line not JSON: %v\n%s", err, sb.String())
	}
	if m["reason"] != `quote " back \ newline`+"\n" {
		t.Fatalf("reason round-trip wrong: %q", m["reason"])
	}
}

func TestFlightRecorderWraparound(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		f.Emit(ev(time.Duration(i), KindAdmit, i))
	}
	got := f.Events()
	if len(got) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(got))
	}
	for i, e := range got {
		if e.Request != 6+i {
			t.Fatalf("ring[%d].Request = %d, want %d (last 4 in order)", i, e.Request, 6+i)
		}
	}
	// Partially filled ring returns only what was emitted.
	p := NewFlightRecorder(8)
	p.Emit(ev(0, KindAdmit, 0))
	p.Emit(ev(1, KindAdmit, 1))
	if got := p.Events(); len(got) != 2 || got[0].Request != 0 || got[1].Request != 1 {
		t.Fatalf("partial ring = %v", got)
	}
}

func TestFlightRecorderDumpOnMissBoundary(t *testing.T) {
	f := NewFlightRecorder(3)
	f.Emit(ev(1, KindAdmit, 9))
	f.Emit(ev(2, KindDecision, 9))
	f.Emit(ev(3, KindComplete, 9))
	f.Emit(ev(4, KindSLOMiss, 9)) // ring has wrapped: [decision, complete, slo_miss]
	dumps := f.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("got %d dumps, want 1", len(dumps))
	}
	d := dumps[0]
	if len(d) != 3 {
		t.Fatalf("dump holds %d events, want full ring of 3", len(d))
	}
	if d[0].Kind != KindDecision || d[1].Kind != KindComplete || d[2].Kind != KindSLOMiss {
		t.Fatalf("dump boundary wrong: %v %v %v (miss must be last)", d[0].Kind, d[1].Kind, d[2].Kind)
	}
	// Dumps are snapshots: later traffic must not mutate them.
	f.Emit(ev(5, KindAdmit, 10))
	if dumps[0][2].Kind != KindSLOMiss {
		t.Fatal("dump mutated by later traffic")
	}
	if f.Misses() != 1 {
		t.Fatalf("Misses = %d, want 1", f.Misses())
	}
}

func TestFlightRecorderDumpCap(t *testing.T) {
	f := NewFlightRecorder(2)
	f.MaxDumps = 3
	for i := 0; i < 5; i++ {
		f.Emit(ev(time.Duration(i), KindSLOMiss, i))
	}
	if len(f.Dumps()) != 3 {
		t.Fatalf("got %d dumps, want cap of 3", len(f.Dumps()))
	}
	if f.Misses() != 5 {
		t.Fatalf("Misses = %d, want 5 (counted past the cap)", f.Misses())
	}
}

func TestWithScopeAndMulti(t *testing.T) {
	var a, b Collector
	tr := WithScope(Multi(&a, &b, nil), "fleet/closed")
	tr.Emit(ev(1, KindAdmit, 0))
	for _, c := range []*Collector{&a, &b} {
		got := c.Events()
		if len(got) != 1 || got[0].Scope != "fleet/closed" {
			t.Fatalf("collector saw %v, want 1 scoped event", got)
		}
	}
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("Multi of no live sinks must collapse to nil (zero-cost off)")
	}
	if WithScope(nil, "x") != nil {
		t.Fatal("WithScope(nil) must stay nil")
	}
}

func TestTimelineSummary(t *testing.T) {
	tl := NewTimeline(time.Second)
	tl.Emit(Event{At: 100 * time.Millisecond, Kind: KindAdmit, Scope: "replay/static", Request: 0})
	tl.Emit(Event{At: 200 * time.Millisecond, Kind: KindAdmit, Scope: "replay/static", Request: 1})
	tl.Emit(Event{At: 1500 * time.Millisecond, Kind: KindSLOMiss, Scope: "replay/static", Request: 0})
	s := tl.Summary()
	if !strings.Contains(s, "== replay/static") || !strings.Contains(s, "admit=2") || !strings.Contains(s, "slo_miss=1") {
		t.Fatalf("summary missing expected rows:\n%s", s)
	}
}
