package obs

import (
	"testing"
	"time"
)

// BenchmarkFlightRecorderEmit pins the tracer-on event path: storing an
// event into the ring must not allocate (the dump on an SLO miss is the
// only allocating path, and none fire here). Guarded by TestBenchGuard
// at 0 allocs/op.
func BenchmarkFlightRecorderEmit(b *testing.B) {
	f := NewFlightRecorder(4096)
	e := Event{At: time.Millisecond, Kind: KindAcquire, Tenant: "ia",
		Request: 1, Group: 2, Member: 0, Function: "f1", Value: 1200, Aux: 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Request = i
		f.Emit(e)
	}
}

// BenchmarkHistogramObserve pins the registry hot path: a fixed-bucket
// observation is a short scan plus two atomic adds, allocation-free.
func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("janus_node_latency_ms",
		[]int64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}, "tenant", "ia")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i % 400))
	}
}
