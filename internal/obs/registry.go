package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds pre-registered metric handles. Registration (Counter,
// Gauge, Histogram) takes a lock and may allocate; it happens at setup
// time — the serving engine registers per-tenant handles in prepareRun,
// janusd at server construction. The handles themselves are plain
// atomic integer ops, safe on hot paths and across goroutines.
//
// Snapshot is deterministic: points come out sorted by (name, labels),
// with label maps JSON-encoded in key order, so two identical runs
// produce byte-identical snapshots.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
}

type metricKind uint8

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

type entry struct {
	name   string
	labels []Label // sorted by key
	kind   metricKind
	key    string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Label is one name=value metric dimension.
type Label struct{ Key, Value string }

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket integer histogram: observations land in
// the first bucket whose upper bound is >= the value, or the implicit
// +Inf bucket. Bounds are fixed at registration, so Observe is a short
// predictable scan plus two atomic adds — no allocation, ever.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Int64
	total  atomic.Int64
}

// Observe records v.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.total.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Counter returns (registering on first use) the counter for name and
// label pairs ("k1", "v1", "k2", "v2", ...).
func (r *Registry) Counter(name string, kv ...string) *Counter {
	return r.get(name, counterKind, nil, kv).c
}

// Gauge returns (registering on first use) the gauge for name+labels.
func (r *Registry) Gauge(name string, kv ...string) *Gauge {
	return r.get(name, gaugeKind, nil, kv).g
}

// Histogram returns (registering on first use) the histogram for
// name+labels. Bounds must be strictly increasing upper bucket bounds;
// they are fixed by the first registration of the name and ignored on
// subsequent lookups.
func (r *Registry) Histogram(name string, bounds []int64, kv ...string) *Histogram {
	return r.get(name, histogramKind, bounds, kv).h
}

func (r *Registry) get(name string, kind metricKind, bounds []int64, kv []string) *entry {
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %s registered with odd label list %q", name, kv))
	}
	labels := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		labels = append(labels, Label{Key: kv[i], Value: kv[i+1]})
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
	var sb strings.Builder
	sb.WriteString(name)
	for _, l := range labels {
		sb.WriteByte(0)
		sb.WriteString(l.Key)
		sb.WriteByte(1)
		sb.WriteString(l.Value)
	}
	key := sb.String()

	r.mu.RLock()
	e := r.entries[key]
	r.mu.RUnlock()
	if e != nil {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as %v, was %v", name, kind, e.kind))
		}
		return e
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if e = r.entries[key]; e != nil {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as %v, was %v", name, kind, e.kind))
		}
		return e
	}
	e = &entry{name: name, labels: labels, kind: kind, key: key}
	switch kind {
	case counterKind:
		e.c = &Counter{}
	case gaugeKind:
		e.g = &Gauge{}
	case histogramKind:
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("obs: histogram %s bounds not strictly increasing: %v", name, bounds))
			}
		}
		e.h = &Histogram{bounds: append([]int64(nil), bounds...), counts: make([]atomic.Int64, len(bounds)+1)}
	}
	r.entries[key] = e
	return e
}

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	LE    string `json:"le"` // upper bound, or "+Inf"
	Count int64  `json:"count"`
}

// Point is one metric sample in a snapshot. Counters and gauges carry
// Value; histograms carry Sum, Count, and cumulative Buckets.
type Point struct {
	Name    string            `json:"name"`
	Kind    string            `json:"kind"`
	Labels  map[string]string `json:"labels,omitempty"`
	Value   int64             `json:"value,omitempty"`
	Sum     int64             `json:"sum,omitempty"`
	Count   int64             `json:"count,omitempty"`
	Buckets []Bucket          `json:"buckets,omitempty"`
}

// Snapshot returns every registered metric, sorted by (name, labels).
func (r *Registry) Snapshot() []Point {
	entries := r.sortedEntries()
	out := make([]Point, 0, len(entries))
	for _, e := range entries {
		p := Point{Name: e.name, Kind: e.kind.String()}
		if len(e.labels) > 0 {
			p.Labels = make(map[string]string, len(e.labels))
			for _, l := range e.labels {
				p.Labels[l.Key] = l.Value
			}
		}
		switch e.kind {
		case counterKind:
			p.Value = e.c.Value()
		case gaugeKind:
			p.Value = e.g.Value()
		case histogramKind:
			p.Sum = e.h.Sum()
			p.Buckets = make([]Bucket, 0, len(e.h.counts))
			var cum int64
			for i := range e.h.counts {
				cum += e.h.counts[i].Load()
				le := "+Inf"
				if i < len(e.h.bounds) {
					le = fmt.Sprintf("%d", e.h.bounds[i])
				}
				p.Buckets = append(p.Buckets, Bucket{LE: le, Count: cum})
			}
			p.Count = cum
		}
		out = append(out, p)
	}
	return out
}

func (r *Registry) sortedEntries() []*entry {
	r.mu.RLock()
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	return entries
}
