package obs

import (
	"fmt"
	"io"
	"sort"
)

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4): one `# TYPE` line per family, families and
// series in sorted order, histograms as cumulative `_bucket`/`_sum`/
// `_count` series. The rendering reads the same atomic state Snapshot
// does, so /v1/prometheus and the NDJSON /v1/metrics frames agree by
// construction.
func WritePrometheus(w io.Writer, r *Registry) error {
	entries := r.sortedEntries()
	// Group into families: entries are sorted by key, which leads with
	// the name, so families are contiguous runs.
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].name != entries[j].name {
			return entries[i].name < entries[j].name
		}
		return entries[i].key < entries[j].key
	})
	lastName := ""
	for _, e := range entries {
		if e.name != lastName {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.name, e.kind); err != nil {
				return err
			}
			lastName = e.name
		}
		switch e.kind {
		case counterKind:
			if err := writeSample(w, e.name, e.labels, "", "", e.c.Value()); err != nil {
				return err
			}
		case gaugeKind:
			if err := writeSample(w, e.name, e.labels, "", "", e.g.Value()); err != nil {
				return err
			}
		case histogramKind:
			var cum int64
			for i := range e.h.counts {
				cum += e.h.counts[i].Load()
				le := "+Inf"
				if i < len(e.h.bounds) {
					le = fmt.Sprintf("%d", e.h.bounds[i])
				}
				if err := writeSample(w, e.name+"_bucket", e.labels, "le", le, cum); err != nil {
					return err
				}
			}
			if err := writeSample(w, e.name+"_sum", e.labels, "", "", e.h.Sum()); err != nil {
				return err
			}
			if err := writeSample(w, e.name+"_count", e.labels, "", "", cum); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSample writes one `name{labels} value` line; extraKey/extraVal
// append a trailing label (histogram `le`) without mutating the entry.
func writeSample(w io.Writer, name string, labels []Label, extraKey, extraVal string, value int64) error {
	buf := make([]byte, 0, 128)
	buf = append(buf, name...)
	if len(labels) > 0 || extraKey != "" {
		buf = append(buf, '{')
		for i, l := range labels {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = appendPromLabel(buf, l.Key, l.Value)
		}
		if extraKey != "" {
			if len(labels) > 0 {
				buf = append(buf, ',')
			}
			buf = appendPromLabel(buf, extraKey, extraVal)
		}
		buf = append(buf, '}')
	}
	buf = append(buf, ' ')
	buf = fmt.Appendf(buf, "%d", value)
	buf = append(buf, '\n')
	_, err := w.Write(buf)
	return err
}

func appendPromLabel(buf []byte, key, val string) []byte {
	buf = append(buf, key...)
	buf = append(buf, '=', '"')
	for i := 0; i < len(val); i++ {
		switch c := val[i]; c {
		case '\\', '"':
			buf = append(buf, '\\', c)
		case '\n':
			buf = append(buf, '\\', 'n')
		default:
			buf = append(buf, c)
		}
	}
	return append(buf, '"')
}
