package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// WithScope returns a tracer that stamps every event's Scope before
// forwarding to next. The experiment suite uses it to tell concurrent
// configuration runs apart on one shared sink ("replay/autoscaler+regen").
// Events pass by value, so the stamp never aliases between runs.
func WithScope(next Tracer, scope string) Tracer {
	if next == nil {
		return nil
	}
	return scopedTracer{next: next, scope: scope}
}

type scopedTracer struct {
	next  Tracer
	scope string
}

func (s scopedTracer) Emit(ev Event) {
	ev.Scope = s.scope
	s.next.Emit(ev)
}

// Multi fans one event out to several sinks; nil sinks are dropped. It
// returns nil when nothing remains, so callers can attach the result
// directly and keep the zero-cost-off guarantee.
func Multi(sinks ...Tracer) Tracer {
	kept := make([]Tracer, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return multiTracer(kept)
}

type multiTracer []Tracer

func (m multiTracer) Emit(ev Event) {
	for _, t := range m {
		t.Emit(ev)
	}
}

// NDJSONWriter streams events to w, one JSON object per line, in emit
// order. It is goroutine-safe: concurrent experiment runs sharing one
// writer interleave whole lines, never bytes (within a single run the
// order is the engine's deterministic virtual-time order; across
// concurrent runs the interleaving follows scheduling — run janusbench
// with -parallelism 1 for a fully reproducible file).
type NDJSONWriter struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
	err error
}

// NewNDJSONWriter wraps w. The caller keeps ownership of w (and closes
// it, if it is a file) after the run.
func NewNDJSONWriter(w io.Writer) *NDJSONWriter {
	return &NDJSONWriter{w: w, buf: make([]byte, 0, 256)}
}

// Emit writes one line. Write errors are sticky and reported by Err;
// Emit never panics mid-run.
func (n *NDJSONWriter) Emit(ev Event) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.err != nil {
		return
	}
	n.buf = appendJSON(n.buf[:0], ev)
	n.buf = append(n.buf, '\n')
	if _, err := n.w.Write(n.buf); err != nil {
		n.err = err
	}
}

// Err returns the first write error, if any.
func (n *NDJSONWriter) Err() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.err
}

// FlightRecorder keeps the last N events in a pre-allocated ring and,
// whenever a KindSLOMiss arrives, snapshots the ring — the miss and the
// up-to-N-1 events leading into it — into a bounded dump list. The ring
// write path allocates nothing (guarded by benchmark), so a recorder
// can fly on paper-scale runs; only the rare miss pays for its dump.
//
// A FlightRecorder is intentionally not goroutine-safe: it records one
// run. Attach one per run, or put a shared goroutine-safe sink (NDJSON,
// Collector) behind the suite fan-out instead.
type FlightRecorder struct {
	buf    []Event
	pos    int // next write slot
	filled bool
	misses int
	dumps  [][]Event

	// MaxDumps bounds retained dumps (default 16); further misses are
	// still counted by Misses but not snapshotted.
	MaxDumps int
}

// NewFlightRecorder returns a recorder holding the last size events
// (minimum 1).
func NewFlightRecorder(size int) *FlightRecorder {
	if size < 1 {
		size = 1
	}
	return &FlightRecorder{buf: make([]Event, size), MaxDumps: 16}
}

// Emit records the event, snapshotting the ring on an SLO miss.
func (f *FlightRecorder) Emit(ev Event) {
	f.buf[f.pos] = ev
	f.pos++
	if f.pos == len(f.buf) {
		f.pos = 0
		f.filled = true
	}
	if ev.Kind == KindSLOMiss {
		f.misses++
		if len(f.dumps) < f.MaxDumps {
			f.dumps = append(f.dumps, f.Events())
		}
	}
}

// Events returns the ring's current contents, oldest first. The slice
// is a copy.
func (f *FlightRecorder) Events() []Event {
	if !f.filled {
		return append([]Event(nil), f.buf[:f.pos]...)
	}
	out := make([]Event, 0, len(f.buf))
	out = append(out, f.buf[f.pos:]...)
	return append(out, f.buf[:f.pos]...)
}

// Dumps returns one ring snapshot per recorded SLO miss (each ends with
// its miss event), capped at MaxDumps.
func (f *FlightRecorder) Dumps() [][]Event { return f.dumps }

// Misses returns the total SLO-miss events seen, including ones past
// the dump cap.
func (f *FlightRecorder) Misses() int { return f.misses }

// Collector retains every event, for tests. Goroutine-safe.
type Collector struct {
	mu     sync.Mutex
	events []Event
}

// Emit appends the event.
func (c *Collector) Emit(ev Event) {
	c.mu.Lock()
	c.events = append(c.events, ev)
	c.mu.Unlock()
}

// Events returns a copy of everything collected so far.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Timeline aggregates events into fixed virtual-time buckets per scope
// and renders a per-phase summary — the cheap "what happened when" view
// janusbench prints after a traced run. Goroutine-safe.
type Timeline struct {
	mu      sync.Mutex
	bucket  time.Duration
	byScope map[string]map[int64]*[kindCount]int64
}

// NewTimeline aggregates at the given bucket width (minimum 1ns;
// time.Second reads well for replay/fleet schedules).
func NewTimeline(bucket time.Duration) *Timeline {
	if bucket <= 0 {
		bucket = time.Second
	}
	return &Timeline{bucket: bucket, byScope: make(map[string]map[int64]*[kindCount]int64)}
}

// Emit counts the event into its (scope, bucket) cell.
func (t *Timeline) Emit(ev Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	buckets := t.byScope[ev.Scope]
	if buckets == nil {
		buckets = make(map[int64]*[kindCount]int64)
		t.byScope[ev.Scope] = buckets
	}
	b := int64(ev.At / t.bucket)
	cell := buckets[b]
	if cell == nil {
		cell = new([kindCount]int64)
		buckets[b] = cell
	}
	cell[ev.Kind]++
}

// Summary renders the timeline: scopes sorted, one line per non-empty
// bucket with non-zero kind counts.
func (t *Timeline) Summary() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	scopes := make([]string, 0, len(t.byScope))
	for s := range t.byScope {
		scopes = append(scopes, s)
	}
	sort.Strings(scopes)
	var sb strings.Builder
	for _, scope := range scopes {
		name := scope
		if name == "" {
			name = "(unscoped)"
		}
		fmt.Fprintf(&sb, "== %s\n", name)
		buckets := t.byScope[scope]
		ids := make([]int64, 0, len(buckets))
		for b := range buckets {
			ids = append(ids, b)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, b := range ids {
			cell := buckets[b]
			fmt.Fprintf(&sb, "  t=[%v,%v)", time.Duration(b)*t.bucket, time.Duration(b+1)*t.bucket)
			for k := Kind(0); k < kindCount; k++ {
				if cell[k] != 0 {
					fmt.Fprintf(&sb, " %s=%d", k, cell[k])
				}
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
