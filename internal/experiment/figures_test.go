package experiment

import (
	"strings"
	"testing"
	"time"
)

func TestFig1a(t *testing.T) {
	s := quickSuite(t)
	f, err := s.Fig1a()
	if err != nil {
		t.Fatal(err)
	}
	if f.PopularShare < 0.72 || f.PopularShare > 0.92 {
		t.Errorf("popular share %.3f not near the paper's 81.6%%", f.PopularShare)
	}
	// > 60% of invocations have slack over 0.6 -> CDF(0.6) < 0.4.
	var cdfAt06 float64
	for i, x := range f.Grid {
		if x >= 0.599 && x <= 0.601 {
			cdfAt06 = f.All[i].F
		}
	}
	if cdfAt06 >= 0.4 {
		t.Errorf("CDF(slack=0.6) = %.3f, want < 0.4", cdfAt06)
	}
	if !strings.Contains(f.String(), "Fig 1a") {
		t.Error("String() lost its header")
	}
}

func TestFig1b(t *testing.T) {
	s := quickSuite(t)
	rows, err := s.Fig1b()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	maxRatio := 0.0
	for _, r := range rows {
		if r.P99 <= r.P1 {
			t.Errorf("%s: P99 %v not above P1 %v", r.Function, r.P99, r.P1)
		}
		if r.Ratio > maxRatio {
			maxRatio = r.Ratio
		}
	}
	// Fig 1b: up to ~3.8x.
	if maxRatio < 2.5 || maxRatio > 5.5 {
		t.Errorf("max P99/P1 ratio %.2f out of the paper's ballpark", maxRatio)
	}
	if !strings.Contains(FormatFig1b(rows), "od") {
		t.Error("FormatFig1b lost function names")
	}
}

func TestFig1c(t *testing.T) {
	s := quickSuite(t)
	rows, err := s.Fig1c()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	byDim := map[string][]float64{}
	for _, r := range rows {
		if len(r.Normalized) != 6 {
			t.Fatalf("%s has %d points", r.Function, len(r.Normalized))
		}
		if r.Normalized[0] < 0.99 || r.Normalized[0] > 1.01 {
			t.Errorf("%s: n=1 not normalized to 1 (%v)", r.Function, r.Normalized[0])
		}
		for i := 1; i < 6; i++ {
			if r.Normalized[i] < r.Normalized[i-1]-0.03 {
				t.Errorf("%s: slowdown shrank at n=%d", r.Function, i+1)
			}
		}
		byDim[r.Dimension] = r.Normalized
	}
	// Network suffers the most (paper: up to 8.1x), CPU the least.
	if byDim["network"][5] < 7 || byDim["network"][5] > 9.5 {
		t.Errorf("network slowdown at 6 = %.2f, want ~8.1", byDim["network"][5])
	}
	if byDim["cpu"][5] >= byDim["memory"][5] || byDim["memory"][5] >= byDim["io"][5] || byDim["io"][5] >= byDim["network"][5] {
		t.Error("dimension severity ordering broken")
	}
}

func TestFig2(t *testing.T) {
	s := quickSuite(t)
	f, err := s.Fig2(50)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 50 {
		t.Fatalf("%d rows", len(f.Rows))
	}
	// Late binding must save CPU on average; the paper reports up to 42.2%.
	if f.MeanSavings() <= 0.05 {
		t.Errorf("mean savings %.3f too small", f.MeanSavings())
	}
	if f.MaxSavings() < 0.2 {
		t.Errorf("max savings %.3f, want a pronounced best case", f.MaxSavings())
	}
	// Early binding is never cheaper than the oracle.
	for _, r := range f.Rows {
		if r.EarlyCPU < 0.999 {
			t.Errorf("request %d: early CPU %.3f below optimal", r.RequestID, r.EarlyCPU)
		}
	}
}

func TestFig4AllSystemsMeetSLOs(t *testing.T) {
	s := quickSuite(t)
	panels, err := s.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 4 {
		t.Fatalf("%d panels", len(panels))
	}
	for _, p := range panels {
		for _, d := range p.Systems {
			if d.P50 > d.P90 || d.P90 > d.P99 || d.P99 > d.P999 || d.P999 > d.Max {
				t.Errorf("%v/%s: percentiles not monotone", p.Panel, d.System)
			}
			// The SLO is a P99 target; allow small sampling noise.
			if d.ViolationRate > 0.03 {
				t.Errorf("%v/%s: violation rate %.3f", p.Panel, d.System, d.ViolationRate)
			}
		}
	}
	if !strings.Contains(FormatFig4(panels), "SLO") {
		t.Error("FormatFig4 lost its header")
	}
}

func TestFig5NormalizedAboveOne(t *testing.T) {
	s := quickSuite(t)
	panels, err := s.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range panels {
		var opt, gs float64
		for _, r := range p.Systems {
			if r.Normalized < 0.999 {
				t.Errorf("%v/%s: normalized %.3f below Optimal", p.Panel, r.System, r.Normalized)
			}
			switch r.System {
			case SysOptimal:
				opt = r.Normalized
			case SysGrandSLAM:
				gs = r.Normalized
			}
		}
		if opt < 0.999 || opt > 1.001 {
			t.Errorf("%v: optimal not normalized to 1", p.Panel)
		}
		// Early binding over-allocates; at higher concurrency the paper
		// reports up to 1.75x.
		if gs < 1.1 {
			t.Errorf("%v: GrandSLAM normalized %.3f suspiciously low", p.Panel, gs)
		}
	}
}

func TestFig5bHigherConcurrencyOverAllocation(t *testing.T) {
	s := quickSuite(t)
	panels, err := s.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	// Panels 2 and 3 are IA at concurrency 2 and 3: early binding's
	// over-allocation should be pronounced (paper: up to 1.75x).
	for _, p := range panels[2:] {
		for _, r := range p.Systems {
			if r.System == SysGrandSLAM || r.System == SysGrandSLAMP {
				if r.Normalized < 1.2 {
					t.Errorf("conc=%d %s normalized %.3f, want clear over-allocation", p.Panel.Batch, r.System, r.Normalized)
				}
			}
		}
	}
}

func TestFig6JanusPlusCostsMore(t *testing.T) {
	s := quickSuite(t)
	rows, err := s.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// Fig 6b: Janus+ synthesis is far more expensive (paper: up to
		// 107.2x). The quick suite's coarse sweep still shows >= 3x.
		if float64(r.JanusPlusSynth) < 3*float64(r.JanusSynth) {
			t.Errorf("SLO %v: Janus+ synth %v not clearly above Janus %v",
				r.SLO, r.JanusPlusSynth, r.JanusSynth)
		}
		// Fig 6a: consumptions track each other.
		diff := r.JanusPlusMillicores/r.JanusMillicores - 1
		if diff > 0.03 || diff < -0.12 {
			t.Errorf("SLO %v: Janus+ consumption deviates %.1f%%", r.SLO, diff*100)
		}
	}
	// Consumption decreases as the SLO relaxes.
	if rows[len(rows)-1].JanusMillicores >= rows[0].JanusMillicores {
		t.Error("Janus consumption did not fall with looser SLOs")
	}
}

func TestFig7Shapes(t *testing.T) {
	s := quickSuite(t)
	f, err := s.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	// 7a: timeout decreases with percentile at fixed k.
	for i := range f.Levels {
		if f.TimeoutMs[25][i] < f.TimeoutMs[50][i] || f.TimeoutMs[50][i] < f.TimeoutMs[75][i] {
			t.Errorf("timeout ordering broken at level %d", i)
		}
	}
	// 7b: resilience decreases with k and grows with concurrency.
	last := len(f.Levels) - 1
	for _, c := range []int{1, 2, 3} {
		if f.ResilienceMs[c][0] <= f.ResilienceMs[c][last] {
			t.Errorf("conc %d: resilience did not shrink with cores", c)
		}
		if f.ResilienceMs[c][last] != 0 {
			t.Errorf("conc %d: resilience at Kmax = %d, want 0", c, f.ResilienceMs[c][last])
		}
	}
	if f.ResilienceMs[3][0] <= f.ResilienceMs[1][0] {
		t.Error("resilience did not grow with concurrency")
	}
	if !strings.Contains(f.String(), "Fig 7a") {
		t.Error("String() lost its header")
	}
}

func TestFig8CondensingAndWeightTrend(t *testing.T) {
	s := quickSuite(t)
	rows, err := s.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4*5 {
		t.Fatalf("%d rows", len(rows))
	}
	byPoint := map[string][]Fig8Row{}
	for _, r := range rows {
		if r.Condensed == 0 || r.RawHints == 0 {
			t.Fatalf("%s/b%d w%.1f: empty table", r.Workflow, r.Batch, r.Weight)
		}
		// Fig 8's headline claim is about absolute condensed sizes: IA
		// tables stay under ~147 entries and VA under ~96, regardless of
		// how many raw budgets were swept. (The >= 98% compression ratios
		// only appear at the paper's 1 ms sweep, exercised by the bench.)
		limit := 200
		if r.Workflow == "va" {
			limit = 120
		}
		if r.Condensed > limit {
			t.Errorf("%s/b%d w%.1f: %d condensed hints exceed the paper-scale bound %d",
				r.Workflow, r.Batch, r.Weight, r.Condensed, limit)
		}
		key := r.Workflow + string(rune('0'+r.Batch))
		byPoint[key] = append(byPoint[key], r)
	}
	// Higher weights lead to same-or-smaller condensed tables.
	for key, rs := range byPoint {
		if rs[len(rs)-1].Condensed > rs[0].Condensed {
			t.Errorf("%s: condensed hints grew with weight (%d -> %d)", key, rs[0].Condensed, rs[len(rs)-1].Condensed)
		}
	}
}

func TestFig9Trends(t *testing.T) {
	s := quickSuite(t)
	rows, err := s.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5+6 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// Janus never meaningfully loses. At loose SLOs every system sits
		// within a few percent of the 1000-millicore floor: early binding
		// reaches it exactly, while Janus keeps a small mid-chain P99
		// insurance premium (the paper's gains likewise "decrease
		// marginally" as SLOs grow).
		if r.Janus > r.ORION+0.05 {
			t.Errorf("%s SLO %v: janus %.3f above orion %.3f", r.Workflow, r.SLO, r.Janus, r.ORION)
		}
		if r.Janus > r.GrandSLAM+0.05 {
			t.Errorf("%s SLO %v: janus %.3f above grandslam %.3f", r.Workflow, r.SLO, r.Janus, r.GrandSLAM)
		}
	}
	// At each workflow's tightest SLO the gap is strict.
	for _, i := range []int{0, 5} {
		r := rows[i]
		if r.Janus >= r.ORION || r.Janus >= r.GrandSLAM {
			t.Errorf("%s SLO %v (tightest): janus %.3f should strictly beat orion %.3f / grandslam %.3f",
				r.Workflow, r.SLO, r.Janus, r.ORION, r.GrandSLAM)
		}
	}
	// Janus approaches Optimal as the SLO relaxes (paper: gains shrink
	// because allocations bottom out at 1000 millicores per function).
	var iaRows []Fig9Row
	for _, r := range rows {
		if r.Workflow == "ia" {
			iaRows = append(iaRows, r)
		}
	}
	if iaRows[len(iaRows)-1].Janus > iaRows[0].Janus {
		t.Error("IA: Janus normalized consumption did not approach Optimal with looser SLOs")
	}
}

func TestTable1MatchesPaperShape(t *testing.T) {
	s := quickSuite(t)
	tab, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, wf := range []string{"ia", "va"} {
		row := tab.Reduction[wf]
		// Janus saves meaningfully against every real baseline.
		for _, sys := range []string{SysORION, SysGrandSLAMP, SysGrandSLAM, SysJanusMinus} {
			if row[sys] <= 0 {
				t.Errorf("%s: reduction vs %s = %.1f%%, want positive", wf, sys, row[sys])
			}
		}
		// Ordering within the row: GrandSLAM+ >= ORION (the paper's
		// strongest baseline is ORION), Janus- smallest.
		if row[SysORION] >= row[SysGrandSLAMP] {
			t.Errorf("%s: ORION reduction %.1f should be below GrandSLAM+ %.1f", wf, row[SysORION], row[SysGrandSLAMP])
		}
		if row[SysJanusMinus] >= row[SysORION] {
			t.Errorf("%s: Janus- reduction %.1f should be below ORION %.1f", wf, row[SysJanusMinus], row[SysORION])
		}
		// Janus+ is within a modest band of Janus (paper: -0.2 to 0; our
		// models give the wider exploration more room).
		if row[SysJanusPlus] > 4 || row[SysJanusPlus] < -16 {
			t.Errorf("%s: Janus+ delta %.1f%% too large", wf, row[SysJanusPlus])
		}
	}
	if !strings.Contains(tab.String(), "Table I") {
		t.Error("String() lost its header")
	}
}

func TestTable2WeightImpact(t *testing.T) {
	s := quickSuite(t)
	tab, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	// Higher weight -> smaller head allocation and lower percentile.
	if tab.MeanMillicores[3] >= tab.MeanMillicores[1] {
		t.Errorf("weight 3 head %.1f mc not below weight 1 %.1f mc", tab.MeanMillicores[3], tab.MeanMillicores[1])
	}
	if tab.MeanPercentile[3] >= tab.MeanPercentile[1] {
		t.Errorf("weight 3 percentile %.1f not below weight 1 %.1f", tab.MeanPercentile[3], tab.MeanPercentile[1])
	}
	if !strings.Contains(tab.String(), "Table II") {
		t.Error("String() lost its header")
	}
}

func TestOverheadUnderPaperBound(t *testing.T) {
	s := quickSuite(t)
	o, err := s.Overhead()
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports < 3 ms per online adaptation; table lookups are
	// microseconds here. Allow generous CI noise.
	if o.MeanDecision > time.Millisecond {
		t.Errorf("mean decision %v, want well under the paper's 3ms", o.MeanDecision)
	}
	if o.BundleBytes <= 0 || o.TotalRanges <= 0 {
		t.Error("bundle metrics missing")
	}
	if !strings.Contains(o.String(), "overhead") {
		t.Error("String() lost its header")
	}
}
