package experiment

import (
	"fmt"
	"strings"
	"testing"

	"janus/internal/cluster"
	"janus/internal/platform"
)

func TestMixScenarioShape(t *testing.T) {
	s := quickSuite(t)
	runs, err := s.MixScenario()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != len(MixSystems()) {
		t.Fatalf("%d runs, want %d", len(runs), len(MixSystems()))
	}
	tenants, err := MixTenants()
	if err != nil {
		t.Fatal(err)
	}
	for i, run := range runs {
		if run.System != MixSystems()[i] {
			t.Fatalf("run %d system %q, want %q", i, run.System, MixSystems()[i])
		}
		if run.Nodes != MixDefaultNodes || run.Placement != cluster.PlacementSpread {
			t.Fatalf("run %s cluster shape %d/%s", run.System, run.Nodes, run.Placement)
		}
		if len(run.Tenants) != len(tenants) {
			t.Fatalf("run %s has %d tenant rows", run.System, len(run.Tenants))
		}
		// Per-tenant trace counts must sum to the merged workload size,
		// with every trace tagged for its tenant.
		merged := 0
		for j, mt := range tenants {
			row := run.Tenants[j]
			if row.Tenant != mt.Tenant || row.SLO != mt.Workflow.SLO() {
				t.Fatalf("run %s row %d is %s/%v, want %s/%v", run.System, j, row.Tenant, row.SLO, mt.Tenant, mt.Workflow.SLO())
			}
			traces := run.Traces[mt.Tenant]
			if len(traces) == 0 {
				t.Fatalf("run %s tenant %s has no traces", run.System, mt.Tenant)
			}
			merged += len(traces)
			for _, tr := range traces {
				if tr.Tenant != mt.Tenant {
					t.Fatalf("run %s: trace tagged %q under tenant %s", run.System, tr.Tenant, mt.Tenant)
				}
				if tr.SLO != mt.Workflow.SLO() {
					t.Fatalf("run %s tenant %s trace has SLO %v", run.System, mt.Tenant, tr.SLO)
				}
			}
		}
		var all []platform.Trace
		for _, traces := range run.Traces {
			all = append(all, traces...)
		}
		if len(all) != merged {
			t.Fatalf("run %s: merged %d traces but tenants sum to %d", run.System, len(all), merged)
		}
		if run.Aggregate.Tenant != "all" || run.Aggregate.SLO != 0 {
			t.Fatalf("run %s aggregate row = %+v", run.System, run.Aggregate)
		}
		if run.Aggregate.MeanMillicores <= 0 || run.Aggregate.P99 <= 0 {
			t.Fatalf("run %s aggregate metrics empty: %+v", run.System, run.Aggregate)
		}
	}
	if FormatMixScenario(runs) == "" {
		t.Fatal("empty scenario rendering")
	}
}

func TestMixScaleOutRelievesContention(t *testing.T) {
	s := quickSuite(t)
	runs, err := s.MixScaleOut()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != len(MixNodeCounts())*len(mixSweepSystems()) {
		t.Fatalf("%d sweep runs", len(runs))
	}
	// Index aggregate P99 and parking by (nodes, system).
	bySpec := map[string]*MixRun{}
	for _, run := range runs {
		bySpec[fmt.Sprintf("%d/%s", run.Nodes, run.System)] = run
	}
	for _, sys := range mixSweepSystems() {
		one, four := bySpec["1/"+sys], bySpec["4/"+sys]
		if one == nil || four == nil {
			t.Fatalf("missing sweep endpoints for %s", sys)
		}
		// Scaling from 1 to 4 nodes quadruples capacity for the identical
		// request sequence: queueing can only shrink.
		if four.Aggregate.Parked > one.Aggregate.Parked {
			t.Errorf("%s: parking grew with capacity (1 node %d, 4 nodes %d)",
				sys, one.Aggregate.Parked, four.Aggregate.Parked)
		}
		if four.Aggregate.P99 > one.Aggregate.P99 {
			t.Errorf("%s: aggregate P99 grew with capacity (1 node %v, 4 nodes %v)",
				sys, one.Aggregate.P99, four.Aggregate.P99)
		}
	}
	if FormatMixScaleOut(runs) == "" {
		t.Fatal("empty sweep rendering")
	}
}

func TestMixPlacementPolicies(t *testing.T) {
	s := quickSuite(t)
	runs, err := s.MixPlacement()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 || runs[0].Placement != cluster.PlacementSpread || runs[1].Placement != cluster.PlacementFirstFit {
		t.Fatalf("placement comparison runs = %+v", runs)
	}
	// Both policies serve the same merged workload completely.
	for _, run := range runs {
		total := 0
		for _, traces := range run.Traces {
			total += len(traces)
		}
		if total != len(runs[0].Traces["ia"])*3 {
			t.Fatalf("placement %s served %d traces", run.Placement, total)
		}
	}
	if FormatMixPlacement(runs) == "" {
		t.Fatal("empty placement rendering")
	}
}

// dumpMixRuns serializes every field the mix drivers consume — per-tenant
// summaries plus the full per-branch traces — so two runs compare byte for
// byte (the mixed analogue of dumpRuns).
func dumpMixRuns(runs []*MixRun) string {
	var b strings.Builder
	tenantsOf := func(run *MixRun) []string {
		names := make([]string, len(run.Tenants))
		for i, row := range run.Tenants {
			names[i] = row.Tenant
		}
		return names
	}
	for _, run := range runs {
		fmt.Fprintf(&b, "%s n%d %s agg_mc=%.9f agg_p99=%v agg_viol=%.9f\n",
			run.System, run.Nodes, run.Placement, run.Aggregate.MeanMillicores, run.Aggregate.P99, run.Aggregate.ViolationRate)
		for _, tenant := range tenantsOf(run) {
			for _, tr := range run.Traces[tenant] {
				fmt.Fprintf(&b, "  %s req=%d arr=%v done=%v e2e=%v mc=%d dec=%d miss=%d parked=%d\n",
					tenant, tr.RequestID, tr.Arrival, tr.Done, tr.E2E, tr.TotalMillicores, tr.Decisions, tr.Misses, tr.Parked)
				for _, st := range tr.Stages {
					fmt.Fprintf(&b, "    s%d.b%d n%d %s mc=%d start=%v end=%v cold=%t hit=%t\n",
						st.Stage, st.Branch, st.Node, st.Function, st.Millicores, st.Start, st.End, st.Cold, st.Hit)
				}
			}
		}
	}
	return b.String()
}

// TestMixDeterministicAcrossParallelism is the tentpole's acceptance test:
// a fresh QuickSuite running the full mix grid (scenario, scale-out sweep,
// placement comparison) at parallelism 1 and at parallelism 8 must produce
// byte-identical mixed trace sets. The merged interleaving of three
// tenants' arrival streams is a pure function of the inputs, so worker
// scheduling can reorder which mixed run executes first, never what any
// run produces.
func TestMixDeterministicAcrossParallelism(t *testing.T) {
	grid := func(s *Suite) string {
		scenario, err := s.MixScenario()
		if err != nil {
			t.Fatal(err)
		}
		sweep, err := s.MixScaleOut()
		if err != nil {
			t.Fatal(err)
		}
		placement, err := s.MixPlacement()
		if err != nil {
			t.Fatal(err)
		}
		return dumpMixRuns(scenario) + dumpMixRuns(sweep) + dumpMixRuns(placement)
	}
	sequential := QuickSuite()
	sequential.SetParallelism(1)
	seq := grid(sequential)
	concurrent := QuickSuite()
	concurrent.SetParallelism(8)
	par := grid(concurrent)
	if seq != par {
		a, b := strings.Split(seq, "\n"), strings.Split(par, "\n")
		for i := range a {
			if i >= len(b) || a[i] != b[i] {
				t.Fatalf("mixed run diverged at line %d:\n  seq: %s\n  par: %s", i, a[i], b[i])
			}
		}
		t.Fatalf("mixed run diverged (lengths %d vs %d)", len(seq), len(par))
	}
}
