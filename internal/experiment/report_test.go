package experiment

import (
	"fmt"
	"testing"

	"janus/internal/workflow"
)

// TestReportNumbers prints the per-system summary used while calibrating
// the reproduction; it doubles as an end-to-end smoke test.
func TestReportNumbers(t *testing.T) {
	s := quickSuite(t)
	for _, wf := range []*workflow.Workflow{workflow.IntelligentAssistant(), workflow.VideoAnalyze()} {
		runs, err := s.RunPoint(wf, 1, AllSystems())
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("== %s ==\n", wf.Name())
		for _, sys := range AllSystems() {
			r := runs[sys]
			fmt.Printf("%-11s meanMC=%6.0f p50=%6v p99=%6v viol=%.3f miss=%.3f\n",
				sys, r.MeanMillicores, r.P50E2E.Milliseconds(), r.P99E2E.Milliseconds(), r.ViolationRate, r.MissRate)
		}
	}
}
