package experiment

import (
	"fmt"
	"strings"
	"time"

	"janus/internal/adapter"
	"janus/internal/cluster"
	"janus/internal/platform"
	"janus/internal/synth"
	"janus/internal/workflow"
)

// The dynamic-trigger scenario: every other experiment serves workflows
// whose shape is fixed at deployment. Here the served DAG resolves its
// own shape at run time — a conditional fork, a data-dependent map whose
// width is drawn at the fork's readiness instant, a retried node, and an
// awaited gate resumed by external timer events on the replay engine's
// virtual clock. Both provider configurations deploy the identical
// shape-variant hint bundle and face the identical request sequence and
// trigger queue; the only difference is whether the allocator is shown
// the part of the shape already resolved at each decision instant.
// Static worst-case planning prices every map at its width bound and
// escalates when tight budgets fall below the conservative table's
// floor; shape-aware planning answers from the resolved-width variant.

// TriggerWorkflowName names the dynamic trigger-scenario workload.
const TriggerWorkflowName = "trigger-ml"

// TriggerTenant is the scenario's (single) tenant name.
const TriggerTenant = "trig"

// Trigger provider configurations, in display order.
const (
	// TriggerWorstCase plans every decision against the conservative
	// static tables: the resolved shape is withheld from the allocator
	// (adapter.Allocator.ShapeBlind), so a width-1 map is provisioned
	// as if all four replicas could arrive.
	TriggerWorstCase = "worst-case"
	// TriggerShapeAware passes each decision group's resolved-shape key
	// to the adapter, which answers from the matching width-variant
	// table and falls back to the conservative base for unresolved
	// futures.
	TriggerShapeAware = "shape-aware"
)

// TriggerConfigs lists the trigger scenario's provider configurations.
func TriggerConfigs() []string {
	return []string{TriggerWorstCase, TriggerShapeAware}
}

const (
	// TriggerSLO is the dynamic workflow's end-to-end objective. It is
	// deliberately tight for the heavy branch: a wide, retried map must
	// spend real money to meet it, which is where worst-case and
	// shape-aware planning part ways.
	TriggerSLO = 2400 * time.Millisecond
	// TriggerRatePerSec is the Poisson arrival rate. Above the suite's
	// stationary default so the two-node cluster runs in genuine
	// capacity contention: every needlessly escalated replica parks
	// somebody else's acquisition. Note the regime sensitivity: the two
	// policies only separate while contention is real but budgets still
	// land inside table coverage, and a sustained over-capacity rate
	// grows the queue with stream length, so the paper-scale (1000
	// request) stream runs past that band into saturation, where most
	// decisions escalate identically and the arms converge. The
	// quick-scale stream is the calibrated comparison; making the
	// scenario's claim scale-invariant is an open ROADMAP item.
	TriggerRatePerSec = 12
	// TriggerGateDelay is each request's timer: the gate await resumes
	// this long after the request's (effective) admission. Sized near
	// the light branch's completion time, so captions wait briefly on
	// the timer while heavy OCR fan-outs usually find it already fired.
	TriggerGateDelay = 300 * time.Millisecond
	// triggerTimerEvery selects the timer-started slice of the stream:
	// every triggerTimerEvery-th request does not arrive on its own but
	// is admitted by a start trigger TriggerTimerDelay after its drawn
	// arrival instant (a scheduled invocation, not a live one).
	triggerTimerEvery = 8
	// TriggerTimerDelay shifts timer-started admissions.
	TriggerTimerDelay = 250 * time.Millisecond
)

// TriggerWorkflow builds the scenario's dynamic ML-inference DAG:
//
//	ingest -> triage -> {caption | detect -> ocr} -> gate -> publish
//
// triage is a conditional fork (55% light captioning, 45% heavy
// detection), ocr a data-dependent map of width 1..4 with up to two
// retries per replica, and gate an awaited join resumed by an external
// timer. The static skeleton has six decision groups; the conservative
// plan prices ocr at width 4 with worst-case retries.
func TriggerWorkflow() (*workflow.Workflow, error) {
	nodes := []workflow.Node{
		{Name: "ingest", Function: "fe"},
		{Name: "triage", Function: "redis-read"},
		{Name: "caption", Function: "icl"},
		{Name: "detect", Function: "ico"},
		{Name: "ocr", Function: "ts"},
		{Name: "gate", Function: "redis-read"},
		{Name: "publish", Function: "socket-comm"},
	}
	edges := [][2]string{
		{"ingest", "triage"},
		{"triage", "caption"},
		{"triage", "detect"},
		{"detect", "ocr"},
		{"caption", "gate"},
		{"ocr", "gate"},
		{"gate", "publish"},
	}
	return workflow.NewDynamic(TriggerWorkflowName, TriggerSLO, nodes, edges, []workflow.DynamicNode{
		{Step: "triage", Choice: &workflow.ChoiceSpec{Weights: []float64{0.55, 0.45}}},
		{Step: "ocr", Map: &workflow.MapSpec{MaxWidth: 6}, Retry: &workflow.RetrySpec{MaxRetries: 2, FailureProb: 0.15}},
		{Step: "gate", Await: true},
	})
}

// TriggerSchedule derives the scenario's external-event queue from the
// request stream — a pure function of the workload, so every provider
// configuration replays the identical queue. Every request's gate await
// is resumed TriggerGateDelay after its effective admission; every
// triggerTimerEvery-th request is itself timer-started TriggerTimerDelay
// after its drawn arrival instant (and its gate timer chains off that).
func TriggerSchedule(reqs []*platform.Request) []platform.Trigger {
	out := make([]platform.Trigger, 0, len(reqs)+len(reqs)/triggerTimerEvery)
	for i, r := range reqs {
		start := r.Arrival
		if i%triggerTimerEvery == triggerTimerEvery-1 {
			start += TriggerTimerDelay
			out = append(out, platform.Trigger{At: start, Tenant: TriggerTenant, Request: r.ID})
		}
		out = append(out, platform.Trigger{At: start + TriggerGateDelay, Tenant: TriggerTenant, Request: r.ID, Step: "gate"})
	}
	return out
}

// TriggerRun is one trigger serving run: the full dynamic stream under
// one provider configuration.
type TriggerRun struct {
	Config         string
	Nodes          int
	NodeMillicores int
	// TimerStarted counts the requests admitted by start triggers.
	TimerStarted int
	// Rows break the stream down by resolved shape ("light" for the
	// caption branch, "heavy w=N" for detection at map width N) — the
	// segments the two planning policies price differently. The Tenant
	// column carries the segment label.
	Rows []ReplayRow
	// Aggregate summarizes the whole stream.
	Aggregate ReplayRow
	// Metrics is the run's provisioning cost on the shared cluster.
	Metrics platform.ReplayMetrics
	// Traces is the full replayed trace set.
	Traces []platform.Trace
}

// triggerSegments buckets traces by the shape the request resolved to.
// Trace order follows request IDs within a tenant, so reqs[t.RequestID]
// is the request that produced trace t.
func triggerSegments(config string, reqs []*platform.Request, traces []platform.Trace) []ReplayRow {
	labels := []string{"light", "heavy w=1", "heavy w=2", "heavy w=3", "heavy w=4", "heavy w=5", "heavy w=6"}
	buckets := make(map[string][]platform.Trace, len(labels))
	for _, t := range traces {
		r := reqs[t.RequestID]
		label := "light"
		if r.Dyn.Choice["triage"] == 1 {
			label = fmt.Sprintf("heavy w=%d", r.Dyn.Width["ocr"])
		}
		buckets[label] = append(buckets[label], t)
	}
	rows := make([]ReplayRow, 0, len(labels))
	for _, label := range labels {
		ts := buckets[label]
		if len(ts) == 0 {
			continue
		}
		rows = append(rows, summarizeReplayTraces(config, label, TriggerSLO, ts))
	}
	return rows
}

// serveTrigger executes one provider configuration of the trigger
// scenario end to end.
func (s *Suite) serveTrigger(config string) (*TriggerRun, error) {
	w, err := TriggerWorkflow()
	if err != nil {
		return nil, err
	}
	reqs, err := s.WorkloadAtRate(w, 1, TriggerRatePerSec)
	if err != nil {
		return nil, err
	}
	triggers := TriggerSchedule(reqs)
	// Both configurations deploy the identical shape-variant bundle; a
	// run-private adapter keeps their epoch windows from contaminating
	// each other.
	dep, err := s.Deployment(w, 1, synth.ModeJanus, 1)
	if err != nil {
		return nil, err
	}
	a, err := adapter.New(dep.Bundle())
	if err != nil {
		return nil, err
	}
	alloc := &adapter.Allocator{Adapter: a, System: config, ShapeBlind: config == TriggerWorstCase}
	cfg := platform.DefaultExecutorConfig()
	cfg.Cluster = cluster.Config{
		Nodes:          MixDefaultNodes,
		NodeMillicores: ReplayNodeMillicores,
		PoolSize:       replayPoolSize,
		IdleMillicores: 100,
		Placement:      cluster.PlacementSpread,
	}
	cfg.Seed = s.cfg.Seed
	ex, err := platform.NewExecutor(cfg, s.functions)
	if err != nil {
		return nil, err
	}
	// The horizon spans the last external event plus one full objective,
	// so both configurations pay for their pools over the same window.
	var horizon time.Duration
	for _, tr := range triggers {
		if tr.At > horizon {
			horizon = tr.At
		}
	}
	horizon += TriggerSLO
	traces, metrics, err := ex.RunReplay(
		[]platform.TenantWorkload{{Tenant: TriggerTenant, Requests: reqs, Allocator: alloc}},
		platform.ReplayConfig{Interval: ReplayInterval, Horizon: horizon, Triggers: triggers},
	)
	if err != nil {
		return nil, fmt.Errorf("experiment: trigger %s: %w", config, err)
	}
	ts := traces[TriggerTenant]
	run := &TriggerRun{
		Config:         config,
		Nodes:          MixDefaultNodes,
		NodeMillicores: ReplayNodeMillicores,
		TimerStarted:   len(reqs) / triggerTimerEvery,
		Rows:           triggerSegments(config, reqs, ts),
		Aggregate:      summarizeReplayTraces(config, "all", TriggerSLO, ts),
		Metrics:        *metrics,
		Traces:         ts,
	}
	return run, nil
}

// runTriggerOne serves one provider configuration, filling the
// trigger-run cache; concurrent callers share one run (singleflight).
func (s *Suite) runTriggerOne(config string) (*TriggerRun, error) {
	key := "trigger/" + config
	s.mu.Lock()
	run, ok := s.triggerRuns[key]
	s.mu.Unlock()
	if ok {
		return run, nil
	}
	v, err := s.flights.Do("run/"+key, func() (any, error) {
		s.mu.Lock()
		run, ok := s.triggerRuns[key]
		s.mu.Unlock()
		if ok {
			return run, nil
		}
		run, err := s.serveTrigger(config)
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		s.triggerRuns[key] = run
		s.mu.Unlock()
		return run, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*TriggerRun), nil
}

// TriggerScenario serves the dynamic stream under both provider
// configurations (fanned over the suite's worker pool) and returns the
// runs in TriggerConfigs order.
func (s *Suite) TriggerScenario() ([]*TriggerRun, error) {
	configs := TriggerConfigs()
	results := make([]*TriggerRun, len(configs))
	errs := make([]error, len(configs))
	fanIndexed(len(configs), s.parallelism(), func(i int) {
		results[i], errs[i] = s.runTriggerOne(configs[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// TriggerPoint describes one trigger scenario run for enumeration
// surfaces.
type TriggerPoint struct {
	Config      string
	Description string
}

// TriggerPoints enumerates the trigger scenario grid.
func TriggerPoints() []TriggerPoint {
	return []TriggerPoint{
		{Config: TriggerWorstCase, Description: "static worst-case planning (resolved shape withheld)"},
		{Config: TriggerShapeAware, Description: "online shape-aware planning (width-variant hint tables)"},
	}
}

// FormatTrigger renders the scenario: per-shape-segment and aggregate
// rows per configuration, then each run's provisioning cost.
func FormatTrigger(runs []*TriggerRun) string {
	var b strings.Builder
	if len(runs) > 0 {
		fmt.Fprintf(&b, "Trigger: dynamic %s stream (%d timer-started) on %d node(s) x %d millicores, SLO %dms, rate %g/s\n",
			TriggerWorkflowName, runs[0].TimerStarted, runs[0].Nodes, runs[0].NodeMillicores,
			TriggerSLO.Milliseconds(), float64(TriggerRatePerSec))
	}
	fmt.Fprintf(&b, "%-12s %-9s %5s %8s %8s %9s %12s %9s %6s %7s\n",
		"config", "shape", "req", "P50", "P99", "slo.att", "millicores", "missrate", "cold", "parked")
	for _, run := range runs {
		rows := append(append([]ReplayRow(nil), run.Rows...), run.Aggregate)
		for _, r := range rows {
			fmt.Fprintf(&b, "%-12s %-9s %5d %8d %8d %9.4f %12.1f %9.4f %6d %7d\n",
				run.Config, r.Tenant, r.Requests, r.P50.Milliseconds(), r.P99.Milliseconds(),
				r.SLOAttainment, r.MeanMillicores, r.MissRate, r.ColdStarts, r.Parked)
		}
	}
	b.WriteString("\n")
	for _, run := range runs {
		fmt.Fprintf(&b, "%-12s pod-seconds %10.1f  peak pods %3d\n",
			run.Config, run.Metrics.PodSeconds, run.Metrics.PeakPods)
	}
	return b.String()
}
