package experiment

import (
	"fmt"
	"strings"
	"time"

	"janus/internal/platform"
	"janus/internal/workflow"
)

// DAGWorkflowName names the arbitrary-DAG scenario workload: a six-node
// ML-inference pipeline whose cross edge makes it genuinely
// non-series-parallel — no stage decomposition exists, so the node-granular
// engine is the only way to serve it.
const DAGWorkflowName = "ml-dag"

// DAGSLO is the scenario's end-to-end latency objective, calibrated like
// the paper's workloads: the all-minimum allocation misses it along the
// critical path while maximum allocations meet it comfortably, so sizing
// policy differences are what the results measure.
const DAGSLO = 1300 * time.Millisecond

// DAGWorkflow returns the scenario DAG:
//
//	preprocess ─┬─> detect ──┬─────────> fuse ──> publish
//	            │            ├─> ocr ─────^
//	            └─> classify ┴────────────^
//
// Frame preprocessing fans out to an object detector and a scene
// classifier; the detector additionally feeds an OCR pass over the
// detected regions (the cross edge), and fusion joins all three before
// the result is published. detect and classify share a predecessor set —
// one decision group, exactly like an SP stage — while ocr rides the
// detector's path alone and fuse's in-degree-3 join is implicit in node
// readiness. Functions come from the standard catalog, picked for latency
// scale: the heavy vision stages up front, light aggregation behind.
func DAGWorkflow() (*workflow.Workflow, error) {
	nodes := []workflow.Node{
		{Name: "preprocess", Function: "fe"},
		{Name: "detect", Function: "icl"},
		{Name: "classify", Function: "ico"},
		{Name: "ocr", Function: "aes-encrypt"},
		{Name: "fuse", Function: "redis-read"},
		{Name: "publish", Function: "socket-comm"},
	}
	edges := [][2]string{
		{"preprocess", "detect"},
		{"preprocess", "classify"},
		{"detect", "ocr"},
		{"detect", "fuse"},
		{"classify", "fuse"},
		{"ocr", "fuse"},
		{"fuse", "publish"},
	}
	return workflow.New(DAGWorkflowName, DAGSLO, nodes, edges)
}

// DAGSystems lists the scenario's systems in display order. ORION sits
// out for the same reason as the series-parallel scenario: its
// distribution model needs raw per-allocation latency samples, which the
// max-over-members composite profiles do not retain.
func DAGSystems() []string {
	return []string{SysOptimal, SysJanus, SysJanusPlus, SysJanusMinus, SysGrandSLAMP, SysGrandSLAM}
}

// DAGPoints enumerates the scenario grid as runner points.
func DAGPoints() ([]Point, error) {
	w, err := DAGWorkflow()
	if err != nil {
		return nil, err
	}
	var out []Point
	for _, sys := range DAGSystems() {
		out = append(out, Point{Workflow: w, Batch: 1, System: sys})
	}
	return out, nil
}

// DAGRow is one system's summary in the arbitrary-DAG scenario. The JSON
// field names follow the janusbench -json schema (snake_case, durations
// as nanosecond integers — see experiment.ReplayRow).
type DAGRow struct {
	System         string        `json:"system"`
	P50            time.Duration `json:"p50_ns"`
	P99            time.Duration `json:"p99_ns"`
	ViolationRate  float64       `json:"violation_rate"`
	MeanMillicores float64       `json:"mean_millicores"`
	MissRate       float64       `json:"miss_rate"`
	// Decisions is the mean allocation decisions per request: one per
	// decision group (5 here — detect and classify share one), not one
	// per stage, which no stage-indexed engine could produce for this
	// workflow.
	Decisions float64 `json:"decisions"`
	// ColdStarts and Parked total the substrate events across the run.
	ColdStarts int `json:"cold_starts"`
	Parked     int `json:"parked"`
}

// DAGScenario serves the six-node ML-inference DAG under every scenario
// system on the shared cluster substrate: per-node readiness scheduling,
// a shared decision for the detect/classify fork, the ocr cross path, and
// the in-degree-3 join at fuse all run on the same engine (and warm
// pools, and capacity queue) as the chain and SP experiments.
func (s *Suite) DAGScenario() ([]DAGRow, error) {
	w, err := DAGWorkflow()
	if err != nil {
		return nil, err
	}
	runs, err := s.RunPoint(w, 1, DAGSystems())
	if err != nil {
		return nil, err
	}
	var out []DAGRow
	for _, sys := range DAGSystems() {
		r := runs[sys]
		e2e := platform.E2ESample(r.Traces)
		row := DAGRow{
			System:         sys,
			P50:            e2e.PercentileDuration(50),
			P99:            e2e.PercentileDuration(99),
			ViolationRate:  r.ViolationRate,
			MeanMillicores: r.MeanMillicores,
			MissRate:       r.MissRate,
		}
		decisions := 0
		for i := range r.Traces {
			decisions += r.Traces[i].Decisions
			row.Parked += r.Traces[i].Parked
			for _, st := range r.Traces[i].Stages {
				if st.Cold {
					row.ColdStarts++
				}
			}
		}
		if len(r.Traces) > 0 {
			row.Decisions = float64(decisions) / float64(len(r.Traces))
		}
		out = append(out, row)
	}
	return out, nil
}

// FormatDAGScenario renders the scenario rows.
func FormatDAGScenario(rows []DAGRow) string {
	var b strings.Builder
	b.WriteString("DAG scenario: 6-node ML-inference DAG (preprocess -> {detect, classify}; detect -> ocr; join at fuse -> publish)\n")
	fmt.Fprintf(&b, "%-11s %8s %8s %10s %12s %9s %5s %6s %7s\n",
		"system", "P50", "P99", "viol.rate", "millicores", "missrate", "dec", "cold", "parked")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %8d %8d %10.4f %12.1f %9.4f %5.1f %6d %7d\n",
			r.System, r.P50.Milliseconds(), r.P99.Milliseconds(), r.ViolationRate,
			r.MeanMillicores, r.MissRate, r.Decisions, r.ColdStarts, r.Parked)
	}
	return b.String()
}
