package experiment

import (
	"fmt"
	"strings"
	"time"

	"janus/internal/platform"
	"janus/internal/synth"
	"janus/internal/workflow"
)

// Panel identifies one workload point of the evaluation (Fig 4/5).
type Panel struct {
	Workflow string
	Batch    int
	SLO      time.Duration
}

// panels returns the paper's four evaluation panels: IA and VA at
// concurrency 1 with their default SLOs, and IA at concurrency 2 and 3
// with SLOs relaxed to 4 s and 5 s to keep early binding feasible (§V-B).
func panels() []Panel {
	return []Panel{
		{Workflow: "ia", Batch: 1, SLO: 3 * time.Second},
		{Workflow: "va", Batch: 1, SLO: 1500 * time.Millisecond},
		{Workflow: "ia", Batch: 2, SLO: 4 * time.Second},
		{Workflow: "ia", Batch: 3, SLO: 5 * time.Second},
	}
}

// prewarmEvaluation fills the run cache for the full §V serving grid
// concurrently; the per-panel summarize loops then hit only cached runs.
// Safe to call repeatedly — cached points cost a map lookup.
func (s *Suite) prewarmEvaluation() error {
	points, err := EvaluationPoints()
	if err != nil {
		return err
	}
	_, err = s.RunPoints(points)
	return err
}

func panelWorkflow(p Panel) (*workflow.Workflow, error) {
	var w *workflow.Workflow
	switch p.Workflow {
	case "ia":
		w = workflow.IntelligentAssistant()
	case "va":
		w = workflow.VideoAnalyze()
	default:
		return nil, fmt.Errorf("experiment: unknown workflow %q", p.Workflow)
	}
	return w.WithSLO(p.SLO)
}

// Fig4Dist is one system's end-to-end latency distribution in a panel.
type Fig4Dist struct {
	System        string
	P50           time.Duration
	P90           time.Duration
	P99           time.Duration
	P999          time.Duration
	Max           time.Duration
	ViolationRate float64
}

// Fig4Panel is one workload point's latency distribution comparison.
type Fig4Panel struct {
	Panel   Panel
	Systems []Fig4Dist
}

// Fig4 reproduces the end-to-end latency distributions of all systems over
// the four panels, against the SLO lines. All (panel, system) points fan
// out over the suite's worker pool before the panels are summarized.
func (s *Suite) Fig4() ([]Fig4Panel, error) {
	if err := s.prewarmEvaluation(); err != nil {
		return nil, err
	}
	var out []Fig4Panel
	for _, p := range panels() {
		w, err := panelWorkflow(p)
		if err != nil {
			return nil, err
		}
		runs, err := s.RunPoint(w, p.Batch, AllSystems())
		if err != nil {
			return nil, err
		}
		fp := Fig4Panel{Panel: p}
		for _, sys := range AllSystems() {
			r := runs[sys]
			e2e := platform.E2ESample(r.Traces)
			fp.Systems = append(fp.Systems, Fig4Dist{
				System:        sys,
				P50:           e2e.PercentileDuration(50),
				P90:           e2e.PercentileDuration(90),
				P99:           e2e.PercentileDuration(99),
				P999:          e2e.PercentileDuration(99.9),
				Max:           time.Duration(e2e.Max() * float64(time.Millisecond)),
				ViolationRate: r.ViolationRate,
			})
		}
		out = append(out, fp)
	}
	return out, nil
}

// FormatFig4 renders the panels.
func FormatFig4(panels []Fig4Panel) string {
	var b strings.Builder
	b.WriteString("Fig 4: end-to-end latency distribution (tail percentiles vs SLO)\n")
	for _, p := range panels {
		fmt.Fprintf(&b, "\n%s conc=%d SLO=%v\n", strings.ToUpper(p.Panel.Workflow), p.Panel.Batch, p.Panel.SLO)
		fmt.Fprintf(&b, "%-11s %8s %8s %8s %8s %8s %10s\n", "system", "P50", "P90", "P99", "P99.9", "max", "viol.rate")
		for _, d := range p.Systems {
			fmt.Fprintf(&b, "%-11s %8d %8d %8d %8d %8d %10.4f\n",
				d.System, d.P50.Milliseconds(), d.P90.Milliseconds(), d.P99.Milliseconds(),
				d.P999.Milliseconds(), d.Max.Milliseconds(), d.ViolationRate)
		}
	}
	return b.String()
}

// Fig5Row is one system's resource consumption in a panel.
type Fig5Row struct {
	System     string
	Millicores float64
	// Normalized is consumption divided by Optimal's (Fig 5b's y axis).
	Normalized float64
}

// Fig5Panel is one workload point's consumption comparison.
type Fig5Panel struct {
	Panel   Panel
	Systems []Fig5Row
}

// Fig5 reproduces resource consumption across the four panels: Fig 5a is
// the concurrency-1 panels in absolute millicores, Fig 5b the higher
// concurrency panels normalized by Optimal. All (panel, system) points fan
// out over the suite's worker pool before the panels are summarized.
func (s *Suite) Fig5() ([]Fig5Panel, error) {
	if err := s.prewarmEvaluation(); err != nil {
		return nil, err
	}
	var out []Fig5Panel
	for _, p := range panels() {
		w, err := panelWorkflow(p)
		if err != nil {
			return nil, err
		}
		runs, err := s.RunPoint(w, p.Batch, AllSystems())
		if err != nil {
			return nil, err
		}
		opt := runs[SysOptimal].MeanMillicores
		fp := Fig5Panel{Panel: p}
		for _, sys := range AllSystems() {
			fp.Systems = append(fp.Systems, Fig5Row{
				System:     sys,
				Millicores: runs[sys].MeanMillicores,
				Normalized: runs[sys].MeanMillicores / opt,
			})
		}
		out = append(out, fp)
	}
	return out, nil
}

// FormatFig5 renders the panels.
func FormatFig5(panels []Fig5Panel) string {
	var b strings.Builder
	b.WriteString("Fig 5: resource consumption (CPU millicores per request; normalized by Optimal)\n")
	for _, p := range panels {
		fmt.Fprintf(&b, "\n%s conc=%d SLO=%v\n", strings.ToUpper(p.Panel.Workflow), p.Panel.Batch, p.Panel.SLO)
		fmt.Fprintf(&b, "%-11s %12s %12s\n", "system", "millicores", "normalized")
		for _, r := range p.Systems {
			fmt.Fprintf(&b, "%-11s %12.1f %12.3f\n", r.System, r.Millicores, r.Normalized)
		}
	}
	return b.String()
}

// Fig6Row is one SLO point of the moderate-percentile-exploration study.
type Fig6Row struct {
	SLO time.Duration
	// JanusMillicores / JanusPlusMillicores are served consumptions
	// (Fig 6a's "workflow sizes").
	JanusMillicores     float64
	JanusPlusMillicores float64
	// JanusSynth / JanusPlusSynth are hint-synthesis wall times (Fig 6b).
	JanusSynth     time.Duration
	JanusPlusSynth time.Duration
}

// Fig6 compares Janus and Janus+ over IA with SLOs 3-7 s: resource
// consumption (6a) and hint-synthesis time cost (6b). Synthesis sweeps the
// budget range up to each SLO, which is why cost grows mildly with the SLO
// while Janus+'s two-dimensional percentile exploration costs orders of
// magnitude more. The result is cached: at paper scale the Janus+ sweeps
// are by far the suite's most expensive computation, and both Fig 6a and
// Fig 6b consume it.
func (s *Suite) Fig6() ([]Fig6Row, error) {
	s.mu.Lock()
	cached := s.fig6
	s.mu.Unlock()
	if cached != nil {
		return cached, nil
	}
	var out []Fig6Row
	base := workflow.IntelligentAssistant()
	set, err := s.Profiles(base, 1)
	if err != nil {
		return nil, err
	}
	// Fan the serving points of the whole sweep out first; the loop below
	// consumes them by position while timing synthesis sequentially (wall
	// times are the figure's subject and must not contend with serving).
	var slos []time.Duration
	for slo := 3 * time.Second; slo <= 7*time.Second; slo += time.Second {
		slos = append(slos, slo)
	}
	var points []Point
	for _, slo := range slos {
		w, err := base.WithSLO(slo)
		if err != nil {
			return nil, err
		}
		for _, sys := range []string{SysJanus, SysJanusPlus} {
			points = append(points, Point{Workflow: w, Batch: 1, System: sys})
		}
	}
	runs, err := s.RunPoints(points)
	if err != nil {
		return nil, err
	}
	for i, slo := range slos {
		row := Fig6Row{
			SLO:                 slo,
			JanusMillicores:     runs[2*i].MeanMillicores,
			JanusPlusMillicores: runs[2*i+1].MeanMillicores,
		}
		// Synthesis cost at this SLO: sweep [Tmin, SLO].
		tmin, _ := set.BudgetRangeMs(0)
		for _, mode := range []synth.Mode{synth.ModeJanus, synth.ModeJanusPlus} {
			sy, err := synth.New(synth.Config{
				Profiles:         set,
				Mode:             mode,
				BudgetStepMs:     s.cfg.BudgetStepMs,
				BudgetOverrideMs: [2]int{tmin, int(slo / time.Millisecond)},
			})
			if err != nil {
				return nil, err
			}
			res, err := sy.GenerateBundle()
			if err != nil {
				return nil, err
			}
			if mode == synth.ModeJanus {
				row.JanusSynth = res.Elapsed
			} else {
				row.JanusPlusSynth = res.Elapsed
			}
		}
		out = append(out, row)
	}
	s.mu.Lock()
	s.fig6 = out
	s.mu.Unlock()
	return out, nil
}

// FormatFig6 renders the rows.
func FormatFig6(rows []Fig6Row) string {
	var b strings.Builder
	b.WriteString("Fig 6: moderate percentile exploration — Janus vs Janus+ (IA)\n")
	fmt.Fprintf(&b, "%8s %14s %14s %14s %14s %8s\n", "SLO", "janus mc", "janus+ mc", "janus synth", "janus+ synth", "ratio")
	for _, r := range rows {
		ratio := float64(r.JanusPlusSynth) / float64(r.JanusSynth)
		fmt.Fprintf(&b, "%8v %14.1f %14.1f %14v %14v %7.1fx\n",
			r.SLO, r.JanusMillicores, r.JanusPlusMillicores,
			r.JanusSynth.Round(time.Millisecond), r.JanusPlusSynth.Round(time.Millisecond), ratio)
	}
	return b.String()
}

// Fig7 reports the timeout and resilience metrics of the TS function.
type Fig7 struct {
	Levels []int
	// TimeoutMs[p] is D(p, k) over Levels for percentiles 25/50/75.
	TimeoutMs map[int][]int
	// ResilienceMs[c] is R(99, k) over Levels for concurrency 1/2/3.
	ResilienceMs map[int][]int
}

// Fig7 reproduces the §V-D study on TS: timeout shrinking with percentile
// and allocation (7a), resilience shrinking with allocation and growing
// with concurrency (7b).
func (s *Suite) Fig7() (*Fig7, error) {
	w := workflow.IntelligentAssistant()
	out := &Fig7{TimeoutMs: make(map[int][]int), ResilienceMs: make(map[int][]int)}
	set1, err := s.Profiles(w, 1)
	if err != nil {
		return nil, err
	}
	ts := set1.At(2)
	out.Levels = ts.Grid.Levels()
	for _, p := range []int{25, 50, 75} {
		row := make([]int, 0, len(out.Levels))
		for _, k := range out.Levels {
			row = append(row, ts.TimeoutMs(p, k))
		}
		out.TimeoutMs[p] = row
	}
	for _, c := range []int{1, 2, 3} {
		set, err := s.Profiles(w, c)
		if err != nil {
			return nil, err
		}
		tsC := set.At(2)
		row := make([]int, 0, len(out.Levels))
		for _, k := range out.Levels {
			row = append(row, tsC.ResilienceMs(99, k))
		}
		out.ResilienceMs[c] = row
	}
	return out, nil
}

// String renders both sub-figures.
func (f *Fig7) String() string {
	var b strings.Builder
	b.WriteString("Fig 7a: timeout D(p, k) of TS (ms)\n")
	fmt.Fprintf(&b, "%6s %8s %8s %8s\n", "mc", "p=25", "p=50", "p=75")
	for i, k := range f.Levels {
		fmt.Fprintf(&b, "%6d %8d %8d %8d\n", k, f.TimeoutMs[25][i], f.TimeoutMs[50][i], f.TimeoutMs[75][i])
	}
	b.WriteString("\nFig 7b: resilience R(99, k) of TS (ms)\n")
	fmt.Fprintf(&b, "%6s %8s %8s %8s\n", "mc", "conc=1", "conc=2", "conc=3")
	for i, k := range f.Levels {
		fmt.Fprintf(&b, "%6d %8d %8d %8d\n", k, f.ResilienceMs[1][i], f.ResilienceMs[2][i], f.ResilienceMs[3][i])
	}
	return b.String()
}

// Fig9Row is one SLO point of the SLO sweep.
type Fig9Row struct {
	Workflow string
	SLO      time.Duration
	// Normalized consumption (by Optimal) per system.
	ORION     float64
	GrandSLAM float64
	Janus     float64
}

// Fig9 sweeps SLOs (IA 3-7 s, VA 1.5-2.0 s) and reports consumption
// normalized by Optimal for ORION, GrandSLAM, and Janus.
func (s *Suite) Fig9() ([]Fig9Row, error) {
	systems := []string{SysOptimal, SysORION, SysGrandSLAM, SysJanus}
	// One enumeration builds the point grid for both sweeps; the fanned-out
	// results come back in input order and are consumed by position, so the
	// grid and the rows cannot drift apart.
	type sweep struct {
		base *workflow.Workflow
		slos []time.Duration
	}
	var iaSLOs, vaSLOs []time.Duration
	for slo := 3 * time.Second; slo <= 7*time.Second; slo += time.Second {
		iaSLOs = append(iaSLOs, slo)
	}
	for slo := 1500 * time.Millisecond; slo <= 2000*time.Millisecond; slo += 100 * time.Millisecond {
		vaSLOs = append(vaSLOs, slo)
	}
	sweeps := []sweep{
		{workflow.IntelligentAssistant(), iaSLOs},
		{workflow.VideoAnalyze(), vaSLOs},
	}
	var points []Point
	for _, sw := range sweeps {
		for _, slo := range sw.slos {
			w, err := sw.base.WithSLO(slo)
			if err != nil {
				return nil, err
			}
			for _, sys := range systems {
				points = append(points, Point{Workflow: w, Batch: 1, System: sys})
			}
		}
	}
	runs, err := s.RunPoints(points)
	if err != nil {
		return nil, err
	}
	var out []Fig9Row
	next := 0
	for _, sw := range sweeps {
		for _, slo := range sw.slos {
			bySys := make(map[string]*SystemRun, len(systems))
			for _, sys := range systems {
				bySys[sys] = runs[next]
				next++
			}
			opt := bySys[SysOptimal].MeanMillicores
			out = append(out, Fig9Row{
				Workflow:  sw.base.Name(),
				SLO:       slo,
				ORION:     bySys[SysORION].MeanMillicores / opt,
				GrandSLAM: bySys[SysGrandSLAM].MeanMillicores / opt,
				Janus:     bySys[SysJanus].MeanMillicores / opt,
			})
		}
	}
	return out, nil
}

// FormatFig9 renders the sweep.
func FormatFig9(rows []Fig9Row) string {
	var b strings.Builder
	b.WriteString("Fig 9: normalized CPU (by Optimal) vs SLO\n")
	fmt.Fprintf(&b, "%4s %8s %8s %10s %8s\n", "wf", "SLO", "orion", "grandslam", "janus")
	for _, r := range rows {
		fmt.Fprintf(&b, "%4s %8v %8.3f %10.3f %8.3f\n", r.Workflow, r.SLO, r.ORION, r.GrandSLAM, r.Janus)
	}
	return b.String()
}
