package experiment

import (
	"strings"
	"testing"
	"time"

	"janus/internal/platform"
)

func TestTriggerWorkflowShape(t *testing.T) {
	w, err := TriggerWorkflow()
	if err != nil {
		t.Fatal(err)
	}
	if !w.IsDynamic() {
		t.Fatal("trigger workflow is not dynamic")
	}
	if got := len(w.DecisionGroups()); got != 6 {
		t.Fatalf("trigger workflow has %d decision groups, want 6", got)
	}
	d, ok := w.Dynamic("ocr")
	if !ok || d.Map == nil || d.Map.MaxWidth != 6 {
		t.Fatalf("ocr dynamic spec = %+v", d)
	}
	if g, ok := w.Dynamic("gate"); !ok || !g.Await {
		t.Fatal("gate is not awaited")
	}
}

func TestTriggerSchedule(t *testing.T) {
	w, err := TriggerWorkflow()
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]*platform.Request, 16)
	for i := range reqs {
		reqs[i] = &platform.Request{ID: i, Workflow: w, Arrival: time.Duration(i) * time.Second}
	}
	trs := TriggerSchedule(reqs)
	// One gate resume per request plus one start trigger per
	// timer-started request.
	if want := len(reqs) + len(reqs)/triggerTimerEvery; len(trs) != want {
		t.Fatalf("schedule has %d triggers, want %d", len(trs), want)
	}
	starts := 0
	for _, tr := range trs {
		if tr.Tenant != TriggerTenant {
			t.Fatalf("trigger addressed to %q", tr.Tenant)
		}
		r := reqs[tr.Request]
		start := r.Arrival
		if tr.Request%triggerTimerEvery == triggerTimerEvery-1 {
			start += TriggerTimerDelay
		}
		switch tr.Step {
		case "":
			starts++
			if tr.At != start {
				t.Fatalf("request %d starts at %v, want %v", tr.Request, tr.At, start)
			}
		case "gate":
			// Gate timers chain off the effective admission instant, so
			// timer-started requests keep the full gate delay.
			if tr.At != start+TriggerGateDelay {
				t.Fatalf("request %d gate fires at %v, want %v", tr.Request, tr.At, start+TriggerGateDelay)
			}
		default:
			t.Fatalf("trigger resumes unexpected step %q", tr.Step)
		}
	}
	if starts != len(reqs)/triggerTimerEvery {
		t.Fatalf("%d start triggers, want %d", starts, len(reqs)/triggerTimerEvery)
	}
}

// TestTriggerScenario is the scenario's headline claim: with the identical
// shape-variant bundle, identical request stream, and identical trigger
// queue, showing the allocator the already-resolved shape beats static
// worst-case planning on SLO attainment at equal or lower provisioning
// cost.
func TestTriggerScenario(t *testing.T) {
	s := QuickSuite()
	runs, err := s.TriggerScenario()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 || runs[0].Config != TriggerWorstCase || runs[1].Config != TriggerShapeAware {
		t.Fatalf("runs = %v", runs)
	}
	worst, aware := runs[0], runs[1]
	for _, run := range runs {
		if run.Aggregate.Requests != s.cfg.Requests {
			t.Fatalf("%s served %d requests, want %d", run.Config, run.Aggregate.Requests, s.cfg.Requests)
		}
		if run.TimerStarted != s.cfg.Requests/triggerTimerEvery {
			t.Fatalf("%s reports %d timer-started requests", run.Config, run.TimerStarted)
		}
		segs := 0
		for _, row := range run.Rows {
			segs += row.Requests
		}
		if segs != run.Aggregate.Requests {
			t.Fatalf("%s shape segments sum to %d of %d requests", run.Config, segs, run.Aggregate.Requests)
		}
	}
	if aware.Aggregate.SLOAttainment <= worst.Aggregate.SLOAttainment {
		t.Errorf("shape-aware attainment %.4f does not beat worst-case %.4f",
			aware.Aggregate.SLOAttainment, worst.Aggregate.SLOAttainment)
	}
	if aware.Metrics.PodSeconds > worst.Metrics.PodSeconds {
		t.Errorf("shape-aware pod-seconds %.1f exceed worst-case %.1f",
			aware.Metrics.PodSeconds, worst.Metrics.PodSeconds)
	}
	if aware.Aggregate.MeanMillicores > worst.Aggregate.MeanMillicores {
		t.Errorf("shape-aware mean millicores %.1f exceed worst-case %.1f",
			aware.Aggregate.MeanMillicores, worst.Aggregate.MeanMillicores)
	}
	out := FormatTrigger(runs)
	for _, want := range []string{"Trigger:", TriggerWorstCase, TriggerShapeAware, "heavy w=", "pod-seconds"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatTrigger output missing %q:\n%s", want, out)
		}
	}
}

// TestTriggerDeterministicAcrossParallelism pins the dynamic scenario's
// determinism: conditional branches, data-dependent map widths, retries,
// and externally triggered resumptions replay byte for byte regardless of
// how many suite workers race on the shared caches.
func TestTriggerDeterministicAcrossParallelism(t *testing.T) {
	render := func(par int) string {
		s := QuickSuite()
		s.SetParallelism(par)
		runs, err := s.TriggerScenario()
		if err != nil {
			t.Fatal(err)
		}
		return FormatTrigger(runs)
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("trigger scenario diverges across parallelism:\n--- parallelism 1 ---\n%s\n--- parallelism 8 ---\n%s", seq, par)
	}
}

// TestTriggerPointsMatchConfigs keeps the enumeration surface in sync
// with the runnable grid.
func TestTriggerPointsMatchConfigs(t *testing.T) {
	pts := TriggerPoints()
	cfgs := TriggerConfigs()
	if len(pts) != len(cfgs) {
		t.Fatalf("%d points, %d configs", len(pts), len(cfgs))
	}
	for i, p := range pts {
		if p.Config != cfgs[i] {
			t.Errorf("point %d is %q, config %q", i, p.Config, cfgs[i])
		}
		if p.Description == "" {
			t.Errorf("point %q has no description", p.Config)
		}
	}
}
