package experiment

import (
	"os"
	"strconv"
	"testing"
)

// TestFleetProfileScale is a profiling harness, not a regression test: it
// runs the fleet grid at JANUS_FLEET_REQS scale so `-cpuprofile` can see
// the paper-scale hot path without paying the full paper runtime. Skipped
// unless the env var is set.
func TestFleetProfileScale(t *testing.T) {
	reqs := os.Getenv("JANUS_FLEET_REQS")
	if reqs == "" {
		t.Skip("set JANUS_FLEET_REQS to run")
	}
	n, err := strconv.Atoi(reqs)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSuiteWith(Config{Seed: 1, ProfilerSamples: 600, BudgetStepMs: 20,
		Requests: n, ArrivalRatePerSec: 2})
	runs, err := s.FleetScenario()
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range runs {
		t.Logf("%s: %d tenant rows", run.Config, len(run.Rows))
	}
}
