package experiment

import (
	"time"

	"janus/internal/replay"
)

// The fleet-scale replay scenario: the same non-stationary serving
// machinery as the replay scenario (schedule-driven admission, elastic
// warm pools, the online bilateral loop), pushed to the scale the
// AARC-style fleet sweeps in PAPERS.md imply — hundreds of nodes and
// hundreds of thousands of requests in one discrete-event run. The grid exists to
// prove the serving plane's hot path at fleet dimensions: placement
// decisions over FleetNodes nodes, a co-location census over thousands of
// pods, and capacity parking queues thousands deep during the burst. It
// is the workload the indexed cluster state (internal/cluster) is sized
// against, and the one BENCH_*.json trajectory files track.

const (
	// FleetNodes is the fleet cluster's node count — two hundred of the
	// tenant-mix scenario's half-size nodes.
	FleetNodes = 200
	// FleetNodeMillicores matches the replay scenario's node size, so the
	// fleet is exactly a 100x wider replay substrate.
	FleetNodeMillicores = ReplayNodeMillicores
)

// FleetSchedule builds the fleet grid's non-stationary schedule: the
// replay scenario's shape (warm-up, ramp, flash-crowd burst with a tenant
// drift, two diurnal cycles, cool-down) at fleet rates. Durations are
// fixed — the schedule describes ~3.5 minutes of wall traffic — and rates
// scale with the suite's request budget: the paper-scale suite admits
// ~230k requests, a quick suite ~46k, both over the identical shape.
func (s *Suite) FleetSchedule() (*replay.Schedule, error) {
	// Rate scale: cfg.Requests of 1000 (paper) is the unit. The floor
	// keeps tiny test suites admitting enough traffic per phase for every
	// tenant to appear in the stream.
	f := float64(s.cfg.Requests) / 1000
	if f < 0.02 {
		f = 0.02
	}
	r := func(x float64) float64 { return x * f }
	mix := replay.ZipfMix("ia", "va", "dag")
	// The burst drifts the mix toward the heavy tail exactly as the
	// replay scenario's flash crowd does.
	burstMix := []replay.TenantShare{{Tenant: "ia", Weight: 1}, {Tenant: "va", Weight: 1.5}, {Tenant: "dag", Weight: 1.5}}
	burst := replay.Burst(12*time.Second, r(1200), r(3000))
	burst.Mix = burstMix
	return replay.NewSchedule(s.cfg.Seed, mix,
		replay.Plateau(30*time.Second, r(600)),
		replay.Ramp(30*time.Second, r(600), r(1500)),
		burst,
		replay.Diurnal(120*time.Second, r(500), r(2000), 60*time.Second),
		replay.Plateau(20*time.Second, r(600)),
	)
}

func fleetSpec() scheduleSpec {
	return scheduleSpec{
		scenario:       "fleet",
		nodes:          FleetNodes,
		nodeMillicores: FleetNodeMillicores,
		schedule:       (*Suite).FleetSchedule,
	}
}

// FleetScenario serves the fleet-scale schedule under every provider
// configuration (ReplayConfigs order, fanned over the suite's worker
// pool). Every configuration faces the identical ~hundreds-of-thousands
// request stream on the same 200-node cluster; results are deterministic
// at any parallelism.
func (s *Suite) FleetScenario() ([]*ReplayRun, error) {
	return s.scheduleScenario(fleetSpec())
}

// FleetPoints enumerates the fleet scenario grid for -list-style surfaces.
func FleetPoints() []ReplayPoint {
	pts := ReplayPoints()
	for i := range pts {
		pts[i].Description = pts[i].Description + " at fleet scale"
	}
	return pts
}
