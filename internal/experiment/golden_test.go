package experiment

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"janus/internal/platform"
	"janus/internal/synth"
	"janus/internal/workflow"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current engine output")

// traceDigest renders a trace — including every executed branch — into a
// stable text form. Only fields that predate the node-granular engine are
// printed, so the digest is comparable across the stage-indexed and
// node-granular implementations.
func traceDigest(tr *platform.Trace) string {
	var b strings.Builder
	fmt.Fprintf(&b, "req=%d sys=%s arr=%d done=%d e2e=%d slo=%d mc=%d dec=%d miss=%d park=%d\n",
		tr.RequestID, tr.System, tr.Arrival, tr.Done, tr.E2E, tr.SLO,
		tr.TotalMillicores, tr.Decisions, tr.Misses, tr.Parked)
	for _, st := range tr.Stages {
		fmt.Fprintf(&b, "  fn=%s stage=%d branch=%d node=%d mc=%d start=%d end=%d startup=%d lat=%d cold=%v hit=%v\n",
			st.Function, st.Stage, st.Branch, st.Node, st.Millicores,
			st.Start, st.End, st.Startup, st.Latency, st.Cold, st.Hit)
	}
	return b.String()
}

func runHash(traces []platform.Trace) string {
	h := sha256.New()
	for i := range traces {
		fmt.Fprint(h, traceDigest(&traces[i]))
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestChainSPGolden locks the serving and synthesis pipeline byte for byte
// against golden files captured before the node-granular DAG refactor: the
// chain workloads (IA, VA) under every system, the series-parallel Video
// Analyze scenario, the multi-tenant mix, and the Janus bundles behind
// them. Any drift in draws, decisions, event ordering, or synthesized
// tables changes a hash. Regenerate with `go test ./internal/experiment
// -run Golden -update` — but only when a behavior change is intended.
func TestChainSPGolden(t *testing.T) {
	s := quickSuite(t)
	var b strings.Builder

	type grid struct {
		w       *workflow.Workflow
		systems []string
	}
	spw, err := SPWorkflow()
	if err != nil {
		t.Fatal(err)
	}
	grids := []grid{
		{workflow.IntelligentAssistant(), AllSystems()},
		{workflow.VideoAnalyze(), AllSystems()},
		{spw, SPSystems()},
	}
	for _, g := range grids {
		runs, err := s.RunPoint(g.w, 1, g.systems)
		if err != nil {
			t.Fatal(err)
		}
		for _, sys := range g.systems {
			r := runs[sys]
			fmt.Fprintf(&b, "run %s/%v/b1 %s p50=%d p99=%d viol=%.4f mc=%.1f miss=%.4f sha=%s\n",
				g.w.Name(), g.w.SLO(), sys, r.P50E2E.Milliseconds(), r.P99E2E.Milliseconds(),
				r.ViolationRate, r.MeanMillicores, r.MissRate, runHash(r.Traces))
		}
	}

	// Synthesized Janus bundles: condensed tables per sub-workflow.
	for _, g := range grids {
		d, err := s.Deployment(g.w, 1, synth.ModeJanus, 1)
		if err != nil {
			t.Fatal(err)
		}
		bundle := d.Bundle()
		fmt.Fprintf(&b, "bundle %s slo=%dms tables=%d ranges=%d\n",
			bundle.Workflow, bundle.SLOMs, bundle.Stages(), bundle.TotalRanges())
		for _, tab := range bundle.Tables {
			fmt.Fprintf(&b, "  table suffix=%d size=%d", tab.Suffix, tab.Size())
			for _, r := range tab.Ranges {
				fmt.Fprintf(&b, " [%d,%d]=%d@p%d", r.StartMs, r.EndMs, r.Millicores, r.Percentile)
			}
			fmt.Fprintln(&b)
		}
	}

	// Formatted scenario output (what janusbench prints).
	spRows, err := s.SPScenario()
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(FormatSPScenario(spRows))
	sweep, err := s.SPArrivalSweep()
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(FormatSPArrivalSweep(sweep))
	mix, err := s.MixScenario()
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(FormatMixScenario(mix))

	got := b.String()
	path := filepath.Join("testdata", "golden_chain_sp.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update to create): %v", err)
	}
	if got != string(want) {
		gotLines := strings.Split(got, "\n")
		wantLines := strings.Split(string(want), "\n")
		for i := range gotLines {
			if i >= len(wantLines) || gotLines[i] != wantLines[i] {
				wantLine := "<eof>"
				if i < len(wantLines) {
					wantLine = wantLines[i]
				}
				t.Fatalf("chain/SP behavior drifted from the pre-refactor golden at line %d:\n got: %s\nwant: %s", i+1, gotLines[i], wantLine)
			}
		}
		t.Fatalf("chain/SP behavior drifted from the pre-refactor golden (got %d bytes, want %d)", len(got), len(want))
	}
}
