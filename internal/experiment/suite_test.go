package experiment

import (
	"sync"
	"testing"

	"janus/internal/workflow"
)

// The quick suite is shared across the package's tests: profiles and
// deployments dominate setup cost.
var (
	quickOnce sync.Once
	quick     *Suite
)

func quickSuite(t *testing.T) *Suite {
	t.Helper()
	quickOnce.Do(func() { quick = QuickSuite() })
	return quick
}

func TestRunPointProducesAllSystems(t *testing.T) {
	s := quickSuite(t)
	runs, err := s.RunPoint(workflow.IntelligentAssistant(), 1, AllSystems())
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 7 {
		t.Fatalf("%d systems", len(runs))
	}
	for name, run := range runs {
		if len(run.Traces) != s.cfg.Requests {
			t.Errorf("%s: %d traces", name, len(run.Traces))
		}
		if run.MeanMillicores < 3000 || run.MeanMillicores > 9000 {
			t.Errorf("%s: mean millicores %.0f outside [3000, 9000]", name, run.MeanMillicores)
		}
	}
}

// TestSystemOrderingMatchesPaper locks the paper's headline result (Table
// I, Fig 5a): Optimal <= Janus+ ~ Janus < Janus- < ORION < GrandSLAM+ <=
// GrandSLAM on resource consumption, with all systems meeting the SLO at
// P99-ish rates.
func TestSystemOrderingMatchesPaper(t *testing.T) {
	s := quickSuite(t)
	for _, wf := range []*workflow.Workflow{workflow.IntelligentAssistant(), workflow.VideoAnalyze()} {
		runs, err := s.RunPoint(wf, 1, AllSystems())
		if err != nil {
			t.Fatal(err)
		}
		mc := func(sys string) float64 { return runs[sys].MeanMillicores }
		if mc(SysOptimal) > mc(SysJanus) {
			t.Errorf("%s: optimal (%.0f) above janus (%.0f)", wf.Name(), mc(SysOptimal), mc(SysJanus))
		}
		if mc(SysJanus) >= mc(SysJanusMinus) {
			t.Errorf("%s: janus (%.0f) not below janus- (%.0f)", wf.Name(), mc(SysJanus), mc(SysJanusMinus))
		}
		if mc(SysJanusMinus) >= mc(SysORION) {
			t.Errorf("%s: janus- (%.0f) not below orion (%.0f)", wf.Name(), mc(SysJanusMinus), mc(SysORION))
		}
		if mc(SysORION) >= mc(SysGrandSLAMP) {
			t.Errorf("%s: orion (%.0f) not below grandslam+ (%.0f)", wf.Name(), mc(SysORION), mc(SysGrandSLAMP))
		}
		if mc(SysGrandSLAMP) > mc(SysGrandSLAM) {
			t.Errorf("%s: grandslam+ (%.0f) above grandslam (%.0f)", wf.Name(), mc(SysGrandSLAMP), mc(SysGrandSLAM))
		}
		// Janus+ tracks Janus (the paper reports within ~0.6%; our latency
		// models make the second-stage exploration somewhat more valuable,
		// so allow a wider band on the cheap side).
		if diff := mc(SysJanusPlus)/mc(SysJanus) - 1; diff > 0.03 || diff < -0.16 {
			t.Errorf("%s: janus+ deviates %.1f%% from janus", wf.Name(), diff*100)
		}
		// SLO compliance: the objective is P99, so tolerate ~2% violations
		// in the quick suite's small sample.
		for sys, run := range runs {
			if run.ViolationRate > 0.02 {
				t.Errorf("%s/%s: violation rate %.3f", wf.Name(), sys, run.ViolationRate)
			}
		}
		// Janus's hints tables must not be missing all the time.
		if runs[SysJanus].MissRate > 0.05 {
			t.Errorf("%s: janus miss rate %.3f", wf.Name(), runs[SysJanus].MissRate)
		}
	}
}
