package experiment

import (
	"fmt"
	"strings"
	"time"

	"janus/internal/azure"
	"janus/internal/baseline"
	"janus/internal/interfere"
	"janus/internal/rng"
	"janus/internal/stats"
	"janus/internal/synth"
	"janus/internal/workflow"
)

// Fig1a is the slack CDF over the Azure-like production trace (§II-A).
type Fig1a struct {
	Grid         []float64
	All          []stats.Point
	Popular      []stats.Point
	PopularShare float64
}

// Fig1a reproduces the motivation CDF: the slack distribution of all
// function invocations and of the top-100 most popular functions.
func (s *Suite) Fig1a() (*Fig1a, error) {
	cfg := azure.DefaultTraceConfig()
	cfg.Seed = s.cfg.Seed
	tr, err := azure.Generate(cfg)
	if err != nil {
		return nil, err
	}
	grid := make([]float64, 0, 21)
	for x := 0.0; x <= 1.0001; x += 0.05 {
		grid = append(grid, x)
	}
	return &Fig1a{
		Grid:         grid,
		All:          tr.SlackCDF(false, grid),
		Popular:      tr.SlackCDF(true, grid),
		PopularShare: tr.PopularShare(),
	}, nil
}

// String renders the CDF rows.
func (f *Fig1a) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 1a: slack CDF (popular functions = %.1f%% of invocations)\n", f.PopularShare*100)
	fmt.Fprintf(&b, "%8s %12s %12s\n", "slack", "CDF(all)", "CDF(popular)")
	for i := range f.Grid {
		fmt.Fprintf(&b, "%8.2f %12.3f %12.3f\n", f.Grid[i], f.All[i].F, f.Popular[i].F)
	}
	return b.String()
}

// Fig1bRow is one function's working-set-driven latency spread at a fixed
// allocation (Fig 1b: P1 vs P99 bars for OD, QA, TS).
type Fig1bRow struct {
	Function string
	P1       time.Duration
	P99      time.Duration
	Ratio    float64
}

// Fig1b reproduces the working-set variance measurement.
func (s *Suite) Fig1b() ([]Fig1bRow, error) {
	set, err := s.Profiles(workflow.IntelligentAssistant(), 1)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig1bRow, 0, set.Len())
	for i := 0; i < set.Len(); i++ {
		fp := set.At(i)
		p1 := fp.L(1, 2000)
		p99 := fp.L(99, 2000)
		rows = append(rows, Fig1bRow{
			Function: fp.Function,
			P1:       p1,
			P99:      p99,
			Ratio:    float64(p99) / float64(p1),
		})
	}
	return rows, nil
}

// FormatFig1b renders the rows.
func FormatFig1b(rows []Fig1bRow) string {
	var b strings.Builder
	b.WriteString("Fig 1b: latency variance from varying working sets (at 2000 millicores)\n")
	fmt.Fprintf(&b, "%8s %10s %10s %8s\n", "func", "P1", "P99", "ratio")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8s %10v %10v %7.2fx\n", r.Function, r.P1.Round(time.Millisecond), r.P99.Round(time.Millisecond), r.Ratio)
	}
	return b.String()
}

// Fig1cRow is one dominant-dimension function's normalized latency under
// 1..6 co-located instances.
type Fig1cRow struct {
	Function   string
	Dimension  string
	Normalized []float64
}

// Fig1c reproduces the interference measurement: four functions with
// different dominant resources, slowed by co-locating homogeneous
// instances.
func (s *Suite) Fig1c() ([]Fig1cRow, error) {
	micro := map[string]interfere.Dimension{
		"aes-encrypt": interfere.CPU,
		"redis-read":  interfere.Memory,
		"disk-write":  interfere.IO,
		"socket-comm": interfere.Network,
	}
	order := []string{"aes-encrypt", "redis-read", "disk-write", "socket-comm"}
	rows := make([]Fig1cRow, 0, len(order))
	for _, name := range order {
		fn := s.functions[name]
		if fn == nil {
			return nil, fmt.Errorf("experiment: micro function %q missing", name)
		}
		stream := rng.New(s.cfg.Seed).Split("fig1c/" + name)
		base := 0.0
		row := Fig1cRow{Function: name, Dimension: micro[name].String()}
		for n := 1; n <= 6; n++ {
			var sum stats.Summary
			for i := 0; i < 400; i++ {
				d := fn.NewDraw(stream, 1, n, s.interf)
				sum.Observe(float64(fn.Latency(d, 2000)) / float64(time.Millisecond))
			}
			if n == 1 {
				base = sum.Mean()
			}
			row.Normalized = append(row.Normalized, sum.Mean()/base)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFig1c renders the rows.
func FormatFig1c(rows []Fig1cRow) string {
	var b strings.Builder
	b.WriteString("Fig 1c: normalized latency vs co-located homogeneous instances\n")
	fmt.Fprintf(&b, "%12s %8s %6s %6s %6s %6s %6s %6s\n", "func", "dim", "n=1", "n=2", "n=3", "n=4", "n=5", "n=6")
	for _, r := range rows {
		fmt.Fprintf(&b, "%12s %8s", r.Function, r.Dimension)
		for _, v := range r.Normalized {
			fmt.Fprintf(&b, " %5.2fx", v)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig2Row is one request's early- vs late-binding comparison.
type Fig2Row struct {
	RequestID int
	EarlyE2E  time.Duration
	LateE2E   time.Duration
	EarlyCPU  float64 // normalized by the per-request Optimal
	LateCPU   float64
}

// Fig2 is the motivating comparison (§II-C): early binding (GrandSLAM+
// sizing) vs late binding (runtime resource adaptation) over individual
// requests, with CPU normalized by the exhaustive-search optimum.
type Fig2 struct {
	SLO  time.Duration
	Rows []Fig2Row
}

// Fig2 runs the motivation experiment over n requests of the IA workflow.
func (s *Suite) Fig2(n int) (*Fig2, error) {
	w := workflow.IntelligentAssistant()
	reqs, err := s.Workload(w, 1)
	if err != nil {
		return nil, err
	}
	if n > len(reqs) {
		n = len(reqs)
	}
	sub := reqs[:n]
	ex, err := s.executor()
	if err != nil {
		return nil, err
	}
	set, err := s.Profiles(w, 1)
	if err != nil {
		return nil, err
	}
	early, err := baseline.GrandSLAMPlus(set, w.SLO())
	if err != nil {
		return nil, err
	}
	earlyTraces, err := ex.Run(sub, early)
	if err != nil {
		return nil, err
	}
	d, err := s.Deployment(w, 1, synth.ModeJanus, 1)
	if err != nil {
		return nil, err
	}
	lateTraces, err := ex.Run(sub, d.Allocator(SysJanus))
	if err != nil {
		return nil, err
	}
	opt, err := s.allocator(SysOptimal, w, 1)
	if err != nil {
		return nil, err
	}
	optTraces, err := ex.Run(sub, opt)
	if err != nil {
		return nil, err
	}
	out := &Fig2{SLO: w.SLO()}
	for i := range sub {
		optMC := float64(optTraces[i].TotalMillicores)
		out.Rows = append(out.Rows, Fig2Row{
			RequestID: i,
			EarlyE2E:  earlyTraces[i].E2E,
			LateE2E:   lateTraces[i].E2E,
			EarlyCPU:  float64(earlyTraces[i].TotalMillicores) / optMC,
			LateCPU:   float64(lateTraces[i].TotalMillicores) / optMC,
		})
	}
	return out, nil
}

// MeanSavings reports the average CPU reduction of late binding over early
// binding (the paper quotes up to 42.2% per request).
func (f *Fig2) MeanSavings() float64 {
	if len(f.Rows) == 0 {
		return 0
	}
	total := 0.0
	for _, r := range f.Rows {
		total += 1 - r.LateCPU/r.EarlyCPU
	}
	return total / float64(len(f.Rows))
}

// MaxSavings reports the largest per-request CPU reduction.
func (f *Fig2) MaxSavings() float64 {
	best := 0.0
	for _, r := range f.Rows {
		if s := 1 - r.LateCPU/r.EarlyCPU; s > best {
			best = s
		}
	}
	return best
}

// String renders the per-request series.
func (f *Fig2) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 2: early vs late binding over %d requests (SLO %v)\n", len(f.Rows), f.SLO)
	fmt.Fprintf(&b, "%6s %12s %12s %12s %12s\n", "req", "early E2E", "late E2E", "early CPU/opt", "late CPU/opt")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%6d %12v %12v %13.2f %13.2f\n",
			r.RequestID, r.EarlyE2E.Round(time.Millisecond), r.LateE2E.Round(time.Millisecond), r.EarlyCPU, r.LateCPU)
	}
	fmt.Fprintf(&b, "mean late-binding CPU savings: %.1f%% (max %.1f%%)\n", f.MeanSavings()*100, f.MaxSavings()*100)
	return b.String()
}
