package experiment

import (
	"fmt"
	"strings"
	"time"

	"janus/internal/parallel"
	"janus/internal/platform"
	"janus/internal/workflow"
)

// SPWorkflowName names the series-parallel scenario workload: the Video
// Analyze application in its fork-join form (frame extraction fanning out
// to concurrent classification and compression).
const SPWorkflowName = "va-sp"

// SPWorkflow returns the scenario's fork-join DAG. It serves through the
// same platform.Executor as every chain point: per-branch pods, warm-pool
// hits and cold starts per branch, capacity parking, slowest-branch joins.
func SPWorkflow() (*workflow.Workflow, error) {
	return parallel.VideoAnalyze().DAG()
}

// SPSystems lists the systems of the series-parallel scenario, in display
// order. ORION sits out: its distribution model needs raw per-allocation
// latency samples, which the composite (max-of-branches) reduction does not
// retain.
func SPSystems() []string {
	return []string{SysOptimal, SysJanus, SysJanusPlus, SysJanusMinus, SysGrandSLAMP, SysGrandSLAM}
}

// SPArrivalRates returns the Poisson rates of the arrival sweep, requests
// per second. Draws are rate-independent: the sweep subjects the identical
// request sequence to increasing admission pressure, isolating queueing.
func SPArrivalRates() []float64 { return []float64{1, 2, 4, 8} }

// spSweepSystems are the systems contrasted under admission pressure: the
// late-binding adapter, the strongest early binder, and the clairvoyant
// floor.
func spSweepSystems() []string { return []string{SysOptimal, SysJanus, SysGrandSLAMP} }

// SPPoints enumerates the series-parallel scenario grid — every scenario
// system at the default rate plus the arrival sweep — as runner points.
func SPPoints() ([]Point, error) {
	w, err := SPWorkflow()
	if err != nil {
		return nil, err
	}
	var out []Point
	for _, sys := range SPSystems() {
		out = append(out, Point{Workflow: w, Batch: 1, System: sys})
	}
	for _, rate := range SPArrivalRates() {
		for _, sys := range spSweepSystems() {
			out = append(out, Point{Workflow: w, Batch: 1, System: sys, ArrivalRatePerSec: rate})
		}
	}
	return out, nil
}

// SPRow is one system's summary in the series-parallel scenario.
type SPRow struct {
	System         string
	P50            time.Duration
	P99            time.Duration
	ViolationRate  float64
	MeanMillicores float64
	MissRate       float64
	// ColdStarts and Parked total the substrate events across the run —
	// the costs the sequential-loop SP serving path could never charge.
	ColdStarts int
	Parked     int
}

// SPScenario serves the series-parallel Video Analyze workload under every
// scenario system on the shared cluster substrate and summarizes latency,
// consumption, and substrate behavior per system.
func (s *Suite) SPScenario() ([]SPRow, error) {
	w, err := SPWorkflow()
	if err != nil {
		return nil, err
	}
	runs, err := s.RunPoint(w, 1, SPSystems())
	if err != nil {
		return nil, err
	}
	var out []SPRow
	for _, sys := range SPSystems() {
		r := runs[sys]
		e2e := platform.E2ESample(r.Traces)
		row := SPRow{
			System:         sys,
			P50:            e2e.PercentileDuration(50),
			P99:            e2e.PercentileDuration(99),
			ViolationRate:  r.ViolationRate,
			MeanMillicores: r.MeanMillicores,
			MissRate:       r.MissRate,
		}
		for i := range r.Traces {
			row.Parked += r.Traces[i].Parked
			for _, st := range r.Traces[i].Stages {
				if st.Cold {
					row.ColdStarts++
				}
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// FormatSPScenario renders the scenario rows.
func FormatSPScenario(rows []SPRow) string {
	var b strings.Builder
	b.WriteString("SP scenario: series-parallel Video Analyze (fe -> icl || ico) on the cluster substrate\n")
	fmt.Fprintf(&b, "%-11s %8s %8s %10s %12s %9s %6s %7s\n",
		"system", "P50", "P99", "viol.rate", "millicores", "missrate", "cold", "parked")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %8d %8d %10.4f %12.1f %9.4f %6d %7d\n",
			r.System, r.P50.Milliseconds(), r.P99.Milliseconds(), r.ViolationRate,
			r.MeanMillicores, r.MissRate, r.ColdStarts, r.Parked)
	}
	return b.String()
}

// SPArrivalRow is one (rate, system) point of the arrival sweep.
type SPArrivalRow struct {
	RatePerSec     float64
	System         string
	P99            time.Duration
	ViolationRate  float64
	MeanMillicores float64
	Parked         int
}

// SPArrivalSweep sweeps the Poisson arrival rate over the series-parallel
// workload for the late binder, the strongest early binder, and the
// clairvoyant floor. All (rate, system) points fan out over the suite's
// worker pool; results come back in input order and are consumed by
// position.
func (s *Suite) SPArrivalSweep() ([]SPArrivalRow, error) {
	w, err := SPWorkflow()
	if err != nil {
		return nil, err
	}
	var points []Point
	for _, rate := range SPArrivalRates() {
		for _, sys := range spSweepSystems() {
			points = append(points, Point{Workflow: w, Batch: 1, System: sys, ArrivalRatePerSec: rate})
		}
	}
	runs, err := s.RunPoints(points)
	if err != nil {
		return nil, err
	}
	out := make([]SPArrivalRow, len(points))
	for i, run := range runs {
		e2e := platform.E2ESample(run.Traces)
		row := SPArrivalRow{
			RatePerSec:     points[i].ArrivalRatePerSec,
			System:         points[i].System,
			P99:            e2e.PercentileDuration(99),
			ViolationRate:  run.ViolationRate,
			MeanMillicores: run.MeanMillicores,
		}
		for j := range run.Traces {
			row.Parked += run.Traces[j].Parked
		}
		out[i] = row
	}
	return out, nil
}

// FormatSPArrivalSweep renders the sweep.
func FormatSPArrivalSweep(rows []SPArrivalRow) string {
	var b strings.Builder
	b.WriteString("SP arrival sweep: admission pressure on the series-parallel Video Analyze workload\n")
	fmt.Fprintf(&b, "%6s %-11s %8s %10s %12s %7s\n", "req/s", "system", "P99", "viol.rate", "millicores", "parked")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6g %-11s %8d %10.4f %12.1f %7d\n",
			r.RatePerSec, r.System, r.P99.Milliseconds(), r.ViolationRate, r.MeanMillicores, r.Parked)
	}
	return b.String()
}
