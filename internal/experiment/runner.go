package experiment

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"janus/internal/workflow"
)

// Point identifies one suite point: one serving system executing one
// workload (workflow at an SLO, batch size). Points are the unit of
// parallelism — each point's discrete-event run is independent of every
// other point because requests carry pre-sampled runtime conditions (see
// platform.GenerateWorkload), so reordering or overlapping points cannot
// change any result.
type Point struct {
	// Workflow carries the workload shape and the SLO under test. Chains
	// and fork-join (series-parallel) workflows are both valid.
	Workflow *workflow.Workflow
	// Batch is the paper's concurrency level.
	Batch int
	// System names the serving system (see AllSystems).
	System string
	// ArrivalRatePerSec overrides the suite's Poisson arrival rate for
	// this point; <= 0 uses the suite default. Draws are rate-independent,
	// so a rate sweep subjects the identical request sequence to
	// increasing admission pressure.
	ArrivalRatePerSec float64
}

func (p Point) String() string {
	name := "<nil>"
	if p.Workflow != nil {
		name = fmt.Sprintf("%s/%v", p.Workflow.Name(), p.Workflow.SLO())
	}
	s := fmt.Sprintf("%s/b%d/%s", name, p.Batch, p.System)
	if p.ArrivalRatePerSec > 0 {
		s += fmt.Sprintf("/r%g", p.ArrivalRatePerSec)
	}
	return s
}

// Progress reports one completed point. Done counts completions so far
// (including this one); completions arrive in whatever order workers
// finish, but Progress callbacks themselves are serialized.
type Progress struct {
	Done  int
	Total int
	Point Point
	// Run is the point's summary, nil if the point failed.
	Run *SystemRun
	// Err is the point's failure, nil on success.
	Err error
}

// Runner fans suite points out over a bounded worker pool. Each worker
// serves its point on a cloned executor (platform.Executor.Clone), so the
// single-goroutine cluster/simclock invariant holds inside every worker
// while distinct points run concurrently. Shared suite caches (profiles,
// deployments, workloads) are filled through a singleflight group: the
// first worker to need an artifact computes it, the rest wait and share.
//
// Results are returned in input order regardless of completion order, and
// every artifact is derived from the suite's seed, so a Runner at any
// parallelism produces byte-identical results to the sequential path —
// the paired-comparison property the paper's normalized numbers rely on.
type Runner struct {
	// Suite supplies caches, scale, and the serving plane. Required.
	Suite *Suite
	// Parallelism bounds concurrent points; <= 0 uses the suite's
	// configured parallelism (default GOMAXPROCS).
	Parallelism int
	// OnProgress, if set, observes every completed point. Calls are
	// serialized; keep the callback cheap.
	OnProgress func(Progress)
}

// Run serves every point and returns results[i] for points[i]. It stops
// early when ctx is cancelled or a point fails. On failure it reports the
// lowest-index error among points that ran, and context errors surface
// only when no point failed on its own — so the cause of a fail-fast
// cancellation is never masked by its consequences.
func (r *Runner) Run(ctx context.Context, points []Point) ([]*SystemRun, error) {
	if r.Suite == nil {
		return nil, fmt.Errorf("experiment: runner needs a suite")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	for i, p := range points {
		if p.Workflow == nil {
			return nil, fmt.Errorf("experiment: point %d has no workflow", i)
		}
		if p.Batch <= 0 {
			return nil, fmt.Errorf("experiment: point %d (%s) has batch %d", i, p, p.Batch)
		}
	}
	if len(points) == 0 {
		return nil, nil
	}

	par := r.Parallelism
	if par <= 0 {
		par = r.Suite.parallelism()
	}
	if par > len(points) {
		par = len(points)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]*SystemRun, len(points))
	errs := make([]error, len(points))
	idx := make(chan int)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex // serializes progress reporting
		done int
	)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := runCtx.Err(); err != nil {
					errs[i] = err
				} else {
					results[i], errs[i] = r.Suite.runPointOne(runCtx, points[i])
					if errs[i] != nil {
						cancel() // fail fast; error selection below stays deterministic
					}
				}
				mu.Lock()
				done++
				if r.OnProgress != nil {
					r.OnProgress(Progress{Done: done, Total: len(points), Point: points[i], Run: results[i], Err: errs[i]})
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for i := range points {
		select {
		case idx <- i:
		case <-runCtx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()

	// Report the lowest-index real failure so the error does not depend on
	// completion order; context errors lose to point errors because they
	// are a consequence of the fail-fast cancel, not a cause.
	var ctxErr error
	for i, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if ctxErr == nil {
				ctxErr = err
			}
			continue
		}
		return nil, fmt.Errorf("experiment: point %s: %w", points[i], err)
	}
	if ctxErr != nil {
		return nil, ctxErr
	}
	for _, res := range results {
		if res == nil {
			// The feed stopped before this point was handed out — the
			// context was cancelled mid-run without any point recording it.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return nil, context.Canceled
		}
	}
	return results, nil
}

// EvaluationPoints enumerates the paper's full §V serving grid — every
// evaluation panel crossed with every system — as runner points. Fig 4 and
// Fig 5 consume exactly this set; it is also the standard multi-core
// benchmark workload for the concurrent runner.
func EvaluationPoints() ([]Point, error) {
	var out []Point
	for _, p := range panels() {
		w, err := panelWorkflow(p)
		if err != nil {
			return nil, err
		}
		for _, sys := range AllSystems() {
			out = append(out, Point{Workflow: w, Batch: p.Batch, System: sys})
		}
	}
	return out, nil
}

func defaultParallelism() int { return runtime.GOMAXPROCS(0) }
