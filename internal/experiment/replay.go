package experiment

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"time"

	"janus/internal/adapter"
	"janus/internal/autoscale"
	"janus/internal/cluster"
	"janus/internal/hints"
	"janus/internal/obs"
	"janus/internal/platform"
	"janus/internal/replay"
	"janus/internal/synth"
	"janus/internal/workflow"
)

// The non-stationary replay scenario: every other experiment in the suite
// serves a stationary workload (fixed batch or constant-rate Poisson)
// against statically sized warm pools. Here the ia/va/dag catalog is
// served as one bursty, diurnal arrival stream (internal/replay) under
// three provider configurations — statically sized pools, the elastic
// warm-pool autoscaler, and the autoscaler with the online bilateral loop
// closed (miss-rate-triggered hint regeneration hot-swapped mid-run) — so
// the comparison is provisioning policy against the identical request
// sequence: SLO attainment vs pod-seconds.

// Replay provider configurations, in display order.
const (
	// ReplayStatic serves on statically sized warm pools (the paper's
	// Fission PoolManager default of 3 pods per function): too shallow in
	// the burst, needlessly warm in the trough.
	ReplayStatic = "static"
	// ReplayAutoscale adds the elastic warm-pool controller.
	ReplayAutoscale = "autoscaler"
	// ReplayAutoscaleRegen additionally closes the bilateral loop online:
	// when drifted budgets push the adapter's epoch miss rate over the
	// threshold, the hint bundle is re-synthesized against the observed
	// budget floor and hot-swapped mid-run.
	ReplayAutoscaleRegen = "autoscaler+regen"
)

// ReplayConfigs lists the replay scenario's provider configurations.
func ReplayConfigs() []string {
	return []string{ReplayStatic, ReplayAutoscale, ReplayAutoscaleRegen}
}

const (
	// ReplayInterval is the control-loop period: pool retargeting, regen
	// checks, and pod-seconds sampling all run at this cadence.
	ReplayInterval = 500 * time.Millisecond
	// ReplayNodeMillicores sizes each replay-cluster node tighter than the
	// tenant-mix scenario (MixNodeMillicores): the burst is meant to push
	// the substrate into genuine capacity contention, where every
	// needlessly escalated pod parks somebody else's acquisition — the
	// regime that separates right-sized adaptation from ceiling
	// escalation. It matches MixNodeMillicores today; the constant keeps
	// the replay cluster independently tunable.
	ReplayNodeMillicores = 26000
	// replayPoolSize is the per-function warm-pool depth every replay
	// configuration deploys with — the paper's §V-A Fission PoolManager
	// setting of 3 (cluster.DefaultConfig), not the suite's deepened
	// suitePoolSize: the replay scenario measures what provisioning
	// policy does under non-stationary load, and the paper-faithful
	// static configuration is the baseline it falls over from — pools
	// that run dry at every diurnal peak yet sit warm through every
	// trough. The elastic configurations start from the same depth and
	// let the controller breathe between replayMinPool and replayMaxPool.
	replayPoolSize = 3
	// replayMinPool/replayMaxPool clamp the autoscaler's per-function
	// pool targets: it may drain a quiet pool below the static depth and
	// grow a pressured one well past it.
	replayMinPool = 2
	replayMaxPool = 6
	// replayRegenLatency is the virtual delay between miss-rate detection
	// and the regenerated bundle's hot-swap (the asynchronous
	// profiling+synthesis run in the modeled world).
	replayRegenLatency = 2 * time.Second
	// replayRegenMinDecisions is how many epoch decisions must accumulate
	// before the miss rate is trusted mid-run.
	replayRegenMinDecisions = 30
	// replayMaxBurst caps the burst phase's scaled duration (see
	// ReplaySchedule).
	replayMaxBurst = 10 * time.Second
	// replayRegenWeight is the head weight W the online regeneration
	// synthesizes with. Below the deployment-time W of 1, it prices the
	// head function cheaply (the Fig 7 knob), so the regenerated tables
	// lean toward larger, latency-safe head allocations: under drifted
	// traffic the loop's first duty is SLO protection, and the weight is
	// how the developer encodes that stance offline.
	replayRegenWeight = 0.5
	// replayStationaryTrim is the fraction of each cone table's budget
	// span the deployed bundle condenses away from the bottom. Stationary
	// serving keeps remaining budgets in the upper part of each cone's
	// feasible range, and synthesizing for the budgets a deployment
	// actually visits is the established practice the synthesizer's
	// BudgetOverrideMs documents (§V-F) — so the replay's initial bundle
	// covers the stationary window only. The burst then drives budgets
	// below deployed coverage (misses, escalations to the ceiling), which
	// is exactly the drift the online regeneration detects and repairs:
	// it re-synthesizes over the full range down to the observed floor
	// and hot-swaps the bundle mid-run.
	replayStationaryTrim = 0.35
)

// ReplayTenants returns the scenario's tenants — the IA chain, the VA
// chain, and the six-node ML-inference DAG — mixed by the azure-calibrated
// Zipf popularity law (ia dominates, dag is the tail).
func ReplayTenants() ([]MixTenant, error) {
	dag, err := DAGWorkflow()
	if err != nil {
		return nil, err
	}
	return []MixTenant{
		{Tenant: "ia", Workflow: workflow.IntelligentAssistant()},
		{Tenant: "va", Workflow: workflow.VideoAnalyze()},
		{Tenant: "dag", Workflow: dag},
	}, nil
}

// ReplaySchedule builds the scenario's non-stationary schedule: warm-up
// plateau, ramp, a burst whose middle third triples the aggregate rate
// while the mix shifts toward the heavy DAG tenant (a genuine workload
// drift, not just more of the same), a two-cycle diurnal phase, and a
// cool-down plateau. Phase durations scale with the suite's request
// budget so quick suites replay the same shape in less virtual time.
func (s *Suite) ReplaySchedule() (*replay.Schedule, error) {
	mix := replay.ZipfMix("ia", "va", "dag")
	// The burst's drift: the tail tenants surge past the Zipf head.
	burstMix := []replay.TenantShare{{Tenant: "ia", Weight: 1}, {Tenant: "va", Weight: 1.5}, {Tenant: "dag", Weight: 1.5}}
	d := s.replayDuration
	// The burst is a flash crowd: its absolute length does not stretch
	// with the observation window the way diurnal cycles do, so its
	// scaled duration is capped — otherwise a paper-scale suite turns a
	// seconds-long surge into a minutes-long overload that saturates any
	// provisioning policy and measures nothing but collapse.
	burstDur := d(30)
	if burstDur > replayMaxBurst {
		burstDur = replayMaxBurst
	}
	burst := replay.Burst(burstDur, 2, 22)
	burst.Mix = burstMix
	return replay.NewSchedule(s.cfg.Seed, mix,
		replay.Plateau(d(20), 2),
		replay.Ramp(d(20), 2, 6),
		burst,
		replay.Diurnal(d(120), 1, 7, d(60)),
		replay.Plateau(d(20), 2),
	)
}

// replayDuration scales a unit-schedule duration (in seconds) by the
// suite's request budget: at unit scale the phases integrate to ~780
// expected arrivals, so a quick suite replays the same shape in
// proportionally less virtual time. The compression is floored at half
// the unit scale: the controller's reaction horizon (one control
// interval plus a cold start, ~1 s) is physical, and a diurnal peak
// compressed below a few of those horizons measures reaction latency
// instead of provisioning policy. A quick suite therefore serves more
// requests than cfg.Requests here rather than replay a schedule too fast
// to adapt to.
func (s *Suite) replayDuration(sec float64) time.Duration {
	f := float64(s.cfg.Requests) / 780
	if f < 0.5 {
		f = 0.5
	}
	return time.Duration(sec * f * float64(time.Second))
}

// ReplayRow summarizes one tenant's share of a replay run (or the
// aggregate across tenants, under the tenant name "all"). The JSON field
// names are the janusbench -json schema; durations serialize as
// nanosecond integers (Go's time.Duration encoding).
type ReplayRow struct {
	Config string `json:"config"`
	Tenant string `json:"tenant"`
	// SLO is the tenant's objective; zero on the aggregate row.
	SLO time.Duration `json:"slo_ns"`
	// Requests is the tenant's share of the arrival stream.
	Requests int           `json:"requests"`
	P50      time.Duration `json:"p50_ns"`
	P99      time.Duration `json:"p99_ns"`
	// SLOAttainment is the fraction of requests meeting their objective
	// (1 - violation rate) — the scenario's service metric.
	SLOAttainment  float64 `json:"slo_attainment"`
	MeanMillicores float64 `json:"mean_millicores"`
	MissRate       float64 `json:"miss_rate"`
	ColdStarts     int     `json:"cold_starts"`
	Parked         int     `json:"parked"`
}

// ReplayRun is one replay serving run: the full tenant stream under one
// provider configuration.
type ReplayRun struct {
	Config string
	// Scenario names the schedule grid the run belongs to ("replay" or
	// "fleet"), and Nodes/NodeMillicores record the cluster it ran on.
	Scenario       string
	Nodes          int
	NodeMillicores int
	// Schedule is the rendered phase sequence the run replayed.
	Schedule string
	// Rows holds per-tenant summaries in ReplayTenants order; Aggregate
	// summarizes the merged stream.
	Rows      []ReplayRow
	Aggregate ReplayRow
	// Metrics is the run's provisioning cost: pod-seconds, peak pods,
	// pool churn.
	Metrics platform.ReplayMetrics
	// Swaps records each tenant's hint-bundle hot-swap instants (empty
	// except under ReplayAutoscaleRegen).
	Swaps map[string][]autoscale.Swap
	// Traces is the replayed trace set split by tenant.
	Traces map[string][]platform.Trace
}

// summarizeReplayTraces reduces one tenant's (or the merged) trace slice
// to a row.
func summarizeReplayTraces(config, tenant string, slo time.Duration, traces []platform.Trace) ReplayRow {
	e2e := platform.E2ESample(traces)
	row := ReplayRow{
		Config:         config,
		Tenant:         tenant,
		SLO:            slo,
		Requests:       len(traces),
		P50:            e2e.PercentileDuration(50),
		P99:            e2e.PercentileDuration(99),
		SLOAttainment:  1 - platform.SLOViolationRate(traces),
		MeanMillicores: platform.MeanMillicores(traces),
		MissRate:       platform.MissRate(traces),
	}
	for i := range traces {
		row.Parked += traces[i].Parked
		for _, st := range traces[i].Stages {
			if st.Cold {
				row.ColdStarts++
			}
		}
	}
	return row
}

// replayWorkload materializes (and caches) one tenant's request stream
// from the schedule's arrival instants. Draws do not depend on the
// provider configuration, so every configuration faces the identical
// sequence of runtime conditions — the paired comparison the scenario's
// conclusions rely on.
func (s *Suite) replayWorkload(mt MixTenant, arrivals []time.Duration) ([]*platform.Request, error) {
	// The key fingerprints the whole arrival stream, not just the
	// tenant: a future second schedule admitting the same number of
	// requests must not be served another schedule's baked-in admission
	// times from the cache.
	h := fnv.New64a()
	var buf [8]byte
	for _, at := range arrivals {
		binary.LittleEndian.PutUint64(buf[:], uint64(at))
		h.Write(buf[:])
	}
	key := fmt.Sprintf("replay/%s/n%d/a%x", mt.Tenant, len(arrivals), h.Sum64())
	v, err := s.flights.Do("workload/"+key, func() (any, error) {
		s.mu.Lock()
		reqs, ok := s.workloads[key]
		s.mu.Unlock()
		if ok {
			return reqs, nil
		}
		reqs, err := platform.GenerateWorkload(platform.WorkloadConfig{
			Workflow:         mt.Workflow,
			Functions:        s.functions,
			Batch:            1,
			Arrivals:         arrivals,
			Colocation:       s.colocationFor(mt.Workflow.Name()),
			Interference:     s.interf,
			StageCorrelation: StageCorrelation,
			Seed:             s.cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		s.workloads[key] = reqs
		s.mu.Unlock()
		return reqs, nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]*platform.Request), nil
}

// trimToStationaryWindow returns a copy of the bundle whose tables drop
// the condensed ranges lying entirely below the stationary budget window
// (the bottom replayStationaryTrim of each table's span). A range
// straddling the cut survives whole, and every table keeps at least one
// range, so the bundle stays valid.
func trimToStationaryWindow(b *hints.Bundle) *hints.Bundle {
	out := *b
	out.Tables = make([]*hints.Table, len(b.Tables))
	for i, tab := range b.Tables {
		t := *tab
		if lo, ok := tab.MinBudgetMs(); ok {
			hi, _ := tab.MaxBudgetMs()
			cut := lo + int(replayStationaryTrim*float64(hi-lo))
			kept := make([]hints.Range, 0, len(tab.Ranges))
			for _, r := range tab.Ranges {
				if r.EndMs >= cut {
					kept = append(kept, r)
				}
			}
			if len(kept) > 0 {
				t.Ranges = kept
			}
		}
		out.Tables[i] = &t
	}
	return &out
}

// replayAdapter builds a run-private adapter over a tenant's deployed
// bundle, condensed to the stationary budget window. The suite's cached
// Deployment shares one adapter across runs; a replay run that may
// hot-swap bundles mid-flight needs its own, so configurations cannot
// contaminate each other's epoch windows.
func (s *Suite) replayAdapter(mt MixTenant) (*adapter.Adapter, error) {
	dep, err := s.Deployment(mt.Workflow, 1, synth.ModeJanus, 1)
	if err != nil {
		return nil, err
	}
	return adapter.New(trimToStationaryWindow(dep.Bundle()))
}

// replayRegenFor closes the bilateral loop for one tenant: re-synthesize
// the hint bundle from the cached profiles with the exploration range
// extended down to the observed budget floor, then hot-swap it through
// the run-private adapter. tr, when non-nil, receives the loop's
// decision-audit events (detection and hot-swap).
func (s *Suite) replayRegenFor(mt MixTenant, a *adapter.Adapter, tr obs.Tracer) (*autoscale.Regen, error) {
	set, err := s.Profiles(mt.Workflow, 1)
	if err != nil {
		return nil, err
	}
	return autoscale.NewRegen(autoscale.RegenConfig{
		Adapter:      a,
		Latency:      replayRegenLatency,
		MinDecisions: replayRegenMinDecisions,
		Tenant:       mt.Tenant,
		Tracer:       tr,
		Synthesize: func(floorMs int) (*hints.Bundle, error) {
			sy, err := synth.New(synth.Config{
				Profiles:      set,
				Weight:        replayRegenWeight,
				Mode:          synth.ModeJanus,
				BudgetStepMs:  s.cfg.BudgetStepMs,
				BudgetFloorMs: floorMs,
			})
			if err != nil {
				return nil, err
			}
			res, err := sy.GenerateBundle()
			if err != nil {
				return nil, err
			}
			return res.Bundle, nil
		},
	})
}

// scheduleSpec identifies one non-stationary serving grid: the schedule
// to replay and the cluster to replay it on. replaySpec is the PR 5
// scenario on the small shared cluster; fleetSpec (fleet.go) scales the
// same machinery to hundreds of nodes.
type scheduleSpec struct {
	scenario       string
	nodes          int
	nodeMillicores int
	schedule       func(*Suite) (*replay.Schedule, error)
}

func replaySpec() scheduleSpec {
	return scheduleSpec{
		scenario:       "replay",
		nodes:          MixDefaultNodes,
		nodeMillicores: ReplayNodeMillicores,
		schedule:       (*Suite).ReplaySchedule,
	}
}

// runReplayOne serves the full schedule-driven stream under one provider
// configuration, filling the replay-run cache. Concurrent callers of the
// same (scenario, configuration) share one serving run (singleflight).
func (s *Suite) runReplayOne(spec scheduleSpec, config string) (*ReplayRun, error) {
	key := spec.scenario + "/" + config
	s.mu.Lock()
	run, ok := s.replays[key]
	s.mu.Unlock()
	if ok {
		return run, nil
	}
	v, err := s.flights.Do("run/"+key, func() (any, error) {
		s.mu.Lock()
		run, ok := s.replays[key]
		s.mu.Unlock()
		if ok {
			return run, nil
		}
		run, err := s.serveSchedule(spec, config)
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		s.replays[key] = run
		s.mu.Unlock()
		return run, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*ReplayRun), nil
}

// serveSchedule executes one provider configuration of one schedule grid
// end to end: the full merged arrival stream on the grid's full cluster.
func (s *Suite) serveSchedule(spec scheduleSpec, config string) (*ReplayRun, error) {
	tenants, err := ReplayTenants()
	if err != nil {
		return nil, err
	}
	sched, err := spec.schedule(s)
	if err != nil {
		return nil, err
	}
	byTenant := replay.TenantArrivalTimes(sched.Arrivals())
	for _, mt := range tenants {
		if len(byTenant[mt.Tenant]) == 0 {
			return nil, fmt.Errorf("experiment: replay schedule admitted no %s requests", mt.Tenant)
		}
	}
	return s.serveStream(spec, config, tenants, sched, byTenant)
}

// serveStream serves an explicit per-tenant arrival stream on the
// spec's cluster under one provider configuration. serveSchedule feeds
// it a schedule's whole stream; the sharded fleet sweep (fleetshard.go)
// feeds each independent cell its round-robin slice of the same
// stream. Tenants absent from the stream are skipped — a thin shard of
// a Zipf-tailed mix legitimately carries no requests for the tail
// tenant.
func (s *Suite) serveStream(spec scheduleSpec, config string, tenants []MixTenant, sched *replay.Schedule, byTenant map[string][]time.Duration) (*ReplayRun, error) {
	// The run's event sink, scoped by run identity so concurrent
	// configurations interleaving on one shared sink stay separable.
	// WithScope(nil, ...) stays nil, preserving the engine's zero-cost
	// tracing-off path.
	tr := obs.WithScope(s.tracer(), spec.scenario+"/"+config)
	workloads := make([]platform.TenantWorkload, 0, len(tenants))
	regens := make(map[string]*autoscale.Regen)
	for _, mt := range tenants {
		arrivals := byTenant[mt.Tenant]
		if len(arrivals) == 0 {
			continue
		}
		reqs, err := s.replayWorkload(mt, arrivals)
		if err != nil {
			return nil, err
		}
		a, err := s.replayAdapter(mt)
		if err != nil {
			return nil, err
		}
		if config == ReplayAutoscaleRegen {
			r, err := s.replayRegenFor(mt, a, tr)
			if err != nil {
				return nil, err
			}
			regens[mt.Tenant] = r
		}
		workloads = append(workloads, platform.TenantWorkload{
			Tenant:    mt.Tenant,
			Requests:  reqs,
			Allocator: &adapter.Allocator{Adapter: a, System: SysJanus},
		})
	}
	cfg := platform.DefaultExecutorConfig()
	cfg.Cluster = cluster.Config{
		Nodes:          spec.nodes,
		NodeMillicores: spec.nodeMillicores,
		PoolSize:       replayPoolSize,
		IdleMillicores: 100,
		Placement:      cluster.PlacementSpread,
	}
	cfg.Seed = s.cfg.Seed
	cfg.Tracer = tr
	cfg.Metrics = s.metrics()
	ex, err := platform.NewExecutor(cfg, s.functions)
	if err != nil {
		return nil, err
	}
	rcfg := platform.ReplayConfig{Interval: ReplayInterval, Horizon: sched.Duration()}
	if config == ReplayAutoscale || config == ReplayAutoscaleRegen {
		ctrl, err := autoscale.New(autoscale.Config{
			MinPool:        replayMinPool,
			MaxPool:        replayMaxPool,
			LowUtilization: 0.5,
			// The cooldown scales with the schedule so a quick suite's
			// compressed diurnal troughs still outlast it.
			Cooldown: s.replayDuration(8),
			Tracer:   tr,
		})
		if err != nil {
			return nil, err
		}
		rcfg.Controller = ctrl
	}
	if config == ReplayAutoscaleRegen {
		rcfg.OnTick = func(now time.Duration) []platform.ReplayAction {
			var acts []platform.ReplayAction
			for _, mt := range tenants {
				if r, ok := regens[mt.Tenant]; ok {
					acts = append(acts, r.Tick(now)...)
				}
			}
			return acts
		}
	}
	traces, metrics, err := ex.RunReplay(workloads, rcfg)
	if err != nil {
		return nil, fmt.Errorf("experiment: %s %s: %w", spec.scenario, config, err)
	}
	run := &ReplayRun{
		Config:         config,
		Scenario:       spec.scenario,
		Nodes:          spec.nodes,
		NodeMillicores: spec.nodeMillicores,
		Schedule:       sched.String(),
		Metrics:        *metrics,
		Swaps:          make(map[string][]autoscale.Swap),
		Traces:         traces,
	}
	var merged []platform.Trace
	for _, mt := range tenants {
		ts, ok := traces[mt.Tenant]
		if !ok {
			continue // tenant absent from this stream (thin shard)
		}
		run.Rows = append(run.Rows, summarizeReplayTraces(config, mt.Tenant, mt.Workflow.SLO(), ts))
		merged = append(merged, ts...)
		if r, ok := regens[mt.Tenant]; ok {
			run.Swaps[mt.Tenant] = r.Swaps()
		}
	}
	run.Aggregate = summarizeReplayTraces(config, "all", 0, merged)
	return run, nil
}

// ReplayScenario serves the non-stationary schedule under every provider
// configuration (fanned over the suite's worker pool) and returns the
// runs in ReplayConfigs order.
func (s *Suite) ReplayScenario() ([]*ReplayRun, error) {
	return s.scheduleScenario(replaySpec())
}

// scheduleScenario serves one schedule grid under every provider
// configuration, fanned over the suite's worker pool.
func (s *Suite) scheduleScenario(spec scheduleSpec) ([]*ReplayRun, error) {
	configs := ReplayConfigs()
	results := make([]*ReplayRun, len(configs))
	errs := make([]error, len(configs))
	fanIndexed(len(configs), s.parallelism(), func(i int) {
		results[i], errs[i] = s.runReplayOne(spec, configs[i])
	})
	for _, err := range errs {
		if err != nil {
			// runReplayOne/serveSchedule already name the configuration.
			return nil, err
		}
	}
	return results, nil
}

// ReplayPoint describes one replay scenario run for enumeration surfaces.
type ReplayPoint struct {
	// Config is the provider configuration (see ReplayConfigs).
	Config string
	// Description is the one-line summary -list-style surfaces print.
	Description string
}

// ReplayPoints enumerates the replay scenario grid.
func ReplayPoints() []ReplayPoint {
	return []ReplayPoint{
		{Config: ReplayStatic, Description: "statically sized warm pools (paper's 3 pods/function)"},
		{Config: ReplayAutoscale, Description: "elastic warm-pool autoscaler"},
		{Config: ReplayAutoscaleRegen, Description: "autoscaler + online hint regeneration (bilateral loop closed)"},
	}
}

// FormatReplay renders the scenario: the schedule, per-tenant and
// aggregate rows per configuration, each run's provisioning cost, and —
// for the closed-loop configuration — the hint-bundle hot-swap instants.
func FormatReplay(runs []*ReplayRun) string {
	var b strings.Builder
	if len(runs) > 0 {
		scenario := runs[0].Scenario
		if scenario == "" {
			scenario = "replay"
		}
		fmt.Fprintf(&b, "%s: non-stationary ia+va+dag stream on %d node(s) x %d millicores, control interval %v\n",
			strings.ToUpper(scenario[:1])+scenario[1:], runs[0].Nodes, runs[0].NodeMillicores, ReplayInterval)
		fmt.Fprintf(&b, "Schedule: %s\n", runs[0].Schedule)
	}
	fmt.Fprintf(&b, "%-16s %-6s %6s %5s %8s %8s %9s %12s %9s %6s %7s\n",
		"config", "tenant", "slo", "req", "P50", "P99", "slo.att", "millicores", "missrate", "cold", "parked")
	for _, run := range runs {
		rows := append(append([]ReplayRow(nil), run.Rows...), run.Aggregate)
		for _, r := range rows {
			slo := "-"
			if r.SLO > 0 {
				slo = fmt.Sprintf("%d", r.SLO.Milliseconds())
			}
			fmt.Fprintf(&b, "%-16s %-6s %6s %5d %8d %8d %9.4f %12.1f %9.4f %6d %7d\n",
				run.Config, r.Tenant, slo, r.Requests, r.P50.Milliseconds(), r.P99.Milliseconds(),
				r.SLOAttainment, r.MeanMillicores, r.MissRate, r.ColdStarts, r.Parked)
		}
	}
	b.WriteString("\n")
	for _, run := range runs {
		fmt.Fprintf(&b, "%-16s pod-seconds %10.1f  peak pods %3d  pool churn +%d/-%d\n",
			run.Config, run.Metrics.PodSeconds, run.Metrics.PeakPods, run.Metrics.PoolGrown, run.Metrics.PoolShrunk)
	}
	for _, run := range runs {
		tenants := make([]string, 0, len(run.Swaps))
		for t := range run.Swaps {
			tenants = append(tenants, t)
		}
		sort.Strings(tenants)
		for _, t := range tenants {
			for _, sw := range run.Swaps[t] {
				fmt.Fprintf(&b, "%-16s hot-swap tenant=%s at=%v missrate=%.4f floor=%dms\n",
					run.Config, t, sw.At.Round(time.Millisecond), sw.MissRate, sw.FloorMs)
			}
		}
	}
	return b.String()
}
