// Package experiment reproduces every table and figure in the paper's
// evaluation (§II and §V). Each driver returns a typed result whose
// String() prints the same rows/series the paper reports; cmd/janusbench
// exposes them on the command line and the repository-root benchmarks run
// them under `go test -bench`.
//
// All drivers hang off a Suite, which caches the expensive shared
// artifacts — function profiles and Janus deployments — so that sweeps
// (SLOs, weights, concurrency) reuse them exactly as a real developer
// would.
package experiment

import (
	"context"
	"fmt"
	"sync"
	"time"

	"janus/internal/baseline"
	"janus/internal/cluster"
	"janus/internal/core"
	"janus/internal/flight"
	"janus/internal/interfere"
	"janus/internal/obs"
	"janus/internal/perfmodel"
	"janus/internal/platform"
	"janus/internal/profile"
	"janus/internal/synth"
	"janus/internal/workflow"
)

// The serving systems compared throughout §V.
const (
	SysOptimal    = "optimal"
	SysORION      = "orion"
	SysGrandSLAM  = "grandslam"
	SysGrandSLAMP = "grandslam+"
	SysJanus      = "janus"
	SysJanusMinus = "janus-"
	SysJanusPlus  = "janus+"
)

// AllSystems lists every system in the paper's display order.
func AllSystems() []string {
	return []string{SysOptimal, SysORION, SysJanus, SysJanusPlus, SysJanusMinus, SysGrandSLAMP, SysGrandSLAM}
}

// suitePoolSize is the per-function warm-pool depth every suite serving
// run uses. It is deliberately twice cluster.DefaultConfig's PoolSize of 3
// (the paper's §V-A Fission PoolManager setting): the suite's arrival-rate
// and tenant-mix sweeps push admission well past the steady load the paper
// serves, and a 3-pod pool conflates cold-start queueing with the
// allocation effects under study. Doubling the pool keeps cold starts a
// measured consequence of pressure rather than the dominant signal, while
// single-workflow points behave identically to the paper's setting.
const suitePoolSize = 6

// StageCorrelation is the mixture-copula coupling of runtime conditions
// across a request's stages used by all serving experiments (see
// platform.WorkloadConfig.StageCorrelation). ORION's end-to-end estimator
// uses the same value — modeling the workflow distribution is its premise.
const StageCorrelation = 0.5

// Config scales the suite. The zero value is not valid; use NewSuite or
// QuickSuite.
type Config struct {
	// Seed roots every random stream in the suite.
	Seed uint64
	// ProfilerSamples is the per-(k, batch) profiling sample count.
	ProfilerSamples int
	// BudgetStepMs is the synthesis sweep granularity.
	BudgetStepMs int
	// Requests is the per-point request count (paper: 1000).
	Requests int
	// ArrivalRatePerSec is the Poisson workload rate.
	ArrivalRatePerSec float64
	// Parallelism bounds how many suite points run concurrently (the
	// Runner's worker pool); <= 0 means GOMAXPROCS. Results are identical
	// at every setting — points are independent by construction — so this
	// trades only wall-clock time, never fidelity.
	Parallelism int
}

// NewSuite returns a paper-scale suite: 1000 requests per point, 2000
// profiling samples per cell, 1 ms budget sweeps.
func NewSuite() *Suite {
	return NewSuiteWith(Config{
		Seed:              1,
		ProfilerSamples:   2000,
		BudgetStepMs:      1,
		Requests:          1000,
		ArrivalRatePerSec: 2,
	})
}

// QuickSuite returns a reduced-scale suite for unit tests: the same code
// paths at roughly 20x less work.
func QuickSuite() *Suite {
	return NewSuiteWith(Config{
		Seed:              1,
		ProfilerSamples:   600,
		BudgetStepMs:      20,
		Requests:          200,
		ArrivalRatePerSec: 2,
	})
}

// NewSuiteWith builds a suite from an explicit config.
func NewSuiteWith(cfg Config) *Suite {
	return &Suite{
		cfg:         cfg,
		functions:   perfmodel.Catalog(),
		interf:      interfere.Default(),
		profiles:    make(map[string]*profile.Set),
		deployments: make(map[string]*core.Deployment),
		workloads:   make(map[string][]*platform.Request),
		runs:        make(map[string]*SystemRun),
		mixed:       make(map[string]*MixRun),
		replays:     make(map[string]*ReplayRun),
		triggerRuns: make(map[string]*TriggerRun),
	}
}

// Suite carries shared state across experiment drivers. All methods are
// safe for concurrent use: caches are filled through a singleflight group
// so parallel workers needing the same artifact compute it exactly once.
type Suite struct {
	cfg       Config
	functions map[string]*perfmodel.Function
	interf    *interfere.Model

	// flights deduplicates concurrent fills of the caches below.
	flights flight.Group

	mu          sync.Mutex
	parallel    int        // runtime override of cfg.Parallelism (SetParallelism)
	obsTracer   obs.Tracer // event sink attached to replay serving runs (SetTracer)
	obsMetrics  *obs.Registry
	exTemplate  *platform.Executor
	profiles    map[string]*profile.Set
	deployments map[string]*core.Deployment
	workloads   map[string][]*platform.Request
	runs        map[string]*SystemRun
	mixed       map[string]*MixRun
	replays     map[string]*ReplayRun
	triggerRuns map[string]*TriggerRun
	fig6        []Fig6Row
}

// SetParallelism overrides the suite's point-level parallelism after
// construction (cmd/janusbench's -parallelism flag lands here); n <= 0
// restores the default (GOMAXPROCS).
func (s *Suite) SetParallelism(n int) {
	s.mu.Lock()
	s.parallel = n
	s.mu.Unlock()
}

// SetTracer attaches an observability sink to every replay serving run
// the suite executes from now on (cmd/janusbench's -trace flag lands
// here). Each run's events arrive scoped "scenario/config" via
// obs.WithScope. Concurrent runs (parallelism > 1) interleave their
// scopes on the shared sink, so the sink must be goroutine-safe;
// obs.NDJSONWriter, obs.Timeline, and obs.Collector are. Tracers only
// observe — attaching one leaves every result byte-identical (pinned by
// TestReplayTracerDoesNotPerturb). nil detaches.
func (s *Suite) SetTracer(t obs.Tracer) {
	s.mu.Lock()
	s.obsTracer = t
	s.mu.Unlock()
}

// tracer resolves the suite's attached event sink (nil when tracing is
// off — the serving engine's zero-cost default).
func (s *Suite) tracer() obs.Tracer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.obsTracer
}

// SetMetrics attaches a metrics registry to every replay serving run the
// suite executes from now on: per-tenant decision/escalation counters and
// latency histograms, park-depth and pool-occupancy gauges. Handles are
// lock-free atomics, so concurrent runs may share one registry (their
// counts merge). nil detaches.
func (s *Suite) SetMetrics(r *obs.Registry) {
	s.mu.Lock()
	s.obsMetrics = r
	s.mu.Unlock()
}

// metrics resolves the suite's attached registry (nil when off).
func (s *Suite) metrics() *obs.Registry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.obsMetrics
}

// parallelism resolves the effective worker-pool bound.
func (s *Suite) parallelism() int {
	s.mu.Lock()
	n := s.parallel
	s.mu.Unlock()
	if n <= 0 {
		n = s.cfg.Parallelism
	}
	if n <= 0 {
		n = defaultParallelism()
	}
	return n
}

// fanIndexed runs fn(0), ..., fn(n-1) over at most par worker goroutines
// and waits for all of them — the input-order-preserving fan-out the
// mixed and replay scenario drivers share (each fn writes its own result
// slot). Runner.Run keeps its own loop: it adds progress reporting and
// context cancellation this shape does not need.
func fanIndexed(n, par int, fn func(i int)) {
	if par > n {
		par = n
	}
	idx := make(chan int)
	done := make(chan struct{})
	for w := 0; w < par; w++ {
		go func() {
			for i := range idx {
				fn(i)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	for w := 0; w < par; w++ {
		<-done
	}
}

// colocationFor returns the co-location mix each workflow's pods see: IA
// under moderate load, VA (chain and series-parallel form alike) with its
// per-function parallelism (§V-A).
func (s *Suite) colocationFor(wf string) *interfere.CountSampler {
	var weights []float64
	switch wf {
	case "va", SPWorkflowName, DAGWorkflowName:
		weights = []float64{0.4, 0.4, 0.2}
	default:
		weights = []float64{0.5, 0.35, 0.15}
	}
	cs, err := interfere.NewCountSampler(weights)
	if err != nil {
		panic(err) // static weights; cannot fail
	}
	return cs
}

// Profiles returns (cached) profiles for a workflow at a batch size
// through the node-granular profiler: chains run the per-function
// profiler (raw samples retained for ORION); every other DAG profiles one
// max-over-members composite per decision group — fork-join stages and
// arbitrary-DAG forks alike. Concurrent callers missing the same key
// share one computation.
func (s *Suite) Profiles(w *workflow.Workflow, batch int) (*profile.Set, error) {
	key := fmt.Sprintf("%s/b%d", w.Name(), batch)
	v, err := s.flights.Do("profiles/"+key, func() (any, error) {
		s.mu.Lock()
		set, ok := s.profiles[key]
		s.mu.Unlock()
		if ok {
			return set, nil
		}
		prof, err := profile.NewProfiler(s.functions, s.colocationFor(w.Name()), s.interf, s.cfg.Seed)
		if err != nil {
			return nil, err
		}
		prof.SamplesPerConfig = s.cfg.ProfilerSamples
		set2, err := prof.ProfileWorkflow(w, batch)
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		s.profiles[key] = set2
		s.mu.Unlock()
		return set2, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*profile.Set), nil
}

// Deployment returns a (cached) Janus deployment for a workflow, batch,
// mode, and weight. Hints tables are keyed by remaining budget, so one
// deployment serves every SLO in a sweep.
func (s *Suite) Deployment(w *workflow.Workflow, batch int, mode synth.Mode, weight float64) (*core.Deployment, error) {
	key := fmt.Sprintf("%s/b%d/%v/w%.2f", w.Name(), batch, mode, weight)
	v, err := s.flights.Do("deployment/"+key, func() (any, error) {
		s.mu.Lock()
		d, ok := s.deployments[key]
		s.mu.Unlock()
		if ok {
			return d, nil
		}
		set, err := s.Profiles(w, batch)
		if err != nil {
			return nil, err
		}
		d, err = core.DeployProfiled(set, core.Options{
			Functions:           s.functions,
			Colocation:          s.colocationFor(w.Name()),
			Interference:        s.interf,
			Seed:                s.cfg.Seed,
			Batch:               batch,
			Weight:              weight,
			Mode:                mode,
			BudgetStepMs:        s.cfg.BudgetStepMs,
			DisableRegeneration: true,
		})
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		s.deployments[key] = d
		s.mu.Unlock()
		return d, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*core.Deployment), nil
}

// Workload returns the (cached) request sequence for a workflow and batch
// at the suite's configured arrival rate. Draws are independent of SLO and
// serving system, so every system and every SLO point faces identical
// runtime conditions.
func (s *Suite) Workload(w *workflow.Workflow, batch int) ([]*platform.Request, error) {
	return s.WorkloadAtRate(w, batch, 0)
}

// WorkloadAtRate is Workload at an explicit Poisson arrival rate; rate <= 0
// uses the suite's configured rate. Workloads are cached per (workflow,
// batch, rate), and draws do not depend on the rate — an arrival-rate sweep
// subjects the identical request sequence to increasing admission pressure.
func (s *Suite) WorkloadAtRate(w *workflow.Workflow, batch int, rate float64) ([]*platform.Request, error) {
	if rate <= 0 {
		rate = s.cfg.ArrivalRatePerSec
	}
	key := fmt.Sprintf("%s/b%d/r%g", w.Name(), batch, rate)
	v, err := s.flights.Do("workload/"+key, func() (any, error) {
		s.mu.Lock()
		reqs, ok := s.workloads[key]
		s.mu.Unlock()
		if ok {
			return reqs, nil
		}
		reqs, err := platform.GenerateWorkload(platform.WorkloadConfig{
			Workflow:          w,
			Functions:         s.functions,
			N:                 s.cfg.Requests,
			Batch:             batch,
			ArrivalRatePerSec: rate,
			Colocation:        s.colocationFor(w.Name()),
			Interference:      s.interf,
			StageCorrelation:  StageCorrelation,
			Seed:              s.cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		s.workloads[key] = reqs
		s.mu.Unlock()
		return reqs, nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]*platform.Request), nil
}

// executor returns a serving plane private to the caller: a clone of the
// suite's template executor, so every worker goroutine drives its own
// single-goroutine discrete-event run.
func (s *Suite) executor() (*platform.Executor, error) {
	s.mu.Lock()
	tmpl := s.exTemplate
	s.mu.Unlock()
	if tmpl == nil {
		cfg := platform.DefaultExecutorConfig()
		cfg.Cluster = cluster.Config{Nodes: 1, NodeMillicores: 52000, PoolSize: suitePoolSize, IdleMillicores: 100}
		cfg.Seed = s.cfg.Seed
		ex, err := platform.NewExecutor(cfg, s.functions)
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		if s.exTemplate == nil {
			s.exTemplate = ex
		}
		tmpl = s.exTemplate
		s.mu.Unlock()
	}
	return tmpl.Clone(), nil
}

// allocator materializes a serving system for (workflow, batch, slo).
func (s *Suite) allocator(system string, w *workflow.Workflow, batch int) (platform.Allocator, error) {
	set, err := s.Profiles(w, batch)
	if err != nil {
		return nil, err
	}
	switch system {
	case SysOptimal:
		// Headroom covers per-decision platform costs outside function
		// execution: the adapter decision and warm-pod specialization.
		headroom := time.Duration(len(w.DecisionGroups())) * 4 * time.Millisecond
		return baseline.NewOptimal(w, s.functions, set.At(0).Grid, headroom)
	case SysORION:
		return baseline.ORION(set, w.SLO(), baseline.ORIONConfig{Seed: s.cfg.Seed, Correlation: StageCorrelation})
	case SysGrandSLAM:
		return baseline.GrandSLAM(set, w.SLO())
	case SysGrandSLAMP:
		return baseline.GrandSLAMPlus(set, w.SLO())
	case SysJanus, SysJanusMinus, SysJanusPlus:
		mode := synth.ModeJanus
		switch system {
		case SysJanusMinus:
			mode = synth.ModeJanusMinus
		case SysJanusPlus:
			mode = synth.ModeJanusPlus
		}
		d, err := s.Deployment(w, batch, mode, 1)
		if err != nil {
			return nil, err
		}
		return d.Allocator(system), nil
	default:
		return nil, fmt.Errorf("experiment: unknown system %q", system)
	}
}

// SystemRun summarizes one (system, workload point) serving run.
type SystemRun struct {
	System         string
	Traces         []platform.Trace
	MeanMillicores float64
	P50E2E         time.Duration
	P99E2E         time.Duration
	ViolationRate  float64
	MissRate       float64
	SLO            time.Duration
}

// RunPoint serves the workload under each system and summarizes. Results
// are cached per (workflow, SLO, batch, system): figure drivers share
// runs. Uncached systems fan out over the suite's worker pool.
func (s *Suite) RunPoint(w *workflow.Workflow, batch int, systems []string) (map[string]*SystemRun, error) {
	points := make([]Point, len(systems))
	for i, system := range systems {
		points[i] = Point{Workflow: w, Batch: batch, System: system}
	}
	runs, err := s.RunPoints(points)
	if err != nil {
		return nil, err
	}
	out := make(map[string]*SystemRun, len(systems))
	for i, run := range runs {
		out[points[i].System] = run
	}
	return out, nil
}

// RunPoints serves the points concurrently (bounded by the suite's
// parallelism) and returns results in input order. It is the cache- and
// determinism-preserving fan-out primitive every figure driver sits on;
// use a Runner directly for progress reporting or cancellation.
func (s *Suite) RunPoints(points []Point) ([]*SystemRun, error) {
	r := &Runner{Suite: s}
	return r.Run(context.Background(), points)
}

// runPointOne serves one (workflow, batch, system) point, filling the run
// cache. Concurrent callers of the same point share one serving run. The
// context is consulted only before joining the shared fill: once a fill is
// in flight it runs to completion, so a cancelled caller can never poison
// waiters from a healthy run with its own context error.
func (s *Suite) runPointOne(ctx context.Context, p Point) (*SystemRun, error) {
	w := p.Workflow
	rate := p.ArrivalRatePerSec
	if rate <= 0 {
		rate = s.cfg.ArrivalRatePerSec
	}
	key := fmt.Sprintf("%s/%v/b%d/r%g/%s", w.Name(), w.SLO(), p.Batch, rate, p.System)
	s.mu.Lock()
	run, ok := s.runs[key]
	s.mu.Unlock()
	if ok {
		return run, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	v, err := s.flights.Do("run/"+key, func() (any, error) {
		s.mu.Lock()
		run, ok := s.runs[key]
		s.mu.Unlock()
		if ok {
			return run, nil
		}
		reqs, err := s.WorkloadAtRate(w, p.Batch, rate)
		if err != nil {
			return nil, err
		}
		// Requests carry the sweep SLO via their workflow reference.
		pointReqs := make([]*platform.Request, len(reqs))
		for i, r := range reqs {
			cp := *r
			cp.Workflow = w
			pointReqs[i] = &cp
		}
		alloc, err := s.allocator(p.System, w, p.Batch)
		if err != nil {
			return nil, fmt.Errorf("experiment: %s on %s: %w", p.System, w.Name(), err)
		}
		ex, err := s.executor()
		if err != nil {
			return nil, err
		}
		traces, err := ex.Run(pointReqs, alloc)
		if err != nil {
			return nil, fmt.Errorf("experiment: serving %s on %s: %w", p.System, w.Name(), err)
		}
		e2e := platform.E2ESample(traces)
		run = &SystemRun{
			System:         p.System,
			Traces:         traces,
			MeanMillicores: platform.MeanMillicores(traces),
			P50E2E:         e2e.PercentileDuration(50),
			P99E2E:         e2e.PercentileDuration(99),
			ViolationRate:  platform.SLOViolationRate(traces),
			MissRate:       platform.MissRate(traces),
			SLO:            w.SLO(),
		}
		s.mu.Lock()
		s.runs[key] = run
		s.mu.Unlock()
		return run, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*SystemRun), nil
}
