package experiment

import (
	"strings"
	"testing"
)

func TestShardArrivalsConservesStream(t *testing.T) {
	sched, err := tinyFleetSuite().FleetSchedule()
	if err != nil {
		t.Fatal(err)
	}
	arrivals := sched.Arrivals()
	shards := shardArrivals(arrivals, FleetShardCells)
	if len(shards) != FleetShardCells {
		t.Fatalf("shardArrivals produced %d cells, want %d", len(shards), FleetShardCells)
	}
	whole := make(map[string]int)
	for _, a := range arrivals {
		whole[a.Tenant]++
	}
	sharded := make(map[string]int)
	total := 0
	for c, byTenant := range shards {
		cell := 0
		for tenant, ats := range byTenant {
			sharded[tenant] += len(ats)
			cell += len(ats)
			// Round-robin over a time-ordered stream keeps each cell's
			// per-tenant arrivals time-ordered.
			for i := 1; i < len(ats); i++ {
				if ats[i-1] > ats[i] {
					t.Fatalf("cell %d tenant %s arrivals out of order at %d", c, tenant, i)
				}
			}
		}
		total += cell
		// Round-robin spreads the stream evenly: cells differ by at most
		// one arrival.
		if want := len(arrivals) / FleetShardCells; cell < want || cell > want+1 {
			t.Fatalf("cell %d holds %d arrivals, want %d or %d", c, cell, want, want+1)
		}
	}
	if total != len(arrivals) {
		t.Fatalf("shards hold %d arrivals, stream has %d", total, len(arrivals))
	}
	for tenant, n := range whole {
		if sharded[tenant] != n {
			t.Fatalf("tenant %s: shards hold %d arrivals, stream has %d", tenant, sharded[tenant], n)
		}
	}
}

func TestFleetShardScenarioSmallSuite(t *testing.T) {
	s := tinyFleetSuite()
	runs, err := s.FleetShardScenario()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != len(ReplayConfigs()) {
		t.Fatalf("sharded grid has %d runs, want %d", len(runs), len(ReplayConfigs()))
	}
	sched, err := s.FleetSchedule()
	if err != nil {
		t.Fatal(err)
	}
	admitted := make(map[string]int)
	for _, a := range sched.Arrivals() {
		admitted[a.Tenant]++
	}
	for i, run := range runs {
		if run.Config != ReplayConfigs()[i] {
			t.Fatalf("run %d is %q, want %q (ReplayConfigs order)", i, run.Config, ReplayConfigs()[i])
		}
		if run.Scenario != "fleetshard" {
			t.Fatalf("run %q scenario = %q, want fleetshard", run.Config, run.Scenario)
		}
		if run.Nodes != FleetNodes {
			t.Fatalf("run %q merged node count = %d, want %d", run.Config, run.Nodes, FleetNodes)
		}
		// Exact conservation: every admitted request is served in exactly
		// one cell, so merged per-tenant counts equal the unsharded
		// stream's admission counts.
		served := 0
		for _, row := range run.Rows {
			if row.Requests != admitted[row.Tenant] {
				t.Fatalf("run %q tenant %s served %d requests, schedule admitted %d",
					run.Config, row.Tenant, row.Requests, admitted[row.Tenant])
			}
			served += row.Requests
		}
		if run.Aggregate.Requests != served {
			t.Fatalf("run %q aggregate counts %d requests, rows sum to %d",
				run.Config, run.Aggregate.Requests, served)
		}
		if run.Metrics.PodSeconds <= 0 || run.Metrics.PeakPods <= 0 {
			t.Fatalf("run %q carries no merged provisioning metrics", run.Config)
		}
	}
}

// TestFleetShardDeterministicAcrossParallelism pins the sharded sweep's
// merge: cells serve sequentially within a configuration, but the
// configurations fan across the worker pool, and the merged output must
// be byte-identical at any worker count.
func TestFleetShardDeterministicAcrossParallelism(t *testing.T) {
	grid := func(s *Suite) string {
		runs, err := s.FleetShardScenario()
		if err != nil {
			t.Fatal(err)
		}
		return dumpReplayRuns(runs)
	}
	sequential := tinyFleetSuite()
	sequential.SetParallelism(1)
	seq := grid(sequential)
	concurrent := tinyFleetSuite()
	concurrent.SetParallelism(8)
	par := grid(concurrent)
	if seq != par {
		a, b := strings.Split(seq, "\n"), strings.Split(par, "\n")
		for i := range a {
			if i >= len(b) || a[i] != b[i] {
				t.Fatalf("sharded fleet run diverged at line %d:\n  seq: %s\n  par: %s", i, a[i], b[i])
			}
		}
		t.Fatalf("sharded fleet run diverged (lengths %d vs %d)", len(seq), len(par))
	}
}

func TestFormatFleetShardMentionsCellLayout(t *testing.T) {
	runs, err := tinyFleetSuite().FleetShardScenario()
	if err != nil {
		t.Fatal(err)
	}
	out := FormatFleetShard(runs)
	if !strings.Contains(out, "4 cells x 50 nodes") {
		t.Fatalf("sharded header missing cell layout:\n%s", out)
	}
	if !strings.Contains(out, "deterministic merge") {
		t.Fatalf("sharded header missing merge note:\n%s", out)
	}
}
