package experiment

import (
	"fmt"
	"testing"

	"janus/internal/obs"
	"janus/internal/platform"
)

// tracedReplay runs the full replay grid on a fresh QuickSuite with a
// Collector attached and returns the runs, the captured event stream,
// and the untraced-vs-traced dump for determinism checks.
func tracedReplay(t *testing.T) ([]*ReplayRun, []obs.Event) {
	t.Helper()
	s := QuickSuite()
	s.SetParallelism(1)
	col := &obs.Collector{}
	s.SetTracer(col)
	s.SetMetrics(obs.NewRegistry())
	runs, err := s.ReplayScenario()
	if err != nil {
		t.Fatal(err)
	}
	return runs, col.Events()
}

// TestReplayTracerDoesNotPerturb pins the observability layer's first
// design rule: attaching a tracer and a metrics registry to the suite
// leaves every replay result byte-identical to the untraced run —
// schedule materialization, pool churn, swap instants, and every served
// trace included.
func TestReplayTracerDoesNotPerturb(t *testing.T) {
	plain := QuickSuite()
	plain.SetParallelism(1)
	runs, err := plain.ReplayScenario()
	if err != nil {
		t.Fatal(err)
	}
	base := dumpReplayRuns(runs)

	traced, events := tracedReplay(t)
	if got := dumpReplayRuns(traced); got != base {
		t.Fatal("attaching a tracer changed the replay results")
	}
	if len(events) == 0 {
		t.Fatal("tracer attached but no events captured")
	}
}

// chainKey identifies one request's causal chain in a traced stream.
type chainKey struct {
	scope  string
	tenant string
	req    int
}

// TestReplayTraceCausalChains replays the grid with a tracer attached
// and reconstructs, for every SLO miss, the full causal chain from the
// event stream alone: admit → decisions → parks/wakes → completion, in
// virtual-time order, with the miss set agreeing exactly with the
// returned traces.
func TestReplayTraceCausalChains(t *testing.T) {
	runs, events := tracedReplay(t)

	chains := make(map[chainKey][]obs.Event)
	swaps := make(map[string]map[string]int) // scope -> tenant -> count
	for _, ev := range events {
		if ev.Request >= 0 {
			k := chainKey{ev.Scope, ev.Tenant, ev.Request}
			chains[k] = append(chains[k], ev)
			continue
		}
		// Control-plane events carry the -1 sentinel, never a causal ID.
		switch ev.Kind {
		case obs.KindPoolScale, obs.KindScaleAudit, obs.KindSwap:
		default:
			t.Fatalf("unexpected request-less event kind %v", ev.Kind)
		}
		if ev.Kind == obs.KindSwap {
			if swaps[ev.Scope] == nil {
				swaps[ev.Scope] = make(map[string]int)
			}
			swaps[ev.Scope][ev.Tenant]++
		}
	}

	// Every chain is well-formed; collect the chains that contain a miss.
	missed := make(map[chainKey]bool)
	for k, chain := range chains {
		var admits, decisions, completes, parks, wakes int
		for i, ev := range chain {
			if i > 0 && ev.At < chain[i-1].At {
				t.Fatalf("chain %v out of virtual-time order at event %d", k, i)
			}
			switch ev.Kind {
			case obs.KindAdmit:
				admits++
			case obs.KindDecision:
				decisions++
			case obs.KindComplete:
				completes++
			case obs.KindPark:
				parks++
			case obs.KindWake:
				wakes++
			case obs.KindSLOMiss:
				missed[k] = true
			}
		}
		if admits != 1 || completes != 1 || decisions == 0 {
			t.Fatalf("chain %v: admits=%d completes=%d decisions=%d, want 1/1/>=1",
				k, admits, completes, decisions)
		}
		if wakes > parks {
			t.Fatalf("chain %v: %d wakes exceed %d parks", k, wakes, parks)
		}
		if last := chain[len(chain)-1].Kind; last != obs.KindComplete && last != obs.KindSLOMiss {
			t.Fatalf("chain %v ends with %v, want complete or slo_miss", k, last)
		}
	}

	// The event-derived miss set matches the trace-derived one exactly,
	// per run and per tenant.
	for _, run := range runs {
		scope := run.Scenario + "/" + run.Config
		for tenant, traces := range run.Traces {
			for _, tr := range traces {
				k := chainKey{scope, tenant, tr.RequestID}
				if len(chains[k]) == 0 {
					t.Fatalf("no events for served request %v", k)
				}
				want := !tr.SLOMet()
				if missed[k] != want {
					t.Fatalf("request %v: trace says miss=%t, events say %t (e2e=%v slo=%v)",
						k, want, missed[k], tr.E2E, tr.SLO)
				}
			}
		}
		// Hot-swap audit events agree with the run's swap record.
		wantSwaps := 0
		for _, sw := range run.Swaps {
			wantSwaps += len(sw)
		}
		gotSwaps := 0
		for _, n := range swaps[scope] {
			gotSwaps += n
		}
		if gotSwaps != wantSwaps {
			t.Fatalf("%s: %d swap events, run recorded %d swaps", scope, gotSwaps, wantSwaps)
		}
	}

	// The elastic configurations must explain themselves: pool-scale and
	// scale-audit events present for autoscaler scopes, absent for static.
	kinds := make(map[string]map[obs.Kind]int)
	for _, ev := range events {
		if kinds[ev.Scope] == nil {
			kinds[ev.Scope] = make(map[obs.Kind]int)
		}
		kinds[ev.Scope][ev.Kind]++
	}
	staticScope := "replay/" + ReplayStatic
	if n := kinds[staticScope][obs.KindPoolScale]; n != 0 {
		t.Fatalf("static config emitted %d pool-scale events", n)
	}
	for _, config := range []string{ReplayAutoscale, ReplayAutoscaleRegen} {
		scope := "replay/" + config
		if kinds[scope][obs.KindPoolScale] == 0 {
			t.Fatalf("%s emitted no pool-scale events", scope)
		}
		if kinds[scope][obs.KindScaleAudit] == 0 {
			t.Fatalf("%s emitted no scale-audit events", scope)
		}
	}
}

// TestReplayMetricsRegistryAgreesWithTraces attaches a registry to a
// replay grid and checks the per-tenant counters against the returned
// traces: completions, SLO misses, and park counts must agree, and the
// latency histograms must have observed every completion.
func TestReplayMetricsRegistryAgreesWithTraces(t *testing.T) {
	s := QuickSuite()
	s.SetParallelism(1)
	reg := obs.NewRegistry()
	s.SetMetrics(reg)
	runs, err := s.ReplayScenario()
	if err != nil {
		t.Fatal(err)
	}

	wantDone := make(map[string]int)
	wantMiss := make(map[string]int)
	wantParked := make(map[string]int)
	for _, run := range runs {
		for tenant, traces := range run.Traces {
			for _, tr := range traces {
				wantDone[tenant]++
				if !tr.SLOMet() {
					wantMiss[tenant]++
				}
				wantParked[tenant] += tr.Parked
			}
		}
	}
	for tenant, want := range wantDone {
		if got := reg.Counter("janus_requests_completed_total", "tenant", tenant).Value(); got != int64(want) {
			t.Fatalf("tenant %s: completions counter %d, traces say %d", tenant, got, want)
		}
		if got := reg.Counter("janus_slo_misses_total", "tenant", tenant).Value(); got != int64(wantMiss[tenant]) {
			t.Fatalf("tenant %s: miss counter %d, traces say %d", tenant, got, wantMiss[tenant])
		}
		if got := reg.Counter("janus_parked_total", "tenant", tenant).Value(); got != int64(wantParked[tenant]) {
			t.Fatalf("tenant %s: parked counter %d, traces say %d", tenant, got, wantParked[tenant])
		}
		h := reg.Histogram("janus_e2e_latency_ms", platform.LatencyBucketsMs(), "tenant", tenant)
		if got := h.Count(); got != int64(want) {
			t.Fatalf("tenant %s: e2e histogram count %d, traces say %d", tenant, got, want)
		}
	}

	// Snapshot is deterministic and covers every family the run fed.
	snap := reg.Snapshot()
	seen := make(map[string]bool)
	for _, p := range snap {
		seen[p.Name] = true
	}
	for _, name := range []string{
		"janus_decisions_total", "janus_requests_completed_total",
		"janus_e2e_latency_ms", "janus_node_latency_ms",
		"janus_park_depth", "janus_pool_busy", "janus_pool_warm",
	} {
		if !seen[name] {
			t.Fatalf("snapshot missing family %s (have %v)", name, fmt.Sprint(seen))
		}
	}
}
