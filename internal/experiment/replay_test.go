package experiment

import (
	"fmt"
	"strings"
	"testing"

	"janus/internal/hints"
)

func TestReplayScheduleShapeAndScaling(t *testing.T) {
	s := quickSuite(t)
	sched, err := s.ReplaySchedule()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sched.Phases()); got != 5 {
		t.Fatalf("schedule has %d phases, want 5", got)
	}
	arrivals := sched.Arrivals()
	if len(arrivals) == 0 {
		t.Fatal("schedule admits no traffic")
	}
	// The materialized count tracks the schedule's own rate integral
	// within Poisson noise (the suite's request budget scales the
	// schedule, but the burst cap and the compression floor mean the
	// integral, not cfg.Requests, is the ground truth).
	n := float64(len(arrivals))
	want := sched.ExpectedArrivals()
	if n < want*0.8 || n > want*1.2 {
		t.Fatalf("schedule admitted %d arrivals, expected ~%.0f", len(arrivals), want)
	}
	tenants := map[string]bool{}
	for _, a := range arrivals {
		tenants[a.Tenant] = true
	}
	for _, want := range []string{"ia", "va", "dag"} {
		if !tenants[want] {
			t.Fatalf("schedule never admits tenant %s", want)
		}
	}
}

func TestTrimToStationaryWindow(t *testing.T) {
	mk := func(suffix int, budgets ...int) *hints.Table {
		var hs []hints.Hint
		for i, b := range budgets {
			hs = append(hs, hints.Hint{BudgetMs: b, HeadMillicores: 1000 + 100*i, HeadPercentile: 99})
		}
		tab, err := hints.Condense(&hints.RawTable{Suffix: suffix, Weight: 1, Hints: hs})
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	b := &hints.Bundle{
		Workflow: "w", Batch: 1, Weight: 1, SLOMs: 5000, MaxMillicores: 3000,
		Tables: []*hints.Table{
			mk(0, 1000, 2000, 3000, 4000, 5000),
			mk(1, 700), // single range: must survive whole
		},
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	trimmed := trimToStationaryWindow(b)
	if err := trimmed.Validate(); err != nil {
		t.Fatalf("trimmed bundle invalid: %v", err)
	}
	// Table 0 spans [1000, 5000]; the cut at 1000+0.35*4000=2400 drops
	// the range ending at 2000 but keeps the straddling one.
	lo, _ := trimmed.Tables[0].MinBudgetMs()
	if lo <= 2000 {
		t.Fatalf("trim kept sub-window coverage down to %d ms", lo)
	}
	hi, _ := trimmed.Tables[0].MaxBudgetMs()
	if hi != 5000 {
		t.Fatalf("trim lost top coverage: max %d", hi)
	}
	if trimmed.Tables[1].Size() != 1 {
		t.Fatalf("single-range table trimmed to %d ranges", trimmed.Tables[1].Size())
	}
	// The original bundle is untouched.
	if lo, _ := b.Tables[0].MinBudgetMs(); lo != 1000 {
		t.Fatalf("trim mutated the source bundle (min %d)", lo)
	}
}

func TestReplayPointsAndConfigs(t *testing.T) {
	pts := ReplayPoints()
	cfgs := ReplayConfigs()
	if len(pts) != len(cfgs) {
		t.Fatalf("%d points for %d configs", len(pts), len(cfgs))
	}
	for i, p := range pts {
		if p.Config != cfgs[i] {
			t.Fatalf("point %d is %q, want %q", i, p.Config, cfgs[i])
		}
		if p.Description == "" {
			t.Fatalf("point %s lacks a description", p.Config)
		}
	}
}

func TestReplayScenarioShape(t *testing.T) {
	s := quickSuite(t)
	runs, err := s.ReplayScenario()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != len(ReplayConfigs()) {
		t.Fatalf("%d runs, want %d", len(runs), len(ReplayConfigs()))
	}
	tenants, err := ReplayTenants()
	if err != nil {
		t.Fatal(err)
	}
	for i, run := range runs {
		if run.Config != ReplayConfigs()[i] {
			t.Fatalf("run %d config %q, want %q", i, run.Config, ReplayConfigs()[i])
		}
		if run.Schedule == "" {
			t.Fatalf("run %s has no schedule rendering", run.Config)
		}
		if len(run.Rows) != len(tenants) {
			t.Fatalf("run %s has %d tenant rows", run.Config, len(run.Rows))
		}
		merged := 0
		for j, mt := range tenants {
			row := run.Rows[j]
			if row.Tenant != mt.Tenant || row.SLO != mt.Workflow.SLO() {
				t.Fatalf("run %s row %d is %s/%v, want %s/%v", run.Config, j, row.Tenant, row.SLO, mt.Tenant, mt.Workflow.SLO())
			}
			traces := run.Traces[mt.Tenant]
			if len(traces) != row.Requests || len(traces) == 0 {
				t.Fatalf("run %s tenant %s: %d traces vs row %d", run.Config, mt.Tenant, len(traces), row.Requests)
			}
			merged += len(traces)
			for _, tr := range traces {
				if tr.Tenant != mt.Tenant || tr.System != SysJanus {
					t.Fatalf("run %s: trace tagged %s/%s", run.Config, tr.Tenant, tr.System)
				}
			}
		}
		if run.Aggregate.Tenant != "all" || run.Aggregate.Requests != merged {
			t.Fatalf("run %s aggregate row %+v (merged %d)", run.Config, run.Aggregate, merged)
		}
		if run.Metrics.PodSeconds <= 0 || run.Metrics.Ticks == 0 || run.Metrics.PeakPods <= 0 {
			t.Fatalf("run %s metrics empty: %+v", run.Config, run.Metrics)
		}
		// All configurations replay the identical arrival stream.
		if merged != runs[0].Aggregate.Requests {
			t.Fatalf("run %s served %d requests, run %s served %d",
				run.Config, merged, runs[0].Config, runs[0].Aggregate.Requests)
		}
		switch run.Config {
		case ReplayStatic:
			if run.Metrics.PoolGrown != 0 || run.Metrics.PoolShrunk != 0 {
				t.Fatalf("static run churned pools: %+v", run.Metrics)
			}
			if len(run.Swaps) != 0 {
				t.Fatalf("static run recorded %d swap sets", len(run.Swaps))
			}
		case ReplayAutoscale:
			if run.Metrics.PoolGrown == 0 || run.Metrics.PoolShrunk == 0 {
				t.Fatalf("autoscaler run never churned pools: %+v", run.Metrics)
			}
			if len(run.Swaps) != 0 {
				t.Fatalf("autoscaler run recorded swaps without regen")
			}
		}
	}
	out := FormatReplay(runs)
	if out == "" || !strings.Contains(out, "pod-seconds") {
		t.Fatal("scenario rendering lacks pod-seconds")
	}
}

// TestReplayClosedLoopBeatsStaticPools is the tentpole's acceptance
// check: on the burst+diurnal schedule, the autoscaler+online-regen
// configuration strictly beats statically sized pools on SLO attainment
// at equal-or-lower pod-seconds, and the hint-bundle hot-swap instants
// appear in the emitted trace.
func TestReplayClosedLoopBeatsStaticPools(t *testing.T) {
	s := quickSuite(t)
	runs, err := s.ReplayScenario()
	if err != nil {
		t.Fatal(err)
	}
	byConfig := map[string]*ReplayRun{}
	for _, run := range runs {
		byConfig[run.Config] = run
	}
	static, closed := byConfig[ReplayStatic], byConfig[ReplayAutoscaleRegen]
	if static == nil || closed == nil {
		t.Fatal("missing scenario endpoints")
	}
	if closed.Aggregate.SLOAttainment <= static.Aggregate.SLOAttainment {
		t.Errorf("closed loop does not beat static pools on SLO attainment: %.4f vs %.4f",
			closed.Aggregate.SLOAttainment, static.Aggregate.SLOAttainment)
	}
	if closed.Metrics.PodSeconds > static.Metrics.PodSeconds {
		t.Errorf("closed loop spends more pod-seconds than static pools: %.1f vs %.1f",
			closed.Metrics.PodSeconds, static.Metrics.PodSeconds)
	}
	// The online regeneration visibly repairs the drifted bundle: misses
	// drop against the same arrival stream.
	if closed.Aggregate.MissRate >= static.Aggregate.MissRate {
		t.Errorf("regeneration did not reduce the miss rate: %.4f vs %.4f",
			closed.Aggregate.MissRate, static.Aggregate.MissRate)
	}
	swaps := 0
	for _, sw := range closed.Swaps {
		swaps += len(sw)
	}
	if swaps == 0 {
		t.Fatal("closed-loop run recorded no hint-bundle hot-swap")
	}
	out := FormatReplay(runs)
	if !strings.Contains(out, "hot-swap tenant=") {
		t.Fatal("hot-swap instants missing from the emitted trace")
	}
}

// dumpReplayRuns serializes every field the replay driver consumes — rows,
// provisioning metrics, swap instants, and the full per-node traces — so
// two runs compare byte for byte (the replay analogue of dumpMixRuns).
func dumpReplayRuns(runs []*ReplayRun) string {
	var b strings.Builder
	for _, run := range runs {
		fmt.Fprintf(&b, "%s sched=%q pods=%.6f peak=%d ticks=%d churn=%d/%d\n",
			run.Config, run.Schedule, run.Metrics.PodSeconds, run.Metrics.PeakPods,
			run.Metrics.Ticks, run.Metrics.PoolGrown, run.Metrics.PoolShrunk)
		rows := append(append([]ReplayRow(nil), run.Rows...), run.Aggregate)
		for _, r := range rows {
			fmt.Fprintf(&b, "  row %s req=%d p50=%v p99=%v att=%.9f mc=%.9f miss=%.9f cold=%d parked=%d\n",
				r.Tenant, r.Requests, r.P50, r.P99, r.SLOAttainment, r.MeanMillicores, r.MissRate, r.ColdStarts, r.Parked)
		}
		for _, mt := range []string{"ia", "va", "dag"} {
			for _, sw := range run.Swaps[mt] {
				fmt.Fprintf(&b, "  swap %s at=%v miss=%.9f floor=%d\n", mt, sw.At, sw.MissRate, sw.FloorMs)
			}
			for _, tr := range run.Traces[mt] {
				fmt.Fprintf(&b, "  %s req=%d arr=%v done=%v e2e=%v mc=%d dec=%d miss=%d parked=%d\n",
					mt, tr.RequestID, tr.Arrival, tr.Done, tr.E2E, tr.TotalMillicores, tr.Decisions, tr.Misses, tr.Parked)
				for _, st := range tr.Stages {
					fmt.Fprintf(&b, "    %s s%d.b%d n%d %s mc=%d start=%v end=%v cold=%t hit=%t\n",
						st.Step, st.Stage, st.Branch, st.Node, st.Function, st.Millicores, st.Start, st.End, st.Cold, st.Hit)
				}
			}
		}
	}
	return b.String()
}

// TestReplayDeterministicAcrossParallelism locks the subsystem's
// determinism: a fresh QuickSuite running the full replay grid at
// parallelism 1 and at parallelism 8 must produce byte-identical runs —
// schedule materialization, elastic pool churn, regeneration instants,
// and every served trace included.
func TestReplayDeterministicAcrossParallelism(t *testing.T) {
	grid := func(s *Suite) string {
		runs, err := s.ReplayScenario()
		if err != nil {
			t.Fatal(err)
		}
		return dumpReplayRuns(runs)
	}
	sequential := QuickSuite()
	sequential.SetParallelism(1)
	seq := grid(sequential)
	concurrent := QuickSuite()
	concurrent.SetParallelism(8)
	par := grid(concurrent)
	if seq != par {
		a, b := strings.Split(seq, "\n"), strings.Split(par, "\n")
		for i := range a {
			if i >= len(b) || a[i] != b[i] {
				t.Fatalf("replay run diverged at line %d:\n  seq: %s\n  par: %s", i, a[i], b[i])
			}
		}
		t.Fatalf("replay run diverged (lengths %d vs %d)", len(seq), len(par))
	}
}

// TestReplayWorkloadsSharedAcrossConfigs pins the paired-comparison
// setup: the cached request streams are identical objects across
// configurations, so every provisioning policy faces the same draws.
func TestReplayWorkloadsSharedAcrossConfigs(t *testing.T) {
	s := quickSuite(t)
	runs, err := s.ReplayScenario()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) < 2 {
		t.Fatal("not enough runs")
	}
	for _, tenant := range []string{"ia", "va", "dag"} {
		a, b := runs[0].Traces[tenant], runs[1].Traces[tenant]
		if len(a) != len(b) {
			t.Fatalf("tenant %s served %d vs %d requests across configs", tenant, len(a), len(b))
		}
		for i := range a {
			if a[i].Arrival != b[i].Arrival {
				t.Fatalf("tenant %s request %d arrives at %v vs %v", tenant, i, a[i].Arrival, b[i].Arrival)
			}
		}
	}
}
