package experiment

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"janus/internal/hints"
	"janus/internal/synth"
	"janus/internal/workflow"
)

// Table1 reports the paper's headline numbers: the average resource
// reduction Janus achieves over each baseline, normalized by Optimal's
// consumption — (R_baseline - R_janus) / R_optimal.
type Table1 struct {
	// Reduction[workflow][system] in percent.
	Reduction map[string]map[string]float64
}

// Table1 computes the reductions for IA and VA at concurrency 1. Both
// workflows' systems fan out over the suite's worker pool together, and
// the input-ordered results are consumed by position.
func (s *Suite) Table1() (*Table1, error) {
	workflows := []*workflow.Workflow{workflow.IntelligentAssistant(), workflow.VideoAnalyze()}
	var points []Point
	for _, base := range workflows {
		for _, sys := range AllSystems() {
			points = append(points, Point{Workflow: base, Batch: 1, System: sys})
		}
	}
	results, err := s.RunPoints(points)
	if err != nil {
		return nil, err
	}
	out := &Table1{Reduction: make(map[string]map[string]float64)}
	for wi, base := range workflows {
		runs := make(map[string]*SystemRun, len(AllSystems()))
		for si, sys := range AllSystems() {
			runs[sys] = results[wi*len(AllSystems())+si]
		}
		opt := runs[SysOptimal].MeanMillicores
		janus := runs[SysJanus].MeanMillicores
		row := make(map[string]float64)
		for _, sys := range []string{SysORION, SysGrandSLAMP, SysGrandSLAM, SysJanusMinus, SysJanusPlus} {
			row[sys] = (runs[sys].MeanMillicores - janus) / opt * 100
		}
		out.Reduction[base.Name()] = row
	}
	return out, nil
}

// String renders the table in the paper's layout.
func (t *Table1) String() string {
	var b strings.Builder
	b.WriteString("Table I: overall resource reduction by Janus (normalized by Optimal, %)\n")
	cols := []string{SysORION, SysGrandSLAMP, SysGrandSLAM, SysJanusMinus, SysJanusPlus}
	fmt.Fprintf(&b, "%6s", "")
	for _, c := range cols {
		fmt.Fprintf(&b, " %12s", c)
	}
	b.WriteString("\n")
	for _, wf := range []string{"ia", "va"} {
		fmt.Fprintf(&b, "%6s", strings.ToUpper(wf)+"(%)")
		for _, c := range cols {
			fmt.Fprintf(&b, " %12.1f", t.Reduction[wf][c])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Table2 reports the impact of the head weight on the head function's
// allocation and chosen percentile, averaged over the paper's §V-E SLO
// sweep (4-10 s): for each SLO, the suffix-0 hint serving the fresh
// workflow (remaining budget == SLO) contributes its head allocation and
// explored percentile.
type Table2 struct {
	MeanMillicores map[float64]float64
	MeanPercentile map[float64]float64
}

// Table2 synthesizes IA tables at weights 1 and 3 across budgets covering
// the 4-10 s sweep and averages the stage-0 decisions.
func (s *Suite) Table2() (*Table2, error) {
	set, err := s.Profiles(workflow.IntelligentAssistant(), 1)
	if err != nil {
		return nil, err
	}
	tmin, _ := set.BudgetRangeMs(0)
	out := &Table2{
		MeanMillicores: make(map[float64]float64),
		MeanPercentile: make(map[float64]float64),
	}
	for _, weight := range []float64{1, 3} {
		sy, err := synth.New(synth.Config{
			Profiles:         set,
			Weight:           weight,
			Mode:             synth.ModeJanus,
			BudgetStepMs:     s.cfg.BudgetStepMs,
			BudgetOverrideMs: [2]int{tmin, 10000},
		})
		if err != nil {
			return nil, err
		}
		raw, err := sy.GenerateSuffix(0)
		if err != nil {
			return nil, err
		}
		if len(raw.Hints) == 0 {
			return nil, fmt.Errorf("experiment: empty suffix-0 hints at weight %v", weight)
		}
		var mcSum, pctSum float64
		n := 0
		for sloMs := 4000; sloMs <= 10000; sloMs += 500 {
			// The stage-0 decision for a fresh workflow is the hint at the
			// largest budget not exceeding the SLO.
			idx := -1
			for i := range raw.Hints {
				if raw.Hints[i].BudgetMs <= sloMs {
					idx = i
				} else {
					break
				}
			}
			if idx < 0 {
				return nil, fmt.Errorf("experiment: SLO %dms below the weight-%v hints", sloMs, weight)
			}
			mcSum += float64(raw.Hints[idx].HeadMillicores)
			pctSum += float64(raw.Hints[idx].HeadPercentile)
			n++
		}
		out.MeanMillicores[weight] = mcSum / float64(n)
		out.MeanPercentile[weight] = pctSum / float64(n)
	}
	return out, nil
}

// String renders the table in the paper's layout.
func (t *Table2) String() string {
	var b strings.Builder
	b.WriteString("Table II: head-function allocation and percentile vs weight (IA)\n")
	fmt.Fprintf(&b, "%18s %10s %10s\n", "", "weight=1", "weight=3")
	fmt.Fprintf(&b, "%18s %10.1f %10.1f\n", "CPU (millicore)", t.MeanMillicores[1], t.MeanMillicores[3])
	fmt.Fprintf(&b, "%18s %10.1f %10.1f\n", "percentile (%)", t.MeanPercentile[1], t.MeanPercentile[3])
	return b.String()
}

// Fig8Row is one (workflow, concurrency, weight) hints-count measurement.
type Fig8Row struct {
	Workflow    string
	Batch       int
	Weight      float64
	RawHints    int
	Condensed   int
	Compression float64
}

// Fig8 counts synthesized hints before and after condensing for the
// paper's budget ranges: IA 2-7 s / 3-7 s / 4-10 s at concurrency 1/2/3 and
// VA 1.5-2 s, at weights 1 to 3 in steps of 0.5.
func (s *Suite) Fig8() ([]Fig8Row, error) {
	type point struct {
		wf    *workflow.Workflow
		batch int
		lo    int
		hi    int
	}
	points := []point{
		{workflow.IntelligentAssistant(), 1, 2000, 7000},
		{workflow.IntelligentAssistant(), 2, 3000, 7000},
		{workflow.IntelligentAssistant(), 3, 4000, 10000},
		{workflow.VideoAnalyze(), 1, 1500, 2000},
	}
	var out []Fig8Row
	for _, pt := range points {
		set, err := s.Profiles(pt.wf, pt.batch)
		if err != nil {
			return nil, err
		}
		for weight := 1.0; weight <= 3.0; weight += 0.5 {
			sy, err := synth.New(synth.Config{
				Profiles:         set,
				Weight:           weight,
				Mode:             synth.ModeJanus,
				BudgetStepMs:     s.cfg.BudgetStepMs,
				BudgetOverrideMs: [2]int{pt.lo, pt.hi},
			})
			if err != nil {
				return nil, err
			}
			res, err := sy.GenerateBundle()
			if err != nil {
				return nil, err
			}
			raw, condensed := 0, 0
			for i := range res.RawCounts {
				raw += res.RawCounts[i]
				condensed += res.CondensedCounts[i]
			}
			out = append(out, Fig8Row{
				Workflow:    pt.wf.Name(),
				Batch:       pt.batch,
				Weight:      weight,
				RawHints:    raw,
				Condensed:   condensed,
				Compression: hints.CompressionRatio(raw, condensed),
			})
		}
	}
	return out, nil
}

// FormatFig8 renders the rows.
func FormatFig8(rows []Fig8Row) string {
	var b strings.Builder
	b.WriteString("Fig 8: total hints by weight (raw -> condensed)\n")
	fmt.Fprintf(&b, "%4s %5s %7s %10s %10s %12s\n", "wf", "conc", "weight", "raw", "condensed", "compression")
	for _, r := range rows {
		fmt.Fprintf(&b, "%4s %5d %7.1f %10d %10d %11.1f%%\n",
			r.Workflow, r.Batch, r.Weight, r.RawHints, r.Condensed, r.Compression*100)
	}
	return b.String()
}

// Overhead reports §V-H's system-overhead measurements: online adaptation
// latency (paper: < 3 ms) and memory footprints.
type Overhead struct {
	// Decisions is the number of timed online decisions.
	Decisions int
	// MeanDecision / MaxDecision are wall-clock adaptation latencies.
	MeanDecision time.Duration
	MaxDecision  time.Duration
	// BundleBytes is the serialized hints bundle size.
	BundleBytes int
	// TotalRanges is the number of condensed hints resident online.
	TotalRanges int
	// SynthesisAllocMB is the cumulative heap allocated while synthesizing
	// one bundle (offline, developer side).
	SynthesisAllocMB float64
}

// Overhead measures the IA deployment.
func (s *Suite) Overhead() (*Overhead, error) {
	d, err := s.Deployment(workflow.IntelligentAssistant(), 1, synth.ModeJanus, 1)
	if err != nil {
		return nil, err
	}
	out := &Overhead{Decisions: 10000}
	// Online decision latency across the budget range.
	var total time.Duration
	for i := 0; i < out.Decisions; i++ {
		budget := time.Duration(2000+i%3000) * time.Millisecond
		suffix := i % d.Bundle().Stages()
		start := time.Now()
		if _, err := d.Adapter.Decide(suffix, budget); err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		total += elapsed
		if elapsed > out.MaxDecision {
			out.MaxDecision = elapsed
		}
	}
	out.MeanDecision = total / time.Duration(out.Decisions)
	data, err := d.Bundle().Marshal()
	if err != nil {
		return nil, err
	}
	out.BundleBytes = len(data)
	out.TotalRanges = d.Bundle().TotalRanges()
	// Offline synthesis allocation.
	set, err := s.Profiles(workflow.IntelligentAssistant(), 1)
	if err != nil {
		return nil, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	sy, err := synth.New(synth.Config{Profiles: set, Mode: synth.ModeJanus, BudgetStepMs: s.cfg.BudgetStepMs})
	if err != nil {
		return nil, err
	}
	if _, err := sy.GenerateBundle(); err != nil {
		return nil, err
	}
	runtime.ReadMemStats(&after)
	out.SynthesisAllocMB = float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20)
	return out, nil
}

// String renders the overhead summary.
func (o *Overhead) String() string {
	var b strings.Builder
	b.WriteString("System overhead (§V-H)\n")
	fmt.Fprintf(&b, "online adaptation: mean %v, max %v over %d decisions (paper: < 3 ms)\n",
		o.MeanDecision, o.MaxDecision, o.Decisions)
	fmt.Fprintf(&b, "hints bundle: %d condensed ranges, %d bytes serialized\n", o.TotalRanges, o.BundleBytes)
	fmt.Fprintf(&b, "offline synthesis allocations: %.1f MB\n", o.SynthesisAllocMB)
	return b.String()
}
