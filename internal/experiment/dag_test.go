package experiment

import (
	"context"
	"testing"
)

func TestDAGWorkflowShape(t *testing.T) {
	w, err := DAGWorkflow()
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 6 {
		t.Fatalf("%d nodes, want 6", w.Len())
	}
	// The cross edge (detect -> ocr -> fuse next to detect -> fuse) breaks
	// both special cases: this workflow exists only for the node engine.
	if w.IsChain() || w.IsSeriesParallel() {
		t.Fatal("ml-dag misclassified as chain or series-parallel")
	}
	groups := w.DecisionGroups()
	if len(groups) != 5 {
		t.Fatalf("%d decision groups, want 5", len(groups))
	}
	if len(groups[1].Nodes) != 2 {
		t.Fatalf("fork group has %d members: %+v", len(groups[1].Nodes), groups[1])
	}
	// fuse joins three predecessors from two different groups.
	var fusePreds int
	for _, g := range groups {
		if g.Nodes[0].Name == "fuse" {
			fusePreds = len(g.Preds)
		}
	}
	if fusePreds != 3 {
		t.Fatalf("fuse has %d predecessors, want 3", fusePreds)
	}
}

// TestDAGScenarioServesEverySystem is the scenario's acceptance test: a
// genuinely non-series-parallel DAG profiles, synthesizes, and serves
// under every applicable system, with the paper's ordering (late binding
// cheaper than early binding, never below the clairvoyant floor) holding
// on the new topology.
func TestDAGScenarioServesEverySystem(t *testing.T) {
	s := quickSuite(t)
	rows, err := s.DAGScenario()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(DAGSystems()) {
		t.Fatalf("%d rows, want %d", len(rows), len(DAGSystems()))
	}
	byName := map[string]DAGRow{}
	for _, r := range rows {
		byName[r.System] = r
		if r.P99 <= 0 {
			t.Errorf("%s: non-positive P99", r.System)
		}
		// Six pods at the 1000 mc floor.
		if r.MeanMillicores < 6000 {
			t.Errorf("%s: mean millicores %.0f below the 6-pod floor", r.System, r.MeanMillicores)
		}
		// One decision per decision group: 5, not 6 (detect/classify share)
		// and not 4 (ocr and fuse decide at their own readiness instants).
		if r.Decisions != 5 {
			t.Errorf("%s: %.2f decisions per request, want 5", r.System, r.Decisions)
		}
		// The objective is P99; tolerate small-sample noise as the chain
		// suites do.
		if r.ViolationRate > 0.02 {
			t.Errorf("%s: violation rate %.3f", r.System, r.ViolationRate)
		}
	}
	if byName[SysJanus].MeanMillicores >= byName[SysGrandSLAM].MeanMillicores {
		t.Errorf("janus %.0f mc not below grandslam %.0f mc",
			byName[SysJanus].MeanMillicores, byName[SysGrandSLAM].MeanMillicores)
	}
	if byName[SysJanus].MeanMillicores < byName[SysOptimal].MeanMillicores {
		t.Errorf("janus %.0f mc below the clairvoyant floor %.0f mc",
			byName[SysJanus].MeanMillicores, byName[SysOptimal].MeanMillicores)
	}
	if FormatDAGScenario(rows) == "" {
		t.Fatal("empty scenario rendering")
	}
}

// TestDAGDeterministicAcrossParallelism extends the runner's byte-identity
// requirement to the arbitrary-DAG grid: readiness scheduling, the shared
// fork decision, the cross path, and the in-degree-3 join must replay
// identically at parallelism 1 and 8.
func TestDAGDeterministicAcrossParallelism(t *testing.T) {
	points := func(t *testing.T) []Point {
		p, err := DAGPoints()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	r1 := &Runner{Suite: QuickSuite(), Parallelism: 1}
	seqRuns, err := r1.Run(context.Background(), points(t))
	if err != nil {
		t.Fatal(err)
	}
	rN := &Runner{Suite: QuickSuite(), Parallelism: 8}
	parRuns, err := rN.Run(context.Background(), points(t))
	if err != nil {
		t.Fatal(err)
	}
	if seq, par := dumpRuns(seqRuns), dumpRuns(parRuns); seq != par {
		t.Fatal("DAG grid diverged across parallelism")
	}
}
