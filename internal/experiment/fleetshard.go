package experiment

import (
	"fmt"
	"strings"
	"time"

	"janus/internal/autoscale"
	"janus/internal/platform"
	"janus/internal/replay"
)

// The sharded fleet sweep: the first sharding step the ROADMAP's fleet
// perf item calls for. The fleet grid's three provider configurations
// are already independent simulations (scheduleScenario fans them);
// this scenario additionally shards each configuration's run — the
// fleet arrival stream splits round-robin in global arrival order
// across FleetShardCells independent cells, each a full serving
// simulation (own cluster, adapters, autoscaler, regen loop) on
// FleetNodes/FleetShardCells nodes, and the per-cell results merge
// deterministically. The cells of one configuration share no state, so
// they can run on the suite's worker pool — or, eventually, on
// different machines — and the merged result is identical either way.
//
// A sharded run is its own experiment, not a bit-identical replica of
// the unsharded fleet grid: cells place over 50-node sub-fleets, so
// contention resolves cell-locally (AARC's placement-aware sweeps are
// the direction this seam exists for). The invariants the tests pin
// are exact conservation — every admitted request is served in exactly
// one cell — and byte-identical determinism at any parallelism.

const (
	// FleetShardCells is the number of independent cells the fleet
	// stream shards across. It divides FleetNodes evenly.
	FleetShardCells = 4
	// FleetShardNodes is each cell's node count.
	FleetShardNodes = FleetNodes / FleetShardCells
)

// fleetShardSpec is the per-cell serving spec: a cell-sized slice of
// the fleet substrate. The schedule field feeds serveSchedule-style
// callers only and is unused here — cells serve explicit streams.
func fleetShardSpec() scheduleSpec {
	return scheduleSpec{
		scenario:       "fleetshard",
		nodes:          FleetShardNodes,
		nodeMillicores: FleetNodeMillicores,
		schedule:       (*Suite).FleetSchedule,
	}
}

// shardArrivals splits a merged arrival stream round-robin by global
// arrival order into per-cell per-tenant arrival times. Round-robin in
// the already-deterministic global order keeps every cell's stream a
// deterministic function of the schedule alone, and spreads each
// phase's load (and each tenant's Zipf share) evenly across cells.
func shardArrivals(arrivals []replay.Arrival, cells int) []map[string][]time.Duration {
	out := make([]map[string][]time.Duration, cells)
	for c := range out {
		out[c] = make(map[string][]time.Duration)
	}
	for i, a := range arrivals {
		c := i % cells
		out[c][a.Tenant] = append(out[c][a.Tenant], a.At)
	}
	return out
}

// mergeShardRuns folds per-cell runs (in cell order) into one result:
// traces concatenate per tenant in cell order, rows are recomputed
// over the merged trace sets, pod-seconds and pool churn sum, and peak
// pods sum across cells — the provisioned worst case, since cells are
// separate sub-fleets whose peaks need not coincide. Swap logs
// concatenate in cell order.
func mergeShardRuns(config string, sched *replay.Schedule, tenants []MixTenant, cellRuns []*ReplayRun) *ReplayRun {
	run := &ReplayRun{
		Config:         config,
		Scenario:       "fleetshard",
		Nodes:          FleetShardNodes * len(cellRuns),
		NodeMillicores: FleetNodeMillicores,
		Schedule:       sched.String(),
		Swaps:          make(map[string][]autoscale.Swap),
		Traces:         make(map[string][]platform.Trace),
	}
	for _, cell := range cellRuns {
		run.Metrics.PodSeconds += cell.Metrics.PodSeconds
		run.Metrics.PeakPods += cell.Metrics.PeakPods
		run.Metrics.PoolGrown += cell.Metrics.PoolGrown
		run.Metrics.PoolShrunk += cell.Metrics.PoolShrunk
		for _, mt := range tenants {
			if ts := cell.Traces[mt.Tenant]; len(ts) > 0 {
				run.Traces[mt.Tenant] = append(run.Traces[mt.Tenant], ts...)
			}
			if sw := cell.Swaps[mt.Tenant]; len(sw) > 0 {
				run.Swaps[mt.Tenant] = append(run.Swaps[mt.Tenant], sw...)
			}
		}
	}
	var merged []platform.Trace
	for _, mt := range tenants {
		ts := run.Traces[mt.Tenant]
		if len(ts) == 0 {
			continue
		}
		run.Rows = append(run.Rows, summarizeReplayTraces(config, mt.Tenant, mt.Workflow.SLO(), ts))
		merged = append(merged, ts...)
	}
	run.Aggregate = summarizeReplayTraces(config, "all", 0, merged)
	return run
}

// serveFleetShards runs one provider configuration sharded: build the
// fleet schedule once, split its stream, serve each cell sequentially
// (configurations already fan across the worker pool), merge.
func (s *Suite) serveFleetShards(config string) (*ReplayRun, error) {
	tenants, err := ReplayTenants()
	if err != nil {
		return nil, err
	}
	sched, err := s.FleetSchedule()
	if err != nil {
		return nil, err
	}
	arrivals := sched.Arrivals()
	if len(arrivals) == 0 {
		return nil, fmt.Errorf("experiment: fleet schedule admitted no requests")
	}
	spec := fleetShardSpec()
	shards := shardArrivals(arrivals, FleetShardCells)
	cellRuns := make([]*ReplayRun, len(shards))
	for c, byTenant := range shards {
		cellRuns[c], err = s.serveStream(spec, config, tenants, sched, byTenant)
		if err != nil {
			return nil, fmt.Errorf("experiment: fleetshard %s cell %d: %w", config, c, err)
		}
	}
	return mergeShardRuns(config, sched, tenants, cellRuns), nil
}

// runFleetShardOne serves one sharded configuration through the suite's
// replay-run cache (singleflighted, like runReplayOne).
func (s *Suite) runFleetShardOne(config string) (*ReplayRun, error) {
	key := "fleetshard/" + config
	s.mu.Lock()
	run, ok := s.replays[key]
	s.mu.Unlock()
	if ok {
		return run, nil
	}
	v, err := s.flights.Do("run/"+key, func() (any, error) {
		s.mu.Lock()
		run, ok := s.replays[key]
		s.mu.Unlock()
		if ok {
			return run, nil
		}
		run, err := s.serveFleetShards(config)
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		s.replays[key] = run
		s.mu.Unlock()
		return run, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*ReplayRun), nil
}

// FleetShardScenario serves the fleet-scale schedule sharded across
// independent cells under every provider configuration (ReplayConfigs
// order, configurations fanned over the suite's worker pool). Results
// are deterministic at any parallelism.
func (s *Suite) FleetShardScenario() ([]*ReplayRun, error) {
	configs := ReplayConfigs()
	results := make([]*ReplayRun, len(configs))
	errs := make([]error, len(configs))
	fanIndexed(len(configs), s.parallelism(), func(i int) {
		results[i], errs[i] = s.runFleetShardOne(configs[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// FormatFleetShard renders the sharded sweep: the cell layout header,
// then the standard replay grid over the merged results.
func FormatFleetShard(runs []*ReplayRun) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sharding: %d cells x %d nodes per config, round-robin by global arrival order, deterministic merge (peak pods = sum of cell peaks)\n",
		FleetShardCells, FleetShardNodes)
	b.WriteString(FormatReplay(runs))
	return b.String()
}
