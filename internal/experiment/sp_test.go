package experiment

import (
	"testing"
)

func TestSPScenarioServesEverySystem(t *testing.T) {
	s := quickSuite(t)
	rows, err := s.SPScenario()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(SPSystems()) {
		t.Fatalf("%d rows, want %d", len(rows), len(SPSystems()))
	}
	byName := map[string]SPRow{}
	for _, r := range rows {
		byName[r.System] = r
		if r.P99 <= 0 {
			t.Errorf("%s: non-positive P99", r.System)
		}
		// Two stages, three branch pods, 1000mc floor per pod.
		if r.MeanMillicores < 3000 {
			t.Errorf("%s: mean millicores %.0f below the 3-pod floor", r.System, r.MeanMillicores)
		}
	}
	// Late binding beats the identical-size early binder on the fork-join
	// workload, and never undercuts the clairvoyant floor.
	if byName[SysJanus].MeanMillicores >= byName[SysGrandSLAM].MeanMillicores {
		t.Errorf("janus %.0f mc not below grandslam %.0f mc",
			byName[SysJanus].MeanMillicores, byName[SysGrandSLAM].MeanMillicores)
	}
	if byName[SysJanus].MeanMillicores < byName[SysOptimal].MeanMillicores {
		t.Errorf("janus %.0f mc below the clairvoyant floor %.0f mc",
			byName[SysJanus].MeanMillicores, byName[SysOptimal].MeanMillicores)
	}
}

func TestSPArrivalSweepMonotonePressure(t *testing.T) {
	s := quickSuite(t)
	rows, err := s.SPArrivalSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(SPArrivalRates())*len(spSweepSystems()) {
		t.Fatalf("%d rows", len(rows))
	}
	// Consumption is rate-independent by construction (identical draws,
	// identical decisions per request for early binders); confirm for the
	// fixed-size system as a determinism cross-check on the sweep plumbing.
	gsp := map[float64]float64{}
	for _, r := range rows {
		if r.System == SysGrandSLAMP {
			gsp[r.RatePerSec] = r.MeanMillicores
		}
	}
	if len(gsp) != len(SPArrivalRates()) {
		t.Fatalf("grandslam+ missing rates: %v", gsp)
	}
}

func TestSPPointsGrid(t *testing.T) {
	points, err := SPPoints()
	if err != nil {
		t.Fatal(err)
	}
	want := len(SPSystems()) + len(SPArrivalRates())*len(spSweepSystems())
	if len(points) != want {
		t.Fatalf("%d points, want %d", len(points), want)
	}
	seen := map[string]bool{}
	for _, p := range points {
		if seen[p.String()] {
			t.Fatalf("duplicate point %s", p)
		}
		seen[p.String()] = true
		if !p.Workflow.IsSeriesParallel() || p.Workflow.IsChain() {
			t.Fatalf("point %s is not a fork-join workflow", p)
		}
	}
}
