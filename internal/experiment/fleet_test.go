package experiment

import (
	"strings"
	"testing"
	"time"
)

// tinyFleetSuite keeps the fleet grid affordable for unit tests and the
// race job: the rate floor in FleetSchedule admits ~4.7k requests over
// the full 200-node, ~3.5-minute shape — the same code paths as the
// paper-scale grid at ~50x less work.
func tinyFleetSuite() *Suite {
	return NewSuiteWith(Config{
		Seed:              1,
		ProfilerSamples:   600,
		BudgetStepMs:      20,
		Requests:          20,
		ArrivalRatePerSec: 2,
	})
}

func TestFleetScheduleShapeAndScaling(t *testing.T) {
	paper := NewSuite()
	sched, err := paper.FleetSchedule()
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.Duration(); got != 212*time.Second {
		t.Fatalf("fleet horizon = %v, want 212s", got)
	}
	arrivals := sched.Arrivals()
	// The paper-scale grid is a fleet-sized stream: hundreds of thousands
	// of requests, not the replay scenario's hundreds.
	if len(arrivals) < 100_000 {
		t.Fatalf("paper-scale fleet admits %d requests, want >= 100k", len(arrivals))
	}
	// Rates scale linearly with the suite's request budget...
	half, err := NewSuiteWith(Config{Seed: 1, ProfilerSamples: 600, BudgetStepMs: 20,
		Requests: 500, ArrivalRatePerSec: 2}).FleetSchedule()
	if err != nil {
		t.Fatal(err)
	}
	halfArrivals := half.Arrivals()
	ratio := float64(len(halfArrivals)) / float64(len(arrivals))
	if ratio < 0.4 || ratio > 0.6 {
		t.Fatalf("half-budget suite admits %.2fx the requests, want ~0.5x", ratio)
	}
	// ...down to a floor that keeps tiny test suites serving every tenant.
	tinySched, err := tinyFleetSuite().FleetSchedule()
	if err != nil {
		t.Fatal(err)
	}
	tinyArrivals := tinySched.Arrivals()
	if len(tinyArrivals) < 1000 {
		t.Fatalf("floored fleet schedule admits %d requests, want >= 1000", len(tinyArrivals))
	}
}

func TestFleetScenarioSmallSuite(t *testing.T) {
	runs, err := tinyFleetSuite().FleetScenario()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != len(ReplayConfigs()) {
		t.Fatalf("fleet grid has %d runs, want %d", len(runs), len(ReplayConfigs()))
	}
	for i, run := range runs {
		if run.Config != ReplayConfigs()[i] {
			t.Fatalf("run %d is %q, want %q (ReplayConfigs order)", i, run.Config, ReplayConfigs()[i])
		}
		if run.Scenario != "fleet" {
			t.Fatalf("run %q scenario = %q, want fleet", run.Config, run.Scenario)
		}
		if run.Nodes != FleetNodes || run.NodeMillicores != FleetNodeMillicores {
			t.Fatalf("run %q cluster = %d x %d, want %d x %d",
				run.Config, run.Nodes, run.NodeMillicores, FleetNodes, FleetNodeMillicores)
		}
		if len(run.Rows) == 0 {
			t.Fatalf("run %q has no per-tenant rows", run.Config)
		}
		for _, row := range run.Rows {
			if row.Requests == 0 {
				t.Fatalf("run %q tenant %s served no requests", run.Config, row.Tenant)
			}
			if row.SLOAttainment <= 0 || row.SLOAttainment > 1 {
				t.Fatalf("run %q tenant %s SLO attainment %v outside (0, 1]",
					run.Config, row.Tenant, row.SLOAttainment)
			}
		}
		if run.Metrics.PodSeconds <= 0 || run.Metrics.PeakPods <= 0 {
			t.Fatalf("run %q carries no provisioning metrics", run.Config)
		}
	}
}

// TestFleetDeterministicAcrossParallelism extends the replay grid's
// determinism lock to fleet scale: 200 nodes, thousands of parked
// acquisitions, and the indexed cluster must replay byte for byte at any
// worker count.
func TestFleetDeterministicAcrossParallelism(t *testing.T) {
	grid := func(s *Suite) string {
		runs, err := s.FleetScenario()
		if err != nil {
			t.Fatal(err)
		}
		return dumpReplayRuns(runs)
	}
	sequential := tinyFleetSuite()
	sequential.SetParallelism(1)
	seq := grid(sequential)
	concurrent := tinyFleetSuite()
	concurrent.SetParallelism(8)
	par := grid(concurrent)
	if seq != par {
		a, b := strings.Split(seq, "\n"), strings.Split(par, "\n")
		for i := range a {
			if i >= len(b) || a[i] != b[i] {
				t.Fatalf("fleet run diverged at line %d:\n  seq: %s\n  par: %s", i, a[i], b[i])
			}
		}
		t.Fatalf("fleet run diverged (lengths %d vs %d)", len(seq), len(par))
	}
}

func TestFleetPointsDescribeFleetScale(t *testing.T) {
	pts := FleetPoints()
	if len(pts) != len(ReplayPoints()) {
		t.Fatalf("FleetPoints has %d entries, want %d", len(pts), len(ReplayPoints()))
	}
	for _, p := range pts {
		if !strings.Contains(p.Description, "fleet scale") {
			t.Fatalf("point %q does not mention fleet scale: %q", p.Config, p.Description)
		}
	}
}
