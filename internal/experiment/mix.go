package experiment

import (
	"fmt"
	"strings"
	"time"

	"janus/internal/cluster"
	"janus/internal/platform"
	"janus/internal/workflow"
)

// The tenant-mix scenario: the paper's provider serves *many* tenants'
// workflows on one shared substrate, and that contention — shared warm
// pools, shared node millicores, co-location-driven interference — is what
// motivates bilateral adaptation. This file serves three tenants (the IA
// chain, the VA chain, and the series-parallel Video Analyze DAG, each
// with its own SLO) as one merged arrival stream on one multi-node
// cluster via platform.Executor.RunMixed, then splits per-tenant and
// aggregate metrics out of the mixed trace set. A node-count scale-out
// sweep and a placement-policy comparison ride on the same machinery.

// MixTenant pairs a tenant name with the workflow it serves.
type MixTenant struct {
	Tenant   string
	Workflow *workflow.Workflow
}

// MixTenants returns the scenario's tenants: the IA chain (3 s SLO), the
// VA chain (1.5 s SLO), and the series-parallel Video Analyze DAG (1.1 s
// SLO). VA and VA-SP deliberately share functions (fe, icl, ico): their
// pods draw from the same warm pools and inflate each other's co-location
// census, the same-function contention the paper's interference study
// (Fig 1c) measures.
func MixTenants() ([]MixTenant, error) {
	sp, err := SPWorkflow()
	if err != nil {
		return nil, err
	}
	return []MixTenant{
		{Tenant: "ia", Workflow: workflow.IntelligentAssistant()},
		{Tenant: "va", Workflow: workflow.VideoAnalyze()},
		{Tenant: "va-sp", Workflow: sp},
	}, nil
}

// MixSystems lists the systems of the tenant-mix scenario, in display
// order. Every tenant runs under the same system within a run — the
// paired comparison is across systems, not across tenants. ORION sits out
// for the same reason as in the SP scenario: the series-parallel tenant's
// composite profiles do not retain the raw samples its distribution model
// needs.
func MixSystems() []string {
	return []string{SysOptimal, SysJanus, SysJanusPlus, SysJanusMinus, SysGrandSLAMP, SysGrandSLAM}
}

// mixSweepSystems are the systems contrasted in the scale-out sweep: the
// late-binding adapter, the strongest early binder, and the clairvoyant
// floor.
func mixSweepSystems() []string { return []string{SysOptimal, SysJanus, SysGrandSLAMP} }

// MixNodeCounts returns the node counts of the scale-out sweep.
func MixNodeCounts() []int { return []int{1, 2, 4} }

const (
	// MixNodeMillicores is each mix-cluster node's allocatable CPU: half
	// the paper's 52-core platform server, so the default two-node mix
	// matches the paper's aggregate capacity while making placement (and
	// capacity fragmentation) meaningful.
	MixNodeMillicores = 26000
	// MixDefaultNodes is the scenario's node count.
	MixDefaultNodes = 2
)

// MixTenantRow summarizes one tenant's share of a mixed trace set (or the
// aggregate across tenants, under the name "all").
type MixTenantRow struct {
	Tenant string
	// SLO is the tenant's latency objective; zero on the aggregate row
	// (tenants' objectives differ).
	SLO            time.Duration
	P50            time.Duration
	P99            time.Duration
	ViolationRate  float64
	MeanMillicores float64
	MissRate       float64
	ColdStarts     int
	Parked         int
}

// MixRun is one mixed serving run: every tenant under one system on one
// shared cluster.
type MixRun struct {
	System    string
	Nodes     int
	Placement cluster.Placement
	// Tenants holds per-tenant summaries in MixTenants order; Aggregate
	// summarizes the merged trace set.
	Tenants   []MixTenantRow
	Aggregate MixTenantRow
	// Traces is the mixed trace set split by tenant.
	Traces map[string][]platform.Trace
}

// summarizeMixTraces reduces one tenant's (or the merged) trace slice to a
// row. Violation is per-trace against its own SLO, so the aggregate row is
// meaningful even though tenants' objectives differ.
func summarizeMixTraces(tenant string, slo time.Duration, traces []platform.Trace) MixTenantRow {
	e2e := platform.E2ESample(traces)
	row := MixTenantRow{
		Tenant:         tenant,
		SLO:            slo,
		P50:            e2e.PercentileDuration(50),
		P99:            e2e.PercentileDuration(99),
		ViolationRate:  platform.SLOViolationRate(traces),
		MeanMillicores: platform.MeanMillicores(traces),
		MissRate:       platform.MissRate(traces),
	}
	for i := range traces {
		row.Parked += traces[i].Parked
		for _, st := range traces[i].Stages {
			if st.Cold {
				row.ColdStarts++
			}
		}
	}
	return row
}

// mixSpec identifies one mixed run.
type mixSpec struct {
	system    string
	nodes     int
	placement cluster.Placement
}

func (m mixSpec) key() string {
	return fmt.Sprintf("mix/%s/n%d/%s", m.system, m.nodes, m.placement)
}

// runMixedOne serves the full tenant mix under one system on one cluster
// shape, filling the mixed-run cache. Concurrent callers of the same spec
// share one serving run (singleflight), mirroring runPointOne.
func (s *Suite) runMixedOne(spec mixSpec) (*MixRun, error) {
	key := spec.key()
	s.mu.Lock()
	run, ok := s.mixed[key]
	s.mu.Unlock()
	if ok {
		return run, nil
	}
	v, err := s.flights.Do("run/"+key, func() (any, error) {
		s.mu.Lock()
		run, ok := s.mixed[key]
		s.mu.Unlock()
		if ok {
			return run, nil
		}
		tenants, err := MixTenants()
		if err != nil {
			return nil, err
		}
		workloads := make([]platform.TenantWorkload, len(tenants))
		for i, mt := range tenants {
			reqs, err := s.Workload(mt.Workflow, 1)
			if err != nil {
				return nil, err
			}
			alloc, err := s.allocator(spec.system, mt.Workflow, 1)
			if err != nil {
				return nil, fmt.Errorf("experiment: %s for tenant %s: %w", spec.system, mt.Tenant, err)
			}
			workloads[i] = platform.TenantWorkload{Tenant: mt.Tenant, Requests: reqs, Allocator: alloc}
		}
		cfg := platform.DefaultExecutorConfig()
		cfg.Cluster = cluster.Config{
			Nodes:          spec.nodes,
			NodeMillicores: MixNodeMillicores,
			PoolSize:       suitePoolSize,
			IdleMillicores: 100,
			Placement:      spec.placement,
		}
		cfg.Seed = s.cfg.Seed
		ex, err := platform.NewExecutor(cfg, s.functions)
		if err != nil {
			return nil, err
		}
		byTenant, err := ex.RunMixed(workloads)
		if err != nil {
			return nil, fmt.Errorf("experiment: mixed run %s: %w", key, err)
		}
		run = &MixRun{
			System:    spec.system,
			Nodes:     spec.nodes,
			Placement: spec.placement,
			Traces:    byTenant,
		}
		var merged []platform.Trace
		for _, mt := range tenants {
			traces := byTenant[mt.Tenant]
			run.Tenants = append(run.Tenants, summarizeMixTraces(mt.Tenant, mt.Workflow.SLO(), traces))
			merged = append(merged, traces...)
		}
		run.Aggregate = summarizeMixTraces("all", 0, merged)
		s.mu.Lock()
		s.mixed[key] = run
		s.mu.Unlock()
		return run, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*MixRun), nil
}

// runMixedSpecs fans mixed runs out over the suite's worker pool and
// returns results in input order — the same determinism-preserving shape
// as Runner.Run, for specs instead of points.
func (s *Suite) runMixedSpecs(specs []mixSpec) ([]*MixRun, error) {
	results := make([]*MixRun, len(specs))
	errs := make([]error, len(specs))
	fanIndexed(len(specs), s.parallelism(), func(i int) {
		results[i], errs[i] = s.runMixedOne(specs[i])
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiment: mixed run %s: %w", specs[i].key(), err)
		}
	}
	return results, nil
}

// MixScenario serves the full tenant mix — every MixTenants workflow as
// one merged arrival stream — under each scenario system on the shared
// MixDefaultNodes-node cluster, and splits per-tenant plus aggregate
// metrics out of each mixed trace set.
func (s *Suite) MixScenario() ([]*MixRun, error) {
	var specs []mixSpec
	for _, sys := range MixSystems() {
		specs = append(specs, mixSpec{system: sys, nodes: MixDefaultNodes, placement: cluster.PlacementSpread})
	}
	return s.runMixedSpecs(specs)
}

// MixScaleOut sweeps the cluster's node count for the sweep systems: the
// same merged workload on 1, 2, and 4 nodes of MixNodeMillicores each, so
// scaling out relieves (and scaling in concentrates) cross-tenant
// contention.
func (s *Suite) MixScaleOut() ([]*MixRun, error) {
	var specs []mixSpec
	for _, nodes := range MixNodeCounts() {
		for _, sys := range mixSweepSystems() {
			specs = append(specs, mixSpec{system: sys, nodes: nodes, placement: cluster.PlacementSpread})
		}
	}
	return s.runMixedSpecs(specs)
}

// MixPlacement contrasts the two placement policies for the late-binding
// adapter on the default mix cluster: spread minimizes same-function
// co-location (less interference), first-fit consolidates (more
// interference, less fragmentation).
func (s *Suite) MixPlacement() ([]*MixRun, error) {
	return s.runMixedSpecs([]mixSpec{
		{system: SysJanus, nodes: MixDefaultNodes, placement: cluster.PlacementSpread},
		{system: SysJanus, nodes: MixDefaultNodes, placement: cluster.PlacementFirstFit},
	})
}

// FormatMixScenario renders per-tenant and aggregate rows per system.
func FormatMixScenario(runs []*MixRun) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tenant mix: ia + va + va-sp merged on %d node(s) x %d millicores (placement %s)\n",
		MixDefaultNodes, MixNodeMillicores, cluster.PlacementSpread)
	fmt.Fprintf(&b, "%-11s %-6s %6s %8s %8s %10s %12s %9s %6s %7s\n",
		"system", "tenant", "slo", "P50", "P99", "viol.rate", "millicores", "missrate", "cold", "parked")
	for _, run := range runs {
		rows := append(append([]MixTenantRow(nil), run.Tenants...), run.Aggregate)
		for _, r := range rows {
			slo := "-"
			if r.SLO > 0 {
				slo = fmt.Sprintf("%d", r.SLO.Milliseconds())
			}
			fmt.Fprintf(&b, "%-11s %-6s %6s %8d %8d %10.4f %12.1f %9.4f %6d %7d\n",
				run.System, r.Tenant, slo, r.P50.Milliseconds(), r.P99.Milliseconds(),
				r.ViolationRate, r.MeanMillicores, r.MissRate, r.ColdStarts, r.Parked)
		}
	}
	return b.String()
}

// FormatMixScaleOut renders the node-count sweep: aggregate metrics plus
// the per-tenant violation split.
func FormatMixScaleOut(runs []*MixRun) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Mix scale-out: node-count sweep at %d millicores per node (placement %s)\n",
		MixNodeMillicores, cluster.PlacementSpread)
	fmt.Fprintf(&b, "%5s %-11s %8s %10s %12s %6s %7s  %s\n",
		"nodes", "system", "P99", "viol.rate", "millicores", "cold", "parked", "viol per tenant")
	for _, run := range runs {
		fmt.Fprintf(&b, "%5d %-11s %8d %10.4f %12.1f %6d %7d  %s\n",
			run.Nodes, run.System, run.Aggregate.P99.Milliseconds(), run.Aggregate.ViolationRate,
			run.Aggregate.MeanMillicores, run.Aggregate.ColdStarts, run.Aggregate.Parked,
			formatTenantViolations(run.Tenants))
	}
	return b.String()
}

// FormatMixPlacement renders the placement-policy comparison.
func FormatMixPlacement(runs []*MixRun) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Mix placement: %s on %d node(s), spread vs first-fit\n", SysJanus, MixDefaultNodes)
	fmt.Fprintf(&b, "%-9s %8s %10s %12s %6s %7s  %s\n",
		"placement", "P99", "viol.rate", "millicores", "cold", "parked", "viol per tenant")
	for _, run := range runs {
		fmt.Fprintf(&b, "%-9s %8d %10.4f %12.1f %6d %7d  %s\n",
			run.Placement, run.Aggregate.P99.Milliseconds(), run.Aggregate.ViolationRate,
			run.Aggregate.MeanMillicores, run.Aggregate.ColdStarts, run.Aggregate.Parked,
			formatTenantViolations(run.Tenants))
	}
	return b.String()
}

func formatTenantViolations(rows []MixTenantRow) string {
	parts := make([]string, len(rows))
	for i, r := range rows {
		parts[i] = fmt.Sprintf("%s=%.4f", r.Tenant, r.ViolationRate)
	}
	return strings.Join(parts, " ")
}
