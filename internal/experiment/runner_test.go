package experiment

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"janus/internal/workflow"
)

// dumpRuns serializes every field the drivers consume — summaries plus the
// full per-stage traces — so two runs compare byte for byte.
func dumpRuns(runs []*SystemRun) string {
	var b strings.Builder
	for _, r := range runs {
		fmt.Fprintf(&b, "%s slo=%v mc=%.9f p50=%v p99=%v viol=%.9f miss=%.9f\n",
			r.System, r.SLO, r.MeanMillicores, r.P50E2E, r.P99E2E, r.ViolationRate, r.MissRate)
		for _, tr := range r.Traces {
			fmt.Fprintf(&b, "  req=%d arr=%v done=%v e2e=%v mc=%d dec=%d miss=%d parked=%d\n",
				tr.RequestID, tr.Arrival, tr.Done, tr.E2E, tr.TotalMillicores, tr.Decisions, tr.Misses, tr.Parked)
			for _, st := range tr.Stages {
				fmt.Fprintf(&b, "    s%d.b%d %s mc=%d start=%v end=%v startup=%v lat=%v cold=%t hit=%t\n",
					st.Stage, st.Branch, st.Function, st.Millicores, st.Start, st.End, st.Startup, st.Latency, st.Cold, st.Hit)
			}
		}
	}
	return b.String()
}

// TestRunnerDeterministicAcrossParallelism is the tentpole's acceptance
// test: a fresh QuickSuite serving the same points at parallelism 1 and at
// parallelism 8 must produce byte-identical results — the pre-sampled
// request randomness makes every point independent, so concurrency can
// only reorder work, never change it. The grid covers every chain system
// on IA plus the full series-parallel scenario (fork-join serving and the
// arrival-rate sweep), so SP branch fan-out, joins, and capacity parking
// are all under the byte-identity requirement.
func TestRunnerDeterministicAcrossParallelism(t *testing.T) {
	points := func() []Point {
		var out []Point
		for _, sys := range AllSystems() {
			out = append(out, Point{Workflow: workflow.IntelligentAssistant(), Batch: 1, System: sys})
		}
		sp, err := SPPoints()
		if err != nil {
			t.Fatal(err)
		}
		return append(out, sp...)
	}
	sequential := QuickSuite()
	r1 := &Runner{Suite: sequential, Parallelism: 1}
	seqRuns, err := r1.Run(context.Background(), points())
	if err != nil {
		t.Fatal(err)
	}
	concurrent := QuickSuite()
	rN := &Runner{Suite: concurrent, Parallelism: 8}
	parRuns, err := rN.Run(context.Background(), points())
	if err != nil {
		t.Fatal(err)
	}
	seq, par := dumpRuns(seqRuns), dumpRuns(parRuns)
	if seq != par {
		// Find the first divergent line for a readable failure.
		a, b := strings.Split(seq, "\n"), strings.Split(par, "\n")
		for i := range a {
			if i >= len(b) || a[i] != b[i] {
				t.Fatalf("parallel run diverged at line %d:\n  seq: %s\n  par: %s", i, a[i], b[i])
			}
		}
		t.Fatalf("parallel run diverged (lengths %d vs %d)", len(seq), len(par))
	}
}

func TestRunnerResultsInInputOrder(t *testing.T) {
	s := quickSuite(t)
	points := []Point{
		{Workflow: workflow.IntelligentAssistant(), Batch: 1, System: SysGrandSLAM},
		{Workflow: workflow.IntelligentAssistant(), Batch: 1, System: SysOptimal},
		{Workflow: workflow.IntelligentAssistant(), Batch: 1, System: SysJanus},
	}
	r := &Runner{Suite: s, Parallelism: 3}
	runs, err := r.Run(context.Background(), points)
	if err != nil {
		t.Fatal(err)
	}
	for i, run := range runs {
		if run.System != points[i].System {
			t.Fatalf("result %d is %s, want %s", i, run.System, points[i].System)
		}
	}
}

func TestRunnerProgress(t *testing.T) {
	s := quickSuite(t)
	var events []Progress
	r := &Runner{
		Suite:       s,
		Parallelism: 4,
		OnProgress:  func(p Progress) { events = append(events, p) },
	}
	points := make([]Point, 0, len(AllSystems()))
	for _, sys := range AllSystems() {
		points = append(points, Point{Workflow: workflow.IntelligentAssistant(), Batch: 1, System: sys})
	}
	if _, err := r.Run(context.Background(), points); err != nil {
		t.Fatal(err)
	}
	if len(events) != len(points) {
		t.Fatalf("%d progress events, want %d", len(events), len(points))
	}
	for i, ev := range events {
		if ev.Done != i+1 || ev.Total != len(points) {
			t.Fatalf("event %d: Done=%d Total=%d", i, ev.Done, ev.Total)
		}
		if ev.Err != nil || ev.Run == nil {
			t.Fatalf("event %d: err=%v run=%v", i, ev.Err, ev.Run)
		}
	}
}

func TestRunnerCancellation(t *testing.T) {
	s := quickSuite(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := &Runner{Suite: s, Parallelism: 2}
	// Uncached points: a cancelled context must stop the run before any
	// serving work happens.
	_, err := r.Run(ctx, []Point{
		{Workflow: workflow.IntelligentAssistant(), Batch: 1, System: "nonexistent-a"},
		{Workflow: workflow.IntelligentAssistant(), Batch: 1, System: "nonexistent-b"},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunnerUnknownSystemFails(t *testing.T) {
	s := quickSuite(t)
	r := &Runner{Suite: s}
	_, err := r.Run(context.Background(), []Point{
		{Workflow: workflow.IntelligentAssistant(), Batch: 1, System: "no-such-system"},
	})
	if err == nil || !strings.Contains(err.Error(), "no-such-system") {
		t.Fatalf("err = %v, want unknown-system failure", err)
	}
}

func TestRunnerValidation(t *testing.T) {
	s := quickSuite(t)
	r := &Runner{Suite: s}
	if _, err := r.Run(context.Background(), []Point{{Batch: 1, System: SysJanus}}); err == nil {
		t.Error("nil workflow accepted")
	}
	if _, err := r.Run(context.Background(), []Point{{Workflow: workflow.IntelligentAssistant(), System: SysJanus}}); err == nil {
		t.Error("batch 0 accepted")
	}
	if _, err := (&Runner{}).Run(context.Background(), nil); err == nil {
		t.Error("nil suite accepted")
	}
	runs, err := r.Run(context.Background(), nil)
	if err != nil || runs != nil {
		t.Errorf("empty point set: (%v, %v)", runs, err)
	}
}

func TestEvaluationPointsCoverTheGrid(t *testing.T) {
	points, err := EvaluationPoints()
	if err != nil {
		t.Fatal(err)
	}
	if want := len(panels()) * len(AllSystems()); len(points) != want {
		t.Fatalf("%d points, want %d", len(points), want)
	}
	seen := make(map[string]bool)
	for _, p := range points {
		if seen[p.String()] {
			t.Fatalf("duplicate point %s", p)
		}
		seen[p.String()] = true
	}
}
