package autoscale

import (
	"fmt"
	"testing"
	"time"

	"janus/internal/adapter"
	"janus/internal/hints"
	"janus/internal/platform"
)

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{MinPool: -1, MaxPool: 4},
		{MinPool: 4, MaxPool: 2},
		{MinPool: 0, MaxPool: 0},
		{MinPool: 1, MaxPool: 4, LowUtilization: 1.5},
		{MinPool: 1, MaxPool: 4, Cooldown: -time.Second},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, cfg)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func stats(fn string, busy, warm, target, queued, cold int) platform.ReplayFunctionStats {
	return platform.ReplayFunctionStats{Function: fn, Busy: busy, Warm: warm, Target: target, Queued: queued, ColdStarts: cold}
}

func TestTargetsScaleUpOnColdStartDeficit(t *testing.T) {
	a, err := New(Config{MinPool: 1, MaxPool: 10, LowUtilization: 0.5, Cooldown: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	out := a.Targets(time.Second, []platform.ReplayFunctionStats{
		stats("hot", 4, 0, 3, 0, 3), // 3 cold starts: the pool was 3 pods short
		stats("ok", 1, 2, 3, 0, 0),  // no pressure, occupancy 1/3 but inside cooldown
	})
	if out["hot"] != 6 {
		t.Fatalf("dry pool target %d, want 3+3=6", out["hot"])
	}
	if out["ok"] != 3 {
		t.Fatalf("quiet pool resized to %d inside the cooldown", out["ok"])
	}
	// Deficits beyond MaxPool clamp.
	out = a.Targets(2*time.Second, []platform.ReplayFunctionStats{stats("hot", 9, 0, 8, 0, 50)})
	if out["hot"] != 10 {
		t.Fatalf("clamped target %d, want MaxPool 10", out["hot"])
	}
}

func TestTargetsShedIdleOnCapacityContention(t *testing.T) {
	a, err := New(Config{MinPool: 1, MaxPool: 10, LowUtilization: 0.5, Cooldown: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// Parked acquisitions mean node capacity ran out: warm pods cannot
	// help, so the controller sheds one — immediately, cooldown or not —
	// even when cold starts happened in the same window (an overloaded
	// cluster must not ratchet pools up).
	out := a.Targets(time.Second, []platform.ReplayFunctionStats{
		stats("parked", 5, 2, 6, 4, 0),
		stats("both", 5, 2, 6, 4, 2),
	})
	if out["parked"] != 5 {
		t.Fatalf("capacity-contended pool target %d, want 5", out["parked"])
	}
	if out["both"] != 5 {
		t.Fatalf("overloaded pool target %d, want 5 (no ratchet)", out["both"])
	}
}

func TestTargetsScaleDownAfterCooldown(t *testing.T) {
	a, err := New(Config{MinPool: 1, MaxPool: 10, LowUtilization: 0.5, Cooldown: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	idle := stats("f", 0, 6, 6, 0, 0)
	// Before the cooldown (measured from the run start) the pool holds.
	if out := a.Targets(time.Second, []platform.ReplayFunctionStats{idle}); out["f"] != 6 {
		t.Fatalf("pool shrank inside the initial cooldown: %d", out["f"])
	}
	// Past the cooldown it drains one pod per tick down to MinPool.
	if out := a.Targets(6*time.Second, []platform.ReplayFunctionStats{idle}); out["f"] != 5 {
		t.Fatalf("first shrink target %d, want 5", out["f"])
	}
	cur := idle
	now := 7 * time.Second
	for i := 0; i < 20; i++ {
		out := a.Targets(now, []platform.ReplayFunctionStats{cur})
		cur.Target = out[cur.Function]
		cur.Warm = cur.Target
		now += time.Second
	}
	if cur.Target != 1 {
		t.Fatalf("idle pool drained to %d, want MinPool 1", cur.Target)
	}
	// Busy pools do not shrink even past the cooldown.
	busy := stats("g", 5, 1, 6, 0, 0)
	if out := a.Targets(time.Minute, []platform.ReplayFunctionStats{busy}); out["g"] != 6 {
		t.Fatalf("high-occupancy pool shrank to %d", out["g"])
	}
}

func TestTargetsCooldownRestartsOnGrowth(t *testing.T) {
	a, err := New(Config{MinPool: 1, MaxPool: 10, LowUtilization: 0.5, Cooldown: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// Growth at t=8s: the pool must hold until t=13s even when idle.
	if out := a.Targets(8*time.Second, []platform.ReplayFunctionStats{stats("f", 2, 0, 2, 0, 3)}); out["f"] != 5 {
		t.Fatalf("growth target %d", out["f"])
	}
	idle := stats("f", 0, 5, 5, 0, 0)
	if out := a.Targets(12*time.Second, []platform.ReplayFunctionStats{idle}); out["f"] != 5 {
		t.Fatalf("pool shrank %v after growing (cooldown 5s): %d", 4*time.Second, out["f"])
	}
	if out := a.Targets(13*time.Second, []platform.ReplayFunctionStats{idle}); out["f"] != 4 {
		t.Fatalf("pool held past the cooldown: %d", out["f"])
	}
}

// regenBundle builds a minimal valid bundle whose suffix-0 table covers
// budgets [fromMs, 5000].
func regenBundle(t *testing.T, fromMs int) *hints.Bundle {
	t.Helper()
	tab, err := hints.Condense(&hints.RawTable{Suffix: 0, Weight: 1, Hints: []hints.Hint{
		{BudgetMs: fromMs, HeadMillicores: 3000, HeadPercentile: 99},
		{BudgetMs: 5000, HeadMillicores: 1000, HeadPercentile: 80},
	}})
	if err != nil {
		t.Fatal(err)
	}
	b := &hints.Bundle{Workflow: "w", Batch: 1, Weight: 1, SLOMs: 5000, MaxMillicores: 3000, Tables: []*hints.Table{tab}}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewRegenValidation(t *testing.T) {
	a, err := adapter.New(regenBundle(t, 2000))
	if err != nil {
		t.Fatal(err)
	}
	synth := func(int) (*hints.Bundle, error) { return regenBundle(t, 100), nil }
	if _, err := NewRegen(RegenConfig{Synthesize: synth}); err == nil {
		t.Fatal("regen without adapter accepted")
	}
	if _, err := NewRegen(RegenConfig{Adapter: a}); err == nil {
		t.Fatal("regen without synthesize hook accepted")
	}
	if _, err := NewRegen(RegenConfig{Adapter: a, Synthesize: synth, Threshold: 1.5}); err == nil {
		t.Fatal("threshold outside (0,1) accepted")
	}
	if _, err := NewRegen(RegenConfig{Adapter: a, Synthesize: synth, Latency: -time.Second}); err == nil {
		t.Fatal("negative latency accepted")
	}
}

func TestRegenTriggersSwapAndRecordsInstant(t *testing.T) {
	a, err := adapter.New(regenBundle(t, 2000))
	if err != nil {
		t.Fatal(err)
	}
	var floors []int
	r, err := NewRegen(RegenConfig{
		Adapter:      a,
		MinDecisions: 10,
		Latency:      500 * time.Millisecond,
		Synthesize: func(floorMs int) (*hints.Bundle, error) {
			floors = append(floors, floorMs)
			return regenBundle(t, floorMs), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Quiet adapter: no action.
	if acts := r.Tick(time.Second); acts != nil {
		t.Fatalf("tick on a quiet adapter returned %d actions", len(acts))
	}
	// Drifted traffic: budgets far below the table minimum, all misses.
	for i := 0; i < 12; i++ {
		if _, err := a.Decide(0, 400*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	acts := r.Tick(2 * time.Second)
	if len(acts) != 1 || acts[0].Delay != 500*time.Millisecond {
		t.Fatalf("drifted tick actions = %+v", acts)
	}
	if len(floors) != 1 || floors[0] != 400 {
		t.Fatalf("synthesize floors = %v, want [400]", floors)
	}
	// While the regeneration is in flight, further ticks stay silent.
	if again := r.Tick(2500 * time.Millisecond); again != nil {
		t.Fatal("tick re-fired while a regeneration was in flight")
	}
	// The swap lands: the new bundle covers the drifted budgets and the
	// instant is recorded.
	acts[0].Do(2500 * time.Millisecond)
	swaps := r.Swaps()
	if len(swaps) != 1 {
		t.Fatalf("%d swaps recorded", len(swaps))
	}
	if swaps[0].At != 2500*time.Millisecond || swaps[0].FloorMs != 400 || swaps[0].MissRate != 1 {
		t.Fatalf("swap record %+v", swaps[0])
	}
	if d, err := a.Decide(0, 450*time.Millisecond); err != nil || !d.Hit {
		t.Fatalf("post-swap decision on drifted budget: %+v, %v", d, err)
	}
	// A fresh epoch of drifted misses can trigger a second regeneration.
	for i := 0; i < 12; i++ {
		if _, err := a.Decide(0, 100*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if acts := r.Tick(4 * time.Second); len(acts) != 1 {
		t.Fatal("regen did not re-arm after the swap")
	}
}

func TestRegenSynthesizeFailureKeepsServing(t *testing.T) {
	a, err := adapter.New(regenBundle(t, 2000))
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	r, err := NewRegen(RegenConfig{
		Adapter:      a,
		MinDecisions: 5,
		Synthesize: func(int) (*hints.Bundle, error) {
			calls++
			return nil, fmt.Errorf("profiling unavailable")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := a.Decide(0, 100*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if acts := r.Tick(time.Second); acts != nil {
		t.Fatal("failed synthesis still produced a swap action")
	}
	// The next tick retries instead of staying wedged.
	if acts := r.Tick(2 * time.Second); acts != nil {
		t.Fatal("failed synthesis still produced a swap action on retry")
	}
	if calls != 2 {
		t.Fatalf("synthesize called %d times, want a retry per tick", calls)
	}
	if len(r.Swaps()) != 0 {
		t.Fatal("failed regeneration recorded a swap")
	}
}
