// Package autoscale closes the provider side of the bilateral loop while
// traffic is in flight. It contributes the two online controllers a
// non-stationary replay run plugs into platform.RunReplay:
//
//   - Autoscaler, an elastic warm-pool controller: per-function pool
//     targets recomputed each control interval from observed demand —
//     scale-up by the cold-start deficit when the pool ran dry,
//     idle-pod shedding when acquisitions park on exhausted node
//     capacity (the queue warm pods cannot fix), scale-down one pod at
//     a time once utilization stays low past a cooldown. Scale-up is
//     charged honestly: the executor builds each ordered pod only after
//     the full cold-start delay (see cluster.AddWarmPod and the
//     pool-churn accounting).
//
//   - Regen, the online bilateral hook: it watches the adapter's
//     per-epoch miss rate during the replay, and when drifted traffic
//     pushes it over the threshold, re-synthesizes the hint bundle
//     against the observed (drifted) budget distribution — the adapter's
//     EpochBudgetRange supplies the floor — and hot-swaps it via the
//     adapter's atomic Replace after a virtual regeneration latency,
//     recording the swap instant. The offline regeneration loop in
//     package core does the same thing wall-clock-asynchronously; Regen
//     is its deterministic, virtual-time form, which is what lets replay
//     experiments compare regeneration on and off request for request.
package autoscale

import (
	"fmt"
	"time"

	"janus/internal/adapter"
	"janus/internal/hints"
	"janus/internal/obs"
	"janus/internal/platform"
)

// Config parameterizes the elastic warm-pool controller.
type Config struct {
	// MinPool and MaxPool clamp every function's pool target.
	MinPool, MaxPool int
	// LowUtilization is the busy/(busy+warm) occupancy below which a
	// quiet function becomes a scale-down candidate (default 0.5).
	LowUtilization float64
	// Cooldown is how long after a function's last scale-up (or the run
	// start) its pool must stay quiet before shrinking (default 10 s):
	// tearing a pool down in the trough of one burst only to rebuild it
	// cold in the next is the thrash the cooldown prevents.
	Cooldown time.Duration
	// Tracer, when non-nil, receives a KindScaleAudit event for every
	// target the controller moves — the observed deficit, queue
	// pressure, or cooldown state that explains the decision. Nil (the
	// default) costs nothing; the replay engine separately records the
	// applied KindPoolScale actions.
	Tracer obs.Tracer
}

// DefaultConfig returns a general-purpose controller setting — pools
// breathe between 1 and 12 pods, shrink below 50% occupancy, and hold
// 10 s after growing. The suite's replay experiment tunes its own Config
// to its schedule (see internal/experiment's replay scenario) rather
// than using these values.
func DefaultConfig() Config {
	return Config{MinPool: 1, MaxPool: 12, LowUtilization: 0.5, Cooldown: 10 * time.Second}
}

// Autoscaler recomputes per-function warm-pool targets each control
// interval. It implements platform.PoolController and carries per-run
// state (last scale-up instants), so build one per replay run.
type Autoscaler struct {
	cfg Config
	// lastGrow is each function's most recent scale-up instant; absent
	// means never grown, treated as the run start so the cooldown also
	// damps an immediate teardown of the deployed pools.
	lastGrow map[string]time.Duration
}

// New validates the configuration and builds a controller.
func New(cfg Config) (*Autoscaler, error) {
	if cfg.MinPool < 0 {
		return nil, fmt.Errorf("autoscale: MinPool %d negative", cfg.MinPool)
	}
	if cfg.MaxPool < cfg.MinPool || cfg.MaxPool < 1 {
		return nil, fmt.Errorf("autoscale: MaxPool %d below MinPool %d (or < 1)", cfg.MaxPool, cfg.MinPool)
	}
	if cfg.LowUtilization < 0 || cfg.LowUtilization > 1 {
		return nil, fmt.Errorf("autoscale: LowUtilization %v outside [0, 1]", cfg.LowUtilization)
	}
	if cfg.Cooldown < 0 {
		return nil, fmt.Errorf("autoscale: negative cooldown %v", cfg.Cooldown)
	}
	return &Autoscaler{cfg: cfg, lastGrow: make(map[string]time.Duration)}, nil
}

// Name implements platform.PoolController.
func (a *Autoscaler) Name() string { return "autoscaler" }

// Targets implements platform.PoolController. The two queues a request
// can wait in have opposite remedies, and the controller keeps them
// apart:
//
//   - cold starts mean the warm pool ran dry while node capacity
//     existed — the pool was too shallow, so grow it by the observed
//     deficit (every cold acquisition is one pod the pool was short);
//   - parked acquisitions mean no node had the millicores free — warm
//     pods cannot help, their idle reservations are part of the problem,
//     so shed one instead of ratcheting the target up on a queue that
//     more pooling would only lengthen.
//
// Absent either signal, a pool that stays below the utilization floor
// past the cooldown drains one pod per interval toward MinPool.
func (a *Autoscaler) Targets(now time.Duration, stats []platform.ReplayFunctionStats) map[string]int {
	out := make(map[string]int, len(stats))
	for _, fs := range stats {
		target := clamp(fs.Target, a.cfg.MinPool, a.cfg.MaxPool)
		// moved names which branch fired; the human-readable audit reason
		// is only formatted under the Tracer guard — a nil tracer must not
		// pay a Sprintf per function per tick.
		moved := scaleHold
		switch {
		case fs.ColdStarts > 0 && fs.Queued == 0:
			target = clamp(target+fs.ColdStarts, a.cfg.MinPool, a.cfg.MaxPool)
			if target > fs.Target {
				a.lastGrow[fs.Function] = now
			}
			moved = scaleGrow
		case fs.Queued > 0:
			// Capacity contention (possibly alongside cold starts, when
			// the cluster is genuinely overloaded): free idle
			// reservations for the parked work, ignoring the cooldown —
			// but never below the pods actually executing, or the
			// contention's end would greet the still-hot demand with a
			// shredded pool and a cold-start storm.
			target = clamp(max(fs.Busy, target-1), a.cfg.MinPool, a.cfg.MaxPool)
			moved = scaleShed
		case a.quietPastCooldown(fs.Function, now) && occupancy(fs) < a.cfg.LowUtilization:
			// Shrink gently: one pod per interval, so a trough between
			// diurnal peaks drains the pool instead of cliff-dropping it.
			target = clamp(target-1, a.cfg.MinPool, a.cfg.MaxPool)
			moved = scaleShrink
		}
		out[fs.Function] = target
		if a.cfg.Tracer != nil && target != fs.Target && moved != scaleHold {
			var reason string
			switch moved {
			case scaleGrow:
				reason = fmt.Sprintf("grow: cold-start deficit %d", fs.ColdStarts)
			case scaleShed:
				reason = fmt.Sprintf("shed: %d parked on node capacity, %d busy", fs.Queued, fs.Busy)
			case scaleShrink:
				reason = fmt.Sprintf("shrink: occupancy %.2f below %.2f, quiet %v past cooldown %v",
					occupancy(fs), a.cfg.LowUtilization, now-a.lastGrow[fs.Function], a.cfg.Cooldown)
			}
			a.cfg.Tracer.Emit(obs.Event{At: now, Kind: obs.KindScaleAudit, Request: -1,
				Function: fs.Function, Value: int64(target), Aux: int64(fs.Target), Reason: reason})
		}
	}
	return out
}

// scaleMove names the Targets branch that moved a pool target, so the
// audit reason can be formatted lazily (only when a tracer is attached).
type scaleMove uint8

const (
	scaleHold scaleMove = iota
	scaleGrow
	scaleShed
	scaleShrink
)

func (a *Autoscaler) quietPastCooldown(fn string, now time.Duration) bool {
	return now-a.lastGrow[fn] >= a.cfg.Cooldown
}

// occupancy is the fraction of a function's pods currently executing;
// a function with no pods at all counts as fully idle.
func occupancy(fs platform.ReplayFunctionStats) float64 {
	total := fs.Busy + fs.Warm
	if total == 0 {
		return 0
	}
	return float64(fs.Busy) / float64(total)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Swap records one hint-bundle hot-swap of a replay run.
type Swap struct {
	// At is the virtual instant the regenerated bundle replaced the
	// deployed one (detection instant + RegenConfig.Latency).
	At time.Duration
	// MissRate is the epoch miss rate that triggered the regeneration.
	MissRate float64
	// FloorMs is the observed budget floor the bundle was re-synthesized
	// against.
	FloorMs int
}

// RegenConfig parameterizes the online regeneration hook.
type RegenConfig struct {
	// Adapter is the deployed adapter whose epoch stats are watched and
	// whose bundle is hot-swapped.
	Adapter *adapter.Adapter
	// Synthesize re-runs the developer-side pipeline against the drifted
	// budget distribution: floorMs is the smallest remaining budget the
	// adapter observed this epoch (clamped to >= 1 ms). It must be
	// deterministic for replay runs to be.
	Synthesize func(floorMs int) (*hints.Bundle, error)
	// Threshold is the epoch miss rate that triggers regeneration
	// (default adapter.DefaultMissThreshold, the paper's 1%).
	Threshold float64
	// MinDecisions is how many epoch decisions must accumulate before the
	// miss rate is trusted (default 50).
	MinDecisions int64
	// Latency is the virtual delay between detection and the hot-swap —
	// the time the asynchronous profiling + synthesis run takes in the
	// modeled world (default 2 s). Serving continues on the stale bundle
	// meanwhile, exactly the paper's regeneration trade-off.
	Latency time.Duration
	// Tenant labels this hook's audit events in a multi-tenant replay
	// (each tenant regenerates independently); used only with Tracer.
	Tenant string
	// Tracer, when non-nil, receives a KindScaleAudit event at each
	// regeneration detection (the observed miss rate and budget floor
	// that triggered it) and a KindSwap event at the instant the
	// regenerated bundle is hot-swapped in.
	Tracer obs.Tracer
}

// Regen is the online bilateral hook: plug Tick into
// platform.ReplayConfig.OnTick. It is single-goroutine like the replay
// engine that drives it.
type Regen struct {
	cfg      RegenConfig
	inFlight bool
	swaps    []Swap
}

// NewRegen validates the configuration and builds the hook.
func NewRegen(cfg RegenConfig) (*Regen, error) {
	if cfg.Adapter == nil {
		return nil, fmt.Errorf("autoscale: regen needs an adapter")
	}
	if cfg.Synthesize == nil {
		return nil, fmt.Errorf("autoscale: regen needs a synthesize hook")
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = adapter.DefaultMissThreshold
	}
	if cfg.Threshold <= 0 || cfg.Threshold >= 1 {
		return nil, fmt.Errorf("autoscale: regen threshold %v outside (0, 1)", cfg.Threshold)
	}
	if cfg.MinDecisions == 0 {
		cfg.MinDecisions = 50
	}
	if cfg.MinDecisions < 0 {
		return nil, fmt.Errorf("autoscale: negative MinDecisions %d", cfg.MinDecisions)
	}
	if cfg.Latency == 0 {
		cfg.Latency = 2 * time.Second
	}
	if cfg.Latency < 0 {
		return nil, fmt.Errorf("autoscale: negative regen latency %v", cfg.Latency)
	}
	return &Regen{cfg: cfg}, nil
}

// Tick checks the adapter's epoch window at a control instant. When the
// miss rate has crossed the threshold (and no regeneration is already in
// flight), it synthesizes a bundle against the observed budget floor now
// and returns the hot-swap as a delayed action: the adapter keeps serving
// the stale bundle until the swap instant, when Replace atomically
// installs the new one, resets the epoch window, and the swap is
// recorded.
func (r *Regen) Tick(now time.Duration) []platform.ReplayAction {
	if r.inFlight {
		return nil
	}
	hits, misses, rate := r.cfg.Adapter.EpochStats()
	if hits+misses < r.cfg.MinDecisions || rate <= r.cfg.Threshold {
		return nil
	}
	lo, _, ok := r.cfg.Adapter.EpochBudgetRange()
	if !ok {
		return nil
	}
	floorMs := int(lo / time.Millisecond)
	if floorMs < 1 {
		floorMs = 1
	}
	bundle, err := r.cfg.Synthesize(floorMs)
	if err != nil {
		// Regeneration failing must not take serving down; the stale
		// bundle keeps escalating misses and the next tick retries.
		return nil
	}
	r.inFlight = true
	if r.cfg.Tracer != nil {
		r.cfg.Tracer.Emit(obs.Event{At: now, Kind: obs.KindScaleAudit, Request: -1,
			Tenant: r.cfg.Tenant, Value: int64(floorMs), Aux: ppm(rate),
			Reason: fmt.Sprintf("regen: epoch miss rate %.4f over threshold %.4f after %d decisions; resynthesizing at budget floor %dms",
				rate, r.cfg.Threshold, hits+misses, floorMs)})
	}
	return []platform.ReplayAction{{Delay: r.cfg.Latency, Do: func(at time.Duration) {
		if err := r.cfg.Adapter.Replace(bundle); err == nil {
			r.swaps = append(r.swaps, Swap{At: at, MissRate: rate, FloorMs: floorMs})
			if r.cfg.Tracer != nil {
				r.cfg.Tracer.Emit(obs.Event{At: at, Kind: obs.KindSwap, Request: -1,
					Tenant: r.cfg.Tenant, Value: int64(floorMs), Aux: ppm(rate),
					Reason: "hot-swap applied"})
			}
		}
		r.inFlight = false
	}}}
}

// ppm converts a rate in [0, 1] to integer parts per million — the
// fixed-point form audit events carry (Event values are int64).
func ppm(rate float64) int64 { return int64(rate * 1e6) }

// Swaps returns the run's hot-swap record, in swap order.
func (r *Regen) Swaps() []Swap { return append([]Swap(nil), r.swaps...) }
