package simclock

import (
	"testing"
	"time"
)

func TestZeroValueStartsAtZero(t *testing.T) {
	e := New()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestScheduleAndRunAdvancesClock(t *testing.T) {
	e := New()
	var fired []time.Duration
	e.Schedule(5*time.Millisecond, func(now time.Duration) { fired = append(fired, now) })
	e.Schedule(2*time.Millisecond, func(now time.Duration) { fired = append(fired, now) })
	e.Run()
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if fired[0] != 2*time.Millisecond || fired[1] != 5*time.Millisecond {
		t.Fatalf("events fired at %v, want [2ms 5ms]", fired)
	}
	if e.Now() != 5*time.Millisecond {
		t.Fatalf("Now() = %v, want 5ms", e.Now())
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Millisecond, func(time.Duration) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO at same timestamp)", i, v, i)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New()
	var times []time.Duration
	e.Schedule(time.Millisecond, func(now time.Duration) {
		times = append(times, now)
		e.Schedule(3*time.Millisecond, func(now time.Duration) {
			times = append(times, now)
		})
	})
	e.Run()
	if len(times) != 2 || times[1] != 4*time.Millisecond {
		t.Fatalf("nested event times = %v, want [1ms 4ms]", times)
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	e := New()
	ran := false
	e.Schedule(10*time.Millisecond, func(now time.Duration) {
		e.Schedule(-time.Second, func(inner time.Duration) {
			if inner != now {
				t.Errorf("negative-delay event at %v, want %v", inner, now)
			}
			ran = true
		})
	})
	e.Run()
	if !ran {
		t.Fatal("negative-delay event did not run")
	}
}

func TestScheduleAtPastPanics(t *testing.T) {
	e := New()
	e.Schedule(time.Second, func(time.Duration) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("ScheduleAt in the past did not panic")
		}
	}()
	e.ScheduleAt(time.Millisecond, func(time.Duration) {})
}

func TestNilEventPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Fatal("nil event did not panic")
		}
	}()
	e.Schedule(time.Second, nil)
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := New()
	var fired int
	for i := 1; i <= 10; i++ {
		e.Schedule(time.Duration(i)*time.Second, func(time.Duration) { fired++ })
	}
	e.RunUntil(5 * time.Second)
	if fired != 5 {
		t.Fatalf("fired = %d, want 5", fired)
	}
	if e.Now() != 5*time.Second {
		t.Fatalf("Now() = %v, want 5s", e.Now())
	}
	if e.Pending() != 5 {
		t.Fatalf("Pending() = %d, want 5", e.Pending())
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := New()
	e.RunUntil(time.Minute)
	if e.Now() != time.Minute {
		t.Fatalf("Now() = %v, want 1m", e.Now())
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := New()
	var fired int
	e.Schedule(time.Second, func(time.Duration) {
		fired++
		e.Stop()
	})
	e.Schedule(2*time.Second, func(time.Duration) { fired++ })
	e.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 after Stop", fired)
	}
	// A second Run resumes with the remaining events.
	e.Run()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 after resuming", fired)
	}
}

func TestManyEventsStayOrdered(t *testing.T) {
	e := New()
	last := time.Duration(-1)
	for i := 0; i < 1000; i++ {
		d := time.Duration((i*7919)%503) * time.Millisecond
		e.Schedule(d, func(now time.Duration) {
			if now < last {
				t.Errorf("event at %v ran after %v", now, last)
			}
			last = now
		})
	}
	e.Run()
}
