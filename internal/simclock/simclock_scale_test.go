package simclock

import (
	"sort"
	"testing"
	"time"
)

// These tests close the gaps the fleet-scale work leans on: Stop's exact
// mid-run semantics (the replay control loop stops the engine to surface
// starvation) and heap ordering under interleaved Schedule/ScheduleAt
// with heavily duplicated timestamps at a queue depth past 100k pending
// events (a fleet burst's admission backlog).

func TestStopMidRunKeepsClockAndQueue(t *testing.T) {
	e := New()
	var order []int
	e.Schedule(time.Second, func(time.Duration) { order = append(order, 1) })
	e.Schedule(time.Second, func(time.Duration) {
		order = append(order, 2)
		e.Stop()
	})
	e.Schedule(time.Second, func(time.Duration) { order = append(order, 3) })
	e.Schedule(2*time.Second, func(time.Duration) { order = append(order, 4) })
	e.Run()
	// Stop returns after the in-flight event: the same-instant successor
	// must NOT run, the clock must hold at the stopping instant, and the
	// queue must retain exactly the unexecuted events.
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("ran %v, want [1 2] before Stop takes effect", order)
	}
	if e.Now() != time.Second {
		t.Fatalf("Now() = %v, want 1s (the stopping event's instant)", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}
	// A fresh Run clears the stop flag and drains the remainder in order.
	e.Run()
	if len(order) != 4 || order[2] != 3 || order[3] != 4 {
		t.Fatalf("resumed run gave %v, want [1 2 3 4]", order)
	}
}

func TestStopBeforeRunDoesNotPreempt(t *testing.T) {
	// Stop only halts an in-flight Run/RunUntil: a Run started after Stop
	// clears the flag and executes normally.
	e := New()
	fired := 0
	e.Schedule(time.Millisecond, func(time.Duration) { fired++ })
	e.Stop()
	e.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (Run resets a prior Stop)", fired)
	}
}

func TestStopInsideRunUntil(t *testing.T) {
	e := New()
	fired := 0
	e.Schedule(time.Second, func(time.Duration) {
		fired++
		e.Stop()
	})
	e.Schedule(2*time.Second, func(time.Duration) { fired++ })
	e.RunUntil(time.Minute)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 after mid-RunUntil Stop", fired)
	}
	// RunUntil still advances the idle clock only up to where it ran:
	// the deadline fast-forward is skipped... unless it already passed.
	if e.Now() != time.Minute {
		t.Fatalf("Now() = %v, want the deadline 1m", e.Now())
	}
}

// TestDuplicateTimestampOrderAtScale interleaves Schedule and ScheduleAt
// across >100k events with only 512 distinct timestamps, so every
// timestamp carries hundreds of duplicates. The heap must pop in exact
// (timestamp, scheduling-sequence) order.
func TestDuplicateTimestampOrderAtScale(t *testing.T) {
	const events = 120_000
	const distinct = 512
	e := New()
	type key struct {
		at  time.Duration
		idx int
	}
	want := make([]key, 0, events)
	got := make([]key, 0, events)
	for i := 0; i < events; i++ {
		// A multiplicative hash scatters arrival order across timestamps
		// while staying deterministic.
		at := time.Duration((i*2654435761)%distinct) * time.Millisecond
		k := key{at: at, idx: i}
		want = append(want, k)
		fn := func(now time.Duration) {
			if now != k.at {
				t.Errorf("event %d fired at %v, scheduled for %v", k.idx, now, k.at)
			}
			got = append(got, k)
		}
		// Alternate the two scheduling surfaces; both must land in the
		// same sequence-numbered order.
		if i%2 == 0 {
			e.ScheduleAt(at, fn)
		} else {
			e.Schedule(at, fn) // now is still 0: same absolute instant
		}
	}
	if e.Pending() != events {
		t.Fatalf("Pending() = %d, want %d", e.Pending(), events)
	}
	e.Run()
	if len(got) != events {
		t.Fatalf("ran %d events, want %d", len(got), events)
	}
	// Expected order: stable sort by timestamp — duplicates keep their
	// scheduling order.
	sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: fired (%v, #%d), want (%v, #%d)",
				i, got[i].at, got[i].idx, want[i].at, want[i].idx)
		}
	}
}

// TestSameInstantNestedSchedulingAtScale verifies that events scheduled
// from inside an event at the current instant run in the same pass, after
// every already-queued event at that instant — even with a deep queue.
func TestSameInstantNestedSchedulingAtScale(t *testing.T) {
	const width = 50_000
	e := New()
	var order []int
	for i := 0; i < width; i++ {
		i := i
		e.ScheduleAt(time.Second, func(time.Duration) {
			order = append(order, i)
			if i == 0 {
				// Spawned at the same instant: must run after the other
				// width-1 queued events, in spawn order.
				e.Schedule(0, func(time.Duration) { order = append(order, width) })
				e.Schedule(0, func(time.Duration) { order = append(order, width+1) })
			}
		})
	}
	e.Run()
	if len(order) != width+2 {
		t.Fatalf("ran %d events, want %d", len(order), width+2)
	}
	for i := 0; i < width+2; i++ {
		if order[i] != i {
			t.Fatalf("position %d ran event %d, want %d", i, order[i], i)
		}
	}
	if e.Now() != time.Second {
		t.Fatalf("Now() = %v, want 1s (zero-delay events at the same instant)", e.Now())
	}
}
