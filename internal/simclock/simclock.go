// Package simclock provides a deterministic discrete-event simulation
// engine driven by a virtual clock.
//
// All latencies in the repository are modeled, not slept: components
// schedule callbacks at virtual timestamps and the engine executes them in
// time order. Ties are broken by scheduling sequence so that runs are fully
// reproducible for a fixed seed.
package simclock

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a callback executed at its scheduled virtual time.
type Event func(now time.Duration)

type item struct {
	at  time.Duration
	seq uint64
	fn  Event
}

type eventHeap []item

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(item)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Engine is a single-threaded discrete-event simulator. The zero value is
// ready to use and starts at virtual time zero.
type Engine struct {
	now     time.Duration
	seq     uint64
	pending eventHeap
	stopped bool
}

// New returns an Engine starting at virtual time zero.
func New() *Engine { return &Engine{} }

// Now reports the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Schedule runs fn after delay of virtual time. A negative delay is treated
// as zero (run at the current instant, after already-queued events at the
// same instant).
func (e *Engine) Schedule(delay time.Duration, fn Event) {
	if delay < 0 {
		delay = 0
	}
	e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at the given absolute virtual time. Scheduling in the
// past panics: it would silently reorder causality.
func (e *Engine) ScheduleAt(at time.Duration, fn Event) {
	if fn == nil {
		panic("simclock: ScheduleAt with nil event")
	}
	if at < e.now {
		panic(fmt.Sprintf("simclock: scheduling at %v before now %v", at, e.now))
	}
	e.seq++
	heap.Push(&e.pending, item{at: at, seq: e.seq, fn: fn})
}

// Step executes the earliest pending event and reports whether one ran.
func (e *Engine) Step() bool {
	if len(e.pending) == 0 {
		return false
	}
	it := heap.Pop(&e.pending).(item)
	e.now = it.at
	it.fn(e.now)
	return true
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline (if it is in the future).
func (e *Engine) RunUntil(deadline time.Duration) {
	e.stopped = false
	for !e.stopped && len(e.pending) > 0 && e.pending[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Stop makes the current Run/RunUntil return after the in-flight event.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.pending) }
