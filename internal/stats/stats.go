// Package stats provides the statistical machinery the reproduction relies
// on: empirical samples with percentile queries, CDFs, histograms, online
// summaries, Monte-Carlo distribution convolution (used by the ORION
// baseline), and the paper's slack metric.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"

	"janus/internal/rng"
)

// Sample is a collection of observations supporting percentile queries.
// The zero value is an empty sample ready for Add.
type Sample struct {
	xs     []float64
	sorted bool
}

// NewSample wraps the given values (taking ownership of the slice).
func NewSample(values []float64) *Sample {
	return &Sample{xs: values}
}

// FromDurations builds a Sample of millisecond values from durations.
func FromDurations(ds []time.Duration) *Sample {
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = float64(d) / float64(time.Millisecond)
	}
	return NewSample(xs)
}

// Add appends an observation.
func (s *Sample) Add(v float64) {
	s.xs = append(s.xs, v)
	s.sorted = false
}

// AddDuration appends a duration observation in milliseconds.
func (s *Sample) AddDuration(d time.Duration) {
	s.Add(float64(d) / float64(time.Millisecond))
}

// Len reports the number of observations.
func (s *Sample) Len() int { return len(s.xs) }

// Values returns the underlying observations in sorted order. The returned
// slice is shared; callers must not modify it.
func (s *Sample) Values() []float64 {
	s.sort()
	return s.xs
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (p in [0, 100]) using linear
// interpolation between order statistics. It panics on an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		panic("stats: Percentile on empty sample")
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	s.sort()
	if len(s.xs) == 1 {
		return s.xs[0]
	}
	rank := p / 100 * float64(len(s.xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// PercentileDuration returns Percentile(p) interpreted as milliseconds.
func (s *Sample) PercentileDuration(p float64) time.Duration {
	return time.Duration(s.Percentile(p) * float64(time.Millisecond))
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	total := 0.0
	for _, v := range s.xs {
		total += v
	}
	return total / float64(len(s.xs))
}

// Std returns the population standard deviation, or 0 for n < 2.
func (s *Sample) Std() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	acc := 0.0
	for _, v := range s.xs {
		d := v - m
		acc += d * d
	}
	return math.Sqrt(acc / float64(n))
}

// Min returns the smallest observation. It panics on an empty sample.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		panic("stats: Min on empty sample")
	}
	s.sort()
	return s.xs[0]
}

// Max returns the largest observation. It panics on an empty sample.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		panic("stats: Max on empty sample")
	}
	s.sort()
	return s.xs[len(s.xs)-1]
}

// Point is one (x, cumulative fraction) coordinate of an empirical CDF.
type Point struct {
	X float64
	F float64
}

// CDF returns the empirical CDF as (value, fraction <= value) points.
func (s *Sample) CDF() []Point {
	s.sort()
	pts := make([]Point, len(s.xs))
	n := float64(len(s.xs))
	for i, v := range s.xs {
		pts[i] = Point{X: v, F: float64(i+1) / n}
	}
	return pts
}

// FractionAtOrBelow reports the fraction of observations <= x.
func (s *Sample) FractionAtOrBelow(x float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	idx := sort.SearchFloat64s(s.xs, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(s.xs))
}

// Clone returns an independent copy of the sample.
func (s *Sample) Clone() *Sample {
	xs := make([]float64, len(s.xs))
	copy(xs, s.xs)
	return &Sample{xs: xs, sorted: s.sorted}
}

// Scale returns a new sample with every observation multiplied by f.
func (s *Sample) Scale(f float64) *Sample {
	xs := make([]float64, len(s.xs))
	for i, v := range s.xs {
		xs[i] = v * f
	}
	return &Sample{xs: xs, sorted: s.sorted && f >= 0}
}

// Slack is the paper's resource-inefficiency metric: 1 - latency/slo.
// A request finishing at 40% of its SLO has slack 0.6. Latencies above the
// SLO yield negative slack.
func Slack(latency, slo time.Duration) float64 {
	if slo <= 0 {
		panic("stats: Slack requires positive SLO")
	}
	return 1 - float64(latency)/float64(slo)
}

// SumSamples estimates the distribution of the sum of one draw from each
// input sample (independent draws), using n Monte-Carlo trials from the
// given stream. It is the convolution primitive behind the ORION baseline's
// end-to-end latency model.
func SumSamples(parts []*Sample, n int, stream *rng.Stream) *Sample {
	if len(parts) == 0 || n <= 0 {
		return &Sample{}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		total := 0.0
		for _, p := range parts {
			if p.Len() == 0 {
				continue
			}
			total += p.xs[stream.IntN(p.Len())]
		}
		out[i] = total
	}
	return NewSample(out)
}

// Histogram counts observations into fixed-width buckets over [lo, hi).
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
	width   float64
	under   int
	over    int
	total   int
}

// NewHistogram creates a histogram with nbuckets buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, nbuckets int) *Histogram {
	if hi <= lo || nbuckets <= 0 {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{
		Lo:      lo,
		Hi:      hi,
		Buckets: make([]int, nbuckets),
		width:   (hi - lo) / float64(nbuckets),
	}
}

// Observe adds one observation.
func (h *Histogram) Observe(v float64) {
	h.total++
	switch {
	case v < h.Lo:
		h.under++
	case v >= h.Hi:
		h.over++
	default:
		h.Buckets[int((v-h.Lo)/h.width)]++
	}
}

// Total reports the number of observations, including out-of-range ones.
func (h *Histogram) Total() int { return h.total }

// BucketFraction reports the fraction of all observations in bucket i.
func (h *Histogram) BucketFraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Buckets[i]) / float64(h.total)
}

// Summary accumulates count/mean/variance/min/max online (Welford).
// The zero value is ready to use.
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Observe adds one observation.
func (s *Summary) Observe(v float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	delta := v - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (v - s.mean)
}

// N reports the number of observations.
func (s *Summary) N() int { return s.n }

// Mean reports the running mean (0 if empty).
func (s *Summary) Mean() float64 { return s.mean }

// Std reports the running population standard deviation.
func (s *Summary) Std() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n))
}

// Min reports the smallest observation (0 if empty).
func (s *Summary) Min() float64 { return s.min }

// Max reports the largest observation (0 if empty).
func (s *Summary) Max() float64 { return s.max }

// String formats the summary for experiment logs.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f std=%.2f min=%.2f max=%.2f", s.n, s.mean, s.Std(), s.min, s.max)
}
