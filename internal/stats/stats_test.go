package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"janus/internal/rng"
)

func TestPercentileBasics(t *testing.T) {
	s := NewSample([]float64{4, 1, 3, 2, 5})
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileInterpolates(t *testing.T) {
	s := NewSample([]float64{0, 10})
	if got := s.Percentile(50); got != 5 {
		t.Fatalf("Percentile(50) = %v, want 5", got)
	}
	if got := s.Percentile(99); math.Abs(got-9.9) > 1e-9 {
		t.Fatalf("Percentile(99) = %v, want 9.9", got)
	}
}

func TestPercentileClampsRange(t *testing.T) {
	s := NewSample([]float64{1, 2, 3})
	if s.Percentile(-10) != 1 || s.Percentile(200) != 3 {
		t.Fatal("out-of-range percentiles should clamp to min/max")
	}
}

func TestPercentileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Percentile on empty sample did not panic")
		}
	}()
	(&Sample{}).Percentile(50)
}

func TestPercentileMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		st := rng.New(seed)
		s := &Sample{}
		for i := 0; i < 100; i++ {
			s.Add(st.LogNormal(0, 1))
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 2.5 {
			v := s.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAddInvalidatesSortCache(t *testing.T) {
	s := NewSample([]float64{5, 1})
	_ = s.Percentile(50) // force sort
	s.Add(0)
	if got := s.Percentile(0); got != 0 {
		t.Fatalf("min after Add = %v, want 0", got)
	}
}

func TestMeanStdMinMax(t *testing.T) {
	s := NewSample([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if got := s.Mean(); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := s.Std(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("Std = %v, want 2", got)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
}

func TestFromDurationsAndPercentileDuration(t *testing.T) {
	s := FromDurations([]time.Duration{100 * time.Millisecond, 300 * time.Millisecond})
	if got := s.PercentileDuration(50); got != 200*time.Millisecond {
		t.Fatalf("PercentileDuration(50) = %v, want 200ms", got)
	}
}

func TestCDFIsMonotoneAndEndsAtOne(t *testing.T) {
	s := NewSample([]float64{3, 1, 2, 2})
	pts := s.CDF()
	if len(pts) != 4 {
		t.Fatalf("CDF has %d points, want 4", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].F < pts[i-1].F {
			t.Fatal("CDF not monotone")
		}
	}
	if pts[len(pts)-1].F != 1 {
		t.Fatalf("CDF final fraction = %v, want 1", pts[len(pts)-1].F)
	}
}

func TestFractionAtOrBelow(t *testing.T) {
	s := NewSample([]float64{1, 2, 3, 4})
	cases := []struct {
		x    float64
		want float64
	}{{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {9, 1}}
	for _, c := range cases {
		if got := s.FractionAtOrBelow(c.x); got != c.want {
			t.Errorf("FractionAtOrBelow(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	s := NewSample([]float64{1, 2})
	c := s.Clone()
	c.Add(100)
	if s.Len() != 2 || c.Len() != 3 {
		t.Fatal("Clone shares state with original")
	}
}

func TestScale(t *testing.T) {
	s := NewSample([]float64{1, 2}).Scale(3)
	if s.Percentile(100) != 6 {
		t.Fatalf("Scale: max = %v, want 6", s.Percentile(100))
	}
}

func TestSlack(t *testing.T) {
	if got := Slack(900*time.Millisecond, 3*time.Second); math.Abs(got-0.7) > 1e-9 {
		t.Fatalf("Slack = %v, want 0.7", got)
	}
	if got := Slack(4*time.Second, 2*time.Second); got != -1 {
		t.Fatalf("Slack past SLO = %v, want -1", got)
	}
}

func TestSlackPanicsOnZeroSLO(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Slack with zero SLO did not panic")
		}
	}()
	Slack(time.Second, 0)
}

func TestSumSamplesMeanAdds(t *testing.T) {
	st := rng.New(5)
	a := NewSample([]float64{10, 10, 10})
	b := NewSample([]float64{5, 5})
	sum := SumSamples([]*Sample{a, b}, 1000, st)
	if got := sum.Mean(); math.Abs(got-15) > 1e-9 {
		t.Fatalf("SumSamples mean = %v, want 15", got)
	}
}

func TestSumSamplesP99BelowSumOfP99s(t *testing.T) {
	// The whole point of distribution-aware sizing (ORION): the P99 of a sum
	// of independent variables is below the sum of the per-part P99s.
	st := rng.New(7)
	mk := func(label string) *Sample {
		s := &Sample{}
		child := st.Split(label)
		for i := 0; i < 5000; i++ {
			s.Add(child.LogNormal(0, 0.8))
		}
		return s
	}
	parts := []*Sample{mk("a"), mk("b"), mk("c")}
	sum := SumSamples(parts, 20000, st.Split("mc"))
	p99Sum := sum.Percentile(99)
	sumP99 := 0.0
	for _, p := range parts {
		sumP99 += p.Percentile(99)
	}
	if p99Sum >= sumP99 {
		t.Fatalf("P99(sum)=%v should be < sum(P99)=%v", p99Sum, sumP99)
	}
}

func TestSumSamplesEmpty(t *testing.T) {
	if s := SumSamples(nil, 10, rng.New(1)); s.Len() != 0 {
		t.Fatal("SumSamples(nil) should be empty")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{-1, 0, 1.9, 2, 9.99, 10, 100} {
		h.Observe(v)
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d, want 7", h.Total())
	}
	if h.Buckets[0] != 2 { // 0 and 1.9
		t.Fatalf("bucket 0 = %d, want 2", h.Buckets[0])
	}
	if h.Buckets[1] != 1 { // 2
		t.Fatalf("bucket 1 = %d, want 1", h.Buckets[1])
	}
	if h.Buckets[4] != 1 { // 9.99
		t.Fatalf("bucket 4 = %d, want 1", h.Buckets[4])
	}
	if got := h.BucketFraction(0); math.Abs(got-2.0/7) > 1e-9 {
		t.Fatalf("BucketFraction(0) = %v", got)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram with hi <= lo did not panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestSummaryMatchesSample(t *testing.T) {
	st := rng.New(9)
	var sum Summary
	s := &Sample{}
	for i := 0; i < 1000; i++ {
		v := st.Normal(10, 3)
		sum.Observe(v)
		s.Add(v)
	}
	if sum.N() != 1000 {
		t.Fatalf("N = %d", sum.N())
	}
	if math.Abs(sum.Mean()-s.Mean()) > 1e-9 {
		t.Fatalf("Summary mean %v != sample mean %v", sum.Mean(), s.Mean())
	}
	if math.Abs(sum.Std()-s.Std()) > 1e-6 {
		t.Fatalf("Summary std %v != sample std %v", sum.Std(), s.Std())
	}
	if sum.Min() != s.Min() || sum.Max() != s.Max() {
		t.Fatal("Summary min/max mismatch")
	}
}

func TestValuesSorted(t *testing.T) {
	f := func(seed uint64) bool {
		st := rng.New(seed)
		s := &Sample{}
		for i := 0; i < 50; i++ {
			s.Add(st.Float64())
		}
		return sort.Float64sAreSorted(s.Values())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
