package core

import (
	"testing"
	"time"

	"janus/internal/adapter"
	"janus/internal/hints"
	"janus/internal/interfere"
	"janus/internal/perfmodel"
	"janus/internal/platform"
	"janus/internal/workflow"
)

// staleCatalog returns function models whose base latencies are 50% lower
// than the live application's — the situation after an application update
// invalidates old profiles.
func staleCatalog() map[string]*perfmodel.Function {
	out := make(map[string]*perfmodel.Function)
	for name, fn := range perfmodel.Catalog() {
		out[name] = fn.Scaled(0.5)
	}
	return out
}

// TestFeedbackLoopRecoversFromStaleProfiles exercises the paper's §III-D
// supervision loop end to end: a deployment synthesized from stale (too
// optimistic) profiles serves the real, slower application; remaining
// budgets keep falling below the stale tables' coverage, the miss rate
// crosses the threshold, the supervisor triggers asynchronous
// regeneration with fresh profiles, and the replaced bundle stops missing.
func TestFeedbackLoopRecoversFromStaleProfiles(t *testing.T) {
	w := workflow.IntelligentAssistant()
	coloc, err := interfere.NewCountSampler([]float64{0.5, 0.35, 0.15})
	if err != nil {
		t.Fatal(err)
	}

	// Deploy with STALE profiles.
	d, err := Deploy(w, Options{
		Functions:           staleCatalog(),
		Colocation:          coloc,
		Interference:        interfere.Default(),
		Seed:                5,
		SamplesPerConfig:    1200,
		BudgetStepMs:        10,
		DisableRegeneration: true, // replaced by the instrumented loop below
	})
	if err != nil {
		t.Fatal(err)
	}
	oldBundle := d.Bundle()

	// Instrumented regeneration: re-profile the LIVE application.
	regenerated := make(chan struct{}, 1)
	reProfile := func(float64) {
		fresh, err := Deploy(w, Options{
			Functions:           perfmodel.Catalog(),
			Colocation:          coloc,
			Interference:        interfere.Default(),
			Seed:                6,
			SamplesPerConfig:    1200,
			BudgetStepMs:        10,
			DisableRegeneration: true,
		})
		if err != nil {
			t.Error(err)
			return
		}
		if err := d.Adapter.Replace(fresh.Bundle()); err != nil {
			t.Error(err)
			return
		}
		select {
		case regenerated <- struct{}{}:
		default:
		}
	}
	a, err := adapter.New(oldBundle,
		adapter.WithMissThreshold(0.03),
		adapter.WithMinDecisions(30),
		adapter.WithRegenerateCallback(reProfile))
	if err != nil {
		t.Fatal(err)
	}
	d.Adapter = a

	// The live workload: the real (slower) application.
	reqs, err := platform.GenerateWorkload(platform.WorkloadConfig{
		Workflow:          w,
		Functions:         perfmodel.Catalog(),
		N:                 200,
		ArrivalRatePerSec: 2,
		Colocation:        coloc,
		Interference:      interfere.Default(),
		StageCorrelation:  0.5,
		Seed:              7,
	})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := platform.NewExecutor(platform.DefaultExecutorConfig(), perfmodel.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	staleTraces, err := ex.Run(reqs, d.Allocator("janus"))
	if err != nil {
		t.Fatal(err)
	}
	if rate := platform.MissRate(staleTraces); rate <= 0.03 {
		t.Fatalf("stale profiles produced no miss pressure: rate %.3f", rate)
	}
	select {
	case <-regenerated:
	case <-time.After(30 * time.Second):
		t.Fatal("supervisor never regenerated the bundle")
	}
	if d.Adapter.Bundle() == oldBundle {
		t.Fatal("bundle not replaced")
	}

	// The same workload under the regenerated bundle serves cleanly.
	freshTraces, err := ex.Run(reqs, d.Allocator("janus"))
	if err != nil {
		t.Fatal(err)
	}
	if rate := platform.MissRate(freshTraces); rate > 0.03 {
		t.Fatalf("post-regeneration miss rate %.3f still above threshold", rate)
	}
	if v := platform.SLOViolationRate(freshTraces); v > 0.03 {
		t.Fatalf("post-regeneration violation rate %.3f", v)
	}
}

// TestBundleValidatableAgainstWorkflow ensures a deployed bundle matches
// its workflow's shape (the check janusd relies on implicitly).
func TestBundleValidatableAgainstWorkflow(t *testing.T) {
	coloc, err := interfere.NewCountSampler([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Deploy(workflow.IntelligentAssistant(), Options{
		Functions:        perfmodel.Catalog(),
		Colocation:       coloc,
		Interference:     interfere.Default(),
		Seed:             9,
		SamplesPerConfig: 400,
		BudgetStepMs:     25,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := d.Bundle()
	if b.Stages() != d.Workflow.Len() {
		t.Fatalf("bundle covers %d stages for a %d-node chain", b.Stages(), d.Workflow.Len())
	}
	var _ *hints.Bundle = b // the deployment artifact is the wire type
}
