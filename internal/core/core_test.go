package core

import (
	"testing"
	"time"

	"janus/internal/interfere"
	"janus/internal/perfmodel"
	"janus/internal/synth"
	"janus/internal/workflow"
)

func opts(t *testing.T) Options {
	t.Helper()
	coloc, err := interfere.NewCountSampler([]float64{0.5, 0.35, 0.15})
	if err != nil {
		t.Fatal(err)
	}
	return Options{
		Functions:        perfmodel.Catalog(),
		Colocation:       coloc,
		Interference:     interfere.Default(),
		Seed:             31,
		SamplesPerConfig: 500,
		BudgetStepMs:     20,
	}
}

func TestDeployEndToEnd(t *testing.T) {
	d, err := Deploy(workflow.IntelligentAssistant(), opts(t))
	if err != nil {
		t.Fatal(err)
	}
	if d.Batch != 1 || d.Workflow.Name() != "ia" {
		t.Fatalf("deployment header: batch=%d wf=%s", d.Batch, d.Workflow.Name())
	}
	b := d.Bundle()
	if b.Stages() != 3 || b.TotalRanges() == 0 {
		t.Fatalf("bundle: stages=%d ranges=%d", b.Stages(), b.TotalRanges())
	}
	// The adapter serves decisions immediately.
	dec, err := d.Adapter.Decide(0, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Millicores < 1000 || dec.Millicores > 3000 {
		t.Fatalf("decision %+v outside grid", dec)
	}
	al := d.Allocator("janus")
	if al.Name() != "janus" {
		t.Fatal("allocator name")
	}
}

func TestDeployValidation(t *testing.T) {
	if _, err := Deploy(nil, opts(t)); err == nil {
		t.Error("nil workflow accepted")
	}
	bad := opts(t)
	bad.Functions = nil
	if _, err := Deploy(workflow.IntelligentAssistant(), bad); err == nil {
		t.Error("nil functions accepted")
	}
	if _, err := DeployProfiled(nil, opts(t)); err == nil {
		t.Error("nil profile set accepted")
	}
}

func TestDeployBatchMismatch(t *testing.T) {
	d, err := Deploy(workflow.IntelligentAssistant(), opts(t))
	if err != nil {
		t.Fatal(err)
	}
	o := opts(t)
	o.Batch = 2
	if _, err := DeployProfiled(d.Profiles, o); err == nil {
		t.Error("batch mismatch accepted")
	}
}

func TestDeployModes(t *testing.T) {
	for _, mode := range []synth.Mode{synth.ModeJanus, synth.ModeJanusMinus} {
		o := opts(t)
		o.Mode = mode
		d, err := Deploy(workflow.VideoAnalyze(), o)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if d.Bundle().TotalRanges() == 0 {
			t.Fatalf("mode %v: empty bundle", mode)
		}
	}
}

func TestRegenerationSwapsBundle(t *testing.T) {
	o := opts(t)
	o.MissThreshold = 0.5
	d, err := Deploy(workflow.IntelligentAssistant(), o)
	if err != nil {
		t.Fatal(err)
	}
	before := d.Adapter.Bundle()
	// Force misses past the threshold: tiny remaining budgets always miss.
	for i := 0; i < 150; i++ {
		if _, err := d.Adapter.Decide(0, time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	// Regeneration runs asynchronously; poll for the swap.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if d.Adapter.Bundle() != before {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("bundle never regenerated")
}

func TestDeployProfiledReuse(t *testing.T) {
	d, err := Deploy(workflow.IntelligentAssistant(), opts(t))
	if err != nil {
		t.Fatal(err)
	}
	// Re-synthesize with a different weight over the same profiles.
	o := opts(t)
	o.Weight = 3
	d3, err := DeployProfiled(d.Profiles, o)
	if err != nil {
		t.Fatal(err)
	}
	if d3.Bundle().Weight != 3 {
		t.Fatalf("weight = %v", d3.Bundle().Weight)
	}
	// Higher weight condenses to fewer or equal hints (Fig 8 trend).
	if d3.Bundle().TotalRanges() > d.Bundle().TotalRanges() {
		t.Fatalf("weight 3 bundle larger than weight 1: %d vs %d",
			d3.Bundle().TotalRanges(), d.Bundle().TotalRanges())
	}
}
