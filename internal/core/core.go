// Package core wires Janus's three components — Profiler, Synthesizer, and
// Adapter (§III) — into the deployment pipeline a developer drives:
//
//  1. profile the workflow's functions across allocations and concurrency
//     (developer side, offline),
//  2. synthesize and condense hints tables under a weight and exploration
//     mode (developer side, offline),
//  3. hand the condensed bundle to the provider-side adapter that performs
//     the per-request runtime adaptation.
//
// The package also closes the feedback loop: when the adapter's miss rate
// crosses its threshold, the deployment re-runs profiling and synthesis
// asynchronously and swaps the new bundle in (§III-D).
package core

import (
	"fmt"

	"janus/internal/adapter"
	"janus/internal/hints"
	"janus/internal/interfere"
	"janus/internal/perfmodel"
	"janus/internal/profile"
	"janus/internal/synth"
	"janus/internal/workflow"
)

// Options configures a deployment end to end.
type Options struct {
	// Functions resolves workflow nodes to latency models.
	Functions map[string]*perfmodel.Function
	// Colocation and Interference describe the contention mix profiling
	// should reproduce.
	Colocation   *interfere.CountSampler
	Interference *interfere.Model
	// Seed roots the profiling streams.
	Seed uint64
	// Batch is the concurrency level to deploy for (default 1).
	Batch int
	// Weight is the synthesizer's head weight W (default 1).
	Weight float64
	// Mode selects Janus / Janus- / Janus+ (default Janus).
	Mode synth.Mode
	// BudgetStepMs is the synthesis sweep granularity (default 1 ms).
	BudgetStepMs int
	// BudgetOverrideMs optionally replaces the Eq. 3 range for suffix 0.
	BudgetOverrideMs [2]int
	// SamplesPerConfig overrides the profiler's per-cell sample count.
	SamplesPerConfig int
	// MissThreshold overrides the adapter's regeneration threshold.
	MissThreshold float64
	// DisableRegeneration turns off the asynchronous reprofiling loop;
	// controlled experiments need bundles to stay fixed for a whole run.
	DisableRegeneration bool
	// Parallelism bounds synthesis workers.
	Parallelism int
}

// Deployment is a workflow deployed under Janus: its profiles, synthesized
// hints, and live adapter.
type Deployment struct {
	Workflow *workflow.Workflow
	Batch    int
	Profiles *profile.Set
	Result   *synth.Result
	Adapter  *adapter.Adapter

	opts Options
}

// Deploy runs the offline pipeline for a workflow and returns the live
// deployment.
func Deploy(w *workflow.Workflow, opts Options) (*Deployment, error) {
	if w == nil {
		return nil, fmt.Errorf("core: nil workflow")
	}
	if opts.Batch == 0 {
		opts.Batch = 1
	}
	prof, err := newProfiler(opts)
	if err != nil {
		return nil, err
	}
	set, err := prof.ProfileWorkflow(w, opts.Batch)
	if err != nil {
		return nil, err
	}
	return DeployProfiled(set, opts)
}

// DeployProfiled runs synthesis and adapter construction over existing
// profiles (reprofiling is the expensive step; sweeps reuse profiles).
func DeployProfiled(set *profile.Set, opts Options) (*Deployment, error) {
	if set == nil {
		return nil, fmt.Errorf("core: nil profile set")
	}
	if opts.Batch == 0 {
		opts.Batch = set.Batch
	}
	if opts.Batch != set.Batch {
		return nil, fmt.Errorf("core: options batch %d does not match profiled batch %d", opts.Batch, set.Batch)
	}
	s, err := synth.New(synth.Config{
		Profiles:         set,
		Weight:           opts.Weight,
		Mode:             opts.Mode,
		BudgetStepMs:     opts.BudgetStepMs,
		BudgetOverrideMs: opts.BudgetOverrideMs,
		Parallelism:      opts.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	res, err := s.GenerateBundle()
	if err != nil {
		return nil, err
	}
	d := &Deployment{
		Workflow: set.Workflow,
		Batch:    opts.Batch,
		Profiles: set,
		Result:   res,
		opts:     opts,
	}
	var adapterOpts []adapter.Option
	if !opts.DisableRegeneration {
		adapterOpts = append(adapterOpts, adapter.WithRegenerateCallback(func(float64) { d.regenerate() }))
	}
	if opts.MissThreshold > 0 {
		adapterOpts = append(adapterOpts, adapter.WithMissThreshold(opts.MissThreshold))
	}
	a, err := adapter.New(res.Bundle, adapterOpts...)
	if err != nil {
		return nil, err
	}
	d.Adapter = a
	return d, nil
}

func newProfiler(opts Options) (*profile.Profiler, error) {
	prof, err := profile.NewProfiler(opts.Functions, opts.Colocation, opts.Interference, opts.Seed)
	if err != nil {
		return nil, err
	}
	if opts.SamplesPerConfig > 0 {
		prof.SamplesPerConfig = opts.SamplesPerConfig
	}
	return prof, nil
}

// Bundle returns the deployed hints bundle.
func (d *Deployment) Bundle() *hints.Bundle { return d.Result.Bundle }

// Allocator returns a platform allocator serving this deployment under the
// given display name.
func (d *Deployment) Allocator(name string) *adapter.Allocator {
	return &adapter.Allocator{Adapter: d.Adapter, System: name}
}

// regenerate re-runs profiling and synthesis asynchronously (it executes on
// the adapter's notification goroutine) and swaps in the fresh bundle.
// Serving continues on the old bundle meanwhile — the paper's asynchronous
// regeneration trade-off.
func (d *Deployment) regenerate() {
	opts := d.opts
	opts.Seed++ // observe fresh runtime conditions
	prof, err := newProfiler(opts)
	if err != nil {
		return
	}
	set, err := prof.ProfileWorkflow(d.Workflow, d.Batch)
	if err != nil {
		return
	}
	s, err := synth.New(synth.Config{
		Profiles:         set,
		Weight:           opts.Weight,
		Mode:             opts.Mode,
		BudgetStepMs:     opts.BudgetStepMs,
		BudgetOverrideMs: opts.BudgetOverrideMs,
		Parallelism:      opts.Parallelism,
	})
	if err != nil {
		return
	}
	res, err := s.GenerateBundle()
	if err != nil {
		return
	}
	_ = d.Adapter.Replace(res.Bundle)
}
