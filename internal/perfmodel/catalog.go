package perfmodel

import (
	"fmt"
	"time"

	"janus/internal/interfere"
	"janus/internal/wset"
)

// The standard function catalog. Calibration targets (from the paper):
//
//   - IA chain (OD -> QA -> TS): SLO 3 s at concurrency 1; latency variance
//     from working sets up to ~3.8x (Fig 1b); QA P99/P50 ~2.17 at
//     concurrency 1, ~2.32 at concurrency 2 (§V-B); budget range explored
//     2-7 s.
//   - VA chain (FE -> ICL -> ICO): SLO 1.5 s; P99/P50 ratios 1.46 / 1.56 /
//     1.37 (§V-A); FE and ICO are not batchable.
//   - Micro functions: dominant-dimension contention up to 8.1x with six
//     co-located instances (Fig 1c).
//
// Bases are chosen so that the chain is feasible at its SLO with maximum
// allocations but requires clearly more than minimum allocations — the
// regime where sizing policy differences show up. The IA functions are
// ML-inference kernels that scale near-linearly with cores in the 1-3 core
// range (low serial fractions), which is what makes the paper's 2-7 s
// budget exploration range meaningful: at minimum allocations the chain's
// P99 approaches 7 s, while at maximum allocations it fits the 3 s SLO.

// iaBatchLatency returns IA batch-latency multipliers: batching amortizes
// per-request overheads, so latency grows sublinearly in batch size.
func iaBatchLatency(c2, c3 float64) map[int]float64 {
	return map[int]float64{1: 1, 2: c2, 3: c3}
}

// iaBatchNoise widens distributions at higher concurrency.
func iaBatchNoise() map[int]float64 {
	return map[int]float64{2: 0.035, 3: 0.06}
}

// ObjectDetection models the IA chain's first function (Faster-RCNN-style
// detector over COCO2014 images).
func ObjectDetection() *Function {
	return MustNew(Params{
		Name:          "od",
		Base:          888 * time.Millisecond,
		SerialFrac:    0.12,
		RefMillicores: 1000,
		Dimension:     interfere.CPU,
		WorkingSet:    wset.DefaultCOCO(),
		NoiseSigma:    0.05,
		BatchLatency:  iaBatchLatency(1.30, 1.55),
		BatchNoise:    iaBatchNoise(),
	})
}

// QuestionAnswering models the IA chain's second function (DistilBERT-style
// extractive QA over SQuAD2.0 passages). Transformer inference on CPU is
// compute-bound at these model sizes, so contention hits the CPU dimension.
func QuestionAnswering() *Function {
	return MustNew(Params{
		Name:          "qa",
		Base:          1192 * time.Millisecond,
		SerialFrac:    0.15,
		RefMillicores: 1000,
		Dimension:     interfere.CPU,
		WorkingSet:    wset.DefaultSQuAD(),
		NoiseSigma:    0.05,
		BatchLatency:  iaBatchLatency(1.32, 1.58),
		BatchNoise:    iaBatchNoise(),
	})
}

// TextToSpeech models the IA chain's third function (MMS-TTS-style speech
// synthesis of the answer).
func TextToSpeech() *Function {
	return MustNew(Params{
		Name:          "ts",
		Base:          754 * time.Millisecond,
		SerialFrac:    0.18,
		RefMillicores: 1000,
		Dimension:     interfere.CPU,
		WorkingSet:    &wset.LogNormal{Median: 1, Sigma: 0.34, Lo: 0.4, Hi: 3.0, Label: "answer-length"},
		NoiseSigma:    0.05,
		BatchLatency:  iaBatchLatency(1.28, 1.48),
		BatchNoise:    iaBatchNoise(),
	})
}

// FrameExtraction models the VA chain's first function (ffmpeg frame
// extraction over fixed-duration, fixed-resolution videos). Not batchable.
func FrameExtraction() *Function {
	return MustNew(Params{
		Name:          "fe",
		Base:          365 * time.Millisecond,
		SerialFrac:    0.38,
		RefMillicores: 1000,
		Dimension:     interfere.CPU,
		WorkingSet:    &wset.LogNormal{Median: 1, Sigma: 0.15, Lo: 0.55, Hi: 2.2, Label: "video-content"},
		NoiseSigma:    0.04,
	})
}

// ImageClassification models the VA chain's second function
// (SqueezeNet-style classification of extracted frames).
func ImageClassification() *Function {
	return MustNew(Params{
		Name:          "icl",
		Base:          385 * time.Millisecond,
		SerialFrac:    0.42,
		RefMillicores: 1000,
		Dimension:     interfere.CPU,
		WorkingSet:    &wset.LogNormal{Median: 1, Sigma: 0.17, Lo: 0.5, Hi: 2.4, Label: "frame-content"},
		NoiseSigma:    0.04,
		BatchLatency:  map[int]float64{1: 1, 2: 1.38, 3: 1.65},
		BatchNoise:    map[int]float64{2: 0.03, 3: 0.05},
	})
}

// ImageCompression models the VA chain's third function (archive
// compression of classified frames). Deflate-style compression is
// CPU-bound; the archive write is a small tail. Not batchable.
func ImageCompression() *Function {
	return MustNew(Params{
		Name:          "ico",
		Base:          330 * time.Millisecond,
		SerialFrac:    0.48,
		RefMillicores: 1000,
		Dimension:     interfere.CPU,
		WorkingSet:    &wset.LogNormal{Median: 1, Sigma: 0.12, Lo: 0.6, Hi: 2.0, Label: "archive-size"},
		NoiseSigma:    0.035,
	})
}

func microParams(name string, base time.Duration, dim interfere.Dimension) Params {
	return Params{
		Name:          name,
		Base:          base,
		SerialFrac:    0.5,
		RefMillicores: 1000,
		Dimension:     dim,
		WorkingSet:    wset.Constant(1),
		NoiseSigma:    0.03,
	}
}

// AESEncrypt is the CPU-dominant micro function (Fig 1c).
func AESEncrypt() *Function {
	return MustNew(microParams("aes-encrypt", 120*time.Millisecond, interfere.CPU))
}

// RedisRead is the memory-bandwidth-dominant micro function (Fig 1c):
// bulk reads from an in-memory store.
func RedisRead() *Function {
	return MustNew(microParams("redis-read", 90*time.Millisecond, interfere.Memory))
}

// SocketComm is the network-dominant micro function (Fig 1c).
func SocketComm() *Function {
	return MustNew(microParams("socket-comm", 100*time.Millisecond, interfere.Network))
}

// DiskWrite is the IO-dominant micro function (Fig 1c): writes to local
// disk.
func DiskWrite() *Function {
	return MustNew(microParams("disk-write", 110*time.Millisecond, interfere.IO))
}

// Catalog returns all standard functions keyed by name.
func Catalog() map[string]*Function {
	fns := []*Function{
		ObjectDetection(), QuestionAnswering(), TextToSpeech(),
		FrameExtraction(), ImageClassification(), ImageCompression(),
		AESEncrypt(), RedisRead(), SocketComm(), DiskWrite(),
	}
	out := make(map[string]*Function, len(fns))
	for _, f := range fns {
		out[f.Name()] = f
	}
	return out
}

// Lookup returns the named catalog function or an error listing the
// available names.
func Lookup(name string) (*Function, error) {
	c := Catalog()
	if f, ok := c[name]; ok {
		return f, nil
	}
	names := make([]string, 0, len(c))
	for n := range c {
		names = append(names, n)
	}
	return nil, fmt.Errorf("perfmodel: unknown function %q (have %v)", name, names)
}
