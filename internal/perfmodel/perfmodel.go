// Package perfmodel provides parametric execution-time models for the
// serverless functions evaluated in the paper: the Intelligent Assistant
// chain (object detection -> question answering -> text-to-speech), the
// Video Analyze chain (frame extraction -> image classification -> image
// compression), and the four micro-benchmark functions with distinct
// dominant resource dimensions (AES encryption / Redis read / socket
// communication / disk write).
//
// A function's latency for one invocation is
//
//	latency = Base * cpu(k) * batch(c) * workingSet * interference * noise
//
// where cpu(k) = serial + (1-serial) * Ref/k is an Amdahl-style scaling
// law over allocated millicores k (more cores only compress the parallel
// fraction, which is what produces the paper's diminishing "resilience" as
// k grows, Fig 7b), batch(c) is the concurrency multiplier, workingSet is
// drawn from the input distribution (package wset), interference from the
// co-location model (package interfere), and noise is multiplicative
// lognormal jitter.
//
// The randomness of an invocation is captured once in a Draw; latency is
// then a pure function of millicores, which is what lets the clairvoyant
// Optimal baseline evaluate "what would this exact request have cost at a
// different size".
package perfmodel

import (
	"fmt"
	"sort"
	"time"

	"janus/internal/interfere"
	"janus/internal/rng"
	"janus/internal/wset"
)

// Params configures a Function.
type Params struct {
	// Name identifies the function in workflows, profiles, and hints.
	Name string
	// Base is the latency at RefMillicores with working-set factor 1,
	// no co-location, and no noise.
	Base time.Duration
	// SerialFrac is the Amdahl serial fraction in [0, 1): the share of
	// Base that more CPU cannot compress.
	SerialFrac float64
	// RefMillicores is the allocation at which cpu(k) == 1.
	RefMillicores int
	// Dimension is the dominant resource demand, controlling how hard
	// co-location hits this function.
	Dimension interfere.Dimension
	// WorkingSet samples the input-size latency factor.
	WorkingSet wset.Sampler
	// NoiseSigma is the lognormal sigma of residual run-to-run jitter.
	NoiseSigma float64
	// BatchLatency maps batch size -> latency multiplier. Key 1 must be
	// present with value 1. Missing keys are unsupported batch sizes.
	BatchLatency map[int]float64
	// BatchNoise maps batch size -> additional noise sigma (batching
	// widens the latency distribution; §V-B measures QA's P99/P50 growing
	// from 2.17x to 2.32x at concurrency 2).
	BatchNoise map[int]float64
}

// Function is a validated, immutable executable-latency model.
type Function struct {
	p Params
}

// New validates params and builds a Function.
func New(p Params) (*Function, error) {
	if p.Name == "" {
		return nil, fmt.Errorf("perfmodel: function needs a name")
	}
	if p.Base <= 0 {
		return nil, fmt.Errorf("perfmodel: %s: Base must be positive, got %v", p.Name, p.Base)
	}
	if p.SerialFrac < 0 || p.SerialFrac >= 1 {
		return nil, fmt.Errorf("perfmodel: %s: SerialFrac must be in [0,1), got %v", p.Name, p.SerialFrac)
	}
	if p.RefMillicores <= 0 {
		return nil, fmt.Errorf("perfmodel: %s: RefMillicores must be positive", p.Name)
	}
	if p.WorkingSet == nil {
		return nil, fmt.Errorf("perfmodel: %s: WorkingSet sampler required", p.Name)
	}
	if p.NoiseSigma < 0 {
		return nil, fmt.Errorf("perfmodel: %s: NoiseSigma must be >= 0", p.Name)
	}
	if p.BatchLatency == nil {
		p.BatchLatency = map[int]float64{1: 1}
	}
	if f, ok := p.BatchLatency[1]; !ok || f != 1 {
		return nil, fmt.Errorf("perfmodel: %s: BatchLatency must map 1 -> 1", p.Name)
	}
	for c, f := range p.BatchLatency {
		if c < 1 || f < 1 {
			return nil, fmt.Errorf("perfmodel: %s: invalid batch entry %d -> %v", p.Name, c, f)
		}
	}
	return &Function{p: p}, nil
}

// MustNew is New that panics on error; for package-level catalogs.
func MustNew(p Params) *Function {
	f, err := New(p)
	if err != nil {
		panic(err)
	}
	return f
}

// Name reports the function name.
func (f *Function) Name() string { return f.p.Name }

// Dimension reports the dominant resource dimension.
func (f *Function) Dimension() interfere.Dimension { return f.p.Dimension }

// WorkingSet reports the working-set sampler.
func (f *Function) WorkingSet() wset.Sampler { return f.p.WorkingSet }

// Base reports the reference latency.
func (f *Function) Base() time.Duration { return f.p.Base }

// CPUFactor returns the Amdahl latency multiplier at k millicores relative
// to RefMillicores. It panics on non-positive k.
func (f *Function) CPUFactor(millicores int) float64 {
	if millicores <= 0 {
		panic(fmt.Sprintf("perfmodel: %s: non-positive millicores %d", f.p.Name, millicores))
	}
	ratio := float64(f.p.RefMillicores) / float64(millicores)
	return f.p.SerialFrac + (1-f.p.SerialFrac)*ratio
}

// SupportsBatch reports whether the function can execute batch size c.
// Frame extraction and image compression in the VA chain are not batchable,
// which is why the paper limits VA to concurrency 1.
func (f *Function) SupportsBatch(c int) bool {
	_, ok := f.p.BatchLatency[c]
	return ok
}

// BatchSizes lists the supported batch sizes in increasing order.
func (f *Function) BatchSizes() []int {
	out := make([]int, 0, len(f.p.BatchLatency))
	for c := range f.p.BatchLatency {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// BatchFactor returns the latency multiplier at batch size c. It panics on
// unsupported sizes; call SupportsBatch first when unsure.
func (f *Function) BatchFactor(c int) float64 {
	factor, ok := f.p.BatchLatency[c]
	if !ok {
		panic(fmt.Sprintf("perfmodel: %s does not support batch size %d", f.p.Name, c))
	}
	return factor
}

// Draw captures all randomness of one invocation. Latency(draw, k) is then
// deterministic in k.
type Draw struct {
	// WS is the working-set factor for this input.
	WS float64
	// Slowdown is the co-location interference factor (>= 1).
	Slowdown float64
	// Noise is the residual multiplicative jitter.
	Noise float64
	// Batch is the batch size the invocation executes with.
	Batch int
}

// NewDraw samples an invocation's randomness: its input, the interference
// it experiences with `colocated` co-located instances, and jitter.
// A nil interference model means no contention (factor 1).
func (f *Function) NewDraw(s *rng.Stream, batch, colocated int, im *interfere.Model) Draw {
	if !f.SupportsBatch(batch) {
		panic(fmt.Sprintf("perfmodel: %s does not support batch size %d", f.p.Name, batch))
	}
	slowdown := 1.0
	if im != nil {
		slowdown = im.Sample(f.p.Dimension, colocated, s)
	}
	sigma := f.p.NoiseSigma + f.p.BatchNoise[batch]
	noise := 1.0
	if sigma > 0 {
		noise = s.LogNormalClipped(0, sigma, 0.7, 1.6)
	}
	return Draw{
		WS:       f.p.WorkingSet.Sample(s),
		Slowdown: slowdown,
		Noise:    noise,
		Batch:    batch,
	}
}

// Latency evaluates the model for a draw at the given allocation.
func (f *Function) Latency(d Draw, millicores int) time.Duration {
	factor := f.CPUFactor(millicores) * f.BatchFactor(d.Batch) * d.WS * d.Slowdown * d.Noise
	return time.Duration(float64(f.p.Base) * factor)
}

// Scaled returns a copy of the function with its base latency multiplied
// by factor — what-if modeling for application updates (a new model
// version that runs slower or faster) and staleness experiments.
func (f *Function) Scaled(factor float64) *Function {
	if factor <= 0 {
		panic(fmt.Sprintf("perfmodel: %s: non-positive scale factor %v", f.p.Name, factor))
	}
	p := f.p
	p.Base = time.Duration(float64(p.Base) * factor)
	return MustNew(p)
}
