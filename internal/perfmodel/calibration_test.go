package perfmodel

import (
	"fmt"
	"testing"
	"time"

	"janus/internal/interfere"
	"janus/internal/rng"
	"janus/internal/stats"
)

// profileOnce samples n invocations of f at k millicores / batch c with the
// co-location mix cs, mirroring what the offline profiler does.
func profileOnce(f *Function, k, c, n int, cs *interfere.CountSampler, seed uint64) *stats.Sample {
	s := rng.New(seed).Split(fmt.Sprintf("%s/%d/%d", f.Name(), k, c))
	im := interfere.Default()
	out := &stats.Sample{}
	for i := 0; i < n; i++ {
		d := f.NewDraw(s, c, cs.Sample(s), im)
		out.AddDuration(f.Latency(d, k))
	}
	return out
}

func iaMix(t *testing.T) *interfere.CountSampler {
	t.Helper()
	cs, err := interfere.NewCountSampler([]float64{0.5, 0.35, 0.15})
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

func vaMix(t *testing.T) *interfere.CountSampler {
	t.Helper()
	cs, err := interfere.NewCountSampler([]float64{0.4, 0.4, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

// TestIAFeasibilityRegime locks in the sizing regime the experiments need:
// the IA chain must be infeasible at P99 with minimum allocations under its
// 3 s SLO (otherwise sizing policy is trivial) but feasible with maximum
// allocations (otherwise no policy can meet the SLO).
func TestIAFeasibilityRegime(t *testing.T) {
	cs := iaMix(t)
	chain := []*Function{ObjectDetection(), QuestionAnswering(), TextToSpeech()}
	sumAt := func(k, c int) time.Duration {
		var total time.Duration
		for _, f := range chain {
			total += profileOnce(f, k, c, 4000, cs, 1).PercentileDuration(99)
		}
		return total
	}
	minSum := sumAt(1000, 1)
	maxSum := sumAt(3000, 1)
	if minSum < 5500*time.Millisecond || minSum > 7500*time.Millisecond {
		t.Errorf("IA sum of P99 at Kmin = %v, want within [5.5s, 7.5s] (the paper explores budgets to 7s)", minSum)
	}
	if maxSum >= 2900*time.Millisecond {
		t.Errorf("IA sum of P99 at Kmax = %v, must leave headroom under the 3s SLO", maxSum)
	}
	if maxSum < 1800*time.Millisecond {
		t.Errorf("IA sum of P99 at Kmax = %v suspiciously fast; sizing would be trivial", maxSum)
	}
	// Higher concurrency with the paper's relaxed SLOs (4 s and 5 s).
	if s := sumAt(3000, 2); s >= 3900*time.Millisecond {
		t.Errorf("IA conc-2 sum of P99 at Kmax = %v, must fit the 4s SLO", s)
	}
	if s := sumAt(3000, 3); s >= 4900*time.Millisecond {
		t.Errorf("IA conc-3 sum of P99 at Kmax = %v, must fit the 5s SLO", s)
	}
}

// TestVAFeasibilityRegime does the same for the VA chain and its 1.5 s SLO.
func TestVAFeasibilityRegime(t *testing.T) {
	cs := vaMix(t)
	chain := []*Function{FrameExtraction(), ImageClassification(), ImageCompression()}
	sumAt := func(k int) time.Duration {
		var total time.Duration
		for _, f := range chain {
			total += profileOnce(f, k, 1, 4000, cs, 2).PercentileDuration(99)
		}
		return total
	}
	minSum := sumAt(1000)
	maxSum := sumAt(3000)
	if minSum < 1550*time.Millisecond || minSum > 2300*time.Millisecond {
		t.Errorf("VA sum of P99 at Kmin = %v, want within [1.55s, 2.3s]", minSum)
	}
	if maxSum >= 1450*time.Millisecond {
		t.Errorf("VA sum of P99 at Kmax = %v, must leave headroom under the 1.5s SLO", maxSum)
	}
}

// TestVATailRatios checks the published per-function P99/P50 ratios
// (1.46, 1.56, 1.37) within tolerance, including interference.
func TestVATailRatios(t *testing.T) {
	cs := vaMix(t)
	cases := []struct {
		f      *Function
		target float64
	}{
		{FrameExtraction(), 1.46},
		{ImageClassification(), 1.56},
		{ImageCompression(), 1.37},
	}
	for _, c := range cases {
		s := profileOnce(c.f, 2000, 1, 8000, cs, 3)
		ratio := s.Percentile(99) / s.Percentile(50)
		if ratio < c.target-0.18 || ratio > c.target+0.18 {
			t.Errorf("%s: P99/P50 = %.3f, want %.2f +/- 0.18", c.f.Name(), ratio, c.target)
		}
	}
}

// TestQATailRatioGrowsWithBatch reproduces §V-B's observation that QA's
// P99/P50 gap widens from ~2.17x to ~2.32x when concurrency rises.
func TestQATailRatioGrowsWithBatch(t *testing.T) {
	cs := iaMix(t)
	qa := QuestionAnswering()
	r1 := func() float64 {
		s := profileOnce(qa, 2000, 1, 8000, cs, 4)
		return s.Percentile(99) / s.Percentile(50)
	}()
	r2 := func() float64 {
		s := profileOnce(qa, 2000, 2, 8000, cs, 4)
		return s.Percentile(99) / s.Percentile(50)
	}()
	if r1 < 1.7 || r1 > 2.7 {
		t.Errorf("QA conc-1 P99/P50 = %.3f, want ~2.17 (+/- 0.5)", r1)
	}
	if r2 <= r1 {
		t.Errorf("QA P99/P50 should widen with batch: conc1=%.3f conc2=%.3f", r1, r2)
	}
}

// TestIAWorkingSetVariance reproduces Fig 1b's up-to-3.8x spread.
func TestIAWorkingSetVariance(t *testing.T) {
	cs := iaMix(t)
	maxRatio := 0.0
	for _, f := range []*Function{ObjectDetection(), QuestionAnswering(), TextToSpeech()} {
		s := profileOnce(f, 2000, 1, 8000, cs, 5)
		ratio := s.Percentile(99) / s.Percentile(1)
		if ratio > maxRatio {
			maxRatio = ratio
		}
	}
	if maxRatio < 3.0 || maxRatio > 5.5 {
		t.Errorf("widest IA P99/P1 = %.2f, want near the paper's 3.8x", maxRatio)
	}
}
