package perfmodel

import (
	"math"
	"strings"
	"testing"
	"time"

	"janus/internal/interfere"
	"janus/internal/rng"
	"janus/internal/wset"
)

func valid() Params {
	return Params{
		Name:          "f",
		Base:          100 * time.Millisecond,
		SerialFrac:    0.3,
		RefMillicores: 1000,
		WorkingSet:    wset.Constant(1),
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Params)
		errHas string
	}{
		{"empty name", func(p *Params) { p.Name = "" }, "name"},
		{"zero base", func(p *Params) { p.Base = 0 }, "Base"},
		{"negative base", func(p *Params) { p.Base = -time.Second }, "Base"},
		{"serial frac 1", func(p *Params) { p.SerialFrac = 1 }, "SerialFrac"},
		{"serial frac negative", func(p *Params) { p.SerialFrac = -0.1 }, "SerialFrac"},
		{"zero ref cores", func(p *Params) { p.RefMillicores = 0 }, "RefMillicores"},
		{"nil working set", func(p *Params) { p.WorkingSet = nil }, "WorkingSet"},
		{"negative noise", func(p *Params) { p.NoiseSigma = -1 }, "NoiseSigma"},
		{"batch 1 missing", func(p *Params) { p.BatchLatency = map[int]float64{2: 1.5} }, "BatchLatency"},
		{"batch 1 not unity", func(p *Params) { p.BatchLatency = map[int]float64{1: 1.2} }, "BatchLatency"},
		{"batch factor below 1", func(p *Params) { p.BatchLatency = map[int]float64{1: 1, 2: 0.8} }, "batch"},
		{"batch size below 1", func(p *Params) { p.BatchLatency = map[int]float64{1: 1, 0: 1.5} }, "batch"},
	}
	for _, c := range cases {
		p := valid()
		c.mutate(&p)
		_, err := New(p)
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.errHas) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.errHas)
		}
	}
}

func TestCPUFactorAmdahl(t *testing.T) {
	f := MustNew(valid()) // serial 0.3
	if got := f.CPUFactor(1000); got != 1 {
		t.Fatalf("CPUFactor(ref) = %v, want 1", got)
	}
	// At 2x cores only the parallel 70% halves: 0.3 + 0.7/2 = 0.65.
	if got := f.CPUFactor(2000); math.Abs(got-0.65) > 1e-12 {
		t.Fatalf("CPUFactor(2000) = %v, want 0.65", got)
	}
	// Diminishing returns: factor can never drop below the serial fraction.
	if got := f.CPUFactor(1000000); got < 0.3 {
		t.Fatalf("CPUFactor(huge) = %v below serial fraction", got)
	}
	// Fewer cores than reference slow the function down.
	if got := f.CPUFactor(500); got != 1.7 {
		t.Fatalf("CPUFactor(500) = %v, want 1.7", got)
	}
}

func TestCPUFactorMonotone(t *testing.T) {
	f := ObjectDetection()
	prev := f.CPUFactor(1000)
	for k := 1100; k <= 3000; k += 100 {
		cur := f.CPUFactor(k)
		if cur >= prev {
			t.Fatalf("CPUFactor(%d) = %v did not decrease from %v", k, cur, prev)
		}
		prev = cur
	}
}

func TestCPUFactorPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CPUFactor(0) did not panic")
		}
	}()
	MustNew(valid()).CPUFactor(0)
}

func TestBatchSupport(t *testing.T) {
	od := ObjectDetection()
	if !od.SupportsBatch(1) || !od.SupportsBatch(3) {
		t.Fatal("OD should support batches 1-3")
	}
	if od.SupportsBatch(4) {
		t.Fatal("OD should not support batch 4")
	}
	fe := FrameExtraction()
	if fe.SupportsBatch(2) {
		t.Fatal("FE must not be batchable (paper limits VA to concurrency 1)")
	}
	sizes := od.BatchSizes()
	if len(sizes) != 3 || sizes[0] != 1 || sizes[2] != 3 {
		t.Fatalf("BatchSizes = %v", sizes)
	}
}

func TestBatchFactorSublinear(t *testing.T) {
	for _, f := range []*Function{ObjectDetection(), QuestionAnswering(), TextToSpeech()} {
		b2, b3 := f.BatchFactor(2), f.BatchFactor(3)
		if b2 <= 1 || b2 >= 2 {
			t.Errorf("%s: batch-2 factor %v should amortize (1 < f < 2)", f.Name(), b2)
		}
		if b3 <= b2 || b3 >= 3 {
			t.Errorf("%s: batch-3 factor %v should grow but stay below 3", f.Name(), b3)
		}
	}
}

func TestBatchFactorPanicsOnUnsupported(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BatchFactor(9) did not panic")
		}
	}()
	ObjectDetection().BatchFactor(9)
}

func TestNewDrawPanicsOnUnsupportedBatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDraw with unsupported batch did not panic")
		}
	}()
	FrameExtraction().NewDraw(rng.New(1), 2, 1, nil)
}

func TestLatencyDeterministicGivenDraw(t *testing.T) {
	f := ObjectDetection()
	d := f.NewDraw(rng.New(7), 1, 2, interfere.Default())
	l1 := f.Latency(d, 1500)
	l2 := f.Latency(d, 1500)
	if l1 != l2 {
		t.Fatal("Latency is not deterministic for a fixed draw")
	}
}

func TestLatencyDecreasesWithCores(t *testing.T) {
	f := QuestionAnswering()
	d := f.NewDraw(rng.New(8), 1, 1, nil)
	prev := f.Latency(d, 1000)
	for k := 1100; k <= 3000; k += 100 {
		cur := f.Latency(d, k)
		if cur >= prev {
			t.Fatalf("Latency(%d) = %v did not decrease from %v", k, cur, prev)
		}
		prev = cur
	}
}

func TestLatencyGrowsWithBatch(t *testing.T) {
	f := QuestionAnswering()
	s := rng.New(9)
	d1 := f.NewDraw(s, 1, 1, nil)
	d2, d3 := d1, d1
	d2.Batch, d3.Batch = 2, 3
	l1, l2, l3 := f.Latency(d1, 2000), f.Latency(d2, 2000), f.Latency(d3, 2000)
	if !(l1 < l2 && l2 < l3) {
		t.Fatalf("latencies by batch = %v, %v, %v; want increasing", l1, l2, l3)
	}
}

func TestNewDrawNilInterferenceModel(t *testing.T) {
	f := TextToSpeech()
	d := f.NewDraw(rng.New(10), 1, 6, nil)
	if d.Slowdown != 1 {
		t.Fatalf("nil model slowdown = %v, want 1", d.Slowdown)
	}
}

func TestNewDrawInterferenceApplied(t *testing.T) {
	f := SocketComm() // network-dominant: hit hardest
	s := rng.New(11)
	im := interfere.Default()
	total := 0.0
	n := 2000
	for i := 0; i < n; i++ {
		total += f.NewDraw(s, 1, 6, im).Slowdown
	}
	mean := total / float64(n)
	if mean < 7.0 || mean > 9.2 {
		t.Fatalf("mean slowdown at 6 co-located network instances = %v, want ~8.1", mean)
	}
}

func TestCatalogComplete(t *testing.T) {
	c := Catalog()
	want := []string{"od", "qa", "ts", "fe", "icl", "ico", "aes-encrypt", "redis-read", "socket-comm", "disk-write"}
	if len(c) != len(want) {
		t.Fatalf("catalog has %d functions, want %d", len(c), len(want))
	}
	for _, n := range want {
		if c[n] == nil {
			t.Errorf("catalog missing %q", n)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("od"); err != nil {
		t.Fatalf("Lookup(od): %v", err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("Lookup(nope) should fail")
	}
}

func TestAccessors(t *testing.T) {
	f := ObjectDetection()
	if f.Name() != "od" {
		t.Error("Name changed")
	}
	if f.Dimension() != interfere.CPU {
		t.Error("OD dimension changed")
	}
	if f.WorkingSet().Name() != "coco-objects" {
		t.Error("OD working set changed")
	}
	if f.Base() <= 0 {
		t.Error("Base not positive")
	}
}

func TestDefaultBatchLatencyWhenNil(t *testing.T) {
	f := MustNew(valid())
	if !f.SupportsBatch(1) || f.SupportsBatch(2) {
		t.Fatal("nil BatchLatency should default to batch-1 only")
	}
	if f.BatchFactor(1) != 1 {
		t.Fatal("default batch-1 factor should be 1")
	}
}

func TestScaled(t *testing.T) {
	od := ObjectDetection()
	slow := od.Scaled(1.5)
	d := od.NewDraw(rng.New(42), 1, 1, nil)
	l0, l1 := od.Latency(d, 2000), slow.Latency(d, 2000)
	ratio := float64(l1) / float64(l0)
	if ratio < 1.49 || ratio > 1.51 {
		t.Fatalf("Scaled(1.5) latency ratio = %v", ratio)
	}
	if od.Base() == slow.Base() {
		t.Fatal("Scaled mutated or aliased the original")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Scaled(0) did not panic")
		}
	}()
	od.Scaled(0)
}
