package workflow

import (
	"strings"
	"testing"
	"time"
)

// TestNewValidationEdgeCases pins a distinct, descriptive error for each
// spec mistake: self-loop edges, duplicate edges, edges naming unknown
// nodes, and disconnected nodes.
func TestNewValidationEdgeCases(t *testing.T) {
	nodes := []Node{{Name: "a", Function: "f"}, {Name: "b", Function: "f"}, {Name: "c", Function: "f"}}
	cases := []struct {
		name  string
		edges [][2]string
		want  string
	}{
		{"self-loop", [][2]string{{"a", "a"}, {"a", "b"}, {"b", "c"}}, "self edge"},
		{"duplicate edge", [][2]string{{"a", "b"}, {"a", "b"}, {"b", "c"}}, "duplicate edge"},
		{"unknown from", [][2]string{{"ghost", "b"}, {"a", "b"}, {"b", "c"}}, `edge from unknown node "ghost"`},
		{"unknown to", [][2]string{{"a", "ghost"}, {"a", "b"}, {"b", "c"}}, `edge to unknown node "ghost"`},
		{"disconnected node", [][2]string{{"a", "b"}}, `node "c" is disconnected`},
	}
	seen := map[string]bool{}
	for _, c := range cases {
		_, err := New("bad", time.Second, nodes, c.edges)
		if err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
		if seen[err.Error()] {
			t.Errorf("%s: error %q duplicates another case's message", c.name, err)
		}
		seen[err.Error()] = true
	}
	// A single-node workflow has no edges by construction and stays valid.
	if _, err := New("solo", time.Second, nodes[:1], nil); err != nil {
		t.Fatalf("single-node workflow rejected: %v", err)
	}
	// An entirely edge-less multi-node workflow is a pure fork (one
	// decision group), the shape a single-stage parallel workflow
	// converts to — also valid.
	fork, err := New("fork", time.Second, nodes, nil)
	if err != nil {
		t.Fatalf("edge-less fork rejected: %v", err)
	}
	if groups := fork.DecisionGroups(); len(groups) != 1 || len(groups[0].Nodes) != 3 {
		t.Fatalf("edge-less fork groups = %+v", groups)
	}
}

func crossDAG(t *testing.T) *Workflow {
	t.Helper()
	nodes := []Node{
		{Name: "pre", Function: "f"},
		{Name: "detect", Function: "f"},
		{Name: "classify", Function: "f"},
		{Name: "ocr", Function: "f"},
		{Name: "fuse", Function: "f"},
	}
	edges := [][2]string{
		{"pre", "detect"}, {"pre", "classify"},
		{"detect", "ocr"},
		{"detect", "fuse"}, {"classify", "fuse"}, {"ocr", "fuse"},
	}
	w, err := New("cross", time.Second, nodes, edges)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestDecisionGroupsChainAndSP(t *testing.T) {
	// Chain: one group per node, in order.
	chain, err := NewChain("c", time.Second, "f1", "f2", "f3")
	if err != nil {
		t.Fatal(err)
	}
	groups := chain.DecisionGroups()
	if len(groups) != 3 {
		t.Fatalf("chain has %d groups", len(groups))
	}
	for i, g := range groups {
		if len(g.Nodes) != 1 {
			t.Fatalf("chain group %d has %d nodes", i, len(g.Nodes))
		}
	}
	if groups[0].Nodes[0].Name != "f1" || len(groups[0].Preds) != 0 {
		t.Fatalf("root group = %+v", groups[0])
	}
	if groups[2].Nodes[0].Name != "f3" || len(groups[2].Preds) != 1 || groups[2].Preds[0] != "f2" {
		t.Fatalf("tail group = %+v", groups[2])
	}

	// Series-parallel: groups reproduce the stage decomposition exactly.
	sp, err := NewSeriesParallel("sp", time.Second, [][]string{{"fe"}, {"icl", "ico"}, {"agg"}})
	if err != nil {
		t.Fatal(err)
	}
	stages, err := sp.SeriesParallel()
	if err != nil {
		t.Fatal(err)
	}
	spGroups := sp.DecisionGroups()
	if len(spGroups) != len(stages) {
		t.Fatalf("%d groups for %d stages", len(spGroups), len(stages))
	}
	for i := range stages {
		if len(spGroups[i].Nodes) != len(stages[i]) {
			t.Fatalf("group %d has %d nodes, stage has %d", i, len(spGroups[i].Nodes), len(stages[i]))
		}
		for b := range stages[i] {
			if spGroups[i].Nodes[b] != stages[i][b] {
				t.Fatalf("group %d branch %d = %+v, stage has %+v", i, b, spGroups[i].Nodes[b], stages[i][b])
			}
		}
	}
}

func TestDecisionGroupsCrossEdgeDAG(t *testing.T) {
	w := crossDAG(t)
	if w.IsSeriesParallel() || w.IsChain() {
		t.Fatal("cross-edge DAG misclassified as chain/SP")
	}
	groups := w.DecisionGroups()
	if len(groups) != 4 {
		t.Fatalf("%d groups: %+v", len(groups), groups)
	}
	names := func(g Group) string {
		var out []string
		for _, n := range g.Nodes {
			out = append(out, n.Name)
		}
		return strings.Join(out, ",")
	}
	want := []string{"pre", "detect,classify", "ocr", "fuse"}
	for i, g := range groups {
		if names(g) != want[i] {
			t.Fatalf("group %d = %s, want %s", i, names(g), want[i])
		}
	}
	// fuse joins three nodes from two different groups.
	if len(groups[3].Preds) != 3 {
		t.Fatalf("fuse preds = %v", groups[3].Preds)
	}
}

func TestGroupConeLayers(t *testing.T) {
	w := crossDAG(t)
	cases := []struct {
		g    int
		want [][]int
	}{
		{0, [][]int{{0}, {1}, {2}, {3}}},
		{1, [][]int{{1}, {2}, {3}}},
		{2, [][]int{{2}, {3}}},
		{3, [][]int{{3}}},
	}
	for _, c := range cases {
		got := w.GroupConeLayers(c.g)
		if len(got) != len(c.want) {
			t.Fatalf("cone(%d) = %v, want %v", c.g, got, c.want)
		}
		for d := range got {
			if len(got[d]) != len(c.want[d]) {
				t.Fatalf("cone(%d) layer %d = %v, want %v", c.g, d, got[d], c.want[d])
			}
			for i := range got[d] {
				if got[d][i] != c.want[d][i] {
					t.Fatalf("cone(%d) layer %d = %v, want %v", c.g, d, got[d], c.want[d])
				}
			}
		}
	}
	if layers := w.GroupConeLayers(99); layers != nil {
		t.Fatalf("out-of-range cone = %v", layers)
	}

	// Two same-depth branches with distinct predecessor sets land in one
	// layer of the shared ancestor's cone: a -> b -> d, a -> c -> e, d/e
	// join at f. b and c share preds {a} (one group); d and e do not.
	nodes := []Node{
		{Name: "a", Function: "f"}, {Name: "b", Function: "f"}, {Name: "c", Function: "f"},
		{Name: "d", Function: "f"}, {Name: "e", Function: "f"}, {Name: "f", Function: "f"},
	}
	edges := [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "e"}, {"d", "f"}, {"e", "f"}}
	w2, err := New("twin", time.Second, nodes, edges)
	if err != nil {
		t.Fatal(err)
	}
	groups := w2.DecisionGroups()
	if len(groups) != 5 { // [a] [b,c] [d] [e] [f]
		t.Fatalf("%d groups", len(groups))
	}
	layers := w2.GroupConeLayers(0)
	if len(layers) != 4 || len(layers[2]) != 2 {
		t.Fatalf("twin cone layers = %v", layers)
	}
}
