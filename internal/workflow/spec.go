package workflow

import (
	"encoding/json"
	"fmt"
	"time"
)

// Spec is the JSON wire form of a workflow, in the spirit of the
// JSON-based structured languages (e.g. Amazon States Language) the paper
// mentions for defining applications with chaining, branching, and
// parallel execution.
type Spec struct {
	// Name identifies the workflow.
	Name string `json:"name"`
	// SLOMillis is the end-to-end P99 latency objective in milliseconds.
	SLOMillis int64 `json:"slo_ms"`
	// Nodes lists the steps.
	Nodes []Node `json:"functions"`
	// Edges lists (from, to) step-name pairs.
	Edges [][2]string `json:"edges,omitempty"`
}

// ParseSpec decodes and validates a JSON workflow definition.
func ParseSpec(data []byte) (*Workflow, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("workflow: invalid spec JSON: %w", err)
	}
	return s.Build()
}

// Build validates the spec and constructs the workflow.
func (s *Spec) Build() (*Workflow, error) {
	return New(s.Name, time.Duration(s.SLOMillis)*time.Millisecond, s.Nodes, s.Edges)
}

// ToSpec converts a workflow back to its wire form.
func (w *Workflow) ToSpec() Spec {
	edges := make([][2]string, 0)
	for _, n := range w.TopoOrder() {
		for _, next := range w.Successors(n.Name) {
			edges = append(edges, [2]string{n.Name, next})
		}
	}
	return Spec{
		Name:      w.name,
		SLOMillis: w.slo.Milliseconds(),
		Nodes:     w.Nodes(),
		Edges:     edges,
	}
}

// MarshalJSON encodes the workflow as its Spec.
func (w *Workflow) MarshalJSON() ([]byte, error) {
	return json.Marshal(w.ToSpec())
}
