package workflow

import (
	"encoding/json"
	"fmt"
	"time"
)

// Spec is the JSON wire form of a workflow, in the spirit of the
// JSON-based structured languages (e.g. Amazon States Language) the paper
// mentions for defining applications with chaining, branching, and
// parallel execution. Dynamic node kinds (conditional branches, bounded
// maps, bounded retries, awaited steps) serialize through the Dynamic
// list, so a declarative catalog entry round-trips every workflow the
// engine can serve — static specs omit the field and stay byte-identical
// to the pre-dynamic wire form.
type Spec struct {
	// Name identifies the workflow.
	Name string `json:"name"`
	// SLOMillis is the end-to-end P99 latency objective in milliseconds.
	SLOMillis int64 `json:"slo_ms"`
	// Nodes lists the steps.
	Nodes []Node `json:"functions"`
	// Edges lists (from, to) step-name pairs.
	Edges [][2]string `json:"edges,omitempty"`
	// Dynamic lists per-step dynamic annotations (see DynamicNode).
	Dynamic []DynamicSpec `json:"dynamic,omitempty"`
}

// DynamicSpec is the wire form of one step's DynamicNode annotation.
type DynamicSpec struct {
	// Step names the skeleton node the annotation applies to.
	Step string `json:"step"`
	// Choice marks the step as a conditional branch.
	Choice *ChoiceSpec `json:"choice,omitempty"`
	// Map marks the step as a bounded data-dependent map.
	Map *MapSpec `json:"map,omitempty"`
	// Retry marks the step as a bounded retry loop.
	Retry *RetrySpec `json:"retry,omitempty"`
	// Await parks the step until an external trigger fires.
	Await bool `json:"await,omitempty"`
}

// ParseSpec decodes and validates a JSON workflow definition.
func ParseSpec(data []byte) (*Workflow, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("workflow: invalid spec JSON: %w", err)
	}
	return s.Build()
}

// Build validates the spec and constructs the workflow.
func (s *Spec) Build() (*Workflow, error) {
	slo := time.Duration(s.SLOMillis) * time.Millisecond
	if len(s.Dynamic) == 0 {
		return New(s.Name, slo, s.Nodes, s.Edges)
	}
	dyn := make([]DynamicNode, len(s.Dynamic))
	for i, d := range s.Dynamic {
		dyn[i] = DynamicNode{Step: d.Step, Choice: d.Choice, Map: d.Map, Retry: d.Retry, Await: d.Await}
	}
	return NewDynamic(s.Name, slo, s.Nodes, s.Edges, dyn)
}

// ToSpec converts a workflow back to its wire form, dynamic annotations
// included, such that ToSpec().Build() reconstructs an equivalent
// workflow.
func (w *Workflow) ToSpec() Spec {
	edges := make([][2]string, 0)
	for _, n := range w.TopoOrder() {
		for _, next := range w.Successors(n.Name) {
			edges = append(edges, [2]string{n.Name, next})
		}
	}
	var dyn []DynamicSpec
	for _, step := range w.DynamicSteps() {
		d, _ := w.Dynamic(step)
		dyn = append(dyn, DynamicSpec{Step: step, Choice: d.Choice, Map: d.Map, Retry: d.Retry, Await: d.Await})
	}
	return Spec{
		Name:      w.name,
		SLOMillis: w.slo.Milliseconds(),
		Nodes:     w.Nodes(),
		Edges:     edges,
		Dynamic:   dyn,
	}
}

// MarshalJSON encodes the workflow as its Spec.
func (w *Workflow) MarshalJSON() ([]byte, error) {
	return json.Marshal(w.ToSpec())
}
