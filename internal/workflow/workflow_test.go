package workflow

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func mustChain(t *testing.T) *Workflow {
	t.Helper()
	w, err := NewChain("c", time.Second, "a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewValidation(t *testing.T) {
	nodes := []Node{{Name: "a", Function: "fa"}, {Name: "b", Function: "fb"}}
	cases := []struct {
		name   string
		wfName string
		slo    time.Duration
		nodes  []Node
		edges  [][2]string
		errHas string
	}{
		{"empty name", "", time.Second, nodes, nil, "name"},
		{"zero slo", "w", 0, nodes, nil, "SLO"},
		{"no nodes", "w", time.Second, nil, nil, "at least one"},
		{"unnamed node", "w", time.Second, []Node{{Function: "f"}}, nil, "no name"},
		{"missing function", "w", time.Second, []Node{{Name: "x"}}, nil, "no function"},
		{"duplicate name", "w", time.Second, []Node{{Name: "a", Function: "f"}, {Name: "a", Function: "g"}}, nil, "duplicate"},
		{"edge from unknown", "w", time.Second, nodes, [][2]string{{"zz", "b"}}, "unknown"},
		{"edge to unknown", "w", time.Second, nodes, [][2]string{{"a", "zz"}}, "unknown"},
		{"self edge", "w", time.Second, nodes, [][2]string{{"a", "a"}}, "self edge"},
		{"cycle", "w", time.Second, nodes, [][2]string{{"a", "b"}, {"b", "a"}}, "cycle"},
	}
	for _, c := range cases {
		_, err := New(c.wfName, c.slo, c.nodes, c.edges)
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.errHas) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.errHas)
		}
	}
}

func TestChainShape(t *testing.T) {
	w := mustChain(t)
	if !w.IsChain() {
		t.Fatal("chain not recognized")
	}
	chain, err := w.Chain()
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 3 || chain[0].Name != "a" || chain[2].Name != "c" {
		t.Fatalf("chain order = %v", chain)
	}
}

func TestNonChainShapes(t *testing.T) {
	nodes := []Node{{Name: "a", Function: "f"}, {Name: "b", Function: "f"}, {Name: "c", Function: "f"}}
	fanOut, err := New("fan", time.Second, nodes, [][2]string{{"a", "b"}, {"a", "c"}})
	if err != nil {
		t.Fatal(err)
	}
	if fanOut.IsChain() {
		t.Fatal("fan-out recognized as chain")
	}
	if _, err := fanOut.Chain(); err == nil {
		t.Fatal("Chain() on fan-out should fail")
	}
	// Two parallel two-node chains: connected per node, but two starts.
	four := append(append([]Node(nil), nodes[:2]...), Node{Name: "x", Function: "f"}, Node{Name: "y", Function: "f"})
	two, err := New("two", time.Second, four, [][2]string{{"a", "b"}, {"x", "y"}})
	if err != nil {
		t.Fatal(err)
	}
	if two.IsChain() {
		t.Fatal("multi-start graph recognized as chain")
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	nodes := []Node{{Name: "d", Function: "f"}, {Name: "b", Function: "f"}, {Name: "a", Function: "f"}, {Name: "c", Function: "f"}}
	w, err := New("dag", time.Second, nodes, [][2]string{{"a", "b"}, {"b", "c"}, {"a", "d"}, {"d", "c"}})
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range w.TopoOrder() {
		pos[n.Name] = i
	}
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"a", "d"}, {"d", "c"}} {
		if pos[e[0]] >= pos[e[1]] {
			t.Fatalf("edge %v violated in topo order", e)
		}
	}
}

func TestSuffix(t *testing.T) {
	w := mustChain(t)
	s1, err := w.Suffix(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != 2 || s1[0].Name != "b" {
		t.Fatalf("Suffix(1) = %v", s1)
	}
	if _, err := w.Suffix(3); err == nil {
		t.Fatal("Suffix(3) out of range should fail")
	}
	if _, err := w.Suffix(-1); err == nil {
		t.Fatal("Suffix(-1) should fail")
	}
}

func TestSuccessorsPredecessors(t *testing.T) {
	w := mustChain(t)
	if got := w.Successors("a"); len(got) != 1 || got[0] != "b" {
		t.Fatalf("Successors(a) = %v", got)
	}
	if got := w.Predecessors("a"); len(got) != 0 {
		t.Fatalf("Predecessors(a) = %v", got)
	}
	if got := w.Predecessors("c"); len(got) != 1 || got[0] != "b" {
		t.Fatalf("Predecessors(c) = %v", got)
	}
}

func TestNodeLookup(t *testing.T) {
	w := mustChain(t)
	n, ok := w.Node("b")
	if !ok || n.Function != "b" {
		t.Fatalf("Node(b) = %v, %v", n, ok)
	}
	if _, ok := w.Node("zz"); ok {
		t.Fatal("Node(zz) should not exist")
	}
}

func TestWithSLO(t *testing.T) {
	w := mustChain(t)
	w2, err := w.WithSLO(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if w2.SLO() != 5*time.Second || w.SLO() != time.Second {
		t.Fatal("WithSLO should copy, not mutate")
	}
	if _, err := w.WithSLO(0); err == nil {
		t.Fatal("WithSLO(0) should fail")
	}
}

func TestNodesReturnsCopy(t *testing.T) {
	w := mustChain(t)
	w.Nodes()[0].Name = "mutated"
	if n, _ := w.Node("a"); n.Name != "a" {
		t.Fatal("Nodes() exposed internal state")
	}
}

func TestSpecRoundTrip(t *testing.T) {
	w := IntelligentAssistant()
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != "ia" || back.SLO() != 3*time.Second || back.Len() != 3 {
		t.Fatalf("round trip lost data: %s %v %d", back.Name(), back.SLO(), back.Len())
	}
	chain, err := back.Chain()
	if err != nil {
		t.Fatal(err)
	}
	if chain[0].Function != "od" || chain[1].Function != "qa" || chain[2].Function != "ts" {
		t.Fatalf("round trip chain = %v", chain)
	}
}

func TestParseSpecErrors(t *testing.T) {
	if _, err := ParseSpec([]byte("{")); err == nil {
		t.Fatal("invalid JSON accepted")
	}
	if _, err := ParseSpec([]byte(`{"name":"x","slo_ms":0,"functions":[{"name":"a","function":"f"}]}`)); err == nil {
		t.Fatal("zero SLO accepted")
	}
}

func TestCatalogWorkflows(t *testing.T) {
	ia := IntelligentAssistant()
	if ia.SLO() != 3*time.Second {
		t.Errorf("IA SLO = %v, want 3s", ia.SLO())
	}
	va := VideoAnalyze()
	if va.SLO() != 1500*time.Millisecond {
		t.Errorf("VA SLO = %v, want 1.5s", va.SLO())
	}
	for _, w := range []*Workflow{ia, va} {
		if !w.IsChain() || w.Len() != 3 {
			t.Errorf("%s: not a 3-function chain", w.Name())
		}
	}
}

func TestNewChainEmpty(t *testing.T) {
	if _, err := NewChain("x", time.Second); err == nil {
		t.Fatal("empty chain accepted")
	}
}

func TestNewSeriesParallelShape(t *testing.T) {
	w, err := NewSeriesParallel("diamond", 3*time.Second, [][]string{{"od"}, {"qa", "ts"}, {"ico"}})
	if err != nil {
		t.Fatal(err)
	}
	if w.IsChain() {
		t.Fatal("fan-out workflow reported as chain")
	}
	stages, err := w.SeriesParallel()
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 3 || len(stages[0]) != 1 || len(stages[1]) != 2 || len(stages[2]) != 1 {
		t.Fatalf("decomposition shape %v", stages)
	}
	if stages[1][0].Function != "qa" || stages[1][1].Function != "ts" {
		t.Fatalf("stage 1 branch order %v", stages[1])
	}
	// Full bipartite join: ico depends on both branches.
	if got := w.Predecessors("ico"); len(got) != 2 {
		t.Fatalf("ico predecessors %v", got)
	}
}

func TestNewSeriesParallelDuplicateFunctions(t *testing.T) {
	w, err := NewSeriesParallel("dup", time.Second, [][]string{{"fe"}, {"icl", "icl"}})
	if err != nil {
		t.Fatal(err)
	}
	stages, err := w.SeriesParallel()
	if err != nil {
		t.Fatal(err)
	}
	if len(stages[1]) != 2 || stages[1][0].Function != "icl" || stages[1][1].Function != "icl" {
		t.Fatalf("duplicate-function stage %v", stages[1])
	}
	if stages[1][0].Name == stages[1][1].Name {
		t.Fatal("duplicate branches share a step name")
	}
}

func TestNewSeriesParallelValidation(t *testing.T) {
	if _, err := NewSeriesParallel("x", time.Second, nil); err == nil {
		t.Error("empty stage list accepted")
	}
	if _, err := NewSeriesParallel("x", time.Second, [][]string{{"od"}, {}}); err == nil {
		t.Error("empty stage accepted")
	}
	if _, err := NewSeriesParallel("x", 0, [][]string{{"od"}}); err == nil {
		t.Error("zero SLO accepted")
	}
}

func TestSeriesParallelOfChain(t *testing.T) {
	stages, err := IntelligentAssistant().SeriesParallel()
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 3 {
		t.Fatalf("%d stages", len(stages))
	}
	for i, st := range stages {
		if len(st) != 1 {
			t.Fatalf("chain stage %d has %d branches", i, len(st))
		}
	}
	if !IntelligentAssistant().IsSeriesParallel() {
		t.Fatal("chain not series-parallel")
	}
}

func TestSeriesParallelRejectsGeneralDAGs(t *testing.T) {
	// Partial join: d depends on only one of stage 1's two branches.
	partial, err := New("partial", time.Second,
		[]Node{{Name: "a", Function: "od"}, {Name: "b", Function: "qa"}, {Name: "c", Function: "ts"}, {Name: "d", Function: "ico"}},
		[][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := partial.SeriesParallel(); err == nil {
		t.Error("partial join accepted")
	}
	// Stage-skipping edge: a -> c alongside a -> b -> c.
	skip, err := New("skip", time.Second,
		[]Node{{Name: "a", Function: "od"}, {Name: "b", Function: "qa"}, {Name: "c", Function: "ts"}},
		[][2]string{{"a", "b"}, {"b", "c"}, {"a", "c"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := skip.SeriesParallel(); err == nil {
		t.Error("stage-skipping edge accepted")
	}
	// Two roots at different effective depths joined later.
	if partial.IsSeriesParallel() {
		t.Error("IsSeriesParallel true for partial join")
	}
}

func TestDuplicateEdgesRejected(t *testing.T) {
	nodes := []Node{{Name: "a", Function: "od"}, {Name: "b", Function: "qa"}, {Name: "c", Function: "ts"}}
	if _, err := New("dup", time.Second, nodes, [][2]string{{"a", "c"}, {"a", "c"}, {"a", "b"}}); err == nil {
		t.Fatal("duplicate edge accepted")
	}
	// Without the rejection, the duplicated a->c edge would give c two
	// predecessors and fool the series-parallel full-join check into
	// treating {a, b} -> c as a join that includes b.
}
