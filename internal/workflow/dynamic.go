package workflow

import (
	"fmt"
	"sort"
	"time"
)

// Dynamic node kinds generalize the static DAG: a workflow built with
// NewDynamic carries per-step annotations whose outcomes resolve online,
// while the *skeleton* — nodes, edges, decision groups, cone layers —
// stays a static DAG. That split is what keeps the paper's per-group
// machinery intact: DecisionGroups and GroupConeLayers operate on the
// skeleton (every conditional branch present, every map at declared
// width), so a static workflow is exactly the special case with no
// annotations, and the skeleton view is the conservative superset the
// synthesizer composites over for futures that have not resolved yet.
// Per-request resolution (which branch, what width, how many attempts)
// is the serving engine's job and is drawn from the request's seeded
// RNG, never from wall clock or scheduling order.
//
// Loops are deliberately not modeled as back-edges: a back-edge would
// destroy the acyclic layering GroupConeLayers depends on (New rejects
// cycles outright). A bounded loop is instead a RetrySpec annotation —
// the node re-executes up to MaxRetries extra times, each attempt a
// fresh allocation decision at its actual readiness instant — which
// keeps the skeleton acyclic while serving the same scenario class.

// Bounds keep resolved shapes enumerable (profiling cost is linear in
// MaxWidth) and loops provably finite.
const (
	// MaxMapWidth caps the fan-out a MapSpec may declare.
	MaxMapWidth = 32
	// MaxRetryBound caps the extra attempts a RetrySpec may declare.
	MaxRetryBound = 8
)

// DefaultMapDecay is the truncated-geometric decay used to draw a map
// node's width when the spec leaves Decay zero: width w has probability
// proportional to Decay^(w-1), truncated to [1, MaxWidth].
const DefaultMapDecay = 0.6

// ChoiceSpec marks a step as a conditional branch: when the step
// completes, exactly one of its successor edges is taken (chosen from
// the step's intermediate result; in this reproduction the choice is
// pre-drawn from the request's seeded RNG). The other successor
// subtrees are dead for that request — never scheduled, never billed.
type ChoiceSpec struct {
	// Weights are relative selection weights over the step's successor
	// edges in edge-declaration order. Nil means uniform. When set, the
	// length must equal the successor count and every weight must be
	// positive.
	Weights []float64 `json:"weights,omitempty"`
}

// MapSpec marks a step as a bounded data-dependent map: at the group's
// readiness instant the fan-out width w ∈ [1, MaxWidth] is drawn, and
// the step executes as w concurrent replicas that all must complete
// before the step counts as done (an implicit join, the Map state of
// Amazon States Language with a bounded item count).
type MapSpec struct {
	// MaxWidth is the inclusive upper bound on the drawn width. It must
	// be at least 1; a zero-width map is a spec error.
	MaxWidth int `json:"max_width"`
	// Decay is the truncated-geometric decay of the width draw
	// (probability ∝ Decay^(w-1)). Zero means DefaultMapDecay; it must
	// otherwise lie in (0, 1].
	Decay float64 `json:"decay,omitempty"`
}

// RetrySpec marks a step as a bounded loop: an attempt may fail (with
// FailureProb, pre-drawn per request) and the step then re-executes,
// up to MaxRetries extra attempts. The final permitted attempt always
// succeeds, so the loop is bounded by construction. Each re-attempt is
// a fresh allocation decision against the SLO budget that remains at
// that instant — the budget mechanism, not the table shape, absorbs
// the repeated work.
type RetrySpec struct {
	// MaxRetries is the number of extra attempts after the first. It
	// must be in [1, MaxRetryBound]; a non-positive bound would be an
	// unbounded loop and is rejected.
	MaxRetries int `json:"max_retries"`
	// FailureProb is the per-attempt failure probability in [0, 1).
	FailureProb float64 `json:"failure_prob,omitempty"`
}

// DynamicNode attaches dynamic behavior to one step of the skeleton.
// Choice is exclusive with the other kinds (it redirects control flow);
// Map and Retry compose (each map replica retries independently); Await
// composes with Retry but not Map or Choice.
type DynamicNode struct {
	// Step names the skeleton node the annotation applies to.
	Step string
	// Choice marks the step as a conditional branch.
	Choice *ChoiceSpec
	// Map marks the step as a bounded data-dependent map.
	Map *MapSpec
	// Retry marks the step as a bounded retry loop.
	Retry *RetrySpec
	// Await parks the step at readiness until an external trigger
	// (timer or stream event) addressed to it fires; the allocation
	// decision is deferred to that actual readiness instant. An await
	// step must form a singleton decision group, because its members-
	// share-one-decision contract would otherwise force unrelated
	// nodes to wait on the trigger.
	Await bool
}

// clone deep-copies the annotation so callers cannot mutate a validated
// workflow through retained spec pointers.
func (d DynamicNode) clone() DynamicNode {
	cp := d
	if d.Choice != nil {
		c := *d.Choice
		c.Weights = append([]float64(nil), d.Choice.Weights...)
		cp.Choice = &c
	}
	if d.Map != nil {
		m := *d.Map
		cp.Map = &m
	}
	if d.Retry != nil {
		r := *d.Retry
		cp.Retry = &r
	}
	return cp
}

// NewDynamic builds and validates a dynamic workflow: a static skeleton
// (same rules as New, including cycle rejection — a loop back-edge that
// would break GroupConeLayers layering fails here) plus dynamic node
// annotations. A call with no annotations is equivalent to New.
func NewDynamic(name string, slo time.Duration, nodes []Node, edges [][2]string, dynamic []DynamicNode) (*Workflow, error) {
	w, err := New(name, slo, nodes, edges)
	if err != nil {
		return nil, err
	}
	if len(dynamic) == 0 {
		return w, nil
	}
	dyn := make(map[string]DynamicNode, len(dynamic))
	for _, d := range dynamic {
		if _, ok := w.index[d.Step]; !ok {
			return nil, fmt.Errorf("workflow %s: dynamic spec for unknown step %q", name, d.Step)
		}
		if _, dup := dyn[d.Step]; dup {
			return nil, fmt.Errorf("workflow %s: duplicate dynamic spec for step %q", name, d.Step)
		}
		if d.Choice == nil && d.Map == nil && d.Retry == nil && !d.Await {
			return nil, fmt.Errorf("workflow %s: dynamic spec for step %q declares no behavior", name, d.Step)
		}
		if d.Choice != nil && (d.Map != nil || d.Retry != nil || d.Await) {
			return nil, fmt.Errorf("workflow %s: step %q: a choice cannot combine with map, retry, or await", name, d.Step)
		}
		if d.Await && d.Map != nil {
			return nil, fmt.Errorf("workflow %s: step %q: an await step cannot also be a map", name, d.Step)
		}
		if d.Choice != nil {
			succ := w.succ[d.Step]
			if len(succ) < 2 {
				return nil, fmt.Errorf("workflow %s: choice step %q has %d successor(s); a conditional needs at least two to choose between", name, d.Step, len(succ))
			}
			if d.Choice.Weights != nil {
				if len(d.Choice.Weights) != len(succ) {
					return nil, fmt.Errorf("workflow %s: choice step %q has %d weights for %d successors", name, d.Step, len(d.Choice.Weights), len(succ))
				}
				for i, wt := range d.Choice.Weights {
					if wt <= 0 {
						return nil, fmt.Errorf("workflow %s: choice step %q weight %d must be positive, got %v", name, d.Step, i, wt)
					}
				}
			}
		}
		if d.Map != nil {
			if d.Map.MaxWidth < 1 {
				return nil, fmt.Errorf("workflow %s: map step %q has width bound %d; a map needs width at least 1", name, d.Step, d.Map.MaxWidth)
			}
			if d.Map.MaxWidth > MaxMapWidth {
				return nil, fmt.Errorf("workflow %s: map step %q width bound %d exceeds the limit %d", name, d.Step, d.Map.MaxWidth, MaxMapWidth)
			}
			if d.Map.Decay != 0 && (d.Map.Decay <= 0 || d.Map.Decay > 1) {
				return nil, fmt.Errorf("workflow %s: map step %q decay %v outside (0, 1]", name, d.Step, d.Map.Decay)
			}
		}
		if d.Retry != nil {
			if d.Retry.MaxRetries < 1 {
				return nil, fmt.Errorf("workflow %s: retry step %q bound %d would be an unbounded loop; retries need a positive bound", name, d.Step, d.Retry.MaxRetries)
			}
			if d.Retry.MaxRetries > MaxRetryBound {
				return nil, fmt.Errorf("workflow %s: retry step %q bound %d exceeds the limit %d", name, d.Step, d.Retry.MaxRetries, MaxRetryBound)
			}
			if d.Retry.FailureProb < 0 || d.Retry.FailureProb >= 1 {
				return nil, fmt.Errorf("workflow %s: retry step %q failure probability %v outside [0, 1)", name, d.Step, d.Retry.FailureProb)
			}
		}
		dyn[d.Step] = d.clone()
	}
	// One decision per group happens at the group's readiness instant;
	// an await member would drag every co-member's decision behind its
	// trigger, so await steps must be alone in their group. Map widths
	// key the shape-variant hint tables, so at most one map per group
	// keeps the (group, resolved-shape) key a single width.
	for _, g := range w.DecisionGroups() {
		maps := 0
		for _, n := range g.Nodes {
			d, ok := dyn[n.Name]
			if !ok {
				continue
			}
			if d.Await && len(g.Nodes) > 1 {
				return nil, fmt.Errorf("workflow %s: await step %q shares a decision group with %d other node(s); await steps must form a singleton group", name, n.Name, len(g.Nodes)-1)
			}
			if d.Map != nil {
				maps++
				if maps > 1 {
					return nil, fmt.Errorf("workflow %s: decision group of %q has more than one map step", name, n.Name)
				}
			}
		}
	}
	w.dyn = dyn
	return w, nil
}

// IsDynamic reports whether the workflow carries dynamic annotations.
func (w *Workflow) IsDynamic() bool { return len(w.dyn) > 0 }

// Dynamic returns the dynamic annotation for a step, if any.
func (w *Workflow) Dynamic(step string) (DynamicNode, bool) {
	d, ok := w.dyn[step]
	if !ok {
		return DynamicNode{}, false
	}
	return d.clone(), true
}

// DynamicSteps returns the annotated step names in topological order.
func (w *Workflow) DynamicSteps() []string {
	if len(w.dyn) == 0 {
		return nil
	}
	out := make([]string, 0, len(w.dyn))
	for step := range w.dyn {
		out = append(out, step)
	}
	topoPos := make(map[string]int, len(w.nodes))
	for pos, idx := range w.order {
		topoPos[w.nodes[idx].Name] = pos
	}
	sort.Slice(out, func(i, j int) bool { return topoPos[out[i]] < topoPos[out[j]] })
	return out
}

// MapWidth reports the declared maximum fan-out width of a step: the
// MapSpec bound for map steps, 1 otherwise. Profiling and synthesis use
// this as the conservative width for unresolved futures.
func (w *Workflow) MapWidth(step string) int {
	if d, ok := w.dyn[step]; ok && d.Map != nil {
		return d.Map.MaxWidth
	}
	return 1
}
