package workflow

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// dynNodes is the skeleton used across the dynamic-validation tests:
//
//	ingest -> triage -> {caption | detect} ; detect -> ocr ;
//	{caption, ocr} -> gate -> publish
func dynNodes() ([]Node, [][2]string) {
	nodes := []Node{
		{Name: "ingest", Function: "fe"},
		{Name: "triage", Function: "ico"},
		{Name: "caption", Function: "redis-read"},
		{Name: "detect", Function: "icl"},
		{Name: "ocr", Function: "aes-encrypt"},
		{Name: "gate", Function: "redis-read"},
		{Name: "publish", Function: "socket-comm"},
	}
	edges := [][2]string{
		{"ingest", "triage"},
		{"triage", "caption"},
		{"triage", "detect"},
		{"detect", "ocr"},
		{"caption", "gate"},
		{"ocr", "gate"},
		{"gate", "publish"},
	}
	return nodes, edges
}

func TestNewDynamicValid(t *testing.T) {
	nodes, edges := dynNodes()
	w, err := NewDynamic("trig", time.Second, nodes, edges, []DynamicNode{
		{Step: "triage", Choice: &ChoiceSpec{Weights: []float64{0.6, 0.4}}},
		{Step: "ocr", Map: &MapSpec{MaxWidth: 4}, Retry: &RetrySpec{MaxRetries: 2, FailureProb: 0.15}},
		{Step: "gate", Await: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !w.IsDynamic() {
		t.Fatal("annotated workflow not dynamic")
	}
	if got := w.DynamicSteps(); !reflect.DeepEqual(got, []string{"triage", "ocr", "gate"}) {
		t.Fatalf("DynamicSteps = %v", got)
	}
	if w.MapWidth("ocr") != 4 || w.MapWidth("detect") != 1 {
		t.Fatalf("MapWidth ocr=%d detect=%d", w.MapWidth("ocr"), w.MapWidth("detect"))
	}
	d, ok := w.Dynamic("ocr")
	if !ok || d.Map == nil || d.Retry == nil {
		t.Fatalf("Dynamic(ocr) = %+v, %v", d, ok)
	}
	// Dynamic returns a deep copy: mutating it must not touch the workflow.
	d.Map.MaxWidth = 99
	if w.MapWidth("ocr") != 4 {
		t.Fatal("Dynamic() leaked a mutable spec pointer")
	}
}

// TestDynamicGroupsMatchSkeleton pins the tentpole's byte-identity claim
// at the workflow layer: annotations never perturb the decision-group
// partition or the cone layering — those are pure functions of the
// skeleton, and a static DAG is the annotation-free special case.
func TestDynamicGroupsMatchSkeleton(t *testing.T) {
	nodes, edges := dynNodes()
	static, err := New("trig", time.Second, nodes, edges)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := NewDynamic("trig", time.Second, nodes, edges, []DynamicNode{
		{Step: "triage", Choice: &ChoiceSpec{}},
		{Step: "ocr", Map: &MapSpec{MaxWidth: 4}},
		{Step: "gate", Await: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(static.DecisionGroups(), dyn.DecisionGroups()) {
		t.Fatal("dynamic annotations changed the decision-group partition")
	}
	for g := range static.DecisionGroups() {
		if !reflect.DeepEqual(static.GroupConeLayers(g), dyn.GroupConeLayers(g)) {
			t.Fatalf("dynamic annotations changed cone layers of group %d", g)
		}
	}
}

func TestDynamicValidationRejects(t *testing.T) {
	nodes, edges := dynNodes()
	cases := []struct {
		name string
		dyn  []DynamicNode
		want string
	}{
		{"unbounded loop", []DynamicNode{{Step: "ocr", Retry: &RetrySpec{MaxRetries: 0}}}, "unbounded loop"},
		{"negative retry bound", []DynamicNode{{Step: "ocr", Retry: &RetrySpec{MaxRetries: -3}}}, "unbounded loop"},
		{"retry bound over limit", []DynamicNode{{Step: "ocr", Retry: &RetrySpec{MaxRetries: MaxRetryBound + 1}}}, "exceeds the limit"},
		{"zero-width map", []DynamicNode{{Step: "ocr", Map: &MapSpec{MaxWidth: 0}}}, "width at least 1"},
		{"map width over limit", []DynamicNode{{Step: "ocr", Map: &MapSpec{MaxWidth: MaxMapWidth + 1}}}, "exceeds the limit"},
		{"conditional with no successor", []DynamicNode{{Step: "publish", Choice: &ChoiceSpec{}}}, "at least two"},
		{"conditional with one successor", []DynamicNode{{Step: "ingest", Choice: &ChoiceSpec{}}}, "at least two"},
		{"weight count mismatch", []DynamicNode{{Step: "triage", Choice: &ChoiceSpec{Weights: []float64{1}}}}, "weights for"},
		{"non-positive weight", []DynamicNode{{Step: "triage", Choice: &ChoiceSpec{Weights: []float64{1, 0}}}}, "must be positive"},
		{"unknown step", []DynamicNode{{Step: "nope", Await: true}}, "unknown step"},
		{"duplicate spec", []DynamicNode{{Step: "gate", Await: true}, {Step: "gate", Await: true}}, "duplicate dynamic spec"},
		{"empty spec", []DynamicNode{{Step: "gate"}}, "declares no behavior"},
		{"choice combined with map", []DynamicNode{{Step: "triage", Choice: &ChoiceSpec{}, Map: &MapSpec{MaxWidth: 2}}}, "cannot combine"},
		{"await combined with map", []DynamicNode{{Step: "gate", Await: true, Map: &MapSpec{MaxWidth: 2}}}, "cannot also be a map"},
		{"await sharing a group", []DynamicNode{{Step: "caption", Await: true}}, "singleton group"},
		{"retry probability out of range", []DynamicNode{{Step: "ocr", Retry: &RetrySpec{MaxRetries: 1, FailureProb: 1}}}, "outside [0, 1)"},
		{"map decay out of range", []DynamicNode{{Step: "ocr", Map: &MapSpec{MaxWidth: 2, Decay: 1.5}}}, "outside (0, 1]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewDynamic("trig", time.Second, nodes, edges, tc.dyn)
			if err == nil {
				t.Fatalf("accepted invalid spec %+v", tc.dyn)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestDynamicBackEdgeRejected pins that loops cannot be smuggled in as
// literal back-edges: a cycle would break the ascending-index pass
// GroupConeLayers uses for longest-path layering, so the skeleton
// validator rejects it and bounded loops must use RetrySpec instead.
func TestDynamicBackEdgeRejected(t *testing.T) {
	nodes, edges := dynNodes()
	backEdges := append(append([][2]string(nil), edges...), [2]string{"ocr", "detect"})
	if _, err := NewDynamic("trig", time.Second, nodes, backEdges, []DynamicNode{
		{Step: "ocr", Retry: &RetrySpec{MaxRetries: 2}},
	}); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("back-edge not rejected as a cycle: %v", err)
	}
}

// TestNewDynamicNoAnnotations pins that NewDynamic with an empty
// annotation list is exactly New: the workflow stays static.
func TestNewDynamicNoAnnotations(t *testing.T) {
	nodes, edges := dynNodes()
	w, err := NewDynamic("trig", time.Second, nodes, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	if w.IsDynamic() {
		t.Fatal("annotation-free NewDynamic produced a dynamic workflow")
	}
	if w.DynamicSteps() != nil {
		t.Fatal("DynamicSteps non-nil for static workflow")
	}
	if _, ok := w.Dynamic("ingest"); ok {
		t.Fatal("Dynamic() reported an annotation on a static workflow")
	}
}
