package workflow

import "time"

// The paper's two evaluation workflows (§V-A).

// IntelligentAssistant returns the IA chain — object detection -> question
// answering -> text-to-speech — with the paper's default 3 s SLO.
func IntelligentAssistant() *Workflow {
	w, err := NewChain("ia", 3*time.Second, "od", "qa", "ts")
	if err != nil {
		panic(err)
	}
	return w
}

// VideoAnalyze returns the VA chain — frame extraction -> image
// classification -> image compression — with the paper's 1.5 s SLO.
func VideoAnalyze() *Workflow {
	w, err := NewChain("va", 1500*time.Millisecond, "fe", "icl", "ico")
	if err != nil {
		panic(err)
	}
	return w
}
