package workflow

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestDynamicSpecRoundTrip: every dynamic kind — choice weights, bounded
// map, bounded retry, await — survives ToSpec -> JSON -> ParseSpec, and
// the rebuilt workflow behaves identically.
func TestDynamicSpecRoundTrip(t *testing.T) {
	nodes, edges := dynNodes()
	w, err := NewDynamic("trig", time.Second, nodes, edges, []DynamicNode{
		{Step: "triage", Choice: &ChoiceSpec{Weights: []float64{0.6, 0.4}}},
		{Step: "ocr", Map: &MapSpec{MaxWidth: 4, Decay: 0.5}, Retry: &RetrySpec{MaxRetries: 2, FailureProb: 0.15}},
		{Step: "gate", Await: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.IsDynamic() || back.Name() != "trig" || back.Len() != 7 {
		t.Fatalf("round trip lost structure: dynamic=%v name=%s len=%d", back.IsDynamic(), back.Name(), back.Len())
	}
	if got := back.DynamicSteps(); !reflect.DeepEqual(got, []string{"triage", "ocr", "gate"}) {
		t.Fatalf("DynamicSteps after round trip = %v", got)
	}
	ch, _ := back.Dynamic("triage")
	if ch.Choice == nil || !reflect.DeepEqual(ch.Choice.Weights, []float64{0.6, 0.4}) {
		t.Fatalf("choice weights lost: %+v", ch.Choice)
	}
	oc, _ := back.Dynamic("ocr")
	if oc.Map == nil || oc.Map.MaxWidth != 4 || oc.Map.Decay != 0.5 {
		t.Fatalf("map annotation lost: %+v", oc.Map)
	}
	if oc.Retry == nil || oc.Retry.MaxRetries != 2 || oc.Retry.FailureProb != 0.15 {
		t.Fatalf("retry annotation lost: %+v", oc.Retry)
	}
	ga, _ := back.Dynamic("gate")
	if !ga.Await {
		t.Fatal("await annotation lost")
	}
	// Round-tripping again is a fixed point.
	data2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatalf("second round trip diverged:\n%s\n%s", data, data2)
	}
}

// TestStaticSpecOmitsDynamicKey pins the wire compatibility promise: a
// static workflow's JSON has no "dynamic" key, so pre-dynamic specs and
// their consumers are untouched by the extension.
func TestStaticSpecOmitsDynamicKey(t *testing.T) {
	w := IntelligentAssistant()
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "dynamic") {
		t.Fatalf("static spec JSON mentions dynamic: %s", data)
	}
	back, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.IsDynamic() {
		t.Fatal("static round trip became dynamic")
	}
}

// TestBuildRejectsInvalidDynamic: a spec whose dynamic annotation is
// invalid fails at Build with a diagnostic naming the step.
func TestBuildRejectsInvalidDynamic(t *testing.T) {
	nodes, edges := dynNodes()
	s := Spec{
		Name: "trig", SLOMillis: 1000, Nodes: nodes, Edges: edges,
		Dynamic: []DynamicSpec{{Step: "ocr", Map: &MapSpec{MaxWidth: 0}}},
	}
	if _, err := s.Build(); err == nil || !strings.Contains(err.Error(), "ocr") {
		t.Fatalf("zero-width map spec built: %v", err)
	}
	s.Dynamic = []DynamicSpec{{Step: "ghost", Await: true}}
	if _, err := s.Build(); err == nil {
		t.Fatal("annotation on unknown step built")
	}
}
