package workflow

import "sort"

// Group is one decision group of the node-granular serving engine: a
// maximal set of nodes sharing an identical predecessor set. Such nodes
// become ready at the same instant — the moment their common predecessors
// have all completed — and receive one allocation decision, generalizing
// the one-decision-per-stage rule of fork-join serving. For a chain every
// group is a single node; for a series-parallel workflow the groups are
// exactly the fork-join stages.
type Group struct {
	// Nodes are the group members, in node declaration order.
	Nodes []Node
	// Preds lists the step names that must all complete before the group
	// starts, in topological order. Empty for the root group.
	Preds []string
}

// DecisionGroups partitions the workflow's nodes into decision groups,
// ordered by the earliest topological position of their members (members
// keep declaration order). The partition is a pure function of the DAG:
// every root shares the empty predecessor set, so group 0 is the root
// group, and for series-parallel workflows the groups reproduce the
// SeriesParallel stage decomposition exactly.
func (w *Workflow) DecisionGroups() []Group {
	topoPos := make(map[string]int, len(w.nodes))
	for pos, idx := range w.order {
		topoPos[w.nodes[idx].Name] = pos
	}
	// Key groups by a canonical predecessor-set signature.
	type bucket struct {
		nodes []Node
		preds []string
	}
	buckets := make(map[string]*bucket)
	for _, n := range w.nodes { // declaration order keeps members ordered
		preds := append([]string(nil), w.pred[n.Name]...)
		sort.Slice(preds, func(i, j int) bool { return topoPos[preds[i]] < topoPos[preds[j]] })
		sig := ""
		for _, p := range preds {
			sig += p + "\x00"
		}
		b, ok := buckets[sig]
		if !ok {
			b = &bucket{preds: preds}
			buckets[sig] = b
		}
		b.nodes = append(b.nodes, n)
	}
	out := make([]Group, 0, len(buckets))
	for _, b := range buckets {
		out = append(out, Group{Nodes: b.nodes, Preds: b.preds})
	}
	// Order by the first member's topological position: group members
	// share a predecessor set, so Kahn's queue keeps them contiguous and
	// any member's position induces the same group order.
	sort.Slice(out, func(i, j int) bool {
		return topoPos[out[i].Nodes[0].Name] < topoPos[out[j].Nodes[0].Name]
	})
	return out
}

// groupOf maps every step name to its index in groups.
func groupOf(groups []Group) map[string]int {
	idx := make(map[string]int)
	for g, grp := range groups {
		for _, n := range grp.Nodes {
			idx[n.Name] = g
		}
	}
	return idx
}

// groupSucc builds the successor relation over group indices: g -> h when
// an edge leads from a member of g to a member of h.
func (w *Workflow) groupSucc(groups []Group) [][]int {
	idx := groupOf(groups)
	succ := make([][]int, len(groups))
	for g, grp := range groups {
		seen := map[int]bool{}
		for _, n := range grp.Nodes {
			for _, next := range w.succ[n.Name] {
				h := idx[next]
				if h != g && !seen[h] {
					seen[h] = true
					succ[g] = append(succ[g], h)
				}
			}
		}
		sort.Ints(succ[g])
	}
	return succ
}

// GroupConeLayers returns the descendant cone of decision group g — g
// itself plus every group reachable from it — arranged into layers by
// longest-path depth from g over the group DAG. Layer 0 is [g] alone;
// groups within a layer are in ascending group order. The layered cone is
// the sub-workflow a hints table for g covers: its sequential composition
// (max over a layer's groups, layers in order) upper-bounds the cone's
// max-over-paths latency, which is the conservative shape Algorithm 1's
// budget split needs. For a chain or series-parallel workflow the cone of
// group g is exactly the stage suffix starting at g, one group per layer.
func (w *Workflow) GroupConeLayers(g int) [][]int {
	groups := w.DecisionGroups()
	if g < 0 || g >= len(groups) {
		return nil
	}
	succ := w.groupSucc(groups)
	// Group indices are topologically ordered (a group's earliest member
	// sits after all its predecessors), so one ascending pass computes
	// longest-path depths over the cone.
	depth := map[int]int{g: 0}
	for cur := g; cur < len(groups); cur++ {
		d, ok := depth[cur]
		if !ok {
			continue // not in g's cone
		}
		for _, next := range succ[cur] {
			if cand, seen := depth[next]; !seen || d+1 > cand {
				depth[next] = d + 1
			}
		}
	}
	maxDepth := 0
	for _, d := range depth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	layers := make([][]int, maxDepth+1)
	for idx := range groups {
		if d, ok := depth[idx]; ok {
			layers[d] = append(layers[d], idx)
		}
	}
	for _, layer := range layers {
		sort.Ints(layer)
	}
	return layers
}
