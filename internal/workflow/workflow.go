// Package workflow models serverless application workflows as DAGs of
// functions, in the style of AWS Step Functions / Azure Durable Functions
// state machines. A node is a function invocation; an edge is a data
// dependency. The paper's evaluation workflows (Intelligent Assistant and
// Video Analyze) are three-function chains; serving, profiling, and hints
// synthesis all operate on arbitrary DAGs through the decision-group view
// (DecisionGroups, GroupConeLayers), of which chains and series-parallel
// fork-joins are special cases. Chain extraction and suffix views remain
// first-class for the paper's original workloads.
package workflow

import (
	"fmt"
	"time"
)

// Node is one function invocation step in a workflow.
type Node struct {
	// Name is the step name, unique within the workflow.
	Name string `json:"name"`
	// Function is the deployed function the step invokes (a perfmodel
	// catalog name in this reproduction).
	Function string `json:"function"`
}

// Workflow is an immutable, validated DAG with an end-to-end latency SLO.
type Workflow struct {
	name  string
	slo   time.Duration
	nodes []Node
	index map[string]int
	succ  map[string][]string
	pred  map[string][]string
	order []int // topological order over node indices
	// dyn holds dynamic node annotations keyed by step name; nil for
	// static workflows (see dynamic.go). The skeleton above is always a
	// validated static DAG — dynamic behavior only projects it down per
	// request at serving time.
	dyn map[string]DynamicNode
}

// New builds and validates a workflow. Edges are (from, to) pairs over step
// names. The graph must be non-empty, acyclic, uniquely named, and every
// edge endpoint must exist.
func New(name string, slo time.Duration, nodes []Node, edges [][2]string) (*Workflow, error) {
	if name == "" {
		return nil, fmt.Errorf("workflow: name required")
	}
	if slo <= 0 {
		return nil, fmt.Errorf("workflow %s: SLO must be positive, got %v", name, slo)
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("workflow %s: needs at least one node", name)
	}
	w := &Workflow{
		name:  name,
		slo:   slo,
		nodes: make([]Node, len(nodes)),
		index: make(map[string]int, len(nodes)),
		succ:  make(map[string][]string),
		pred:  make(map[string][]string),
	}
	copy(w.nodes, nodes)
	for i, n := range w.nodes {
		if n.Name == "" {
			return nil, fmt.Errorf("workflow %s: node %d has no name", name, i)
		}
		if n.Function == "" {
			return nil, fmt.Errorf("workflow %s: node %q has no function", name, n.Name)
		}
		if _, dup := w.index[n.Name]; dup {
			return nil, fmt.Errorf("workflow %s: duplicate node name %q", name, n.Name)
		}
		w.index[n.Name] = i
	}
	seenEdges := make(map[[2]string]bool, len(edges))
	for _, e := range edges {
		from, to := e[0], e[1]
		if _, ok := w.index[from]; !ok {
			return nil, fmt.Errorf("workflow %s: edge from unknown node %q", name, from)
		}
		if _, ok := w.index[to]; !ok {
			return nil, fmt.Errorf("workflow %s: edge to unknown node %q", name, to)
		}
		if from == to {
			return nil, fmt.Errorf("workflow %s: self edge on %q", name, from)
		}
		// Duplicates would corrupt predecessor counts (the series-parallel
		// full-join check relies on them) and are always spec errors.
		if seenEdges[e] {
			return nil, fmt.Errorf("workflow %s: duplicate edge %q -> %q", name, from, to)
		}
		seenEdges[e] = true
		w.succ[from] = append(w.succ[from], to)
		w.pred[to] = append(w.pred[to], from)
	}
	// A node with no edges in a workflow that HAS edges is almost always
	// a spec typo (an edge endpoint misspelled into oblivion); the
	// serving engine would happily run it concurrently with everything
	// else, so reject it at validation time where the developer can see
	// it. An entirely edge-less workflow stays valid: that is a pure
	// fork — every node in one decision group, joining at completion —
	// the shape a single-stage parallel workflow converts to.
	if len(edges) > 0 {
		for _, n := range w.nodes {
			if len(w.pred[n.Name]) == 0 && len(w.succ[n.Name]) == 0 {
				return nil, fmt.Errorf("workflow %s: node %q is disconnected (no edges reference it)", name, n.Name)
			}
		}
	}
	order, err := w.topoSort()
	if err != nil {
		return nil, err
	}
	w.order = order
	return w, nil
}

// NewChain builds a linear workflow through the given function names,
// naming each step after its function.
func NewChain(name string, slo time.Duration, functions ...string) (*Workflow, error) {
	if len(functions) == 0 {
		return nil, fmt.Errorf("workflow %s: chain needs at least one function", name)
	}
	nodes := make([]Node, len(functions))
	edges := make([][2]string, 0, len(functions)-1)
	for i, f := range functions {
		nodes[i] = Node{Name: f, Function: f}
		if i > 0 {
			edges = append(edges, [2]string{functions[i-1], f})
		}
	}
	return New(name, slo, nodes, edges)
}

// NewSeriesParallel builds a fork-join workflow: stages execute in order,
// the functions inside a stage run as concurrent branches, and every stage
// joins (waits for its slowest branch) before the next stage starts. Edges
// form the full bipartite join between consecutive stages — the Parallel
// state of Amazon States Language. Step names default to the function name;
// a function appearing more than once is disambiguated with its stage and
// branch position.
func NewSeriesParallel(name string, slo time.Duration, stages [][]string) (*Workflow, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("workflow %s: needs at least one stage", name)
	}
	seen := make(map[string]int)
	for _, st := range stages {
		for _, f := range st {
			seen[f]++
		}
	}
	var nodes []Node
	names := make([][]string, len(stages))
	for i, st := range stages {
		if len(st) == 0 {
			return nil, fmt.Errorf("workflow %s: stage %d is empty", name, i)
		}
		names[i] = make([]string, len(st))
		for b, f := range st {
			stepName := f
			if seen[f] > 1 {
				stepName = fmt.Sprintf("s%d.%d:%s", i, b, f)
			}
			names[i][b] = stepName
			nodes = append(nodes, Node{Name: stepName, Function: f})
		}
	}
	var edges [][2]string
	for i := 1; i < len(stages); i++ {
		for _, from := range names[i-1] {
			for _, to := range names[i] {
				edges = append(edges, [2]string{from, to})
			}
		}
	}
	return New(name, slo, nodes, edges)
}

func (w *Workflow) topoSort() ([]int, error) {
	indeg := make(map[string]int, len(w.nodes))
	for _, n := range w.nodes {
		indeg[n.Name] = len(w.pred[n.Name])
	}
	var queue []string
	// Seed in node-declaration order for deterministic output.
	for _, n := range w.nodes {
		if indeg[n.Name] == 0 {
			queue = append(queue, n.Name)
		}
	}
	var order []int
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		order = append(order, w.index[cur])
		for _, next := range w.succ[cur] {
			indeg[next]--
			if indeg[next] == 0 {
				queue = append(queue, next)
			}
		}
	}
	if len(order) != len(w.nodes) {
		return nil, fmt.Errorf("workflow %s: cycle detected", w.name)
	}
	return order, nil
}

// Name reports the workflow name.
func (w *Workflow) Name() string { return w.name }

// SLO reports the end-to-end latency objective.
func (w *Workflow) SLO() time.Duration { return w.slo }

// Len reports the number of nodes.
func (w *Workflow) Len() int { return len(w.nodes) }

// Nodes returns the nodes in declaration order (a copy).
func (w *Workflow) Nodes() []Node {
	out := make([]Node, len(w.nodes))
	copy(out, w.nodes)
	return out
}

// Node returns the node with the given step name.
func (w *Workflow) Node(name string) (Node, bool) {
	i, ok := w.index[name]
	if !ok {
		return Node{}, false
	}
	return w.nodes[i], true
}

// Successors returns the step names directly downstream of name.
func (w *Workflow) Successors(name string) []string {
	out := make([]string, len(w.succ[name]))
	copy(out, w.succ[name])
	return out
}

// Predecessors returns the step names directly upstream of name.
func (w *Workflow) Predecessors(name string) []string {
	out := make([]string, len(w.pred[name]))
	copy(out, w.pred[name])
	return out
}

// TopoOrder returns the nodes in a deterministic topological order.
func (w *Workflow) TopoOrder() []Node {
	out := make([]Node, len(w.order))
	for i, idx := range w.order {
		out[i] = w.nodes[idx]
	}
	return out
}

// IsChain reports whether the workflow is a simple linear chain.
func (w *Workflow) IsChain() bool {
	starts := 0
	for _, n := range w.nodes {
		if len(w.pred[n.Name]) == 0 {
			starts++
		}
		if len(w.pred[n.Name]) > 1 || len(w.succ[n.Name]) > 1 {
			return false
		}
	}
	return starts == 1
}

// Chain returns the nodes in execution order if the workflow is a chain.
// Janus's synthesizer requires chain-shaped (sub-)workflows; callers should
// surface this error to the developer at deployment time.
func (w *Workflow) Chain() ([]Node, error) {
	if !w.IsChain() {
		return nil, fmt.Errorf("workflow %s: not a chain", w.name)
	}
	return w.TopoOrder(), nil
}

// IsSeriesParallel reports whether the workflow decomposes into fork-join
// stages (chains included — every chain is a one-branch-per-stage
// series-parallel workflow).
func (w *Workflow) IsSeriesParallel() bool {
	_, err := w.SeriesParallel()
	return err == nil
}

// SeriesParallel returns the workflow's fork-join stage decomposition:
// stages execute in order and the nodes within a stage run as concurrent
// branches, joining before the next stage. The decomposition exists when
// the DAG is a sequence of full bipartite joins — every node's predecessor
// set is exactly the whole previous stage. Chains decompose into
// single-branch stages; more general DAGs (a branch spanning two steps, a
// partial join) are rejected. Branch order within a stage follows node
// declaration order, so the decomposition is deterministic.
func (w *Workflow) SeriesParallel() ([][]Node, error) {
	// Depth = longest path from a root, computed over the topological
	// order; nodes at equal depth are candidate branches of one stage.
	depth := make(map[string]int, len(w.nodes))
	maxDepth := 0
	for _, idx := range w.order {
		n := w.nodes[idx]
		d := 0
		for _, p := range w.pred[n.Name] {
			if depth[p]+1 > d {
				d = depth[p] + 1
			}
		}
		depth[n.Name] = d
		if d > maxDepth {
			maxDepth = d
		}
	}
	stages := make([][]Node, maxDepth+1)
	for _, n := range w.nodes { // declaration order within a stage
		stages[depth[n.Name]] = append(stages[depth[n.Name]], n)
	}
	// Validate the full-join property: each node depends on exactly the
	// whole previous stage (and roots only live in stage 0).
	for d, stage := range stages {
		for _, n := range stage {
			preds := w.pred[n.Name]
			if d == 0 {
				if len(preds) != 0 {
					return nil, fmt.Errorf("workflow %s: not series-parallel (node %q at stage 0 has predecessors)", w.name, n.Name)
				}
				continue
			}
			if len(preds) != len(stages[d-1]) {
				return nil, fmt.Errorf("workflow %s: not series-parallel (node %q joins %d of stage %d's %d branches)",
					w.name, n.Name, len(preds), d-1, len(stages[d-1]))
			}
			prev := make(map[string]bool, len(stages[d-1]))
			for _, p := range stages[d-1] {
				prev[p.Name] = true
			}
			for _, p := range preds {
				if !prev[p] {
					return nil, fmt.Errorf("workflow %s: not series-parallel (edge %q -> %q skips a stage)", w.name, p, n.Name)
				}
			}
		}
	}
	return stages, nil
}

// Suffix returns the sub-workflow nodes from stage i onward (the remaining
// work after i functions have finished), for a chain-shaped workflow.
func (w *Workflow) Suffix(i int) ([]Node, error) {
	chain, err := w.Chain()
	if err != nil {
		return nil, err
	}
	if i < 0 || i >= len(chain) {
		return nil, fmt.Errorf("workflow %s: suffix %d out of range [0, %d)", w.name, i, len(chain))
	}
	return chain[i:], nil
}

// WithSLO returns a copy of the workflow with a different SLO. Hints tables
// are synthesized per-SLO, so SLO sweeps re-derive workflows this way.
func (w *Workflow) WithSLO(slo time.Duration) (*Workflow, error) {
	if slo <= 0 {
		return nil, fmt.Errorf("workflow %s: SLO must be positive, got %v", w.name, slo)
	}
	cp := *w
	cp.slo = slo
	return &cp, nil
}
