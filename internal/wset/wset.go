// Package wset models the varying working sets that drive function latency
// variance in the paper (§II-B): COCO2014-style images (1-15 objects per
// image), SQuAD2.0-style passages (35-641 words per text), and
// fixed-duration video segments.
//
// A sampler yields a dimensionless latency scale factor: the latency model
// multiplies its base latency by the factor, so a factor of 1.0 means "the
// typical input". The published spreads (e.g. up to 3.8x latency variance
// for the IA functions, P99/P50 of 1.37-1.56 for the VA functions) come out
// of the factor distributions here.
package wset

import "janus/internal/rng"

// Sampler produces working-set latency scale factors.
type Sampler interface {
	// Sample draws a scale factor using the provided stream.
	Sample(s *rng.Stream) float64
	// Name identifies the sampler in profiles and experiment logs.
	Name() string
}

// COCO mimics COCO2014 object counts: 1-15 objects per image, heavily
// skewed toward few objects (the paper cites 1-15 objects per image).
// Latency for object detection grows roughly linearly in the number of
// detected objects on top of a fixed backbone cost.
type COCO struct {
	// MaxObjects caps the per-image object count (paper: 15).
	MaxObjects int
	// Decay skews the object-count distribution toward small counts.
	Decay float64
	// BaseShare is the fraction of latency independent of object count.
	BaseShare float64
	// PerObject is the incremental factor per detected object.
	PerObject float64
}

// DefaultCOCO returns the calibration used by the IA experiments: a median
// factor near 0.85 and a P99/P1 spread close to the paper's ~3.8x.
func DefaultCOCO() *COCO {
	return &COCO{MaxObjects: 15, Decay: 0.78, BaseShare: 0.42, PerObject: 0.145}
}

// Sample draws an object count and converts it to a scale factor.
func (c *COCO) Sample(s *rng.Stream) float64 {
	n := s.TruncGeometric(c.MaxObjects, c.Decay)
	return c.BaseShare + c.PerObject*float64(n)
}

// Name implements Sampler.
func (c *COCO) Name() string { return "coco-objects" }

// SQuAD mimics SQuAD2.0 passage lengths: 35-641 words per text. Question
// answering latency grows with passage length.
type SQuAD struct {
	// MinWords and MaxWords bound the passage length (paper: 35-641).
	MinWords, MaxWords int
	// Mu and Sigma parameterize the lognormal word-count draw.
	Mu, Sigma float64
	// BaseShare is the fraction of latency independent of passage length.
	BaseShare float64
	// RefWords is the passage length that maps to factor 1.0 together
	// with BaseShare.
	RefWords float64
}

// DefaultSQuAD returns the calibration used by the IA experiments.
func DefaultSQuAD() *SQuAD {
	return &SQuAD{MinWords: 35, MaxWords: 641, Mu: 4.85, Sigma: 0.55, BaseShare: 0.38, RefWords: 210}
}

// Sample draws a passage length and converts it to a scale factor.
func (q *SQuAD) Sample(s *rng.Stream) float64 {
	words := q.words(s)
	return q.BaseShare + (1-q.BaseShare)*words/q.RefWords
}

func (q *SQuAD) words(s *rng.Stream) float64 {
	for i := 0; i < 32; i++ {
		w := s.LogNormal(q.Mu, q.Sigma)
		if w >= float64(q.MinWords) && w <= float64(q.MaxWords) {
			return w
		}
	}
	return float64(q.MinWords)
}

// Name implements Sampler.
func (q *SQuAD) Name() string { return "squad-words" }

// LogNormal is a generic multiplicative working-set factor with median
// Median and shape Sigma, clipped to [Lo, Hi]. The VA functions (frame
// extraction, classification, compression) use it with small sigmas: their
// inputs are fixed-duration, fixed-resolution videos, so most variance
// comes from content complexity and interference rather than input size.
type LogNormal struct {
	Median float64
	Sigma  float64
	Lo, Hi float64
	Label  string
}

// Sample draws the clipped lognormal factor.
func (l *LogNormal) Sample(s *rng.Stream) float64 {
	v := s.LogNormalClipped(0, l.Sigma, l.Lo/l.Median, l.Hi/l.Median)
	return l.Median * v
}

// Name implements Sampler.
func (l *LogNormal) Name() string {
	if l.Label != "" {
		return l.Label
	}
	return "lognormal"
}

// Constant always returns the same factor; useful in tests and for the
// micro-benchmark functions whose input is fixed.
type Constant float64

// Sample implements Sampler.
func (c Constant) Sample(*rng.Stream) float64 { return float64(c) }

// Name implements Sampler.
func (c Constant) Name() string { return "constant" }
