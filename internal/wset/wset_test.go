package wset

import (
	"testing"

	"janus/internal/rng"
	"janus/internal/stats"
)

func sampleMany(t *testing.T, s Sampler, n int, seed uint64) *stats.Sample {
	t.Helper()
	stream := rng.New(seed)
	out := &stats.Sample{}
	for i := 0; i < n; i++ {
		v := s.Sample(stream)
		if v <= 0 {
			t.Fatalf("%s produced non-positive factor %v", s.Name(), v)
		}
		out.Add(v)
	}
	return out
}

func TestCOCOSpreadMatchesPaper(t *testing.T) {
	s := sampleMany(t, DefaultCOCO(), 20000, 1)
	ratio := s.Percentile(99) / s.Percentile(1)
	// Fig 1b reports latency variance "up to 3.8x" for the IA functions;
	// OD is the widest.
	if ratio < 2.8 || ratio > 4.8 {
		t.Fatalf("COCO P99/P1 = %.2f, want within [2.8, 4.8]", ratio)
	}
	if med := s.Percentile(50); med < 0.55 || med > 1.1 {
		t.Fatalf("COCO median factor = %.2f, want near but below 1", med)
	}
}

func TestCOCOBounds(t *testing.T) {
	c := DefaultCOCO()
	stream := rng.New(2)
	lo := c.BaseShare + c.PerObject
	hi := c.BaseShare + c.PerObject*float64(c.MaxObjects)
	for i := 0; i < 10000; i++ {
		v := c.Sample(stream)
		if v < lo-1e-9 || v > hi+1e-9 {
			t.Fatalf("COCO factor %v escaped [%v, %v]", v, lo, hi)
		}
	}
}

func TestSQuADSpread(t *testing.T) {
	s := sampleMany(t, DefaultSQuAD(), 20000, 3)
	ratio := s.Percentile(99) / s.Percentile(50)
	// QA's profile P99/P50 is ~2.17 in the paper; the working set carries
	// most of that.
	if ratio < 1.6 || ratio > 2.8 {
		t.Fatalf("SQuAD P99/P50 = %.2f, want within [1.6, 2.8]", ratio)
	}
}

func TestSQuADWordBounds(t *testing.T) {
	q := DefaultSQuAD()
	stream := rng.New(4)
	min := q.BaseShare + (1-q.BaseShare)*float64(q.MinWords)/q.RefWords
	max := q.BaseShare + (1-q.BaseShare)*float64(q.MaxWords)/q.RefWords
	for i := 0; i < 10000; i++ {
		v := q.Sample(stream)
		if v < min-1e-9 || v > max+1e-9 {
			t.Fatalf("SQuAD factor %v escaped [%v, %v]", v, min, max)
		}
	}
}

func TestLogNormalMedianAndClip(t *testing.T) {
	l := &LogNormal{Median: 1, Sigma: 0.13, Lo: 0.55, Hi: 2.1}
	s := sampleMany(t, l, 20000, 5)
	if med := s.Percentile(50); med < 0.95 || med > 1.05 {
		t.Fatalf("LogNormal median = %v, want ~1", med)
	}
	if s.Min() < l.Lo || s.Max() > l.Hi {
		t.Fatalf("LogNormal escaped clip range: [%v, %v]", s.Min(), s.Max())
	}
}

func TestLogNormalVASpreads(t *testing.T) {
	// The VA chain functions should land near the paper's P99/P50 ratios
	// before interference is layered on (interference adds the rest).
	cases := []struct {
		sigma    float64
		lo, hi   float64
		minRatio float64
		maxRatio float64
	}{
		{0.105, 0.6, 1.9, 1.20, 1.45},  // FE target contribution
		{0.13, 0.55, 2.1, 1.25, 1.55},  // ICL
		{0.085, 0.65, 1.8, 1.15, 1.35}, // ICO
	}
	for i, c := range cases {
		l := &LogNormal{Median: 1, Sigma: c.sigma, Lo: c.lo, Hi: c.hi}
		s := sampleMany(t, l, 20000, uint64(10+i))
		ratio := s.Percentile(99) / s.Percentile(50)
		if ratio < c.minRatio || ratio > c.maxRatio {
			t.Errorf("case %d: P99/P50 = %.3f, want [%v, %v]", i, ratio, c.minRatio, c.maxRatio)
		}
	}
}

func TestConstant(t *testing.T) {
	c := Constant(1.5)
	if c.Sample(rng.New(1)) != 1.5 {
		t.Fatal("Constant should return its value")
	}
	if c.Name() != "constant" {
		t.Fatalf("Constant name = %q", c.Name())
	}
}

func TestSamplerNames(t *testing.T) {
	if DefaultCOCO().Name() != "coco-objects" {
		t.Error("COCO name changed")
	}
	if DefaultSQuAD().Name() != "squad-words" {
		t.Error("SQuAD name changed")
	}
	if (&LogNormal{Label: "x"}).Name() != "x" {
		t.Error("LogNormal label not used")
	}
	if (&LogNormal{}).Name() != "lognormal" {
		t.Error("LogNormal default name changed")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := DefaultCOCO().Sample(rng.New(42))
	b := DefaultCOCO().Sample(rng.New(42))
	if a != b {
		t.Fatal("sampling is not deterministic for a fixed seed")
	}
}
