package httpapi

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"janus/internal/obs"
)

// This file is the control plane's operator-grade telemetry: the
// always-on metrics registry behind GET /v1/prometheus (and the Points
// section of /v1/metrics), the per-request instrumentation middleware,
// and the structured access log janusd enables with -log-requests.

// decideLatencyBucketsUs are the decide-path latency histogram bounds in
// microseconds: the adapter decision is a table lookup, so the
// interesting range is tens of microseconds to low milliseconds.
var decideLatencyBucketsUs = []int64{50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000}

// Metrics exposes the server's metrics registry (scrapable at
// /v1/prometheus, embedded in /v1/metrics frames, extendable by
// in-process embeddings).
func (s *Server) Metrics() *obs.Registry { return s.obs }

// SetVersion records the build's version string (janusd stamps it via
// -ldflags "-X main.version=..."): reported by /v1/healthz and exported
// as the janusd_build_info gauge. Call before serving.
func (s *Server) SetVersion(v string) {
	s.version = v
	s.obs.Gauge("janusd_build_info", "version", v).Set(1)
}

// SetAccessLog enables structured access logging: one line per request
// (timestamp, method, path, tenant, status, latency, response bytes) to
// w. w must be safe for concurrent writes the way os.Stderr and
// log.Writer() are (whole-line writes). nil disables. Call before
// serving.
func (s *Server) SetAccessLog(w io.Writer) { s.accessLog = w }

// routeLabel bounds the path label's cardinality to the known routes, so
// a scanner probing random URLs cannot grow the registry without bound.
func routeLabel(p string) string {
	switch p {
	case "/v1/healthz", "/v1/bundles", "/v1/decide", "/v1/stats",
		"/v1/catalog", "/v1/metrics", "/v1/prometheus":
		return p
	}
	return "other"
}

// statusRecorder captures the response status and byte count for the
// instrumentation middleware. Flush passes through so the /v1/metrics
// stream keeps its per-frame flushing behind the wrapper.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	n, err := sr.ResponseWriter.Write(b)
	sr.bytes += int64(n)
	return n, err
}

func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps the route mux with the request counter and the
// optional access log.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := s.now()
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r)
		status := rec.status
		if status == 0 {
			status = http.StatusOK
		}
		s.obs.Counter("janusd_http_requests_total",
			"path", routeLabel(r.URL.Path), "status", strconv.Itoa(status)).Inc()
		if s.accessLog != nil {
			tenant := ""
			if t, ok := s.reg.Authenticate(apiKey(r)); ok {
				tenant = t.Name()
			}
			fmt.Fprintf(s.accessLog, "%s method=%s path=%s tenant=%s status=%d dur=%s bytes=%d\n",
				start.UTC().Format(time.RFC3339Nano), r.Method, r.URL.Path, tenant,
				status, s.now().Sub(start).Round(time.Microsecond), rec.bytes)
		}
	})
}

// observeDecide records one decide call's outcome and latency. outcome
// is one of invalid, unauthorized, quota, not_found, error, hit, miss;
// tenant and workflow stay empty until resolved against the catalog
// (workflow in particular is request-controlled, so only deployed names
// become label values).
func (s *Server) observeDecide(outcome, tenant, workflow string, start time.Time) {
	s.obs.Counter("janusd_decisions_total",
		"outcome", outcome, "tenant", tenant, "workflow", workflow).Inc()
	s.obs.Histogram("janusd_decide_latency_us", decideLatencyBucketsUs).
		Observe(s.now().Sub(start).Microseconds())
}

// handlePrometheus renders the registry in the Prometheus text
// exposition format — the scrape surface agreeing, family for family,
// with the Points section of the /v1/metrics stream (both read the same
// registry).
func (s *Server) handlePrometheus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET required")
		return
	}
	if !s.requireAdmin(w, r) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	// Write errors mean the scraper hung up mid-body; nothing to do.
	_ = obs.WritePrometheus(w, s.obs)
}
