// Package httpapi exposes the provider-side adapter as a web service and
// provides the matching Go client — the reproduction of the paper's
// lightweight backend (Flask + Redis + Fission HTTP triggers in §V-A),
// built on net/http only.
//
// The developer submits condensed hints bundles; the platform reports each
// function completion's remaining budget and receives the resize decision
// for the next function; the supervisor statistics are queryable.
package httpapi

import (
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"net/http"
	"sync"
	"time"

	"janus/internal/adapter"
	"janus/internal/hints"
)

// DecideRequest is the body of POST /v1/decide.
type DecideRequest struct {
	// Workflow names the deployed bundle.
	Workflow string `json:"workflow"`
	// Suffix is the stage index of the remaining sub-workflow's head.
	Suffix int `json:"suffix"`
	// RemainingMs is the time budget until the SLO deadline. It must be
	// positive: a zero or negative budget is a malformed report (the
	// platform reports budgets at function completion, before the
	// deadline), and letting it through would count a guaranteed table
	// miss — polluting the supervisor's miss rate, the very signal the
	// regeneration loop triggers on.
	RemainingMs int64 `json:"remaining_ms"`
	// Shape is the decision group's resolved-shape key for dynamic
	// workflows ("w=3" when the group's map member resolved to width 3).
	// Empty — the static case — answers from the conservative base table;
	// unknown keys fall back to it too.
	Shape string `json:"shape,omitempty"`
}

// DecideResponse is the adapter's decision.
type DecideResponse struct {
	Millicores int  `json:"millicores"`
	Hit        bool `json:"hit"`
	Percentile int  `json:"percentile"`
}

// StatsResponse reports the supervisor counters for one workflow.
type StatsResponse struct {
	Workflow string  `json:"workflow"`
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	MissRate float64 `json:"miss_rate"`
}

// errorBody is the uniform error payload.
type errorBody struct {
	Error string `json:"error"`
}

// Server hosts adapters for deployed workflows. It is safe for concurrent
// use.
type Server struct {
	mu       sync.Mutex
	adapters map[string]*adapter.Adapter
	opts     []adapter.Option
}

// NewServer builds a server; opts apply to every adapter it creates.
func NewServer(opts ...adapter.Option) *Server {
	return &Server{adapters: make(map[string]*adapter.Adapter), opts: opts}
}

// Deploy installs (or replaces) the bundle for its workflow directly,
// bypassing HTTP — used by in-process embeddings.
func (s *Server) Deploy(b *hints.Bundle) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.adapters[b.Workflow]; ok {
		return existing.Replace(b)
	}
	a, err := adapter.New(b, s.opts...)
	if err != nil {
		return err
	}
	s.adapters[b.Workflow] = a
	return nil
}

// Adapter returns the live adapter for a workflow, if deployed.
func (s *Server) Adapter(workflow string) (*adapter.Adapter, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.adapters[workflow]
	return a, ok
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET required"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/v1/bundles", s.handleBundles)
	mux.HandleFunc("/v1/decide", s.handleDecide)
	mux.HandleFunc("/v1/stats", s.handleStats)
	return mux
}

func (s *Server) handleBundles(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST required"})
		return
	}
	if !requireJSON(w, r) {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 32<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	b, err := hints.ParseBundle(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if err := s.Deploy(b); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"workflow": b.Workflow,
		"stages":   b.Stages(),
		"ranges":   b.TotalRanges(),
	})
}

func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST required"})
		return
	}
	if !requireJSON(w, r) {
		return
	}
	var req DecideRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if req.RemainingMs <= 0 {
		// Reject before touching the adapter: a malformed budget must not
		// move the supervisor's hit/miss counters.
		writeJSON(w, http.StatusBadRequest, errorBody{
			Error: fmt.Sprintf("remaining_ms must be positive, got %d", req.RemainingMs)})
		return
	}
	a, ok := s.Adapter(req.Workflow)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("workflow %q not deployed", req.Workflow)})
		return
	}
	d, err := a.DecideShaped(req.Suffix, req.Shape, time.Duration(req.RemainingMs)*time.Millisecond)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, DecideResponse{Millicores: d.Millicores, Hit: d.Hit, Percentile: d.Percentile})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET required"})
		return
	}
	wf := r.URL.Query().Get("workflow")
	a, ok := s.Adapter(wf)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("workflow %q not deployed", wf)})
		return
	}
	hits, misses, rate := a.Stats()
	writeJSON(w, http.StatusOK, StatsResponse{Workflow: wf, Hits: hits, Misses: misses, MissRate: rate})
}

// requireJSON enforces the JSON media type on the mutating endpoints: a
// body the server would parse as JSON anyway must declare itself as such,
// so misconfigured platforms fail loudly with a 415 instead of a
// confusing parse error. Media-type parameters (charset) are accepted.
func requireJSON(w http.ResponseWriter, r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil || mt != "application/json" {
		writeJSON(w, http.StatusUnsupportedMediaType,
			errorBody{Error: fmt.Sprintf("Content-Type must be application/json, got %q", ct)})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding failures after the header is out can only be logged; the
	// payloads here are all marshalable value types.
	_ = json.NewEncoder(w).Encode(v)
}
