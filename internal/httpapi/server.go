// Package httpapi exposes the provider-side control plane as a web
// service and provides the matching Go client — the reproduction of the
// paper's lightweight backend (Flask + Redis + Fission HTTP triggers in
// §V-A), grown into a declarative multi-tenant surface and built on
// net/http only.
//
// The operator pushes a catalog ({tenant -> workflows, bundles, quotas,
// API keys}) that swaps in atomically; tenants authenticate with static
// API keys, are admission-controlled by per-tenant token buckets, and
// report each function completion's remaining budget to receive the
// resize decision for the next function. Supervisor statistics stream
// per tenant. The pre-catalog single-tenant surface (/v1/bundles,
// /v1/stats) is preserved as the open tenant's view.
package httpapi

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"mime"
	"net/http"
	"strconv"
	"time"

	"janus/internal/adapter"
	"janus/internal/catalog"
	"janus/internal/hints"
	"janus/internal/obs"
)

// Error codes carried in the uniform error envelope. Clients branch on
// Code; Error is the human-readable diagnostic.
const (
	CodeInvalidRequest   = "invalid_request"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeUnsupportedMedia = "unsupported_media_type"
	CodeUnauthorized     = "unauthorized"
	CodeNotFound         = "not_found"
	CodeQuotaExceeded    = "quota_exceeded"
	CodeInvalidCatalog   = "invalid_catalog"
)

// DecideRequest is the body of POST /v1/decide.
type DecideRequest struct {
	// Workflow names the deployed bundle under the calling tenant.
	Workflow string `json:"workflow"`
	// Suffix is the stage index of the remaining sub-workflow's head.
	Suffix int `json:"suffix"`
	// RemainingMs is the time budget until the SLO deadline. It must be
	// positive: a zero or negative budget is a malformed report (the
	// platform reports budgets at function completion, before the
	// deadline), and letting it through would count a guaranteed table
	// miss — polluting the supervisor's miss rate, the very signal the
	// regeneration loop triggers on.
	RemainingMs int64 `json:"remaining_ms"`
	// Shape is the decision group's resolved-shape key for dynamic
	// workflows ("w=3" when the group's map member resolved to width 3).
	// Empty — the static case — answers from the conservative base table;
	// unknown keys fall back to it too.
	Shape string `json:"shape,omitempty"`
}

// DecideResponse is the adapter's decision.
type DecideResponse struct {
	Millicores int  `json:"millicores"`
	Hit        bool `json:"hit"`
	Percentile int  `json:"percentile"`
}

// StatsResponse reports the supervisor counters for one workflow.
type StatsResponse struct {
	Tenant   string  `json:"tenant"`
	Workflow string  `json:"workflow"`
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	MissRate float64 `json:"miss_rate"`
}

// ReloadResponse summarizes a successful PUT /v1/catalog.
type ReloadResponse struct {
	Generation int64    `json:"generation"`
	Tenants    int      `json:"tenants"`
	Workflows  int      `json:"workflows"`
	Changes    []string `json:"changes"`
}

// MetricsSnapshot is one frame of the GET /v1/metrics stream. Points is
// the server's metrics registry rendered as typed samples — the same
// registry /v1/prometheus scrapes, so the two surfaces always agree.
type MetricsSnapshot struct {
	Generation int64             `json:"generation"`
	Tenants    []catalog.Metrics `json:"tenants"`
	Points     []obs.Point       `json:"points,omitempty"`
}

// errorBody is the uniform error envelope every non-2xx response
// carries: a human-readable diagnostic plus a stable machine code.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// Server hosts the control plane. It is safe for concurrent use; all
// serving state lives in the catalog registry behind one atomic pointer.
type Server struct {
	reg *catalog.Registry
	// now stamps admission decisions; tests override it to drive the
	// token buckets deterministically.
	now func() time.Time
	// metricsInterval floors the /v1/metrics stream cadence.
	metricsMinInterval time.Duration
	// obs is the operator-surface metrics registry: request/decision
	// counters and decide-latency histograms, scraped at /v1/prometheus
	// and embedded in /v1/metrics frames.
	obs *obs.Registry
	// version is the build stamp reported by /v1/healthz (SetVersion).
	version string
	// accessLog, when set, receives one structured line per request
	// (SetAccessLog).
	accessLog io.Writer
}

// NewServer builds a server with an empty catalog; opts apply to every
// adapter it creates. Until a catalog with API keys is loaded the server
// runs open: anonymous requests resolve to the open ("default") tenant.
func NewServer(opts ...adapter.Option) *Server {
	return &Server{
		reg:                catalog.NewRegistry(opts...),
		now:                time.Now,
		metricsMinInterval: 10 * time.Millisecond,
		obs:                obs.NewRegistry(),
		version:            "dev",
	}
}

// Registry exposes the catalog registry (boot loading, SIGHUP reloads,
// in-process embeddings).
func (s *Server) Registry() *catalog.Registry { return s.reg }

// Deploy installs (or replaces) the bundle under the open tenant,
// bypassing HTTP — the legacy single-tenant path, kept for in-process
// embeddings and janusctl submit.
func (s *Server) Deploy(b *hints.Bundle) error { return s.reg.Deploy(b) }

// Adapter returns the open tenant's live adapter for a workflow, if
// deployed — the legacy single-tenant view.
func (s *Server) Adapter(workflow string) (*adapter.Adapter, bool) {
	t, ok := s.reg.Authenticate("")
	if !ok {
		return nil, false
	}
	return t.Adapter(workflow)
}

// Handler returns the HTTP routes, wrapped in the instrumentation
// middleware (request counters, optional access log).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/bundles", s.handleBundles)
	mux.HandleFunc("/v1/decide", s.handleDecide)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/catalog", s.handleCatalog)
	mux.HandleFunc("/v1/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/prometheus", s.handlePrometheus)
	return s.instrument(mux)
}

// apiKey extracts the caller's credential: "Authorization: Bearer <key>"
// or the X-API-Key header. Empty means anonymous.
func apiKey(r *http.Request) string {
	if auth := r.Header.Get("Authorization"); len(auth) > 7 && auth[:7] == "Bearer " {
		return auth[7:]
	}
	return r.Header.Get("X-API-Key")
}

// tenant authenticates the request, writing the 401 envelope on failure.
func (s *Server) tenant(w http.ResponseWriter, r *http.Request) (*catalog.RuntimeTenant, bool) {
	key := apiKey(r)
	t, ok := s.reg.Authenticate(key)
	if !ok {
		if key == "" {
			writeError(w, http.StatusUnauthorized, CodeUnauthorized, "api key required")
		} else {
			writeError(w, http.StatusUnauthorized, CodeUnauthorized, "unknown api key")
		}
		return nil, false
	}
	return t, true
}

// requireAdmin gates the operator surface (catalog, bundle submission,
// metrics): when the running catalog sets an admin key the caller must
// present it; an open catalog leaves the surface open.
func (s *Server) requireAdmin(w http.ResponseWriter, r *http.Request) bool {
	admin := s.reg.AdminKey()
	if admin == "" || apiKey(r) == admin {
		return true
	}
	writeError(w, http.StatusUnauthorized, CodeUnauthorized, "admin key required")
	return false
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"generation": s.reg.Generation(),
		"version":    s.version,
	})
}

func (s *Server) handleBundles(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST required")
		return
	}
	if !requireJSON(w, r) {
		return
	}
	if !s.requireAdmin(w, r) {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 32<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "%s", err)
		return
	}
	b, err := hints.ParseBundle(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "%s", err)
		return
	}
	if err := s.Deploy(b); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "%s", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"workflow": b.Workflow,
		"stages":   b.Stages(),
		"ranges":   b.TotalRanges(),
	})
}

func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST required")
		return
	}
	if !requireJSON(w, r) {
		return
	}
	// The decision audit: every decide call lands in the registry with
	// its outcome, resolved tenant/workflow, and wall latency.
	start := s.now()
	outcome, tenantName, workflowName := "invalid", "", ""
	defer func() { s.observeDecide(outcome, tenantName, workflowName, start) }()
	var req DecideRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "%s", err)
		return
	}
	if req.RemainingMs <= 0 {
		// Reject before touching the adapter: a malformed budget must not
		// move the supervisor's hit/miss counters.
		writeError(w, http.StatusBadRequest, CodeInvalidRequest,
			"remaining_ms must be positive, got %d", req.RemainingMs)
		return
	}
	t, ok := s.tenant(w, r)
	if !ok {
		outcome = "unauthorized"
		return
	}
	tenantName = t.Name()
	// Admission control: the tenant's token bucket, after authentication
	// (anonymous traffic cannot drain a keyed tenant's quota) and after
	// request validation (malformed requests don't spend tokens).
	if admitted, retryAfter := t.Admit(s.now()); !admitted {
		outcome = "quota"
		secs := int(math.Ceil(retryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests, CodeQuotaExceeded,
			"tenant %q decide quota exhausted; retry in %ds", t.Name(), secs)
		return
	}
	a, ok := t.Adapter(req.Workflow)
	if !ok {
		outcome = "not_found"
		writeError(w, http.StatusNotFound, CodeNotFound,
			"workflow %q not deployed for tenant %q", req.Workflow, t.Name())
		return
	}
	// Only deployed names become label values; the raw request string is
	// caller-controlled and would grow the registry without bound.
	workflowName = req.Workflow
	d, err := a.DecideShaped(req.Suffix, req.Shape, time.Duration(req.RemainingMs)*time.Millisecond)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "%s", err)
		return
	}
	outcome = "miss"
	if d.Hit {
		outcome = "hit"
	}
	writeJSON(w, http.StatusOK, DecideResponse{Millicores: d.Millicores, Hit: d.Hit, Percentile: d.Percentile})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET required")
		return
	}
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	wf := r.URL.Query().Get("workflow")
	a, ok := t.Adapter(wf)
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound,
			"workflow %q not deployed for tenant %q", wf, t.Name())
		return
	}
	hits, misses, rate := a.Stats()
	writeJSON(w, http.StatusOK, StatsResponse{Tenant: t.Name(), Workflow: wf, Hits: hits, Misses: misses, MissRate: rate})
}

// handleCatalog is the declarative control surface: GET returns the
// running catalog, PUT validates and atomically swaps in a replacement.
// An invalid catalog is rejected whole with the running one untouched.
func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		if !s.requireAdmin(w, r) {
			return
		}
		writeJSON(w, http.StatusOK, s.reg.Snapshot())
	case http.MethodPut:
		if !requireJSON(w, r) {
			return
		}
		if !s.requireAdmin(w, r) {
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest, "%s", err)
			return
		}
		f, err := catalog.Parse(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeInvalidCatalog, "%s", err)
			return
		}
		gen, changes, err := s.reg.Load(f)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeInvalidCatalog, "%s", err)
			return
		}
		resp := ReloadResponse{Generation: gen, Tenants: len(f.Tenants), Changes: make([]string, len(changes))}
		for _, t := range f.Tenants {
			resp.Workflows += len(t.Workflows)
		}
		for i, c := range changes {
			resp.Changes[i] = c.String()
		}
		writeJSON(w, http.StatusOK, resp)
	default:
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET or PUT required")
	}
}

// handleMetrics streams supervisor snapshots as NDJSON: one
// MetricsSnapshot per line every interval_ms (default 1000, floored at
// the server minimum) until the client disconnects or n frames have
// been written (n=0, the default, streams until disconnect). Each frame
// is flushed as it is written, so a live dashboard sees counters move
// while decide traffic is in flight.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET required")
		return
	}
	if !s.requireAdmin(w, r) {
		return
	}
	interval := time.Second
	if v := r.URL.Query().Get("interval_ms"); v != "" {
		ms, err := strconv.Atoi(v)
		if err != nil || ms < 0 {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest, "interval_ms must be a non-negative integer, got %q", v)
			return
		}
		interval = time.Duration(ms) * time.Millisecond
	}
	if interval < s.metricsMinInterval {
		interval = s.metricsMinInterval
	}
	frames := 0
	if v := r.URL.Query().Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest, "n must be a non-negative integer, got %q", v)
			return
		}
		frames = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	ctx := r.Context()
	for sent := 0; ; sent++ {
		if frames > 0 && sent >= frames {
			return
		}
		// Terminate promptly on client hang-up: the blocking select below
		// can lose its race when the ticker and the cancellation are both
		// ready, so re-check before every frame — a disconnected client
		// never receives another write.
		select {
		case <-ctx.Done():
			return
		default:
		}
		snap := MetricsSnapshot{
			Generation: s.reg.Generation(),
			Tenants:    s.reg.MetricsSnapshot(),
			Points:     s.obs.Snapshot(),
		}
		if err := enc.Encode(snap); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		if frames > 0 && sent+1 >= frames {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}

// requireJSON enforces the JSON media type on the mutating endpoints: a
// body the server would parse as JSON anyway must declare itself as such,
// so misconfigured platforms fail loudly with a 415 instead of a
// confusing parse error. Media-type parameters (charset) are accepted.
func requireJSON(w http.ResponseWriter, r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil || mt != "application/json" {
		writeError(w, http.StatusUnsupportedMediaType, CodeUnsupportedMedia,
			"Content-Type must be application/json, got %q", ct)
		return false
	}
	return true
}

// writeError emits the uniform error envelope.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...), Code: code})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding failures after the header is out can only be logged; the
	// payloads here are all marshalable value types.
	_ = json.NewEncoder(w).Encode(v)
}
