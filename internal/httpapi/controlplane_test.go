package httpapi

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"janus/internal/catalog"
	"janus/internal/hints"
)

// tenantBundle builds a one-table bundle answering mc at budgets >=
// 2000ms. Distinct mc values per tenant make cross-tenant leaks
// detectable by value.
func tenantBundle(t *testing.T, wf string, mc int) *hints.Bundle {
	t.Helper()
	tab, err := hints.Condense(&hints.RawTable{Suffix: 0, Weight: 1, Hints: []hints.Hint{
		{BudgetMs: 2000, HeadMillicores: mc, HeadPercentile: 99},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return &hints.Bundle{
		Workflow: wf, Batch: 1, Weight: 1, SLOMs: 3000, MaxMillicores: 3000,
		Tables: []*hints.Table{tab},
	}
}

// twoTenantCatalog declares acme (ia @ mcA) and globex (va @ mcB).
func twoTenantCatalog(t *testing.T, mcA, mcB int) *catalog.File {
	t.Helper()
	return &catalog.File{
		Version: 1,
		Tenants: map[string]*catalog.Tenant{
			"acme": {
				APIKey:    "key-acme",
				Workflows: map[string]*catalog.Entry{"ia": {Bundle: tenantBundle(t, "ia", mcA)}},
			},
			"globex": {
				APIKey:    "key-globex",
				Workflows: map[string]*catalog.Entry{"va": {Bundle: tenantBundle(t, "va", mcB)}},
			},
		},
	}
}

func serveCatalog(t *testing.T, f *catalog.File) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer()
	if _, _, err := srv.Registry().Load(f); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func TestTenantAuth(t *testing.T) {
	_, ts := serveCatalog(t, twoTenantCatalog(t, 1100, 2200))

	// Anonymous against a keyed catalog: 401 with the envelope.
	anon := NewClient(ts.URL)
	var apiErr *APIError
	if _, err := anon.Decide("ia", 0, 2500*time.Millisecond); !errors.As(err, &apiErr) ||
		apiErr.Status != 401 || apiErr.Code != CodeUnauthorized {
		t.Fatalf("anonymous decide error = %v", err)
	}
	// Wrong key: still 401, different diagnostic.
	wrong := NewClient(ts.URL).WithAPIKey("key-nope")
	if _, err := wrong.Decide("ia", 0, 2500*time.Millisecond); !errors.As(err, &apiErr) ||
		apiErr.Status != 401 || !strings.Contains(apiErr.Message, "unknown") {
		t.Fatalf("wrong-key decide error = %v", err)
	}
	// Bearer auth (the client's native scheme) routes to the right tenant.
	acme := NewClient(ts.URL).WithAPIKey("key-acme")
	d, err := acme.Decide("ia", 0, 2500*time.Millisecond)
	if err != nil || d.Millicores != 1100 {
		t.Fatalf("acme decide = %+v, %v", d, err)
	}
	// acme cannot see globex's workflow: 404, not a leak.
	if _, err := acme.Decide("va", 0, 2500*time.Millisecond); !errors.As(err, &apiErr) ||
		apiErr.Status != 404 || apiErr.Code != CodeNotFound {
		t.Fatalf("cross-tenant decide error = %v", err)
	}
	// X-API-Key works too.
	body := `{"workflow":"va","suffix":0,"remaining_ms":2500}`
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/decide", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-API-Key", "key-globex")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var out DecideResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || out.Millicores != 2200 {
		t.Fatalf("X-API-Key decide = %d %+v", resp.StatusCode, out)
	}
}

// TestQuotaAdmission: a near-zero refill rate makes the bucket
// deterministic — burst admits pass, the next request hears 429 with a
// Retry-After the client surfaces as APIError.RetryAfter.
func TestQuotaAdmission(t *testing.T) {
	f := twoTenantCatalog(t, 1100, 2200)
	f.Tenants["acme"].Quota = &catalog.Quota{RatePerSec: 0.001, Burst: 2}
	_, ts := serveCatalog(t, f)
	acme := NewClient(ts.URL).WithAPIKey("key-acme")
	for i := 0; i < 2; i++ {
		if _, err := acme.Decide("ia", 0, 2500*time.Millisecond); err != nil {
			t.Fatalf("burst decide %d: %v", i, err)
		}
	}
	_, err := acme.Decide("ia", 0, 2500*time.Millisecond)
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("over-quota decide error = %v", err)
	}
	if apiErr.Status != http.StatusTooManyRequests || apiErr.Code != CodeQuotaExceeded {
		t.Fatalf("over-quota error = %+v", apiErr)
	}
	if apiErr.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %v, want >= 1s", apiErr.RetryAfter)
	}
	// The unmetered tenant is unaffected.
	globex := NewClient(ts.URL).WithAPIKey("key-globex")
	if _, err := globex.Decide("va", 0, 2500*time.Millisecond); err != nil {
		t.Fatalf("unmetered tenant throttled: %v", err)
	}
	// Rejected requests never reach the adapter: acme served exactly 2.
	st, err := acme.Stats("ia")
	if err != nil {
		t.Fatal(err)
	}
	if st.Hits+st.Misses != 2 {
		t.Fatalf("quota rejections moved the counters: %d", st.Hits+st.Misses)
	}
}

func TestCatalogRoundTripAndGeneration(t *testing.T) {
	_, ts := serveCatalog(t, twoTenantCatalog(t, 1100, 2200))
	c := NewClient(ts.URL)

	generation := func() int64 {
		resp, err := http.Get(ts.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h struct {
			Generation int64 `json:"generation"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h.Generation
	}
	if g := generation(); g != 1 {
		t.Fatalf("boot generation = %d", g)
	}
	// GET returns the running catalog, faithful under Diff.
	got, err := c.FetchCatalog()
	if err != nil {
		t.Fatal(err)
	}
	if d := catalog.Diff(twoTenantCatalog(t, 1100, 2200), got); len(d) != 0 {
		t.Fatalf("fetched catalog diverges: %v", d)
	}
	// PUT swaps in a replacement; the response carries the diff lines and
	// the generation moves.
	next := twoTenantCatalog(t, 1101, 2200)
	rr, err := c.PushCatalog(next)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Generation != 2 || rr.Tenants != 2 || rr.Workflows != 2 {
		t.Fatalf("reload response = %+v", rr)
	}
	if len(rr.Changes) != 1 || rr.Changes[0] != "acme/ia: bundle changed" {
		t.Fatalf("reload changes = %v", rr.Changes)
	}
	if g := generation(); g != 2 {
		t.Fatalf("post-reload generation = %d", g)
	}
	// New traffic sees the swapped bundle.
	acme := NewClient(ts.URL).WithAPIKey("key-acme")
	if d, err := acme.Decide("ia", 0, 2500*time.Millisecond); err != nil || d.Millicores != 1101 {
		t.Fatalf("post-swap decide = %+v, %v", d, err)
	}
}

// TestCatalogPutRejectsInvalid: both malformed JSON and a
// well-formed-but-invalid catalog are refused whole, the running
// catalog untouched and still serving.
func TestCatalogPutRejectsInvalid(t *testing.T) {
	_, ts := serveCatalog(t, twoTenantCatalog(t, 1100, 2200))
	acme := NewClient(ts.URL).WithAPIKey("key-acme")

	put := func(body string) (*APIError, error) {
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/catalog", strings.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		return checkStatus(resp).(*APIError), nil
	}
	apiErr, err := put("{not json")
	if err != nil {
		t.Fatal(err)
	}
	if apiErr.Status != 400 || apiErr.Code != CodeInvalidCatalog {
		t.Fatalf("malformed JSON PUT = %+v", apiErr)
	}
	// Valid JSON, invalid catalog: duplicate API keys. Marshal validates
	// and would refuse, so serialize the broken file raw.
	bad := twoTenantCatalog(t, 1100, 2200)
	bad.Tenants["globex"].APIKey = "key-acme"
	data, err := json.Marshal(bad)
	if err != nil {
		t.Fatal(err)
	}
	apiErr, err = put(string(data))
	if err != nil {
		t.Fatal(err)
	}
	if apiErr.Status != 400 || apiErr.Code != CodeInvalidCatalog || !strings.Contains(apiErr.Message, "share an api_key") {
		t.Fatalf("invalid catalog PUT = %+v", apiErr)
	}
	// The rejected loads changed nothing: generation 1, old keys serve.
	if d, err := acme.Decide("ia", 0, 2500*time.Millisecond); err != nil || d.Millicores != 1100 {
		t.Fatalf("serving disturbed by rejected PUT: %+v, %v", d, err)
	}
}

// TestAdminKeyGating: once the catalog declares an admin key, the
// operator surface (catalog, bundle submission, metrics) demands it —
// tenant keys do not qualify — while the data plane is untouched.
func TestAdminKeyGating(t *testing.T) {
	f := twoTenantCatalog(t, 1100, 2200)
	f.AdminKey = "key-admin"
	_, ts := serveCatalog(t, f)

	paths := []struct {
		method, path string
	}{
		{http.MethodGet, "/v1/catalog"},
		{http.MethodGet, "/v1/metrics?n=1"},
	}
	try := func(method, path, key string) int {
		req, err := http.NewRequest(method, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if key != "" {
			req.Header.Set("X-API-Key", key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	for _, p := range paths {
		if got := try(p.method, p.path, ""); got != 401 {
			t.Fatalf("%s %s anonymous -> %d, want 401", p.method, p.path, got)
		}
		if got := try(p.method, p.path, "key-acme"); got != 401 {
			t.Fatalf("%s %s with tenant key -> %d, want 401", p.method, p.path, got)
		}
		if got := try(p.method, p.path, "key-admin"); got != 200 {
			t.Fatalf("%s %s with admin key -> %d, want 200", p.method, p.path, got)
		}
	}
	// Bundle submission and catalog PUT are gated too.
	var apiErr *APIError
	if err := NewClient(ts.URL).SubmitBundle(tenantBundle(t, "x", 500)); !errors.As(err, &apiErr) || apiErr.Status != 401 {
		t.Fatalf("anonymous bundle submit error = %v", err)
	}
	if _, err := NewClient(ts.URL).WithAPIKey("key-acme").PushCatalog(f); !errors.As(err, &apiErr) || apiErr.Status != 401 {
		t.Fatalf("tenant-key catalog push error = %v", err)
	}
	if _, err := NewClient(ts.URL).WithAPIKey("key-admin").PushCatalog(f); err != nil {
		t.Fatalf("admin catalog push: %v", err)
	}
	// The data plane still answers tenant keys.
	if d, err := NewClient(ts.URL).WithAPIKey("key-acme").Decide("ia", 0, 2500*time.Millisecond); err != nil || d.Millicores != 1100 {
		t.Fatalf("tenant decide under admin gating = %+v, %v", d, err)
	}
}

// TestMetricsStream: n frames of NDJSON, each independently parseable,
// flushed on the requested cadence, carrying the tenant counters.
func TestMetricsStream(t *testing.T) {
	srv, ts := serveCatalog(t, twoTenantCatalog(t, 1100, 2200))
	srv.metricsMinInterval = time.Millisecond
	acme := NewClient(ts.URL).WithAPIKey("key-acme")
	for i := 0; i < 3; i++ {
		if _, err := acme.Decide("ia", 0, 2500*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/metrics?n=3&interval_ms=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	frames := 0
	for sc.Scan() {
		var snap MetricsSnapshot
		if err := json.Unmarshal(sc.Bytes(), &snap); err != nil {
			t.Fatalf("frame %d: %v", frames, err)
		}
		if snap.Generation != 1 || len(snap.Tenants) != 2 {
			t.Fatalf("frame %d = %+v", frames, snap)
		}
		if snap.Tenants[0].Tenant != "acme" || snap.Tenants[0].Workflows[0].Hits+snap.Tenants[0].Workflows[0].Misses != 3 {
			t.Fatalf("frame %d acme counters = %+v", frames, snap.Tenants[0])
		}
		frames++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if frames != 3 {
		t.Fatalf("frames = %d, want 3", frames)
	}
	// The single-frame client helper sees the same snapshot.
	snap, err := NewClient(ts.URL).MetricsOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Tenants) != 2 {
		t.Fatalf("MetricsOnce = %+v", snap)
	}
}

// TestErrorEnvelope sweeps every error path and pins the uniform
// {"error","code"} envelope: right status, right stable code, non-empty
// diagnostic.
func TestErrorEnvelope(t *testing.T) {
	f := twoTenantCatalog(t, 1100, 2200)
	f.Tenants["acme"].Quota = &catalog.Quota{RatePerSec: 0.001, Burst: 1}
	_, ts := serveCatalog(t, f)
	// Drain acme's single-token bucket so the quota case is deterministic.
	if _, err := NewClient(ts.URL).WithAPIKey("key-acme").Decide("ia", 0, 2500*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	badCatalog := twoTenantCatalog(t, 1, 2)
	badCatalog.Tenants["globex"].APIKey = "key-acme"
	badData, err := json.Marshal(badCatalog)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name       string
		method     string
		path       string
		key        string
		json       bool
		body       string
		wantStatus int
		wantCode   string
	}{
		{"decide wrong method", http.MethodGet, "/v1/decide", "", false, "", 405, CodeMethodNotAllowed},
		{"bundles wrong method", http.MethodGet, "/v1/bundles", "", false, "", 405, CodeMethodNotAllowed},
		{"stats wrong method", http.MethodPost, "/v1/stats", "", true, "{}", 405, CodeMethodNotAllowed},
		{"catalog wrong method", http.MethodDelete, "/v1/catalog", "", false, "", 405, CodeMethodNotAllowed},
		{"metrics wrong method", http.MethodPost, "/v1/metrics", "", true, "{}", 405, CodeMethodNotAllowed},
		{"healthz wrong method", http.MethodPost, "/v1/healthz", "", true, "{}", 405, CodeMethodNotAllowed},
		{"decide no content type", http.MethodPost, "/v1/decide", "key-globex", false,
			`{"workflow":"va","suffix":0,"remaining_ms":2500}`, 415, CodeUnsupportedMedia},
		{"decide malformed body", http.MethodPost, "/v1/decide", "key-globex", true, "{not json", 400, CodeInvalidRequest},
		{"decide non-positive budget", http.MethodPost, "/v1/decide", "key-globex", true,
			`{"workflow":"va","suffix":0,"remaining_ms":0}`, 400, CodeInvalidRequest},
		{"decide anonymous", http.MethodPost, "/v1/decide", "", true,
			`{"workflow":"va","suffix":0,"remaining_ms":2500}`, 401, CodeUnauthorized},
		{"decide unknown key", http.MethodPost, "/v1/decide", "key-nope", true,
			`{"workflow":"va","suffix":0,"remaining_ms":2500}`, 401, CodeUnauthorized},
		{"decide unknown workflow", http.MethodPost, "/v1/decide", "key-globex", true,
			`{"workflow":"nope","suffix":0,"remaining_ms":2500}`, 404, CodeNotFound},
		{"decide bad suffix", http.MethodPost, "/v1/decide", "key-globex", true,
			`{"workflow":"va","suffix":9,"remaining_ms":2500}`, 400, CodeInvalidRequest},
		{"decide over quota", http.MethodPost, "/v1/decide", "key-acme", true,
			`{"workflow":"ia","suffix":0,"remaining_ms":2500}`, 429, CodeQuotaExceeded},
		{"stats unknown workflow", http.MethodGet, "/v1/stats?workflow=nope", "key-globex", false, "", 404, CodeNotFound},
		{"stats anonymous", http.MethodGet, "/v1/stats?workflow=va", "", false, "", 401, CodeUnauthorized},
		{"catalog put malformed", http.MethodPut, "/v1/catalog", "", true, "{not json", 400, CodeInvalidCatalog},
		{"catalog put invalid", http.MethodPut, "/v1/catalog", "", true, string(badData), 400, CodeInvalidCatalog},
		{"bundles malformed", http.MethodPost, "/v1/bundles", "", true, "{not json", 400, CodeInvalidRequest},
		{"metrics bad interval", http.MethodGet, "/v1/metrics?interval_ms=abc", "", false, "", 400, CodeInvalidRequest},
		{"metrics bad n", http.MethodGet, "/v1/metrics?n=-1", "", false, "", 400, CodeInvalidRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var rd *strings.Reader
			if tc.body != "" {
				rd = strings.NewReader(tc.body)
			} else {
				rd = strings.NewReader("")
			}
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, rd)
			if err != nil {
				t.Fatal(err)
			}
			if tc.json {
				req.Header.Set("Content-Type", "application/json")
			}
			if tc.key != "" {
				req.Header.Set("X-API-Key", tc.key)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			var eb errorBody
			if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
				t.Fatalf("error response is not the JSON envelope: %v", err)
			}
			if eb.Code != tc.wantCode {
				t.Fatalf("code = %q, want %q (error %q)", eb.Code, tc.wantCode, eb.Error)
			}
			if eb.Error == "" {
				t.Fatal("empty diagnostic in envelope")
			}
			if tc.wantStatus == 429 && resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
		})
	}
}

// TestCatalogSwapUnderFire is the control plane's core concurrency
// guarantee: two tenants hammer /v1/decide while the whole catalog is
// swapped repeatedly. Every request must be served (zero drops), every
// answer must come from the caller's own tenant (millicores stay inside
// the tenant-specific value set), and cumulative supervisor counters
// must move monotonically through the swaps.
func TestCatalogSwapUnderFire(t *testing.T) {
	srv, ts := serveCatalog(t, twoTenantCatalog(t, 1100, 2200))

	type lane struct {
		key, wf string
		allowed map[int]bool
		count   atomic.Int64
	}
	lanes := []*lane{
		{key: "key-acme", wf: "ia", allowed: map[int]bool{1100: true, 1101: true}},
		{key: "key-globex", wf: "va", allowed: map[int]bool{2200: true, 2201: true}},
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, ln := range lanes {
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func(ln *lane) {
				defer wg.Done()
				c := NewClient(ts.URL).WithAPIKey(ln.key)
				for {
					select {
					case <-stop:
						return
					default:
					}
					d, err := c.Decide(ln.wf, 0, 2500*time.Millisecond)
					if err != nil {
						t.Errorf("tenant %s decide dropped: %v", ln.key, err)
						return
					}
					if !ln.allowed[d.Millicores] {
						t.Errorf("tenant %s got millicores %d — cross-tenant leak or stale catalog", ln.key, d.Millicores)
						return
					}
					ln.count.Add(1)
				}
			}(ln)
		}
	}
	// Monotonicity watcher: cumulative counters never go backwards, even
	// as bundle swaps reset epochs.
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		last := map[string]int64{}
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, m := range srv.Registry().MetricsSnapshot() {
				for _, wm := range m.Workflows {
					k := m.Tenant + "/" + wm.Workflow
					total := wm.Hits + wm.Misses
					if total < last[k] {
						t.Errorf("cumulative counters for %s went backwards: %d -> %d", k, last[k], total)
						return
					}
					last[k] = total
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()
	// The swapper: alternate two catalog versions through PUT /v1/catalog.
	op := NewClient(ts.URL)
	for i := 0; i < 60; i++ {
		var f *catalog.File
		if i%2 == 0 {
			f = twoTenantCatalog(t, 1101, 2201)
		} else {
			f = twoTenantCatalog(t, 1100, 2200)
		}
		if _, err := op.PushCatalog(f); err != nil {
			t.Errorf("swap %d failed: %v", i, err)
			break
		}
	}
	close(stop)
	wg.Wait()
	<-watcherDone
	if t.Failed() {
		return
	}
	// Zero drops: the cumulative counters account for every successful
	// decide each lane issued (Replace carries cumulative stats across
	// every swap).
	for _, ln := range lanes {
		st, err := NewClient(ts.URL).WithAPIKey(ln.key).Stats(ln.wf)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := st.Hits+st.Misses, ln.count.Load(); got != want {
			t.Fatalf("tenant %s served %d decides but counters say %d", ln.key, want, got)
		}
		if ln.count.Load() == 0 {
			t.Fatalf("tenant %s issued no decides — the hammer never ran", ln.key)
		}
	}
	// Sanity: the registry ended on the last pushed generation.
	if fmt.Sprint(srv.Registry().Generation()) == "1" {
		t.Fatal("generation never moved under fire")
	}
}
