package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// decideDirect drives one POST /v1/decide through the full handler
// (middleware included) without a network listener.
func decideDirect(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/decide", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestPrometheusEndpoint(t *testing.T) {
	srv, _ := serve(t)
	srv.SetVersion("v1.2.3")
	if err := srv.Deploy(bundle(t)); err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	// One hit, one miss, one rejected budget — three decide outcomes.
	for _, body := range []string{
		`{"workflow":"ia","suffix":0,"remaining_ms":2001}`,
		`{"workflow":"ia","suffix":0,"remaining_ms":100}`,
		`{"workflow":"ia","suffix":0,"remaining_ms":-1}`,
	} {
		decideDirect(t, h, body)
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/prometheus", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("prometheus status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	text := rec.Body.String()
	for _, want := range []string{
		"# TYPE janusd_decisions_total counter",
		`janusd_decisions_total{outcome="hit",tenant="default",workflow="ia"} 1`,
		`janusd_decisions_total{outcome="miss",tenant="default",workflow="ia"} 1`,
		`janusd_decisions_total{outcome="invalid",tenant="",workflow=""} 1`,
		"# TYPE janusd_decide_latency_us histogram",
		"janusd_decide_latency_us_count 3",
		`janusd_build_info{version="v1.2.3"} 1`,
		`janusd_http_requests_total{path="/v1/decide",status="200"} 2`,
		`janusd_http_requests_total{path="/v1/decide",status="400"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, text)
		}
	}
}

func TestHealthzReportsVersion(t *testing.T) {
	srv, _ := serve(t)
	srv.SetVersion("v9.9")
	req := httptest.NewRequest(http.MethodGet, "/v1/healthz", nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	var got map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got["version"] != "v9.9" || got["status"] != "ok" {
		t.Fatalf("healthz = %v", got)
	}
}

// TestMetricsPointsAgreeWithPrometheus pins the one-registry contract:
// the typed Points in a /v1/metrics frame and the /v1/prometheus text
// render the same counters with the same values.
func TestMetricsPointsAgreeWithPrometheus(t *testing.T) {
	srv, c := serve(t)
	if err := srv.Deploy(bundle(t)); err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	decideDirect(t, h, `{"workflow":"ia","suffix":0,"remaining_ms":2001}`)
	decideDirect(t, h, `{"workflow":"ia","suffix":0,"remaining_ms":2001}`)

	snap, err := c.MetricsOnce()
	if err != nil {
		t.Fatal(err)
	}
	var hits int64
	found := false
	for _, p := range snap.Points {
		if p.Name == "janusd_decisions_total" && p.Labels["outcome"] == "hit" {
			hits, found = p.Value, true
		}
	}
	if !found || hits != 2 {
		t.Fatalf("points: hit counter = %d (found=%t)", hits, found)
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/prometheus", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	want := `janusd_decisions_total{outcome="hit",tenant="default",workflow="ia"} 2`
	if !strings.Contains(rec.Body.String(), want) {
		t.Fatalf("prometheus disagrees with points; missing %q:\n%s", want, rec.Body.String())
	}
}

// flushCounter is a ResponseWriter that counts frames (flushes) behind a
// mutex, for the stream-termination tests (the handler goroutine flushes
// while the test polls).
type flushCounter struct {
	*httptest.ResponseRecorder
	mu      sync.Mutex
	flushes int
}

func (f *flushCounter) Flush() {
	f.mu.Lock()
	f.flushes++
	f.mu.Unlock()
}

func (f *flushCounter) Flushes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.flushes
}

func (f *flushCounter) Write(b []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ResponseRecorder.Write(b)
}

func (f *flushCounter) bodyLen() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ResponseRecorder.Body.Len()
}

// TestMetricsStreamStopsOnDisconnect is the mid-stream hang-up
// regression test: a /v1/metrics stream whose client disconnects between
// frames must terminate promptly — even with an hour-long interval — and
// a stream whose context is already dead must not write a single frame
// (the ticker/cancellation select race used to allow one).
func TestMetricsStreamStopsOnDisconnect(t *testing.T) {
	srv, _ := serve(t)
	h := srv.Handler()

	// Mid-stream hang-up: frame 1 is written, then the client goes away
	// while the handler waits out a 1-hour tick.
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodGet, "/v1/metrics?interval_ms=3600000", nil).WithContext(ctx)
	rec := &flushCounter{ResponseRecorder: httptest.NewRecorder()}
	done := make(chan struct{})
	go func() {
		h.ServeHTTP(rec, req)
		close(done)
	}()
	// Wait for the first frame, then hang up.
	deadline := time.Now().Add(5 * time.Second)
	for rec.Flushes() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if rec.Flushes() == 0 {
		t.Fatal("stream never wrote its first frame")
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not terminate after client disconnect")
	}

	// Already-dead client: not one frame goes out.
	deadCtx, deadCancel := context.WithCancel(context.Background())
	deadCancel()
	req2 := httptest.NewRequest(http.MethodGet, "/v1/metrics?interval_ms=3600000", nil).WithContext(deadCtx)
	rec2 := &flushCounter{ResponseRecorder: httptest.NewRecorder()}
	h.ServeHTTP(rec2, req2)
	if body := rec2.bodyLen(); body != 0 {
		t.Fatalf("dead-context stream wrote %d bytes, want 0", body)
	}
}

func TestAccessLog(t *testing.T) {
	srv, _ := serve(t)
	var buf bytes.Buffer
	srv.SetAccessLog(&buf)
	if err := srv.Deploy(bundle(t)); err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	decideDirect(t, h, `{"workflow":"ia","suffix":0,"remaining_ms":2001}`)
	line := buf.String()
	for _, want := range []string{
		"method=POST", "path=/v1/decide", "tenant=default", "status=200", "dur=", "bytes=",
	} {
		if !strings.Contains(line, want) {
			t.Fatalf("access log missing %q: %q", want, line)
		}
	}
}
