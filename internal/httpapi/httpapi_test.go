package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"janus/internal/hints"
)

func bundle(t *testing.T) *hints.Bundle {
	t.Helper()
	t0, err := hints.Condense(&hints.RawTable{Suffix: 0, Weight: 1, Hints: []hints.Hint{
		{BudgetMs: 2000, HeadMillicores: 3000, HeadPercentile: 99},
		{BudgetMs: 2001, HeadMillicores: 1500, HeadPercentile: 90},
	}})
	if err != nil {
		t.Fatal(err)
	}
	t1, err := hints.Condense(&hints.RawTable{Suffix: 1, Weight: 1, Hints: []hints.Hint{
		{BudgetMs: 1000, HeadMillicores: 1200, HeadPercentile: 99},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return &hints.Bundle{
		Workflow: "ia", Batch: 1, Weight: 1, SLOMs: 3000, MaxMillicores: 3000,
		Tables: []*hints.Table{t0, t1},
	}
}

func serve(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, NewClient(ts.URL)
}

func TestHealthz(t *testing.T) {
	_, c := serve(t)
	if !c.Healthy() {
		t.Fatal("service not healthy")
	}
}

func TestSubmitAndDecideRoundTrip(t *testing.T) {
	_, c := serve(t)
	if err := c.SubmitBundle(bundle(t)); err != nil {
		t.Fatal(err)
	}
	d, err := c.Decide("ia", 0, 2001*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Hit || d.Millicores != 1500 || d.Percentile != 90 {
		t.Fatalf("decision = %+v", d)
	}
	// Miss path.
	d, err = c.Decide("ia", 0, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if d.Hit || d.Millicores != 3000 {
		t.Fatalf("miss decision = %+v", d)
	}
	// Stats reflect both decisions.
	st, err := c.Stats("ia")
	if err != nil {
		t.Fatal(err)
	}
	if st.Hits != 1 || st.Misses != 1 || st.MissRate != 0.5 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDecideUnknownWorkflow(t *testing.T) {
	_, c := serve(t)
	if _, err := c.Decide("nope", 0, time.Second); err == nil {
		t.Fatal("unknown workflow accepted")
	}
	if !strings.Contains(func() string {
		_, err := c.Stats("nope")
		return err.Error()
	}(), "not deployed") {
		t.Fatal("stats for unknown workflow should mention deployment")
	}
}

func TestDecideBadSuffix(t *testing.T) {
	_, c := serve(t)
	if err := c.SubmitBundle(bundle(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decide("ia", 9, time.Second); err == nil {
		t.Fatal("bad suffix accepted")
	}
}

// TestDecideRejectsNonPositiveBudget is the regression test for the
// malformed-budget bug: POST /v1/decide with a zero or negative
// remaining_ms used to reach Table.Lookup, count a guaranteed miss, and
// pollute the supervisor's miss rate — the signal the regeneration loop
// triggers on. The server must 400 without moving the counters.
func TestDecideRejectsNonPositiveBudget(t *testing.T) {
	srv, c := serve(t)
	if err := c.SubmitBundle(bundle(t)); err != nil {
		t.Fatal(err)
	}
	// One legitimate decision so the counters are non-trivially set.
	if _, err := c.Decide("ia", 0, 2001*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	a, ok := srv.Adapter("ia")
	if !ok {
		t.Fatal("adapter missing")
	}
	hitsBefore, missesBefore, _ := a.Stats()
	base := c.base
	for _, ms := range []int64{0, -5} {
		body := fmt.Sprintf(`{"workflow":"ia","suffix":0,"remaining_ms":%d}`, ms)
		resp, err := http.Post(base+"/v1/decide", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var eb errorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("remaining_ms=%d: status %d, want 400", ms, resp.StatusCode)
		}
		if !strings.Contains(eb.Error, "remaining_ms") {
			t.Fatalf("remaining_ms=%d: error %q should name the field", ms, eb.Error)
		}
	}
	hitsAfter, missesAfter, _ := a.Stats()
	if hitsAfter != hitsBefore || missesAfter != missesBefore {
		t.Fatalf("malformed budgets moved the supervisor counters: %d/%d -> %d/%d",
			hitsBefore, missesBefore, hitsAfter, missesAfter)
	}
}

// TestClientRejectsNonPositiveBudget mirrors the server-side check in the
// Go client: a non-positive budget fails before any network round trip.
func TestClientRejectsNonPositiveBudget(t *testing.T) {
	srv, c := serve(t)
	if err := c.SubmitBundle(bundle(t)); err != nil {
		t.Fatal(err)
	}
	a, _ := srv.Adapter("ia")
	for _, remaining := range []time.Duration{0, -time.Second} {
		if _, err := c.Decide("ia", 0, remaining); err == nil {
			t.Fatalf("client accepted budget %v", remaining)
		}
	}
	if hits, misses, _ := a.Stats(); hits != 0 || misses != 0 {
		t.Fatalf("client-side rejection still reached the server: %d/%d", hits, misses)
	}
}

// TestClientSubMillisecondBudgetRoundsUp: a positive budget below 1 ms
// must not truncate to an invalid remaining_ms of zero — it rounds up to
// the smallest valid budget instead of being bounced by the server.
func TestClientSubMillisecondBudgetRoundsUp(t *testing.T) {
	_, c := serve(t)
	if err := c.SubmitBundle(bundle(t)); err != nil {
		t.Fatal(err)
	}
	d, err := c.Decide("ia", 0, 500*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	// 1 ms is below the table's coverage: the adapter escalates — a real
	// decision, not a transport rejection.
	if d.Hit || d.Millicores != 3000 {
		t.Fatalf("sub-ms decision = %+v, want an escalated miss", d)
	}
}

func TestSubmitInvalidBundle(t *testing.T) {
	_, c := serve(t)
	b := bundle(t)
	b.Workflow = ""
	if err := c.SubmitBundle(b); err == nil {
		t.Fatal("invalid bundle accepted")
	}
}

func TestResubmitReplacesBundle(t *testing.T) {
	srv, c := serve(t)
	if err := c.SubmitBundle(bundle(t)); err != nil {
		t.Fatal(err)
	}
	b2 := bundle(t)
	b2.Tables[0].Ranges[1].Millicores = 1100
	if err := c.SubmitBundle(b2); err != nil {
		t.Fatal(err)
	}
	d, err := c.Decide("ia", 0, 2001*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if d.Millicores != 1100 {
		t.Fatalf("replacement not applied: %+v", d)
	}
	if _, ok := srv.Adapter("ia"); !ok {
		t.Fatal("adapter lost on replace")
	}
}

func TestMethodValidation(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/bundles")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("GET /v1/bundles -> %d, want 405", resp.StatusCode)
	}
	resp, err = ts.Client().Get(ts.URL + "/v1/decide")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("GET /v1/decide -> %d, want 405", resp.StatusCode)
	}
}

func TestConcurrentDecides(t *testing.T) {
	_, c := serve(t)
	if err := c.SubmitBundle(bundle(t)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := c.Decide("ia", 0, 2500*time.Millisecond); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st, err := c.Stats("ia")
	if err != nil {
		t.Fatal(err)
	}
	if st.Hits+st.Misses != 400 {
		t.Fatalf("stats count = %d", st.Hits+st.Misses)
	}
}

func TestRemoteAllocator(t *testing.T) {
	_, c := serve(t)
	if err := c.SubmitBundle(bundle(t)); err != nil {
		t.Fatal(err)
	}
	al := &Allocator{Client: c, Workflow: "ia", System: "janus-remote", MaxMillicores: 3000}
	if al.Name() != "janus-remote" {
		t.Fatal("name")
	}
	mc, hit := al.Allocate(nil, 0, 2001*time.Millisecond)
	if !hit || mc != 1500 {
		t.Fatalf("Allocate = %d, %v", mc, hit)
	}
	// A dead service escalates to the ceiling.
	dead := &Allocator{Client: NewClient("http://127.0.0.1:1"), Workflow: "ia", System: "x", MaxMillicores: 3000}
	mc, hit = dead.Allocate(nil, 0, time.Second)
	if hit || mc != 3000 {
		t.Fatalf("dead service Allocate = %d, %v", mc, hit)
	}
}

// TestDeployWhileDeciding is the regression test for the bundle-swap data
// race: janusd redeploying a bundle (Server.Deploy -> adapter.Replace,
// swapping the bundle under the adapter's lock) while HTTP decide traffic
// reads it must be safe under the race detector.
func TestDeployWhileDeciding(t *testing.T) {
	srv, c := serve(t)
	if err := c.SubmitBundle(bundle(t)); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.Decide("ia", 0, 2001*time.Millisecond); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// Redeploy mid-traffic, repeatedly, through the server's in-process
	// deploy path (what janusd's regeneration loop drives).
	bundles := make([]*hints.Bundle, 200)
	for i := range bundles {
		b := bundle(t)
		b.Tables[0].Ranges[1].Millicores = 1000 + i
		bundles[i] = b
	}
	for _, b := range bundles {
		if err := srv.Deploy(b); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
}

// TestHealthzMethodValidation: the health check is a GET-only endpoint; a
// probe that writes to it is misconfigured and must hear 405, not 200.
func TestHealthzMethodValidation(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete} {
		req, err := http.NewRequest(method, ts.URL+"/v1/healthz", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s /v1/healthz -> %d, want 405", method, resp.StatusCode)
		}
	}
	// GET still answers.
	resp, err := ts.Client().Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/healthz -> %d, want 200", resp.StatusCode)
	}
}

// TestContentTypeValidation: the JSON POST endpoints reject non-JSON
// Content-Types with 415 before reading the body, so a platform wired to
// send form or octet-stream payloads fails loudly instead of hitting a
// confusing parse error. Parameters on the media type are accepted.
func TestContentTypeValidation(t *testing.T) {
	srv, c := serve(t)
	if err := c.SubmitBundle(bundle(t)); err != nil {
		t.Fatal(err)
	}
	a, _ := srv.Adapter("ia")
	hitsBefore, missesBefore, _ := a.Stats()
	body := `{"workflow":"ia","suffix":0,"remaining_ms":2001}`
	for _, path := range []string{"/v1/decide", "/v1/bundles"} {
		for _, ct := range []string{"", "text/plain", "application/x-www-form-urlencoded", "application/octet-stream"} {
			req, err := http.NewRequest(http.MethodPost, c.base+path, strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			if ct != "" {
				req.Header.Set("Content-Type", ct)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			var eb errorBody
			if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusUnsupportedMediaType {
				t.Fatalf("POST %s with Content-Type %q -> %d, want 415", path, ct, resp.StatusCode)
			}
			if !strings.Contains(eb.Error, "application/json") {
				t.Fatalf("POST %s error %q should name the required media type", path, eb.Error)
			}
		}
	}
	// The rejections never reached the adapter.
	if hits, misses, _ := a.Stats(); hits != hitsBefore || misses != missesBefore {
		t.Fatalf("415 rejections moved the supervisor counters: %d/%d -> %d/%d",
			hitsBefore, missesBefore, hits, misses)
	}
	// A charset parameter on the JSON media type is fine.
	resp, err := http.Post(c.base+"/v1/decide", "application/json; charset=utf-8", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("JSON with charset parameter -> %d, want 200", resp.StatusCode)
	}
}

// shapedBundle extends the test bundle with a width-variant table on
// suffix 1 covering budgets the conservative base misses on.
func shapedBundle(t *testing.T) *hints.Bundle {
	t.Helper()
	b := bundle(t)
	v, err := hints.Condense(&hints.RawTable{Suffix: 1, Weight: 1, Hints: []hints.Hint{
		{BudgetMs: 400, HeadMillicores: 900, HeadPercentile: 95},
	}})
	if err != nil {
		t.Fatal(err)
	}
	b.Shaped = map[int]map[string]*hints.Table{1: {"w=1": v}}
	return b
}

// TestDecideShapedOverHTTP: a dynamic workflow's resolved-shape key rides
// the decide request; the server answers from the shape-variant table and
// falls back to the conservative base for unknown or absent keys.
func TestDecideShapedOverHTTP(t *testing.T) {
	_, c := serve(t)
	if err := c.SubmitBundle(shapedBundle(t)); err != nil {
		t.Fatal(err)
	}
	// 500ms is below the base table's floor for suffix 1 (1000ms) but
	// inside the w=1 variant's coverage.
	d, err := c.DecideShaped("ia", 1, "w=1", 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Hit || d.Millicores != 900 || d.Percentile != 95 {
		t.Fatalf("shaped decision = %+v", d)
	}
	// Unknown shapes fall back to the base table — here a miss.
	d, err = c.DecideShaped("ia", 1, "w=9", 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if d.Hit || d.Millicores != 3000 {
		t.Fatalf("unknown-shape decision = %+v", d)
	}
	// The shapeless path is untouched.
	d, err = c.Decide("ia", 1, 1000*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Hit || d.Millicores != 1200 {
		t.Fatalf("base decision = %+v", d)
	}
	// The remote allocator's shape-aware surface drives the same path.
	al := &Allocator{Client: c, Workflow: "ia", System: "janus-remote", MaxMillicores: 3000}
	mc, hit := al.AllocateShaped(nil, 1, "w=1", 500*time.Millisecond)
	if !hit || mc != 900 {
		t.Fatalf("AllocateShaped = %d, %v", mc, hit)
	}
}
