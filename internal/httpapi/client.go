package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"time"

	"janus/internal/adapter"
	"janus/internal/hints"
	"janus/internal/platform"
)

// Client talks to a remote adapter service.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a client for the service at baseURL (e.g.
// "http://127.0.0.1:8080").
func NewClient(baseURL string) *Client {
	return &Client{base: baseURL, hc: &http.Client{Timeout: 10 * time.Second}}
}

// SubmitBundle deploys a hints bundle.
func (c *Client) SubmitBundle(b *hints.Bundle) error {
	data, err := b.Marshal()
	if err != nil {
		return err
	}
	resp, err := c.hc.Post(c.base+"/v1/bundles", "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return checkStatus(resp)
}

// Decide fetches the adaptation decision for a sub-workflow budget. The
// budget must be positive — the same validation the server enforces with a
// 400, mirrored here so malformed reports fail before a network round
// trip. Positive sub-millisecond budgets round up to 1 ms rather than
// truncating to an invalid zero.
func (c *Client) Decide(workflow string, suffix int, remaining time.Duration) (adapter.Decision, error) {
	return c.DecideShaped(workflow, suffix, "", remaining)
}

// DecideShaped is Decide carrying the decision group's resolved-shape key
// for dynamic workflows; the empty key is exactly Decide. The server
// answers from the matching shape-variant table when the deployed bundle
// has one and falls back to the conservative base otherwise.
func (c *Client) DecideShaped(workflow string, suffix int, shape string, remaining time.Duration) (adapter.Decision, error) {
	if remaining <= 0 {
		return adapter.Decision{}, fmt.Errorf("httpapi: remaining budget must be positive, got %v", remaining)
	}
	ms := remaining.Milliseconds()
	if ms == 0 {
		ms = 1
	}
	req := DecideRequest{Workflow: workflow, Suffix: suffix, RemainingMs: ms, Shape: shape}
	data, err := json.Marshal(req)
	if err != nil {
		return adapter.Decision{}, err
	}
	resp, err := c.hc.Post(c.base+"/v1/decide", "application/json", bytes.NewReader(data))
	if err != nil {
		return adapter.Decision{}, err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return adapter.Decision{}, err
	}
	var out DecideResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return adapter.Decision{}, err
	}
	return adapter.Decision{Millicores: out.Millicores, Hit: out.Hit, Percentile: out.Percentile}, nil
}

// Stats fetches the supervisor counters.
func (c *Client) Stats(workflow string) (StatsResponse, error) {
	resp, err := c.hc.Get(c.base + "/v1/stats?workflow=" + url.QueryEscape(workflow))
	if err != nil {
		return StatsResponse{}, err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return StatsResponse{}, err
	}
	var out StatsResponse
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}

// Healthy reports whether the service responds to the health check.
func (c *Client) Healthy() bool {
	resp, err := c.hc.Get(c.base + "/v1/healthz")
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func checkStatus(resp *http.Response) error {
	if resp.StatusCode == http.StatusOK {
		return nil
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err == nil && eb.Error != "" {
		return fmt.Errorf("httpapi: %s: %s", resp.Status, eb.Error)
	}
	return fmt.Errorf("httpapi: unexpected status %s", resp.Status)
}

// Allocator serves platform allocations over the remote adapter: the full
// bilateral loop with the provider-side component out of process. Network
// or service failures escalate to MaxMillicores — the same safety action a
// hints-table miss takes.
type Allocator struct {
	// Client is the adapter-service connection.
	Client *Client
	// Workflow names the deployed bundle.
	Workflow string
	// System is the display name in traces.
	System string
	// MaxMillicores is the escalation ceiling on errors.
	MaxMillicores int
}

// Name implements platform.Allocator.
func (a *Allocator) Name() string { return a.System }

// Allocate implements platform.Allocator.
func (a *Allocator) Allocate(_ *platform.Request, stage int, remaining time.Duration) (int, bool) {
	d, err := a.Client.Decide(a.Workflow, stage, remaining)
	if err != nil {
		return a.MaxMillicores, false
	}
	return d.Millicores, d.Hit
}

// AllocateShaped implements platform.ShapeAwareAllocator: dynamic
// workflows served against a remote adapter pass each decision group's
// resolved-shape key over the wire.
func (a *Allocator) AllocateShaped(_ *platform.Request, stage int, shape string, remaining time.Duration) (int, bool) {
	d, err := a.Client.DecideShaped(a.Workflow, stage, shape, remaining)
	if err != nil {
		return a.MaxMillicores, false
	}
	return d.Millicores, d.Hit
}
