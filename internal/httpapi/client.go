package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"janus/internal/adapter"
	"janus/internal/catalog"
	"janus/internal/hints"
	"janus/internal/platform"
)

// Client talks to a remote control-plane service.
type Client struct {
	base   string
	apiKey string
	hc     *http.Client
}

// NewClient builds a client for the service at baseURL (e.g.
// "http://127.0.0.1:8080").
func NewClient(baseURL string) *Client {
	return &Client{base: baseURL, hc: &http.Client{Timeout: 10 * time.Second}}
}

// WithAPIKey returns the client configured to authenticate every request
// with the given tenant (or admin) API key. The empty key sends no
// credentials — the open-tenant mode.
func (c *Client) WithAPIKey(key string) *Client {
	c.apiKey = key
	return c
}

// APIError is a non-2xx response decoded from the server's uniform
// error envelope. RetryAfter is set on 429 quota rejections.
type APIError struct {
	Status     int
	Code       string
	Message    string
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("httpapi: %d %s: %s", e.Status, e.Code, e.Message)
	}
	return fmt.Sprintf("httpapi: unexpected status %d", e.Status)
}

// do issues one authenticated request and decodes error envelopes.
func (c *Client) do(method, path string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.apiKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.apiKey)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if err := checkStatus(resp); err != nil {
		resp.Body.Close()
		return nil, err
	}
	return resp, nil
}

// SubmitBundle deploys a hints bundle under the open tenant.
func (c *Client) SubmitBundle(b *hints.Bundle) error {
	data, err := b.Marshal()
	if err != nil {
		return err
	}
	resp, err := c.do(http.MethodPost, "/v1/bundles", data)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// Decide fetches the adaptation decision for a sub-workflow budget. The
// budget must be positive — the same validation the server enforces with a
// 400, mirrored here so malformed reports fail before a network round
// trip. Positive sub-millisecond budgets round up to 1 ms rather than
// truncating to an invalid zero.
func (c *Client) Decide(workflow string, suffix int, remaining time.Duration) (adapter.Decision, error) {
	return c.DecideShaped(workflow, suffix, "", remaining)
}

// DecideShaped is Decide carrying the decision group's resolved-shape key
// for dynamic workflows; the empty key is exactly Decide. The server
// answers from the matching shape-variant table when the deployed bundle
// has one and falls back to the conservative base otherwise.
func (c *Client) DecideShaped(workflow string, suffix int, shape string, remaining time.Duration) (adapter.Decision, error) {
	if remaining <= 0 {
		return adapter.Decision{}, fmt.Errorf("httpapi: remaining budget must be positive, got %v", remaining)
	}
	ms := remaining.Milliseconds()
	if ms == 0 {
		ms = 1
	}
	req := DecideRequest{Workflow: workflow, Suffix: suffix, RemainingMs: ms, Shape: shape}
	data, err := json.Marshal(req)
	if err != nil {
		return adapter.Decision{}, err
	}
	resp, err := c.do(http.MethodPost, "/v1/decide", data)
	if err != nil {
		return adapter.Decision{}, err
	}
	defer resp.Body.Close()
	var out DecideResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return adapter.Decision{}, err
	}
	return adapter.Decision{Millicores: out.Millicores, Hit: out.Hit, Percentile: out.Percentile}, nil
}

// Stats fetches the supervisor counters for one of the tenant's
// workflows.
func (c *Client) Stats(workflow string) (StatsResponse, error) {
	resp, err := c.do(http.MethodGet, "/v1/stats?workflow="+url.QueryEscape(workflow), nil)
	if err != nil {
		return StatsResponse{}, err
	}
	defer resp.Body.Close()
	var out StatsResponse
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}

// FetchCatalog retrieves the catalog the server is currently serving.
func (c *Client) FetchCatalog() (*catalog.File, error) {
	resp, err := c.do(http.MethodGet, "/v1/catalog", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var f catalog.File
	if err := json.NewDecoder(resp.Body).Decode(&f); err != nil {
		return nil, err
	}
	return &f, nil
}

// PushCatalog validates and atomically installs a replacement catalog,
// returning the reload summary (new generation, diff lines).
func (c *Client) PushCatalog(f *catalog.File) (ReloadResponse, error) {
	data, err := f.Marshal()
	if err != nil {
		return ReloadResponse{}, err
	}
	resp, err := c.do(http.MethodPut, "/v1/catalog", data)
	if err != nil {
		return ReloadResponse{}, err
	}
	defer resp.Body.Close()
	var out ReloadResponse
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}

// MetricsOnce fetches a single frame of the metrics stream.
func (c *Client) MetricsOnce() (MetricsSnapshot, error) {
	resp, err := c.do(http.MethodGet, "/v1/metrics?n=1", nil)
	if err != nil {
		return MetricsSnapshot{}, err
	}
	defer resp.Body.Close()
	var out MetricsSnapshot
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}

// Prometheus fetches the server's metrics registry in the Prometheus
// text exposition format.
func (c *Client) Prometheus() (string, error) {
	resp, err := c.do(http.MethodGet, "/v1/prometheus", nil)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}

// Healthy reports whether the service responds to the health check.
func (c *Client) Healthy() bool {
	resp, err := c.hc.Get(c.base + "/v1/healthz")
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// checkStatus decodes the uniform error envelope into an *APIError.
func checkStatus(resp *http.Response) error {
	if resp.StatusCode == http.StatusOK {
		return nil
	}
	apiErr := &APIError{Status: resp.StatusCode}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err == nil && eb.Error != "" {
		apiErr.Code = eb.Code
		apiErr.Message = eb.Error
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return apiErr
}

// Allocator serves platform allocations over the remote adapter: the full
// bilateral loop with the provider-side component out of process. Network
// or service failures escalate to MaxMillicores — the same safety action a
// hints-table miss takes.
type Allocator struct {
	// Client is the adapter-service connection.
	Client *Client
	// Workflow names the deployed bundle.
	Workflow string
	// System is the display name in traces.
	System string
	// MaxMillicores is the escalation ceiling on errors.
	MaxMillicores int
}

// Name implements platform.Allocator.
func (a *Allocator) Name() string { return a.System }

// Allocate implements platform.Allocator.
func (a *Allocator) Allocate(_ *platform.Request, stage int, remaining time.Duration) (int, bool) {
	d, err := a.Client.Decide(a.Workflow, stage, remaining)
	if err != nil {
		return a.MaxMillicores, false
	}
	return d.Millicores, d.Hit
}

// AllocateShaped implements platform.ShapeAwareAllocator: dynamic
// workflows served against a remote adapter pass each decision group's
// resolved-shape key over the wire.
func (a *Allocator) AllocateShaped(_ *platform.Request, stage int, shape string, remaining time.Duration) (int, bool) {
	d, err := a.Client.DecideShaped(a.Workflow, stage, shape, remaining)
	if err != nil {
		return a.MaxMillicores, false
	}
	return d.Millicores, d.Hit
}
