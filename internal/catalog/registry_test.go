package catalog

import (
	"strings"
	"testing"
	"time"
)

func mustLoad(t *testing.T, r *Registry, f *File) int64 {
	t.Helper()
	gen, _, err := r.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

func decideN(t *testing.T, r *Registry, key, wf string, n int) {
	t.Helper()
	ten, ok := r.Authenticate(key)
	if !ok {
		t.Fatalf("key %q did not authenticate", key)
	}
	a, ok := ten.Adapter(wf)
	if !ok {
		t.Fatalf("tenant %q has no workflow %q", ten.Name(), wf)
	}
	for i := 0; i < n; i++ {
		if _, err := a.Decide(0, 2500*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRegistryLoadAndLookup(t *testing.T) {
	r := NewRegistry()
	if r.Generation() != 0 {
		t.Fatalf("fresh registry generation = %d", r.Generation())
	}
	gen := mustLoad(t, r, validFile(t))
	if gen != 1 || r.Generation() != 1 {
		t.Fatalf("generation = %d / %d", gen, r.Generation())
	}
	ten, ok := r.Authenticate("key-acme")
	if !ok || ten.Name() != "acme" {
		t.Fatalf("acme auth = %v, %v", ten, ok)
	}
	if _, ok := r.Authenticate("key-wrong"); ok {
		t.Fatal("unknown key authenticated")
	}
	// Keyed tenants exist and no open tenant is declared: anonymous
	// requests are refused.
	if _, ok := r.Authenticate(""); ok {
		t.Fatal("anonymous authenticated against a keyed catalog")
	}
	a, ok := ten.Adapter("ia")
	if !ok {
		t.Fatal("acme/ia adapter missing")
	}
	d, err := a.Decide(0, 2500*time.Millisecond)
	if err != nil || d.Millicores != 1100 {
		t.Fatalf("decision = %+v, %v", d, err)
	}
	if ws := ten.Workflows(); len(ws) != 1 || ws[0] != "ia" {
		t.Fatalf("workflows = %v", ws)
	}
}

// TestRegistryUnconfiguredOpenMode: before any catalog loads, anonymous
// requests resolve to an empty default tenant (legacy single-tenant
// mode) rather than 401.
func TestRegistryUnconfiguredOpenMode(t *testing.T) {
	r := NewRegistry()
	ten, ok := r.Authenticate("")
	if !ok || ten.Name() != "default" {
		t.Fatalf("unconfigured anonymous auth = %v, %v", ten, ok)
	}
	if _, ok := ten.Adapter("ia"); ok {
		t.Fatal("empty default tenant has adapters")
	}
	if admitted, _ := ten.Admit(time.Now()); !admitted {
		t.Fatal("empty default tenant rate-limited")
	}
}

// TestRegistrySwapCarryOver pins the reload semantics: unchanged
// (tenant, workflow) pairs keep their adapter — cumulative stats AND
// epoch window — while changed bundles keep cumulative stats but open a
// fresh epoch, exactly the adapter's Replace contract generalized.
func TestRegistrySwapCarryOver(t *testing.T) {
	r := NewRegistry()
	mustLoad(t, r, validFile(t))
	decideN(t, r, "key-acme", "ia", 5)
	decideN(t, r, "key-globex", "va", 3)

	// Reload an identical catalog: everything carries through.
	mustLoad(t, r, validFile(t))
	ten, _ := r.Authenticate("key-acme")
	a, _ := ten.Adapter("ia")
	if hits, misses, _ := a.Stats(); hits+misses != 5 {
		t.Fatalf("cumulative stats after no-op reload = %d", hits+misses)
	}
	if eh, em, _ := a.EpochStats(); eh+em != 5 {
		t.Fatalf("epoch window after no-op reload = %d (carry-over should preserve it)", eh+em)
	}

	// Reload with acme's bundle changed: cumulative survives, epoch
	// resets; globex (untouched) keeps both.
	next := validFile(t)
	next.Tenants["acme"].Workflows["ia"].Bundle = testBundle(t, "ia", 1101)
	_, changes, err := r.Load(next)
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 1 || changes[0].Kind != BundleChanged {
		t.Fatalf("changes = %v", changes)
	}
	ten, _ = r.Authenticate("key-acme")
	a2, _ := ten.Adapter("ia")
	if hits, misses, _ := a2.Stats(); hits+misses != 5 {
		t.Fatalf("cumulative stats after bundle swap = %d", hits+misses)
	}
	if eh, em, _ := a2.EpochStats(); eh+em != 0 {
		t.Fatalf("epoch window after bundle swap = %d, want fresh", eh+em)
	}
	d, err := a2.Decide(0, 2500*time.Millisecond)
	if err != nil || d.Millicores != 1101 {
		t.Fatalf("post-swap decision = %+v, %v", d, err)
	}
	g, _ := r.Authenticate("key-globex")
	ga, _ := g.Adapter("va")
	if eh, em, _ := ga.EpochStats(); eh+em != 3 {
		t.Fatalf("untouched tenant epoch window = %d", eh+em)
	}
}

// TestRegistryRejectedLoadLeavesStateUntouched: an invalid catalog must
// not change anything — generation, lookups, stats.
func TestRegistryRejectedLoadLeavesStateUntouched(t *testing.T) {
	r := NewRegistry()
	mustLoad(t, r, validFile(t))
	decideN(t, r, "key-acme", "ia", 2)
	bad := validFile(t)
	bad.Tenants["globex"].APIKey = "key-acme" // duplicate key
	if _, _, err := r.Load(bad); err == nil || !strings.Contains(err.Error(), "share an api_key") {
		t.Fatalf("invalid catalog accepted: %v", err)
	}
	if r.Generation() != 1 {
		t.Fatalf("generation moved to %d on a rejected load", r.Generation())
	}
	ten, ok := r.Authenticate("key-acme")
	if !ok {
		t.Fatal("tenant lost on rejected load")
	}
	a, _ := ten.Adapter("ia")
	if hits, _, _ := a.Stats(); hits != 2 {
		t.Fatalf("stats disturbed by rejected load: %d", hits)
	}
	if _, _, err := r.Load(nil); err == nil {
		t.Fatal("nil catalog accepted")
	}
}

func TestRegistryDeploy(t *testing.T) {
	r := NewRegistry()
	// First deploy creates the open "default" tenant.
	if err := r.Deploy(testBundle(t, "ia", 900)); err != nil {
		t.Fatal(err)
	}
	ten, ok := r.Authenticate("")
	if !ok || ten.Name() != "default" {
		t.Fatalf("open tenant = %v, %v", ten, ok)
	}
	a, ok := ten.Adapter("ia")
	if !ok {
		t.Fatal("deployed bundle missing")
	}
	if d, _ := a.Decide(0, 2500*time.Millisecond); d.Millicores != 900 {
		t.Fatalf("decision = %+v", d)
	}
	// Redeploy replaces in place (epoch resets, cumulative kept). One
	// decision already happened above, plus four more here.
	decideN(t, r, "", "ia", 4)
	if err := r.Deploy(testBundle(t, "ia", 901)); err != nil {
		t.Fatal(err)
	}
	ten, _ = r.Authenticate("")
	a, _ = ten.Adapter("ia")
	if hits, misses, _ := a.Stats(); hits+misses != 5 {
		t.Fatalf("cumulative stats after redeploy = %d", hits+misses)
	}
	if d, _ := a.Decide(0, 2500*time.Millisecond); d.Millicores != 901 {
		t.Fatalf("redeployed decision = %+v", d)
	}
	// Deploy alongside a keyed catalog that declares an open tenant:
	// the bundle lands under that open tenant, keyed tenants untouched.
	f := validFile(t)
	f.Tenants["anon"] = &Tenant{Workflows: map[string]*Entry{"va": {Bundle: testBundle(t, "va", 800)}}}
	r2 := NewRegistry()
	mustLoad(t, r2, f)
	if err := r2.Deploy(testBundle(t, "ia", 700)); err != nil {
		t.Fatal(err)
	}
	anon, _ := r2.Authenticate("")
	if anon.Name() != "anon" {
		t.Fatalf("deploy targeted %q, want the declared open tenant", anon.Name())
	}
	if ws := anon.Workflows(); len(ws) != 2 {
		t.Fatalf("open tenant workflows = %v", ws)
	}
	if _, ok := r2.Authenticate("key-acme"); !ok {
		t.Fatal("keyed tenant lost on deploy")
	}
	// Invalid bundles are rejected outright.
	if err := r.Deploy(nil); err == nil {
		t.Fatal("nil bundle deployed")
	}
	b := testBundle(t, "ia", 1)
	b.SLOMs = 0
	if err := r.Deploy(b); err == nil {
		t.Fatal("invalid bundle deployed")
	}
}

// TestQuotaBucket drives the token bucket deterministically through
// Admit's explicit clock.
func TestQuotaBucket(t *testing.T) {
	f := validFile(t)
	f.Tenants["acme"].Quota = &Quota{RatePerSec: 1, Burst: 2}
	r := NewRegistry()
	mustLoad(t, r, f)
	ten, _ := r.Authenticate("key-acme")
	t0 := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		if ok, _ := ten.Admit(t0); !ok {
			t.Fatalf("burst admit %d denied", i)
		}
	}
	ok, retry := ten.Admit(t0)
	if ok {
		t.Fatal("admit beyond burst")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry-after = %v, want (0, 1s]", retry)
	}
	// A token accrues after 1/rate seconds.
	if ok, _ := ten.Admit(t0.Add(1100 * time.Millisecond)); !ok {
		t.Fatal("admit denied after refill interval")
	}
	// Idle refill caps at burst: after a long idle only 2 admits pass.
	t1 := t0.Add(time.Hour)
	admitted := 0
	for i := 0; i < 5; i++ {
		if ok, _ := ten.Admit(t1); ok {
			admitted++
		}
	}
	if admitted != 2 {
		t.Fatalf("admits after long idle = %d, want burst 2", admitted)
	}
}

// TestQuotaBucketCarriesAcrossReload: a reload with the same quota
// declaration keeps the bucket's fill level — a reload is not a quota
// reset — while a changed declaration installs a fresh bucket.
func TestQuotaBucketCarriesAcrossReload(t *testing.T) {
	makeFile := func(burst int) *File {
		f := validFile(t)
		f.Tenants["acme"].Quota = &Quota{RatePerSec: 0.001, Burst: burst}
		return f
	}
	r := NewRegistry()
	mustLoad(t, r, makeFile(2))
	ten, _ := r.Authenticate("key-acme")
	t0 := time.Unix(2000, 0)
	ten.Admit(t0)
	ten.Admit(t0) // bucket drained
	if ok, _ := ten.Admit(t0); ok {
		t.Fatal("bucket not drained")
	}
	// Same quota: the drained bucket carries.
	mustLoad(t, r, makeFile(2))
	ten, _ = r.Authenticate("key-acme")
	if ok, _ := ten.Admit(t0); ok {
		t.Fatal("reload refilled the bucket despite an unchanged quota")
	}
	// Changed quota: fresh bucket at the new burst.
	mustLoad(t, r, makeFile(3))
	ten, _ = r.Authenticate("key-acme")
	for i := 0; i < 3; i++ {
		if ok, _ := ten.Admit(t0); !ok {
			t.Fatalf("fresh bucket admit %d denied", i)
		}
	}
}

func TestMetricsSnapshot(t *testing.T) {
	r := NewRegistry()
	mustLoad(t, r, validFile(t))
	decideN(t, r, "key-acme", "ia", 3)
	snap := r.MetricsSnapshot()
	if len(snap) != 2 || snap[0].Tenant != "acme" || snap[1].Tenant != "globex" {
		t.Fatalf("snapshot tenants = %+v", snap)
	}
	wm := snap[0].Workflows
	if len(wm) != 1 || wm[0].Workflow != "ia" {
		t.Fatalf("acme workflows = %+v", wm)
	}
	if wm[0].Hits+wm[0].Misses != 3 || wm[0].EpochHits+wm[0].EpochMisses != 3 {
		t.Fatalf("acme counters = %+v", wm[0])
	}
}
