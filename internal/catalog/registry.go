package catalog

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"janus/internal/adapter"
	"janus/internal/hints"
)

// Registry is the runtime half of the control plane: the currently
// served catalog, resolved to live adapters and admission buckets, held
// behind one atomic pointer. Reads (authentication, adapter lookup,
// admission) are lock-free snapshots; Load builds a complete replacement
// state and swaps it in with a single Store, generalizing the adapter's
// per-bundle atomic Replace to the whole catalog.
//
// Swap semantics: a reload lands all-or-nothing. Every fallible step —
// parsing, validation of every bundle, quota, and key — happens before
// any running state is touched, so a rejected catalog leaves the
// registry exactly as it was. Requests in flight across a swap resolved
// their tenant from one state pointer and complete against it; adapters
// for (tenant, workflow) pairs whose bundle is unchanged are carried
// into the new state by pointer, so their supervisor statistics and
// epoch windows flow through a reload untouched, and admission buckets
// carry their fill level whenever the quota declaration is unchanged —
// a reload is not a way to dodge a rate limit.
type Registry struct {
	// swapMu serializes writers (Load, Deploy). Readers never take it.
	swapMu sync.Mutex
	state  atomic.Pointer[state]
	opts   []adapter.Option
}

// state is one immutable resolved catalog generation.
type state struct {
	file    *File
	gen     int64
	tenants map[string]*RuntimeTenant
	byKey   map[string]*RuntimeTenant
	open    *RuntimeTenant // the tenant with no api_key, if any
}

// RuntimeTenant is one tenant's live serving state: its adapters and its
// admission bucket. Instances are shared across registry generations
// when carry-over applies, never mutated structurally after build.
type RuntimeTenant struct {
	name     string
	quota    *Quota
	bucket   *bucket // nil means unlimited
	adapters map[string]*adapter.Adapter
}

// NewRegistry builds an empty registry; opts apply to every adapter it
// creates. An empty registry authenticates nobody and serves nothing
// until Load or Deploy installs a catalog.
func NewRegistry(opts ...adapter.Option) *Registry {
	r := &Registry{opts: opts}
	r.state.Store(&state{
		file:    &File{Tenants: map[string]*Tenant{}},
		tenants: map[string]*RuntimeTenant{},
		byKey:   map[string]*RuntimeTenant{},
	})
	return r
}

// Load validates the catalog and atomically swaps it in, returning the
// new generation number and the diff against the previous catalog. On
// error the running catalog is untouched.
func (r *Registry) Load(f *File) (int64, []Change, error) {
	r.swapMu.Lock()
	defer r.swapMu.Unlock()
	return r.loadLocked(f)
}

func (r *Registry) loadLocked(f *File) (int64, []Change, error) {
	// Phase 1 — every fallible check, before any running state changes.
	if f == nil {
		return 0, nil, fmt.Errorf("catalog: nil catalog")
	}
	if err := f.Validate(); err != nil {
		return 0, nil, err
	}
	cur := r.state.Load()

	// Phase 2 — build the replacement state. Validation guaranteed every
	// bundle; adapter construction and Replace cannot fail now, so the
	// swap cannot strand a half-built catalog.
	next := &state{
		file:    f,
		gen:     cur.gen + 1,
		tenants: make(map[string]*RuntimeTenant, len(f.Tenants)),
		byKey:   make(map[string]*RuntimeTenant, len(f.Tenants)),
	}
	for _, name := range sortedKeys(f.Tenants) {
		spec := f.Tenants[name]
		prev := cur.tenants[name]
		rt := &RuntimeTenant{
			name:     name,
			quota:    spec.Quota,
			adapters: make(map[string]*adapter.Adapter, len(spec.Workflows)),
		}
		if spec.Quota != nil {
			if prev != nil && prev.bucket != nil && quotaEqual(prev.quota, spec.Quota) {
				rt.bucket = prev.bucket
			} else {
				rt.bucket = newBucket(spec.Quota.RatePerSec, spec.Quota.Burst)
			}
		}
		for _, wf := range sortedKeys(spec.Workflows) {
			e := spec.Workflows[wf]
			var prevAd *adapter.Adapter
			if prev != nil {
				prevAd = prev.adapters[wf]
			}
			switch {
			case prevAd != nil && BundleEqual(prevAd.Bundle(), e.Bundle):
				// Unchanged: carry the adapter through by pointer — stats,
				// epoch window, and regeneration state all survive.
				rt.adapters[wf] = prevAd
			case prevAd != nil:
				// Changed bundle on a surviving pair: the adapter's own
				// atomic Replace — cumulative stats kept, epoch reset.
				if err := prevAd.Replace(e.Bundle); err != nil {
					// Unreachable: Validate accepted this bundle.
					return 0, nil, err
				}
				rt.adapters[wf] = prevAd
			default:
				a, err := adapter.New(e.Bundle, r.opts...)
				if err != nil {
					// Unreachable for the same reason.
					return 0, nil, err
				}
				rt.adapters[wf] = a
			}
		}
		next.tenants[name] = rt
		if spec.APIKey == "" {
			next.open = rt
		} else {
			next.byKey[spec.APIKey] = rt
		}
	}
	changes := Diff(cur.file, f)

	// Phase 3 — the swap: one atomic store.
	r.state.Store(next)
	return next.gen, changes, nil
}

// Deploy installs (or replaces) a single bundle under the open tenant,
// creating an open tenant named "default" when the catalog has none —
// the legacy single-tenant submission path (/v1/bundles, janusctl
// submit) expressed as a one-entry catalog edit.
func (r *Registry) Deploy(b *hints.Bundle) error {
	if b == nil {
		return fmt.Errorf("catalog: nil bundle")
	}
	if err := b.Validate(); err != nil {
		return err
	}
	r.swapMu.Lock()
	defer r.swapMu.Unlock()
	cur := r.state.Load()
	f := cloneFile(cur.file)
	name := "default"
	if cur.open != nil {
		name = cur.open.name
	}
	t := f.Tenants[name]
	if t == nil {
		t = &Tenant{Workflows: map[string]*Entry{}}
		f.Tenants[name] = t
	}
	if t.Workflows == nil {
		t.Workflows = map[string]*Entry{}
	}
	t.Workflows[b.Workflow] = &Entry{Bundle: b}
	_, _, err := r.loadLocked(f)
	return err
}

// Snapshot returns the declarative catalog currently being served. The
// caller must not mutate it; reloads go through Load.
func (r *Registry) Snapshot() *File { return r.state.Load().file }

// Generation reports the catalog generation: 0 before the first load,
// incremented by every successful Load or Deploy.
func (r *Registry) Generation() int64 { return r.state.Load().gen }

// AdminKey reports the running catalog's admin key ("" when open).
func (r *Registry) AdminKey() string { return r.state.Load().file.AdminKey }

// Authenticate resolves an API key to its tenant. The empty key resolves
// to the open tenant when the catalog declares one; when the catalog
// declares no keyed tenants at all (auth unconfigured — the pre-catalog
// single-tenant mode), anonymous requests resolve to an empty "default"
// tenant so legacy probes see "not deployed" rather than 401. Both the
// tenant and every lookup made through it are consistent with a single
// catalog generation, even if a swap lands concurrently.
func (r *Registry) Authenticate(key string) (*RuntimeTenant, bool) {
	s := r.state.Load()
	if key == "" {
		if s.open != nil {
			return s.open, true
		}
		if len(s.byKey) == 0 {
			return &RuntimeTenant{name: "default"}, true
		}
		return nil, false
	}
	t, ok := s.byKey[key]
	return t, ok
}

// TenantByName resolves a tenant by name (metrics, tests).
func (r *Registry) TenantByName(name string) (*RuntimeTenant, bool) {
	t, ok := r.state.Load().tenants[name]
	return t, ok
}

// Name reports the tenant's name.
func (t *RuntimeTenant) Name() string { return t.name }

// Adapter returns the tenant's live adapter for a workflow.
func (t *RuntimeTenant) Adapter(wf string) (*adapter.Adapter, bool) {
	a, ok := t.adapters[wf]
	return a, ok
}

// Workflows returns the tenant's workflow names, sorted.
func (t *RuntimeTenant) Workflows() []string { return sortedKeys(t.adapters) }

// Admit spends one admission token. When the tenant's quota is
// exhausted it reports false with the wait until a token refills — the
// Retry-After the API surfaces with a 429. Unlimited tenants always
// admit.
func (t *RuntimeTenant) Admit(now time.Time) (bool, time.Duration) {
	if t.bucket == nil {
		return true, 0
	}
	return t.bucket.admit(now)
}

// Metrics is one tenant's point-in-time supervisor snapshot.
type Metrics struct {
	Tenant    string            `json:"tenant"`
	Workflows []WorkflowMetrics `json:"workflows"`
}

// WorkflowMetrics is one (tenant, workflow) supervisor snapshot:
// cumulative counters plus the current bundle epoch's window.
type WorkflowMetrics struct {
	Workflow      string  `json:"workflow"`
	Hits          int64   `json:"hits"`
	Misses        int64   `json:"misses"`
	MissRate      float64 `json:"miss_rate"`
	EpochHits     int64   `json:"epoch_hits"`
	EpochMisses   int64   `json:"epoch_misses"`
	EpochMissRate float64 `json:"epoch_miss_rate"`
}

// MetricsSnapshot enumerates every tenant's supervisor counters in one
// consistent catalog generation, tenants and workflows sorted.
func (r *Registry) MetricsSnapshot() []Metrics {
	s := r.state.Load()
	out := make([]Metrics, 0, len(s.tenants))
	for _, name := range sortedKeys(s.tenants) {
		t := s.tenants[name]
		m := Metrics{Tenant: name, Workflows: make([]WorkflowMetrics, 0, len(t.adapters))}
		for _, wf := range sortedKeys(t.adapters) {
			a := t.adapters[wf]
			hits, misses, rate := a.Stats()
			eh, em, er := a.EpochStats()
			m.Workflows = append(m.Workflows, WorkflowMetrics{
				Workflow: wf, Hits: hits, Misses: misses, MissRate: rate,
				EpochHits: eh, EpochMisses: em, EpochMissRate: er,
			})
		}
		out = append(out, m)
	}
	return out
}

// cloneFile deep-copies the declarative file so Deploy can edit it
// without mutating the snapshot concurrent readers hold. Bundles and
// workflow specs are treated as immutable once loaded and are shared.
func cloneFile(f *File) *File {
	cp := &File{Version: f.Version, AdminKey: f.AdminKey, Tenants: make(map[string]*Tenant, len(f.Tenants))}
	for name, t := range f.Tenants {
		tc := &Tenant{APIKey: t.APIKey, Workflows: make(map[string]*Entry, len(t.Workflows))}
		if t.Quota != nil {
			q := *t.Quota
			tc.Quota = &q
		}
		for wf, e := range t.Workflows {
			tc.Workflows[wf] = &Entry{Workflow: e.Workflow, Bundle: e.Bundle}
		}
		cp.Tenants[name] = tc
	}
	return cp
}

// bucket is a token-bucket rate limiter on the real-time clock.
type bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newBucket(rate float64, burst int) *bucket {
	return &bucket{rate: rate, burst: float64(burst), tokens: float64(burst)}
}

// admit spends one token, refilling by elapsed wall time first. When
// empty it reports the wait until the next token accrues.
func (b *bucket) admit(now time.Time) (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.last.IsZero() {
		b.last = now
	} else if now.After(b.last) {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
	if wait <= 0 {
		wait = time.Nanosecond
	}
	return false, wait
}
