package catalog

import (
	"strings"
	"testing"

	"janus/internal/hints"
	"janus/internal/workflow"
)

// testBundle builds a minimal valid bundle for workflow wf whose first
// table answers mc at budgets >= 2000ms — distinct mc values make
// cross-tenant leaks and stale bundles detectable.
func testBundle(t *testing.T, wf string, mc int) *hints.Bundle {
	t.Helper()
	tab, err := hints.Condense(&hints.RawTable{Suffix: 0, Weight: 1, Hints: []hints.Hint{
		{BudgetMs: 2000, HeadMillicores: mc, HeadPercentile: 99},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return &hints.Bundle{
		Workflow: wf, Batch: 1, Weight: 1, SLOMs: 3000, MaxMillicores: 3000,
		Tables: []*hints.Table{tab},
	}
}

// chainBundle builds a bundle with n tables (one per chain suffix).
func chainBundle(t *testing.T, wf string, n int) *hints.Bundle {
	t.Helper()
	tabs := make([]*hints.Table, n)
	for i := range tabs {
		tab, err := hints.Condense(&hints.RawTable{Suffix: i, Weight: 1, Hints: []hints.Hint{
			{BudgetMs: 2000, HeadMillicores: 1000, HeadPercentile: 99},
		}})
		if err != nil {
			t.Fatal(err)
		}
		tabs[i] = tab
	}
	return &hints.Bundle{
		Workflow: wf, Batch: 1, Weight: 1, SLOMs: 3000, MaxMillicores: 3000,
		Tables: tabs,
	}
}

func validFile(t *testing.T) *File {
	t.Helper()
	return &File{
		Version: 1,
		Tenants: map[string]*Tenant{
			"acme": {
				APIKey: "key-acme",
				Quota:  &Quota{RatePerSec: 100, Burst: 10},
				Workflows: map[string]*Entry{
					"ia": {Bundle: testBundle(t, "ia", 1100)},
				},
			},
			"globex": {
				APIKey: "key-globex",
				Workflows: map[string]*Entry{
					"va": {Bundle: testBundle(t, "va", 2200)},
				},
			},
		},
	}
}

func TestParseRoundTrip(t *testing.T) {
	f := validFile(t)
	data, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Tenants) != 2 || back.Version != 1 {
		t.Fatalf("round trip lost structure: %+v", back)
	}
	if back.Tenants["acme"].Quota.Burst != 10 {
		t.Fatalf("quota lost: %+v", back.Tenants["acme"].Quota)
	}
	if back.Tenants["globex"].Workflows["va"].Bundle.Tables[0].Ranges[0].Millicores != 2200 {
		t.Fatal("bundle content lost in round trip")
	}
	if d := Diff(f, back); len(d) != 0 {
		t.Fatalf("round trip diff = %v", d)
	}
}

// TestValidateRejects is the table-driven sweep over every validation
// rule: each mutation must be rejected with a diagnostic naming the
// offending piece.
func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(t *testing.T, f *File)
		wantErr string
	}{
		{"no tenants", func(t *testing.T, f *File) { f.Tenants = nil }, "no tenants"},
		{"empty tenant name", func(t *testing.T, f *File) { f.Tenants[""] = f.Tenants["acme"]; delete(f.Tenants, "acme") }, "empty name"},
		{"nil tenant", func(t *testing.T, f *File) { f.Tenants["acme"] = nil }, "no declaration"},
		{"duplicate api keys", func(t *testing.T, f *File) { f.Tenants["globex"].APIKey = "key-acme" }, "share an api_key"},
		{"two open tenants", func(t *testing.T, f *File) { f.Tenants["acme"].APIKey = ""; f.Tenants["globex"].APIKey = "" }, "open tenant"},
		{"admin key collision", func(t *testing.T, f *File) { f.AdminKey = "key-acme" }, "admin key"},
		{"zero quota rate", func(t *testing.T, f *File) { f.Tenants["acme"].Quota.RatePerSec = 0 }, "rate_per_sec"},
		{"zero quota burst", func(t *testing.T, f *File) { f.Tenants["acme"].Quota.Burst = 0 }, "burst"},
		{"no workflows", func(t *testing.T, f *File) { f.Tenants["acme"].Workflows = nil }, "no workflows"},
		{"empty workflow name", func(t *testing.T, f *File) {
			f.Tenants["acme"].Workflows[""] = f.Tenants["acme"].Workflows["ia"]
			delete(f.Tenants["acme"].Workflows, "ia")
		}, "empty name"},
		{"missing bundle", func(t *testing.T, f *File) { f.Tenants["acme"].Workflows["ia"].Bundle = nil }, "no bundle"},
		{"invalid bundle", func(t *testing.T, f *File) { f.Tenants["acme"].Workflows["ia"].Bundle.SLOMs = 0 }, "SLO"},
		{"bundle name mismatch", func(t *testing.T, f *File) {
			f.Tenants["acme"].Workflows["ia"].Bundle = testBundle(t, "other", 1100)
		}, "bundle is for workflow"},
		{"invalid workflow spec", func(t *testing.T, f *File) {
			f.Tenants["acme"].Workflows["ia"].Workflow = &workflow.Spec{Name: "ia", SLOMillis: 3000}
		}, "at least one node"},
		{"group count mismatch", func(t *testing.T, f *File) {
			f.Tenants["acme"].Workflows["ia"].Workflow = &workflow.Spec{
				Name: "ia", SLOMillis: 3000,
				Nodes: []workflow.Node{{Name: "od", Function: "od"}, {Name: "qa", Function: "qa"}},
				Edges: [][2]string{{"od", "qa"}},
			}
		}, "decision groups"},
		{"slo mismatch", func(t *testing.T, f *File) {
			f.Tenants["acme"].Workflows["ia"].Workflow = &workflow.Spec{
				Name: "ia", SLOMillis: 9999,
				Nodes: []workflow.Node{{Name: "od", Function: "od"}},
			}
		}, "disagrees"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := validFile(t)
			tc.mutate(t, f)
			err := f.Validate()
			if err == nil {
				t.Fatalf("mutation %q validated", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestValidateAcceptsMatchingWorkflowSpec: a declared workflow whose
// decision groups line up with the bundle's tables passes.
func TestValidateAcceptsMatchingWorkflowSpec(t *testing.T) {
	f := validFile(t)
	f.Tenants["acme"].Workflows["ia"].Workflow = &workflow.Spec{
		Name: "ia", SLOMillis: 3000,
		Nodes: []workflow.Node{{Name: "od", Function: "od"}},
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	// A 3-node chain needs 3 tables.
	f.Tenants["acme"].Workflows["ia"].Bundle = chainBundle(t, "ia", 3)
	f.Tenants["acme"].Workflows["ia"].Workflow = &workflow.Spec{
		Name: "ia", SLOMillis: 3000,
		Nodes: []workflow.Node{{Name: "od", Function: "od"}, {Name: "qa", Function: "qa"}, {Name: "ts", Function: "ts"}},
		Edges: [][2]string{{"od", "qa"}, {"qa", "ts"}},
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseRejectsBadJSON(t *testing.T) {
	if _, err := Parse([]byte("{not json")); err == nil || !strings.Contains(err.Error(), "invalid JSON") {
		t.Fatalf("bad JSON error = %v", err)
	}
}

func TestDiff(t *testing.T) {
	old := validFile(t)
	next := validFile(t)
	// Tenant-level: rotate acme's key, change its quota; remove globex,
	// add initech; workflow-level: add a workflow to acme and change
	// nothing else.
	next.Tenants["acme"].APIKey = "key-acme-2"
	next.Tenants["acme"].Quota = &Quota{RatePerSec: 5, Burst: 2}
	next.Tenants["acme"].Workflows["va"] = &Entry{Bundle: testBundle(t, "va", 1105)}
	delete(next.Tenants, "globex")
	next.Tenants["initech"] = &Tenant{
		APIKey:    "key-initech",
		Workflows: map[string]*Entry{"ia": {Bundle: testBundle(t, "ia", 3300)}},
	}
	got := Diff(old, next)
	want := []Change{
		{Tenant: "acme", Kind: TenantKeyRotate},
		{Tenant: "acme", Kind: QuotaChanged},
		{Tenant: "acme", Workflow: "va", Kind: WorkflowAdded},
		{Tenant: "globex", Kind: TenantRemoved},
		{Tenant: "initech", Kind: TenantAdded},
	}
	if len(got) != len(want) {
		t.Fatalf("diff = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("diff[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// A changed bundle is its own kind.
	next2 := validFile(t)
	next2.Tenants["acme"].Workflows["ia"].Bundle = testBundle(t, "ia", 1101)
	got2 := Diff(old, next2)
	if len(got2) != 1 || got2[0] != (Change{Tenant: "acme", Workflow: "ia", Kind: BundleChanged}) {
		t.Fatalf("bundle diff = %v", got2)
	}
	if got2[0].String() != "acme/ia: bundle changed" {
		t.Fatalf("change string = %q", got2[0].String())
	}
	// Identical catalogs: empty diff.
	if d := Diff(old, validFile(t)); len(d) != 0 {
		t.Fatalf("identical catalogs diff = %v", d)
	}
}

// TestDynamicSpecInCatalog: a catalog entry can declare a dynamic
// workflow (here a bounded map step); the annotation survives the
// catalog's JSON round trip and still cross-validates against the
// bundle's tables.
func TestDynamicSpecInCatalog(t *testing.T) {
	f := validFile(t)
	f.Tenants["acme"].Workflows["ia"].Workflow = &workflow.Spec{
		Name: "ia", SLOMillis: 3000,
		Nodes:   []workflow.Node{{Name: "od", Function: "od"}},
		Dynamic: []workflow.DynamicSpec{{Step: "od", Map: &workflow.MapSpec{MaxWidth: 4, Decay: 0.5}}},
	}
	data, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	spec := back.Tenants["acme"].Workflows["ia"].Workflow
	if spec == nil || len(spec.Dynamic) != 1 || spec.Dynamic[0].Map == nil || spec.Dynamic[0].Map.MaxWidth != 4 {
		t.Fatalf("dynamic annotation lost: %+v", spec)
	}
	w, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !w.IsDynamic() || w.MapWidth("od") != 4 {
		t.Fatalf("rebuilt workflow lost dynamics: dynamic=%v width=%d", w.IsDynamic(), w.MapWidth("od"))
	}
}
