// Package catalog is janusd's declarative multi-tenant control plane: a
// registry file of {tenant -> workflows, hint bundles, quotas, API keys}
// that is parsed and validated as a whole, diffed against the running
// state, and swapped in atomically while decide traffic is in flight.
//
// The split mirrors the GoCodeAlone workflow-lifecycle blueprint: the
// File types are the wire form a platform operator edits and pushes (the
// "single YAML file" of the lifecycle doc, JSON here); the Registry in
// registry.go is the runtime that serves lookups off one atomic pointer.
// Changing what the control plane serves — adding a tenant, rotating a
// bundle, tightening a quota — is a catalog edit plus a reload, never a
// recompile.
package catalog

import (
	"encoding/json"
	"fmt"
	"sort"

	"janus/internal/hints"
	"janus/internal/workflow"
)

// File is the top-level declarative catalog: everything janusd serves,
// for every tenant, in one document. A File validates as a whole — a
// reload either installs all of it or none of it.
type File struct {
	// Version is an operator-facing revision marker, echoed in reload
	// summaries and diffs. The control plane does not interpret it
	// beyond reporting; zero is fine.
	Version int `json:"version,omitempty"`
	// AdminKey, when set, gates the catalog endpoints (GET/PUT
	// /v1/catalog): pushes must present it. Empty leaves the catalog
	// surface open (single-operator deployments, tests).
	AdminKey string `json:"admin_key,omitempty"`
	// Tenants maps tenant name to its declaration.
	Tenants map[string]*Tenant `json:"tenants"`
}

// Tenant declares one tenant: its authentication key, its admission
// quota, and the workflows it may decide against.
type Tenant struct {
	// APIKey authenticates the tenant's requests (Authorization: Bearer
	// or X-API-Key). Keys must be unique across the catalog. An empty
	// key declares an open tenant — requests with no credentials resolve
	// to it; at most one open tenant may exist.
	APIKey string `json:"api_key,omitempty"`
	// Quota bounds the tenant's decide rate. Nil means unlimited.
	Quota *Quota `json:"quota,omitempty"`
	// Workflows maps workflow name to its entry. Every entry's bundle
	// must carry the same workflow name as its map key.
	Workflows map[string]*Entry `json:"workflows"`
}

// Quota is a token-bucket admission limit on /v1/decide.
type Quota struct {
	// RatePerSec is the sustained refill rate. Must be positive.
	RatePerSec float64 `json:"rate_per_sec"`
	// Burst is the bucket depth — how many decides may land back to
	// back after an idle period. Must be at least 1.
	Burst int `json:"burst"`
}

// Entry is one deployable workflow under a tenant: the condensed hints
// bundle the adapter serves, optionally paired with the declarative
// workflow definition it was synthesized for (so the control plane can
// cross-validate table coverage against the DAG's decision groups).
type Entry struct {
	// Workflow is the optional declarative DAG definition. When present
	// it must validate and its decision-group count must equal the
	// bundle's table count.
	Workflow *workflow.Spec `json:"workflow,omitempty"`
	// Bundle is the condensed hints bundle. Required.
	Bundle *hints.Bundle `json:"bundle"`
}

// Parse decodes and fully validates a catalog file. Nothing about a
// parsed catalog is provisional: every bundle, quota, key, and workflow
// spec has been checked, so a caller that swaps it in cannot discover an
// invalid entry later.
func Parse(data []byte) (*File, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("catalog: invalid JSON: %w", err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// Validate checks the whole catalog: tenant and workflow naming, API-key
// uniqueness (admin key included), quota bounds, bundle validity, and —
// when an entry declares its workflow — that the bundle's tables cover
// exactly the workflow's decision groups and agree on the SLO.
func (f *File) Validate() error {
	if len(f.Tenants) == 0 {
		return fmt.Errorf("catalog: no tenants declared")
	}
	keys := map[string]string{} // api key -> tenant that owns it
	open := ""
	for _, name := range sortedKeys(f.Tenants) {
		t := f.Tenants[name]
		if name == "" {
			return fmt.Errorf("catalog: tenant with empty name")
		}
		if t == nil {
			return fmt.Errorf("catalog: tenant %q has no declaration", name)
		}
		if t.APIKey == "" {
			if open != "" {
				return fmt.Errorf("catalog: tenants %q and %q both declare no api_key; at most one open tenant is allowed", open, name)
			}
			open = name
		} else {
			if prev, dup := keys[t.APIKey]; dup {
				return fmt.Errorf("catalog: tenants %q and %q share an api_key", prev, name)
			}
			if f.AdminKey != "" && t.APIKey == f.AdminKey {
				return fmt.Errorf("catalog: tenant %q api_key collides with the admin key", name)
			}
			keys[t.APIKey] = name
		}
		if t.Quota != nil {
			if t.Quota.RatePerSec <= 0 {
				return fmt.Errorf("catalog: tenant %q quota rate_per_sec must be positive, got %v", name, t.Quota.RatePerSec)
			}
			if t.Quota.Burst < 1 {
				return fmt.Errorf("catalog: tenant %q quota burst must be at least 1, got %d", name, t.Quota.Burst)
			}
		}
		if len(t.Workflows) == 0 {
			return fmt.Errorf("catalog: tenant %q declares no workflows", name)
		}
		for _, wf := range sortedKeys(t.Workflows) {
			e := t.Workflows[wf]
			if err := validateEntry(name, wf, e); err != nil {
				return err
			}
		}
	}
	return nil
}

func validateEntry(tenant, wf string, e *Entry) error {
	if wf == "" {
		return fmt.Errorf("catalog: tenant %q has a workflow with an empty name", tenant)
	}
	if e == nil || e.Bundle == nil {
		return fmt.Errorf("catalog: tenant %q workflow %q has no bundle", tenant, wf)
	}
	if err := e.Bundle.Validate(); err != nil {
		return fmt.Errorf("catalog: tenant %q workflow %q: %w", tenant, wf, err)
	}
	if e.Bundle.Workflow != wf {
		return fmt.Errorf("catalog: tenant %q workflow %q: bundle is for workflow %q", tenant, wf, e.Bundle.Workflow)
	}
	if e.Workflow != nil {
		w, err := e.Workflow.Build()
		if err != nil {
			return fmt.Errorf("catalog: tenant %q workflow %q: %w", tenant, wf, err)
		}
		if groups := len(w.DecisionGroups()); groups != e.Bundle.Stages() {
			return fmt.Errorf("catalog: tenant %q workflow %q: bundle has %d tables for %d decision groups",
				tenant, wf, e.Bundle.Stages(), groups)
		}
		if w.SLO().Milliseconds() != int64(e.Bundle.SLOMs) {
			return fmt.Errorf("catalog: tenant %q workflow %q: bundle SLO %dms disagrees with workflow SLO %dms",
				tenant, wf, e.Bundle.SLOMs, w.SLO().Milliseconds())
		}
	}
	return nil
}

// Marshal encodes a validated catalog.
func (f *File) Marshal() ([]byte, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(f, "", "  ")
}

// ChangeKind classifies one diff entry.
type ChangeKind string

// Diff change kinds.
const (
	TenantAdded     ChangeKind = "tenant added"
	TenantRemoved   ChangeKind = "tenant removed"
	TenantKeyRotate ChangeKind = "api key rotated"
	QuotaChanged    ChangeKind = "quota changed"
	WorkflowAdded   ChangeKind = "workflow added"
	WorkflowRemoved ChangeKind = "workflow removed"
	BundleChanged   ChangeKind = "bundle changed"
)

// Change is one difference between two catalogs.
type Change struct {
	Tenant   string
	Workflow string // empty for tenant-level changes
	Kind     ChangeKind
}

// String renders the change as one diagnostic line.
func (c Change) String() string {
	if c.Workflow == "" {
		return fmt.Sprintf("%s: %s", c.Tenant, c.Kind)
	}
	return fmt.Sprintf("%s/%s: %s", c.Tenant, c.Workflow, c.Kind)
}

// Diff reports the changes that turning old into new would apply, in a
// deterministic order (tenants sorted, tenant-level changes before
// workflow-level ones). It is what `janusctl catalog diff` prints and
// what the registry's swap logs.
func Diff(old, new *File) []Change {
	var out []Change
	names := map[string]bool{}
	for n := range old.Tenants {
		names[n] = true
	}
	for n := range new.Tenants {
		names[n] = true
	}
	for _, name := range sortedKeys(names) {
		ot, nt := old.Tenants[name], new.Tenants[name]
		switch {
		case ot == nil:
			out = append(out, Change{Tenant: name, Kind: TenantAdded})
			continue
		case nt == nil:
			out = append(out, Change{Tenant: name, Kind: TenantRemoved})
			continue
		}
		if ot.APIKey != nt.APIKey {
			out = append(out, Change{Tenant: name, Kind: TenantKeyRotate})
		}
		if !quotaEqual(ot.Quota, nt.Quota) {
			out = append(out, Change{Tenant: name, Kind: QuotaChanged})
		}
		wfs := map[string]bool{}
		for w := range ot.Workflows {
			wfs[w] = true
		}
		for w := range nt.Workflows {
			wfs[w] = true
		}
		for _, wf := range sortedKeys(wfs) {
			oe, ne := ot.Workflows[wf], nt.Workflows[wf]
			switch {
			case oe == nil:
				out = append(out, Change{Tenant: name, Workflow: wf, Kind: WorkflowAdded})
			case ne == nil:
				out = append(out, Change{Tenant: name, Workflow: wf, Kind: WorkflowRemoved})
			case !BundleEqual(oe.Bundle, ne.Bundle):
				out = append(out, Change{Tenant: name, Workflow: wf, Kind: BundleChanged})
			}
		}
	}
	return out
}

// BundleEqual reports whether two bundles serialize identically — the
// equality the registry's carry-over logic uses to decide whether a
// reload must re-epoch an adapter.
func BundleEqual(a, b *hints.Bundle) bool {
	da, errA := json.Marshal(a)
	db, errB := json.Marshal(b)
	return errA == nil && errB == nil && string(da) == string(db)
}

func quotaEqual(a, b *Quota) bool {
	if a == nil || b == nil {
		return a == b
	}
	return *a == *b
}

// sortedKeys returns the map's keys sorted, for deterministic
// validation order, diff output, and metrics enumeration.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
