// Package azure synthesizes a production-trace workload with the marginal
// statistics of the Microsoft Azure Functions 2019 dataset the paper's
// motivation study uses (§II-A, Fig 1a):
//
//   - heavy-tailed function popularity (Zipf), with the top-100 functions
//     accounting for roughly 81.6% of all invocations;
//   - per-function execution-time distributions that are strongly skewed
//     (the paper cites P95/P25 gaps up to 80x across workflows and P50-P99
//     gaps up to 100x in production), with popular functions somewhat more
//     regular than the long tail;
//   - per-function SLOs defined at the function's own P99 latency, the
//     sizing convention of ORION/WISEFUSE the paper adopts.
//
// Slack — 1 - latency/SLO — is then computed per invocation. The published
// observations the generator reproduces: more than 60% of invocations have
// slack above 0.6, and only ~20% of popular-function invocations have
// slack below 0.4.
package azure

import (
	"fmt"
	"math"
	"sort"

	"janus/internal/rng"
	"janus/internal/stats"
)

// TraceConfig sizes the synthetic trace.
type TraceConfig struct {
	// Functions is the number of distinct functions (default 500).
	Functions int
	// Invocations is the total invocation count (default 50000).
	Invocations int
	// ZipfS is the popularity exponent (default 1.15, the calibration at
	// which the top-100 of 500 functions carry roughly the 81.6% share of
	// invocations Fig 1a reports; Generate's fallback uses the same value).
	ZipfS float64
	// TopN is the popular-function cutoff (default 100, as in Fig 1a).
	TopN int
	// Seed roots the generator.
	Seed uint64
}

// DefaultTraceConfig mirrors the Fig 1a analysis scale.
func DefaultTraceConfig() TraceConfig {
	return TraceConfig{Functions: 500, Invocations: 50000, ZipfS: 1.15, TopN: 100, Seed: 1}
}

// Invocation is one function execution in the trace.
type Invocation struct {
	// Function is the function's popularity rank (0 = most popular).
	Function int
	// LatencyMs is the execution time.
	LatencyMs float64
	// SLOMs is the function's P99-derived latency objective.
	SLOMs float64
}

// Slack is the invocation's 1 - latency/SLO.
func (iv Invocation) Slack() float64 { return 1 - iv.LatencyMs/iv.SLOMs }

// Trace is a generated invocation log.
type Trace struct {
	Config      TraceConfig
	Invocations []Invocation
	// popularCount counts invocations of the TopN functions.
	popularCount int
}

// Generate builds the synthetic trace.
func Generate(cfg TraceConfig) (*Trace, error) {
	if cfg.Functions <= 0 {
		cfg.Functions = 500
	}
	if cfg.Invocations <= 0 {
		cfg.Invocations = 50000
	}
	if cfg.ZipfS <= 0 {
		cfg.ZipfS = 1.15
	}
	if cfg.TopN <= 0 {
		cfg.TopN = 100
	}
	if cfg.TopN > cfg.Functions {
		return nil, fmt.Errorf("azure: TopN %d exceeds function count %d", cfg.TopN, cfg.Functions)
	}
	root := rng.New(cfg.Seed).Split("azure-trace")

	// Popularity weights: Zipf over ranks.
	weights := make([]float64, cfg.Functions)
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), cfg.ZipfS)
	}

	// Per-function latency shape: median and lognormal sigma. The popular
	// set is bimodal — roughly 40% are production-hardened, regular
	// functions that run close to their P99 SLO, while the rest carry the
	// input-size- and interference-driven variance the paper documents.
	// The long tail is uniformly wild (P50->P99 gaps up to ~100x need
	// sigmas approaching 2).
	medians := make([]float64, cfg.Functions)
	sigmas := make([]float64, cfg.Functions)
	shapes := root.Split("shapes")
	for i := range medians {
		medians[i] = shapes.LogNormalClipped(0, 1.0, 0.05, 40) * 200 // 10ms .. 8s, median 200ms
		switch {
		case i < cfg.TopN && shapes.Float64() < 0.40:
			sigmas[i] = shapes.Uniform(0.22, 0.33) // stable popular
		case i < cfg.TopN:
			sigmas[i] = shapes.Uniform(1.0, 1.9) // variable popular
		default:
			sigmas[i] = shapes.Uniform(0.8, 2.0) // long tail
		}
	}
	// SLO at the function's analytic P99: median * exp(2.326 * sigma).
	slos := make([]float64, cfg.Functions)
	for i := range slos {
		slos[i] = medians[i] * math.Exp(2.326*sigmas[i])
	}

	tr := &Trace{Config: cfg}
	draws := root.Split("invocations")
	for n := 0; n < cfg.Invocations; n++ {
		f := draws.Choice(weights)
		lat := medians[f] * draws.LogNormal(0, sigmas[f])
		if lat > slos[f] {
			// The platform enforces the P99 objective with a timeout-like
			// cap for the rare overruns; slack bottoms out near zero, as in
			// the paper's CDF.
			lat = slos[f]
		}
		tr.Invocations = append(tr.Invocations, Invocation{Function: f, LatencyMs: lat, SLOMs: slos[f]})
		if f < cfg.TopN {
			tr.popularCount++
		}
	}
	return tr, nil
}

// PopularShare reports the fraction of invocations belonging to the TopN
// most popular functions (the paper's dataset: 81.6%).
func (t *Trace) PopularShare() float64 {
	if len(t.Invocations) == 0 {
		return 0
	}
	return float64(t.popularCount) / float64(len(t.Invocations))
}

// SlackSample returns the slack distribution over all invocations, or over
// popular-function invocations only.
func (t *Trace) SlackSample(popularOnly bool) *stats.Sample {
	s := &stats.Sample{}
	for _, iv := range t.Invocations {
		if popularOnly && iv.Function >= t.Config.TopN {
			continue
		}
		s.Add(iv.Slack())
	}
	return s
}

// SlackCDF returns CDF points of the slack distribution at the given grid
// of slack values (Fig 1a's x axis).
func (t *Trace) SlackCDF(popularOnly bool, grid []float64) []stats.Point {
	s := t.SlackSample(popularOnly)
	out := make([]stats.Point, len(grid))
	for i, x := range grid {
		out[i] = stats.Point{X: x, F: s.FractionAtOrBelow(x)}
	}
	return out
}

// FunctionRanksByInvocations returns function ranks sorted by observed
// invocation counts, most invoked first (sanity check for the Zipf shape).
func (t *Trace) FunctionRanksByInvocations() []int {
	counts := make(map[int]int)
	for _, iv := range t.Invocations {
		counts[iv.Function]++
	}
	ranks := make([]int, 0, len(counts))
	for f := range counts {
		ranks = append(ranks, f)
	}
	sort.Slice(ranks, func(i, j int) bool {
		if counts[ranks[i]] != counts[ranks[j]] {
			return counts[ranks[i]] > counts[ranks[j]]
		}
		return ranks[i] < ranks[j]
	})
	return ranks
}
