package azure

import (
	"testing"
)

func generate(t *testing.T) *Trace {
	t.Helper()
	tr, err := Generate(DefaultTraceConfig())
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTraceShape(t *testing.T) {
	tr := generate(t)
	if len(tr.Invocations) != 50000 {
		t.Fatalf("%d invocations", len(tr.Invocations))
	}
	for i, iv := range tr.Invocations {
		if iv.LatencyMs <= 0 || iv.SLOMs <= 0 {
			t.Fatalf("invocation %d has non-positive times: %+v", i, iv)
		}
		if iv.LatencyMs > iv.SLOMs {
			t.Fatalf("invocation %d exceeds its SLO cap", i)
		}
		if s := iv.Slack(); s < 0 || s > 1 {
			t.Fatalf("invocation %d slack %v outside [0, 1]", i, s)
		}
	}
}

func TestPopularShareNearPaper(t *testing.T) {
	tr := generate(t)
	share := tr.PopularShare()
	// The paper's dataset: top-100 functions = 81.6% of invocations.
	if share < 0.72 || share > 0.92 {
		t.Fatalf("popular share = %.3f, want near 0.816", share)
	}
}

func TestSlackDistributionMatchesFig1a(t *testing.T) {
	tr := generate(t)
	all := tr.SlackSample(false)
	// ">60% of invocations have slacks over 60%".
	aboveSixty := 1 - all.FractionAtOrBelow(0.6)
	if aboveSixty < 0.6 {
		t.Fatalf("fraction with slack > 0.6 = %.3f, want > 0.6", aboveSixty)
	}
	// "only 20% of the invocations of the popular functions have slacks
	// less than 40%".
	popular := tr.SlackSample(true)
	belowForty := popular.FractionAtOrBelow(0.4)
	if belowForty < 0.08 || belowForty > 0.35 {
		t.Fatalf("popular fraction with slack < 0.4 = %.3f, want near 0.2", belowForty)
	}
	// Popular functions are more regular: their median slack is lower than
	// the long tail's (they sit closer to their P99 SLO).
	if popular.Percentile(50) >= all.Percentile(50) {
		t.Fatalf("popular median slack %.3f not below overall %.3f",
			popular.Percentile(50), all.Percentile(50))
	}
}

func TestSlackCDFMonotone(t *testing.T) {
	tr := generate(t)
	grid := []float64{0, 0.2, 0.4, 0.6, 0.8, 1}
	pts := tr.SlackCDF(false, grid)
	if len(pts) != len(grid) {
		t.Fatalf("%d points", len(pts))
	}
	prev := -1.0
	for _, p := range pts {
		if p.F < prev {
			t.Fatal("CDF not monotone")
		}
		prev = p.F
	}
	if pts[len(pts)-1].F != 1 {
		t.Fatalf("CDF at slack 1 = %v, want 1", pts[len(pts)-1].F)
	}
}

func TestZipfOrdering(t *testing.T) {
	tr := generate(t)
	ranks := tr.FunctionRanksByInvocations()
	// The most-invoked function should be among the lowest-rank (most
	// popular by construction) functions.
	if ranks[0] > 5 {
		t.Fatalf("most invoked function has construction rank %d", ranks[0])
	}
}

func TestDeterminism(t *testing.T) {
	a := generate(t)
	b := generate(t)
	for i := range a.Invocations {
		if a.Invocations[i] != b.Invocations[i] {
			t.Fatal("traces differ for identical seeds")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.TopN = 1000
	if _, err := Generate(cfg); err == nil {
		t.Fatal("TopN > Functions accepted")
	}
	// Zero values fall back to defaults.
	tr, err := Generate(TraceConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Invocations) != 50000 || tr.Config.TopN != 100 {
		t.Fatal("defaults not applied")
	}
}
