package adapter

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"janus/internal/hints"
)

func bundle(t *testing.T) *hints.Bundle {
	t.Helper()
	t0, err := hints.Condense(&hints.RawTable{Suffix: 0, Weight: 1, Hints: []hints.Hint{
		{BudgetMs: 2000, HeadMillicores: 3000, HeadPercentile: 99},
		{BudgetMs: 2001, HeadMillicores: 2000, HeadPercentile: 90},
		{BudgetMs: 2002, HeadMillicores: 2000, HeadPercentile: 85},
		{BudgetMs: 2003, HeadMillicores: 1000, HeadPercentile: 80},
	}})
	if err != nil {
		t.Fatal(err)
	}
	t1, err := hints.Condense(&hints.RawTable{Suffix: 1, Weight: 1, Hints: []hints.Hint{
		{BudgetMs: 1000, HeadMillicores: 1500, HeadPercentile: 99},
	}})
	if err != nil {
		t.Fatal(err)
	}
	b := &hints.Bundle{
		Workflow: "w", Batch: 1, Weight: 1, SLOMs: 3000, MaxMillicores: 3000,
		Tables: []*hints.Table{t0, t1},
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil bundle accepted")
	}
	b := bundle(t)
	if _, err := New(b, WithMissThreshold(0)); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, err := New(b, WithMissThreshold(1)); err == nil {
		t.Error("threshold 1 accepted")
	}
	bad := bundle(t)
	bad.Workflow = ""
	if _, err := New(bad); err == nil {
		t.Error("invalid bundle accepted")
	}
}

func TestDecideHitAndMiss(t *testing.T) {
	a, err := New(bundle(t))
	if err != nil {
		t.Fatal(err)
	}
	// Hit: exact range.
	d, err := a.Decide(0, 2001*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Hit || d.Millicores != 2000 || d.Percentile != 85 {
		t.Fatalf("Decide = %+v", d)
	}
	// Above coverage: cheapest plan.
	d, err = a.Decide(0, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Hit || d.Millicores != 1000 {
		t.Fatalf("above-coverage Decide = %+v", d)
	}
	// Below coverage: escalate to the ceiling.
	d, err = a.Decide(0, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if d.Hit || d.Millicores != 3000 || d.Percentile != 99 {
		t.Fatalf("miss Decide = %+v", d)
	}
	hits, misses, rate := a.Stats()
	if hits != 2 || misses != 1 || rate != 1.0/3 {
		t.Fatalf("stats = %d, %d, %v", hits, misses, rate)
	}
}

func TestDecideSuffixRange(t *testing.T) {
	a, err := New(bundle(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Decide(-1, time.Second); err == nil {
		t.Error("negative suffix accepted")
	}
	if _, err := a.Decide(2, time.Second); err == nil {
		t.Error("out-of-range suffix accepted")
	}
}

func TestRegenerationCallbackFiresOnceAboveThreshold(t *testing.T) {
	fired := make(chan float64, 10)
	a, err := New(bundle(t),
		WithMissThreshold(0.1),
		WithMinDecisions(10),
		WithRegenerateCallback(func(rate float64) { fired <- rate }))
	if err != nil {
		t.Fatal(err)
	}
	// 9 hits then misses: rate crosses 10% at the 10th+ decision.
	for i := 0; i < 9; i++ {
		if _, err := a.Decide(0, 3*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if _, err := a.Decide(0, time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case rate := <-fired:
		if rate <= 0.1 {
			t.Fatalf("callback fired at rate %v", rate)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("callback never fired")
	}
	// No second notification without Replace.
	for i := 0; i < 5; i++ {
		if _, err := a.Decide(0, time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-fired:
		t.Fatal("callback fired twice")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestCallbackRespectsMinDecisions(t *testing.T) {
	fired := make(chan float64, 1)
	a, err := New(bundle(t),
		WithMissThreshold(0.01),
		WithMinDecisions(100),
		WithRegenerateCallback(func(rate float64) { fired <- rate }))
	if err != nil {
		t.Fatal(err)
	}
	// A lone early miss (100% rate) must not trigger with < 100 decisions.
	if _, err := a.Decide(0, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	select {
	case <-fired:
		t.Fatal("callback fired before MinDecisions")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestReplaceSwapsBundleAndRearms(t *testing.T) {
	fired := make(chan float64, 10)
	a, err := New(bundle(t),
		WithMissThreshold(0.1),
		WithMinDecisions(1),
		WithRegenerateCallback(func(rate float64) { fired <- rate }))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Decide(0, time.Millisecond); err != nil { // miss -> notify
		t.Fatal(err)
	}
	<-fired
	if err := a.Replace(bundle(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Decide(0, time.Millisecond); err != nil { // miss again -> notify again
		t.Fatal(err)
	}
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("callback not re-armed after Replace")
	}
	if err := a.Replace(nil); err == nil {
		t.Fatal("Replace(nil) accepted")
	}
}

// TestReplaceDoesNotRefireFromPreSwapMisses is the regression test for the
// spurious-regeneration bug: Replace used to re-arm the notification while
// keeping the cumulative counters that drove the trigger, so the very
// first decision after a bundle swap — even a hit — re-fired onRegenerate
// from pre-swap misses, condemning the freshly regenerated bundle before
// it served a single budget. The trigger must watch a per-bundle-epoch
// window: post-swap hits keep it quiet, and only a fresh post-swap miss
// storm may re-fire it.
func TestReplaceDoesNotRefireFromPreSwapMisses(t *testing.T) {
	fired := make(chan float64, 10)
	a, err := New(bundle(t),
		WithMissThreshold(0.1),
		WithMinDecisions(5),
		WithRegenerateCallback(func(rate float64) { fired <- rate }))
	if err != nil {
		t.Fatal(err)
	}
	// Miss storm against the first bundle: fires once.
	for i := 0; i < 20; i++ {
		if _, err := a.Decide(0, time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("callback never fired for the pre-swap miss storm")
	}
	// The regeneration completes: a fresh bundle swaps in. Cumulative
	// stats keep the history; the trigger window resets.
	if err := a.Replace(bundle(t)); err != nil {
		t.Fatal(err)
	}
	hits, misses, _ := a.Stats()
	if misses != 20 {
		t.Fatalf("Stats after Replace = %d hits / %d misses, want cumulative 0/20", hits, misses)
	}
	if eh, em, _ := a.EpochStats(); eh != 0 || em != 0 {
		t.Fatalf("EpochStats after Replace = %d/%d, want a fresh window", eh, em)
	}
	// Post-swap traffic hits the new bundle. The cumulative miss rate is
	// still far above the threshold (20 misses vs a handful of hits) —
	// the buggy adapter re-fires on the first decision here.
	for i := 0; i < 10; i++ {
		if _, err := a.Decide(0, 3*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case rate := <-fired:
		t.Fatalf("callback re-fired from pre-swap misses (rate %v) despite a healthy new bundle", rate)
	case <-time.After(50 * time.Millisecond):
	}
	// A genuine post-swap miss storm must still be able to re-fire.
	for i := 0; i < 20; i++ {
		if _, err := a.Decide(0, time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("callback never re-fired for a post-swap miss storm")
	}
	hits, misses, _ = a.Stats()
	if hits != 10 || misses != 40 {
		t.Fatalf("cumulative Stats = %d hits / %d misses, want 10/40", hits, misses)
	}
}

// TestStaleEpochDecisionsExcludedFromWindow covers the concurrent
// deploy-while-deciding corner of the same bug: a Decide that loaded the
// old bundle can have Replace land between its lookup and its recording.
// Its outcome carries the old epoch and must not enter the new bundle's
// regeneration window (it still counts in the cumulative Stats).
func TestStaleEpochDecisionsExcludedFromWindow(t *testing.T) {
	fired := make(chan float64, 10)
	a, err := New(bundle(t),
		WithMissThreshold(0.1),
		WithMinDecisions(3),
		WithRegenerateCallback(func(rate float64) { fired <- rate }))
	if err != nil {
		t.Fatal(err)
	}
	stale := a.bundle.Load() // what an in-flight Decide snapshotted
	if err := a.Replace(bundle(t)); err != nil {
		t.Fatal(err)
	}
	// The in-flight decisions complete after the swap: all misses, all
	// attributed to the pre-swap bundle.
	for i := 0; i < 5; i++ {
		a.record(false, stale.epoch, 100*time.Millisecond)
	}
	if eh, em, _ := a.EpochStats(); eh != 0 || em != 0 {
		t.Fatalf("stale-epoch decisions leaked into the new window: %d/%d", eh, em)
	}
	if _, misses, _ := a.Stats(); misses != 5 {
		t.Fatalf("stale-epoch decisions lost from cumulative stats: %d misses", misses)
	}
	select {
	case rate := <-fired:
		t.Fatalf("stale-epoch misses re-fired the callback (rate %v)", rate)
	case <-time.After(50 * time.Millisecond):
	}
	// Fresh misses against the new bundle still trigger normally.
	for i := 0; i < 5; i++ {
		if _, err := a.Decide(0, time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("current-epoch miss storm never fired")
	}
}

func TestConcurrentDecides(t *testing.T) {
	a, err := New(bundle(t))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if _, err := a.Decide(0, 2500*time.Millisecond); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	hits, misses, _ := a.Stats()
	if hits+misses != 8000 {
		t.Fatalf("decision count = %d, want 8000", hits+misses)
	}
}

func TestAllocatorIntegration(t *testing.T) {
	a, err := New(bundle(t))
	if err != nil {
		t.Fatal(err)
	}
	al := &Allocator{Adapter: a, System: "janus"}
	if al.Name() != "janus" {
		t.Fatal("allocator name")
	}
	mc, hit := al.Allocate(nil, 0, 2003*time.Millisecond)
	if mc != 1000 || !hit {
		t.Fatalf("Allocate = %d, %v", mc, hit)
	}
	mc, hit = al.Allocate(nil, 1, time.Millisecond)
	if mc != 3000 || hit {
		t.Fatalf("miss Allocate = %d, %v", mc, hit)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range stage did not panic")
		}
	}()
	al.Allocate(nil, 9, time.Second)
}

// TestReplaceWhileDeciding is the regression test for the bundle-swap data
// race: Decide and Bundle must not read a.bundle unsynchronized while
// Replace swaps it — the situation whenever janusd redeploys a regenerated
// bundle mid-traffic.
func TestReplaceWhileDeciding(t *testing.T) {
	a, err := New(bundle(t))
	if err != nil {
		t.Fatal(err)
	}
	// Two pre-built bundles swapped in a tight loop: the redeploy pressure
	// janusd's regeneration applies, condensed in time so the race window
	// (an unsynchronized bundle read between two of a reader's lock
	// acquisitions) is hit reliably.
	replacements := [2]*hints.Bundle{bundle(t), bundle(t)}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if _, err := a.Decide(0, 2500*time.Millisecond); err != nil {
					t.Error(err)
					return
				}
				if a.Bundle() == nil {
					t.Error("nil bundle observed")
					return
				}
			}
		}()
	}
	for i := 0; i < 300000; i++ {
		if err := a.Replace(replacements[i%2]); err != nil {
			t.Error(err)
			break
		}
	}
	stop.Store(true)
	wg.Wait()
}

func TestEpochBudgetRangeTracksAndResets(t *testing.T) {
	a, err := New(bundle(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := a.EpochBudgetRange(); ok {
		t.Fatal("budget range reported before any decision")
	}
	budgets := []time.Duration{2500 * time.Millisecond, 800 * time.Millisecond, 4 * time.Second, -50 * time.Millisecond}
	for _, b := range budgets {
		if _, err := a.Decide(0, b); err != nil {
			t.Fatal(err)
		}
	}
	lo, hi, ok := a.EpochBudgetRange()
	if !ok || lo != -50*time.Millisecond || hi != 4*time.Second {
		t.Fatalf("EpochBudgetRange = [%v, %v] ok=%t, want [-50ms, 4s]", lo, hi, ok)
	}
	// Replace opens a fresh observation window: the drifted range the
	// previous bundle saw must not leak into the new bundle's.
	if err := a.Replace(bundle(t)); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := a.EpochBudgetRange(); ok {
		t.Fatal("budget range survived a bundle swap")
	}
	if _, err := a.Decide(0, 3*time.Second); err != nil {
		t.Fatal(err)
	}
	lo, hi, ok = a.EpochBudgetRange()
	if !ok || lo != 3*time.Second || hi != 3*time.Second {
		t.Fatalf("post-swap EpochBudgetRange = [%v, %v] ok=%t", lo, hi, ok)
	}
}

// TestMemoContractMatchesDecide pins the MemoizableAllocator contract the
// platform's memo relies on: AllocEpoch tracks Replace exactly, and
// RecordCached mutates every statistic — lifetime stats, the epoch
// window, the observed budget range, and the regeneration trigger — the
// way an equivalent Decide would.
func TestMemoContractMatchesDecide(t *testing.T) {
	build := func() *Allocator {
		a, err := New(bundle(t), WithMinDecisions(1), WithRegenerateCallback(func(float64) {}))
		if err != nil {
			t.Fatal(err)
		}
		return &Allocator{Adapter: a, System: "janus"}
	}
	decided, cached := build(), build()
	if decided.AllocEpoch() != 0 || cached.AllocEpoch() != 0 {
		t.Fatal("fresh adapters must start at epoch 0")
	}
	budgets := []time.Duration{
		2003 * time.Millisecond, 2003*time.Millisecond + 400*time.Microsecond,
		time.Millisecond, 500 * time.Millisecond, -20 * time.Millisecond,
	}
	for _, b := range budgets {
		// The cached twin replays every one of decided's outcomes through
		// RecordCached alone; its statistics must land exactly where
		// decided's Decide-driven bookkeeping does.
		_, hit := decided.Allocate(nil, 0, b)
		cached.RecordCached(0, b, cached.AllocEpoch(), hit)
	}
	dh, dm, dr := decided.Stats()
	ch, cm, cr := cached.Stats()
	if dh != ch || dm != cm || dr != cr {
		t.Fatalf("lifetime stats diverged: decide (%d, %d, %v), cached (%d, %d, %v)", dh, dm, dr, ch, cm, cr)
	}
	dh, dm, _ = decided.EpochStats()
	ch, cm, _ = cached.EpochStats()
	if dh != ch || dm != cm {
		t.Fatalf("epoch stats diverged: decide (%d, %d), cached (%d, %d)", dh, dm, ch, cm)
	}
	dlo, dhi, dok := decided.EpochBudgetRange()
	clo, chi, cok := cached.EpochBudgetRange()
	if dlo != clo || dhi != chi || dok != cok {
		t.Fatalf("budget range diverged: decide (%v, %v, %v), cached (%v, %v, %v)", dlo, dhi, dok, clo, chi, cok)
	}
	// Replace advances the epoch the memo keys on, and a stale-epoch
	// RecordCached must stay out of the new epoch window, like a stale
	// in-flight Decide.
	stale := cached.AllocEpoch()
	if err := cached.Replace(bundle(t)); err != nil {
		t.Fatal(err)
	}
	if cached.AllocEpoch() != stale+1 {
		t.Fatalf("AllocEpoch = %d after Replace, want %d", cached.AllocEpoch(), stale+1)
	}
	cached.RecordCached(0, time.Second, stale, true)
	if eh, em, _ := cached.EpochStats(); eh != 0 || em != 0 {
		t.Fatalf("stale RecordCached leaked into new epoch window: (%d, %d)", eh, em)
	}
	if _, _, seen := cached.EpochBudgetRange(); seen {
		t.Fatal("stale RecordCached widened the new epoch's budget range")
	}
}
