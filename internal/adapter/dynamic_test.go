package adapter

import (
	"testing"
	"time"

	"janus/internal/hints"
)

// shapedBundle extends the test bundle with a width-variant table on
// group 1 covering budgets the conservative base misses on.
func shapedBundle(t *testing.T) *hints.Bundle {
	t.Helper()
	b := bundle(t)
	v, err := hints.Condense(&hints.RawTable{Suffix: 1, Weight: 1, Hints: []hints.Hint{
		{BudgetMs: 400, HeadMillicores: 2600, HeadPercentile: 99},
		{BudgetMs: 401, HeadMillicores: 1200, HeadPercentile: 95},
	}})
	if err != nil {
		t.Fatal(err)
	}
	b.Shaped = map[int]map[string]*hints.Table{1: {"w=1": v}}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestDecideShaped(t *testing.T) {
	a, err := New(shapedBundle(t))
	if err != nil {
		t.Fatal(err)
	}
	// A resolved shape with a variant table answers from the variant:
	// 500ms is below the base table's floor (1000ms) but inside w=1's.
	d, err := a.DecideShaped(1, "w=1", 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Hit || d.Millicores != 1200 || d.Percentile != 95 {
		t.Fatalf("shaped decision = %+v", d)
	}
	// An empty shape falls back to the base table, which misses here.
	d, err = a.DecideShaped(1, "", 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if d.Hit || d.Millicores != 3000 {
		t.Fatalf("shapeless decision = %+v", d)
	}
	// An unknown shape key falls back to the base table too.
	d, err = a.DecideShaped(1, "w=7", 1000*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Hit || d.Millicores != 1500 {
		t.Fatalf("unknown-shape decision = %+v", d)
	}
	// A budget below even the variant's floor escalates to the ceiling.
	d, err = a.DecideShaped(1, "w=1", 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if d.Hit || d.Millicores != 3000 {
		t.Fatalf("shaped miss = %+v", d)
	}
	// Shaped decisions feed the same hit/miss accounting as Decide.
	hits, misses, _ := a.Stats()
	if hits != 2 || misses != 2 {
		t.Fatalf("stats after shaped decisions = %d hits, %d misses", hits, misses)
	}
}

func TestDecideShapedStaticBundle(t *testing.T) {
	a, err := New(bundle(t))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := a.DecideShaped(0, "w=3", 2003*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	d, err := a.Decide(0, 2003*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if ds != d {
		t.Fatalf("static bundle: DecideShaped %+v != Decide %+v", ds, d)
	}
	if _, err := a.DecideShaped(9, "", time.Second); err == nil {
		t.Fatal("out-of-range group accepted")
	}
}

func TestAllocateShapedAndShapeBlind(t *testing.T) {
	a, err := New(shapedBundle(t))
	if err != nil {
		t.Fatal(err)
	}
	al := &Allocator{Adapter: a, System: "janus"}
	mc, hit := al.AllocateShaped(nil, 1, "w=1", 500*time.Millisecond)
	if mc != 1200 || !hit {
		t.Fatalf("AllocateShaped = %d, %v", mc, hit)
	}
	// The shape-blind arm withholds the resolved shape: same call, same
	// bundle, worst-case answer — here an escalated miss.
	blind := &Allocator{Adapter: a, System: "janus-blind", ShapeBlind: true}
	mc, hit = blind.AllocateShaped(nil, 1, "w=1", 500*time.Millisecond)
	if mc != 3000 || hit {
		t.Fatalf("shape-blind AllocateShaped = %d, %v", mc, hit)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range group did not panic")
		}
	}()
	al.AllocateShaped(nil, 9, "", time.Second)
}
