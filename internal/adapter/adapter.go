// Package adapter implements Janus's provider-side Adapter (§III-D): the
// online component that, each time a decision group of a workflow becomes
// ready (its predecessor functions all finished), derives the remaining
// time budget, searches the developer's condensed hints table for that
// group's descendant cone, and sizes the group's pods accordingly. For
// chain workflows that is exactly the paper's per-function flow: look up
// the remaining chain suffix, resize the next function.
//
// On a table miss — a budget below anything the synthesizer explored,
// typically caused by unexpected runtime dynamics — the adapter escalates
// the next function to the maximum available resources to protect the SLO,
// and counts the miss. When the observed miss rate crosses a threshold
// (default 1%), it notifies the developer (via a callback here; via a
// message in the paper's deployment) to regenerate hints asynchronously;
// serving continues with sub-optimal escalations meanwhile.
package adapter

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"janus/internal/hints"
	"janus/internal/platform"
)

// DefaultMissThreshold is the paper's regeneration trigger (1%).
const DefaultMissThreshold = 0.01

// Decision is one adaptation outcome.
type Decision struct {
	// Millicores is the allocation for the sub-workflow's head function.
	Millicores int
	// Hit reports whether the hints table covered the budget.
	Hit bool
	// Percentile is the head percentile of the matched hint (99 on miss).
	Percentile int
}

// Adapter serves adaptation decisions for one deployed bundle. It is safe
// for concurrent use, including Replace swapping in a regenerated bundle
// while decide traffic is in flight: the bundle is held behind an atomic
// pointer, so every decision reads one consistent bundle without taking
// the supervisor lock.
// deployed pairs a bundle with its epoch number so a decision's outcome
// can be attributed to the bundle that actually produced it, even when
// Replace lands between the lookup and the recording.
type deployed struct {
	b *hints.Bundle
	// epoch increments on every Replace.
	epoch int64
}

type Adapter struct {
	bundle atomic.Pointer[deployed]

	mu sync.Mutex
	// hits/misses accumulate across the adapter's lifetime (Stats).
	hits   int64
	misses int64
	// epoch is the current bundle's epoch number; epochHits/epochMisses
	// count only decisions made against that bundle. The regeneration
	// trigger reads these: after Replace swaps a regenerated bundle in,
	// pre-swap misses must not be able to re-fire the notification — the
	// new bundle deserves a fresh observation window. Decisions in flight
	// against the old bundle when Replace lands carry the old epoch and
	// are excluded from the new window (they still count in Stats).
	epoch       int64
	epochHits   int64
	epochMisses int64
	// epochBudgetLo/Hi bound the remaining budgets observed against the
	// current bundle — the drifted budget distribution an online
	// regeneration re-synthesizes against. Valid when epochBudgetSeen.
	epochBudgetLo   time.Duration
	epochBudgetHi   time.Duration
	epochBudgetSeen bool

	missThreshold float64
	minDecisions  int64
	onRegenerate  func(missRate float64)
	notified      bool
}

// Option customizes an Adapter.
type Option func(*Adapter)

// WithMissThreshold overrides the regeneration threshold.
func WithMissThreshold(th float64) Option {
	return func(a *Adapter) { a.missThreshold = th }
}

// WithRegenerateCallback installs the developer-notification hook fired
// (once) when the miss rate crosses the threshold. The callback runs on
// its own goroutine: regeneration is asynchronous by design.
func WithRegenerateCallback(fn func(missRate float64)) Option {
	return func(a *Adapter) { a.onRegenerate = fn }
}

// WithMinDecisions sets how many decisions must accumulate before the miss
// rate is trusted (avoids firing on the first lone miss).
func WithMinDecisions(n int64) Option {
	return func(a *Adapter) { a.minDecisions = n }
}

// New validates the bundle and builds an adapter.
func New(b *hints.Bundle, opts ...Option) (*Adapter, error) {
	if b == nil {
		return nil, fmt.Errorf("adapter: nil bundle")
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	a := &Adapter{
		missThreshold: DefaultMissThreshold,
		minDecisions:  100,
	}
	a.bundle.Store(&deployed{b: b})
	for _, o := range opts {
		o(a)
	}
	if a.missThreshold <= 0 || a.missThreshold >= 1 {
		return nil, fmt.Errorf("adapter: miss threshold %v outside (0, 1)", a.missThreshold)
	}
	return a, nil
}

// Bundle returns the deployed hints bundle.
func (a *Adapter) Bundle() *hints.Bundle { return a.bundle.Load().b }

// Decide returns the allocation for decision group `suffix` — the head of
// the sub-workflow formed by its descendant cone — given the remaining
// budget until the SLO deadline.
// The bundle is snapshotted once, so a concurrent Replace cannot tear a
// decision across two bundles; the snapshot's epoch travels with the
// outcome so a decision against a just-replaced bundle cannot leak into
// the new bundle's regeneration window.
func (a *Adapter) Decide(suffix int, remaining time.Duration) (Decision, error) {
	d := a.bundle.Load()
	b := d.b
	if suffix < 0 || suffix >= b.Stages() {
		return Decision{}, fmt.Errorf("adapter: suffix %d out of range [0, %d)", suffix, b.Stages())
	}
	r, ok := b.Tables[suffix].Lookup(remaining)
	a.record(ok, d.epoch, remaining)
	if !ok {
		// Miss: scale to the ceiling to protect the SLO (§III-D).
		return Decision{Millicores: b.MaxMillicores, Hit: false, Percentile: 99}, nil
	}
	return Decision{Millicores: r.Millicores, Hit: true, Percentile: r.Percentile}, nil
}

// DecideShaped is Decide for a dynamic workflow's decision: when the
// serving plane resolved part of the group's shape at the readiness
// instant (the group's map member drew its width), the bundle's variant
// table for that (group, shape) pair answers — synthesized against the
// resolved width instead of the worst case, so tight budgets that would
// miss on the conservative base table still find a plan. With no shape
// resolved, or a bundle carrying no variant for the key (static bundles
// carry none at all), the decision falls back to the base table and is
// exactly Decide.
func (a *Adapter) DecideShaped(group int, shape string, remaining time.Duration) (Decision, error) {
	d := a.bundle.Load()
	b := d.b
	t, ok := b.ShapedTable(group, shape)
	if shape == "" || !ok {
		return a.Decide(group, remaining)
	}
	r, hit := t.Lookup(remaining)
	a.record(hit, d.epoch, remaining)
	if !hit {
		return Decision{Millicores: b.MaxMillicores, Hit: false, Percentile: 99}, nil
	}
	return Decision{Millicores: r.Millicores, Hit: true, Percentile: r.Percentile}, nil
}

// record counts one decision, both cumulatively (Stats) and — when the
// decision was made against the current bundle — in the bundle's epoch
// window. The regeneration trigger fires off the epoch window alone, so a
// freshly swapped-in bundle cannot be condemned by misses the previous
// bundle took, including misses from decisions that were already in
// flight when Replace landed (their stale epoch excludes them). The
// decision's remaining budget widens the epoch's observed budget range.
func (a *Adapter) record(hit bool, epoch int64, remaining time.Duration) {
	a.mu.Lock()
	if hit {
		a.hits++
	} else {
		a.misses++
	}
	if epoch != a.epoch {
		a.mu.Unlock()
		return
	}
	if hit {
		a.epochHits++
	} else {
		a.epochMisses++
	}
	if !a.epochBudgetSeen || remaining < a.epochBudgetLo {
		a.epochBudgetLo = remaining
	}
	if !a.epochBudgetSeen || remaining > a.epochBudgetHi {
		a.epochBudgetHi = remaining
	}
	a.epochBudgetSeen = true
	epochTotal := a.epochHits + a.epochMisses
	shouldNotify := !a.notified &&
		a.onRegenerate != nil &&
		epochTotal >= a.minDecisions &&
		a.epochMissRateLocked() > a.missThreshold
	var rate float64
	if shouldNotify {
		a.notified = true
		rate = a.epochMissRateLocked()
	}
	cb := a.onRegenerate
	a.mu.Unlock()
	if shouldNotify {
		go cb(rate)
	}
}

func (a *Adapter) missRateLocked() float64 {
	total := a.hits + a.misses
	if total == 0 {
		return 0
	}
	return float64(a.misses) / float64(total)
}

func (a *Adapter) epochMissRateLocked() float64 {
	total := a.epochHits + a.epochMisses
	if total == 0 {
		return 0
	}
	return float64(a.epochMisses) / float64(total)
}

// Stats reports cumulative hits, misses, and the miss rate across the
// adapter's lifetime (bundle swaps do not reset these).
func (a *Adapter) Stats() (hits, misses int64, missRate float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.hits, a.misses, a.missRateLocked()
}

// EpochStats reports hits, misses, and the miss rate observed against the
// current bundle only — the window the regeneration trigger watches.
func (a *Adapter) EpochStats() (hits, misses int64, missRate float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.epochHits, a.epochMisses, a.epochMissRateLocked()
}

// EpochBudgetRange reports the smallest and largest remaining budgets
// decided against the current bundle — the drifted budget distribution an
// online regeneration re-synthesizes hints for. ok is false before the
// epoch's first decision. The low bound can be negative: a request past
// its deadline still asks for an allocation.
func (a *Adapter) EpochBudgetRange() (lo, hi time.Duration, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.epochBudgetLo, a.epochBudgetHi, a.epochBudgetSeen
}

// Replace swaps in a regenerated bundle (the asynchronous regeneration
// completing), re-arms the notification, and opens a fresh observation
// epoch: the trigger's window resets so only decisions against the new
// bundle can re-fire it, while the cumulative Stats counters are kept.
func (a *Adapter) Replace(b *hints.Bundle) error {
	if b == nil {
		return fmt.Errorf("adapter: nil bundle")
	}
	if err := b.Validate(); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.epoch++
	a.bundle.Store(&deployed{b: b, epoch: a.epoch})
	a.notified = false
	a.epochHits = 0
	a.epochMisses = 0
	a.epochBudgetSeen = false
	a.epochBudgetLo = 0
	a.epochBudgetHi = 0
	return nil
}

// Allocator adapts an Adapter to the platform's Allocator interface so the
// executor can serve requests under Janus. The display name distinguishes
// Janus variants (the tables differ, the adapter logic does not).
type Allocator struct {
	*Adapter
	System string
	// ShapeBlind discards resolved-shape keys before deciding, forcing
	// every dynamic decision onto the conservative base tables. This is
	// the static worst-case arm of the trigger experiment: same bundle,
	// same budgets, shape information withheld.
	ShapeBlind bool
}

// Name implements platform.Allocator.
func (al *Allocator) Name() string { return al.System }

// Allocate implements platform.Allocator.
func (al *Allocator) Allocate(req *platform.Request, group int, remaining time.Duration) (int, bool) {
	d, err := al.Decide(group, remaining)
	if err != nil {
		// Group indices come from the executor and bundles are validated
		// against the workflow at deployment; a mismatch is a bug.
		panic(err)
	}
	return d.Millicores, d.Hit
}

// AllocateShaped implements platform.ShapeAwareAllocator: a dynamic
// workflow's decision carries the group's resolved-shape key, answered by
// the bundle's variant table when one exists and by the conservative base
// table otherwise.
func (al *Allocator) AllocateShaped(req *platform.Request, group int, shape string, remaining time.Duration) (int, bool) {
	if al.ShapeBlind {
		shape = ""
	}
	d, err := al.DecideShaped(group, shape, remaining)
	if err != nil {
		// Same contract as Allocate: the executor only hands us groups the
		// validated bundle covers.
		panic(err)
	}
	return d.Millicores, d.Hit
}

// AllocEpoch implements platform.MemoizableAllocator: the adapter's
// decisions depend on the remaining budget only through its millisecond
// floor (hints.Table.Lookup truncates to whole milliseconds) and on the
// deployed bundle, which changes exactly when Replace advances the epoch.
func (al *Allocator) AllocEpoch() int64 { return al.bundle.Load().epoch }

// RecordCached implements platform.MemoizableAllocator: a decision served
// from the platform's memo replays the same bookkeeping Decide performs —
// lifetime and epoch hit/miss counters, the epoch's observed budget range
// at the true remaining value, and the regeneration trigger — attributed
// to the epoch the memoized decision was made under, exactly as an
// in-flight decision against a just-replaced bundle would be.
func (al *Allocator) RecordCached(group int, remaining time.Duration, epoch int64, hit bool) {
	al.record(hit, epoch, remaining)
}
