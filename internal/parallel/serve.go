package parallel

import (
	"fmt"
	"time"

	"janus/internal/adapter"
	"janus/internal/platform"
)

// DefaultArrivalRatePerSec is the Poisson workload rate Serve uses when the
// caller does not pick one — the same moderate load the paper-shaped
// experiment suite serves.
const DefaultArrivalRatePerSec = 2

// Invocation is one served series-parallel request.
type Invocation struct {
	// E2E is the end-to-end latency on the serving plane: function
	// execution of the slowest branch per stage, plus the platform costs a
	// real cluster charges — decision overhead, pod specialization or cold
	// start, and queueing for capacity.
	E2E time.Duration
	// Millicores is the total allocation: the sum over every executed
	// branch of its pod's decided size.
	Millicores int
	// Misses counts hints-table misses across stage decisions.
	Misses int
	// ColdStarts counts branches whose pod was created cold (no warm pod).
	ColdStarts int
	// Parked counts branch acquisitions that queued on exhausted capacity.
	Parked int
}

// SLOMet reports whether the invocation met the workflow's SLO.
func (iv Invocation) SLOMet(slo time.Duration) bool { return iv.E2E <= slo }

// ServeConfig parameterizes serving beyond the profile-time inputs.
type ServeConfig struct {
	// N is the request count (required, > 0).
	N int
	// Seed roots the workload's pre-sampled randomness.
	Seed uint64
	// ArrivalRatePerSec is the Poisson arrival rate; 0 means
	// DefaultArrivalRatePerSec, negative means back-to-back arrivals at a
	// fixed small spacing (platform.GenerateWorkload's closed-loop style).
	ArrivalRatePerSec float64
	// StageCorrelation couples runtime conditions across a request's
	// stages (see platform.WorkloadConfig.StageCorrelation).
	StageCorrelation float64
	// Executor overrides the serving plane; nil builds one from
	// platform.DefaultExecutorConfig seeded with Seed. Pass a custom
	// executor to shrink the cluster, disable warm pools, or enable
	// LiveInterference.
	Executor *platform.Executor
}

// ServeTraces executes the series-parallel workflow on the discrete-event
// serving plane under any allocator: every stage decision is made once and
// applied to all branches, each branch independently pays warm-pool
// specialization or a cold start and queues when the cluster is out of
// capacity, and the join waits for the slowest branch. This is the same
// substrate the chain experiments run on — SP serving inherits queueing,
// cold starts, and live co-location interference rather than replaying
// draws in a sequential loop.
func ServeTraces(w *Workflow, alloc platform.Allocator, cfg ProfilerConfig, sc ServeConfig) ([]platform.Trace, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	if alloc == nil {
		return nil, fmt.Errorf("parallel: nil allocator")
	}
	if sc.N <= 0 {
		return nil, fmt.Errorf("parallel: need N > 0 requests")
	}
	rate := sc.ArrivalRatePerSec
	if rate == 0 {
		rate = DefaultArrivalRatePerSec
	}
	dag, err := w.DAG()
	if err != nil {
		return nil, err
	}
	reqs, err := platform.GenerateWorkload(platform.WorkloadConfig{
		Workflow:          dag,
		Functions:         cfg.Functions,
		N:                 sc.N,
		Batch:             cfg.Batch,
		ArrivalRatePerSec: rate,
		Colocation:        cfg.Colocation,
		Interference:      cfg.Interference,
		StageCorrelation:  sc.StageCorrelation,
		Seed:              sc.Seed,
	})
	if err != nil {
		return nil, err
	}
	ex := sc.Executor
	if ex == nil {
		ecfg := platform.DefaultExecutorConfig()
		ecfg.Seed = sc.Seed
		ex, err = platform.NewExecutor(ecfg, cfg.Functions)
		if err != nil {
			return nil, err
		}
	}
	return ex.Run(reqs, alloc)
}

// Serve executes n requests of the series-parallel workflow under the
// adapter's runtime adaptation on the default serving plane: before each
// stage the remaining budget is looked up and every branch of the stage
// runs at the decided allocation.
func Serve(w *Workflow, a *adapter.Adapter, cfg ProfilerConfig, n int, seed uint64) ([]Invocation, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if a == nil {
		return nil, fmt.Errorf("parallel: nil adapter")
	}
	if a.Bundle().Stages() != len(w.Stages) {
		return nil, fmt.Errorf("parallel: bundle covers %d stages, workflow has %d", a.Bundle().Stages(), len(w.Stages))
	}
	traces, err := ServeTraces(w, &adapter.Allocator{Adapter: a, System: "janus"}, cfg, ServeConfig{N: n, Seed: seed})
	if err != nil {
		return nil, err
	}
	return Invocations(traces), nil
}

// Invocations summarizes serving-plane traces as invocations.
func Invocations(traces []platform.Trace) []Invocation {
	out := make([]Invocation, len(traces))
	for i, tr := range traces {
		iv := Invocation{
			E2E:        tr.E2E,
			Millicores: tr.TotalMillicores,
			Misses:     tr.Misses,
			Parked:     tr.Parked,
		}
		for _, st := range tr.Stages {
			if st.Cold {
				iv.ColdStarts++
			}
		}
		out[i] = iv
	}
	return out
}

// MeanMillicores averages total allocations over invocations.
func MeanMillicores(ivs []Invocation) float64 {
	if len(ivs) == 0 {
		return 0
	}
	total := 0.0
	for _, iv := range ivs {
		total += float64(iv.Millicores)
	}
	return total / float64(len(ivs))
}

// ViolationRate reports the fraction of invocations over the SLO.
func ViolationRate(ivs []Invocation, slo time.Duration) float64 {
	if len(ivs) == 0 {
		return 0
	}
	v := 0
	for _, iv := range ivs {
		if !iv.SLOMet(slo) {
			v++
		}
	}
	return float64(v) / float64(len(ivs))
}
