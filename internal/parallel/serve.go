package parallel

import (
	"fmt"
	"time"

	"janus/internal/adapter"
	"janus/internal/perfmodel"
	"janus/internal/rng"
)

// Invocation is one served series-parallel request.
type Invocation struct {
	// E2E is the end-to-end latency (sum over stages of the slowest
	// branch).
	E2E time.Duration
	// Millicores is the total allocation: sum over stages of branches *
	// decided allocation.
	Millicores int
	// Misses counts hints-table misses across stage decisions.
	Misses int
}

// SLOMet reports whether the invocation met the workflow's SLO.
func (iv Invocation) SLOMet(slo time.Duration) bool { return iv.E2E <= slo }

// Serve executes n requests of the series-parallel workflow under the
// adapter's runtime adaptation: before each stage the remaining budget is
// looked up and every branch of the stage runs at the decided allocation.
// Runtime conditions are drawn from the same contention mix the profiles
// used.
func Serve(w *Workflow, a *adapter.Adapter, cfg ProfilerConfig, n int, seed uint64) ([]Invocation, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	if a == nil {
		return nil, fmt.Errorf("parallel: nil adapter")
	}
	if n <= 0 {
		return nil, fmt.Errorf("parallel: need n > 0 requests")
	}
	if a.Bundle().Stages() != len(w.Stages) {
		return nil, fmt.Errorf("parallel: bundle covers %d stages, workflow has %d", a.Bundle().Stages(), len(w.Stages))
	}
	fns := make([][]*perfmodel.Function, len(w.Stages))
	for i, st := range w.Stages {
		for _, name := range st.Functions {
			fn, ok := cfg.Functions[name]
			if !ok {
				return nil, fmt.Errorf("parallel: unknown function %q", name)
			}
			fns[i] = append(fns[i], fn)
		}
	}
	root := rng.New(seed).Split("parallel-serve/" + w.Name)
	out := make([]Invocation, n)
	for r := 0; r < n; r++ {
		stream := root.Split(fmt.Sprintf("req/%d", r))
		var iv Invocation
		elapsed := time.Duration(0)
		for si := range w.Stages {
			dec, err := a.Decide(si, w.SLO-elapsed)
			if err != nil {
				return nil, err
			}
			if !dec.Hit {
				iv.Misses++
			}
			var worst time.Duration
			for _, fn := range fns[si] {
				coloc := cfg.Colocation.Sample(stream)
				d := fn.NewDraw(stream, cfg.Batch, coloc, cfg.Interference)
				if l := fn.Latency(d, dec.Millicores); l > worst {
					worst = l
				}
			}
			elapsed += worst
			iv.Millicores += dec.Millicores * len(fns[si])
		}
		iv.E2E = elapsed
		out[r] = iv
	}
	return out, nil
}

// MeanMillicores averages total allocations over invocations.
func MeanMillicores(ivs []Invocation) float64 {
	if len(ivs) == 0 {
		return 0
	}
	total := 0.0
	for _, iv := range ivs {
		total += float64(iv.Millicores)
	}
	return total / float64(len(ivs))
}

// ViolationRate reports the fraction of invocations over the SLO.
func ViolationRate(ivs []Invocation, slo time.Duration) float64 {
	if len(ivs) == 0 {
		return 0
	}
	v := 0
	for _, iv := range ivs {
		if !iv.SLOMet(slo) {
			v++
		}
	}
	return float64(v) / float64(len(ivs))
}
