// Package parallel is the series-parallel convenience surface over the
// node-granular DAG engine: a fork-join workflow described as stages
// (the Parallel state of Amazon States Language) converts to a
// workflow.Workflow DAG (DAG/FromDAG) and from there every generalized
// component applies unchanged — profiling, synthesis, and serving all
// operate on decision groups, of which SP stages are the special case.
//
// Historically this package owned the series-parallel reduction: each
// parallel stage became one composite pseudo-function whose latency
// distribution is the maximum over its branches, feeding the chain-only
// synthesizer. That reduction now lives in the profile package as
// per-decision-group profiling (profile.Profiler.ProfileGroup), where it
// serves arbitrary DAGs; ProfileStage and Reduce remain as thin wrappers
// with their original signatures and byte-identical output.
//
// Serving never goes through any reduction: Serve and ServeTraces run the
// workflow DAG on the discrete-event serving plane (platform.Executor),
// where every node holds its own pod and is independently subject to
// warm-pool hits, cold starts, capacity queueing, and live co-location
// interference.
package parallel

import (
	"fmt"
	"time"

	"janus/internal/interfere"
	"janus/internal/perfmodel"
	"janus/internal/profile"
	"janus/internal/workflow"
)

// Stage is one step of a series-parallel workflow: one or more functions
// executing concurrently between joins.
type Stage struct {
	// Functions lists the branch function names (at least one).
	Functions []string
}

// Workflow is a series-parallel application definition.
type Workflow struct {
	// Name identifies the application.
	Name string
	// SLO is the end-to-end latency objective.
	SLO time.Duration
	// Stages execute in order; branches within a stage run concurrently.
	Stages []Stage
}

// Validate checks shape.
func (w *Workflow) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("parallel: workflow needs a name")
	}
	if w.SLO <= 0 {
		return fmt.Errorf("parallel: workflow %s needs a positive SLO", w.Name)
	}
	if len(w.Stages) == 0 {
		return fmt.Errorf("parallel: workflow %s needs stages", w.Name)
	}
	for i, st := range w.Stages {
		if len(st.Functions) == 0 {
			return fmt.Errorf("parallel: workflow %s stage %d is empty", w.Name, i)
		}
		for _, f := range st.Functions {
			if f == "" {
				return fmt.Errorf("parallel: workflow %s stage %d has an unnamed function", w.Name, i)
			}
		}
	}
	return nil
}

// Branches reports the branch count of stage i.
func (w *Workflow) Branches(i int) int { return len(w.Stages[i].Functions) }

// DAG converts the series-parallel definition into a fork-join
// workflow.Workflow — full bipartite joins between consecutive stages —
// which the platform executor serves directly (per-branch pods, slowest-
// branch joins).
func (w *Workflow) DAG() (*workflow.Workflow, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	stages := make([][]string, len(w.Stages))
	for i, st := range w.Stages {
		stages[i] = st.Functions
	}
	return workflow.NewSeriesParallel(w.Name, w.SLO, stages)
}

// FromDAG recovers a series-parallel definition from a fork-join workflow
// DAG (the inverse of DAG, up to step naming).
func FromDAG(w *workflow.Workflow) (*Workflow, error) {
	decomp, err := w.SeriesParallel()
	if err != nil {
		return nil, err
	}
	out := &Workflow{Name: w.Name(), SLO: w.SLO(), Stages: make([]Stage, len(decomp))}
	for i, nodes := range decomp {
		fns := make([]string, len(nodes))
		for b, n := range nodes {
			fns[b] = n.Function
		}
		out.Stages[i] = Stage{Functions: fns}
	}
	return out, nil
}

// VideoAnalyze returns the series-parallel form of the paper's Video
// Analyze application: after frame extraction, image classification (for
// analysis) and image compression (for storage) process the frames
// concurrently and join. The SLO is 1.1 s — the chain's 1.5 s objective
// tightened in proportion to the two-stage critical path, so that sizing
// stays non-trivial (the 1000 mc floor misses it, Kmax meets it) exactly
// as the paper's workloads are calibrated.
func VideoAnalyze() *Workflow {
	return &Workflow{
		Name: "va-sp",
		SLO:  1100 * time.Millisecond,
		Stages: []Stage{
			{Functions: []string{"fe"}},
			{Functions: []string{"icl", "ico"}},
		},
	}
}

// ProfilerConfig parameterizes composite-stage profiling.
type ProfilerConfig struct {
	// Functions resolves branch names to latency models.
	Functions map[string]*perfmodel.Function
	// Colocation and Interference reproduce serving-time contention.
	Colocation   *interfere.CountSampler
	Interference *interfere.Model
	// SamplesPerConfig is the Monte-Carlo sample count per allocation.
	SamplesPerConfig int
	// Grid and Percentiles follow the chain profiler's defaults when zero.
	Grid        profile.Grid
	Percentiles []int
	// Batch is the concurrency level (branches must support it).
	Batch int
	// Seed roots the profiling streams.
	Seed uint64
}

func (c *ProfilerConfig) defaults() error {
	if len(c.Functions) == 0 {
		return fmt.Errorf("parallel: profiler needs functions")
	}
	if c.Colocation == nil {
		return fmt.Errorf("parallel: profiler needs a co-location sampler")
	}
	if c.SamplesPerConfig == 0 {
		c.SamplesPerConfig = 2000
	}
	if c.SamplesPerConfig < 100 {
		return fmt.Errorf("parallel: need at least 100 samples per config")
	}
	if c.Grid == (profile.Grid{}) {
		c.Grid = profile.DefaultGrid()
	}
	if err := c.Grid.Validate(); err != nil {
		return err
	}
	if len(c.Percentiles) == 0 {
		c.Percentiles = profile.DefaultPercentiles()
	}
	if c.Batch == 0 {
		c.Batch = 1
	}
	return nil
}

// profiler materializes the config as the generalized profile.Profiler.
func (c *ProfilerConfig) profiler() (*profile.Profiler, error) {
	if err := c.defaults(); err != nil {
		return nil, err
	}
	p, err := profile.NewProfiler(c.Functions, c.Colocation, c.Interference, c.Seed)
	if err != nil {
		return nil, err
	}
	p.SamplesPerConfig = c.SamplesPerConfig
	p.Grid = c.Grid
	p.Percentiles = c.Percentiles
	return p, nil
}

// ProfileStage measures one stage's composite latency: per allocation k,
// every branch runs at k and the stage completes at the slowest branch.
// It is a thin wrapper over per-decision-group profiling
// (profile.Profiler.ProfileGroup), which generalized the reduction to
// arbitrary DAGs.
func ProfileStage(st Stage, cfg ProfilerConfig) (*profile.FunctionProfile, error) {
	if len(st.Functions) == 0 {
		return nil, fmt.Errorf("parallel: stage has no functions")
	}
	p, err := cfg.profiler()
	if err != nil {
		return nil, err
	}
	nodes := make([]workflow.Node, len(st.Functions))
	for i, f := range st.Functions {
		nodes[i] = workflow.Node{Name: f, Function: f}
	}
	fp, err := p.ProfileGroup(workflow.Group{Nodes: nodes}, cfg.Batch)
	if err != nil {
		return nil, fmt.Errorf("parallel: %w", err)
	}
	return fp, nil
}

// Reduce profiles every stage and assembles the per-group profile set the
// synthesizer consumes — a thin wrapper over the node-granular profiler
// applied to the workflow's fork-join DAG. The returned set's workflow is
// that DAG; its profiles are the composite pseudo-functions, one per
// decision group (= stage).
func Reduce(w *Workflow, cfg ProfilerConfig) (*profile.Set, error) {
	dag, err := w.DAG()
	if err != nil {
		return nil, err
	}
	p, err := cfg.profiler()
	if err != nil {
		return nil, err
	}
	return p.ProfileWorkflow(dag, cfg.Batch)
}
