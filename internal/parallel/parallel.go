// Package parallel extends Janus beyond linear chains to series-parallel
// workflows — the "support for more complex workflows" the paper lists as
// future work (§VII).
//
// A series-parallel workflow is a sequence of stages, each fanning out to
// one or more functions that run concurrently and join before the next
// stage (the Parallel state of Amazon States Language). The extension
// reduces such a workflow to an *effective chain* the unmodified
// synthesizer and adapter can serve:
//
//   - each parallel stage becomes one composite pseudo-function whose
//     latency distribution is the maximum over its branches (profiled by
//     Monte-Carlo over the branch models), and
//   - an adaptation decision of k millicores for a stage allocates k to
//     every branch, so a stage with B branches consumes B*k.
//
// Because the join waits for the slowest branch, the composite P99 heads
// toward the branches' joint tail — exactly the distribution the hints
// must budget for. Everything downstream of the reduction (Algorithm 1,
// condensing, the adapter, miss supervision) is reused unchanged.
//
// Serving does NOT go through the reduction: Serve and ServeTraces run the
// workflow's fork-join DAG on the discrete-event serving plane
// (platform.Executor), where every branch holds its own pod and is
// independently subject to warm-pool hits, cold starts, capacity queueing,
// and live co-location interference. The reduction exists so the chain
// synthesizer can produce hints; the cluster substrate is shared with the
// chain experiments.
package parallel

import (
	"fmt"
	"time"

	"janus/internal/interfere"
	"janus/internal/perfmodel"
	"janus/internal/profile"
	"janus/internal/rng"
	"janus/internal/stats"
	"janus/internal/workflow"
)

// Stage is one step of a series-parallel workflow: one or more functions
// executing concurrently between joins.
type Stage struct {
	// Functions lists the branch function names (at least one).
	Functions []string
}

// Workflow is a series-parallel application definition.
type Workflow struct {
	// Name identifies the application.
	Name string
	// SLO is the end-to-end latency objective.
	SLO time.Duration
	// Stages execute in order; branches within a stage run concurrently.
	Stages []Stage
}

// Validate checks shape.
func (w *Workflow) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("parallel: workflow needs a name")
	}
	if w.SLO <= 0 {
		return fmt.Errorf("parallel: workflow %s needs a positive SLO", w.Name)
	}
	if len(w.Stages) == 0 {
		return fmt.Errorf("parallel: workflow %s needs stages", w.Name)
	}
	for i, st := range w.Stages {
		if len(st.Functions) == 0 {
			return fmt.Errorf("parallel: workflow %s stage %d is empty", w.Name, i)
		}
		for _, f := range st.Functions {
			if f == "" {
				return fmt.Errorf("parallel: workflow %s stage %d has an unnamed function", w.Name, i)
			}
		}
	}
	return nil
}

// Branches reports the branch count of stage i.
func (w *Workflow) Branches(i int) int { return len(w.Stages[i].Functions) }

// DAG converts the series-parallel definition into a fork-join
// workflow.Workflow — full bipartite joins between consecutive stages —
// which the platform executor serves directly (per-branch pods, slowest-
// branch joins).
func (w *Workflow) DAG() (*workflow.Workflow, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	stages := make([][]string, len(w.Stages))
	for i, st := range w.Stages {
		stages[i] = st.Functions
	}
	return workflow.NewSeriesParallel(w.Name, w.SLO, stages)
}

// FromDAG recovers a series-parallel definition from a fork-join workflow
// DAG (the inverse of DAG, up to step naming).
func FromDAG(w *workflow.Workflow) (*Workflow, error) {
	decomp, err := w.SeriesParallel()
	if err != nil {
		return nil, err
	}
	out := &Workflow{Name: w.Name(), SLO: w.SLO(), Stages: make([]Stage, len(decomp))}
	for i, nodes := range decomp {
		fns := make([]string, len(nodes))
		for b, n := range nodes {
			fns[b] = n.Function
		}
		out.Stages[i] = Stage{Functions: fns}
	}
	return out, nil
}

// VideoAnalyze returns the series-parallel form of the paper's Video
// Analyze application: after frame extraction, image classification (for
// analysis) and image compression (for storage) process the frames
// concurrently and join. The SLO is 1.1 s — the chain's 1.5 s objective
// tightened in proportion to the two-stage critical path, so that sizing
// stays non-trivial (the 1000 mc floor misses it, Kmax meets it) exactly
// as the paper's workloads are calibrated.
func VideoAnalyze() *Workflow {
	return &Workflow{
		Name: "va-sp",
		SLO:  1100 * time.Millisecond,
		Stages: []Stage{
			{Functions: []string{"fe"}},
			{Functions: []string{"icl", "ico"}},
		},
	}
}

// ProfilerConfig parameterizes composite-stage profiling.
type ProfilerConfig struct {
	// Functions resolves branch names to latency models.
	Functions map[string]*perfmodel.Function
	// Colocation and Interference reproduce serving-time contention.
	Colocation   *interfere.CountSampler
	Interference *interfere.Model
	// SamplesPerConfig is the Monte-Carlo sample count per allocation.
	SamplesPerConfig int
	// Grid and Percentiles follow the chain profiler's defaults when zero.
	Grid        profile.Grid
	Percentiles []int
	// Batch is the concurrency level (branches must support it).
	Batch int
	// Seed roots the profiling streams.
	Seed uint64
}

func (c *ProfilerConfig) defaults() error {
	if len(c.Functions) == 0 {
		return fmt.Errorf("parallel: profiler needs functions")
	}
	if c.Colocation == nil {
		return fmt.Errorf("parallel: profiler needs a co-location sampler")
	}
	if c.SamplesPerConfig == 0 {
		c.SamplesPerConfig = 2000
	}
	if c.SamplesPerConfig < 100 {
		return fmt.Errorf("parallel: need at least 100 samples per config")
	}
	if c.Grid == (profile.Grid{}) {
		c.Grid = profile.DefaultGrid()
	}
	if err := c.Grid.Validate(); err != nil {
		return err
	}
	if len(c.Percentiles) == 0 {
		c.Percentiles = profile.DefaultPercentiles()
	}
	if c.Batch == 0 {
		c.Batch = 1
	}
	return nil
}

// ProfileStage measures one stage's composite latency: per allocation k,
// every branch runs at k and the stage completes at the slowest branch.
func ProfileStage(st Stage, cfg ProfilerConfig) (*profile.FunctionProfile, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	fns := make([]*perfmodel.Function, len(st.Functions))
	for i, name := range st.Functions {
		fn, ok := cfg.Functions[name]
		if !ok {
			return nil, fmt.Errorf("parallel: unknown function %q", name)
		}
		if !fn.SupportsBatch(cfg.Batch) {
			return nil, fmt.Errorf("parallel: function %s does not support batch %d", name, cfg.Batch)
		}
		fns[i] = fn
	}
	compositeName := st.Functions[0]
	if len(st.Functions) > 1 {
		compositeName = fmt.Sprintf("par(%d)", len(st.Functions))
		for _, f := range st.Functions {
			compositeName += "+" + f
		}
	}
	levels := cfg.Grid.Levels()
	lat := make([][]int, len(cfg.Percentiles))
	for i := range lat {
		lat[i] = make([]int, len(levels))
	}
	for ki, k := range levels {
		stream := rng.New(cfg.Seed).Split(fmt.Sprintf("parallel/%s/b%d/k%d", compositeName, cfg.Batch, k))
		sample := &stats.Sample{}
		for i := 0; i < cfg.SamplesPerConfig; i++ {
			var worst time.Duration
			for _, fn := range fns {
				coloc := cfg.Colocation.Sample(stream)
				d := fn.NewDraw(stream, cfg.Batch, coloc, cfg.Interference)
				if l := fn.Latency(d, k); l > worst {
					worst = l
				}
			}
			sample.AddDuration(worst)
		}
		for pi, pct := range cfg.Percentiles {
			lat[pi][ki] = int(sample.Percentile(float64(pct))) + 1
		}
	}
	// Iron out sampling noise exactly as the chain profiler does.
	for pi := range lat {
		for ki := len(levels) - 2; ki >= 0; ki-- {
			if lat[pi][ki] < lat[pi][ki+1] {
				lat[pi][ki] = lat[pi][ki+1]
			}
		}
	}
	for pi := 1; pi < len(lat); pi++ {
		for ki := range lat[pi] {
			if lat[pi][ki] < lat[pi-1][ki] {
				lat[pi][ki] = lat[pi-1][ki]
			}
		}
	}
	return profile.NewFunctionProfile(compositeName, cfg.Batch, cfg.Grid, cfg.Percentiles, lat)
}

// Reduce profiles every stage and assembles the effective-chain profile
// set the unmodified synthesizer consumes. The returned workflow's nodes
// are the composite pseudo-functions.
func Reduce(w *Workflow, cfg ProfilerConfig) (*profile.Set, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	profiles := make([]*profile.FunctionProfile, len(w.Stages))
	names := make([]string, len(w.Stages))
	for i, st := range w.Stages {
		fp, err := ProfileStage(st, cfg)
		if err != nil {
			return nil, fmt.Errorf("parallel: stage %d: %w", i, err)
		}
		profiles[i] = fp
		names[i] = fmt.Sprintf("s%d:%s", i, fp.Function)
	}
	nodes := make([]workflow.Node, len(names))
	edges := make([][2]string, 0, len(names)-1)
	for i, n := range names {
		nodes[i] = workflow.Node{Name: n, Function: profiles[i].Function}
		if i > 0 {
			edges = append(edges, [2]string{names[i-1], n})
		}
	}
	chain, err := workflow.New(w.Name, w.SLO, nodes, edges)
	if err != nil {
		return nil, err
	}
	return &profile.Set{Workflow: chain, Batch: profiles[0].Batch, Profiles: profiles}, nil
}
