package parallel

import (
	"strings"
	"testing"
	"time"

	"janus/internal/adapter"
	"janus/internal/baseline"
	"janus/internal/cluster"
	"janus/internal/core"
	"janus/internal/interfere"
	"janus/internal/perfmodel"
	"janus/internal/platform"
	"janus/internal/synth"
)

// diamond is OD fanning into a parallel (QA, TS) stage and joining into
// ICO: the canonical series-parallel shape.
func diamond() *Workflow {
	return &Workflow{
		Name: "diamond",
		SLO:  3500 * time.Millisecond,
		Stages: []Stage{
			{Functions: []string{"od"}},
			{Functions: []string{"qa", "ts"}},
			{Functions: []string{"ico"}},
		},
	}
}

func testConfig(t *testing.T) ProfilerConfig {
	t.Helper()
	coloc, err := interfere.NewCountSampler([]float64{0.6, 0.3, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	return ProfilerConfig{
		Functions:        perfmodel.Catalog(),
		Colocation:       coloc,
		Interference:     interfere.Default(),
		SamplesPerConfig: 1000,
		Seed:             3,
	}
}

func TestValidate(t *testing.T) {
	bad := []*Workflow{
		{Name: "", SLO: time.Second, Stages: []Stage{{Functions: []string{"od"}}}},
		{Name: "x", SLO: 0, Stages: []Stage{{Functions: []string{"od"}}}},
		{Name: "x", SLO: time.Second},
		{Name: "x", SLO: time.Second, Stages: []Stage{{}}},
		{Name: "x", SLO: time.Second, Stages: []Stage{{Functions: []string{""}}}},
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("bad workflow %d accepted", i)
		}
	}
	if err := diamond().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestProfileStageCompositeDominatesBranches(t *testing.T) {
	cfg := testConfig(t)
	composite, err := ProfileStage(Stage{Functions: []string{"qa", "ts"}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	qa, err := ProfileStage(Stage{Functions: []string{"qa"}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := ProfileStage(Stage{Functions: []string{"ts"}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// max(QA, TS) stochastically dominates each branch. The estimates come
	// from independent Monte-Carlo paths, so compare with the sampling
	// tolerance appropriate to each percentile: tight at the median, loose
	// at the tail.
	tolerance := map[int]float64{50: 0.97, 99: 0.85}
	for _, p := range []int{50, 99} {
		for _, k := range []int{1000, 2000, 3000} {
			floor := float64(max(qa.LMs(p, k), ts.LMs(p, k))) * tolerance[p]
			if float64(composite.LMs(p, k)) < floor {
				t.Errorf("composite L(%d,%d)=%d below dominated floor %.0f (qa %d, ts %d)",
					p, k, composite.LMs(p, k), floor, qa.LMs(p, k), ts.LMs(p, k))
			}
		}
	}
	if !strings.Contains(composite.Function, "par(2)") {
		t.Errorf("composite name %q", composite.Function)
	}
}

func TestProfileStageValidation(t *testing.T) {
	cfg := testConfig(t)
	if _, err := ProfileStage(Stage{Functions: []string{"nope"}}, cfg); err == nil {
		t.Error("unknown function accepted")
	}
	cfg2 := testConfig(t)
	cfg2.Batch = 2
	if _, err := ProfileStage(Stage{Functions: []string{"fe"}}, cfg2); err == nil {
		t.Error("unsupported batch accepted")
	}
	cfg3 := testConfig(t)
	cfg3.Colocation = nil
	if _, err := ProfileStage(Stage{Functions: []string{"od"}}, cfg3); err == nil {
		t.Error("missing colocation accepted")
	}
}

func TestReduceBuildsEffectiveChain(t *testing.T) {
	set, err := Reduce(diamond(), testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 3 {
		t.Fatalf("effective chain has %d stages", set.Len())
	}
	// The set's workflow is the fork-join DAG itself; the per-group
	// profiles form the effective chain the synthesizer consumes.
	if set.Workflow.IsChain() || !set.Workflow.IsSeriesParallel() {
		t.Fatal("reduction should keep the fork-join DAG")
	}
	if got := len(set.Groups()); got != 3 {
		t.Fatalf("workflow has %d decision groups", got)
	}
	if set.Workflow.SLO() != 3500*time.Millisecond {
		t.Fatalf("SLO lost: %v", set.Workflow.SLO())
	}
	// The middle stage is the composite.
	if !strings.Contains(set.At(1).Function, "par(2)") {
		t.Fatalf("middle profile is %q", set.At(1).Function)
	}
}

// TestSeriesParallelEndToEnd deploys the diamond under Janus via the
// reduction and serves it: the SLO must hold and runtime adaptation must
// beat worst-case (all-stage P99 at the effective chain) sizing.
func TestSeriesParallelEndToEnd(t *testing.T) {
	w := diamond()
	cfg := testConfig(t)
	set, err := Reduce(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := core.DeployProfiled(set, core.Options{
		Functions:           cfg.Functions,
		Colocation:          cfg.Colocation,
		Interference:        cfg.Interference,
		Seed:                5,
		Mode:                synth.ModeJanus,
		BudgetStepMs:        10,
		DisableRegeneration: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ivs, err := Serve(w, dep.Adapter, cfg, 400, 9)
	if err != nil {
		t.Fatal(err)
	}
	if got := ViolationRate(ivs, w.SLO); got > 0.02 {
		t.Fatalf("violation rate %.3f", got)
	}
	janusMC := MeanMillicores(ivs)

	// Early binding on the effective chain: every stage at its P99 plan
	// for the SLO (the minimal P99-feasible fixed plan), branches included.
	sloMs := int(w.SLO / time.Millisecond)
	bestFixed := -1
	levels := set.At(0).Grid.Levels()
	for _, k0 := range levels {
		for _, k1 := range levels {
			for _, k2 := range levels {
				total := set.At(0).LMs(99, k0) + set.At(1).LMs(99, k1) + set.At(2).LMs(99, k2)
				if total > sloMs {
					continue
				}
				cores := k0*w.Branches(0) + k1*w.Branches(1) + k2*w.Branches(2)
				if bestFixed < 0 || cores < bestFixed {
					bestFixed = cores
				}
			}
		}
	}
	if bestFixed < 0 {
		t.Fatal("no feasible early-binding plan; calibration broke")
	}
	if janusMC >= float64(bestFixed) {
		t.Fatalf("janus (%.0f mc) not below early binding (%d mc) on the diamond", janusMC, bestFixed)
	}
	// Misses stay within the supervisor's comfort zone.
	misses := 0
	for _, iv := range ivs {
		misses += iv.Misses
	}
	if rate := float64(misses) / float64(3*len(ivs)); rate > 0.03 {
		t.Fatalf("miss rate %.3f", rate)
	}
}

func TestServeValidation(t *testing.T) {
	w := diamond()
	cfg := testConfig(t)
	if _, err := Serve(w, nil, cfg, 10, 1); err == nil {
		t.Error("nil adapter accepted")
	}
	set, err := Reduce(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := core.DeployProfiled(set, core.Options{
		Functions:           cfg.Functions,
		Colocation:          cfg.Colocation,
		Interference:        cfg.Interference,
		BudgetStepMs:        25,
		DisableRegeneration: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Serve(w, dep.Adapter, cfg, 0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	// A bundle with the wrong stage count is rejected.
	short := &Workflow{Name: "short", SLO: w.SLO, Stages: w.Stages[:2]}
	if _, err := Serve(short, dep.Adapter, cfg, 10, 1); err == nil {
		t.Error("stage-count mismatch accepted")
	}
	var _ *adapter.Adapter = dep.Adapter
}

// TestVideoAnalyzeSPOnClusterSubstrate is the acceptance test for serving
// series-parallel workflows on the real serving plane: the SP Video Analyze
// application runs end-to-end through platform.Executor under Janus and an
// early-binding baseline, with cold starts, capacity parking, and live
// co-location interference all exercised, and results reproducible byte for
// byte.
func TestVideoAnalyzeSPOnClusterSubstrate(t *testing.T) {
	w := VideoAnalyze()
	cfg := testConfig(t)
	set, err := Reduce(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := core.DeployProfiled(set, core.Options{
		Functions:           cfg.Functions,
		Colocation:          cfg.Colocation,
		Interference:        cfg.Interference,
		Seed:                5,
		Mode:                synth.ModeJanus,
		BudgetStepMs:        10,
		DisableRegeneration: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	gsp, err := baseline.GrandSLAMPlus(set, w.SLO)
	if err != nil {
		t.Fatal(err)
	}
	// A cramped, barely-warmed cluster with live interference: branches
	// cold-start, queue for capacity, and see the live co-location census.
	ecfg := platform.DefaultExecutorConfig()
	ecfg.Cluster = cluster.Config{Nodes: 1, NodeMillicores: 9000, PoolSize: 1, IdleMillicores: 100}
	ecfg.LiveInterference = true
	ecfg.Interference = cfg.Interference
	ecfg.Seed = 7
	ex, err := platform.NewExecutor(ecfg, cfg.Functions)
	if err != nil {
		t.Fatal(err)
	}
	sc := ServeConfig{N: 150, Seed: 9, ArrivalRatePerSec: 6, Executor: ex}
	for _, alloc := range []platform.Allocator{dep.Allocator("janus"), gsp} {
		a, err := ServeTraces(w, alloc, cfg, sc)
		if err != nil {
			t.Fatalf("%s: %v", alloc.Name(), err)
		}
		b, err := ServeTraces(w, alloc, cfg, sc)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != sc.N {
			t.Fatalf("%s: %d traces", alloc.Name(), len(a))
		}
		cold, parked := 0, 0
		for i := range a {
			parked += a[i].Parked
			fanOut := 0
			for s := range a[i].Stages {
				if a[i].Stages[s].Cold {
					cold++
				}
				if a[i].Stages[s].Stage == 1 {
					fanOut++
				}
				if a[i].Stages[s] != b[i].Stages[s] {
					t.Fatalf("%s: trace %d stage %d diverged across identical runs", alloc.Name(), i, s)
				}
			}
			if fanOut != 2 {
				t.Fatalf("%s: trace %d ran %d fan-out branches, want 2", alloc.Name(), i, fanOut)
			}
			if len(a[i].Stages) != 3 {
				t.Fatalf("%s: trace %d ran %d branches, want 3 (fe, icl, ico)", alloc.Name(), i, len(a[i].Stages))
			}
			if a[i].E2E != b[i].E2E || a[i].TotalMillicores != b[i].TotalMillicores {
				t.Fatalf("%s: summary diverged across identical runs", alloc.Name())
			}
		}
		if cold == 0 {
			t.Fatalf("%s: no cold starts on a PoolSize-1 cluster", alloc.Name())
		}
		if parked == 0 {
			t.Fatalf("%s: no capacity parking on a 9000mc node", alloc.Name())
		}
	}
}

func TestServeInheritsQueueingFromTheSubstrate(t *testing.T) {
	// The same workload on an uncongested vs. a cramped cluster: the
	// cramped plane must show strictly higher end-to-end latency — the
	// queueing the old sequential-loop Serve could never produce.
	w := diamond()
	cfg := testConfig(t)
	set, err := Reduce(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gsp, err := baseline.GrandSLAMPlus(set, w.SLO)
	if err != nil {
		t.Fatal(err)
	}
	serveOn := func(nodeMC int) []platform.Trace {
		ecfg := platform.DefaultExecutorConfig()
		ecfg.Cluster = cluster.Config{Nodes: 1, NodeMillicores: nodeMC, PoolSize: 2, IdleMillicores: 100}
		ex, err := platform.NewExecutor(ecfg, cfg.Functions)
		if err != nil {
			t.Fatal(err)
		}
		traces, err := ServeTraces(w, gsp, cfg, ServeConfig{N: 120, Seed: 11, ArrivalRatePerSec: 6, Executor: ex})
		if err != nil {
			t.Fatal(err)
		}
		return traces
	}
	roomy := platform.E2ESample(serveOn(52000))
	cramped := platform.E2ESample(serveOn(10000))
	if cramped.Mean() <= roomy.Mean() {
		t.Fatalf("cramped cluster mean e2e %.1fms not above roomy %.1fms", cramped.Mean(), roomy.Mean())
	}
}

func TestWorkflowDAGRoundTrip(t *testing.T) {
	w := diamond()
	dag, err := w.DAG()
	if err != nil {
		t.Fatal(err)
	}
	if dag.IsChain() {
		t.Fatal("diamond DAG reported as chain")
	}
	back, err := FromDAG(dag)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Stages) != len(w.Stages) || back.SLO != w.SLO || back.Name != w.Name {
		t.Fatalf("round trip lost shape: %+v", back)
	}
	for i := range w.Stages {
		if len(back.Stages[i].Functions) != len(w.Stages[i].Functions) {
			t.Fatalf("stage %d branch count changed", i)
		}
	}
	if VideoAnalyze().Validate() != nil {
		t.Fatal("catalog VA-SP invalid")
	}
	if _, err := VideoAnalyze().DAG(); err != nil {
		t.Fatal(err)
	}
}

// TestSingleStageForkDAG is the regression test for the disconnected-node
// validation: a one-stage parallel workflow (a pure fork-join map)
// converts to a DAG with multiple nodes and zero edges, which must stay
// valid — all members form one decision group and join at completion.
func TestSingleStageForkDAG(t *testing.T) {
	w := &Workflow{Name: "map", SLO: 2 * time.Second, Stages: []Stage{{Functions: []string{"qa", "ts"}}}}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	dag, err := w.DAG()
	if err != nil {
		t.Fatalf("single-stage fork rejected: %v", err)
	}
	groups := dag.DecisionGroups()
	if len(groups) != 1 || len(groups[0].Nodes) != 2 {
		t.Fatalf("fork groups = %+v", groups)
	}
	if _, err := Reduce(w, testConfig(t)); err != nil {
		t.Fatalf("single-stage fork reduction failed: %v", err)
	}
}
