package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// This file locks the indexed cluster to the semantics of the original
// scan-based implementation. refCluster below re-implements the substrate
// the slow way — linear scans for placement and every census, no derived
// state — and TestClusterIndexedMatchesReference drives both through long
// seeded random op sequences, asserting identical outputs (placements,
// cold flags, errors, censuses) at every step. Any divergence in the
// index maintenance or the segment tree's tie-breaking shows up as a
// mismatch with the op trace that produced it.

// refPod mirrors Pod for the reference implementation.
type refPod struct {
	id         int
	function   string
	nodeID     int
	millicores int
	busy       bool
}

type refNode struct {
	id        int
	capacity  int
	allocated int
	pods      map[int]*refPod
}

// refCluster is the pre-index implementation: every query recomputes from
// the pod maps, and placement is the original left-to-right scan.
type refCluster struct {
	cfg     Config
	nodes   []*refNode
	nextID  int
	pools   map[string][]*refPod
	targets map[string]int
	grown   int
	shrunk  int
}

func newRefCluster(cfg Config) *refCluster {
	c := &refCluster{cfg: cfg, pools: make(map[string][]*refPod), targets: make(map[string]int)}
	for i := 0; i < cfg.Nodes; i++ {
		c.nodes = append(c.nodes, &refNode{id: i, capacity: cfg.NodeMillicores, pods: make(map[int]*refPod)})
	}
	return c
}

func (c *refCluster) pickNode(millicores int) *refNode {
	var best *refNode
	for _, n := range c.nodes {
		free := n.capacity - n.allocated
		if free < millicores {
			continue
		}
		if c.cfg.Placement == PlacementFirstFit {
			return n
		}
		if best == nil || free > best.capacity-best.allocated {
			best = n
		}
	}
	return best
}

func (c *refCluster) createPod(function string, millicores int) (*refPod, error) {
	n := c.pickNode(millicores)
	if n == nil {
		return nil, fmt.Errorf("no node fits")
	}
	c.nextID++
	pod := &refPod{id: c.nextID, function: function, nodeID: n.id, millicores: millicores}
	n.pods[pod.id] = pod
	n.allocated += millicores
	return pod, nil
}

func (c *refCluster) deploy(function string) error {
	if _, ok := c.pools[function]; ok {
		return fmt.Errorf("already deployed")
	}
	c.pools[function] = nil
	c.targets[function] = c.cfg.PoolSize
	for i := 0; i < c.cfg.PoolSize; i++ {
		pod, err := c.createPod(function, c.cfg.IdleMillicores)
		if err != nil {
			return err
		}
		c.pools[function] = append(c.pools[function], pod)
	}
	return nil
}

func (c *refCluster) acquire(function string, millicores int) (*refPod, bool, error) {
	pool, ok := c.pools[function]
	if !ok {
		return nil, false, fmt.Errorf("not deployed")
	}
	if len(pool) > 0 {
		pod := pool[len(pool)-1]
		c.pools[function] = pool[:len(pool)-1]
		if err := c.resize(pod, millicores); err != nil {
			c.pools[function] = append(c.pools[function], pod)
			return nil, false, err
		}
		pod.busy = true
		return pod, false, nil
	}
	pod, err := c.createPod(function, millicores)
	if err != nil {
		return nil, false, err
	}
	pod.busy = true
	return pod, true, nil
}

func (c *refCluster) resize(pod *refPod, millicores int) error {
	n := c.nodes[pod.nodeID]
	delta := millicores - pod.millicores
	if n.allocated+delta > n.capacity {
		return fmt.Errorf("does not fit")
	}
	n.allocated += delta
	pod.millicores = millicores
	return nil
}

func (c *refCluster) release(pod *refPod) error {
	if !pod.busy {
		return fmt.Errorf("idle release")
	}
	pod.busy = false
	if len(c.pools[pod.function]) >= c.targets[pod.function] {
		n := c.nodes[pod.nodeID]
		n.allocated -= pod.millicores
		delete(n.pods, pod.id)
		return nil
	}
	if err := c.resize(pod, max(c.cfg.IdleMillicores, 1)); err != nil {
		return err
	}
	c.pools[pod.function] = append(c.pools[pod.function], pod)
	return nil
}

func (c *refCluster) setPoolTarget(function string, target int) error {
	if _, ok := c.pools[function]; !ok {
		return fmt.Errorf("not deployed")
	}
	c.targets[function] = target
	return nil
}

func (c *refCluster) addWarmPod(function string) (*refPod, error) {
	if _, ok := c.pools[function]; !ok {
		return nil, fmt.Errorf("not deployed")
	}
	pod, err := c.createPod(function, max(c.cfg.IdleMillicores, 1))
	if err != nil {
		return nil, err
	}
	c.pools[function] = append(c.pools[function], pod)
	c.grown++
	return pod, nil
}

func (c *refCluster) removeWarmPod(function string) error {
	pool, ok := c.pools[function]
	if !ok {
		return fmt.Errorf("not deployed")
	}
	if len(pool) == 0 {
		return fmt.Errorf("empty pool")
	}
	pod := pool[len(pool)-1]
	c.pools[function] = pool[:len(pool)-1]
	n := c.nodes[pod.nodeID]
	n.allocated -= pod.millicores
	delete(n.pods, pod.id)
	c.shrunk++
	return nil
}

func (c *refCluster) colocated(pod *refPod) int {
	count := 0
	for _, other := range c.nodes[pod.nodeID].pods {
		if other.function == pod.function && other.busy {
			count++
		}
	}
	return count
}

func (c *refCluster) nodeColocated(nodeID int, function string) int {
	count := 0
	for _, p := range c.nodes[nodeID].pods {
		if p.function == function && p.busy {
			count++
		}
	}
	return count
}

func (c *refCluster) nodeBusyPods(nodeID int) int {
	count := 0
	for _, p := range c.nodes[nodeID].pods {
		if p.busy {
			count++
		}
	}
	return count
}

func (c *refCluster) totalPods() int {
	total := 0
	for _, n := range c.nodes {
		total += len(n.pods)
	}
	return total
}

// podPair tracks one live pod in both implementations.
type podPair struct {
	got *Pod
	ref *refPod
}

// diffDriver drives the indexed and reference clusters through the same
// op and fails on the first divergence.
type diffDriver struct {
	t    *testing.T
	got  *Cluster
	ref  *refCluster
	fns  []string
	busy []podPair
	step int
}

func (d *diffDriver) fatalf(format string, args ...any) {
	d.t.Helper()
	d.t.Fatalf("step %d: %s", d.step, fmt.Sprintf(format, args...))
}

// checkErrs asserts both implementations agreed on success/failure.
func (d *diffDriver) checkErrs(op string, gotErr, refErr error) bool {
	d.t.Helper()
	if (gotErr == nil) != (refErr == nil) {
		d.fatalf("%s diverged: indexed err=%v, reference err=%v", op, gotErr, refErr)
	}
	return gotErr == nil
}

// checkState compares every observable census after an op.
func (d *diffDriver) checkState() {
	d.t.Helper()
	if g, r := d.got.TotalPods(), d.ref.totalPods(); g != r {
		d.fatalf("TotalPods: indexed %d, reference %d", g, r)
	}
	for n := 0; n < d.got.Nodes(); n++ {
		if g, r := d.got.NodeAllocated(n), d.ref.nodes[n].allocated; g != r {
			d.fatalf("NodeAllocated(%d): indexed %d, reference %d", n, g, r)
		}
		if g, r := d.got.NodeBusyPods(n), d.ref.nodeBusyPods(n); g != r {
			d.fatalf("NodeBusyPods(%d): indexed %d, reference %d", n, g, r)
		}
		if g, r := d.got.NodePods(n), len(d.ref.nodes[n].pods); g != r {
			d.fatalf("NodePods(%d): indexed %d, reference %d", n, g, r)
		}
		for _, fn := range d.fns {
			if g, r := d.got.NodeColocated(n, fn), d.ref.nodeColocated(n, fn); g != r {
				d.fatalf("NodeColocated(%d, %s): indexed %d, reference %d", n, fn, g, r)
			}
		}
	}
	for _, fn := range d.fns {
		if !d.got.Deployed(fn) {
			continue
		}
		if g, r := d.got.WarmPods(fn), len(d.ref.pools[fn]); g != r {
			d.fatalf("WarmPods(%s): indexed %d, reference %d", fn, g, r)
		}
		refBusy := 0
		for n := range d.ref.nodes {
			refBusy += d.ref.nodeColocated(n, fn)
		}
		if g := d.got.BusyPods(fn); g != refBusy {
			d.fatalf("BusyPods(%s): indexed %d, reference %d", fn, g, refBusy)
		}
		// AcquireThreshold must be exact — the serving plane skips parked
		// retries on its word: acquire succeeds iff mc <= threshold.
		refThr := 0
		if pool := d.ref.pools[fn]; len(pool) > 0 {
			pod := pool[len(pool)-1]
			n := d.ref.nodes[pod.nodeID]
			refThr = n.capacity - n.allocated + pod.millicores
		} else {
			for _, n := range d.ref.nodes {
				if free := n.capacity - n.allocated; free > refThr {
					refThr = free
				}
			}
		}
		if g := d.got.AcquireThreshold(fn); g != refThr {
			d.fatalf("AcquireThreshold(%s): indexed %d, reference %d", fn, g, refThr)
		}
	}
	for _, pair := range d.busy {
		if g, r := d.got.Colocated(pair.got), d.ref.colocated(pair.ref); g != r {
			d.fatalf("Colocated(pod %d): indexed %d, reference %d", pair.got.ID, g, r)
		}
	}
	g1, s1 := d.got.PoolChurn()
	if g1 != d.ref.grown || s1 != d.ref.shrunk {
		d.fatalf("PoolChurn: indexed (%d, %d), reference (%d, %d)", g1, s1, d.ref.grown, d.ref.shrunk)
	}
}

// op applies one random operation to both implementations and compares
// the direct outputs (pod identity, node placement, cold flag, error).
func (d *diffDriver) op(r *rand.Rand) {
	fn := d.fns[r.Intn(len(d.fns))]
	switch r.Intn(12) {
	case 0: // Deploy (no-op once all functions exist)
		if !d.got.Deployed(fn) {
			ge := d.got.Deploy(fn)
			re := d.ref.deploy(fn)
			d.checkErrs("Deploy", ge, re)
		}
	case 1, 2, 3, 4: // Acquire
		if !d.got.Deployed(fn) {
			return
		}
		mc := 100 + r.Intn(40)*100
		gp, gcold, ge := d.got.Acquire(fn, mc)
		rp, rcold, re := d.ref.acquire(fn, mc)
		if !d.checkErrs("Acquire", ge, re) {
			return
		}
		if gp.ID != rp.id || gp.NodeID != rp.nodeID || gcold != rcold || gp.Millicores() != rp.millicores {
			d.fatalf("Acquire(%s, %d) diverged: indexed pod %d node %d cold %v mc %d, reference pod %d node %d cold %v mc %d",
				fn, mc, gp.ID, gp.NodeID, gcold, gp.Millicores(), rp.id, rp.nodeID, rcold, rp.millicores)
		}
		d.busy = append(d.busy, podPair{got: gp, ref: rp})
	case 5, 6, 7: // Release
		if len(d.busy) == 0 {
			return
		}
		i := r.Intn(len(d.busy))
		pair := d.busy[i]
		d.busy = append(d.busy[:i], d.busy[i+1:]...)
		d.checkErrs("Release", d.got.Release(pair.got), d.ref.release(pair.ref))
	case 8: // Resize a busy pod
		if len(d.busy) == 0 {
			return
		}
		pair := d.busy[r.Intn(len(d.busy))]
		mc := 100 + r.Intn(60)*100
		d.checkErrs("Resize", d.got.Resize(pair.got, mc), d.ref.resize(pair.ref, mc))
	case 9: // SetPoolTarget
		if !d.got.Deployed(fn) {
			return
		}
		tgt := r.Intn(6)
		d.checkErrs("SetPoolTarget", d.got.SetPoolTarget(fn, tgt), d.ref.setPoolTarget(fn, tgt))
	case 10: // AddWarmPod
		if !d.got.Deployed(fn) {
			return
		}
		gp, ge := d.got.AddWarmPod(fn)
		rp, re := d.ref.addWarmPod(fn)
		if d.checkErrs("AddWarmPod", ge, re) && (gp.ID != rp.id || gp.NodeID != rp.nodeID) {
			d.fatalf("AddWarmPod(%s) diverged: indexed pod %d node %d, reference pod %d node %d",
				fn, gp.ID, gp.NodeID, rp.id, rp.nodeID)
		}
	case 11: // RemoveWarmPod
		if !d.got.Deployed(fn) {
			return
		}
		d.checkErrs("RemoveWarmPod", d.got.RemoveWarmPod(fn), d.ref.removeWarmPod(fn))
	}
}

func (d *diffDriver) run(seed int64, steps int) {
	r := rand.New(rand.NewSource(seed))
	for d.step = 0; d.step < steps; d.step++ {
		d.op(r)
		d.checkState()
	}
}

func TestClusterIndexedMatchesReference(t *testing.T) {
	placements := []Placement{PlacementSpread, PlacementFirstFit}
	for _, placement := range placements {
		placement := placement
		t.Run(placement.String(), func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				cfg := Config{
					Nodes:          1 + int(seed)*3, // 4, 7, 10, 13 nodes
					NodeMillicores: 8000,
					PoolSize:       2,
					IdleMillicores: 100,
					Placement:      placement,
				}
				got := mustCluster(t, cfg)
				d := &diffDriver{
					t:   t,
					got: got,
					ref: newRefCluster(cfg),
					fns: []string{"fa", "fb", "fc", "fd", "fe"},
				}
				d.run(seed, 4000)
			}
		})
	}
}
