package cluster

import (
	"fmt"
	"testing"
)

// The cluster microbenchmarks pin the serving plane's per-operation
// substrate costs at fleet scale: a 200-node cluster with a populated
// co-location census, the dimensions the fleet replay scenario drives.
// The BENCH_*.json files record their trajectory, and the bench-guard test
// (../../benchguard_test.go) fails CI when pickNode or Colocated regress
// to per-call allocation.

const (
	benchNodes      = 200
	benchMillicores = 26000
)

// benchCluster builds a 200-node cluster with `fns` deployed functions
// and `busyPerFn` busy pods of each, spread by the placement policy. The
// pool size is zero so every acquire is a cold start through pickNode —
// under first-fit a warm pod can otherwise land on a node that later
// saturates, and resizing it out of idle would fail.
func benchCluster(b *testing.B, placement Placement, fns, busyPerFn int) (*Cluster, []*Pod) {
	b.Helper()
	c, err := New(Config{
		Nodes:          benchNodes,
		NodeMillicores: benchMillicores,
		PoolSize:       0,
		IdleMillicores: 100,
		Placement:      placement,
	})
	if err != nil {
		b.Fatal(err)
	}
	var pods []*Pod
	for f := 0; f < fns; f++ {
		name := fmt.Sprintf("f%d", f)
		if err := c.Deploy(name); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < busyPerFn; i++ {
			p, _, err := c.Acquire(name, 1000)
			if err != nil {
				b.Fatal(err)
			}
			pods = append(pods, p)
		}
	}
	return c, pods
}

func benchmarkPickNode(b *testing.B, placement Placement) {
	c, _ := benchCluster(b, placement, 8, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n := c.pickNode(2000); n == nil {
			b.Fatal("no node fits")
		}
	}
}

// BenchmarkPickNodeSpread measures one most-free placement query over 200
// nodes holding ~500 pods.
func BenchmarkPickNodeSpread(b *testing.B) { benchmarkPickNode(b, PlacementSpread) }

// BenchmarkPickNodeFirstFit measures one lowest-ID-that-fits placement
// query over the same fleet.
func BenchmarkPickNodeFirstFit(b *testing.B) { benchmarkPickNode(b, PlacementFirstFit) }

// BenchmarkColocated measures the same-function busy census read the
// interference model consumes, on a node hosting tens of pods.
func BenchmarkColocated(b *testing.B) {
	c, pods := benchCluster(b, PlacementFirstFit, 8, 64)
	b.ReportAllocs()
	b.ResetTimer()
	var census int
	for i := 0; i < b.N; i++ {
		census += c.Colocated(pods[i%len(pods)])
	}
	if census <= 0 {
		b.Fatal("census never counted the pod itself")
	}
}

// BenchmarkNodeBusyPods measures the per-node occupancy read the replay
// control loop samples each tick.
func BenchmarkNodeBusyPods(b *testing.B) {
	c, _ := benchCluster(b, PlacementFirstFit, 8, 64)
	b.ReportAllocs()
	b.ResetTimer()
	var busy int
	for i := 0; i < b.N; i++ {
		busy += c.NodeBusyPods(i % benchNodes)
	}
	_ = busy
}

// BenchmarkAcquireRelease measures the steady-state warm-pod serving
// cycle: pool pop, resize, busy-census update, release, idle-shrink,
// pool push.
func BenchmarkAcquireRelease(b *testing.B) {
	c, err := New(Config{
		Nodes:          benchNodes,
		NodeMillicores: benchMillicores,
		PoolSize:       3,
		IdleMillicores: 100,
		Placement:      PlacementSpread,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := c.Deploy("f0"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, _, err := c.Acquire("f0", 1500)
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Release(p); err != nil {
			b.Fatal(err)
		}
	}
}
