// Package cluster simulates the serverless provider's execution substrate:
// a set of worker nodes (VMs) hosting function pods, in the style of
// Kubernetes with the Fission PoolManager executor the paper deploys on
// (§V-A). The pool manager keeps a pool of warm pods per function so that
// requests avoid cold starts; pods are specialized (a few milliseconds)
// when taken from the pool and cold-started (hundreds of milliseconds) when
// the pool is empty.
//
// The cluster owns millicore accounting per node and reports the live
// co-location census — how many instances of the same function are busy on
// a node — which is what drives the interference model at serving time.
// New pods land on nodes per a deterministic Placement policy (spread or
// first-fit), so where a pod runs — and therefore how much interference it
// sees — is a consequence of cluster state, not chance.
package cluster

import (
	"errors"
	"fmt"
	"sort"
)

// ErrNoCapacity reports a capacity miss: no node can host (Acquire's cold
// start) or grow into (Resize) the requested millicores right now. It is
// a shared sentinel rather than a formatted error because the serving
// plane parks and retries on it — at fleet scale the miss path runs
// millions of times per run, and error construction must not allocate.
var ErrNoCapacity = errors.New("cluster: insufficient free millicores")

// Placement selects the node a new pod lands on. Both policies are
// deterministic (ties break toward lower node IDs) so discrete-event runs
// replay byte for byte.
type Placement int

const (
	// PlacementSpread places each pod on the node with the most free
	// millicores — the Kubernetes LeastAllocated default. Spreading
	// minimizes same-function co-location, and with it interference, at
	// the price of fragmenting free capacity across nodes.
	PlacementSpread Placement = iota
	// PlacementFirstFit places each pod on the lowest-ID node that fits —
	// bin-packing-style consolidation. Packed nodes concentrate
	// co-location (more interference for tenants sharing functions) but
	// keep whole nodes free for large allocations.
	PlacementFirstFit
)

// String names the policy for experiment output.
func (p Placement) String() string {
	switch p {
	case PlacementSpread:
		return "spread"
	case PlacementFirstFit:
		return "first-fit"
	default:
		return fmt.Sprintf("placement(%d)", int(p))
	}
}

// Config sizes the simulated cluster.
type Config struct {
	// Nodes is the number of worker nodes (VMs).
	Nodes int
	// NodeMillicores is each node's allocatable CPU (the paper's platform
	// server has 52 physical cores).
	NodeMillicores int
	// PoolSize is the number of warm pods kept per function per the pool
	// manager; 0 disables pre-warming.
	PoolSize int
	// IdleMillicores is the allocation a warm idle pod reserves.
	IdleMillicores int
	// Placement is the pod placement policy; the zero value is
	// PlacementSpread, the behavior single-node clusters degenerate to.
	Placement Placement
}

// DefaultConfig mirrors the paper's single 52-core platform server with a
// per-function warm pool of three pods.
func DefaultConfig() Config {
	return Config{Nodes: 1, NodeMillicores: 52000, PoolSize: 3, IdleMillicores: 100}
}

func (c Config) validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("cluster: Nodes must be positive, got %d", c.Nodes)
	}
	if c.NodeMillicores <= 0 {
		return fmt.Errorf("cluster: NodeMillicores must be positive, got %d", c.NodeMillicores)
	}
	if c.PoolSize < 0 {
		return fmt.Errorf("cluster: PoolSize must be >= 0, got %d", c.PoolSize)
	}
	if c.IdleMillicores < 0 {
		return fmt.Errorf("cluster: IdleMillicores must be >= 0, got %d", c.IdleMillicores)
	}
	if c.Placement != PlacementSpread && c.Placement != PlacementFirstFit {
		return fmt.Errorf("cluster: unknown placement policy %d", int(c.Placement))
	}
	return nil
}

// Pod is a function instance. Pods are created by the cluster; callers
// resize, acquire, and release them through cluster methods.
type Pod struct {
	// ID is unique across the cluster's lifetime.
	ID int
	// Function is the deployed function this pod is specialized for.
	Function string
	// NodeID is the hosting node.
	NodeID int

	millicores int
	busy       bool
	// fnIdx is the dense index Deploy assigned to Function, so the busy
	// census is integer-indexed rather than keyed by name on the hot path.
	fnIdx int
}

// Millicores reports the pod's current CPU allocation.
func (p *Pod) Millicores() int { return p.millicores }

// Busy reports whether the pod is executing.
func (p *Pod) Busy() bool { return p.busy }

type node struct {
	id        int
	capacity  int
	allocated int
	pods      map[int]*Pod
	// busyPods and busyByFn are incrementally maintained censuses: the
	// node's executing-pod count and its per-function breakdown (indexed
	// by the dense function index). They make Colocated, NodeColocated,
	// and NodeBusyPods O(1) reads instead of scans over pods.
	busyPods int
	busyByFn []int
}

// Cluster tracks nodes, pods, and warm pools. It is not safe for concurrent
// use; the discrete-event executor drives it from a single goroutine.
type Cluster struct {
	cfg    Config
	nodes  []*node
	nextID int
	// pools maps function -> idle warm pod IDs (LIFO for cache warmth).
	pools map[string][]*Pod
	// targets maps function -> warm-pool target depth. Deploy initializes
	// every function to Config.PoolSize; SetPoolTarget lets an elastic
	// controller resize pools per function mid-run.
	targets map[string]int
	// grown/shrunk count pool-churn pods: warm pods built by scale-up
	// (each paying a cold start before it is usable) and idle pods
	// destroyed by scale-down.
	grown, shrunk int

	// The indexed state below is derived from nodes/pods and maintained
	// incrementally at every mutation, so census and placement reads cost
	// O(1) (O(log nodes) for placement) regardless of fleet size.
	//
	// fnIdx assigns each deployed function a dense integer; fnSorted
	// mirrors pools' keys in sorted order for Functions().
	fnIdx    map[string]int
	fnSorted []string
	// free indexes per-node free millicores for pickNode.
	free *freeIndex
	// totalPods and busyByFn are cluster-wide running totals: all hosted
	// pods, and executing pods per dense function index.
	totalPods int
	busyByFn  []int
	// gen counts the mutations that can move any function's
	// AcquireThreshold — allocation changes and pool-membership changes.
	// Callers caching thresholds (the serving plane's park-queue wake)
	// revalidate against it instead of recomputing per probe: an
	// unchanged generation proves every cached threshold still exact,
	// because a failed Acquire mutates nothing.
	gen uint64
}

// New builds a cluster.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:     cfg,
		pools:   make(map[string][]*Pod),
		targets: make(map[string]int),
		fnIdx:   make(map[string]int),
		free:    newFreeIndex(cfg.Nodes),
	}
	for i := 0; i < cfg.Nodes; i++ {
		c.nodes = append(c.nodes, &node{id: i, capacity: cfg.NodeMillicores, pods: make(map[int]*Pod)})
		c.free.set(i, cfg.NodeMillicores)
	}
	return c, nil
}

// setAllocated is the single mutation point for a node's millicore
// accounting; it keeps the free-capacity index honest.
func (c *Cluster) setAllocated(n *node, delta int) {
	n.allocated += delta
	c.free.set(n.id, n.capacity-n.allocated)
	c.gen++
}

// setBusy is the single mutation point for a pod's busy bit; it keeps the
// node and cluster censuses honest.
func (c *Cluster) setBusy(pod *Pod, busy bool) {
	if pod.busy == busy {
		return
	}
	pod.busy = busy
	n := c.nodes[pod.NodeID]
	d := 1
	if !busy {
		d = -1
	}
	n.busyPods += d
	n.busyByFn[pod.fnIdx] += d
	c.busyByFn[pod.fnIdx] += d
}

// Deploy pre-warms PoolSize pods for the function, spreading them across
// nodes with the most free capacity first.
func (c *Cluster) Deploy(function string) error {
	if function == "" {
		return fmt.Errorf("cluster: Deploy requires a function name")
	}
	if _, ok := c.pools[function]; ok {
		return fmt.Errorf("cluster: %s already deployed", function)
	}
	c.pools[function] = nil
	c.targets[function] = c.cfg.PoolSize
	c.gen++ // the function's threshold moves from 0 to the free max
	c.fnIdx[function] = len(c.fnIdx)
	c.busyByFn = append(c.busyByFn, 0)
	for _, n := range c.nodes {
		n.busyByFn = append(n.busyByFn, 0)
	}
	at := sort.SearchStrings(c.fnSorted, function)
	c.fnSorted = append(c.fnSorted, "")
	copy(c.fnSorted[at+1:], c.fnSorted[at:])
	c.fnSorted[at] = function
	for i := 0; i < c.cfg.PoolSize; i++ {
		pod, err := c.createPod(function, c.cfg.IdleMillicores)
		if err != nil {
			return fmt.Errorf("cluster: pre-warming %s: %w", function, err)
		}
		c.pools[function] = append(c.pools[function], pod)
	}
	return nil
}

// Deployed reports whether the function has a pool.
func (c *Cluster) Deployed(function string) bool {
	_, ok := c.pools[function]
	return ok
}

func (c *Cluster) createPod(function string, millicores int) (*Pod, error) {
	n := c.pickNode(millicores)
	if n == nil {
		return nil, ErrNoCapacity
	}
	c.nextID++
	pod := &Pod{ID: c.nextID, Function: function, NodeID: n.id, millicores: millicores, fnIdx: c.fnIdx[function]}
	n.pods[pod.ID] = pod
	c.setAllocated(n, millicores)
	c.totalPods++
	return pod, nil
}

// pickNode returns the node the configured placement policy selects for a
// request, or nil when no node fits. Both policies prefer lower IDs on
// ties for determinism; the free-capacity index answers both queries in
// O(log nodes) with tie-breaking identical to the original left-to-right
// scan (see freeIndex).
func (c *Cluster) pickNode(millicores int) *node {
	var id int
	if c.cfg.Placement == PlacementFirstFit {
		id = c.free.firstFit(millicores)
	} else { // PlacementSpread
		id = c.free.spread(millicores)
	}
	if id < 0 {
		return nil
	}
	return c.nodes[id]
}

// Acquire takes a pod for one execution of the function at the given
// allocation. It returns the pod and whether the start was cold (no warm
// pod available). Resizing a warm pod is part of acquisition.
func (c *Cluster) Acquire(function string, millicores int) (*Pod, bool, error) {
	if millicores <= 0 {
		return nil, false, fmt.Errorf("cluster: Acquire %s with non-positive millicores %d", function, millicores)
	}
	pool, ok := c.pools[function]
	if !ok {
		return nil, false, fmt.Errorf("cluster: %s not deployed", function)
	}
	if len(pool) > 0 {
		pod := pool[len(pool)-1]
		// Peek before popping: when the pod's node cannot grow it to the
		// requested size, the pop/Resize/push-back cycle nets out to no
		// state change, so skip it (this is the path every parked
		// acquisition retries on every release during saturation).
		if n := c.nodes[pod.NodeID]; n.allocated+millicores-pod.millicores > n.capacity {
			return nil, false, ErrNoCapacity
		}
		c.pools[function] = pool[:len(pool)-1]
		if err := c.Resize(pod, millicores); err != nil {
			// Undo the pop before reporting: the pod stays warm.
			c.pools[function] = append(c.pools[function], pod)
			return nil, false, err
		}
		c.setBusy(pod, true)
		return pod, false, nil
	}
	pod, err := c.createPod(function, millicores)
	if err != nil {
		return nil, false, err
	}
	c.setBusy(pod, true)
	return pod, true, nil
}

// AcquireThreshold reports the largest allocation Acquire(function, ·)
// would currently succeed for — 0 when the function is unknown or nothing
// fits. Exact and O(1): a non-empty warm pool serves from its top pod, so
// the threshold is that pod's node headroom plus the pod's current
// allocation; an empty pool cold-starts wherever the free-capacity
// index's maximum allows. The serving plane's parked-acquisition scan
// uses it to skip certain-failure retries without paying the attempt.
func (c *Cluster) AcquireThreshold(function string) int {
	pool, ok := c.pools[function]
	if !ok {
		return 0
	}
	if len(pool) > 0 {
		pod := pool[len(pool)-1]
		n := c.nodes[pod.NodeID]
		return n.capacity - n.allocated + pod.millicores
	}
	return c.free.max()
}

// Gen reports the cluster's mutation generation: it moves whenever any
// function's AcquireThreshold may have moved, and holds still otherwise
// (in particular across failed Acquires, which mutate nothing). Callers
// may cache AcquireThreshold results keyed by this value.
func (c *Cluster) Gen() uint64 { return c.gen }

// Resize changes a pod's allocation in place (the late-binding primitive:
// Janus resizes the next function's pod right before it runs).
func (c *Cluster) Resize(pod *Pod, millicores int) error {
	if millicores <= 0 {
		return fmt.Errorf("cluster: Resize to non-positive millicores %d", millicores)
	}
	n := c.nodes[pod.NodeID]
	delta := millicores - pod.millicores
	if n.allocated+delta > n.capacity {
		return ErrNoCapacity
	}
	c.setAllocated(n, delta)
	pod.millicores = millicores
	return nil
}

// Release returns a pod to its function's warm pool, shrinking it to the
// idle allocation. Pools at or beyond the function's target depth (set by
// Deploy to Config.PoolSize, adjustable via SetPoolTarget) are trimmed by
// destroying the pod.
func (c *Cluster) Release(pod *Pod) error {
	if !pod.busy {
		return fmt.Errorf("cluster: Release of idle pod %d", pod.ID)
	}
	c.setBusy(pod, false)
	if len(c.pools[pod.Function]) >= c.targets[pod.Function] {
		return c.destroy(pod)
	}
	if err := c.Resize(pod, max(c.cfg.IdleMillicores, 1)); err != nil {
		return err
	}
	c.pools[pod.Function] = append(c.pools[pod.Function], pod)
	return nil
}

func (c *Cluster) destroy(pod *Pod) error {
	n := c.nodes[pod.NodeID]
	if _, ok := n.pods[pod.ID]; !ok {
		return fmt.Errorf("cluster: destroying unknown pod %d", pod.ID)
	}
	c.setBusy(pod, false)
	c.setAllocated(n, -pod.millicores)
	delete(n.pods, pod.ID)
	c.totalPods--
	return nil
}

// Colocated reports how many busy pods of the same function share the
// pod's node, including the pod itself — the census the interference model
// consumes. The incrementally maintained per-node counters make this an
// O(1) indexed read.
func (c *Cluster) Colocated(pod *Pod) int {
	return c.nodes[pod.NodeID].busyByFn[pod.fnIdx]
}

// Nodes reports the number of worker nodes.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// NodeAllocated reports a node's allocated millicores.
func (c *Cluster) NodeAllocated(nodeID int) int {
	return c.nodes[nodeID].allocated
}

// NodeCapacity reports a node's total millicores.
func (c *Cluster) NodeCapacity(nodeID int) int {
	return c.nodes[nodeID].capacity
}

// NodeFree reports a node's unallocated millicores — what the placement
// policies compare.
func (c *Cluster) NodeFree(nodeID int) int {
	n := c.nodes[nodeID]
	return n.capacity - n.allocated
}

// NodePods reports how many pods (idle and busy) a node hosts.
func (c *Cluster) NodePods(nodeID int) int {
	return len(c.nodes[nodeID].pods)
}

// NodeBusyPods reports how many of a node's pods are executing — the
// occupancy the placement policies trade against co-location interference.
func (c *Cluster) NodeBusyPods(nodeID int) int {
	return c.nodes[nodeID].busyPods
}

// NodeColocated reports a node's busy-instance census for one function —
// the per-placement quantity Colocated reads for a hosted pod, exposed by
// node so experiment reports can break occupancy down without a pod in
// hand. Undeployed functions have no pods, so their census is zero.
func (c *Cluster) NodeColocated(nodeID int, function string) int {
	idx, ok := c.fnIdx[function]
	if !ok {
		return 0
	}
	return c.nodes[nodeID].busyByFn[idx]
}

// BusyPods reports the cluster-wide executing-pod census for one function
// — the sum of NodeColocated over every node, maintained incrementally so
// per-tick telemetry does not scan the fleet.
func (c *Cluster) BusyPods(function string) int {
	idx, ok := c.fnIdx[function]
	if !ok {
		return 0
	}
	return c.busyByFn[idx]
}

// WarmPods reports the number of idle warm pods for the function.
func (c *Cluster) WarmPods(function string) int {
	return len(c.pools[function])
}

// TotalPods reports the number of pods (idle and busy) across all nodes —
// the live footprint pod-seconds accounting integrates every tick.
func (c *Cluster) TotalPods() int {
	return c.totalPods
}

// PoolTarget reports the function's warm-pool target depth.
func (c *Cluster) PoolTarget(function string) (int, error) {
	if _, ok := c.pools[function]; !ok {
		return 0, fmt.Errorf("cluster: %s not deployed", function)
	}
	return c.targets[function], nil
}

// SetPoolTarget changes the function's warm-pool target depth — the
// elastic-scaling primitive. Lowering the target takes effect lazily:
// Release trims returning pods down to it (surplus idle pods are shed
// with RemoveWarmPod). Raising it does not conjure warm pods: each new
// pod must be built with AddWarmPod after paying a cold start, which is
// the honest scale-up cost an autoscaler owes.
func (c *Cluster) SetPoolTarget(function string, target int) error {
	if _, ok := c.pools[function]; !ok {
		return fmt.Errorf("cluster: %s not deployed", function)
	}
	if target < 0 {
		return fmt.Errorf("cluster: pool target for %s must be >= 0, got %d", function, target)
	}
	c.targets[function] = target
	return nil
}

// AddWarmPod builds one idle warm pod for the function (scale-up landing
// after its cold-start delay) and counts it as pool churn. It fails when
// no node has the idle allocation free — the controller's growth simply
// does not land on a full cluster.
func (c *Cluster) AddWarmPod(function string) (*Pod, error) {
	if _, ok := c.pools[function]; !ok {
		return nil, fmt.Errorf("cluster: %s not deployed", function)
	}
	pod, err := c.createPod(function, max(c.cfg.IdleMillicores, 1))
	if err != nil {
		return nil, err
	}
	c.pools[function] = append(c.pools[function], pod)
	c.grown++
	return pod, nil
}

// RemoveWarmPod destroys one idle warm pod of the function (scale-down)
// and counts it as pool churn. It fails when the pool has no idle pod to
// shed; busy pods drain naturally — Release trims them against the
// lowered target.
func (c *Cluster) RemoveWarmPod(function string) error {
	pool, ok := c.pools[function]
	if !ok {
		return fmt.Errorf("cluster: %s not deployed", function)
	}
	if len(pool) == 0 {
		return fmt.Errorf("cluster: %s has no idle warm pod to remove", function)
	}
	pod := pool[len(pool)-1]
	c.pools[function] = pool[:len(pool)-1]
	if err := c.destroy(pod); err != nil {
		return err
	}
	c.shrunk++
	return nil
}

// PoolChurn reports the pods built by scale-up and destroyed by
// scale-down across the cluster's lifetime (AddWarmPod / RemoveWarmPod;
// Deploy pre-warming and Release trimming are not churn).
func (c *Cluster) PoolChurn() (grown, shrunk int) {
	return c.grown, c.shrunk
}

// Functions lists deployed function names, sorted. The returned slice is
// the caller's to keep.
func (c *Cluster) Functions() []string {
	out := make([]string, len(c.fnSorted))
	copy(out, c.fnSorted)
	return out
}
