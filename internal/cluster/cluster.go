// Package cluster simulates the serverless provider's execution substrate:
// a set of worker nodes (VMs) hosting function pods, in the style of
// Kubernetes with the Fission PoolManager executor the paper deploys on
// (§V-A). The pool manager keeps a pool of warm pods per function so that
// requests avoid cold starts; pods are specialized (a few milliseconds)
// when taken from the pool and cold-started (hundreds of milliseconds) when
// the pool is empty.
//
// The cluster owns millicore accounting per node and reports the live
// co-location census — how many instances of the same function are busy on
// a node — which is what drives the interference model at serving time.
// New pods land on nodes per a deterministic Placement policy (spread or
// first-fit), so where a pod runs — and therefore how much interference it
// sees — is a consequence of cluster state, not chance.
package cluster

import (
	"fmt"
	"sort"
)

// Placement selects the node a new pod lands on. Both policies are
// deterministic (ties break toward lower node IDs) so discrete-event runs
// replay byte for byte.
type Placement int

const (
	// PlacementSpread places each pod on the node with the most free
	// millicores — the Kubernetes LeastAllocated default. Spreading
	// minimizes same-function co-location, and with it interference, at
	// the price of fragmenting free capacity across nodes.
	PlacementSpread Placement = iota
	// PlacementFirstFit places each pod on the lowest-ID node that fits —
	// bin-packing-style consolidation. Packed nodes concentrate
	// co-location (more interference for tenants sharing functions) but
	// keep whole nodes free for large allocations.
	PlacementFirstFit
)

// String names the policy for experiment output.
func (p Placement) String() string {
	switch p {
	case PlacementSpread:
		return "spread"
	case PlacementFirstFit:
		return "first-fit"
	default:
		return fmt.Sprintf("placement(%d)", int(p))
	}
}

// Config sizes the simulated cluster.
type Config struct {
	// Nodes is the number of worker nodes (VMs).
	Nodes int
	// NodeMillicores is each node's allocatable CPU (the paper's platform
	// server has 52 physical cores).
	NodeMillicores int
	// PoolSize is the number of warm pods kept per function per the pool
	// manager; 0 disables pre-warming.
	PoolSize int
	// IdleMillicores is the allocation a warm idle pod reserves.
	IdleMillicores int
	// Placement is the pod placement policy; the zero value is
	// PlacementSpread, the behavior single-node clusters degenerate to.
	Placement Placement
}

// DefaultConfig mirrors the paper's single 52-core platform server with a
// per-function warm pool of three pods.
func DefaultConfig() Config {
	return Config{Nodes: 1, NodeMillicores: 52000, PoolSize: 3, IdleMillicores: 100}
}

func (c Config) validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("cluster: Nodes must be positive, got %d", c.Nodes)
	}
	if c.NodeMillicores <= 0 {
		return fmt.Errorf("cluster: NodeMillicores must be positive, got %d", c.NodeMillicores)
	}
	if c.PoolSize < 0 {
		return fmt.Errorf("cluster: PoolSize must be >= 0, got %d", c.PoolSize)
	}
	if c.IdleMillicores < 0 {
		return fmt.Errorf("cluster: IdleMillicores must be >= 0, got %d", c.IdleMillicores)
	}
	if c.Placement != PlacementSpread && c.Placement != PlacementFirstFit {
		return fmt.Errorf("cluster: unknown placement policy %d", int(c.Placement))
	}
	return nil
}

// Pod is a function instance. Pods are created by the cluster; callers
// resize, acquire, and release them through cluster methods.
type Pod struct {
	// ID is unique across the cluster's lifetime.
	ID int
	// Function is the deployed function this pod is specialized for.
	Function string
	// NodeID is the hosting node.
	NodeID int

	millicores int
	busy       bool
}

// Millicores reports the pod's current CPU allocation.
func (p *Pod) Millicores() int { return p.millicores }

// Busy reports whether the pod is executing.
func (p *Pod) Busy() bool { return p.busy }

type node struct {
	id        int
	capacity  int
	allocated int
	pods      map[int]*Pod
}

// Cluster tracks nodes, pods, and warm pools. It is not safe for concurrent
// use; the discrete-event executor drives it from a single goroutine.
type Cluster struct {
	cfg    Config
	nodes  []*node
	nextID int
	// pools maps function -> idle warm pod IDs (LIFO for cache warmth).
	pools map[string][]*Pod
	// targets maps function -> warm-pool target depth. Deploy initializes
	// every function to Config.PoolSize; SetPoolTarget lets an elastic
	// controller resize pools per function mid-run.
	targets map[string]int
	// grown/shrunk count pool-churn pods: warm pods built by scale-up
	// (each paying a cold start before it is usable) and idle pods
	// destroyed by scale-down.
	grown, shrunk int
}

// New builds a cluster.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, pools: make(map[string][]*Pod), targets: make(map[string]int)}
	for i := 0; i < cfg.Nodes; i++ {
		c.nodes = append(c.nodes, &node{id: i, capacity: cfg.NodeMillicores, pods: make(map[int]*Pod)})
	}
	return c, nil
}

// Deploy pre-warms PoolSize pods for the function, spreading them across
// nodes with the most free capacity first.
func (c *Cluster) Deploy(function string) error {
	if function == "" {
		return fmt.Errorf("cluster: Deploy requires a function name")
	}
	if _, ok := c.pools[function]; ok {
		return fmt.Errorf("cluster: %s already deployed", function)
	}
	c.pools[function] = nil
	c.targets[function] = c.cfg.PoolSize
	for i := 0; i < c.cfg.PoolSize; i++ {
		pod, err := c.createPod(function, c.cfg.IdleMillicores)
		if err != nil {
			return fmt.Errorf("cluster: pre-warming %s: %w", function, err)
		}
		c.pools[function] = append(c.pools[function], pod)
	}
	return nil
}

// Deployed reports whether the function has a pool.
func (c *Cluster) Deployed(function string) bool {
	_, ok := c.pools[function]
	return ok
}

func (c *Cluster) createPod(function string, millicores int) (*Pod, error) {
	n := c.pickNode(millicores)
	if n == nil {
		return nil, fmt.Errorf("cluster: no node with %d free millicores for %s", millicores, function)
	}
	c.nextID++
	pod := &Pod{ID: c.nextID, Function: function, NodeID: n.id, millicores: millicores}
	n.pods[pod.ID] = pod
	n.allocated += millicores
	return pod, nil
}

// pickNode returns the node the configured placement policy selects for a
// request, or nil when no node fits. Both policies prefer lower IDs on
// ties for determinism.
func (c *Cluster) pickNode(millicores int) *node {
	var best *node
	for _, n := range c.nodes {
		free := n.capacity - n.allocated
		if free < millicores {
			continue
		}
		switch c.cfg.Placement {
		case PlacementFirstFit:
			return n
		default: // PlacementSpread
			if best == nil || free > best.capacity-best.allocated {
				best = n
			}
		}
	}
	return best
}

// Acquire takes a pod for one execution of the function at the given
// allocation. It returns the pod and whether the start was cold (no warm
// pod available). Resizing a warm pod is part of acquisition.
func (c *Cluster) Acquire(function string, millicores int) (*Pod, bool, error) {
	if millicores <= 0 {
		return nil, false, fmt.Errorf("cluster: Acquire %s with non-positive millicores %d", function, millicores)
	}
	pool, ok := c.pools[function]
	if !ok {
		return nil, false, fmt.Errorf("cluster: %s not deployed", function)
	}
	if len(pool) > 0 {
		pod := pool[len(pool)-1]
		c.pools[function] = pool[:len(pool)-1]
		if err := c.Resize(pod, millicores); err != nil {
			// Undo the pop before reporting: the pod stays warm.
			c.pools[function] = append(c.pools[function], pod)
			return nil, false, err
		}
		pod.busy = true
		return pod, false, nil
	}
	pod, err := c.createPod(function, millicores)
	if err != nil {
		return nil, false, err
	}
	pod.busy = true
	return pod, true, nil
}

// Resize changes a pod's allocation in place (the late-binding primitive:
// Janus resizes the next function's pod right before it runs).
func (c *Cluster) Resize(pod *Pod, millicores int) error {
	if millicores <= 0 {
		return fmt.Errorf("cluster: Resize to non-positive millicores %d", millicores)
	}
	n := c.nodes[pod.NodeID]
	delta := millicores - pod.millicores
	if n.allocated+delta > n.capacity {
		return fmt.Errorf("cluster: node %d cannot grow pod %d by %d millicores (allocated %d / %d)",
			n.id, pod.ID, delta, n.allocated, n.capacity)
	}
	n.allocated += delta
	pod.millicores = millicores
	return nil
}

// Release returns a pod to its function's warm pool, shrinking it to the
// idle allocation. Pools at or beyond the function's target depth (set by
// Deploy to Config.PoolSize, adjustable via SetPoolTarget) are trimmed by
// destroying the pod.
func (c *Cluster) Release(pod *Pod) error {
	if !pod.busy {
		return fmt.Errorf("cluster: Release of idle pod %d", pod.ID)
	}
	pod.busy = false
	if len(c.pools[pod.Function]) >= c.targets[pod.Function] {
		return c.destroy(pod)
	}
	if err := c.Resize(pod, max(c.cfg.IdleMillicores, 1)); err != nil {
		return err
	}
	c.pools[pod.Function] = append(c.pools[pod.Function], pod)
	return nil
}

func (c *Cluster) destroy(pod *Pod) error {
	n := c.nodes[pod.NodeID]
	if _, ok := n.pods[pod.ID]; !ok {
		return fmt.Errorf("cluster: destroying unknown pod %d", pod.ID)
	}
	n.allocated -= pod.millicores
	delete(n.pods, pod.ID)
	return nil
}

// Colocated reports how many busy pods of the same function share the
// pod's node, including the pod itself — the census the interference model
// consumes.
func (c *Cluster) Colocated(pod *Pod) int {
	n := c.nodes[pod.NodeID]
	count := 0
	for _, other := range n.pods {
		if other.Function == pod.Function && other.busy {
			count++
		}
	}
	return count
}

// Nodes reports the number of worker nodes.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// NodeAllocated reports a node's allocated millicores.
func (c *Cluster) NodeAllocated(nodeID int) int {
	return c.nodes[nodeID].allocated
}

// NodeCapacity reports a node's total millicores.
func (c *Cluster) NodeCapacity(nodeID int) int {
	return c.nodes[nodeID].capacity
}

// NodeFree reports a node's unallocated millicores — what the placement
// policies compare.
func (c *Cluster) NodeFree(nodeID int) int {
	n := c.nodes[nodeID]
	return n.capacity - n.allocated
}

// NodePods reports how many pods (idle and busy) a node hosts.
func (c *Cluster) NodePods(nodeID int) int {
	return len(c.nodes[nodeID].pods)
}

// NodeBusyPods reports how many of a node's pods are executing — the
// occupancy the placement policies trade against co-location interference.
func (c *Cluster) NodeBusyPods(nodeID int) int {
	count := 0
	for _, p := range c.nodes[nodeID].pods {
		if p.busy {
			count++
		}
	}
	return count
}

// NodeColocated reports a node's busy-instance census for one function —
// the per-placement quantity Colocated reads for a hosted pod, exposed by
// node so experiment reports can break occupancy down without a pod in
// hand.
func (c *Cluster) NodeColocated(nodeID int, function string) int {
	count := 0
	for _, p := range c.nodes[nodeID].pods {
		if p.Function == function && p.busy {
			count++
		}
	}
	return count
}

// WarmPods reports the number of idle warm pods for the function.
func (c *Cluster) WarmPods(function string) int {
	return len(c.pools[function])
}

// TotalPods reports the number of pods (idle and busy) across all nodes —
// the live footprint pod-seconds accounting integrates.
func (c *Cluster) TotalPods() int {
	total := 0
	for _, n := range c.nodes {
		total += len(n.pods)
	}
	return total
}

// PoolTarget reports the function's warm-pool target depth.
func (c *Cluster) PoolTarget(function string) (int, error) {
	if _, ok := c.pools[function]; !ok {
		return 0, fmt.Errorf("cluster: %s not deployed", function)
	}
	return c.targets[function], nil
}

// SetPoolTarget changes the function's warm-pool target depth — the
// elastic-scaling primitive. Lowering the target takes effect lazily:
// Release trims returning pods down to it (surplus idle pods are shed
// with RemoveWarmPod). Raising it does not conjure warm pods: each new
// pod must be built with AddWarmPod after paying a cold start, which is
// the honest scale-up cost an autoscaler owes.
func (c *Cluster) SetPoolTarget(function string, target int) error {
	if _, ok := c.pools[function]; !ok {
		return fmt.Errorf("cluster: %s not deployed", function)
	}
	if target < 0 {
		return fmt.Errorf("cluster: pool target for %s must be >= 0, got %d", function, target)
	}
	c.targets[function] = target
	return nil
}

// AddWarmPod builds one idle warm pod for the function (scale-up landing
// after its cold-start delay) and counts it as pool churn. It fails when
// no node has the idle allocation free — the controller's growth simply
// does not land on a full cluster.
func (c *Cluster) AddWarmPod(function string) (*Pod, error) {
	if _, ok := c.pools[function]; !ok {
		return nil, fmt.Errorf("cluster: %s not deployed", function)
	}
	pod, err := c.createPod(function, max(c.cfg.IdleMillicores, 1))
	if err != nil {
		return nil, err
	}
	c.pools[function] = append(c.pools[function], pod)
	c.grown++
	return pod, nil
}

// RemoveWarmPod destroys one idle warm pod of the function (scale-down)
// and counts it as pool churn. It fails when the pool has no idle pod to
// shed; busy pods drain naturally — Release trims them against the
// lowered target.
func (c *Cluster) RemoveWarmPod(function string) error {
	pool, ok := c.pools[function]
	if !ok {
		return fmt.Errorf("cluster: %s not deployed", function)
	}
	if len(pool) == 0 {
		return fmt.Errorf("cluster: %s has no idle warm pod to remove", function)
	}
	pod := pool[len(pool)-1]
	c.pools[function] = pool[:len(pool)-1]
	if err := c.destroy(pod); err != nil {
		return err
	}
	c.shrunk++
	return nil
}

// PoolChurn reports the pods built by scale-up and destroyed by
// scale-down across the cluster's lifetime (AddWarmPod / RemoveWarmPod;
// Deploy pre-warming and Release trimming are not churn).
func (c *Cluster) PoolChurn() (grown, shrunk int) {
	return c.grown, c.shrunk
}

// Functions lists deployed function names, sorted.
func (c *Cluster) Functions() []string {
	out := make([]string, 0, len(c.pools))
	for f := range c.pools {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}
