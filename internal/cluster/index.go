package cluster

// freeIndex is a segment tree over node IDs holding the maximum free
// millicores in each subtree. It answers both placement policies in
// O(log nodes) with exactly the linear scan's tie-breaking:
//
//   - spread: descend toward the larger child, preferring the left child
//     on ties. The leaf reached is the lowest-ID node with maximum free
//     capacity — the same node a left-to-right scan keeping the first
//     strict maximum returns (any node that cannot fit the request also
//     cannot be the maximum once the root proves some node fits).
//   - first-fit: descend into the leftmost subtree whose max fits. The
//     leaf reached is the lowest-ID node with free >= mc, the node a
//     left-to-right scan returns first.
//
// Padding leaves beyond the real node count hold -1 so they never win
// either descent (free capacity is always >= 0).
type freeIndex struct {
	base int   // leaf count, first power of two >= nodes
	tree []int // 1-based heap layout; tree[base+id] is node id's free mc
}

func newFreeIndex(nodes int) *freeIndex {
	base := 1
	for base < nodes {
		base <<= 1
	}
	ix := &freeIndex{base: base, tree: make([]int, 2*base)}
	for i := range ix.tree {
		ix.tree[i] = -1
	}
	return ix
}

// set records node id's free millicores and repairs ancestors, stopping
// as soon as an ancestor's max is unchanged.
func (ix *freeIndex) set(id, free int) {
	i := ix.base + id
	ix.tree[i] = free
	for i >>= 1; i >= 1; i >>= 1 {
		m := ix.tree[2*i]
		if ix.tree[2*i+1] > m {
			m = ix.tree[2*i+1]
		}
		if ix.tree[i] == m {
			break
		}
		ix.tree[i] = m
	}
}

// max returns the largest free capacity on any node — the root. Both
// descents return -1 exactly when max() < mc, which is what makes
// AcquireThreshold's cold-start bound exact.
func (ix *freeIndex) max() int { return ix.tree[1] }

// spread returns the lowest-ID node with maximum free capacity, or -1
// when even that node has less than mc free.
func (ix *freeIndex) spread(mc int) int {
	if ix.tree[1] < mc {
		return -1
	}
	i := 1
	for i < ix.base {
		if ix.tree[2*i] >= ix.tree[2*i+1] {
			i = 2 * i
		} else {
			i = 2*i + 1
		}
	}
	return i - ix.base
}

// firstFit returns the lowest-ID node with at least mc free, or -1.
func (ix *freeIndex) firstFit(mc int) int {
	if ix.tree[1] < mc {
		return -1
	}
	i := 1
	for i < ix.base {
		if ix.tree[2*i] >= mc {
			i = 2 * i
		} else {
			i = 2*i + 1
		}
	}
	return i - ix.base
}
