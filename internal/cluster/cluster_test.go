package cluster

import (
	"strings"
	"testing"
)

func mustCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func small(t *testing.T) *Cluster {
	c := mustCluster(t, Config{Nodes: 1, NodeMillicores: 10000, PoolSize: 2, IdleMillicores: 100})
	if err := c.Deploy("f"); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		cfg    Config
		errHas string
	}{
		{"no nodes", Config{Nodes: 0, NodeMillicores: 1000}, "Nodes"},
		{"no cores", Config{Nodes: 1, NodeMillicores: 0}, "NodeMillicores"},
		{"negative pool", Config{Nodes: 1, NodeMillicores: 1000, PoolSize: -1}, "PoolSize"},
		{"negative idle", Config{Nodes: 1, NodeMillicores: 1000, IdleMillicores: -1}, "IdleMillicores"},
	}
	for _, c := range cases {
		if _, err := New(c.cfg); err == nil || !strings.Contains(err.Error(), c.errHas) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.errHas)
		}
	}
}

func TestDeployPreWarms(t *testing.T) {
	c := small(t)
	if got := c.WarmPods("f"); got != 2 {
		t.Fatalf("WarmPods = %d, want 2", got)
	}
	if got := c.NodeAllocated(0); got != 200 {
		t.Fatalf("idle allocation = %d, want 200", got)
	}
	if !c.Deployed("f") || c.Deployed("g") {
		t.Fatal("Deployed() wrong")
	}
}

func TestDeployValidation(t *testing.T) {
	c := small(t)
	if err := c.Deploy(""); err == nil {
		t.Fatal("empty function name accepted")
	}
	if err := c.Deploy("f"); err == nil {
		t.Fatal("double deploy accepted")
	}
}

func TestAcquireWarmThenCold(t *testing.T) {
	c := small(t)
	p1, cold, err := c.Acquire("f", 1000)
	if err != nil || cold {
		t.Fatalf("first acquire: cold=%v err=%v, want warm", cold, err)
	}
	if p1.Millicores() != 1000 || !p1.Busy() {
		t.Fatalf("pod state = %d mc busy=%v", p1.Millicores(), p1.Busy())
	}
	if _, cold, err = c.Acquire("f", 1000); err != nil || cold {
		t.Fatalf("second acquire should still be warm: cold=%v err=%v", cold, err)
	}
	if _, cold, err = c.Acquire("f", 1000); err != nil || !cold {
		t.Fatalf("third acquire should be cold: cold=%v err=%v", cold, err)
	}
}

func TestAcquireErrors(t *testing.T) {
	c := small(t)
	if _, _, err := c.Acquire("g", 1000); err == nil {
		t.Fatal("acquire of undeployed function accepted")
	}
	if _, _, err := c.Acquire("f", 0); err == nil {
		t.Fatal("acquire with zero millicores accepted")
	}
}

func TestAcquireCapacityExhaustion(t *testing.T) {
	c := mustCluster(t, Config{Nodes: 1, NodeMillicores: 2500, PoolSize: 1, IdleMillicores: 100})
	if err := c.Deploy("f"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Acquire("f", 2000); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Acquire("f", 2000); err == nil {
		t.Fatal("over-capacity acquire accepted")
	}
	// A warm pod that cannot be resized stays in the pool.
	c2 := mustCluster(t, Config{Nodes: 1, NodeMillicores: 500, PoolSize: 1, IdleMillicores: 100})
	if err := c2.Deploy("g"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c2.Acquire("g", 1000); err == nil {
		t.Fatal("resize beyond node capacity accepted")
	}
	if c2.WarmPods("g") != 1 {
		t.Fatal("failed acquire leaked the warm pod")
	}
}

func TestReleaseReturnsToPool(t *testing.T) {
	c := small(t)
	p, _, err := c.Acquire("f", 3000)
	if err != nil {
		t.Fatal(err)
	}
	before := c.NodeAllocated(0)
	if err := c.Release(p); err != nil {
		t.Fatal(err)
	}
	if c.WarmPods("f") != 2 {
		t.Fatalf("WarmPods = %d, want 2", c.WarmPods("f"))
	}
	if p.Busy() {
		t.Fatal("released pod still busy")
	}
	if got := c.NodeAllocated(0); got >= before {
		t.Fatalf("release did not shrink allocation: %d -> %d", before, got)
	}
}

func TestReleaseTrimsBeyondPoolSize(t *testing.T) {
	c := small(t)
	// Drain the pool and cold-start one extra.
	var pods []*Pod
	for i := 0; i < 3; i++ {
		p, _, err := c.Acquire("f", 500)
		if err != nil {
			t.Fatal(err)
		}
		pods = append(pods, p)
	}
	for _, p := range pods {
		if err := c.Release(p); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.WarmPods("f"); got != 2 {
		t.Fatalf("pool grew beyond PoolSize: %d", got)
	}
	// All remaining allocation is idle pods only.
	if got := c.NodeAllocated(0); got != 200 {
		t.Fatalf("allocation after trim = %d, want 200", got)
	}
}

func TestReleaseIdlePodFails(t *testing.T) {
	c := small(t)
	p, _, err := c.Acquire("f", 500)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Release(p); err != nil {
		t.Fatal(err)
	}
	if err := c.Release(p); err == nil {
		t.Fatal("double release accepted")
	}
}

func TestResizeAccounting(t *testing.T) {
	c := small(t)
	p, _, err := c.Acquire("f", 1000)
	if err != nil {
		t.Fatal(err)
	}
	base := c.NodeAllocated(0)
	if err := c.Resize(p, 2500); err != nil {
		t.Fatal(err)
	}
	if got := c.NodeAllocated(0); got != base+1500 {
		t.Fatalf("allocation after grow = %d, want %d", got, base+1500)
	}
	if err := c.Resize(p, 500); err != nil {
		t.Fatal(err)
	}
	if got := c.NodeAllocated(0); got != base-500 {
		t.Fatalf("allocation after shrink = %d, want %d", got, base-500)
	}
	if err := c.Resize(p, 0); err == nil {
		t.Fatal("resize to zero accepted")
	}
	if err := c.Resize(p, 100000); err == nil {
		t.Fatal("resize beyond capacity accepted")
	}
}

func TestColocatedCountsBusySameFunction(t *testing.T) {
	c := mustCluster(t, Config{Nodes: 1, NodeMillicores: 20000, PoolSize: 3, IdleMillicores: 100})
	for _, f := range []string{"f", "g"} {
		if err := c.Deploy(f); err != nil {
			t.Fatal(err)
		}
	}
	f1, _, _ := c.Acquire("f", 1000)
	f2, _, _ := c.Acquire("f", 1000)
	g1, _, _ := c.Acquire("g", 1000)
	if got := c.Colocated(f1); got != 2 {
		t.Fatalf("Colocated(f1) = %d, want 2", got)
	}
	if got := c.Colocated(g1); got != 1 {
		t.Fatalf("Colocated(g1) = %d, want 1", got)
	}
	if err := c.Release(f2); err != nil {
		t.Fatal(err)
	}
	if got := c.Colocated(f1); got != 1 {
		t.Fatalf("Colocated(f1) after release = %d, want 1", got)
	}
}

func TestMultiNodeSpreads(t *testing.T) {
	c := mustCluster(t, Config{Nodes: 2, NodeMillicores: 5000, PoolSize: 0, IdleMillicores: 100})
	if err := c.Deploy("f"); err != nil {
		t.Fatal(err)
	}
	p1, cold, err := c.Acquire("f", 3000)
	if err != nil || !cold {
		t.Fatalf("expected cold start, got cold=%v err=%v", cold, err)
	}
	p2, _, err := c.Acquire("f", 3000)
	if err != nil {
		t.Fatal(err)
	}
	if p1.NodeID == p2.NodeID {
		t.Fatal("pods not spread across nodes")
	}
	// Combined capacity exists but no single node fits 4000 more.
	if _, _, err := c.Acquire("f", 4000); err == nil {
		t.Fatal("fragmented capacity should not satisfy a 4000mc pod")
	}
}

func TestFirstFitPacksLowNodes(t *testing.T) {
	c := mustCluster(t, Config{Nodes: 3, NodeMillicores: 5000, PoolSize: 0, IdleMillicores: 100, Placement: PlacementFirstFit})
	if err := c.Deploy("f"); err != nil {
		t.Fatal(err)
	}
	p1, _, err := c.Acquire("f", 2000)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := c.Acquire("f", 2000)
	if err != nil {
		t.Fatal(err)
	}
	if p1.NodeID != 0 || p2.NodeID != 0 {
		t.Fatalf("first-fit should pack node 0, got nodes %d and %d", p1.NodeID, p2.NodeID)
	}
	// Node 0 has 1000 free: a 2000mc pod overflows to node 1.
	p3, _, err := c.Acquire("f", 2000)
	if err != nil {
		t.Fatal(err)
	}
	if p3.NodeID != 1 {
		t.Fatalf("overflow pod on node %d, want 1", p3.NodeID)
	}
	// Packing concentrates the same-function census on node 0.
	if got := c.Colocated(p1); got != 2 {
		t.Fatalf("Colocated(p1) = %d, want 2", got)
	}
}

func TestPlacementValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 1, NodeMillicores: 1000, Placement: Placement(7)}); err == nil ||
		!strings.Contains(err.Error(), "placement") {
		t.Fatalf("unknown placement accepted: %v", err)
	}
	if PlacementSpread.String() != "spread" || PlacementFirstFit.String() != "first-fit" {
		t.Fatalf("policy names = %q, %q", PlacementSpread, PlacementFirstFit)
	}
}

func TestNodeOccupancyAccounting(t *testing.T) {
	c := mustCluster(t, Config{Nodes: 2, NodeMillicores: 5000, PoolSize: 1, IdleMillicores: 100})
	if err := c.Deploy("f"); err != nil {
		t.Fatal(err)
	}
	if c.Nodes() != 2 {
		t.Fatalf("Nodes() = %d, want 2", c.Nodes())
	}
	// The single warm pod idles on one node; find it.
	warm := 0
	if c.NodePods(1) == 1 {
		warm = 1
	}
	if got := c.NodeBusyPods(warm); got != 0 {
		t.Fatalf("idle pod counted busy: %d", got)
	}
	p, _, err := c.Acquire("f", 3000)
	if err != nil {
		t.Fatal(err)
	}
	n := p.NodeID
	if got := c.NodeBusyPods(n); got != 1 {
		t.Fatalf("NodeBusyPods(%d) = %d, want 1", n, got)
	}
	if got := c.NodeColocated(n, "f"); got != 1 {
		t.Fatalf("NodeColocated(%d, f) = %d, want 1", n, got)
	}
	if got := c.NodeColocated(n, "g"); got != 0 {
		t.Fatalf("NodeColocated(%d, g) = %d, want 0", n, got)
	}
	if got := c.NodeFree(n); got != c.NodeCapacity(n)-c.NodeAllocated(n) {
		t.Fatalf("NodeFree(%d) = %d, inconsistent with capacity %d - allocated %d",
			n, got, c.NodeCapacity(n), c.NodeAllocated(n))
	}
}

func TestFunctionsSorted(t *testing.T) {
	c := mustCluster(t, DefaultConfig())
	for _, f := range []string{"zeta", "alpha", "mid"} {
		if err := c.Deploy(f); err != nil {
			t.Fatal(err)
		}
	}
	got := c.Functions()
	if len(got) != 3 || got[0] != "alpha" || got[2] != "zeta" {
		t.Fatalf("Functions() = %v", got)
	}
}

func TestDefaultConfigMatchesPaperTestbed(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.NodeMillicores != 52000 {
		t.Errorf("platform server should model 52 cores, got %d millicores", cfg.NodeMillicores)
	}
	if cfg.PoolSize == 0 {
		t.Error("pool manager should pre-warm pods (the paper picks PoolManager to avoid cold starts)")
	}
}

func TestPoolTargetDefaultsToConfig(t *testing.T) {
	c := small(t)
	tgt, err := c.PoolTarget("f")
	if err != nil || tgt != 2 {
		t.Fatalf("PoolTarget = %d, %v; want config PoolSize 2", tgt, err)
	}
	if _, err := c.PoolTarget("g"); err == nil {
		t.Fatal("PoolTarget for undeployed function accepted")
	}
}

func TestSetPoolTargetGovernsReleaseTrimming(t *testing.T) {
	c := small(t)
	if err := c.SetPoolTarget("f", 0); err != nil {
		t.Fatal(err)
	}
	// Shed the two pre-warmed idle pods, then check a released pod is
	// destroyed rather than pooled: target 0 means no warm pods survive.
	if err := c.RemoveWarmPod("f"); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveWarmPod("f"); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveWarmPod("f"); err == nil {
		t.Fatal("removed a warm pod from an empty pool")
	}
	pod, cold, err := c.Acquire("f", 1000)
	if err != nil || !cold {
		t.Fatalf("Acquire after shedding = cold %t, %v", cold, err)
	}
	if err := c.Release(pod); err != nil {
		t.Fatal(err)
	}
	if got := c.WarmPods("f"); got != 0 {
		t.Fatalf("released pod pooled despite target 0 (warm %d)", got)
	}
	if got := c.TotalPods(); got != 0 {
		t.Fatalf("TotalPods = %d, want 0", got)
	}
	// Raising the target lets Release refill the pool again.
	if err := c.SetPoolTarget("f", 1); err != nil {
		t.Fatal(err)
	}
	pod, _, err = c.Acquire("f", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Release(pod); err != nil {
		t.Fatal(err)
	}
	if got := c.WarmPods("f"); got != 1 {
		t.Fatalf("warm pods after refill = %d, want 1", got)
	}
}

func TestSetPoolTargetValidation(t *testing.T) {
	c := small(t)
	if err := c.SetPoolTarget("g", 1); err == nil {
		t.Fatal("target for undeployed function accepted")
	}
	if err := c.SetPoolTarget("f", -1); err == nil {
		t.Fatal("negative target accepted")
	}
}

func TestAddWarmPodBuildsAndAccounts(t *testing.T) {
	c := small(t)
	pod, err := c.AddWarmPod("f")
	if err != nil {
		t.Fatal(err)
	}
	if pod.Busy() {
		t.Fatal("scale-up pod born busy")
	}
	if got := c.WarmPods("f"); got != 3 {
		t.Fatalf("warm pods after AddWarmPod = %d, want 3", got)
	}
	grown, shrunk := c.PoolChurn()
	if grown != 1 || shrunk != 0 {
		t.Fatalf("churn after grow = %d/%d, want 1/0", grown, shrunk)
	}
	if err := c.RemoveWarmPod("f"); err != nil {
		t.Fatal(err)
	}
	grown, shrunk = c.PoolChurn()
	if grown != 1 || shrunk != 1 {
		t.Fatalf("churn after shrink = %d/%d, want 1/1", grown, shrunk)
	}
	if _, err := c.AddWarmPod("g"); err == nil {
		t.Fatal("AddWarmPod for undeployed function accepted")
	}
	if err := c.RemoveWarmPod("g"); err == nil {
		t.Fatal("RemoveWarmPod for undeployed function accepted")
	}
}

func TestAddWarmPodCapacityExhaustion(t *testing.T) {
	c := mustCluster(t, Config{Nodes: 1, NodeMillicores: 1000, PoolSize: 0, IdleMillicores: 400})
	if err := c.Deploy("f"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddWarmPod("f"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddWarmPod("f"); err != nil {
		t.Fatal(err)
	}
	// 800 of 1000 millicores reserved by idle pods: a third does not fit.
	if _, err := c.AddWarmPod("f"); err == nil {
		t.Fatal("scale-up landed beyond node capacity")
	}
	grown, _ := c.PoolChurn()
	if grown != 2 {
		t.Fatalf("failed grow counted as churn (grown %d)", grown)
	}
}

func TestTotalPodsCountsIdleAndBusy(t *testing.T) {
	c := small(t)
	if got := c.TotalPods(); got != 2 {
		t.Fatalf("TotalPods = %d, want the 2 pre-warmed", got)
	}
	pod, _, err := c.Acquire("f", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.TotalPods(); got != 2 {
		t.Fatalf("TotalPods after warm acquire = %d, want 2", got)
	}
	_ = pod
}

// TestGenTracksThresholdMutations pins the contract the serving plane's
// park index caches against: Gen moves whenever an allocation mutation
// may have moved some function's AcquireThreshold, and holds still
// across failed Acquires, which mutate nothing.
func TestGenTracksThresholdMutations(t *testing.T) {
	c := mustCluster(t, Config{Nodes: 1, NodeMillicores: 2500, PoolSize: 1, IdleMillicores: 100})
	g0 := c.Gen()
	if err := c.Deploy("f"); err != nil {
		t.Fatal(err)
	}
	g1 := c.Gen()
	if g1 <= g0 {
		t.Fatalf("Deploy left Gen at %d; pre-warming moves the threshold from 0", g1)
	}
	p, _, err := c.Acquire("f", 2000)
	if err != nil {
		t.Fatal(err)
	}
	g2 := c.Gen()
	if g2 <= g1 {
		t.Fatalf("successful Acquire left Gen at %d (was %d)", g2, g1)
	}
	if _, _, err := c.Acquire("f", 2000); err == nil {
		t.Fatal("over-capacity acquire accepted")
	}
	if got := c.Gen(); got != g2 {
		t.Fatalf("failed Acquire moved Gen %d -> %d; cached thresholds would be invalidated for nothing", g2, got)
	}
	if err := c.Release(p); err != nil {
		t.Fatal(err)
	}
	if got := c.Gen(); got <= g2 {
		t.Fatalf("Release left Gen at %d (was %d)", got, g2)
	}
}
