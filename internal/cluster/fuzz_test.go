package cluster

import (
	"fmt"
	"testing"
)

// FuzzClusterInvariants decodes an arbitrary byte tape into a cluster op
// sequence and recounts every piece of derived state from first
// principles after each op. The differential test pins the indexed
// cluster to the reference semantics on random-but-well-formed op
// sequences; the fuzzer's job is the adversarial tail — op orders,
// interleavings, and error paths no generator was written to produce. CI
// runs the checked-in corpus as a fixed regression suite; `go test
// -fuzz FuzzClusterInvariants ./internal/cluster/` explores further.

// checkClusterInvariants recomputes all incrementally maintained state
// and compares it with the live counters and the free-capacity index.
func checkClusterInvariants(c *Cluster) error {
	totalPods := 0
	clusterBusy := make([]int, len(c.busyByFn))
	for _, n := range c.nodes {
		allocated := 0
		busy := 0
		busyByFn := make([]int, len(n.busyByFn))
		for _, p := range n.pods {
			allocated += p.millicores
			if p.busy {
				busy++
				busyByFn[p.fnIdx]++
				clusterBusy[p.fnIdx]++
			}
		}
		if allocated != n.allocated {
			return fmt.Errorf("node %d: allocated %d, pods sum to %d", n.id, n.allocated, allocated)
		}
		if busy != n.busyPods {
			return fmt.Errorf("node %d: busyPods %d, recount %d", n.id, n.busyPods, busy)
		}
		for i := range busyByFn {
			if busyByFn[i] != n.busyByFn[i] {
				return fmt.Errorf("node %d: busyByFn[%d] = %d, recount %d", n.id, i, n.busyByFn[i], busyByFn[i])
			}
		}
		if got := c.free.tree[c.free.base+n.id]; got != n.capacity-n.allocated {
			return fmt.Errorf("node %d: free index holds %d, node has %d free", n.id, got, n.capacity-n.allocated)
		}
		totalPods += len(n.pods)
	}
	for i := range clusterBusy {
		if clusterBusy[i] != c.busyByFn[i] {
			return fmt.Errorf("cluster busyByFn[%d] = %d, recount %d", i, c.busyByFn[i], clusterBusy[i])
		}
	}
	if totalPods != c.totalPods {
		return fmt.Errorf("totalPods %d, recount %d", c.totalPods, totalPods)
	}
	// Every internal segment-tree entry must be the max of its children
	// (no stale path after an early-exit update), and padding leaves must
	// never be selectable.
	for i := 1; i < c.free.base; i++ {
		l, r := c.free.tree[2*i], c.free.tree[2*i+1]
		want := l
		if r > want {
			want = r
		}
		if c.free.tree[i] != want {
			return fmt.Errorf("free index entry %d = %d, children max %d", i, c.free.tree[i], want)
		}
	}
	for i := c.free.base + len(c.nodes); i < 2*c.free.base; i++ {
		if c.free.tree[i] != -1 {
			return fmt.Errorf("padding leaf %d = %d, want -1", i, c.free.tree[i])
		}
	}
	// Pools hold only idle pods that still exist on their recorded node,
	// and AcquireThreshold matches a first-principles recount (the serving
	// plane skips parked retries on its word).
	for fn, pool := range c.pools {
		for _, p := range pool {
			if p.busy {
				return fmt.Errorf("pool %s holds busy pod %d", fn, p.ID)
			}
			if _, ok := c.nodes[p.NodeID].pods[p.ID]; !ok {
				return fmt.Errorf("pool %s holds destroyed pod %d", fn, p.ID)
			}
		}
		thr := 0
		if len(pool) > 0 {
			p := pool[len(pool)-1]
			n := c.nodes[p.NodeID]
			thr = n.capacity - n.allocated + p.millicores
		} else {
			for _, n := range c.nodes {
				if free := n.capacity - n.allocated; free > thr {
					thr = free
				}
			}
		}
		if got := c.AcquireThreshold(fn); got != thr {
			return fmt.Errorf("AcquireThreshold(%s) = %d, recount %d", fn, got, thr)
		}
	}
	return nil
}

func FuzzClusterInvariants(f *testing.F) {
	// Seed corpus: op tapes covering deploys, busy churn, pool
	// retargeting, warm-pod scale-up/down, and error paths on both
	// placements (the first byte selects the configuration).
	f.Add([]byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07})
	f.Add([]byte{0x01, 0x10, 0x11, 0x12, 0x13, 0x30, 0x31, 0x32, 0x33, 0x50, 0x51})
	f.Add([]byte{0x07, 0x00, 0x10, 0x20, 0x10, 0x21, 0x30, 0x40, 0x41, 0x50, 0x60, 0x61})
	f.Add([]byte{0x03, 0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88, 0x77, 0x66, 0x55,
		0x44, 0x33, 0x22, 0x11, 0x00, 0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde})
	f.Add([]byte{0x05, 0x10, 0x10, 0x10, 0x10, 0x10, 0x10, 0x10, 0x10, 0x10, 0x10,
		0x30, 0x30, 0x30, 0x30, 0x30, 0x30, 0x30, 0x30, 0x30, 0x30})
	f.Fuzz(func(t *testing.T, tape []byte) {
		if len(tape) == 0 {
			return
		}
		// The first byte picks the cluster shape; small nodes keep
		// capacity errors reachable.
		shape := tape[0]
		cfg := Config{
			Nodes:          1 + int(shape&0x03)*3,
			NodeMillicores: 4000,
			PoolSize:       int(shape >> 2 & 0x03),
			IdleMillicores: 100,
			Placement:      Placement(int(shape >> 4 & 0x01)),
		}
		c, err := New(cfg)
		if err != nil {
			t.Fatalf("config %+v rejected: %v", cfg, err)
		}
		fns := []string{"fa", "fb", "fc"}
		var busy []*Pod
		for pos := 1; pos+1 < len(tape); pos += 2 {
			op, arg := tape[pos], int(tape[pos+1])
			fn := fns[arg%len(fns)]
			switch op % 8 {
			case 0:
				// Deploy; duplicate deploys must error without mutating.
				_ = c.Deploy(fn)
			case 1, 2:
				if pod, _, err := c.Acquire(fn, 100+(arg%32)*100); err == nil {
					busy = append(busy, pod)
				}
			case 3:
				if len(busy) > 0 {
					i := arg % len(busy)
					pod := busy[i]
					busy = append(busy[:i], busy[i+1:]...)
					warmBefore := c.WarmPods(pod.Function)
					tgt, _ := c.PoolTarget(pod.Function)
					if err := c.Release(pod); err != nil {
						t.Fatalf("Release of busy pod %d failed: %v", pod.ID, err)
					}
					// Release trims against the target: it never grows a
					// pool beyond it (a pool already over target — pushed
					// there by AddWarmPod — must not grow further).
					if w := c.WarmPods(pod.Function); w > warmBefore+1 || (w > warmBefore && warmBefore >= tgt) {
						t.Fatalf("Release grew pool %s from %d to %d with target %d", pod.Function, warmBefore, w, tgt)
					}
				}
			case 4:
				if len(busy) > 0 {
					_ = c.Resize(busy[arg%len(busy)], 100+(arg%40)*100)
				}
			case 5:
				if c.Deployed(fn) {
					if err := c.SetPoolTarget(fn, arg%6); err != nil {
						t.Fatalf("SetPoolTarget(%s, %d) failed: %v", fn, arg%6, err)
					}
					// Release trims pools lazily; the target change alone
					// must not break any census.
				}
			case 6:
				if c.Deployed(fn) {
					_, _ = c.AddWarmPod(fn)
				}
			case 7:
				_ = c.RemoveWarmPod(fn)
			}
			if err := checkClusterInvariants(c); err != nil {
				t.Fatalf("after op %#x arg %#x at %d: %v", op, arg, pos, err)
			}
		}
	})
}
