package profile

import (
	"encoding/json"
	"testing"
	"time"

	"janus/internal/interfere"
	"janus/internal/perfmodel"
	"janus/internal/workflow"
)

func testProfiler(t *testing.T) *Profiler {
	t.Helper()
	coloc, err := interfere.NewCountSampler([]float64{0.5, 0.35, 0.15})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProfiler(perfmodel.Catalog(), coloc, interfere.Default(), 7)
	if err != nil {
		t.Fatal(err)
	}
	p.SamplesPerConfig = 600 // keep unit tests fast
	return p
}

func TestGridBasics(t *testing.T) {
	g := DefaultGrid()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	levels := g.Levels()
	if len(levels) != 21 || levels[0] != 1000 || levels[20] != 3000 {
		t.Fatalf("levels = %v", levels)
	}
	if g.Len() != 21 {
		t.Fatalf("Len = %d", g.Len())
	}
	if i, ok := g.Index(1500); !ok || i != 5 {
		t.Fatalf("Index(1500) = %d, %v", i, ok)
	}
	if _, ok := g.Index(1550); ok {
		t.Fatal("off-grid index accepted")
	}
	if _, ok := g.Index(900); ok {
		t.Fatal("below-grid index accepted")
	}
}

func TestGridSnap(t *testing.T) {
	g := DefaultGrid()
	cases := [][2]int{{500, 1000}, {1000, 1000}, {1001, 1100}, {1399, 1400}, {2950, 3000}, {9000, 3000}}
	for _, c := range cases {
		if got := g.Snap(c[0]); got != c[1] {
			t.Errorf("Snap(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}

func TestGridValidation(t *testing.T) {
	bad := []Grid{
		{Min: 0, Max: 100, Step: 10},
		{Min: 100, Max: 50, Step: 10},
		{Min: 100, Max: 200, Step: 0},
		{Min: 100, Max: 250, Step: 100}, // max unreachable
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("grid %+v accepted", g)
		}
	}
}

func TestDefaultPercentiles(t *testing.T) {
	ps := DefaultPercentiles()
	if ps[0] != 1 || ps[len(ps)-1] != 99 {
		t.Fatalf("percentiles = %v", ps)
	}
	if err := validatePercentiles(ps); err != nil {
		t.Fatal(err)
	}
	// 1, 5..95 step 5, 99 -> 21 entries.
	if len(ps) != 21 {
		t.Fatalf("%d percentiles, want 21", len(ps))
	}
}

func TestValidatePercentiles(t *testing.T) {
	cases := [][]int{
		{},          // empty
		{0, 99},     // below range
		{1, 100},    // above range
		{5, 5, 99},  // not strictly increasing
		{99, 1},     // decreasing
		{1, 50, 95}, // missing 99
	}
	for _, ps := range cases {
		if err := validatePercentiles(ps); err == nil {
			t.Errorf("percentiles %v accepted", ps)
		}
	}
	if err := validatePercentiles([]int{1, 50, 99}); err != nil {
		t.Errorf("valid percentiles rejected: %v", err)
	}
}

func TestProfileFunctionShape(t *testing.T) {
	p := testProfiler(t)
	fp, err := p.ProfileFunction("od", 1)
	if err != nil {
		t.Fatal(err)
	}
	if fp.Function != "od" || fp.Batch != 1 {
		t.Fatalf("profile header = %s/%d", fp.Function, fp.Batch)
	}
	if len(fp.LatencyMs) != len(fp.Percentiles) {
		t.Fatal("row count mismatch")
	}
	// Monotone in k: more cores never slower.
	for _, pct := range fp.Percentiles {
		prev := int(1 << 30)
		for _, k := range fp.Grid.Levels() {
			cur := fp.LMs(pct, k)
			if cur > prev {
				t.Fatalf("L(%d, %d) = %d increased from %d", pct, k, cur, prev)
			}
			prev = cur
		}
	}
	// Monotone in p: higher percentile never faster.
	for _, k := range fp.Grid.Levels() {
		prev := 0
		for _, pct := range fp.Percentiles {
			cur := fp.LMs(pct, k)
			if cur < prev {
				t.Fatalf("L(%d, %d) = %d decreased from %d", pct, k, cur, prev)
			}
			prev = cur
		}
	}
}

func TestTimeoutProperties(t *testing.T) {
	p := testProfiler(t)
	fp, err := p.ProfileFunction("ts", 1)
	if err != nil {
		t.Fatal(err)
	}
	// D(99, k) == 0; D decreases as p rises (Fig 7a).
	for _, k := range []int{1000, 2000, 3000} {
		if d := fp.TimeoutMs(99, k); d != 0 {
			t.Errorf("D(99, %d) = %d, want 0", k, d)
		}
		if fp.TimeoutMs(25, k) < fp.TimeoutMs(50, k) || fp.TimeoutMs(50, k) < fp.TimeoutMs(75, k) {
			t.Errorf("timeout at k=%d not decreasing in percentile", k)
		}
	}
	// D decreases as k rises (Fig 7a: more resources absorb variability).
	if fp.TimeoutMs(25, 1000) < fp.TimeoutMs(25, 3000) {
		t.Error("timeout should shrink with more cores")
	}
}

func TestResilienceProperties(t *testing.T) {
	p := testProfiler(t)
	fp, err := p.ProfileFunction("ts", 1)
	if err != nil {
		t.Fatal(err)
	}
	// R(p, Kmax) == 0; R decreases with k (Fig 7b).
	for _, pct := range []int{25, 50, 99} {
		if r := fp.ResilienceMs(pct, 3000); r != 0 {
			t.Errorf("R(%d, Kmax) = %d, want 0", pct, r)
		}
		prev := int(1 << 30)
		for _, k := range fp.Grid.Levels() {
			r := fp.ResilienceMs(pct, k)
			if r < 0 {
				t.Fatalf("negative resilience R(%d, %d) = %d", pct, k, r)
			}
			if r > prev {
				t.Fatalf("resilience increased with cores at k=%d", k)
			}
			prev = r
		}
	}
}

func TestResilienceGrowsWithConcurrency(t *testing.T) {
	// Fig 7b: higher concurrency means higher computing load, making the
	// function more sensitive to resources, hence more resilience.
	p := testProfiler(t)
	fp1, err := p.ProfileFunction("ts", 1)
	if err != nil {
		t.Fatal(err)
	}
	fp3, err := p.ProfileFunction("ts", 3)
	if err != nil {
		t.Fatal(err)
	}
	if fp3.ResilienceMs(99, 1000) <= fp1.ResilienceMs(99, 1000) {
		t.Errorf("resilience at conc 3 (%d ms) should exceed conc 1 (%d ms)",
			fp3.ResilienceMs(99, 1000), fp1.ResilienceMs(99, 1000))
	}
}

func TestMinCoresWithin(t *testing.T) {
	p := testProfiler(t)
	fp, err := p.ProfileFunction("qa", 1)
	if err != nil {
		t.Fatal(err)
	}
	// A generous budget needs only the minimum allocation.
	if k, ok := fp.MinCoresWithin(99, 10*time.Second); !ok || k != 1000 {
		t.Fatalf("generous budget -> (%d, %v), want (1000, true)", k, ok)
	}
	// An impossible budget is infeasible even at Kmax.
	if _, ok := fp.MinCoresWithin(99, time.Millisecond); ok {
		t.Fatal("1ms budget should be infeasible")
	}
	// Feasibility boundary is consistent with L.
	budget := fp.L(99, 2000)
	k, ok := fp.MinCoresWithin(99, budget)
	if !ok || k > 2000 {
		t.Fatalf("budget L(99,2000) -> (%d, %v), want k <= 2000", k, ok)
	}
}

func TestProfileDeterminism(t *testing.T) {
	p := testProfiler(t)
	a, err := p.ProfileFunction("od", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.ProfileFunction("od", 1)
	if err != nil {
		t.Fatal(err)
	}
	for pi := range a.LatencyMs {
		for ki := range a.LatencyMs[pi] {
			if a.LatencyMs[pi][ki] != b.LatencyMs[pi][ki] {
				t.Fatal("profiles differ across identical runs")
			}
		}
	}
}

func TestProfilerValidation(t *testing.T) {
	coloc, _ := interfere.NewCountSampler([]float64{1})
	if _, err := NewProfiler(nil, coloc, nil, 1); err == nil {
		t.Error("nil functions accepted")
	}
	if _, err := NewProfiler(perfmodel.Catalog(), nil, nil, 1); err == nil {
		t.Error("nil colocation accepted")
	}
	p := testProfiler(t)
	if _, err := p.ProfileFunction("nope", 1); err == nil {
		t.Error("unknown function accepted")
	}
	if _, err := p.ProfileFunction("fe", 2); err == nil {
		t.Error("unsupported batch accepted")
	}
	p.SamplesPerConfig = 10
	if _, err := p.ProfileFunction("od", 1); err == nil {
		t.Error("tiny sample count accepted")
	}
}

func TestProfileWorkflow(t *testing.T) {
	p := testProfiler(t)
	set, err := p.ProfileWorkflow(workflow.IntelligentAssistant(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 3 {
		t.Fatalf("set has %d profiles", set.Len())
	}
	if set.At(0).Function != "od" || set.At(2).Function != "ts" {
		t.Fatal("profiles out of order")
	}
	tmin, tmax := set.BudgetRangeMs(0)
	if tmin <= 0 || tmax <= tmin {
		t.Fatalf("budget range = [%d, %d]", tmin, tmax)
	}
	// Suffix ranges shrink as functions complete.
	tmin1, tmax1 := set.BudgetRangeMs(1)
	if tmin1 >= tmin || tmax1 >= tmax {
		t.Fatal("suffix budget range should shrink")
	}
}

func TestProfileWorkflowNonChain(t *testing.T) {
	p := testProfiler(t)
	nodes := []workflow.Node{{Name: "a", Function: "od"}, {Name: "b", Function: "qa"}, {Name: "c", Function: "ts"}}
	dag, err := workflow.New("fan", time.Second, nodes, [][2]string{{"a", "b"}, {"a", "c"}})
	if err != nil {
		t.Fatal(err)
	}
	// Non-chain DAGs profile per decision group: the fork {b, c} becomes
	// one max-over-members composite whose latency dominates each member.
	set, err := p.ProfileWorkflow(dag, 1)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 2 {
		t.Fatalf("set has %d profiles, want 2 groups", set.Len())
	}
	if set.At(0).Function != "od" || set.At(1).Function != "par(2)+qa+ts" {
		t.Fatalf("group profiles = %q, %q", set.At(0).Function, set.At(1).Function)
	}
	qa, err := p.ProfileFunction("qa", 1)
	if err != nil {
		t.Fatal(err)
	}
	if comp, solo := set.At(1).LMs(99, 1000), qa.LMs(99, 1000); comp < solo {
		t.Fatalf("composite P99 %dms below member P99 %dms", comp, solo)
	}
	// The composite retains no raw samples (the ORION gate).
	if set.At(1).Sample(1000) != nil {
		t.Fatal("composite profile should not retain samples")
	}
}

func TestSampleAccess(t *testing.T) {
	p := testProfiler(t)
	fp, err := p.ProfileFunction("od", 1)
	if err != nil {
		t.Fatal(err)
	}
	s := fp.Sample(2000)
	if s == nil || s.Len() != p.SamplesPerConfig {
		t.Fatal("raw sample missing")
	}
	if fp.Sample(2050) != nil {
		t.Fatal("off-grid sample should be nil")
	}
}

func TestFunctionProfileJSONRoundTrip(t *testing.T) {
	p := testProfiler(t)
	fp, err := p.ProfileFunction("qa", 2)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(fp)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseFunctionProfile(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Function != "qa" || back.Batch != 2 {
		t.Fatal("header lost")
	}
	if back.LMs(99, 1500) != fp.LMs(99, 1500) {
		t.Fatal("latency lost")
	}
	if back.Sample(1500) != nil {
		t.Fatal("samples should not round-trip")
	}
}

func TestParseFunctionProfileRejectsBadData(t *testing.T) {
	if _, err := ParseFunctionProfile([]byte("{")); err == nil {
		t.Error("bad JSON accepted")
	}
	// Valid JSON, inconsistent shape.
	bad := `{"function":"f","batch":1,"grid":{"Min":1000,"Max":3000,"Step":100},"percentiles":[1,99],"latency_ms":[[1]]}`
	if _, err := ParseFunctionProfile([]byte(bad)); err == nil {
		t.Error("inconsistent shape accepted")
	}
}

func TestSetJSONRoundTrip(t *testing.T) {
	p := testProfiler(t)
	set, err := p.ProfileWorkflow(workflow.VideoAnalyze(), 1)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(set)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSet(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Workflow.Name() != "va" || back.Len() != 3 {
		t.Fatal("set header lost")
	}
	if back.At(1).LMs(99, 2000) != set.At(1).LMs(99, 2000) {
		t.Fatal("set latencies lost")
	}
}

func TestParseSetRejectsMismatchedProfiles(t *testing.T) {
	p := testProfiler(t)
	set, err := p.ProfileWorkflow(workflow.VideoAnalyze(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Swap two profiles: stage/function mismatch must be caught.
	set.Profiles[0], set.Profiles[1] = set.Profiles[1], set.Profiles[0]
	data, err := json.Marshal(set)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSet(data); err == nil {
		t.Fatal("mismatched profile order accepted")
	}
}

func TestSortedPercentiles(t *testing.T) {
	in := []int{99, 1, 50}
	out := SortedPercentiles(in)
	if out[0] != 1 || out[2] != 99 {
		t.Fatalf("SortedPercentiles = %v", out)
	}
	if in[0] != 99 {
		t.Fatal("input mutated")
	}
}
