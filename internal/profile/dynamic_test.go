package profile

import (
	"fmt"
	"testing"
	"time"

	"janus/internal/interfere"
	"janus/internal/perfmodel"
	"janus/internal/workflow"
)

// dynWorkflow builds the dynamic ML-inference skeleton the trigger
// experiment serves: a conditional fork at triage, a bounded map with
// retry on ocr, and an awaited gate.
func dynWorkflow(t *testing.T) *workflow.Workflow {
	t.Helper()
	nodes := []workflow.Node{
		{Name: "ingest", Function: "fe"},
		{Name: "triage", Function: "ico"},
		{Name: "caption", Function: "redis-read"},
		{Name: "detect", Function: "icl"},
		{Name: "ocr", Function: "aes-encrypt"},
		{Name: "gate", Function: "redis-read"},
		{Name: "publish", Function: "socket-comm"},
	}
	edges := [][2]string{
		{"ingest", "triage"},
		{"triage", "caption"},
		{"triage", "detect"},
		{"detect", "ocr"},
		{"caption", "gate"},
		{"ocr", "gate"},
		{"gate", "publish"},
	}
	w, err := workflow.NewDynamic("trig", 1500*time.Millisecond, nodes, edges, []workflow.DynamicNode{
		{Step: "triage", Choice: &workflow.ChoiceSpec{Weights: []float64{0.55, 0.45}}},
		{Step: "ocr", Map: &workflow.MapSpec{MaxWidth: 4}, Retry: &workflow.RetrySpec{MaxRetries: 2, FailureProb: 0.3}},
		{Step: "gate", Await: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func dynProfiler(t *testing.T) *Profiler {
	t.Helper()
	coloc, err := interfere.NewCountSampler([]float64{0.5, 0.35, 0.15})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProfiler(perfmodel.Catalog(), coloc, interfere.Default(), 11)
	if err != nil {
		t.Fatal(err)
	}
	p.SamplesPerConfig = 400
	return p
}

// mapGroup locates the decision group holding the given step.
func mapGroup(t *testing.T, w *workflow.Workflow, step string) int {
	t.Helper()
	for i, g := range w.DecisionGroups() {
		for _, n := range g.Nodes {
			if n.Name == step {
				return i
			}
		}
	}
	t.Fatalf("step %q not in any group", step)
	return -1
}

func TestProfileDynamicShapedVariants(t *testing.T) {
	w := dynWorkflow(t)
	set, err := dynProfiler(t).ProfileWorkflow(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != len(w.DecisionGroups()) {
		t.Fatalf("profiled %d groups, workflow has %d", set.Len(), len(w.DecisionGroups()))
	}
	og := mapGroup(t, w, "ocr")
	if len(set.Shaped) != 1 || set.Shaped[og] == nil {
		t.Fatalf("Shaped = %v, want variants for group %d only", set.Shaped, og)
	}
	variants := set.Shaped[og]
	if len(variants) != 4 {
		t.Fatalf("map with MaxWidth 4 produced %d variants", len(variants))
	}
	// The conservative base IS the max-width variant.
	if set.At(og) != variants["w=4"] {
		t.Fatal("base profile of the map group is not the max-width variant")
	}
	// Join latency is monotone in the resolved width: a prefix max over
	// fewer replicas can only be faster, at every (percentile, k) cell.
	for v := 1; v < 4; v++ {
		lo, hi := variants[fmt.Sprintf("w=%d", v)], variants[fmt.Sprintf("w=%d", v+1)]
		for pi := range lo.LatencyMs {
			for ki := range lo.LatencyMs[pi] {
				if lo.LatencyMs[pi][ki] > hi.LatencyMs[pi][ki] {
					t.Fatalf("width %d slower than width %d at cell (%d, %d)", v, v+1, pi, ki)
				}
			}
		}
	}
	// And strictly informative somewhere: resolving w=1 must buy real
	// headroom over the worst case at the P99/Kmin corner.
	w1, w4 := variants["w=1"], variants["w=4"]
	if w1.LMs(99, w1.Grid.Min) >= w4.LMs(99, w4.Grid.Min) {
		t.Fatal("width-1 variant no faster than the worst case at P99/Kmin")
	}
}

func TestConeProfilesShapedSwapsHeadOnly(t *testing.T) {
	w := dynWorkflow(t)
	set, err := dynProfiler(t).ProfileWorkflow(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	og := mapGroup(t, w, "ocr")
	base, err := set.ConeProfiles(og)
	if err != nil {
		t.Fatal(err)
	}
	shaped, err := set.ConeProfilesShaped(og, "w=2")
	if err != nil {
		t.Fatal(err)
	}
	if shaped[0] != set.Shaped[og]["w=2"] {
		t.Fatal("cone head not swapped for the shape variant")
	}
	for i := 1; i < len(base); i++ {
		if shaped[i].LMs(99, shaped[i].Grid.Min) != base[i].LMs(99, base[i].Grid.Min) {
			t.Fatalf("downstream layer %d changed under shaping", i)
		}
	}
	// Unknown shapes and shapeless groups fall back to the base cone.
	fallback, err := set.ConeProfilesShaped(og, "w=99")
	if err != nil {
		t.Fatal(err)
	}
	if fallback[0] != base[0] {
		t.Fatal("unknown shape did not fall back to the base head")
	}
	// The fallback path must not have aliased the base cone's backing
	// array: a later shaped call cannot corrupt an earlier base result.
	if base[0] != set.At(og) {
		t.Fatal("ConeProfilesShaped mutated a previously returned base cone")
	}
}

// TestProfileStaticSetHasNoShapes pins that the static path is untouched:
// no Shaped map, and the profiles come from the exact same code as before
// dynamic orchestration existed.
func TestProfileStaticSetHasNoShapes(t *testing.T) {
	nodes := []workflow.Node{
		{Name: "a", Function: "fe"},
		{Name: "b", Function: "ico"},
		{Name: "c", Function: "icl"},
	}
	edges := [][2]string{{"a", "b"}, {"a", "c"}}
	w, err := workflow.New("static", time.Second, nodes, edges)
	if err != nil {
		t.Fatal(err)
	}
	p := dynProfiler(t)
	set, err := p.ProfileWorkflow(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	if set.Shaped != nil {
		t.Fatalf("static workflow produced shaped profiles: %v", set.Shaped)
	}
	cone, err := set.ConeProfilesShaped(0, "w=2")
	if err != nil {
		t.Fatal(err)
	}
	if cone[0] != set.At(0) {
		t.Fatal("static cone perturbed by a shape key")
	}
}
