// Package profile implements the developer-side Profiler of Janus (§III-B)
// and the profile data model the synthesizer consumes.
//
// A function profile is the execution-time distribution L(p, k) extracted
// at a grid of percentiles p (default 1..99, step 5, always including 99)
// and CPU allocations k (default 1000..3000 millicores, step 100), per
// concurrency (batch) level. From L the paper derives its two risk metrics:
//
//	timeout    D(p, k) = L(99, k) - L(p, k)        (Eq. 1)
//	resilience R(p, k) = L(p, k) - L(p, Kmax)      (Eq. 2, prose sign)
//
// Timeout quantifies how much an execution profiled at percentile p can
// overrun; resilience quantifies how much scaling a function up to Kmax can
// still compress it. A hint is safe when the head's timeout fits within the
// downstream functions' total resilience.
package profile

import (
	"fmt"
	"sort"
	"time"

	"janus/internal/interfere"
	"janus/internal/perfmodel"
	"janus/internal/rng"
	"janus/internal/stats"
	"janus/internal/workflow"
)

// Grid is an inclusive arithmetic grid of millicore allocations.
type Grid struct {
	Min, Max, Step int
}

// DefaultGrid mirrors the paper's knob: 1000-3000 millicores, step 100.
func DefaultGrid() Grid { return Grid{Min: 1000, Max: 3000, Step: 100} }

// Validate checks grid consistency.
func (g Grid) Validate() error {
	if g.Min <= 0 || g.Max < g.Min || g.Step <= 0 {
		return fmt.Errorf("profile: invalid grid %+v", g)
	}
	if (g.Max-g.Min)%g.Step != 0 {
		return fmt.Errorf("profile: grid max %d not reachable from min %d with step %d", g.Max, g.Min, g.Step)
	}
	return nil
}

// Levels returns all allocations in the grid, ascending.
func (g Grid) Levels() []int {
	out := make([]int, 0, (g.Max-g.Min)/g.Step+1)
	for k := g.Min; k <= g.Max; k += g.Step {
		out = append(out, k)
	}
	return out
}

// Len reports the number of grid levels.
func (g Grid) Len() int { return (g.Max-g.Min)/g.Step + 1 }

// Index maps an allocation to its grid position.
func (g Grid) Index(k int) (int, bool) {
	if k < g.Min || k > g.Max || (k-g.Min)%g.Step != 0 {
		return 0, false
	}
	return (k - g.Min) / g.Step, true
}

// Snap rounds an arbitrary allocation up to the nearest grid level,
// clamping to the grid bounds.
func (g Grid) Snap(k int) int {
	if k <= g.Min {
		return g.Min
	}
	if k >= g.Max {
		return g.Max
	}
	over := (k - g.Min) % g.Step
	if over == 0 {
		return k
	}
	return k + g.Step - over
}

// DefaultPercentiles returns the paper's profiling percentiles: 1% to 99%
// with a step of 5%, with the P99 anchor (1, 5, 10, ..., 95, 99).
func DefaultPercentiles() []int {
	out := []int{1}
	for p := 5; p <= 95; p += 5 {
		out = append(out, p)
	}
	return append(out, 99)
}

func validatePercentiles(ps []int) error {
	if len(ps) == 0 {
		return fmt.Errorf("profile: percentile set empty")
	}
	prev := 0
	has99 := false
	for _, p := range ps {
		if p < 1 || p > 99 {
			return fmt.Errorf("profile: percentile %d out of [1, 99]", p)
		}
		if p <= prev {
			return fmt.Errorf("profile: percentiles must be strictly increasing, got %v", ps)
		}
		prev = p
		if p == 99 {
			has99 = true
		}
	}
	if !has99 {
		return fmt.Errorf("profile: percentile set must include 99 (the SLO anchor)")
	}
	return nil
}

// FunctionProfile is L(p, k) for one function at one batch size.
type FunctionProfile struct {
	// Function is the profiled function's name.
	Function string `json:"function"`
	// Batch is the concurrency level profiled.
	Batch int `json:"batch"`
	// Grid is the allocation grid.
	Grid Grid `json:"grid"`
	// Percentiles is the ascending percentile grid (includes 99).
	Percentiles []int `json:"percentiles"`
	// LatencyMs[pi][ki] is L(Percentiles[pi], Levels[ki]) in milliseconds.
	LatencyMs [][]int `json:"latency_ms"`

	// samples[ki] keeps the raw latency sample per allocation level for
	// distribution-aware consumers (the ORION baseline). Not serialized.
	samples []*stats.Sample
	// pIndex maps percentile -> row.
	pIndex map[int]int
}

func (fp *FunctionProfile) init() error {
	if err := fp.Grid.Validate(); err != nil {
		return err
	}
	if err := validatePercentiles(fp.Percentiles); err != nil {
		return err
	}
	if len(fp.LatencyMs) != len(fp.Percentiles) {
		return fmt.Errorf("profile: %s: %d latency rows for %d percentiles", fp.Function, len(fp.LatencyMs), len(fp.Percentiles))
	}
	for i, row := range fp.LatencyMs {
		if len(row) != fp.Grid.Len() {
			return fmt.Errorf("profile: %s: row %d has %d levels, want %d", fp.Function, i, len(row), fp.Grid.Len())
		}
	}
	fp.pIndex = make(map[int]int, len(fp.Percentiles))
	for i, p := range fp.Percentiles {
		fp.pIndex[p] = i
	}
	return nil
}

// NewFunctionProfile builds a validated profile from externally measured
// latencies: latencyMs[pi][ki] is the latency at percentiles[pi] and
// grid.Levels()[ki] in milliseconds. Deployments that measure functions
// with their own tooling import profiles through this constructor.
func NewFunctionProfile(function string, batch int, grid Grid, percentiles []int, latencyMs [][]int) (*FunctionProfile, error) {
	if function == "" {
		return nil, fmt.Errorf("profile: function name required")
	}
	if batch < 1 {
		return nil, fmt.Errorf("profile: batch %d invalid", batch)
	}
	fp := &FunctionProfile{
		Function:    function,
		Batch:       batch,
		Grid:        grid,
		Percentiles: append([]int(nil), percentiles...),
		LatencyMs:   latencyMs,
	}
	if err := fp.init(); err != nil {
		return nil, err
	}
	return fp, nil
}

// HasPercentile reports whether p is on the profile's percentile grid.
func (fp *FunctionProfile) HasPercentile(p int) bool {
	_, ok := fp.pIndex[p]
	return ok
}

// LMs returns L(p, k) in milliseconds. Both p and k must be on-grid.
func (fp *FunctionProfile) LMs(p, k int) int {
	pi, ok := fp.pIndex[p]
	if !ok {
		panic(fmt.Sprintf("profile: %s: percentile %d not profiled", fp.Function, p))
	}
	ki, ok := fp.Grid.Index(k)
	if !ok {
		panic(fmt.Sprintf("profile: %s: allocation %d not on grid", fp.Function, k))
	}
	return fp.LatencyMs[pi][ki]
}

// L returns L(p, k) as a duration.
func (fp *FunctionProfile) L(p, k int) time.Duration {
	return time.Duration(fp.LMs(p, k)) * time.Millisecond
}

// TimeoutMs returns D(p, k) = L(99, k) - L(p, k) in milliseconds (Eq. 1).
func (fp *FunctionProfile) TimeoutMs(p, k int) int {
	return fp.LMs(99, k) - fp.LMs(p, k)
}

// ResilienceMs returns R(p, k) = L(p, k) - L(p, Kmax) in milliseconds
// (Eq. 2 with the prose sign: the compression achievable by scaling up).
func (fp *FunctionProfile) ResilienceMs(p, k int) int {
	return fp.LMs(p, k) - fp.LMs(p, fp.Grid.Max)
}

// MinCoresWithin returns the smallest on-grid allocation whose L(p, k)
// fits the budget, or false if even Kmax misses it.
func (fp *FunctionProfile) MinCoresWithin(p int, budget time.Duration) (int, bool) {
	budgetMs := int(budget / time.Millisecond)
	for _, k := range fp.Grid.Levels() {
		if fp.LMs(p, k) <= budgetMs {
			return k, true
		}
	}
	return 0, false
}

// Sample returns the raw latency sample at allocation k, or nil if the
// profile was deserialized without samples.
func (fp *FunctionProfile) Sample(k int) *stats.Sample {
	ki, ok := fp.Grid.Index(k)
	if !ok || fp.samples == nil {
		return nil
	}
	return fp.samples[ki]
}

// Set bundles the per-decision-group profiles of a workflow at one batch
// size. For a chain there is one profile per node in execution order; for
// any other DAG each profile covers one decision group (nodes sharing an
// identical predecessor set) as a max-over-members composite.
type Set struct {
	// Workflow is the profiled application.
	Workflow *workflow.Workflow
	// Batch is the concurrency level.
	Batch int
	// Profiles holds one profile per decision group, in group order. For a
	// dynamic workflow, a group containing a map member carries the
	// max-width composite here — the conservative base every unresolved
	// future composites through.
	Profiles []*FunctionProfile
	// Shaped holds the width-variant composites of a dynamic workflow's
	// map groups: Shaped[g][shape] is group g's composite when its map
	// member resolved to the width the shape key names ("w=3"). The
	// variant at the map's maximum width is Profiles[g] itself. Nil for
	// static workflows.
	Shaped map[int]map[string]*FunctionProfile
}

// Groups returns the workflow's decision groups; Profiles[i] covers
// Groups()[i].
func (s *Set) Groups() []workflow.Group { return s.Workflow.DecisionGroups() }

// At returns the group-i profile.
func (s *Set) At(i int) *FunctionProfile { return s.Profiles[i] }

// Len reports the number of decision groups.
func (s *Set) Len() int { return len(s.Profiles) }

// ConeProfiles returns the profile sequence of group `from`'s descendant
// cone, layer by layer: element 0 is the group's own profile, and each
// later element covers one cone layer (the pointwise max when a layer
// holds several groups — conservative in the same direction as the
// profiler's round-up). For a chain or series-parallel workflow this is
// exactly the profile suffix from..; the sequential composition of the
// returned profiles upper-bounds the cone's max-over-paths latency, which
// is the shape Algorithm 1's budget split consumes.
func (s *Set) ConeProfiles(from int) ([]*FunctionProfile, error) {
	if from < 0 || from >= len(s.Profiles) {
		return nil, fmt.Errorf("profile: cone start %d out of range [0, %d)", from, len(s.Profiles))
	}
	layers := s.Workflow.GroupConeLayers(from)
	out := make([]*FunctionProfile, 0, len(layers))
	for _, layer := range layers {
		if len(layer) == 1 {
			out = append(out, s.Profiles[layer[0]])
			continue
		}
		fps := make([]*FunctionProfile, len(layer))
		for i, g := range layer {
			fps[i] = s.Profiles[g]
		}
		max, err := maxProfiles(fps)
		if err != nil {
			return nil, err
		}
		out = append(out, max)
	}
	return out, nil
}

// ConeProfilesShaped is ConeProfiles with the cone head swapped for the
// group's shape variant: element 0 becomes Shaped[from][shape], and every
// downstream layer keeps its conservative base composite — futures not
// yet resolved at the decision instant stay worst-case. An unknown shape
// (or a static workflow) returns the base cone unchanged.
func (s *Set) ConeProfilesShaped(from int, shape string) ([]*FunctionProfile, error) {
	seq, err := s.ConeProfiles(from)
	if err != nil {
		return nil, err
	}
	variant, ok := s.Shaped[from][shape]
	if !ok {
		return seq, nil
	}
	seq[0] = variant
	return seq, nil
}

// BudgetRangeMs returns the paper's Eq. 3 exploration bounds for the
// sub-workflow headed by group `from` (its descendant cone):
//
//	Tmin = sum_i L_i(pMin, Kmax),  Tmax = sum_i L_i(99, Kmin)
//
// summed over the cone's layers, where pMin is the lowest profiled
// percentile. For a chain this is the classic suffix range.
func (s *Set) BudgetRangeMs(from int) (int, int) {
	seq, err := s.ConeProfiles(from)
	if err != nil {
		// Callers index groups they obtained from this set; out of range
		// is a bug, and grid mismatches are rejected at construction.
		panic(err)
	}
	tmin, tmax := 0, 0
	for _, fp := range seq {
		pMin := fp.Percentiles[0]
		tmin += fp.LMs(pMin, fp.Grid.Max)
		tmax += fp.LMs(99, fp.Grid.Min)
	}
	return tmin, tmax
}

// maxProfiles fuses profiles into their pointwise maximum: the latency a
// join observes when every member must finish, under the comonotonic
// coupling the workload's stage correlation leans toward. Grids and
// percentile sets must match.
func maxProfiles(fps []*FunctionProfile) (*FunctionProfile, error) {
	base := fps[0]
	name := "max"
	for _, fp := range fps {
		if fp.Grid != base.Grid {
			return nil, fmt.Errorf("profile: max over mismatched grids (%s vs %s)", fp.Function, base.Function)
		}
		if len(fp.Percentiles) != len(base.Percentiles) {
			return nil, fmt.Errorf("profile: max over mismatched percentile sets (%s vs %s)", fp.Function, base.Function)
		}
		for i := range fp.Percentiles {
			if fp.Percentiles[i] != base.Percentiles[i] {
				return nil, fmt.Errorf("profile: max over mismatched percentile sets (%s vs %s)", fp.Function, base.Function)
			}
		}
		name += "+" + fp.Function
	}
	lat := make([][]int, len(base.Percentiles))
	for pi := range lat {
		lat[pi] = make([]int, base.Grid.Len())
		for ki := range lat[pi] {
			worst := 0
			for _, fp := range fps {
				if v := fp.LatencyMs[pi][ki]; v > worst {
					worst = v
				}
			}
			lat[pi][ki] = worst
		}
	}
	return NewFunctionProfile(name, base.Batch, base.Grid, base.Percentiles, lat)
}

// Profiler collects execution-time distributions by exercising the latency
// models under the contention mix the platform will produce at serving
// time. This is the developer-side offline component: in the paper it runs
// the real functions on the developer's cluster; here it samples the
// calibrated models.
type Profiler struct {
	// Functions resolves function names.
	Functions map[string]*perfmodel.Function
	// SamplesPerConfig is the number of invocations per (k, batch) cell.
	SamplesPerConfig int
	// Grid is the allocation grid.
	Grid Grid
	// Percentiles is the percentile grid (must include 99).
	Percentiles []int
	// Colocation and Interference reproduce serving-time contention.
	Colocation   *interfere.CountSampler
	Interference *interfere.Model
	// Seed roots the profiling streams.
	Seed uint64
}

// NewProfiler builds a profiler with validated configuration.
func NewProfiler(fns map[string]*perfmodel.Function, coloc *interfere.CountSampler, im *interfere.Model, seed uint64) (*Profiler, error) {
	if len(fns) == 0 {
		return nil, fmt.Errorf("profile: profiler needs functions")
	}
	if coloc == nil {
		return nil, fmt.Errorf("profile: profiler needs a co-location sampler")
	}
	p := &Profiler{
		Functions:        fns,
		SamplesPerConfig: 2000,
		Grid:             DefaultGrid(),
		Percentiles:      DefaultPercentiles(),
		Colocation:       coloc,
		Interference:     im,
		Seed:             seed,
	}
	if err := p.Grid.Validate(); err != nil {
		return nil, err
	}
	if err := validatePercentiles(p.Percentiles); err != nil {
		return nil, err
	}
	return p, nil
}

// ProfileFunction measures one function at one batch size across the grid.
func (p *Profiler) ProfileFunction(name string, batch int) (*FunctionProfile, error) {
	fn, ok := p.Functions[name]
	if !ok {
		return nil, fmt.Errorf("profile: unknown function %q", name)
	}
	if !fn.SupportsBatch(batch) {
		return nil, fmt.Errorf("profile: function %s does not support batch %d", name, batch)
	}
	if p.SamplesPerConfig < 100 {
		return nil, fmt.Errorf("profile: need at least 100 samples per config, have %d", p.SamplesPerConfig)
	}
	levels := p.Grid.Levels()
	fp := &FunctionProfile{
		Function:    name,
		Batch:       batch,
		Grid:        p.Grid,
		Percentiles: append([]int(nil), p.Percentiles...),
		LatencyMs:   make([][]int, len(p.Percentiles)),
		samples:     make([]*stats.Sample, len(levels)),
	}
	for i := range fp.LatencyMs {
		fp.LatencyMs[i] = make([]int, len(levels))
	}
	for ki, k := range levels {
		stream := rng.New(p.Seed).Split(fmt.Sprintf("profile/%s/b%d/k%d", name, batch, k))
		sample := &stats.Sample{}
		for i := 0; i < p.SamplesPerConfig; i++ {
			coloc := p.Colocation.Sample(stream)
			draw := fn.NewDraw(stream, batch, coloc, p.Interference)
			sample.AddDuration(fn.Latency(draw, k))
		}
		fp.samples[ki] = sample
		for pi, pct := range p.Percentiles {
			// Round latencies up: the synthesizer must never be optimistic
			// about how fast a function runs.
			ms := sample.Percentile(float64(pct))
			fp.LatencyMs[pi][ki] = int(ms) + 1
		}
	}
	if err := fp.init(); err != nil {
		return nil, err
	}
	enforceMonotone(fp)
	return fp, nil
}

// enforceMonotone irons out sampling noise so that L is non-increasing in k
// and non-decreasing in p — properties the true distribution has and the
// synthesizer's pruning relies on.
func enforceMonotone(fp *FunctionProfile) {
	for pi := range fp.LatencyMs {
		row := fp.LatencyMs[pi]
		for ki := len(row) - 2; ki >= 0; ki-- {
			if row[ki] < row[ki+1] {
				row[ki] = row[ki+1]
			}
		}
	}
	for pi := 1; pi < len(fp.LatencyMs); pi++ {
		for ki := range fp.LatencyMs[pi] {
			if fp.LatencyMs[pi][ki] < fp.LatencyMs[pi-1][ki] {
				fp.LatencyMs[pi][ki] = fp.LatencyMs[pi-1][ki]
			}
		}
	}
}

// ProfileWorkflow profiles every decision group of a workflow DAG. Chains
// run the per-function profiler (raw samples retained, so the ORION
// baseline stays available); any other DAG profiles each group as a
// max-over-members Monte-Carlo composite — the latency its implicit join
// observes — exactly as the series-parallel reduction always has.
func (p *Profiler) ProfileWorkflow(w *workflow.Workflow, batch int) (*Set, error) {
	if w == nil {
		return nil, fmt.Errorf("profile: nil workflow")
	}
	set := &Set{Workflow: w, Batch: batch}
	if w.IsDynamic() {
		return p.profileDynamic(set, w, batch)
	}
	if w.IsChain() {
		for _, n := range w.TopoOrder() {
			fp, err := p.ProfileFunction(n.Function, batch)
			if err != nil {
				return nil, err
			}
			set.Profiles = append(set.Profiles, fp)
		}
		return set, nil
	}
	for i, g := range w.DecisionGroups() {
		fp, err := p.ProfileGroup(g, batch)
		if err != nil {
			return nil, fmt.Errorf("profile: group %d: %w", i, err)
		}
		set.Profiles = append(set.Profiles, fp)
	}
	return set, nil
}

// profileDynamic profiles a dynamic workflow's groups: each resolvable
// shape of a map group gets its own width-variant composite (the base is
// the max-width variant, conservative), and every other group profiles
// exactly as a static group does. Choice and await annotations need no
// variants: an unchosen branch's groups simply never decide, and choice
// branch-specificity is already inherent in the per-group descendant
// cones.
func (p *Profiler) profileDynamic(set *Set, w *workflow.Workflow, batch int) (*Set, error) {
	for i, g := range w.DecisionGroups() {
		mapStep, maxWidth := "", 1
		for _, n := range g.Nodes {
			if d, ok := w.Dynamic(n.Name); ok && d.Map != nil {
				mapStep, maxWidth = n.Name, d.Map.MaxWidth
			}
		}
		if maxWidth <= 1 {
			fp, err := p.ProfileGroup(g, batch)
			if err != nil {
				return nil, fmt.Errorf("profile: group %d: %w", i, err)
			}
			set.Profiles = append(set.Profiles, fp)
			continue
		}
		variants, err := p.ProfileGroupMap(g, mapStep, maxWidth, batch)
		if err != nil {
			return nil, fmt.Errorf("profile: group %d: %w", i, err)
		}
		set.Profiles = append(set.Profiles, variants[maxWidth-1])
		if set.Shaped == nil {
			set.Shaped = map[int]map[string]*FunctionProfile{}
		}
		shapes := make(map[string]*FunctionProfile, maxWidth)
		for v := 1; v <= maxWidth; v++ {
			shapes[fmt.Sprintf("w=%d", v)] = variants[v-1]
		}
		set.Shaped[i] = shapes
	}
	return set, nil
}

// ProfileGroupMap measures one decision group's composite latency for
// every resolvable width of its map member in a single Monte-Carlo pass:
// each sample draws the non-map members once, then draws maxWidth i.i.d.
// replicas of the map member and records the running (prefix) max after
// each one. Variant v is therefore the group's join latency when the map
// resolved to v replicas, the variants are monotone in width by
// construction (a prefix max can only grow), and the max-width variant is
// the conservative base profile a shape-blind planner uses. The returned
// slice holds widths 1..maxWidth in order.
func (p *Profiler) ProfileGroupMap(g workflow.Group, mapStep string, maxWidth, batch int) ([]*FunctionProfile, error) {
	if maxWidth < 1 {
		return nil, fmt.Errorf("profile: map width %d invalid", maxWidth)
	}
	if p.SamplesPerConfig < 100 {
		return nil, fmt.Errorf("profile: need at least 100 samples per config, have %d", p.SamplesPerConfig)
	}
	var mapFn *perfmodel.Function
	others := make([]*perfmodel.Function, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		fn, ok := p.Functions[n.Function]
		if !ok {
			return nil, fmt.Errorf("profile: unknown function %q", n.Function)
		}
		if !fn.SupportsBatch(batch) {
			return nil, fmt.Errorf("profile: function %s does not support batch %d", n.Function, batch)
		}
		if n.Name == mapStep {
			mapFn = fn
			continue
		}
		others = append(others, fn)
	}
	if mapFn == nil {
		return nil, fmt.Errorf("profile: map step %q not in group", mapStep)
	}
	name := GroupProfileName(g.Nodes)
	levels := p.Grid.Levels()
	lat := make([][][]int, maxWidth)
	for v := range lat {
		lat[v] = make([][]int, len(p.Percentiles))
		for pi := range lat[v] {
			lat[v][pi] = make([]int, len(levels))
		}
	}
	samples := make([]*stats.Sample, maxWidth)
	for ki, k := range levels {
		stream := rng.New(p.Seed).Split(fmt.Sprintf("mapshape/%s/%s/b%d/k%d", name, mapStep, batch, k))
		for v := range samples {
			samples[v] = &stats.Sample{}
		}
		for i := 0; i < p.SamplesPerConfig; i++ {
			var worst time.Duration
			for _, fn := range others {
				coloc := p.Colocation.Sample(stream)
				d := fn.NewDraw(stream, batch, coloc, p.Interference)
				if l := fn.Latency(d, k); l > worst {
					worst = l
				}
			}
			for v := 0; v < maxWidth; v++ {
				coloc := p.Colocation.Sample(stream)
				d := mapFn.NewDraw(stream, batch, coloc, p.Interference)
				if l := mapFn.Latency(d, k); l > worst {
					worst = l
				}
				samples[v].AddDuration(worst)
			}
		}
		for v := 0; v < maxWidth; v++ {
			for pi, pct := range p.Percentiles {
				lat[v][pi][ki] = int(samples[v].Percentile(float64(pct))) + 1
			}
		}
	}
	out := make([]*FunctionProfile, maxWidth)
	for v := 0; v < maxWidth; v++ {
		fp, err := NewFunctionProfile(fmt.Sprintf("%s@w=%d", name, v+1), batch, p.Grid, p.Percentiles, lat[v])
		if err != nil {
			return nil, err
		}
		enforceMonotone(fp)
		out[v] = fp
	}
	return out, nil
}

// GroupProfileName is the composite profile name of a decision group: the
// function name for a single member, "par(N)+f1+...+fN" for a fork.
func GroupProfileName(nodes []workflow.Node) string {
	if len(nodes) == 1 {
		return nodes[0].Function
	}
	name := fmt.Sprintf("par(%d)", len(nodes))
	for _, n := range nodes {
		name += "+" + n.Function
	}
	return name
}

// ProfileGroup measures one decision group's composite latency at one
// batch size: per allocation k, every member runs at k and the group's
// implicit join completes at the slowest member. The profiling stream is
// keyed under "parallel/" — the series-parallel reduction's namespace —
// so fork-join workflows profile identically through either entry point.
func (p *Profiler) ProfileGroup(g workflow.Group, batch int) (*FunctionProfile, error) {
	if len(g.Nodes) == 0 {
		return nil, fmt.Errorf("profile: empty decision group")
	}
	if p.SamplesPerConfig < 100 {
		return nil, fmt.Errorf("profile: need at least 100 samples per config, have %d", p.SamplesPerConfig)
	}
	fns := make([]*perfmodel.Function, len(g.Nodes))
	for i, n := range g.Nodes {
		fn, ok := p.Functions[n.Function]
		if !ok {
			return nil, fmt.Errorf("profile: unknown function %q", n.Function)
		}
		if !fn.SupportsBatch(batch) {
			return nil, fmt.Errorf("profile: function %s does not support batch %d", n.Function, batch)
		}
		fns[i] = fn
	}
	name := GroupProfileName(g.Nodes)
	levels := p.Grid.Levels()
	lat := make([][]int, len(p.Percentiles))
	for i := range lat {
		lat[i] = make([]int, len(levels))
	}
	for ki, k := range levels {
		stream := rng.New(p.Seed).Split(fmt.Sprintf("parallel/%s/b%d/k%d", name, batch, k))
		sample := &stats.Sample{}
		for i := 0; i < p.SamplesPerConfig; i++ {
			var worst time.Duration
			for _, fn := range fns {
				coloc := p.Colocation.Sample(stream)
				d := fn.NewDraw(stream, batch, coloc, p.Interference)
				if l := fn.Latency(d, k); l > worst {
					worst = l
				}
			}
			sample.AddDuration(worst)
		}
		for pi, pct := range p.Percentiles {
			lat[pi][ki] = int(sample.Percentile(float64(pct))) + 1
		}
	}
	fp, err := NewFunctionProfile(name, batch, p.Grid, p.Percentiles, lat)
	if err != nil {
		return nil, err
	}
	enforceMonotone(fp)
	return fp, nil
}

// SortedPercentiles returns a copy of ps sorted ascending (helper for
// consumers assembling custom grids).
func SortedPercentiles(ps []int) []int {
	out := append([]int(nil), ps...)
	sort.Ints(out)
	return out
}
