package profile

import (
	"encoding/json"
	"fmt"

	"janus/internal/workflow"
)

// ParseFunctionProfile decodes and validates a serialized profile.
// Raw samples are not part of the wire form; deserialized profiles support
// everything except Sample().
func ParseFunctionProfile(data []byte) (*FunctionProfile, error) {
	var fp FunctionProfile
	if err := json.Unmarshal(data, &fp); err != nil {
		return nil, fmt.Errorf("profile: invalid profile JSON: %w", err)
	}
	if err := fp.init(); err != nil {
		return nil, err
	}
	return &fp, nil
}

// setSpec is the wire form of a Set.
type setSpec struct {
	Workflow workflow.Spec      `json:"workflow"`
	Batch    int                `json:"batch"`
	Profiles []*FunctionProfile `json:"profiles"`
}

// MarshalJSON encodes the set with its workflow spec.
func (s *Set) MarshalJSON() ([]byte, error) {
	return json.Marshal(setSpec{
		Workflow: s.Workflow.ToSpec(),
		Batch:    s.Batch,
		Profiles: s.Profiles,
	})
}

// ParseSet decodes and validates a serialized profile set.
func ParseSet(data []byte) (*Set, error) {
	var spec setSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, fmt.Errorf("profile: invalid set JSON: %w", err)
	}
	w, err := spec.Workflow.Build()
	if err != nil {
		return nil, err
	}
	groups := w.DecisionGroups()
	if len(spec.Profiles) != len(groups) {
		return nil, fmt.Errorf("profile: set has %d profiles for %d decision groups", len(spec.Profiles), len(groups))
	}
	for i, fp := range spec.Profiles {
		if fp == nil {
			return nil, fmt.Errorf("profile: set profile %d missing", i)
		}
		if err := fp.init(); err != nil {
			return nil, err
		}
		if want := GroupProfileName(groups[i].Nodes); fp.Function != want {
			return nil, fmt.Errorf("profile: set profile %d is for %q, group wants %q", i, fp.Function, want)
		}
	}
	return &Set{Workflow: w, Batch: spec.Batch, Profiles: spec.Profiles}, nil
}
