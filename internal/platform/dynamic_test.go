package platform

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"janus/internal/interfere"
	"janus/internal/perfmodel"
	"janus/internal/workflow"
)

// trigWorkflow builds the dynamic test workflow:
//
//	ingest -> triage(choice) -> {caption | detect -> ocr(map 1..4,
//	retry<=2)} -> gate(await) -> publish
//
// Decision groups: {ingest} {triage} {caption, detect} {ocr} {gate}
// {publish} — six groups, with caption and detect sharing one group
// whose members have split liveness after the choice resolves.
func trigWorkflow(t *testing.T) *workflow.Workflow {
	t.Helper()
	w, err := workflow.NewDynamic("trig", 1500*time.Millisecond,
		[]workflow.Node{
			{Name: "ingest", Function: "fe"},
			{Name: "triage", Function: "ico"},
			{Name: "caption", Function: "redis-read"},
			{Name: "detect", Function: "icl"},
			{Name: "ocr", Function: "aes-encrypt"},
			{Name: "gate", Function: "redis-read"},
			{Name: "publish", Function: "socket-comm"},
		},
		[][2]string{
			{"ingest", "triage"},
			{"triage", "caption"},
			{"triage", "detect"},
			{"detect", "ocr"},
			{"caption", "gate"},
			{"ocr", "gate"},
			{"gate", "publish"},
		},
		[]workflow.DynamicNode{
			{Step: "triage", Choice: &workflow.ChoiceSpec{Weights: []float64{0.55, 0.45}}},
			{Step: "ocr", Map: &workflow.MapSpec{MaxWidth: 4}, Retry: &workflow.RetrySpec{MaxRetries: 2, FailureProb: 0.3}},
			{Step: "gate", Await: true},
		})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func trigWorkload(t *testing.T, w *workflow.Workflow, n int) []*Request {
	t.Helper()
	coloc, err := interfere.NewCountSampler([]float64{0.5, 0.35, 0.15})
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := GenerateWorkload(WorkloadConfig{
		Workflow:          w,
		Functions:         perfmodel.Catalog(),
		N:                 n,
		Batch:             1,
		ArrivalRatePerSec: 5,
		Colocation:        coloc,
		Interference:      interfere.Default(),
		StageCorrelation:  0.5,
		Seed:              7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

// gateTriggers builds one resume trigger per request for the gate step.
func gateTriggers(reqs []*Request, tenant string, delay time.Duration) []Trigger {
	out := make([]Trigger, len(reqs))
	for i, r := range reqs {
		out[i] = Trigger{At: r.Arrival + delay, Tenant: tenant, Request: r.ID, Step: "gate"}
	}
	return out
}

var trigSizes = []int{2000, 2000, 2000, 2000, 2000, 2000}

func TestDynamicWorkloadResolutions(t *testing.T) {
	w := trigWorkflow(t)
	reqs := trigWorkload(t, w, 200)
	sawLight, sawHeavy, sawWide, sawRetry := false, false, false, false
	for _, r := range reqs {
		if r.Dyn == nil {
			t.Fatal("dynamic workflow generated without resolutions")
		}
		choice, ok := r.Dyn.Choice["triage"]
		if !ok || choice < 0 || choice > 1 {
			t.Fatalf("request %d triage choice %d", r.ID, choice)
		}
		if choice == 0 {
			sawLight = true
		} else {
			sawHeavy = true
		}
		width := r.Dyn.Width["ocr"]
		if width < 1 || width > 4 {
			t.Fatalf("request %d ocr width %d outside [1, 4]", r.ID, width)
		}
		if width > 1 {
			sawWide = true
		}
		attempts := r.Dyn.Attempts["ocr"]
		if len(attempts) != width {
			t.Fatalf("request %d has %d attempt counts for width %d", r.ID, len(attempts), width)
		}
		for rep, a := range attempts {
			if a < 0 || a > 2 {
				t.Fatalf("request %d replica %d plans %d failures", r.ID, rep, a)
			}
			if a > 0 {
				sawRetry = true
			}
			if len(r.Dyn.NodeDraws["ocr"][rep]) != a+1 {
				t.Fatalf("request %d replica %d draw count mismatch", r.ID, rep)
			}
		}
	}
	if !sawLight || !sawHeavy || !sawWide || !sawRetry {
		t.Fatalf("resolutions not diverse: light=%v heavy=%v wide=%v retry=%v", sawLight, sawHeavy, sawWide, sawRetry)
	}
}

func TestDynamicServingShapes(t *testing.T) {
	w := trigWorkflow(t)
	reqs := trigWorkload(t, w, 120)
	e := defaultExecutor(t)
	traces, _, err := e.RunReplay(
		[]TenantWorkload{{Requests: reqs, Allocator: &Fixed{System: "fixed", Sizes: trigSizes}}},
		ReplayConfig{Interval: 100 * time.Millisecond, Triggers: gateTriggers(reqs, "", 120*time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range traces[""] {
		r := reqs[tr.RequestID]
		byStep := map[string]int{}
		for _, st := range tr.Stages {
			byStep[st.Step]++
		}
		heavy := r.Dyn.Choice["triage"] == 1
		if heavy {
			if byStep["caption"] != 0 || byStep["detect"] != 1 {
				t.Fatalf("request %d heavy path executed caption=%d detect=%d", tr.RequestID, byStep["caption"], byStep["detect"])
			}
			wantOCR := 0
			for _, a := range r.Dyn.Attempts["ocr"] {
				wantOCR += a + 1
			}
			if byStep["ocr"] != wantOCR {
				t.Fatalf("request %d executed %d ocr attempts, resolution implies %d", tr.RequestID, byStep["ocr"], wantOCR)
			}
		} else {
			if byStep["caption"] != 1 || byStep["detect"] != 0 || byStep["ocr"] != 0 {
				t.Fatalf("request %d light path executed caption=%d detect=%d ocr=%d",
					tr.RequestID, byStep["caption"], byStep["detect"], byStep["ocr"])
			}
		}
		if byStep["ingest"] != 1 || byStep["triage"] != 1 || byStep["gate"] != 1 || byStep["publish"] != 1 {
			t.Fatalf("request %d static spine counts %v", tr.RequestID, byStep)
		}
		// The gate never starts before its trigger fires.
		for _, st := range tr.Stages {
			if st.Step == "gate" && st.Start < r.Arrival+120*time.Millisecond {
				t.Fatalf("request %d gate started %v, trigger at %v", tr.RequestID, st.Start, r.Arrival+120*time.Millisecond)
			}
		}
		// One decision per live group plus one per retry re-attempt.
		liveGroups := 4 // ingest, triage, {caption|detect}, gate... plus below
		retries := 0
		if heavy {
			liveGroups = 6
			for _, a := range r.Dyn.Attempts["ocr"] {
				retries += a
			}
		} else {
			liveGroups = 5 // ocr group fully pruned
		}
		if tr.Decisions != liveGroups+retries {
			t.Fatalf("request %d made %d decisions, want %d live groups + %d retries", tr.RequestID, tr.Decisions, liveGroups, retries)
		}
	}
}

func TestDynamicServingDeterministic(t *testing.T) {
	w := trigWorkflow(t)
	run := func() map[string][]Trace {
		reqs := trigWorkload(t, w, 80)
		traces, _, err := defaultExecutor(t).RunReplay(
			[]TenantWorkload{{Requests: reqs, Allocator: &Fixed{System: "fixed", Sizes: trigSizes}}},
			ReplayConfig{Interval: 100 * time.Millisecond, Triggers: gateTriggers(reqs, "", 90*time.Millisecond)})
		if err != nil {
			t.Fatal(err)
		}
		return traces
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Fatal("identical dynamic replays produced different traces")
	}
}

// shapeRecorder is a ShapeAwareAllocator that records the shape keys it
// is handed.
type shapeRecorder struct {
	Fixed
	shapes map[int]map[string]bool
}

func (s *shapeRecorder) AllocateShaped(req *Request, group int, shape string, remaining time.Duration) (int, bool) {
	if s.shapes[group] == nil {
		s.shapes[group] = map[string]bool{}
	}
	s.shapes[group][shape] = true
	return s.Allocate(req, group, remaining)
}

func TestDynamicShapeKeysReachAllocator(t *testing.T) {
	w := trigWorkflow(t)
	reqs := trigWorkload(t, w, 120)
	rec := &shapeRecorder{Fixed: Fixed{System: "rec", Sizes: trigSizes}, shapes: map[int]map[string]bool{}}
	if _, _, err := defaultExecutor(t).RunReplay(
		[]TenantWorkload{{Requests: reqs, Allocator: rec}},
		ReplayConfig{Interval: 100 * time.Millisecond, Triggers: gateTriggers(reqs, "", 90*time.Millisecond)}); err != nil {
		t.Fatal(err)
	}
	// The ocr group (index 3) is the only one with a map member: every
	// decision there carries a "w=N" key matching a generated width; no
	// other group ever sees a non-empty shape.
	for g, shapes := range rec.shapes {
		for shape := range shapes {
			if g == 3 {
				if !strings.HasPrefix(shape, "w=") {
					t.Fatalf("ocr group saw shape %q", shape)
				}
			} else if shape != "" {
				t.Fatalf("group %d saw unexpected shape %q", g, shape)
			}
		}
	}
	widths := map[string]bool{}
	for _, r := range reqs {
		if r.Dyn.Choice["triage"] == 1 {
			widths[fmt.Sprintf("w=%d", r.Dyn.Width["ocr"])] = true
		}
	}
	if !reflect.DeepEqual(rec.shapes[3], widths) {
		t.Fatalf("ocr shapes %v, workload widths %v", rec.shapes[3], widths)
	}
}

func TestAwaitRequiresTriggers(t *testing.T) {
	w := trigWorkflow(t)
	reqs := trigWorkload(t, w, 5)
	_, err := defaultExecutor(t).RunMixed(
		[]TenantWorkload{{Requests: reqs, Allocator: &Fixed{System: "fixed", Sizes: trigSizes}}})
	if err == nil || !strings.Contains(err.Error(), "no trigger") {
		t.Fatalf("await workflow without triggers not rejected: %v", err)
	}
	// Covering only some requests is rejected too.
	_, _, err = defaultExecutor(t).RunReplay(
		[]TenantWorkload{{Requests: reqs, Allocator: &Fixed{System: "fixed", Sizes: trigSizes}}},
		ReplayConfig{Interval: 100 * time.Millisecond, Triggers: gateTriggers(reqs, "", time.Millisecond)[:4]})
	if err == nil || !strings.Contains(err.Error(), "no trigger") {
		t.Fatalf("partial trigger coverage not rejected: %v", err)
	}
}

func TestStartTriggerAdmission(t *testing.T) {
	w := trigWorkflow(t)
	reqs := trigWorkload(t, w, 20)
	triggers := gateTriggers(reqs, "", 90*time.Millisecond)
	// Request 0 is started by a stream event well after its generated
	// arrival; its SLO clock must start at the fire instant.
	startAt := reqs[len(reqs)-1].Arrival + 500*time.Millisecond
	triggers = append(triggers, Trigger{At: startAt, Request: 0})
	// Its gate trigger must still be in the future relative to the new
	// start; move it past the start instant.
	triggers[0].At = startAt + 90*time.Millisecond
	traces, _, err := defaultExecutor(t).RunReplay(
		[]TenantWorkload{{Requests: reqs, Allocator: &Fixed{System: "fixed", Sizes: trigSizes}}},
		ReplayConfig{Interval: 100 * time.Millisecond, Triggers: triggers})
	if err != nil {
		t.Fatal(err)
	}
	tr := traces[""][0]
	if tr.Arrival != startAt {
		t.Fatalf("start-triggered request admitted at %v, trigger fired at %v", tr.Arrival, startAt)
	}
	if tr.Done < startAt || tr.E2E != tr.Done-startAt {
		t.Fatalf("start-triggered request E2E %v not measured from the fire instant (done %v)", tr.E2E, tr.Done)
	}
	if len(tr.Stages) == 0 || tr.Stages[0].Start < startAt {
		t.Fatalf("start-triggered request ran before its trigger: %+v", tr.Stages[0])
	}
}

func TestTriggerValidation(t *testing.T) {
	w := trigWorkflow(t)
	reqs := trigWorkload(t, w, 3)
	base := gateTriggers(reqs, "", time.Millisecond)
	cases := []struct {
		name string
		add  Trigger
		want string
	}{
		{"unknown tenant", Trigger{Tenant: "ghost", Request: 0, Step: "gate"}, "unknown tenant"},
		{"unknown request", Trigger{Request: 99, Step: "gate"}, "unknown request"},
		{"non-await step", Trigger{Request: 0, Step: "detect"}, "not an await step"},
		{"negative instant", Trigger{At: -time.Second, Request: 0, Step: "gate"}, "negative instant"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := defaultExecutor(t).RunReplay(
				[]TenantWorkload{{Requests: reqs, Allocator: &Fixed{System: "fixed", Sizes: trigSizes}}},
				ReplayConfig{Interval: 100 * time.Millisecond, Triggers: append(append([]Trigger(nil), base...), tc.add)})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v does not mention %q", err, tc.want)
			}
		})
	}
	// Duplicate start trigger.
	dup := append(append([]Trigger(nil), base...),
		Trigger{At: time.Second, Request: 1}, Trigger{At: 2 * time.Second, Request: 1})
	_, _, err := defaultExecutor(t).RunReplay(
		[]TenantWorkload{{Requests: reqs, Allocator: &Fixed{System: "fixed", Sizes: trigSizes}}},
		ReplayConfig{Interval: 100 * time.Millisecond, Triggers: dup})
	if err == nil || !strings.Contains(err.Error(), "more than one start trigger") {
		t.Fatalf("duplicate start trigger not rejected: %v", err)
	}
}

// TestDynamicAlongsideStaticTenant pins that a dynamic tenant and a
// static tenant share one replay cluster without perturbing the static
// tenant's semantics (its traces still complete and carry static-shape
// stage counts).
func TestDynamicAlongsideStaticTenant(t *testing.T) {
	w := trigWorkflow(t)
	dynReqs := trigWorkload(t, w, 40)
	statReqs := iaWorkload(t, 40)
	traces, _, err := defaultExecutor(t).RunReplay(
		[]TenantWorkload{
			{Tenant: "dyn", Requests: dynReqs, Allocator: &Fixed{System: "fixed", Sizes: trigSizes}},
			{Tenant: "stat", Requests: statReqs, Allocator: &Fixed{System: "fixed", Sizes: []int{2000, 2000, 2000}}},
		},
		ReplayConfig{Interval: 100 * time.Millisecond, Triggers: gateTriggers(dynReqs, "dyn", 90*time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	if len(traces["dyn"]) != 40 || len(traces["stat"]) != 40 {
		t.Fatalf("trace counts dyn=%d stat=%d", len(traces["dyn"]), len(traces["stat"]))
	}
	for _, tr := range traces["stat"] {
		if len(tr.Stages) != 3 {
			t.Fatalf("static tenant request %d executed %d stages", tr.RequestID, len(tr.Stages))
		}
	}
}
