package platform

import (
	"fmt"
	"testing"
)

// BenchmarkParkWake measures the indexed wake cycle at fleet depth: a
// park queue thousands deep across several functions with mixed
// allocations, woken under per-function thresholds that shift every
// iteration (so different subsets admit), with every admitted entry
// re-parked to hold the depth constant. The bench guard pins it at 0
// allocs/op: the wake path runs millions of times per fleet-grid
// config, and a single per-admission allocation there is the
// difference the BENCH_PR6 → PR9 trajectory exists to catch. Warm-up
// iterations before the timer grow the queue arrays to steady state —
// afterwards tombstone pressure resolves by in-place compaction, never
// by growth.

// benchThresholds is a fixed per-slot threshold table (parkThresholds
// without a cluster behind it).
type benchThresholds struct{ thr []int }

func (b *benchThresholds) threshold(slot int) int { return b.thr[slot] }

func BenchmarkParkWake(b *testing.B) {
	const fns = 8
	const depth = 4096
	var px parkIndex
	px.init()
	for s := 0; s < fns; s++ {
		px.slotOf(fmt.Sprintf("f%d", s))
	}
	for i := 0; i < depth; i++ {
		slot := i % fns
		px.park(slot, parkedNode{group: int32(i), mc: int32(100 * (1 + (i*7)%40)), fn: px.fns[slot]})
	}
	thr := &benchThresholds{thr: make([]int, fns)}
	woken := make([]parkedNode, 0, depth)
	cycle := func(i int) {
		// Shift each function's threshold so successive iterations admit
		// different mixed subsets (including none for some functions).
		for s := range thr.thr {
			thr.thr[s] = 100 * (1 + (i+s*5)%40)
		}
		cursor, limit := uint64(0), px.seq
		woken = woken[:0]
		for {
			slot, pos, seq, ok := px.next(cursor, limit, thr)
			if !ok {
				break
			}
			woken = append(woken, px.take(slot, pos))
			cursor = seq + 1
		}
		for j := range woken {
			px.park(int(woken[j].slot), woken[j])
		}
	}
	// Warm to steady state: the guard runs -benchtime=1x, so the very
	// first timed iteration must already find full-grown arrays.
	for i := 0; i < 64; i++ {
		cycle(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle(i)
	}
}
