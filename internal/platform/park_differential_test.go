package platform

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// This file locks the indexed park queue (parkindex.go) to the
// semantics of the seed's flat forward-scan wake. refPark below
// re-implements that scan literally — snapshot the FIFO queue, walk it
// in order, gate each entry on a per-function threshold cached between
// admission attempts, re-append skips and failed retries in place —
// and TestParkIndexMatchesReference drives both through long seeded
// random park/wake sequences, asserting identical wake order, attempt
// counts, and remaining-queue contents entry-for-entry after every op.
//
// Thresholds and acquire outcomes come from pure hash oracles keyed by
// the count of successful admissions, so both sides observe the same
// world by construction and the world obeys the cluster's contract:
// a failed acquire mutates nothing (the admission count — the only
// state thresholds depend on — does not move). Unlike the real
// cluster, the oracle threshold may overestimate (an entry that
// passes the gate can still fail its acquire), which exercises the
// index's restore-in-place path the exact threshold never reaches.

// parkWorld is the shared oracle state: thresholds are a pure function
// of (slot, admissions) and acquire outcomes of (entry id, admissions),
// so the only mutable state is the admission counter.
type parkWorld struct {
	seed       uint64
	admissions uint64
	maxThr     int
	// floor lifts every threshold; the drain phase raises it past the
	// largest parked allocation so every gate passes.
	floor int
	// alwaysAdmit forces every acquire to succeed — the drain phase
	// uses it, because with pure oracles a wake that admits nothing
	// leaves the world unchanged and would repeat forever.
	alwaysAdmit bool
}

// mix64 is SplitMix64's finalizer — a cheap, well-distributed pure hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (w *parkWorld) thresholdOf(slot int) int {
	h := mix64(w.seed ^ mix64(uint64(slot)+1) ^ mix64(w.admissions*0x9e3779b97f4a7c15))
	return w.floor + int(h%uint64(w.maxThr))
}

// acquire reports whether entry id's admission attempt succeeds at the
// current world state, bumping the admission count (the threshold
// epoch) only on success — a failed acquire mutates nothing.
func (w *parkWorld) acquire(id int32) bool {
	h := mix64(w.seed ^ 0xa5a5a5a5 ^ mix64(uint64(id)+1) ^ mix64(w.admissions+7))
	if w.alwaysAdmit || h%100 < 70 {
		w.admissions++
		return true
	}
	return false
}

// refParked is one parked entry in the reference: id stands in for the
// continuation identity, mc is the gated allocation.
type refParked struct {
	id   int32
	slot int
	mc   int32
}

// refPark is the seed implementation: a flat FIFO slice scanned in
// full on every wake, with the per-scan threshold cache keyed by a
// local generation bumped after every admission attempt.
type refPark struct {
	world   *parkWorld
	waiting []refParked
	slots   map[string]int
	fns     []string
	thr     []int
	thrGen  []int
	gen     int
}

func newRefPark(world *parkWorld) *refPark {
	return &refPark{world: world, slots: make(map[string]int)}
}

func (r *refPark) slotOf(fn string) int {
	s, ok := r.slots[fn]
	if !ok {
		s = len(r.slots)
		r.slots[fn] = s
		r.fns = append(r.fns, fn)
		r.thr = append(r.thr, 0)
		r.thrGen = append(r.thrGen, 0)
	}
	return s
}

func (r *refPark) park(fn string, id int32, mc int32) {
	r.waiting = append(r.waiting, refParked{id: id, slot: r.slotOf(fn), mc: mc})
}

// wake is the seed loop verbatim: snapshot, scan in FIFO order, gate on
// the cached threshold, re-append skips and failed retries in place,
// invalidate the cache after every admission attempt. It returns the
// woken ids in admission order and the number of acquire attempts.
func (r *refPark) wake() (woken []int32, attempts int) {
	if len(r.waiting) == 0 {
		return nil, 0
	}
	queue := r.waiting
	r.waiting = nil
	r.gen++
	for i := range queue {
		p := &queue[i]
		if r.thrGen[p.slot] != r.gen {
			r.thr[p.slot] = r.world.thresholdOf(p.slot)
			r.thrGen[p.slot] = r.gen
		}
		if int(p.mc) > r.thr[p.slot] {
			r.waiting = append(r.waiting, *p)
			continue
		}
		attempts++
		if r.world.acquire(p.id) {
			woken = append(woken, p.id)
		} else {
			r.waiting = append(r.waiting, *p)
		}
		r.gen++
	}
	return woken, attempts
}

// idxPark drives the real parkIndex through the same oracles, mirroring
// runState.wake's cursor loop (take, then restore on a failed acquire).
type idxPark struct {
	world *parkWorld
	px    parkIndex
}

func newIdxPark(world *parkWorld) *idxPark {
	p := &idxPark{world: world}
	p.px.init()
	return p
}

// threshold implements parkThresholds the way runState does, minus the
// generation cache (the oracle is cheap; the cache is a pure
// optimization the differential intentionally bypasses so a caching
// bug cannot mask an index bug).
func (p *idxPark) threshold(slot int) int {
	return p.world.thresholdOf(slot)
}

func (p *idxPark) park(fn string, id int32, mc int32) {
	// group carries the entry id: the index never interprets it.
	p.px.park(p.px.slotOf(fn), parkedNode{group: id, mc: mc, fn: fn})
}

func (p *idxPark) wake() (woken []int32, attempts int) {
	if p.px.live == 0 {
		return nil, 0
	}
	cursor, limit := uint64(0), p.px.seq
	for {
		slot, pos, seq, ok := p.px.next(cursor, limit, p)
		if !ok {
			return woken, attempts
		}
		rec := p.px.take(slot, pos)
		cursor = seq + 1
		attempts++
		if p.world.acquire(rec.group) {
			woken = append(woken, rec.group)
		} else {
			p.px.restore(slot, pos)
		}
	}
}

// contents lists the index's live entries in global FIFO order.
func (p *idxPark) contents() []refParked {
	type seqEntry struct {
		seq uint64
		e   refParked
	}
	var all []seqEntry
	for s := range p.px.queues {
		q := &p.px.queues[s]
		for i := range q.seqs {
			if q.tree[q.base+i] == parkSentinel {
				continue
			}
			all = append(all, seqEntry{seq: q.seqs[i], e: refParked{id: q.recs[i].group, slot: s, mc: q.recs[i].mc}})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	out := make([]refParked, len(all))
	for i, s := range all {
		out[i] = s.e
	}
	return out
}

// checkParkInvariants recounts every structural invariant of the index
// from scratch: strictly ascending sequences per queue, tree leaves
// mirroring live records (sentinel elsewhere), internal nodes holding
// the min of their children, and live counters matching the recount.
func checkParkInvariants(t *testing.T, px *parkIndex) {
	t.Helper()
	totalLive := 0
	var lastSeq uint64
	seenAny := false
	for s := range px.queues {
		q := &px.queues[s]
		if q.base == 0 {
			if len(q.seqs) != 0 || q.live != 0 {
				t.Fatalf("queue %d: no tree but %d seqs, live %d", s, len(q.seqs), q.live)
			}
			continue
		}
		if len(q.tree) != 2*q.base {
			t.Fatalf("queue %d: tree len %d, base %d", s, len(q.tree), q.base)
		}
		if len(q.seqs) != len(q.recs) || len(q.seqs) > q.base {
			t.Fatalf("queue %d: %d seqs, %d recs, base %d", s, len(q.seqs), len(q.recs), q.base)
		}
		live := 0
		for i := range q.seqs {
			if i > 0 && q.seqs[i-1] >= q.seqs[i] {
				t.Fatalf("queue %d: seqs not strictly ascending at %d: %d >= %d", s, i, q.seqs[i-1], q.seqs[i])
			}
			leaf := q.tree[q.base+i]
			if leaf == parkSentinel {
				continue
			}
			if leaf != q.recs[i].mc {
				t.Fatalf("queue %d: leaf %d holds %d, record mc %d", s, i, leaf, q.recs[i].mc)
			}
			live++
			if seenAny && q.seqs[i] == lastSeq {
				t.Fatalf("duplicate global seq %d", lastSeq)
			}
		}
		for i := len(q.seqs); i < q.base; i++ {
			if q.tree[q.base+i] != parkSentinel {
				t.Fatalf("queue %d: padding leaf %d not sentinel: %d", s, i, q.tree[q.base+i])
			}
		}
		if live != q.live {
			t.Fatalf("queue %d: live %d, recount %d", s, q.live, live)
		}
		for i := 1; i < q.base; i++ {
			m := q.tree[2*i]
			if r := q.tree[2*i+1]; r < m {
				m = r
			}
			if q.tree[i] != m {
				t.Fatalf("queue %d: internal node %d holds %d, children min %d", s, i, q.tree[i], m)
			}
		}
		totalLive += live
	}
	if totalLive != px.live {
		t.Fatalf("index live %d, recount %d", px.live, totalLive)
	}
}

// parkDiff runs one differential op sequence, comparing after every op.
func parkDiff(t *testing.T, seed int64, steps int) {
	t.Helper()
	fns := []string{"fa", "fb", "fc", "fd", "fe", "ff"}
	// Two worlds with identical parameters: each side consumes its own
	// admission counter, which the comparisons force to stay in step.
	// maxThr sits at half the allocation range: entries above it can
	// only leave in the drain, so queues run deep enough to force the
	// grow and tombstone-compaction paths.
	refWorld := &parkWorld{seed: uint64(seed) * 0x9e3779b97f4a7c15, maxThr: 2000}
	idxWorld := &parkWorld{seed: refWorld.seed, maxThr: refWorld.maxThr}
	ref := newRefPark(refWorld)
	idx := newIdxPark(idxWorld)
	r := rand.New(rand.NewSource(seed))
	nextID := int32(0)
	for step := 0; step < steps; step++ {
		if r.Intn(6) > 0 { // park five times as often as wake: queues run deep
			fn := fns[r.Intn(len(fns))]
			mc := int32(100 + r.Intn(40)*100)
			ref.park(fn, nextID, mc)
			idx.park(fn, nextID, mc)
			nextID++
		} else {
			refWoken, refAttempts := ref.wake()
			idxWoken, idxAttempts := idx.wake()
			if fmt.Sprint(refWoken) != fmt.Sprint(idxWoken) {
				t.Fatalf("step %d: wake order diverged:\nreference %v\nindexed   %v", step, refWoken, idxWoken)
			}
			if refAttempts != idxAttempts {
				t.Fatalf("step %d: attempts diverged: reference %d, indexed %d", step, refAttempts, idxAttempts)
			}
			if refWorld.admissions != idxWorld.admissions {
				t.Fatalf("step %d: admission counters diverged: reference %d, indexed %d", step, refWorld.admissions, idxWorld.admissions)
			}
		}
		if idx.px.live != len(ref.waiting) {
			t.Fatalf("step %d: queue depth diverged: reference %d, indexed %d", step, len(ref.waiting), idx.px.live)
		}
		// Full-content and structural comparisons are O(parked); do them
		// periodically rather than per step to keep deep runs affordable.
		if step%43 == 0 || step == steps-1 {
			got := idx.contents()
			for i := range got {
				if got[i] != ref.waiting[i] {
					t.Fatalf("step %d: queue entry %d diverged: reference %+v, indexed %+v", step, i, ref.waiting[i], got[i])
				}
			}
			checkParkInvariants(t, &idx.px)
		}
	}
	// Drain with forced admissions so the tail (take churn toward empty
	// queues) is covered; a pure-oracle wake that admits nothing would
	// leave the world unchanged and never converge.
	refWorld.alwaysAdmit, idxWorld.alwaysAdmit = true, true
	refWorld.floor, idxWorld.floor = 4100, 4100
	for len(ref.waiting) > 0 {
		refWoken, _ := ref.wake()
		idxWoken, _ := idx.wake()
		if fmt.Sprint(refWoken) != fmt.Sprint(idxWoken) {
			t.Fatalf("drain: wake order diverged:\nreference %v\nindexed   %v", refWoken, idxWoken)
		}
	}
	if idx.px.live != 0 {
		t.Fatalf("drain: index still holds %d live entries", idx.px.live)
	}
}

func TestParkIndexMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			parkDiff(t, seed, 3000)
		})
	}
}
