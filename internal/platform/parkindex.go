package platform

import "math"

// This file holds the indexed park queue that replaced the flat FIFO
// wake scan. The contract is exact emulation: a wake must admit parked
// acquisitions in precisely the order the seed forward scan did —
// repeatedly, the entry with the smallest global arrival sequence at or
// after the scan cursor whose allocation fits its function's current
// AcquireThreshold — without visiting the entries it skips. Parked
// entries bucket per function (the threshold is a per-function value),
// each bucket keeps FIFO arrival order under a min-millicore segment
// tree, and a wake step is a binary search plus one tree descent per
// function: O(functions · log parked) instead of O(parked) copies.

// parkSentinel marks a vacated leaf (a woken entry, or tree padding
// past the bucket's tail). It compares greater than every real
// allocation, so tombstones are invisible to the min index.
const parkSentinel = int32(math.MaxInt32)

// parkThresholds supplies the per-slot acquire threshold a wake step
// gates on. The serving plane's runState implements it with a cache
// invalidated by the cluster's mutation generation; the differential
// and fuzz harnesses implement it with a model.
type parkThresholds interface {
	threshold(slot int) int
}

// parkQueue is one function's parked acquisitions: records in FIFO
// arrival order (seqs strictly ascending), indexed by a 1-based
// segment tree over each record's millicores so "first entry at or
// after a cursor that fits a threshold" is one descent. Woken entries
// tombstone their leaf in place instead of compacting eagerly — a
// failed retry must restore at its original position to keep FIFO
// order, and tombstones are reclaimed amortized when the array fills.
type parkQueue struct {
	seqs []uint64
	recs []parkedNode
	// tree[base+i] is recs[i].mc (or parkSentinel when vacated);
	// tree[i] for i < base is the min of its two children. len(tree)
	// is 2*base with base a power of two.
	tree []int32
	base int
	live int
}

// push appends a fresh park at the queue's tail. seq must exceed every
// sequence already present (global arrival order). When the backing
// array is full it is compacted in place if at least half the slots
// are tombstones, and doubled otherwise — both amortized O(1) per
// push against the pushes that filled it.
func (q *parkQueue) push(seq uint64, rec parkedNode) {
	if len(q.seqs) == q.base {
		if dead := len(q.seqs) - q.live; q.base > 0 && dead*2 >= q.base {
			q.compact()
		} else {
			q.grow()
		}
	}
	pos := len(q.seqs)
	q.seqs = append(q.seqs, seq)
	q.recs = append(q.recs, rec)
	q.setLeaf(pos, rec.mc)
	q.live++
}

// take vacates position pos (a woken entry leaving the queue). The
// record and sequence stay in place so a failed retry can restore.
func (q *parkQueue) take(pos int) {
	q.setLeaf(pos, parkSentinel)
	q.live--
}

// restore undoes a take at the entry's original position, preserving
// its place in FIFO order. Valid only while no compaction has run
// since the take — the wake loop restores synchronously within the
// failed dispatch, before any push can intervene.
func (q *parkQueue) restore(pos int) {
	q.setLeaf(pos, q.recs[pos].mc)
	q.live++
}

// minMc reports the smallest live allocation in the queue, or
// parkSentinel when empty — the integer compare that lets a wake skip
// the whole function when its threshold sits below every parked entry.
func (q *parkQueue) minMc() int32 {
	if q.base == 0 {
		return parkSentinel
	}
	return q.tree[1]
}

// search returns the first position whose sequence is >= cursor
// (tombstones included; the tree descent skips them by sentinel).
func (q *parkQueue) search(cursor uint64) int {
	lo, hi := 0, len(q.seqs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if q.seqs[mid] < cursor {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// firstFit returns the smallest position >= lo whose live allocation
// is <= maxMc, or -1. One leaf-to-root climb along the right spine
// plus one root-to-leaf descent: O(log parked).
func (q *parkQueue) firstFit(lo int, maxMc int32) int {
	if lo >= len(q.seqs) {
		return -1
	}
	i := q.base + lo
	for {
		if q.tree[i] <= maxMc {
			// This subtree holds a fit; descend to its leftmost one.
			for i < q.base {
				i <<= 1
				if q.tree[i] > maxMc {
					i++
				}
			}
			return i - q.base
		}
		// Climb while we are a right child, then step to the sibling
		// subtree on our right. Climbing off the root (index 1 is odd)
		// means nothing at or after lo fits.
		for i&1 == 1 {
			i >>= 1
			if i == 0 {
				return -1
			}
		}
		i++
	}
}

// setLeaf writes one leaf and pulls the min toward the root, stopping
// at the first unchanged ancestor.
func (q *parkQueue) setLeaf(pos int, v int32) {
	i := q.base + pos
	q.tree[i] = v
	for i >>= 1; i >= 1; i >>= 1 {
		m := q.tree[2*i]
		if r := q.tree[2*i+1]; r < m {
			m = r
		}
		if q.tree[i] == m {
			break
		}
		q.tree[i] = m
	}
}

// rebuild recomputes every internal node from the leaves.
func (q *parkQueue) rebuild() {
	for i := q.base - 1; i >= 1; i-- {
		m := q.tree[2*i]
		if r := q.tree[2*i+1]; r < m {
			m = r
		}
		q.tree[i] = m
	}
}

// compact drops tombstoned entries, keeping live ones in order at the
// same base. Only called when at least half the slots are dead, so the
// space reclaimed pays for the rebuild.
func (q *parkQueue) compact() {
	w := 0
	for i := range q.seqs {
		if q.tree[q.base+i] != parkSentinel {
			q.seqs[w], q.recs[w] = q.seqs[i], q.recs[i]
			w++
		}
	}
	clear(q.recs[w:]) // release reqState pointers held by dead slots
	q.seqs, q.recs = q.seqs[:w], q.recs[:w]
	for i := range q.base {
		if i < w {
			q.tree[q.base+i] = q.recs[i].mc
		} else {
			q.tree[q.base+i] = parkSentinel
		}
	}
	q.rebuild()
}

// grow doubles the tree (base 4 from empty), carrying leaves —
// tombstones included — and rebuilding the internals.
func (q *parkQueue) grow() {
	nb := q.base * 2
	if nb == 0 {
		nb = 4
	}
	nt := make([]int32, 2*nb)
	for i := range nt {
		nt[i] = parkSentinel
	}
	copy(nt[nb:], q.tree[q.base:q.base+len(q.seqs)])
	q.base, q.tree = nb, nt
	q.rebuild()
}

// parkIndex is the run-wide park structure: one parkQueue per function
// (dense slots assigned on first park), a global arrival sequence that
// totally orders parks across functions, and the live count the
// starvation report uses.
type parkIndex struct {
	slots  map[string]int32
	fns    []string
	queues []parkQueue
	// seq is the next global arrival sequence; entries parked at or
	// after a scan's start (seq >= the scan's limit snapshot) are
	// invisible to that scan, exactly as the seed's snapshot was.
	seq  uint64
	live int
}

func (px *parkIndex) init() {
	px.slots = make(map[string]int32)
}

// slotOf returns fn's dense slot, assigning one on first park.
func (px *parkIndex) slotOf(fn string) int {
	if s, ok := px.slots[fn]; ok {
		return int(s)
	}
	s := len(px.queues)
	px.slots[fn] = int32(s)
	px.fns = append(px.fns, fn)
	px.queues = append(px.queues, parkQueue{})
	return s
}

// park enqueues a fresh park at the global tail of its function's
// queue.
func (px *parkIndex) park(slot int, rec parkedNode) {
	rec.slot = int32(slot)
	px.queues[slot].push(px.seq, rec)
	px.seq++
	px.live++
}

// take removes the entry for dispatch, returning its record. Its slot
// stays reserved until the dispatch either succeeds or restores.
func (px *parkIndex) take(slot, pos int) parkedNode {
	q := &px.queues[slot]
	rec := q.recs[pos]
	q.take(pos)
	px.live--
	return rec
}

// restore re-parks a failed dispatch at its original position.
func (px *parkIndex) restore(slot, pos int) {
	px.queues[slot].restore(pos)
	px.live++
}

// next finds the wake scan's next admission: the live entry with the
// smallest global sequence in [cursor, limit) whose allocation fits
// its function's current threshold. Functions whose threshold sits
// below their queue's min are skipped with one integer compare — the
// threshold-event gate that makes saturated phases cost O(functions)
// per release instead of O(parked).
func (px *parkIndex) next(cursor, limit uint64, thr parkThresholds) (slot, pos int, seq uint64, ok bool) {
	slot, pos, seq = -1, -1, limit
	for s := range px.queues {
		q := &px.queues[s]
		if q.live == 0 {
			continue
		}
		t := clampMc(thr.threshold(s))
		if q.minMc() > t {
			continue
		}
		p := q.firstFit(q.search(cursor), t)
		if p < 0 {
			continue
		}
		if qs := q.seqs[p]; qs < seq {
			slot, pos, seq = s, p, qs
		}
	}
	return slot, pos, seq, slot >= 0
}

// clampMc maps a threshold into the tree's int32 domain without ever
// colliding with the tombstone sentinel.
func clampMc(t int) int32 {
	if t >= int(parkSentinel) {
		return parkSentinel - 1
	}
	if t < 0 {
		return -1
	}
	return int32(t)
}
