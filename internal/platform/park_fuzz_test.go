package platform

import (
	"fmt"
	"testing"
)

// FuzzParkIndex decodes an arbitrary byte tape into a park/wake op
// sequence and drives the indexed park queue against the seed
// forward-scan reference (park_differential_test.go), comparing wake
// order, attempt counts, and remaining-queue contents after every op
// and recounting the index's structural invariants from scratch. The
// differential test pins random-but-well-formed sequences; the
// fuzzer's job is the adversarial tail — park bursts that force grow
// and tombstone-compaction at awkward fill ratios, wakes into empty
// or single-entry queues, and function skews no generator was written
// to produce. CI runs the checked-in corpus as a fixed regression
// suite; `go test -fuzz FuzzParkIndex ./internal/platform/` explores
// further.
func FuzzParkIndex(f *testing.F) {
	// Seed corpus: a park burst then wakes, alternating park/wake, a
	// single-function deep queue, and a high-mc queue no threshold
	// admits until the world turns.
	f.Add([]byte{0x01, 0x00, 0x10, 0x04, 0x20, 0x08, 0x30, 0x03, 0x00, 0x03, 0x00})
	f.Add([]byte{0x20, 0x00, 0x05, 0x03, 0x00, 0x01, 0x15, 0x03, 0x00, 0x02, 0x25, 0x03, 0x00})
	f.Add([]byte{0x07, 0x00, 0x01, 0x00, 0x02, 0x00, 0x03, 0x00, 0x04, 0x00, 0x05,
		0x00, 0x06, 0x00, 0x07, 0x03, 0x00, 0x03, 0x00, 0x03, 0x00})
	f.Add([]byte{0xff, 0x02, 0x27, 0x06, 0x27, 0x0a, 0x27, 0x0e, 0x27, 0x03, 0x00,
		0x02, 0x27, 0x03, 0x00, 0x03, 0x00, 0x03, 0x00, 0x03, 0x00})
	f.Fuzz(func(t *testing.T, tape []byte) {
		if len(tape) == 0 {
			return
		}
		fns := []string{"fa", "fb", "fc", "fd"}
		refWorld := &parkWorld{seed: mix64(uint64(tape[0]) + 1), maxThr: 2000}
		idxWorld := &parkWorld{seed: refWorld.seed, maxThr: refWorld.maxThr}
		ref := newRefPark(refWorld)
		idx := newIdxPark(idxWorld)
		nextID := int32(0)
		for pos := 1; pos+1 < len(tape); pos += 2 {
			op, arg := tape[pos], tape[pos+1]
			switch op % 4 {
			case 0, 1, 2: // park
				fn := fns[int(op>>2)%len(fns)]
				mc := int32(100 * (1 + int(arg)%40))
				ref.park(fn, nextID, mc)
				idx.park(fn, nextID, mc)
				nextID++
			case 3: // wake
				refWoken, refAttempts := ref.wake()
				idxWoken, idxAttempts := idx.wake()
				if fmt.Sprint(refWoken) != fmt.Sprint(idxWoken) {
					t.Fatalf("op %#x at %d: wake order diverged:\nreference %v\nindexed   %v", op, pos, refWoken, idxWoken)
				}
				if refAttempts != idxAttempts || refWorld.admissions != idxWorld.admissions {
					t.Fatalf("op %#x at %d: attempts/admissions diverged: reference %d/%d, indexed %d/%d",
						op, pos, refAttempts, refWorld.admissions, idxAttempts, idxWorld.admissions)
				}
			}
			got := idx.contents()
			if len(got) != len(ref.waiting) {
				t.Fatalf("op %#x at %d: queue depth diverged: reference %d, indexed %d", op, pos, len(ref.waiting), len(got))
			}
			for i := range got {
				if got[i] != ref.waiting[i] {
					t.Fatalf("op %#x at %d: queue entry %d diverged: reference %+v, indexed %+v", op, pos, i, ref.waiting[i], got[i])
				}
			}
			checkParkInvariants(t, &idx.px)
		}
	})
}
