package platform

import (
	"fmt"
	"time"

	"janus/internal/cluster"
	"janus/internal/obs"
)

// This file is the serving plane's replay entry point: RunMixed's
// discrete-event core with request admission driven by a non-stationary
// schedule's clock (requests carry arrival instants materialized from a
// replay.Schedule via WorkloadConfig.Arrivals) and a control loop
// interleaved on the same virtual clock. Each control tick observes
// per-function demand — busy and warm pods, parked acquisitions, cold
// starts — lets an elastic PoolController retarget the warm pools (pods
// built by scale-up pay the cold-start delay before they serve anyone,
// charged through cluster.AddWarmPod's churn accounting), fires the
// bilateral OnTick hook (hint-bundle regeneration lives there), and
// integrates the cluster's live pod footprint into pod-seconds — the
// provisioning-cost metric the replay experiments trade against SLO
// attainment.

// ReplayFunctionStats is one function's view of the serving plane at a
// control instant.
type ReplayFunctionStats struct {
	// Function is the deployed function name.
	Function string
	// Busy and Warm are the instantaneous busy and idle-warm pod counts.
	Busy, Warm int
	// Target is the warm pool's current target depth.
	Target int
	// Queued counts pod acquisitions for this function currently parked
	// on exhausted cluster capacity.
	Queued int
	// ColdStarts and Acquires count events since the previous tick.
	ColdStarts, Acquires int
}

// PoolController recomputes per-function warm-pool targets each control
// interval — the provider side's elastic half of the replay loop.
type PoolController interface {
	// Name identifies the controller in experiment output.
	Name() string
	// Targets maps function names to new pool targets, given the
	// per-function stats (sorted by function name). Functions absent
	// from the result keep their current target.
	Targets(now time.Duration, stats []ReplayFunctionStats) map[string]int
}

// ReplayAction is a deferred effect an OnTick hook schedules on the run's
// virtual clock: detection now, consequence after Delay — the shape of
// asynchronous hint regeneration.
type ReplayAction struct {
	Delay time.Duration
	Do    func(now time.Duration)
}

// ReplayConfig drives a replay run's control loop.
type ReplayConfig struct {
	// Interval is the control-loop period (required, > 0). The controller
	// runs, the OnTick hook fires, and pod-seconds integrate once per
	// interval, starting at virtual time zero.
	Interval time.Duration
	// Horizon is the schedule's end: ticks continue until the later of
	// the horizon and the last request's completion, so static and
	// elastic configurations pay for their pools over the same span.
	Horizon time.Duration
	// Controller elastically retargets warm pools; nil serves the whole
	// replay on the statically sized pools the cluster deployed with.
	Controller PoolController
	// OnTick, when non-nil, is invoked at every control instant after the
	// controller; returned actions run after their delays. The online
	// bilateral hook — miss-rate-triggered hint regeneration and
	// hot-swap — plugs in here.
	OnTick func(now time.Duration) []ReplayAction
	// Triggers is the external-event queue riding the same virtual
	// clock: timers and stream events that start requests (admission at
	// the fire instant instead of the request's Arrival) or resume them
	// at an await step. Every await step of every request must be
	// covered by a trigger, or prepareRun rejects the run.
	Triggers []Trigger
}

// ReplayMetrics summarizes a replay run's provisioning cost.
type ReplayMetrics struct {
	// PodSeconds is the rectangle-rule integral of the cluster's live pod
	// count (busy + idle warm) sampled at control instants — what keeping
	// the pools provisioned cost over the run.
	PodSeconds float64
	// PeakPods is the largest sampled pod footprint.
	PeakPods int
	// Ticks counts control instants.
	Ticks int
	// PoolGrown and PoolShrunk are the cluster's pool-churn counters:
	// warm pods built by scale-up (each after a full cold start) and idle
	// pods destroyed by scale-down.
	PoolGrown, PoolShrunk int
}

// replayWindow accumulates per-function observations between control
// ticks. queued is a live gauge (incremented when an acquisition parks,
// decremented when it finally lands); cold and acquires are window
// counters reset at each tick.
type replayWindow struct {
	queued   map[string]int
	cold     map[string]int
	acquires map[string]int
	// fns and stats are the snapshot's reusable buffers: the deployed
	// function set is fixed once serving starts, so each control tick
	// refills the same slice instead of rebuilding it.
	fns   []string
	stats []ReplayFunctionStats
}

func newReplayWindow() *replayWindow {
	return &replayWindow{queued: map[string]int{}, cold: map[string]int{}, acquires: map[string]int{}}
}

func (w *replayWindow) reset() {
	clear(w.cold)
	clear(w.acquires)
}

// snapshot fills the per-function stats for a control tick, sorted by
// function name so controllers see a deterministic order. The returned
// slice is reused by the next tick; controllers must not retain it.
func (w *replayWindow) snapshot(cl *cluster.Cluster) []ReplayFunctionStats {
	if w.fns == nil {
		w.fns = cl.Functions()
		w.stats = make([]ReplayFunctionStats, len(w.fns))
	}
	for i, fn := range w.fns {
		target, _ := cl.PoolTarget(fn)
		w.stats[i] = ReplayFunctionStats{
			Function:   fn,
			Busy:       cl.BusyPods(fn),
			Warm:       cl.WarmPods(fn),
			Target:     target,
			Queued:     w.queued[fn],
			ColdStarts: w.cold[fn],
			Acquires:   w.acquires[fn],
		}
	}
	return w.stats
}

// RunReplay serves the tenants' schedule-derived request streams on one
// shared cluster with the replay control loop interleaved: admissions
// fire at their schedule instants, the controller retargets warm pools
// each interval (scale-up pods land only after the cold-start delay;
// shrunk pools shed idle pods immediately and drain busy ones through
// Release), the OnTick hook closes the bilateral loop, and pod-seconds
// accumulate until both the horizon has passed and every request has
// completed. Traces are returned per tenant exactly as RunMixed returns
// them, alongside the run's provisioning metrics.
func (e *Executor) RunReplay(tenants []TenantWorkload, cfg ReplayConfig) (map[string][]Trace, *ReplayMetrics, error) {
	if cfg.Interval <= 0 {
		return nil, nil, fmt.Errorf("platform: replay needs a positive control interval, got %v", cfg.Interval)
	}
	if cfg.Horizon < 0 {
		return nil, nil, fmt.Errorf("platform: negative replay horizon %v", cfg.Horizon)
	}
	st, err := e.prepareRun(tenants, cfg.Triggers)
	if err != nil {
		return nil, nil, err
	}
	st.window = newReplayWindow()
	metrics := &ReplayMetrics{}
	// inflight counts scale-up pods being built per function, so a slow
	// cold start is not double-ordered by the next tick.
	inflight := map[string]int{}
	var tick func(now time.Duration)
	tick = func(now time.Duration) {
		if st.failed != nil {
			return
		}
		metrics.Ticks++
		pods := st.cluster.TotalPods()
		if pods > metrics.PeakPods {
			metrics.PeakPods = pods
		}
		metrics.PodSeconds += float64(pods) * cfg.Interval.Seconds()
		stats := st.window.snapshot(st.cluster)
		if st.om != nil {
			st.om.observePools(stats)
		}
		shedAny := false
		if cfg.Controller != nil {
			targets := cfg.Controller.Targets(now, stats)
			for _, fs := range stats {
				tgt, ok := targets[fs.Function]
				if !ok || tgt < 0 || tgt == fs.Target {
					continue
				}
				if err := st.cluster.SetPoolTarget(fs.Function, tgt); err != nil {
					st.fail(err)
					return
				}
				if st.tracer != nil {
					st.tracer.Emit(obs.Event{At: now, Kind: obs.KindPoolScale, Request: -1,
						Function: fs.Function, Value: int64(tgt), Aux: int64(fs.Target)})
				}
				if tgt > fs.Target {
					st.orderWarmPods(fs.Function, tgt, inflight)
				} else {
					shed := false
					for st.cluster.WarmPods(fs.Function) > tgt {
						if err := st.cluster.RemoveWarmPod(fs.Function); err != nil {
							st.fail(err)
							return
						}
						shed = true
					}
					// Shedding freed node capacity; parked acquisitions
					// must get first claim on it now, not at the next
					// unrelated pod release — freeing reservations for
					// queued work is the whole point of the shed.
					if shed {
						shedAny = true
						st.wake()
					}
				}
			}
		}
		if cfg.OnTick != nil {
			for _, a := range cfg.OnTick(now) {
				if a.Do == nil {
					continue
				}
				st.engine.Schedule(a.Delay, a.Do)
			}
		}
		st.window.reset()
		// Permanent starvation check: this tick was just popped, so an
		// empty event queue means no completions, admissions, or
		// in-flight pool builds will ever run — only future ticks. A
		// tick that just shed idle pods may still rescue the parked
		// work (the controller lowers contended targets further each
		// interval), so the run continues while shedding makes
		// progress; once a tick sheds nothing with the queue empty and
		// requests unfinished, rescheduling would only spin the virtual
		// clock. Stopping lets the engine drain so collect() reports
		// the same starvation diagnostic RunMixed gives.
		if st.done < st.total && st.engine.Pending() == 0 && !shedAny {
			return
		}
		if st.done < st.total || now < cfg.Horizon {
			st.engine.Schedule(cfg.Interval, tick)
		}
	}
	st.engine.ScheduleAt(0, tick)
	st.engine.Run()
	traces, err := st.collect()
	if err != nil {
		return nil, nil, err
	}
	metrics.PoolGrown, metrics.PoolShrunk = st.cluster.PoolChurn()
	return traces, metrics, nil
}

// orderWarmPods schedules cold-start builds for a raised pool target: the
// deficit between the target and the pods already warm or being built.
// Each build lands after the executor's full cold-start delay, re-checks
// the (possibly re-lowered) target, and silently yields when the cluster
// has no capacity. A yielded build is not retried while the target holds
// steady (re-ordering idle pods against a full cluster would spend the
// capacity the running work is queued on): the pool refills through
// Release as busy pods return, and the next target movement re-orders
// whatever deficit remains.
func (st *runState) orderWarmPods(fn string, target int, inflight map[string]int) {
	deficit := target - st.cluster.WarmPods(fn) - inflight[fn]
	for i := 0; i < deficit; i++ {
		inflight[fn]++
		st.engine.Schedule(st.ex.cfg.ColdStartup, func(time.Duration) {
			inflight[fn]--
			if st.failed != nil {
				return
			}
			cur, err := st.cluster.PoolTarget(fn)
			if err != nil {
				st.fail(err)
				return
			}
			if st.cluster.WarmPods(fn) >= cur {
				return
			}
			if _, err := st.cluster.AddWarmPod(fn); err != nil {
				return
			}
		})
	}
}
