package platform

import (
	"fmt"
	"time"

	"janus/internal/stats"
)

// Fixed is the simplest Allocator: immutable per-decision-group sizes,
// which is exactly the early-binding contract (sizes chosen at
// deployment, never adapted). The early-binding baselines wrap it with
// their sizing policies.
type Fixed struct {
	// System is the display name.
	System string
	// Sizes holds one millicore allocation per decision group; a fork
	// group runs every member at its group's size.
	Sizes []int
}

// Name implements Allocator.
func (f *Fixed) Name() string { return f.System }

// Allocate implements Allocator, ignoring runtime information.
func (f *Fixed) Allocate(req *Request, group int, _ time.Duration) (int, bool) {
	if group < 0 || group >= len(f.Sizes) {
		panic(fmt.Sprintf("platform: Fixed allocator for %d groups asked for group %d", len(f.Sizes), group))
	}
	return f.Sizes[group], true
}

// E2ESample extracts the end-to-end latency distribution (ms) of traces.
func E2ESample(traces []Trace) *stats.Sample {
	s := &stats.Sample{}
	for i := range traces {
		s.AddDuration(traces[i].E2E)
	}
	return s
}

// MillicoreSample extracts the per-request total allocation distribution.
func MillicoreSample(traces []Trace) *stats.Sample {
	s := &stats.Sample{}
	for i := range traces {
		s.Add(float64(traces[i].TotalMillicores))
	}
	return s
}

// MeanMillicores reports the average per-request total allocation — the
// paper's resource-consumption metric (e.g. Optimal approaches 3000
// millicores for a three-function chain with 1000 mc minimum sizes).
func MeanMillicores(traces []Trace) float64 {
	return MillicoreSample(traces).Mean()
}

// SLOViolationRate reports the fraction of requests exceeding their SLO.
func SLOViolationRate(traces []Trace) float64 {
	if len(traces) == 0 {
		return 0
	}
	violations := 0
	for i := range traces {
		if !traces[i].SLOMet() {
			violations++
		}
	}
	return float64(violations) / float64(len(traces))
}

// MissRate reports the fraction of allocation decisions that missed the
// hints table (always 0 for systems without one). A fan-out stage counts
// one decision regardless of its branch count.
func MissRate(traces []Trace) float64 {
	decisions, misses := 0, 0
	for i := range traces {
		decisions += traces[i].Decisions
		misses += traces[i].Misses
	}
	if decisions == 0 {
		return 0
	}
	return float64(misses) / float64(decisions)
}

// SlackSample extracts the paper's slack metric (1 - e2e/SLO) per request.
func SlackSample(traces []Trace) *stats.Sample {
	s := &stats.Sample{}
	for i := range traces {
		s.Add(stats.Slack(traces[i].E2E, traces[i].SLO))
	}
	return s
}
