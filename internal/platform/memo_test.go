package platform

import (
	"reflect"
	"testing"
	"time"
)

// stepAllocator is a deterministic allocator whose decision is a pure
// function of (group, millisecond-floored remaining budget) within an
// epoch — the MemoizableAllocator contract — with its own bookkeeping so
// tests can compare recorded side effects between memoized and
// unmemoized serving. Epoch 1 flips the decision function, modeling a
// hot-swapped bundle.
type stepAllocator struct {
	epoch   int64
	calls   int // Allocate invocations (memoized runs make fewer)
	records int // decisions recorded, cached or not
	budgets []time.Duration
}

func (s *stepAllocator) Name() string { return "step" }

func (s *stepAllocator) decide(group int, remaining time.Duration) (int, bool) {
	ms := int64(remaining / time.Millisecond)
	if ms < 0 {
		ms = -ms // requests past their deadline still get an allocation
	}
	mc := 500 + int(ms%7)*250 + group*100
	if s.epoch > 0 {
		mc += 1000
	}
	return mc, ms%3 != 0
}

func (s *stepAllocator) Allocate(req *Request, group int, remaining time.Duration) (int, bool) {
	s.calls++
	s.records++
	s.budgets = append(s.budgets, remaining)
	return s.decide(group, remaining)
}

func (s *stepAllocator) AllocEpoch() int64 { return s.epoch }

func (s *stepAllocator) RecordCached(group int, remaining time.Duration, epoch int64, hit bool) {
	s.records++
	s.budgets = append(s.budgets, remaining)
}

// plainStep forwards to a stepAllocator without embedding it, so none of
// the memo-contract methods are promoted and the platform serves it
// unmemoized.
type plainStep struct{ s *stepAllocator }

func (p plainStep) Name() string { return p.s.Name() }

func (p plainStep) Allocate(req *Request, group int, remaining time.Duration) (int, bool) {
	return p.s.Allocate(req, group, remaining)
}

var _ MemoizableAllocator = (*stepAllocator)(nil)
var _ Allocator = plainStep{}

// TestMemoizedServingMatchesUnmemoized serves the identical workload
// through the same decision function twice — once with the memo engaged,
// once with it hidden — and requires byte-identical traces plus identical
// recorded budgets: the memo may only skip redundant decision
// computation, never change an observable.
func TestMemoizedServingMatchesUnmemoized(t *testing.T) {
	reqs := iaWorkload(t, 300)
	memoed := &stepAllocator{}
	e := defaultExecutor(t)
	got, err := e.Run(reqs, memoed)
	if err != nil {
		t.Fatal(err)
	}
	plain := &stepAllocator{}
	want, err := defaultExecutor(t).Run(iaWorkload(t, 300), plainStep{plain})
	if err != nil {
		t.Fatal(err)
	}
	if memoed.calls >= plain.calls {
		t.Fatalf("memo never engaged: %d calls memoized vs %d unmemoized", memoed.calls, plain.calls)
	}
	if memoed.records != plain.records {
		t.Fatalf("recorded decisions diverged: %d memoized, %d unmemoized", memoed.records, plain.records)
	}
	if !reflect.DeepEqual(memoed.budgets, plain.budgets) {
		t.Fatal("recorded budget sequences diverged")
	}
	if len(got) != len(want) {
		t.Fatalf("trace counts diverged: %d vs %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		g.System, w.System = "", ""
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("trace %d diverged:\nmemoized   %+v\nunmemoized %+v", i, g, w)
		}
	}
}

// TestMemoClearedOnEpochChange flips the allocator's epoch mid-run (a
// hot-swapped bundle) and requires post-flip decisions to come from the
// new decision function, not stale memo entries.
func TestMemoClearedOnEpochChange(t *testing.T) {
	reqs := iaWorkload(t, 200)
	flip := &stepAllocator{}
	e := defaultExecutor(t)
	st, err := e.prepareRun([]TenantWorkload{{Requests: reqs, Allocator: flip}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st.engine.ScheduleAt(reqs[100].Arrival, func(time.Duration) { flip.epoch = 1 })
	st.engine.Run()
	traces, err := st.collect()
	if err != nil {
		t.Fatal(err)
	}
	sawNew := false
	for _, tr := range traces[""] {
		for _, stg := range tr.Stages {
			if stg.Millicores >= 1500 {
				sawNew = true
			}
		}
	}
	if !sawNew {
		t.Fatal("no post-epoch-flip allocation observed; memo served stale decisions")
	}
	// Replaying the run with the same flip must stay deterministic.
	flip2 := &stepAllocator{}
	st2, err := defaultExecutor(t).prepareRun([]TenantWorkload{{Requests: iaWorkload(t, 200), Allocator: flip2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st2.engine.ScheduleAt(reqs[100].Arrival, func(time.Duration) { flip2.epoch = 1 })
	st2.engine.Run()
	traces2, err := st2.collect()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(traces[""], traces2[""]) {
		t.Fatal("epoch-flip run not deterministic across replays")
	}
}
