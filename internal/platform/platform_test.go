package platform

import (
	"sync"
	"testing"
	"time"

	"janus/internal/cluster"
	"janus/internal/interfere"
	"janus/internal/perfmodel"
	"janus/internal/workflow"
)

func iaWorkload(t *testing.T, n int) []*Request {
	t.Helper()
	return iaWorkload2(n)
}

func defaultExecutor(t *testing.T) *Executor {
	t.Helper()
	e, err := NewExecutor(DefaultExecutorConfig(), perfmodel.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestGenerateWorkloadShape(t *testing.T) {
	reqs := iaWorkload(t, 50)
	if len(reqs) != 50 {
		t.Fatalf("generated %d requests, want 50", len(reqs))
	}
	prev := time.Duration(-1)
	for i, r := range reqs {
		if r.ID != i {
			t.Fatalf("request %d has ID %d", i, r.ID)
		}
		if len(r.Draws) != 3 || len(r.Groups) != 3 {
			t.Fatalf("request %d has %d draws / %d stages", i, len(r.Draws), len(r.Groups))
		}
		if r.Arrival <= prev {
			t.Fatalf("arrivals not strictly increasing at %d", i)
		}
		prev = r.Arrival
		for s, branches := range r.Draws {
			if len(branches) != 1 {
				t.Fatalf("request %d chain stage %d has %d branch draws", i, s, len(branches))
			}
			for b, d := range branches {
				if d.WS <= 0 || d.Slowdown < 1 || d.Noise <= 0 {
					t.Fatalf("request %d stage %d branch %d has invalid draw %+v", i, s, b, d)
				}
			}
		}
	}
}

func TestGenerateWorkloadDeterministic(t *testing.T) {
	a := iaWorkload(t, 10)
	b := iaWorkload(t, 10)
	for i := range a {
		if a[i].Arrival != b[i].Arrival {
			t.Fatal("arrivals differ across identical generations")
		}
		for s := range a[i].Draws {
			for br := range a[i].Draws[s] {
				if a[i].Draws[s][br] != b[i].Draws[s][br] {
					t.Fatal("draws differ across identical generations")
				}
			}
		}
	}
}

func TestGenerateWorkloadValidation(t *testing.T) {
	coloc, _ := interfere.NewCountSampler([]float64{1})
	base := WorkloadConfig{
		Workflow:   workflow.IntelligentAssistant(),
		Functions:  perfmodel.Catalog(),
		N:          1,
		Colocation: coloc,
	}
	bad := base
	bad.Workflow = nil
	if _, err := GenerateWorkload(bad); err == nil {
		t.Error("nil workflow accepted")
	}
	bad = base
	bad.N = 0
	if _, err := GenerateWorkload(bad); err == nil {
		t.Error("N=0 accepted")
	}
	bad = base
	bad.Colocation = nil
	if _, err := GenerateWorkload(bad); err == nil {
		t.Error("nil colocation accepted")
	}
	bad = base
	bad.Functions = map[string]*perfmodel.Function{}
	if _, err := GenerateWorkload(bad); err == nil {
		t.Error("missing functions accepted")
	}
	bad = base
	bad.Workflow = workflow.VideoAnalyze()
	bad.Batch = 2 // FE/ICO are not batchable
	if _, err := GenerateWorkload(bad); err == nil {
		t.Error("unbatchable workflow at batch 2 accepted")
	}
}

func TestRunProducesCompleteTraces(t *testing.T) {
	reqs := iaWorkload(t, 100)
	traces, err := defaultExecutor(t).Run(reqs, &Fixed{System: "fixed", Sizes: []int{2000, 2000, 2000}})
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 100 {
		t.Fatalf("%d traces, want 100", len(traces))
	}
	for i, tr := range traces {
		if tr.RequestID != i {
			t.Fatalf("trace %d has request ID %d", i, tr.RequestID)
		}
		if len(tr.Stages) != 3 {
			t.Fatalf("trace %d has %d stages", i, len(tr.Stages))
		}
		if tr.TotalMillicores != 6000 {
			t.Fatalf("trace %d total millicores = %d, want 6000", i, tr.TotalMillicores)
		}
		if tr.E2E <= 0 || tr.Done <= tr.Arrival {
			t.Fatalf("trace %d has times e2e=%v done=%v arrival=%v", i, tr.E2E, tr.Done, tr.Arrival)
		}
		var stageSum time.Duration
		for s, st := range tr.Stages {
			if st.Millicores != 2000 {
				t.Fatalf("trace %d stage %d millicores = %d", i, s, st.Millicores)
			}
			if st.End <= st.Start {
				t.Fatalf("trace %d stage %d has non-positive span", i, s)
			}
			stageSum += st.End - st.Start
		}
		if tr.E2E < stageSum {
			t.Fatalf("trace %d e2e %v below stage sum %v", i, tr.E2E, stageSum)
		}
		if tr.System != "fixed" {
			t.Fatalf("trace system = %q", tr.System)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	e := defaultExecutor(t)
	a, err := e.Run(iaWorkload(t, 30), &Fixed{System: "fixed", Sizes: []int{1500, 1500, 1500}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(iaWorkload(t, 30), &Fixed{System: "fixed", Sizes: []int{1500, 1500, 1500}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].E2E != b[i].E2E || a[i].TotalMillicores != b[i].TotalMillicores {
			t.Fatal("identical runs diverged")
		}
	}
}

func TestCloneRunsIndependently(t *testing.T) {
	e := defaultExecutor(t)
	want, err := e.Run(iaWorkload(t, 30), &Fixed{System: "fixed", Sizes: []int{1500, 1500, 1500}})
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent runs on per-goroutine clones must each reproduce the
	// sequential result exactly: no shared executor state.
	const workers = 4
	var wg sync.WaitGroup
	got := make([][]Trace, workers)
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		i := i
		clone := e.Clone()
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[i], errs[i] = clone.Run(iaWorkload2(30), &Fixed{System: "fixed", Sizes: []int{1500, 1500, 1500}})
		}()
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		for j := range want {
			if got[i][j].E2E != want[j].E2E || got[i][j].TotalMillicores != want[j].TotalMillicores {
				t.Fatalf("clone %d diverged from the sequential run at trace %d", i, j)
			}
		}
	}
}

// iaWorkload2 is iaWorkload without the testing.T, for use off the test
// goroutine.
func iaWorkload2(n int) []*Request {
	coloc, err := interfere.NewCountSampler([]float64{0.5, 0.35, 0.15})
	if err != nil {
		panic(err)
	}
	reqs, err := GenerateWorkload(WorkloadConfig{
		Workflow:          workflow.IntelligentAssistant(),
		Functions:         perfmodel.Catalog(),
		N:                 n,
		Batch:             1,
		ArrivalRatePerSec: 2,
		Colocation:        coloc,
		Interference:      interfere.Default(),
		Seed:              42,
	})
	if err != nil {
		panic(err)
	}
	return reqs
}

func TestBiggerAllocationsRunFaster(t *testing.T) {
	e := defaultExecutor(t)
	small, err := e.Run(iaWorkload(t, 60), &Fixed{System: "s", Sizes: []int{1000, 1000, 1000}})
	if err != nil {
		t.Fatal(err)
	}
	big, err := e.Run(iaWorkload(t, 60), &Fixed{System: "b", Sizes: []int{3000, 3000, 3000}})
	if err != nil {
		t.Fatal(err)
	}
	if E2ESample(big).Mean() >= E2ESample(small).Mean() {
		t.Fatalf("3000mc mean e2e %.1fms not below 1000mc %.1fms",
			E2ESample(big).Mean(), E2ESample(small).Mean())
	}
	if E2ESample(big).Percentile(99) >= E2ESample(small).Percentile(99) {
		t.Fatalf("3000mc P99 e2e %.1fms not below 1000mc %.1fms",
			E2ESample(big).Percentile(99), E2ESample(small).Percentile(99))
	}
}

func TestCapacityQueueingEventuallyServes(t *testing.T) {
	cfg := DefaultExecutorConfig()
	// A tiny node: only one 3000mc pod fits at a time.
	cfg.Cluster = cluster.Config{Nodes: 1, NodeMillicores: 3500, PoolSize: 1, IdleMillicores: 100}
	e, err := NewExecutor(cfg, perfmodel.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	reqs := iaWorkload(t, 20)
	traces, err := e.Run(reqs, &Fixed{System: "fixed", Sizes: []int{3000, 3000, 3000}})
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range traces {
		if len(tr.Stages) != 3 {
			t.Fatalf("request %d starved: %d stages", i, len(tr.Stages))
		}
	}
}

func TestLiveInterferenceMode(t *testing.T) {
	cfg := DefaultExecutorConfig()
	cfg.LiveInterference = true
	cfg.Interference = interfere.Default()
	e, err := NewExecutor(cfg, perfmodel.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	traces, err := e.Run(iaWorkload(t, 40), &Fixed{System: "live", Sizes: []int{2000, 2000, 2000}})
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 40 {
		t.Fatalf("%d traces", len(traces))
	}
	cfg.Interference = nil
	if _, err := NewExecutor(cfg, perfmodel.Catalog()); err == nil {
		t.Fatal("LiveInterference without model accepted")
	}
}

func TestExecutorValidation(t *testing.T) {
	if _, err := NewExecutor(DefaultExecutorConfig(), nil); err == nil {
		t.Error("nil catalog accepted")
	}
	bad := DefaultExecutorConfig()
	bad.WarmStartup = -time.Second
	if _, err := NewExecutor(bad, perfmodel.Catalog()); err == nil {
		t.Error("negative startup accepted")
	}
	e := defaultExecutor(t)
	if _, err := e.Run(nil, &Fixed{System: "x", Sizes: []int{1}}); err == nil {
		t.Error("empty request set accepted")
	}
	if _, err := e.Run(iaWorkload(t, 1), nil); err == nil {
		t.Error("nil allocator accepted")
	}
}

type badAllocator struct{}

func (badAllocator) Name() string { return "bad" }
func (badAllocator) Allocate(*Request, int, time.Duration) (int, bool) {
	return 0, true
}

func TestNonPositiveAllocationFailsRun(t *testing.T) {
	e := defaultExecutor(t)
	if _, err := e.Run(iaWorkload(t, 3), badAllocator{}); err == nil {
		t.Fatal("allocator returning 0 millicores should fail the run")
	}
}

func TestMetricsHelpers(t *testing.T) {
	traces := []Trace{
		{E2E: time.Second, SLO: 2 * time.Second, TotalMillicores: 3000, Stages: make([]StageTrace, 3), Decisions: 3},
		{E2E: 3 * time.Second, SLO: 2 * time.Second, TotalMillicores: 5000, Stages: make([]StageTrace, 3), Decisions: 3, Misses: 1},
	}
	if got := MeanMillicores(traces); got != 4000 {
		t.Errorf("MeanMillicores = %v", got)
	}
	if got := SLOViolationRate(traces); got != 0.5 {
		t.Errorf("SLOViolationRate = %v", got)
	}
	if got := MissRate(traces); got != 1.0/6 {
		t.Errorf("MissRate = %v", got)
	}
	slack := SlackSample(traces)
	if slack.Len() != 2 || slack.Min() != -0.5 || slack.Max() != 0.5 {
		t.Errorf("SlackSample = %v", slack.Values())
	}
	if E2ESample(traces).Mean() != 2000 {
		t.Errorf("E2ESample mean = %v", E2ESample(traces).Mean())
	}
	if SLOViolationRate(nil) != 0 || MissRate(nil) != 0 {
		t.Error("empty-trace metrics should be 0")
	}
}

func TestFixedPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Fixed out-of-range stage did not panic")
		}
	}()
	f := &Fixed{System: "x", Sizes: []int{1000}}
	f.Allocate(nil, 1, 0)
}

// diamondSP is od fanning out to concurrent (qa, ts) branches joining into
// ico — the canonical series-parallel shape, on catalog functions.
func diamondSP(t *testing.T) *workflow.Workflow {
	t.Helper()
	w, err := workflow.NewSeriesParallel("diamond", 3500*time.Millisecond, [][]string{{"od"}, {"qa", "ts"}, {"ico"}})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func spWorkload(t *testing.T, w *workflow.Workflow, n int) []*Request {
	t.Helper()
	coloc, err := interfere.NewCountSampler([]float64{0.5, 0.35, 0.15})
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := GenerateWorkload(WorkloadConfig{
		Workflow:          w,
		Functions:         perfmodel.Catalog(),
		N:                 n,
		Batch:             1,
		ArrivalRatePerSec: 2,
		Colocation:        coloc,
		Interference:      interfere.Default(),
		Seed:              42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func TestGenerateWorkloadSeriesParallel(t *testing.T) {
	reqs := spWorkload(t, diamondSP(t), 20)
	for i, r := range reqs {
		if len(r.Groups) != 3 || len(r.Draws) != 3 {
			t.Fatalf("request %d: %d stages / %d draw stages", i, len(r.Groups), len(r.Draws))
		}
		if len(r.Groups[1]) != 2 || len(r.Draws[1]) != 2 {
			t.Fatalf("request %d: fan-out stage has %d branches / %d draws", i, len(r.Groups[1]), len(r.Draws[1]))
		}
	}
}

// TestSeriesParallelJoinSemantics serves the diamond and checks fork-join
// execution on the substrate: one pod (and one StageTrace) per branch, both
// branches launched together after stage 0, and the join — stage 2's start —
// gated by the slowest branch.
func TestSeriesParallelJoinSemantics(t *testing.T) {
	traces, err := defaultExecutor(t).Run(spWorkload(t, diamondSP(t), 40), &Fixed{System: "fixed", Sizes: []int{2000, 2000, 2000}})
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range traces {
		if len(tr.Stages) != 4 {
			t.Fatalf("trace %d has %d branch executions, want 4", i, len(tr.Stages))
		}
		if tr.Decisions != 3 {
			t.Fatalf("trace %d has %d decisions, want 3 (one per stage)", i, tr.Decisions)
		}
		if tr.TotalMillicores != 8000 {
			t.Fatalf("trace %d total millicores = %d, want 8000 (branches included)", i, tr.TotalMillicores)
		}
		byStage := map[int][]StageTrace{}
		for _, st := range tr.Stages {
			byStage[st.Stage] = append(byStage[st.Stage], st)
		}
		if len(byStage[1]) != 2 {
			t.Fatalf("trace %d stage 1 ran %d branches", i, len(byStage[1]))
		}
		if byStage[1][0].Branch == byStage[1][1].Branch {
			t.Fatalf("trace %d stage 1 branches share index %d", i, byStage[1][0].Branch)
		}
		end0 := byStage[0][0].End
		var slowest time.Duration
		for _, b := range byStage[1] {
			if b.Start < end0 {
				t.Fatalf("trace %d: branch %s started %v before stage 0 ended %v", i, b.Function, b.Start, end0)
			}
			if b.End > slowest {
				slowest = b.End
			}
		}
		if got := byStage[2][0].Start; got < slowest {
			t.Fatalf("trace %d: join fired at %v before slowest branch ended %v", i, got, slowest)
		}
		if tr.Done != byStage[2][0].End || tr.E2E != tr.Done-tr.Arrival {
			t.Fatalf("trace %d: done %v / e2e %v inconsistent", i, tr.Done, tr.E2E)
		}
	}
}

// countingAllocator records how many times Allocate is invoked per
// (request, stage) and always reports a miss.
type countingAllocator struct {
	size  int
	calls map[[2]int]int
}

func (c *countingAllocator) Name() string { return "counting" }
func (c *countingAllocator) Allocate(req *Request, stage int, _ time.Duration) (int, bool) {
	c.calls[[2]int{req.ID, stage}]++
	return c.size, false
}

// TestAllocateOncePerStageUnderParking is the regression test for the
// retry-miss bug: a stage whose branch parks on exhausted capacity must NOT
// re-invoke the allocator (re-paying decision overhead and re-counting the
// miss) on every retry — the decision is made once per stage and reused.
func TestAllocateOncePerStageUnderParking(t *testing.T) {
	cfg := DefaultExecutorConfig()
	// One 3000mc pod fits at a time: heavy parking.
	cfg.Cluster = cluster.Config{Nodes: 1, NodeMillicores: 3500, PoolSize: 1, IdleMillicores: 100}
	e, err := NewExecutor(cfg, perfmodel.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	alloc := &countingAllocator{size: 3000, calls: make(map[[2]int]int)}
	traces, err := e.Run(iaWorkload(t, 20), alloc)
	if err != nil {
		t.Fatal(err)
	}
	parked := 0
	for _, tr := range traces {
		parked += tr.Parked
		if tr.Misses != 3 || tr.Decisions != 3 {
			t.Fatalf("request %d: %d misses / %d decisions, want 3/3 (one decision per stage)", tr.RequestID, tr.Misses, tr.Decisions)
		}
	}
	if parked == 0 {
		t.Fatal("no branch ever parked; the regression scenario did not trigger")
	}
	for key, n := range alloc.calls {
		if n != 1 {
			t.Fatalf("request %d stage %d decided %d times, want once", key[0], key[1], n)
		}
	}
}

// TestStarvedRequestsFailTheRun is the regression test for the silent
// zero-trace drain: an allocation no node can ever host must fail the run
// explicitly instead of returning E2E=0, zero-cost traces that count as
// SLO-met and free.
func TestStarvedRequestsFailTheRun(t *testing.T) {
	cfg := DefaultExecutorConfig()
	cfg.Cluster = cluster.Config{Nodes: 1, NodeMillicores: 3500, PoolSize: 1, IdleMillicores: 100}
	e, err := NewExecutor(cfg, perfmodel.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Run(iaWorkload(t, 5), &Fixed{System: "fixed", Sizes: []int{4000, 4000, 4000}})
	if err == nil {
		t.Fatal("requests that can never acquire capacity drained out without an error")
	}
}

// vaWorkload generates a Video Analyze chain workload with its own seed so
// mixed-run tests can pit distinct tenants against each other.
func vaWorkload(t *testing.T, n int, seed uint64) []*Request {
	t.Helper()
	coloc, err := interfere.NewCountSampler([]float64{0.4, 0.4, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := GenerateWorkload(WorkloadConfig{
		Workflow:          workflow.VideoAnalyze(),
		Functions:         perfmodel.Catalog(),
		N:                 n,
		Batch:             1,
		ArrivalRatePerSec: 2,
		Colocation:        coloc,
		Interference:      interfere.Default(),
		Seed:              seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func TestRunMixedValidation(t *testing.T) {
	e := defaultExecutor(t)
	alloc := &Fixed{System: "x", Sizes: []int{1000, 1000, 1000}}
	reqs := iaWorkload(t, 2)
	if _, err := e.RunMixed(nil); err == nil {
		t.Error("empty tenant set accepted")
	}
	if _, err := e.RunMixed([]TenantWorkload{
		{Tenant: "a", Requests: reqs, Allocator: alloc},
		{Tenant: "a", Requests: reqs, Allocator: alloc},
	}); err == nil {
		t.Error("duplicate tenant names accepted")
	}
	if _, err := e.RunMixed([]TenantWorkload{
		{Tenant: "", Requests: reqs, Allocator: alloc},
		{Tenant: "b", Requests: reqs, Allocator: alloc},
	}); err == nil {
		t.Error("unnamed tenant in a mixed run accepted")
	}
	if _, err := e.RunMixed([]TenantWorkload{{Tenant: "a", Requests: nil, Allocator: alloc}}); err == nil {
		t.Error("tenant without requests accepted")
	}
	if _, err := e.RunMixed([]TenantWorkload{{Tenant: "a", Requests: reqs, Allocator: nil}}); err == nil {
		t.Error("tenant without allocator accepted")
	}
	dup := []*Request{reqs[0], reqs[0]}
	if _, err := e.RunMixed([]TenantWorkload{{Tenant: "a", Requests: dup, Allocator: alloc}}); err == nil {
		t.Error("duplicate request IDs accepted")
	}
}

// TestRunMixedTenantAccounting merges three tenants — two VA chains and one
// IA chain — and checks the per-tenant split: every tenant gets exactly one
// trace per request, tagged with its tenant and system, and the per-tenant
// counts sum to the merged workload size.
func TestRunMixedTenantAccounting(t *testing.T) {
	e := defaultExecutor(t)
	tenants := []TenantWorkload{
		{Tenant: "ia", Requests: iaWorkload(t, 30), Allocator: &Fixed{System: "s-ia", Sizes: []int{2000, 2000, 2000}}},
		{Tenant: "va1", Requests: vaWorkload(t, 20, 7), Allocator: &Fixed{System: "s-va1", Sizes: []int{1500, 1500, 1500}}},
		{Tenant: "va2", Requests: vaWorkload(t, 25, 8), Allocator: &Fixed{System: "s-va2", Sizes: []int{2500, 2500, 2500}}},
	}
	out, err := e.RunMixed(tenants)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("%d tenants in result, want 3", len(out))
	}
	total := 0
	for _, tw := range tenants {
		traces := out[tw.Tenant]
		if len(traces) != len(tw.Requests) {
			t.Fatalf("tenant %s: %d traces for %d requests", tw.Tenant, len(traces), len(tw.Requests))
		}
		total += len(traces)
		for i, tr := range traces {
			if tr.RequestID != i {
				t.Fatalf("tenant %s trace %d has request ID %d", tw.Tenant, i, tr.RequestID)
			}
			if tr.Tenant != tw.Tenant || tr.System != tw.Allocator.Name() {
				t.Fatalf("tenant %s trace %d tagged %q/%q", tw.Tenant, i, tr.Tenant, tr.System)
			}
			if len(tr.Stages) != 3 || tr.E2E <= 0 {
				t.Fatalf("tenant %s trace %d incomplete: %d stages e2e=%v", tw.Tenant, i, len(tr.Stages), tr.E2E)
			}
		}
	}
	if want := 30 + 20 + 25; total != want {
		t.Fatalf("per-tenant trace counts sum to %d, want %d", total, want)
	}
}

// TestRunMixedDeterministic replays the identical mixed run twice; the
// merged event interleaving must be a pure function of the inputs.
func TestRunMixedDeterministic(t *testing.T) {
	e := defaultExecutor(t)
	run := func() map[string][]Trace {
		out, err := e.RunMixed([]TenantWorkload{
			{Tenant: "ia", Requests: iaWorkload(t, 25), Allocator: &Fixed{System: "f", Sizes: []int{2000, 2000, 2000}}},
			{Tenant: "va", Requests: vaWorkload(t, 25, 7), Allocator: &Fixed{System: "f", Sizes: []int{1500, 1500, 1500}}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	for tenant := range a {
		for i := range a[tenant] {
			ta, tb := a[tenant][i], b[tenant][i]
			if ta.E2E != tb.E2E || ta.TotalMillicores != tb.TotalMillicores || ta.Parked != tb.Parked {
				t.Fatalf("tenant %s trace %d diverged across identical mixed runs", tenant, i)
			}
			for s := range ta.Stages {
				if ta.Stages[s] != tb.Stages[s] {
					t.Fatalf("tenant %s trace %d stage %d diverged", tenant, i, s)
				}
			}
		}
	}
}

// TestRunMixedContention is the tentpole's point: the same tenant workload
// must observe worse service when sharing the cluster with a competing
// tenant than when it owns the substrate — queueing (parking) and warm-pool
// pressure (cold starts) from cross-tenant load must show up in its traces.
func TestRunMixedContention(t *testing.T) {
	cfg := DefaultExecutorConfig()
	// Two 2500mc pods fit at a time: mixing doubles admission pressure on
	// a substrate that can barely serve one tenant.
	cfg.Cluster = cluster.Config{Nodes: 1, NodeMillicores: 6000, PoolSize: 1, IdleMillicores: 100}
	e, err := NewExecutor(cfg, perfmodel.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	alloc := &Fixed{System: "f", Sizes: []int{2500, 2500, 2500}}
	alone, err := e.Run(vaWorkload(t, 40, 7), alloc)
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := e.RunMixed([]TenantWorkload{
		{Tenant: "va", Requests: vaWorkload(t, 40, 7), Allocator: alloc},
		{Tenant: "rival", Requests: vaWorkload(t, 40, 99), Allocator: alloc},
	})
	if err != nil {
		t.Fatal(err)
	}
	cost := func(traces []Trace) (parked, cold int) {
		for _, tr := range traces {
			parked += tr.Parked
			for _, st := range tr.Stages {
				if st.Cold {
					cold++
				}
			}
		}
		return
	}
	aloneParked, aloneCold := cost(alone)
	mixedParked, mixedCold := cost(mixed["va"])
	if mixedParked+mixedCold <= aloneParked+aloneCold {
		t.Fatalf("no cross-tenant contention: alone parked=%d cold=%d, mixed parked=%d cold=%d",
			aloneParked, aloneCold, mixedParked, mixedCold)
	}
	if E2ESample(mixed["va"]).Mean() <= E2ESample(alone).Mean() {
		t.Fatalf("mean e2e under contention %.1fms not above isolated %.1fms",
			E2ESample(mixed["va"]).Mean(), E2ESample(alone).Mean())
	}
}

// TestRunMixedMultiNodePlacement serves a mixed workload on a two-node
// cluster under each placement policy: spread must use both nodes, and
// first-fit must keep the load on node 0 while it fits.
func TestRunMixedMultiNodePlacement(t *testing.T) {
	nodesUsed := func(placement cluster.Placement, mc int) map[int]int {
		cfg := DefaultExecutorConfig()
		cfg.Cluster = cluster.Config{Nodes: 2, NodeMillicores: 26000, PoolSize: 0, IdleMillicores: 100, Placement: placement}
		e, err := NewExecutor(cfg, perfmodel.Catalog())
		if err != nil {
			t.Fatal(err)
		}
		out, err := e.RunMixed([]TenantWorkload{
			{Tenant: "ia", Requests: iaWorkload(t, 20), Allocator: &Fixed{System: "f", Sizes: []int{mc, mc, mc}}},
			{Tenant: "va", Requests: vaWorkload(t, 20, 7), Allocator: &Fixed{System: "f", Sizes: []int{mc, mc, mc}}},
		})
		if err != nil {
			t.Fatal(err)
		}
		used := map[int]int{}
		for _, traces := range out {
			for _, tr := range traces {
				for _, st := range tr.Stages {
					used[st.Node]++
				}
			}
		}
		return used
	}
	spread := nodesUsed(cluster.PlacementSpread, 2000)
	if len(spread) != 2 {
		t.Fatalf("spread placement used nodes %v, want both", spread)
	}
	packed := nodesUsed(cluster.PlacementFirstFit, 2000)
	if packed[1] != 0 {
		t.Fatalf("first-fit spilled %d branch executions to node 1 with node 0 never full (%v)", packed[1], packed)
	}
}

// TestSeriesParallelColdStartsAndParkingDeterministic runs the diamond on a
// pool-less tiny cluster with live interference: every branch cold-starts,
// parking is rampant, and two identical runs stay byte-identical.
func TestSeriesParallelColdStartsAndParkingDeterministic(t *testing.T) {
	cfg := DefaultExecutorConfig()
	cfg.Cluster = cluster.Config{Nodes: 1, NodeMillicores: 7000, PoolSize: 0, IdleMillicores: 100}
	cfg.LiveInterference = true
	cfg.Interference = interfere.Default()
	e, err := NewExecutor(cfg, perfmodel.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	run := func() []Trace {
		traces, err := e.Run(spWorkload(t, diamondSP(t), 30), &Fixed{System: "fixed", Sizes: []int{2000, 2000, 2000}})
		if err != nil {
			t.Fatal(err)
		}
		return traces
	}
	a, b := run(), run()
	cold, parked := 0, 0
	for i := range a {
		parked += a[i].Parked
		for s := range a[i].Stages {
			if a[i].Stages[s].Cold {
				cold++
			}
			if a[i].Stages[s] != b[i].Stages[s] {
				t.Fatalf("trace %d stage %d diverged across identical runs", i, s)
			}
		}
		if a[i].E2E != b[i].E2E || a[i].TotalMillicores != b[i].TotalMillicores || a[i].Parked != b[i].Parked {
			t.Fatal("summary diverged across identical runs")
		}
	}
	if cold == 0 {
		t.Fatal("pool-less cluster produced no cold starts")
	}
	if parked == 0 {
		t.Fatal("tiny cluster produced no parking")
	}
}

// crossDAG is the smallest genuinely non-series-parallel shape on catalog
// functions: pre fans out to detect and classify, detect additionally
// feeds ocr, and fuse joins all three (in-degree 3). Decision groups:
// [pre] [detect, classify] [ocr] [fuse].
func crossDAG(t *testing.T) *workflow.Workflow {
	t.Helper()
	nodes := []workflow.Node{
		{Name: "pre", Function: "fe"},
		{Name: "detect", Function: "icl"},
		{Name: "classify", Function: "ico"},
		{Name: "ocr", Function: "aes-encrypt"},
		{Name: "fuse", Function: "redis-read"},
	}
	edges := [][2]string{
		{"pre", "detect"}, {"pre", "classify"},
		{"detect", "ocr"},
		{"detect", "fuse"}, {"classify", "fuse"}, {"ocr", "fuse"},
	}
	w, err := workflow.New("cross", 2*time.Second, nodes, edges)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// budgetRecorder serves fixed sizes while recording the remaining budget
// each decision group was handed, per request.
type budgetRecorder struct {
	sizes  []int
	remain map[int]map[int]time.Duration
}

func (b *budgetRecorder) Name() string { return "recorder" }
func (b *budgetRecorder) Allocate(req *Request, group int, remaining time.Duration) (int, bool) {
	if b.remain[req.ID] == nil {
		b.remain[req.ID] = map[int]time.Duration{}
	}
	b.remain[req.ID][group] = remaining
	return b.sizes[group], true
}

// TestNodeGranularReadinessSemantics is the engine-level acceptance test
// of the tentpole: on a cross-edge DAG, nodes start at predecessor
// completion (no stage barrier), the fork shares one decision, the
// in-degree-3 join waits for its slowest input, and every decision is
// made against the critical-path remaining budget SLO − elapsed at the
// group's readiness instant.
func TestNodeGranularReadinessSemantics(t *testing.T) {
	w := crossDAG(t)
	alloc := &budgetRecorder{sizes: []int{2000, 1500, 1200, 1100}, remain: map[int]map[int]time.Duration{}}
	traces, err := defaultExecutor(t).Run(spWorkload(t, w, 30), alloc)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range traces {
		if len(tr.Stages) != 5 {
			t.Fatalf("trace %d ran %d nodes, want 5", i, len(tr.Stages))
		}
		if tr.Decisions != 4 {
			t.Fatalf("trace %d made %d decisions, want 4 (detect and classify share one)", i, tr.Decisions)
		}
		// 2000 + 1500*2 + 1200 + 1100, the fork group counted per pod.
		if tr.TotalMillicores != 7300 {
			t.Fatalf("trace %d consumed %d mc, want 7300", i, tr.TotalMillicores)
		}
		byStep := map[string]StageTrace{}
		for _, st := range tr.Stages {
			byStep[st.Step] = st
		}
		for step, group := range map[string]int{"pre": 0, "detect": 1, "classify": 1, "ocr": 2, "fuse": 3} {
			st, ok := byStep[step]
			if !ok {
				t.Fatalf("trace %d has no execution for node %q", i, step)
			}
			if st.Stage != group {
				t.Fatalf("trace %d node %s tagged group %d, want %d", i, step, st.Stage, group)
			}
		}
		// Fork members launch together, after their shared predecessor.
		if byStep["detect"].Start != byStep["classify"].Start {
			t.Fatalf("trace %d fork members started at %v and %v", i, byStep["detect"].Start, byStep["classify"].Start)
		}
		if byStep["detect"].Start < byStep["pre"].End {
			t.Fatalf("trace %d detect started %v before pre ended %v", i, byStep["detect"].Start, byStep["pre"].End)
		}
		// The cross path: ocr is gated by detect alone — not by classify.
		if byStep["ocr"].Start < byStep["detect"].End {
			t.Fatalf("trace %d ocr started %v before detect ended %v", i, byStep["ocr"].Start, byStep["detect"].End)
		}
		// The in-degree-3 join waits for its slowest input.
		slowest := byStep["detect"].End
		for _, step := range []string{"classify", "ocr"} {
			if byStep[step].End > slowest {
				slowest = byStep[step].End
			}
		}
		if byStep["fuse"].Start < slowest {
			t.Fatalf("trace %d fuse started %v before its slowest input ended %v", i, byStep["fuse"].Start, slowest)
		}
		if tr.Done != byStep["fuse"].End || tr.E2E != tr.Done-tr.Arrival {
			t.Fatalf("trace %d done/e2e inconsistent: %v / %v", i, tr.Done, tr.E2E)
		}
		// Budgets: SLO − elapsed at each group's readiness instant.
		rem := alloc.remain[tr.RequestID]
		slo := w.SLO()
		if got, want := rem[0], slo-(byStep["pre"].Start-tr.Arrival); got != want {
			t.Fatalf("trace %d group 0 budget %v, want %v", i, got, want)
		}
		if got, want := rem[2], slo-(byStep["detect"].End-tr.Arrival); got != want {
			t.Fatalf("trace %d ocr budget %v, want SLO-elapsed %v at detect's end", i, got, want)
		}
		if got, want := rem[3], slo-(slowest-tr.Arrival); got != want {
			t.Fatalf("trace %d fuse budget %v, want SLO-elapsed %v at the join", i, got, want)
		}
	}
}
